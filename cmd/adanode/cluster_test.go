package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/placement"
	"repro/internal/rpc"
	"repro/internal/vfs"
)

func TestParseFlagsCluster(t *testing.T) {
	cfg, err := parseFlags([]string{"-cluster-table", "t.json"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.tableFile != "t.json" || cfg.join != "" {
		t.Errorf("cfg = %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-join", "seed:7020"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.join != "seed:7020" {
		t.Errorf("join = %q", cfg.join)
	}
	if _, err := parseFlags([]string{"-cluster-table", "t.json", "-join", "seed:7020"}, io.Discard); err == nil {
		t.Fatal("-cluster-table with -join accepted")
	}
}

func writeTable(t *testing.T, tbl *placement.Table) string {
	t.Helper()
	data, err := tbl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadClusterTableFromFile(t *testing.T) {
	tbl := &placement.Table{
		Version: 3, Replication: 2,
		Nodes: []placement.Node{
			{Name: "n1", Addr: "a1"}, {Name: "n2", Addr: "a2"}, {Name: "n3", Addr: "a3"},
		},
	}
	path := writeTable(t, tbl)
	data, version, err := loadClusterTable(&config{tableFile: path})
	if err != nil {
		t.Fatal(err)
	}
	if version != 3 || len(data) == 0 {
		t.Fatalf("version = %d, %d bytes", version, len(data))
	}

	// A table that fails validation must be refused at startup, not served.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"replication":9,"nodes":[{"name":"n1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadClusterTable(&config{tableFile: bad}); err == nil {
		t.Fatal("invalid table accepted")
	}

	// No cluster flags: no table, no error.
	if data, _, err := loadClusterTable(&config{}); err != nil || data != nil {
		t.Fatalf("bare config: %v, %d bytes", err, len(data))
	}
}

func TestLoadClusterTableFromPeer(t *testing.T) {
	tbl := &placement.Table{
		Version: 5, Replication: 2,
		Nodes: []placement.Node{
			{Name: "n1", Addr: "a1"}, {Name: "n2", Addr: "a2"}, {Name: "n3", Addr: "a3"},
		},
	}
	data, err := tbl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ln := newLocalListener(t)
	srv := rpc.NewServer(vfs.NewMemFS(), nil)
	if err := srv.SetClusterTable(data, tbl.Version); err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })

	got, version, err := loadClusterTable(&config{join: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if version != 5 || len(got) != len(data) {
		t.Fatalf("fetched v%d, %d bytes; want v5, %d bytes", version, len(got), len(data))
	}

	// A peer with no table is a configuration error, not a silent solo node.
	bare := newLocalListener(t)
	bareSrv := rpc.NewServer(vfs.NewMemFS(), nil)
	go bareSrv.Serve(bare)
	t.Cleanup(func() { bareSrv.Close(); bare.Close() })
	if _, _, err := loadClusterTable(&config{join: bare.Addr().String()}); err == nil {
		t.Fatal("join to a table-less peer accepted")
	}
}
