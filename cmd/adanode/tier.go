package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/plfs"
	"repro/internal/tier"
	"repro/internal/vfs"
)

// Node-local tiering (-tier-spec). The served directory is treated as a
// two-tier container store: one subtree per backend, named after the spec's
// fast= and slow= backends (the layout adactl's store uses). The node runs
// the heat tracker and migration planner itself: every subset read it
// serves feeds heat, and the background migrator rebalances droppings
// between the subtrees. Remote clients resolve droppings through the
// on-disk .plfs_index the migrator updates atomically, so a migration is
// visible to them the same way it is to a local reader.
//
// The fast backend must be the store's canonical (first) backend — the one
// holding the container indexes.

// setupTiering builds the node-local store view, repairs any migration or
// ingest a crash interrupted, and returns the migrator (not yet running)
// plus the tracker the served read path should feed.
func setupTiering(base vfs.FS, spec string) (*tier.Migrator, *tier.Tracker, error) {
	cfg, pol, err := tier.ParseSpec(spec)
	if err != nil {
		return nil, nil, err
	}
	containers, err := plfs.New(
		plfs.Backend{Name: cfg.Fast, FS: base, Mount: "/" + cfg.Fast},
		plfs.Backend{Name: cfg.Slow, FS: base, Mount: "/" + cfg.Slow},
	)
	if err != nil {
		return nil, nil, err
	}
	a := core.New(containers, nil, core.Options{})
	if _, err := a.Recover(); err != nil {
		return nil, nil, fmt.Errorf("recover: %w", err)
	}
	trk := tier.NewTracker(tier.WallClock(), cfg.HalfLife)
	a.SetAccessFunc(trk.Record)
	mig, err := tier.NewMigrator(a, containers, trk, pol, cfg)
	if err != nil {
		return nil, nil, err
	}
	return mig, trk, nil
}

// heatFS decorates the served file system so subset payload reads feed the
// heat tracker. Only reads are observed; every other operation passes
// through untouched.
type heatFS struct {
	vfs.FS
	record core.AccessFunc
}

func newHeatFS(inner vfs.FS, record core.AccessFunc) vfs.FS {
	return &heatFS{FS: inner, record: record}
}

func (h *heatFS) Open(name string) (vfs.File, error) {
	f, err := h.FS.Open(name)
	if err != nil {
		return f, err
	}
	if logical, dropping, ok := containerTarget(name); ok {
		return &heatFile{File: f, logical: logical, dropping: dropping, record: h.record}, nil
	}
	return f, nil
}

// containerTarget parses a served path /<backend>/<logical...>/<dropping>
// and reports whether it is a subset payload worth tracking.
func containerTarget(name string) (logical, dropping string, ok bool) {
	parts := strings.Split(strings.Trim(vfs.Clean(name), "/"), "/")
	if len(parts) < 3 {
		return "", "", false
	}
	dropping = parts[len(parts)-1]
	if _, ok := core.SubsetTag(dropping); !ok {
		return "", "", false
	}
	return "/" + strings.Join(parts[1:len(parts)-1], "/"), dropping, true
}

type heatFile struct {
	vfs.File
	logical  string
	dropping string
	record   core.AccessFunc
}

func (f *heatFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	if n > 0 {
		f.record(f.logical, f.dropping, int64(n))
	}
	return n, err
}

func (f *heatFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	if n > 0 {
		f.record(f.logical, f.dropping, int64(n))
	}
	return n, err
}
