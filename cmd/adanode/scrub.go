// Node-side scrubbing: a storage node only sees dropping files, not whole
// datasets, but every checksummed subset carries its v2 index right beside
// it. The scrubber walks the served tree, pairs each index.<tag> with its
// subset.<tag>, and verifies every frame against the recorded CRC32C at a
// bounded byte rate. Damage found on the node shows up under node.scrub.*
// before any client read trips over it.
package main

import (
	"io"
	"path"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// nodeScrubber walks one served tree verifying subset checksums.
type nodeScrubber struct {
	fsys vfs.FS
	rate int64 // payload bytes per second; <=0 = unthrottled

	passes    *metrics.Counter // node.scrub.passes
	files     *metrics.Counter // node.scrub.files: subset payloads verified
	bytes     *metrics.Counter // node.scrub.bytes
	corrupted *metrics.Counter // node.scrub.corrupted
}

func newNodeScrubber(fsys vfs.FS, rate int64, reg *metrics.Registry) *nodeScrubber {
	return &nodeScrubber{
		fsys:      fsys,
		rate:      rate,
		passes:    reg.Counter("node.scrub.passes"),
		files:     reg.Counter("node.scrub.files"),
		bytes:     reg.Counter("node.scrub.bytes"),
		corrupted: reg.Counter("node.scrub.corrupted"),
	}
}

// loop runs scrub passes forever, resting between passes; it is launched as
// a background goroutine and dies with the process.
func (s *nodeScrubber) loop(rest time.Duration) {
	for {
		s.pass()
		s.passes.Inc()
		time.Sleep(rest)
	}
}

// pass walks the tree once.
func (s *nodeScrubber) pass() {
	s.walk("/")
}

func (s *nodeScrubber) walk(dir string) {
	entries, err := s.fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := path.Join(dir, e.Name)
		if e.IsDir {
			s.walk(name)
			continue
		}
		tag, ok := strings.CutPrefix(e.Name, "index.")
		if !ok {
			continue
		}
		s.verifySubset(path.Join(dir, "subset."+tag), name)
	}
}

// verifySubset checks one subset payload against its index's per-frame
// checksums (v1 indexes carry none and are skipped).
func (s *nodeScrubber) verifySubset(subsetPath, indexPath string) {
	idxBytes, err := readAll(s.fsys, indexPath)
	if err != nil {
		return
	}
	idx, err := xtc.UnmarshalIndex(idxBytes)
	if err != nil {
		s.corrupted.Inc()
		return
	}
	if !idx.HasChecksums() {
		return
	}
	f, err := s.fsys.Open(subsetPath)
	if err != nil {
		return // the subset may live on another backend; not this node's to judge
	}
	defer f.Close()
	s.files.Inc()
	var budget int64
	buf := make([]byte, 0)
	for i := 0; i < idx.Frames(); i++ {
		size := idx.Size(i)
		if int64(cap(buf)) < size {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		n, err := f.ReadAt(buf, idx.Offset(i))
		if (err != nil && err != io.EOF) || int64(n) != size {
			s.corrupted.Inc()
			return
		}
		if xtc.CRC32C(buf) != idx.CRC(i) {
			s.corrupted.Inc()
			return
		}
		s.bytes.Add(size)
		budget += size
		budget = s.throttle(budget)
	}
}

// throttle keeps the pass at the configured byte rate.
func (s *nodeScrubber) throttle(budget int64) int64 {
	if s.rate <= 0 {
		return 0
	}
	d := time.Duration(float64(budget) / float64(s.rate) * float64(time.Second))
	if d < time.Millisecond {
		return budget
	}
	time.Sleep(d)
	return 0
}

func readAll(fsys vfs.FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := io.ReadFull(f, buf); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}
