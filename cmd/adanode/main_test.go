package main

import (
	"bytes"
	"flag"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/vfs"
)

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.listen != "127.0.0.1:7020" || cfg.dir != "adanode-data" ||
		cfg.quiet || cfg.metricsAddr != "" {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestParseFlagsMetricsAddr(t *testing.T) {
	cfg, err := parseFlags([]string{"-metrics-addr", ":7021", "-quiet", "-listen", ":9999"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.metricsAddr != ":7021" {
		t.Errorf("metricsAddr = %q", cfg.metricsAddr)
	}
	if !cfg.quiet || cfg.listen != ":9999" {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := parseFlags([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
	// The usage text must document the new flag.
	if !strings.Contains(buf.String(), "-metrics-addr") {
		t.Errorf("usage missing -metrics-addr:\n%s", buf.String())
	}
	buf.Reset()
	if _, err := parseFlags([]string{"positional"}, &buf); err == nil {
		t.Fatal("positional argument accepted")
	}
	if _, err := parseFlags([]string{"-h"}, io.Discard); err != flag.ErrHelp {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
}

// TestMetricsEndpoint drives RPC traffic through an instrumented FS and
// checks both exposition endpoints show the nonzero RPC and FS counters.
func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	store := vfs.Instrument(vfs.NewMemFS(), reg, "fs.node")
	srv := rpc.NewServer(store, nil)
	srv.SetMetrics(reg)

	// Serve RPC traffic over a loopback listener.
	ts := httptest.NewServer(metricsMux(reg))
	defer ts.Close()
	ln := newLocalListener(t)
	go srv.Serve(ln)
	defer ln.Close()
	c, err := rpc.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetMetrics(metrics.NewRegistry())
	if err := vfs.WriteFile(c, "/ingest/subset.p", []byte("protein bytes")); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"counter rpc.server.requests", "counter fs.node.bytes_written"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "counter rpc.server.requests 0\n") {
		t.Error("rpc.server.requests is zero after traffic")
	}

	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !bytes.Contains(body, []byte(`"rpc.server.requests"`)) {
		t.Errorf("/metrics.json missing rpc counters:\n%s", body)
	}
}
