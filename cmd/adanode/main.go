// Command adanode runs one storage node: it exposes a host directory over
// the TCP storage protocol so a remote ADA instance can use it as a
// container-store backend.
//
// Usage:
//
//	adanode -listen :7020 -dir /data/ssd-node -metrics-addr :7021
//
// Multi-node clusters share a placement table: the seed node loads it from
// disk (-cluster-table table.json) and every other node fetches it from a
// running peer (-join seed:7020). Any node then serves the table to
// clients and late joiners over the storage protocol.
//
// With -metrics-addr set, the node serves its runtime metrics over HTTP:
// GET /metrics is the line-oriented text form, GET /metrics.json the JSON
// snapshot. After an ingest the RPC and FS counters (rpc.server.*,
// fs.node.*) show exactly what the storage side paid.
//
// On the client side, connect the node as a backend:
//
//	fs, _ := ada.DialStorageNode("node1:7020")
//	store, _ := ada.NewContainerStore(ada.Backend{Name: "ssd", FS: fs, Mount: "/"})
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultfs"
	"repro/internal/metrics"
	"repro/internal/osfs"
	"repro/internal/placement"
	"repro/internal/rpc"
	"repro/internal/tier"
	"repro/internal/vfs"
)

// config is the parsed command line.
type config struct {
	listen      string
	dir         string
	quiet       bool
	metricsAddr string
	faultSpec   string
	scrubRate   int64
	tierSpec    string
	tenantRate  float64
	tenantBurst float64
	tableFile   string
	join        string
	watchPoll   time.Duration
}

// parseFlags parses args (without the program name). It returns
// flag.ErrHelp or a usage error without exiting, so main stays testable.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("adanode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:7020", "TCP listen address")
	fs.StringVar(&cfg.dir, "dir", "adanode-data", "directory to serve")
	fs.BoolVar(&cfg.quiet, "quiet", false, "disable request logging")
	fs.StringVar(&cfg.metricsAddr, "metrics-addr", "",
		"HTTP address for /metrics and /metrics.json (empty disables)")
	fs.StringVar(&cfg.faultSpec, "fault-spec", "",
		`inject deterministic transport faults on accepted connections, for
resilience testing (e.g. "seed=42; drop:conn.read:every=3"; see DESIGN.md)`)
	fs.Int64Var(&cfg.scrubRate, "scrub-rate", 0,
		"background checksum scrub rate in bytes/second over the served tree (0 disables)")
	fs.StringVar(&cfg.tierSpec, "tier-spec", "",
		`run heat-driven tiering over the served store, treating -dir as a
two-tier container store (e.g. "fast=ssd,slow=hdd,cap=64MiB"; see DESIGN.md)`)
	fs.Float64Var(&cfg.tenantRate, "tenant-rate", 0,
		"per-tenant read quota in bytes/second for connections that identify"+
			" a tenant (0 disables metering)")
	fs.Float64Var(&cfg.tenantBurst, "tenant-burst", 8<<20,
		"per-tenant read burst capacity in bytes (used with -tenant-rate)")
	fs.StringVar(&cfg.tableFile, "cluster-table", "",
		"placement table JSON to load, validate, and serve to cluster peers")
	fs.StringVar(&cfg.join, "join", "",
		"address of a cluster peer to fetch the placement table from at startup")
	fs.DurationVar(&cfg.watchPoll, "watch-poll", 0,
		"re-read cadence for parked watch long-polls (live-head tailing; 0 = 2ms default)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.tenantRate < 0 || cfg.tenantBurst < 0 {
		return nil, fmt.Errorf("-tenant-rate and -tenant-burst must be non-negative")
	}
	if cfg.watchPoll < 0 {
		return nil, fmt.Errorf("-watch-poll must be non-negative")
	}
	if cfg.tableFile != "" && cfg.join != "" {
		return nil, fmt.Errorf("-cluster-table and -join are mutually exclusive")
	}
	return cfg, nil
}

// loadClusterTable resolves the node's placement table: from a local file
// (-cluster-table, the seed node) or from a running peer (-join). Either
// way the table is validated before the node agrees to serve it.
func loadClusterTable(cfg *config) ([]byte, uint64, error) {
	switch {
	case cfg.tableFile != "":
		data, err := os.ReadFile(cfg.tableFile)
		if err != nil {
			return nil, 0, fmt.Errorf("-cluster-table: %w", err)
		}
		tbl, err := placement.Unmarshal(data)
		if err != nil {
			return nil, 0, fmt.Errorf("-cluster-table %s: %w", cfg.tableFile, err)
		}
		return data, tbl.Version, nil
	case cfg.join != "":
		cli, err := rpc.Dial(cfg.join)
		if err != nil {
			return nil, 0, fmt.Errorf("-join %s: %w", cfg.join, err)
		}
		defer cli.Close()
		data, version, err := cli.FetchClusterTable()
		if err != nil {
			return nil, 0, fmt.Errorf("-join %s: %w", cfg.join, err)
		}
		if data == nil {
			return nil, 0, fmt.Errorf("-join %s: peer serves no cluster table", cfg.join)
		}
		if _, err := placement.Unmarshal(data); err != nil {
			return nil, 0, fmt.Errorf("-join %s: peer table: %w", cfg.join, err)
		}
		return data, version, nil
	}
	return nil, 0, nil
}

// metricsMux serves the registry over HTTP.
func metricsMux(reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	return mux
}

func run(cfg *config, stdout io.Writer) error {
	base, err := osfs.New(cfg.dir)
	if err != nil {
		return err
	}
	// Every byte and op the node serves is accounted under fs.node.*.
	var fsys vfs.FS = vfs.Instrument(base, metrics.Default, "fs.node")
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	if cfg.faultSpec != "" {
		in, err := faultfs.Parse(cfg.faultSpec)
		if err != nil {
			return fmt.Errorf("-fault-spec: %w", err)
		}
		in.SetMetrics(metrics.Default)
		ln = faultfs.WrapListener(ln, in)
		fmt.Fprintf(stdout, "adanode injecting faults: %s\n", in)
	}
	var logger *log.Logger
	if !cfg.quiet {
		logger = log.New(os.Stderr, "adanode: ", log.LstdFlags)
	}
	if cfg.metricsAddr != "" {
		mln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Fprintf(stdout, "adanode metrics on http://%s/metrics\n", mln.Addr())
		go http.Serve(mln, metricsMux(metrics.Default))
	}
	var mig *tier.Migrator
	if cfg.tierSpec != "" {
		m, trk, err := setupTiering(base, cfg.tierSpec)
		if err != nil {
			return fmt.Errorf("-tier-spec: %w", err)
		}
		// Served subset reads feed the heat tracker; the migrator reads and
		// moves droppings through the uninstrumented FS, like the scrubber,
		// so rebalancing I/O stays out of the fs.node.* serving counters.
		fsys = newHeatFS(fsys, trk.Record)
		m.Run()
		mig = m
		c := m.Config()
		fmt.Fprintf(stdout, "adanode tiering %s->%s: cap=%d bytes, watermarks %.2f/%.2f, every %v\n",
			c.Fast, c.Slow, c.CapacityBytes, c.HighWater, c.LowWater, c.Interval)
	}
	if cfg.scrubRate > 0 {
		// The scrubber reads through the uninstrumented FS so background
		// verification does not pollute the fs.node.* serving counters.
		sc := newNodeScrubber(base, cfg.scrubRate, metrics.Default)
		go sc.loop(10 * time.Second)
		fmt.Fprintf(stdout, "adanode scrubbing at %d B/s\n", cfg.scrubRate)
	}
	fmt.Fprintf(stdout, "adanode serving %s on %s\n", base.Root(), ln.Addr())
	srv := rpc.NewServer(fsys, logger)
	if data, version, err := loadClusterTable(cfg); err != nil {
		return err
	} else if data != nil {
		if err := srv.SetClusterTable(data, version); err != nil {
			return err
		}
		tbl, _ := placement.Unmarshal(data)
		fmt.Fprintf(stdout, "adanode cluster table v%d: %d nodes, R=%d\n",
			version, len(tbl.Nodes), tbl.Replication)
	}
	if cfg.tenantRate > 0 {
		srv.SetTenantQuota(cfg.tenantRate, cfg.tenantBurst)
		fmt.Fprintf(stdout, "adanode tenant read quota: %.0f B/s, burst %.0f B\n",
			cfg.tenantRate, cfg.tenantBurst)
	}
	if cfg.watchPoll > 0 {
		srv.SetWatchPoll(cfg.watchPoll)
		fmt.Fprintf(stdout, "adanode watch poll: %v\n", cfg.watchPoll)
	}
	// SIGINT/SIGTERM drain gracefully: stop accepting, finish in-flight
	// requests, then exit cleanly.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		s := <-sigs
		fmt.Fprintf(stdout, "adanode: %v: draining in-flight requests\n", s)
		if mig != nil {
			// Let an in-flight migration round finish its atomic publish
			// before the server stops; a kill mid-copy is still safe (the
			// next start's Recover sweeps the staged half), but a drain
			// leaves nothing to repair.
			mig.Stop()
			fmt.Fprintln(stdout, "adanode: tier migrator drained")
		}
		srv.Close()
	}()
	if err := srv.Serve(ln); !errors.Is(err, rpc.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "adanode: shut down cleanly")
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fatal(err)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adanode:", err)
	os.Exit(1)
}
