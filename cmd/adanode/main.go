// Command adanode runs one storage node: it exposes a host directory over
// the TCP storage protocol so a remote ADA instance can use it as a
// container-store backend.
//
// Usage:
//
//	adanode -listen :7020 -dir /data/ssd-node
//
// On the client side, connect the node as a backend:
//
//	fs, _ := ada.DialStorageNode("node1:7020")
//	store, _ := ada.NewContainerStore(ada.Backend{Name: "ssd", FS: fs, Mount: "/"})
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/osfs"
	"repro/internal/rpc"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7020", "TCP listen address")
	dir := flag.String("dir", "adanode-data", "directory to serve")
	quiet := flag.Bool("quiet", false, "disable request logging")
	flag.Parse()

	fsys, err := osfs.New(*dir)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "adanode: ", log.LstdFlags)
	}
	fmt.Printf("adanode serving %s on %s\n", fsys.Root(), ln.Addr())
	if err := rpc.NewServer(fsys, logger).Serve(ln); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adanode:", err)
	os.Exit(1)
}
