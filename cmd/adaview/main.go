// Command adaview renders a frame of an ingested dataset as an ASCII
// density projection — a terminal stand-in for VMD's 3-D view that makes
// the tagged subsets tangible: render `-tag p` and the receptor appears
// without the solvent box around it.
//
// Usage:
//
//	adaview -store /tmp/store -name traj -tag p -frame 0
//	adaview -store /tmp/store -name traj -tag m -axis x -width 100
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/osfs"
	"repro/internal/plfs"
	"repro/internal/xtc"
)

func main() {
	store := flag.String("store", "ada-store", "store directory")
	name := flag.String("name", "", "dataset name")
	tag := flag.String("tag", core.TagProtein, "subset tag")
	frame := flag.Int("frame", 0, "frame number")
	axis := flag.String("axis", "z", "projection axis (x, y or z)")
	width := flag.Int("width", 72, "output width in characters")
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "adaview: -name is required")
		os.Exit(2)
	}
	if err := run(*store, *name, *tag, *frame, *axis, *width); err != nil {
		fmt.Fprintln(os.Stderr, "adaview:", err)
		os.Exit(1)
	}
}

func run(store, name, tag string, frameNo int, axis string, width int) error {
	ssd, err := osfs.New(filepath.Join(store, "ssd"))
	if err != nil {
		return err
	}
	hdd, err := osfs.New(filepath.Join(store, "hdd"))
	if err != nil {
		return err
	}
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/"},
	)
	if err != nil {
		return err
	}
	a := core.New(containers, nil, core.Options{})
	sr, err := a.OpenSubsetAt("/"+name, tag)
	if err != nil {
		return err
	}
	defer sr.Close()
	if frameNo < 0 || frameNo >= sr.Frames() {
		return fmt.Errorf("frame %d out of range [0,%d)", frameNo, sr.Frames())
	}
	f, err := sr.ReadFrameAt(frameNo)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s tag %q frame %d/%d: %d atoms, t=%.1f ps\n",
		name, tag, frameNo, sr.Frames(), f.NAtoms(), f.Time)
	fmt.Print(Render(f, axis, width))
	return nil
}

// Render projects the frame's atoms along the given axis onto a character
// grid, shading cells by atom density.
func Render(f *xtc.Frame, axis string, width int) string {
	if width < 8 {
		width = 8
	}
	var h, v int // coordinate dims mapped to horizontal and vertical
	switch axis {
	case "x":
		h, v = 1, 2
	case "y":
		h, v = 0, 2
	default:
		h, v = 0, 1
	}
	if f.NAtoms() == 0 {
		return "(empty frame)\n"
	}
	// Bounding box in the projection plane.
	minH, maxH := f.Coords[0][h], f.Coords[0][h]
	minV, maxV := f.Coords[0][v], f.Coords[0][v]
	for _, c := range f.Coords {
		if c[h] < minH {
			minH = c[h]
		}
		if c[h] > maxH {
			maxH = c[h]
		}
		if c[v] < minV {
			minV = c[v]
		}
		if c[v] > maxV {
			maxV = c[v]
		}
	}
	spanH := float64(maxH - minH)
	spanV := float64(maxV - minV)
	if spanH <= 0 {
		spanH = 1
	}
	if spanV <= 0 {
		spanV = 1
	}
	// Terminal cells are ~2x taller than wide; halve the row count.
	height := int(float64(width) * spanV / spanH / 2)
	if height < 4 {
		height = 4
	}
	if height > 60 {
		height = 60
	}
	grid := make([]int, width*height)
	for _, c := range f.Coords {
		col := int(float64(c[h]-minH) / spanH * float64(width-1))
		row := int(float64(c[v]-minV) / spanV * float64(height-1))
		grid[row*width+col]++
	}
	peak := 0
	for _, n := range grid {
		if n > peak {
			peak = n
		}
	}
	shades := []byte(" .:-=+*#%@")
	var out []byte
	for row := height - 1; row >= 0; row-- { // vertical axis points up
		for col := 0; col < width; col++ {
			n := grid[row*width+col]
			idx := 0
			if peak > 0 && n > 0 {
				idx = 1 + n*(len(shades)-2)/peak
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			out = append(out, shades[idx])
		}
		out = append(out, '\n')
	}
	out = append(out, []byte(fmt.Sprintf("%.1f nm across, %.1f nm tall (axis %s), peak %d atoms/cell\n",
		spanH, spanV, axis, peak))...)
	return string(out)
}
