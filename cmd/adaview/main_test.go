package main

import (
	"strings"
	"testing"

	"repro/internal/xtc"
)

func testFrame() *xtc.Frame {
	// A diagonal line of atoms plus a dense cluster in one corner.
	f := &xtc.Frame{}
	for i := 0; i < 20; i++ {
		v := float32(i) / 4
		f.Coords = append(f.Coords, xtc.Vec3{v, v, 0})
	}
	for i := 0; i < 30; i++ {
		f.Coords = append(f.Coords, xtc.Vec3{0.1, 0.1, 0})
	}
	return f
}

func TestRenderShape(t *testing.T) {
	out := Render(testFrame(), "z", 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
	body := lines[:len(lines)-1] // last line is the caption
	for i, l := range body {
		if len(l) != 40 {
			t.Errorf("line %d width = %d", i, len(l))
		}
	}
	if !strings.Contains(out, "peak") {
		t.Error("caption missing")
	}
	// The dense cluster must be the darkest shade, and some cells empty.
	if !strings.Contains(out, "@") {
		t.Error("densest cell not at peak shade")
	}
	if !strings.Contains(out, " ") {
		t.Error("no empty cells")
	}
}

func TestRenderAxes(t *testing.T) {
	f := testFrame()
	for _, axis := range []string{"x", "y", "z"} {
		out := Render(f, axis, 30)
		if len(out) == 0 {
			t.Errorf("axis %s: empty render", axis)
		}
	}
}

func TestRenderEdgeCases(t *testing.T) {
	if got := Render(&xtc.Frame{}, "z", 40); !strings.Contains(got, "empty") {
		t.Errorf("empty frame render = %q", got)
	}
	// Single atom: degenerate bounding box must not divide by zero.
	one := &xtc.Frame{Coords: []xtc.Vec3{{1, 1, 1}}}
	if got := Render(one, "z", 2); got == "" {
		t.Error("single-atom render empty")
	}
	// Collinear atoms along the horizontal axis (zero vertical span).
	flat := &xtc.Frame{Coords: []xtc.Vec3{{0, 1, 0}, {1, 1, 0}, {2, 1, 0}}}
	if got := Render(flat, "z", 20); got == "" {
		t.Error("flat render empty")
	}
}
