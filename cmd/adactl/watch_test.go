package main

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/metrics"
	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// watchFixture builds an in-memory ADA store plus a small dataset.
func watchFixture(t *testing.T, frames int) (*core.ADA, []byte, []byte) {
	t.Helper()
	sys, err := gpcr.Scaled(200).Build()
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := pdb.Write(&pb, sys.Structure); err != nil {
		t.Fatal(err)
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	s, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := s.WriteTrajectory(xtc.NewWriter(&tb), frames); err != nil {
		t.Fatal(err)
	}
	store, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: vfs.NewMemFS(), Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: vfs.NewMemFS(), Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return core.New(store, nil, core.Options{Metrics: metrics.NewRegistry()}), pb.Bytes(), tb.Bytes()
}

// TestCmdWatchLive: watch follows a live session and exits when it seals.
func TestCmdWatchLive(t *testing.T) {
	a, pdbBytes, traj := watchFixture(t, 6)
	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := xtc.NewScanner(bytes.NewReader(traj))
		for {
			blob, err := sc.Next()
			if err != nil {
				break
			}
			if _, err := li.Append(blob); err != nil {
				break
			}
		}
		li.Seal()
	}()

	var out bytes.Buffer
	err = cmdWatch(a, &out, []string{"-name", "ds", "-interval", "5ms"})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "sealed") {
		t.Fatalf("watch never reported the seal:\n%s", text)
	}
	if !strings.Contains(text, "frames") || !strings.Contains(text, "p=") {
		t.Fatalf("watch output missing head fields:\n%s", text)
	}
	last := text[strings.LastIndex(strings.TrimSpace(text), "\n")+1:]
	if !strings.Contains(last, "6 frames") {
		t.Fatalf("final line does not report 6 frames: %q", last)
	}
}

// TestCmdWatchBoundedPolls: -n caps the poll count on a still-live dataset.
func TestCmdWatchBoundedPolls(t *testing.T) {
	a, pdbBytes, traj := watchFixture(t, 2)
	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := li.Append(traj); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := cmdWatch(a, &out, []string{"-name", "ds", "-interval", "1ms", "-n", "3"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(out.String()), "\n") + 1
	if lines != 3 {
		t.Fatalf("watch -n 3 printed %d lines:\n%s", lines, out.String())
	}
	if !strings.Contains(out.String(), "live") {
		t.Fatalf("watch output missing live state:\n%s", out.String())
	}
	if err := li.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestCmdWatchErrors covers the flag validation and missing datasets.
func TestCmdWatchErrors(t *testing.T) {
	a, _, _ := watchFixture(t, 2)
	if err := cmdWatch(a, &bytes.Buffer{}, nil); err == nil {
		t.Error("missing -name accepted")
	}
	if err := cmdWatch(a, &bytes.Buffer{}, []string{"-name", "nope", "-n", "1"}); err == nil {
		t.Error("missing dataset accepted")
	}
}
