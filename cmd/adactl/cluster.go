package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/placement"
	"repro/internal/rpc"
	"repro/internal/vfs"
)

// cmdCluster drives a multi-node placement cluster through any member
// node: inspect the shared table and node health, install a new table, or
// run a rebalance that moves container data to match one.
func cmdCluster(out io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("cluster needs a subcommand: status, push, or rebalance")
	}
	switch sub, rest := args[0], args[1:]; sub {
	case "status":
		return cmdClusterStatus(out, rest)
	case "push":
		return cmdClusterPush(out, rest)
	case "rebalance":
		return cmdClusterRebalance(out, rest)
	default:
		return fmt.Errorf("cluster: unknown subcommand %q (want status, push, or rebalance)", sub)
	}
}

// clusterPolicy bounds every control-plane call so a dead node answers
// "down" on a deadline instead of hanging the CLI.
func clusterPolicy(timeout time.Duration) rpc.RetryPolicy {
	pol := rpc.DefaultRetryPolicy()
	pol.CallTimeout = timeout
	return pol
}

// fetchTable pulls the placement table from one node and validates it.
func fetchTable(addr string, timeout time.Duration) (*placement.Table, []byte, error) {
	c, err := rpc.DialWith(addr, nil, clusterPolicy(timeout))
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	defer c.Close()
	data, _, err := c.FetchClusterTable()
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: fetch table from %s: %w", addr, err)
	}
	if data == nil {
		return nil, nil, fmt.Errorf("cluster: node %s serves no placement table", addr)
	}
	tbl, err := placement.Unmarshal(data)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: table from %s: %w", addr, err)
	}
	return tbl, data, nil
}

// nodeAddrs maps every table node to its address, failing on blanks: the
// control plane cannot reach a node the table does not locate.
func nodeAddrs(tbl *placement.Table) (map[string]string, error) {
	out := make(map[string]string, len(tbl.Nodes))
	for _, n := range tbl.Nodes {
		if n.Addr == "" {
			return nil, fmt.Errorf("cluster: table v%d: node %q has no address", tbl.Version, n.Name)
		}
		out[n.Name] = n.Addr
	}
	return out, nil
}

func cmdClusterStatus(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("cluster status", flag.ExitOnError)
	addr := fs.String("addr", "", "any cluster node (host:port)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-attempt call deadline")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("cluster status needs -addr")
	}
	tbl, _, err := fetchTable(*addr, *timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "placement table v%d: %d nodes, replication %d, %d pinned dirs\n",
		tbl.Version, len(tbl.Nodes), tbl.Replication, len(tbl.Pins))
	down := 0
	for _, n := range tbl.Nodes {
		if n.Addr == "" {
			fmt.Fprintf(out, "  %-12s ?            no address in table\n", n.Name)
			down++
			continue
		}
		status, detail := probeNode(n.Addr, *timeout)
		if !status {
			down++
		}
		fmt.Fprintf(out, "  %-12s %-21s %s\n", n.Name, n.Addr, detail)
	}
	if down > 0 {
		return fmt.Errorf("cluster: %d of %d nodes unreachable", down, len(tbl.Nodes))
	}
	return nil
}

// probeNode stats a node's root and reports its health plus the table
// version it serves, so a node running a stale table is visible.
func probeNode(addr string, timeout time.Duration) (bool, string) {
	c, err := rpc.DialWith(addr, nil, clusterPolicy(timeout))
	if err != nil {
		return false, fmt.Sprintf("down (%v)", err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Stat("/"); err != nil {
		return false, fmt.Sprintf("down (%v)", err)
	}
	rtt := float64(time.Since(start).Microseconds()) / 1000
	_, version, err := c.FetchClusterTable()
	if err != nil {
		return true, fmt.Sprintf("up    %.3fms  table unavailable (%v)", rtt, err)
	}
	return true, fmt.Sprintf("up    %.3fms  table v%d", rtt, version)
}

func cmdClusterPush(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("cluster push", flag.ExitOnError)
	tableFile := fs.String("table", "", "placement table JSON to install")
	timeout := fs.Duration("timeout", 2*time.Second, "per-attempt call deadline")
	fs.Parse(args)
	if *tableFile == "" {
		return fmt.Errorf("cluster push needs -table")
	}
	data, err := os.ReadFile(*tableFile)
	if err != nil {
		return err
	}
	tbl, err := placement.Unmarshal(data)
	if err != nil {
		return fmt.Errorf("cluster push: %s: %w", *tableFile, err)
	}
	addrs, err := nodeAddrs(tbl)
	if err != nil {
		return err
	}
	return pushTable(out, data, tbl.Version, addrs, *timeout)
}

// pushTable installs one table version on every listed node; a node that
// rejects it (stale version) or cannot be reached fails the push so the
// operator never ends up with a silently split table.
func pushTable(out io.Writer, data []byte, version uint64, addrs map[string]string, timeout time.Duration) error {
	var failed int
	for name, addr := range addrs {
		err := func() error {
			c, err := rpc.DialWith(addr, nil, clusterPolicy(timeout))
			if err != nil {
				return err
			}
			defer c.Close()
			return c.PushClusterTable(data, version)
		}()
		if err != nil {
			failed++
			fmt.Fprintf(out, "  %s (%s): %v\n", name, addr, err)
			continue
		}
		fmt.Fprintf(out, "  %s (%s): table v%d installed\n", name, addr, version)
	}
	if failed > 0 {
		return fmt.Errorf("cluster: table v%d rejected by %d node(s)", version, failed)
	}
	return nil
}

func cmdClusterRebalance(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("cluster rebalance", flag.ExitOnError)
	addr := fs.String("addr", "", "any cluster node (host:port)")
	tableFile := fs.String("table", "", "target placement table JSON")
	timeout := fs.Duration("timeout", 5*time.Second, "per-attempt call deadline")
	fs.Parse(args)
	if *addr == "" || *tableFile == "" {
		return fmt.Errorf("cluster rebalance needs -addr and -table")
	}
	cur, _, err := fetchTable(*addr, *timeout)
	if err != nil {
		return err
	}
	nextData, err := os.ReadFile(*tableFile)
	if err != nil {
		return err
	}
	next, err := placement.Unmarshal(nextData)
	if err != nil {
		return fmt.Errorf("cluster rebalance: %s: %w", *tableFile, err)
	}
	if next.Version <= cur.Version {
		return fmt.Errorf("cluster rebalance: target v%d is not newer than the cluster's v%d",
			next.Version, cur.Version)
	}
	curAddrs, err := nodeAddrs(cur)
	if err != nil {
		return err
	}
	nextAddrs, err := nodeAddrs(next)
	if err != nil {
		return err
	}

	// One pool per node across both memberships: leaving nodes must still
	// serve copies out, joining nodes must accept copies in.
	pools := map[string]*rpc.Pool{}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()
	fss := map[string]vfs.FS{}
	for name, a := range curAddrs {
		pools[name] = rpc.NewPool(a, 2, nil, clusterPolicy(*timeout))
		fss[name] = pools[name]
	}
	for name, a := range nextAddrs {
		if _, ok := pools[name]; !ok {
			pools[name] = rpc.NewPool(a, 2, nil, clusterPolicy(*timeout))
			fss[name] = pools[name]
		}
	}
	cluster, err := placement.NewCluster(cur, fss, placement.Config{HedgeDelay: -1})
	if err != nil {
		return err
	}
	dirs, err := cluster.DataDirs("/")
	if err != nil {
		return fmt.Errorf("cluster rebalance: scan: %w", err)
	}
	fmt.Fprintf(out, "rebalancing %d container dirs from table v%d to v%d\n",
		len(dirs), cur.Version, next.Version)
	rep, err := cluster.Rebalance(next, dirs)
	if err != nil {
		return fmt.Errorf("cluster rebalance: %w (data is intact; rerun after fixing the cause)", err)
	}
	fmt.Fprintf(out, "moved %d files (%d bytes) across %d dirs, dropped %d surplus copies\n",
		rep.FilesCopied, rep.BytesCopied, rep.Dirs, rep.FilesDropped)

	// Publish the new table to every node that will keep running under it,
	// plus the ones that just left (they answer status queries until shut
	// down).
	all := map[string]string{}
	for name, a := range curAddrs {
		all[name] = a
	}
	for name, a := range nextAddrs {
		all[name] = a
	}
	return pushTable(out, nextData, next.Version, all, *timeout)
}
