package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func statsServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("rpc.server.requests").Add(7)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		reg.WriteJSON(w)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestCmdStats(t *testing.T) {
	ts := statsServer(t)
	var out bytes.Buffer
	// Bare host:port form.
	if err := cmdStats(&out, []string{"-addr", strings.TrimPrefix(ts.URL, "http://")}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "counter rpc.server.requests 7") {
		t.Errorf("stats output = %q", out.String())
	}
	// Full-URL + JSON form.
	out.Reset()
	if err := cmdStats(&out, []string{"-addr", ts.URL, "-json"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"rpc.server.requests": 7`) {
		t.Errorf("stats -json output = %q", out.String())
	}
}

func TestCmdStatsErrors(t *testing.T) {
	if err := cmdStats(&bytes.Buffer{}, nil); err == nil {
		t.Error("missing -addr accepted")
	}
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	if err := cmdStats(&bytes.Buffer{}, []string{"-addr", ts.URL}); err == nil {
		t.Error("404 endpoint accepted")
	}
}
