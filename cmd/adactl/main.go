// Command adactl drives an on-disk ADA store: ingest a (.pdb, .xtc) pair,
// inspect containers, and extract tagged subsets.
//
// The store is a host directory holding two backend trees (ssd/ and hdd/),
// standing in for the two file systems ADA dispatches between.
//
// Usage:
//
//	adactl -store /tmp/store ingest -pdb g.pdb -xtc g.xtc -name traj
//	adactl -store /tmp/store manifest -name traj
//	adactl -store /tmp/store labels -name traj
//	adactl -store /tmp/store extract -name traj -tag p -out protein.xtc
//	adactl stats -addr node1:7021
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/osfs"
	"repro/internal/plfs"
	"repro/internal/rpc"
	"repro/internal/tier"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

func main() {
	store := flag.String("store", "ada-store", "store directory (holds ssd/ and hdd/ backend trees)")
	fine := flag.Bool("fine", false, "use fine-grained per-category tags")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	if cmd == "stats" {
		// stats talks to a running node's metrics endpoint; it needs no
		// local store.
		if err := cmdStats(os.Stdout, args); err != nil {
			fatal(err)
		}
		return
	}
	if cmd == "ping" {
		// ping probes a node's storage protocol directly; no local store.
		if err := cmdPing(os.Stdout, args); err != nil {
			fatal(err)
		}
		return
	}
	if cmd == "cluster" {
		// cluster drives a multi-node placement cluster; no local store.
		if err := cmdCluster(os.Stdout, args); err != nil {
			fatal(err)
		}
		return
	}
	a, containers, err := openStore(*store, *fine)
	if err != nil {
		fatal(err)
	}
	switch cmd {
	case "ingest":
		err = cmdIngest(a, args)
	case "list":
		err = cmdList(a)
	case "remove":
		err = cmdRemove(a, args)
	case "analyze":
		err = cmdAnalyze(a, args)
	case "manifest":
		err = cmdManifest(a, args)
	case "labels":
		err = cmdLabels(a, args)
	case "extract":
		err = cmdExtract(a, args)
	case "fsck":
		err = cmdFsck(a, args)
	case "scrub":
		err = cmdScrub(a, args)
	case "recover":
		err = cmdRecover(a)
	case "watch":
		err = cmdWatch(a, os.Stdout, args)
	case "tier":
		err = cmdTier(a, containers, args)
	default:
		usage()
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: adactl [-store DIR] [-fine] COMMAND [args]

commands:
  ingest   -pdb FILE -xtc FILE -name NAME   pre-process and store a dataset
                                            (.dcd input supported; -schema FILE
                                             selects a custom categorizer)
  list                                       list ingested datasets
  remove   -name NAME                        delete a dataset
  analyze  -name NAME [-tag TAG]             per-frame RGyr/RMSD/MSD of a subset
  manifest -name NAME                        show a dataset's subsets
  labels   -name NAME                        show the label ranges
  extract  -name NAME -tag TAG -out FILE     write one subset as raw frames
  fsck     -name NAME                        verify a dataset's checksums
  scrub    [-rate BYTES/S]                   verify every dataset (one pass)
  recover                                    roll back or finish interrupted
                                             ingests (run after a crash)
  watch    -name NAME [-interval D] [-n N]   poll a live dataset's head:
                                             frames per tag, growth rate,
                                             live/sealed state (exits when
                                             the producer seals)
  tier     [-spec SPEC] [-step]              report per-backend usage and
                                             subset placement; with -spec
                                             evaluate watermarks and (with
                                             -step) run one migration round
  stats    -addr HOST:PORT [-json]           fetch a node's runtime metrics
                                             (adanode -metrics-addr endpoint)
  ping     -addr HOST:PORT [-count N]        probe a node over the storage
           [-timeout D] [-attempts N]        protocol and report RTT/retries
  cluster  status    -addr HOST:PORT         show the placement table and
                                             per-node health/table version
           push      -table FILE             install a placement table on
                                             every node it lists
           rebalance -addr HOST:PORT         move container data to match a
                     -table FILE             new table, then install it`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adactl:", err)
	os.Exit(1)
}

func openStore(dir string, fine bool) (*core.ADA, *plfs.FS, error) {
	ssd, err := osfs.New(filepath.Join(dir, "ssd"))
	if err != nil {
		return nil, nil, err
	}
	hdd, err := osfs.New(filepath.Join(dir, "hdd"))
	if err != nil {
		return nil, nil, err
	}
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/"},
	)
	if err != nil {
		return nil, nil, err
	}
	opts := core.Options{}
	if fine {
		opts.Granularity = core.Fine
	}
	return core.New(containers, nil, opts), containers, nil
}

func cmdIngest(a *core.ADA, args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	pdbPath := fs.String("pdb", "", "structure file")
	xtcPath := fs.String("xtc", "", "compressed trajectory")
	name := fs.String("name", "", "dataset name")
	schemaPath := fs.String("schema", "", "user-defined categorization schema (JSON)")
	fs.Parse(args)
	if *pdbPath == "" || *xtcPath == "" || *name == "" {
		return fmt.Errorf("ingest needs -pdb, -xtc and -name")
	}
	if *schemaPath != "" {
		data, err := os.ReadFile(*schemaPath)
		if err != nil {
			return err
		}
		schema, err := core.ParseSchema(data)
		if err != nil {
			return err
		}
		a = a.WithSchema(schema)
	}
	pdbBytes, err := os.ReadFile(*pdbPath)
	if err != nil {
		return err
	}
	xf, err := os.Open(*xtcPath)
	if err != nil {
		return err
	}
	defer xf.Close()
	var tr core.TrajectoryReader
	switch strings.ToLower(filepath.Ext(*xtcPath)) {
	case ".dcd":
		if tr, err = core.NewDCDTrajectory(xf); err != nil {
			return err
		}
	case ".trr":
		tr = core.NewTRRTrajectory(xf)
	default:
		tr = core.NewXTCTrajectory(xf)
	}
	rep, err := a.IngestTrajectory("/"+*name, pdbBytes, tr)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %s: %d frames, %d atoms\n", *name, rep.Frames, rep.NAtoms)
	fmt.Printf("  compressed in : %d bytes\n", rep.Compressed)
	fmt.Printf("  raw           : %d bytes\n", rep.Raw)
	for tag, n := range rep.Subsets {
		fmt.Printf("  subset %-8s: %d bytes\n", tag, n)
	}
	return nil
}

// cmdStats fetches and prints the metrics exposition of a running adanode
// (its -metrics-addr endpoint): text by default, the JSON snapshot with
// -json.
func cmdStats(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", "", "metrics address (host:port or full URL)")
	jsonOut := fs.Bool("json", false, "fetch the JSON snapshot instead of text")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("stats needs -addr")
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + "/metrics"
	if *jsonOut {
		url += ".json"
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: %s returned %s", url, resp.Status)
	}
	_, err = io.Copy(out, resp.Body)
	return err
}

// cmdPing dials a storage node and issues stat probes under an explicit
// retry policy, reporting per-probe round-trip time plus the retry and
// suppression counters the policy recorded. A node that is down surfaces
// as ErrBackendDown after the bounded retry schedule, never as a hang.
func cmdPing(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("ping", flag.ExitOnError)
	addr := fs.String("addr", "", "storage node address (host:port)")
	count := fs.Int("count", 3, "number of probes")
	timeout := fs.Duration("timeout", 2*time.Second, "per-attempt call deadline")
	attempts := fs.Int("attempts", 4, "max attempts per probe")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("ping needs -addr")
	}
	pol := rpc.DefaultRetryPolicy()
	pol.CallTimeout = *timeout
	pol.MaxAttempts = *attempts
	c, err := rpc.DialWith(*addr, nil, pol)
	if err != nil {
		return err
	}
	defer c.Close()
	reg := metrics.NewRegistry()
	c.SetMetrics(reg)
	failed := 0
	for i := 1; i <= *count; i++ {
		start := time.Now()
		_, err := c.Stat("/")
		rtt := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			failed++
			fmt.Fprintf(out, "probe %d/%d: %.3fms  %v\n", i, *count, rtt, err)
			continue
		}
		fmt.Fprintf(out, "probe %d/%d: %.3fms  ok\n", i, *count, rtt)
	}
	s := reg.Snapshot()
	fmt.Fprintf(out, "%d probes to %s: %d ok, %d retries, %d suppressed\n",
		*count, *addr, *count-failed,
		s.Counters["rpc.client.retries"], s.Counters["rpc.client.retries_suppressed"])
	if failed == *count {
		return fmt.Errorf("ping: node %s: %w", *addr, vfs.ErrBackendDown)
	}
	return nil
}

func cmdList(a *core.ADA) error {
	names, err := a.Datasets()
	if err != nil {
		return err
	}
	for _, n := range names {
		m, err := a.Manifest(n)
		if err != nil {
			fmt.Printf("%-30s (unreadable: %v)\n", n, err)
			continue
		}
		fmt.Printf("%-30s %8d frames  %8d atoms  %d tags\n",
			n, m.Frames, m.NAtoms, len(m.Subsets))
	}
	return nil
}

func cmdRemove(a *core.ADA, args []string) error {
	fs := flag.NewFlagSet("remove", flag.ExitOnError)
	name := fs.String("name", "", "dataset name")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("remove needs -name")
	}
	if err := a.Remove("/" + *name); err != nil {
		return err
	}
	fmt.Printf("removed %s\n", *name)
	return nil
}

func cmdAnalyze(a *core.ADA, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	name := fs.String("name", "", "dataset name")
	tag := fs.String("tag", core.TagProtein, "subset tag")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("analyze needs -name")
	}
	// Prefer in-situ statistics computed at ingest (IngestWithStats); fall
	// back to recomputing from the stored subset frames.
	if st, err := a.Stats("/"+*name, *tag); err == nil {
		fmt.Printf("subset %q: %d frames (in-situ stats from ingest)\n", *tag, st.Frames)
		fmt.Printf("%6s %10s %10s %10s\n", "frame", "rgyr(nm)", "rmsd(nm)", "msd(nm2)")
		for i := 0; i < st.Frames; i++ {
			fmt.Printf("%6d %10.4f %10.4f %10.4f\n", i, st.RGyr[i], st.RMSD[i], st.MSD[i])
		}
		fmt.Printf("mean rgyr %.4f nm\n", st.MeanRG)
		return nil
	}
	sr, err := a.OpenSubset("/"+*name, *tag)
	if err != nil {
		return err
	}
	defer sr.Close()
	var ts analysis.TrajectoryStats
	for {
		f, err := sr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := ts.Add(f); err != nil {
			return err
		}
	}
	fmt.Printf("subset %q: %d frames, %d atoms\n", *tag, ts.Frames, sr.Ranges.Count())
	fmt.Printf("%6s %10s %10s %10s\n", "frame", "rgyr(nm)", "rmsd(nm)", "msd(nm2)")
	for i := 0; i < ts.Frames; i++ {
		fmt.Printf("%6d %10.4f %10.4f %10.4f\n", i, ts.RGyr[i], ts.RMSD[i], ts.MSD[i])
	}
	fmt.Printf("mean rgyr %.4f nm, mean aligned rmsd %.4f nm\n",
		analysis.Mean(ts.RGyr), analysis.Mean(ts.RMSD))
	return nil
}

func cmdManifest(a *core.ADA, args []string) error {
	fs := flag.NewFlagSet("manifest", flag.ExitOnError)
	name := fs.String("name", "", "dataset name")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("manifest needs -name")
	}
	m, err := a.Manifest("/" + *name)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d frames, %d atoms, granularity %s\n",
		m.Logical, m.Frames, m.NAtoms, m.Granularity)
	for _, tag := range m.Tags() {
		s := m.Subsets[tag]
		fmt.Printf("  tag %-8s -> backend %-4s  %10d bytes  %7d atoms  ranges %s\n",
			tag, s.Backend, s.Bytes, s.NAtoms, s.Ranges)
	}
	return nil
}

func cmdLabels(a *core.ADA, args []string) error {
	fs := flag.NewFlagSet("labels", flag.ExitOnError)
	name := fs.String("name", "", "dataset name")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("labels needs -name")
	}
	data, err := a.Labels("/" + *name)
	if err != nil {
		return err
	}
	fmt.Printf("%d atoms\n", data.NAtoms)
	for c := 0; c < len(data.ByCategory); c++ {
		l := data.ByCategory[c]
		if l.Count() == 0 {
			continue
		}
		fmt.Printf("  %-8s %8d atoms in %d ranges: %s\n",
			categoryName(c), l.Count(), l.NumRanges(), l)
	}
	return nil
}

// cmdFsck verifies one dataset: every subset against its whole-stream and
// per-frame CRC32C, every metadata dropping against the manifest's
// integrity map.
func cmdFsck(a *core.ADA, args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	name := fs.String("name", "", "dataset name")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("fsck needs -name")
	}
	res, err := a.Fsck("/" + *name)
	if err != nil {
		return err
	}
	for _, v := range res.Verdicts {
		line := fmt.Sprintf("  %-11s %-24s backend %s", v.Status, v.Name, v.Backend)
		if v.Detail != "" {
			line += "  (" + v.Detail + ")"
		}
		fmt.Println(line)
	}
	if !res.OK() {
		return fmt.Errorf("fsck %s: %d corrupt, %d missing, committed=%v",
			*name, res.Corrupt, res.Missing, res.Committed)
	}
	fmt.Printf("fsck %s: clean (%d droppings)\n", *name, len(res.Verdicts))
	return nil
}

// cmdScrub runs one synchronous scrub pass over every dataset.
func cmdScrub(a *core.ADA, args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	rate := fs.Int64("rate", 0, "payload bytes verified per second (0 = unthrottled)")
	fs.Parse(args)
	rep, err := a.NewScrubber(*rate).Run()
	if err != nil {
		return err
	}
	fmt.Printf("scrubbed %d datasets, %d droppings, %d payload bytes in %v\n",
		rep.Datasets, rep.Droppings, rep.Bytes, rep.Elapsed.Round(time.Millisecond))
	for _, v := range rep.Corrupt {
		fmt.Printf("  %-11s %-24s backend %s  (%s)\n", v.Status, v.Name, v.Backend, v.Detail)
	}
	if len(rep.Corrupt) > 0 {
		return fmt.Errorf("scrub: %d droppings failed verification", len(rep.Corrupt))
	}
	return nil
}

// cmdRecover classifies every container and repairs interrupted ingests.
func cmdRecover(a *core.ADA) error {
	actions, err := a.Recover()
	if err != nil {
		return err
	}
	if len(actions) == 0 {
		fmt.Println("no datasets")
		return nil
	}
	for name, act := range actions {
		fmt.Printf("  %-30s %s\n", name, act)
	}
	return nil
}

// cmdWatch polls a live dataset's head and prints its growth: version,
// frame count (with the delta and rate since the last poll), per-tag bytes,
// and the live/sealed state. It exits when the producer seals (or after -n
// polls when -n > 0), so it doubles as a wait-for-seal in scripts.
func cmdWatch(a *core.ADA, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	name := fs.String("name", "", "dataset name")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval")
	n := fs.Int("n", 0, "number of polls (0 = until sealed)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("watch needs -name")
	}
	logical := "/" + *name
	lastFrames := -1
	lastAt := time.Now()
	for poll := 1; ; poll++ {
		h, err := a.LiveHead(logical)
		if err != nil {
			return err
		}
		now := time.Now()
		state, version := "live", fmt.Sprintf("v%d", h.Version)
		if h.Sealed {
			state, version = "sealed", "-" // version ordering ends at the seal
		}
		line := fmt.Sprintf("%-6s %-5s %8d frames", state, version, h.Frames)
		if lastFrames >= 0 {
			delta := h.Frames - lastFrames
			rate := float64(delta) / now.Sub(lastAt).Seconds()
			line += fmt.Sprintf("  (+%d, %.1f fps)", delta, rate)
		}
		for _, tag := range h.Tags() {
			line += fmt.Sprintf("  %s=%dB", tag, h.Subsets[tag].Bytes)
		}
		fmt.Fprintln(out, line)
		if h.Sealed {
			return nil
		}
		if *n > 0 && poll >= *n {
			return nil
		}
		lastFrames, lastAt = h.Frames, now
		time.Sleep(*interval)
	}
}

// cmdTier reports the store's tiering state: per-backend byte usage and
// every subset's placement. With -spec it evaluates the watermarks a node
// would enforce, and -step runs one migration planning round — a manual
// rebalance. A fresh CLI process has no heat history, so a -step demotion
// ranks purely by the policy's tie-break (size); continuous heat-driven
// migration lives in adanode -tier-spec.
func cmdTier(a *core.ADA, containers *plfs.FS, args []string) error {
	fs := flag.NewFlagSet("tier", flag.ExitOnError)
	spec := fs.String("spec", "", `tier spec, e.g. "fast=ssd,slow=hdd,cap=64MiB"`)
	step := fs.Bool("step", false, "run one migration planning round before reporting (needs -spec)")
	fs.Parse(args)
	if *spec == "" {
		if *step {
			return fmt.Errorf("tier -step needs -spec")
		}
		return tierListing(a, containers)
	}
	cfg, pol, err := tier.ParseSpec(*spec)
	if err != nil {
		return err
	}
	trk := tier.NewTracker(tier.WallClock(), cfg.HalfLife)
	a.SetAccessFunc(trk.Record)
	mig, err := tier.NewMigrator(a, containers, trk, pol, cfg)
	if err != nil {
		return err
	}
	if *step {
		rep, err := mig.Step()
		if err != nil {
			return err
		}
		for _, mv := range rep.Demotions {
			fmt.Printf("demoted  %s tag %-8s %s -> %s  %d bytes\n", mv.Logical, mv.Tag, mv.From, mv.To, mv.Bytes)
		}
		for _, mv := range rep.Promotions {
			fmt.Printf("promoted %s tag %-8s %s -> %s  %d bytes\n", mv.Logical, mv.Tag, mv.From, mv.To, mv.Bytes)
		}
		fmt.Printf("moved %d bytes\n", rep.BytesMoved)
	}
	r, err := mig.Report()
	if err != nil {
		return err
	}
	high := int64(cfg.HighWater * float64(cfg.CapacityBytes))
	low := int64(cfg.LowWater * float64(cfg.CapacityBytes))
	fmt.Printf("fast backend %s: %d / %d bytes (high %d, low %d)\n",
		r.Fast, r.FastUsage, r.Capacity, high, low)
	for _, name := range containers.Backends() {
		fmt.Printf("  backend %-4s %12d bytes\n", name, r.Usage[name])
	}
	for _, s := range r.Subsets {
		fmt.Printf("  %-24s tag %-8s backend %-4s %10d bytes  heat %.0f  pin %s\n",
			s.Logical, s.Tag, s.Backend, s.Bytes, s.Heat, s.Pin)
	}
	return nil
}

// tierListing prints placement and usage without a spec: what is where.
func tierListing(a *core.ADA, containers *plfs.FS) error {
	usage := containers.Usage()
	for _, name := range containers.Backends() {
		fmt.Printf("backend %-4s %12d bytes\n", name, usage[name])
	}
	datasets, err := a.Datasets()
	if err != nil {
		return err
	}
	for _, logical := range datasets {
		idx, err := containers.Index(logical)
		if err != nil {
			return err
		}
		for _, d := range idx {
			if tag, ok := core.SubsetTag(d.Name); ok {
				fmt.Printf("  %-24s tag %-8s backend %-4s %10d bytes\n", logical, tag, d.Backend, d.Size)
			}
		}
	}
	return nil
}

func categoryName(c int) string {
	names := []string{"protein", "water", "lipid", "ion", "ligand", "other"}
	if c < len(names) {
		return names[c]
	}
	return fmt.Sprintf("cat%d", c)
}

func cmdExtract(a *core.ADA, args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	name := fs.String("name", "", "dataset name")
	tag := fs.String("tag", core.TagProtein, "subset tag")
	out := fs.String("out", "", "output file (raw frames)")
	fs.Parse(args)
	if *name == "" || *out == "" {
		return fmt.Errorf("extract needs -name and -out")
	}
	sr, err := a.OpenSubset("/"+*name, *tag)
	if err != nil {
		return err
	}
	defer sr.Close()
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer of.Close()
	w := xtc.NewRawWriter(of)
	frames := 0
	for {
		f, err := sr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := w.WriteFrame(f); err != nil {
			return err
		}
		frames++
	}
	fmt.Printf("extracted %d frames (%d atoms each, tag %s) to %s\n",
		frames, sr.Ranges.Count(), *tag, *out)
	return nil
}
