package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/placement"
	"repro/internal/rpc"
	"repro/internal/vfs"
)

// startClusterNode serves a MemFS over loopback and returns its address
// plus the store for direct inspection.
func startClusterNode(t *testing.T) (string, *vfs.MemFS) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := vfs.NewMemFS()
	srv := rpc.NewServer(store, nil)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })
	return ln.Addr().String(), store
}

func tableFile(t *testing.T, tbl *placement.Table) string {
	t.Helper()
	data, err := tbl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestClusterPushStatusRebalance walks the whole operator flow over real
// TCP nodes: seed a 2-node table, ingest data through it, grow the cluster
// to 3 nodes with a rebalance, and confirm status and on-node layout.
func TestClusterPushStatusRebalance(t *testing.T) {
	addr1, mem1 := startClusterNode(t)
	addr2, mem2 := startClusterNode(t)

	v1 := &placement.Table{
		Version: 1, Replication: 2,
		Nodes: []placement.Node{{Name: "n1", Addr: addr1}, {Name: "n2", Addr: addr2}},
	}
	var out bytes.Buffer
	if err := cmdClusterPush(&out, []string{"-table", tableFile(t, v1)}); err != nil {
		t.Fatalf("push: %v\n%s", err, out.String())
	}

	out.Reset()
	if err := cmdClusterStatus(&out, []string{"-addr", addr1}); err != nil {
		t.Fatalf("status: %v\n%s", err, out.String())
	}
	for _, want := range []string{"placement table v1", "replication 2", "up"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("status output missing %q:\n%s", want, out.String())
		}
	}

	// Write a few containers through the 2-node cluster, as an ADA would.
	fss := map[string]vfs.FS{
		"n1": rpc.NewPool(addr1, 1, nil, rpc.DefaultRetryPolicy()),
		"n2": rpc.NewPool(addr2, 1, nil, rpc.DefaultRetryPolicy()),
	}
	c, err := placement.NewCluster(v1, fss, placement.Config{HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("frame bytes")
	for _, name := range []string{"/c/t0/subset.p", "/c/t1/subset.p", "/c/t2/subset.p"} {
		if err := vfs.WriteFile(c, name, payload); err != nil {
			t.Fatal(err)
		}
	}

	// Grow to three nodes.
	addr3, mem3 := startClusterNode(t)
	v2 := &placement.Table{
		Version: 2, Replication: 2,
		Nodes: []placement.Node{
			{Name: "n1", Addr: addr1}, {Name: "n2", Addr: addr2}, {Name: "n3", Addr: addr3},
		},
	}
	out.Reset()
	if err := cmdClusterRebalance(&out, []string{"-addr", addr1, "-table", tableFile(t, v2)}); err != nil {
		t.Fatalf("rebalance: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "table v2 installed") {
		t.Errorf("rebalance did not publish v2:\n%s", out.String())
	}

	// Every file lives on exactly its v2 replicas, byte-identical.
	mems := map[string]*vfs.MemFS{"n1": mem1, "n2": mem2, "n3": mem3}
	for _, name := range []string{"/c/t0/subset.p", "/c/t1/subset.p", "/c/t2/subset.p"} {
		reps := v2.Place(name)
		for node, m := range mems {
			exists := vfs.Exists(m, name)
			if in := contains(reps, node); in != exists {
				t.Errorf("%s on %s: present=%v, want %v (replicas %v)", name, node, exists, in, reps)
			}
			if exists {
				got, err := vfs.ReadFile(m, name)
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("%s on %s diverged: %v", name, node, err)
				}
			}
		}
	}

	// Status against the grown cluster reports the new table everywhere.
	out.Reset()
	if err := cmdClusterStatus(&out, []string{"-addr", addr3}); err != nil {
		t.Fatalf("status after rebalance: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "placement table v2") ||
		strings.Count(out.String(), "table v2") < 3 {
		t.Errorf("nodes disagree about the table:\n%s", out.String())
	}

	// A stale target is refused before any data moves.
	if err := cmdClusterRebalance(&out, []string{"-addr", addr1, "-table", tableFile(t, v1)}); err == nil {
		t.Fatal("rebalance to a stale table accepted")
	}
}

func TestCmdClusterErrors(t *testing.T) {
	var out bytes.Buffer
	if err := cmdCluster(&out, nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := cmdCluster(&out, []string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := cmdClusterStatus(&out, nil); err == nil {
		t.Fatal("status without -addr accepted")
	}
	if err := cmdClusterPush(&out, nil); err == nil {
		t.Fatal("push without -table accepted")
	}
	if err := cmdClusterRebalance(&out, nil); err == nil {
		t.Fatal("rebalance without flags accepted")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
