package main

import (
	"bytes"
	"strings"
	"testing"
)

func testConfig() *config {
	return &config{
		viewers: 2, window: 12, sweeps: 2, thinkMS: 2, iaAtoms: 500,
		scans: 2, scanFrames: 300, bulkAtoms: 8000,
		cacheMB: 8, quantumKB: 128,
	}
}

// TestRunDeterministic: two runs with identical flags produce byte-identical
// bench output — the property the regression gate leans on.
func TestRunDeterministic(t *testing.T) {
	var out1, out2, errBuf bytes.Buffer
	if err := run(testConfig(), &out1, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run(testConfig(), &out2, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Errorf("output differs between identical runs:\n%s\n---\n%s", out1.String(), out2.String())
	}
}

// TestRunEmitsParseableBenchLines: every stdout line is a bench result row
// (name, iterations, value/unit pairs) covering both scenarios, every
// tenant, and both percentiles.
func TestRunEmitsParseableBenchLines(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(testConfig(), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	seen := map[string]bool{}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkServe/") {
			t.Fatalf("not a bench result line: %q", line)
		}
		if (len(fields)-2)%2 != 0 {
			t.Fatalf("odd value/unit pairing: %q", line)
		}
		seen[fields[0]] = true
	}
	for _, want := range []string{
		"BenchmarkServe/solo/class=interactive/p50",
		"BenchmarkServe/solo/class=interactive/p99",
		"BenchmarkServe/contended/class=interactive/p99",
		"BenchmarkServe/contended/class=bulk/p99",
		"BenchmarkServe/contended/tenant=ia0/p50",
		"BenchmarkServe/contended/tenant=ia1/p99",
		"BenchmarkServe/contended/tenant=bulk/p50",
		"BenchmarkServe/contended/makespan",
	} {
		if !seen[want] {
			t.Errorf("missing bench line %s; got %v", want, seen)
		}
	}
}

func TestParseFlagsRejectsJunk(t *testing.T) {
	var errBuf bytes.Buffer
	if _, err := parseFlags([]string{"-viewers", "0"}, &errBuf); err == nil {
		t.Error("zero viewers accepted")
	}
	if _, err := parseFlags([]string{"stray"}, &errBuf); err == nil {
		t.Error("stray argument accepted")
	}
}
