// Command adaload drives a deterministic multi-tenant playback load through
// the serve fabric's discrete-event simulator and emits the latency
// percentiles in `go test -bench` format, so cmd/benchjson renders them
// into the committed BENCH_serve.json baseline:
//
//	go run ./cmd/adaload | go run ./cmd/benchjson > BENCH_serve.json
//
// Two scenarios run back to back over the same fabric configuration:
//
//	solo       the interactive viewers alone — the latency floor
//	contended  the same viewers plus a saturating bulk scan tenant
//
// Each scenario prints one p50 and one p99 line per tenant and per class
// (interactive/bulk), all in virtual nanoseconds, plus a makespan summary
// carrying the decode/coalesce/hit counts. Because the simulator is a
// single-threaded event loop on a virtual clock, identical flags produce
// bit-identical output — which is what lets `make bench-check` gate these
// percentiles with the same regression bar as the wall-clock benchmarks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/vmd"
)

// config is the parsed command line: workload shape and fabric sizing.
type config struct {
	viewers    int     // interactive tenants
	window     int     // frames per interactive replay window
	sweeps     int     // back-and-forth sweeps over the window
	thinkMS    float64 // viewer think time between reads
	iaAtoms    int     // interactive subset size (protein-only)
	scans      int     // parallel scans by the bulk tenant
	scanFrames int     // frames per bulk scan
	bulkAtoms  int     // bulk frame size (full system)
	cacheMB    int64   // shared frame-cache budget
	quantumKB  int64   // DRR quantum per scheduler visit
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("adaload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.IntVar(&cfg.viewers, "viewers", 4, "interactive viewer tenants")
	fs.IntVar(&cfg.window, "window", 48, "frames per interactive replay window")
	fs.IntVar(&cfg.sweeps, "sweeps", 4, "back-and-forth sweeps per viewer")
	fs.Float64Var(&cfg.thinkMS, "think-ms", 5, "viewer think time between reads (ms)")
	fs.IntVar(&cfg.iaAtoms, "ia-atoms", 1000, "atoms per interactive (protein subset) frame")
	fs.IntVar(&cfg.scans, "scans", 4, "parallel scans by the bulk tenant")
	fs.IntVar(&cfg.scanFrames, "scan-frames", 4000, "frames per bulk scan")
	fs.IntVar(&cfg.bulkAtoms, "bulk-atoms", 40000, "atoms per bulk (full system) frame")
	fs.Int64Var(&cfg.cacheMB, "cache-mb", 64, "shared frame cache budget (MiB)")
	fs.Int64Var(&cfg.quantumKB, "quantum-kb", 512, "DRR quantum per scheduler visit (KiB)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.viewers < 1 || cfg.window < 1 || cfg.sweeps < 1 {
		return nil, fmt.Errorf("-viewers, -window, and -sweeps must be at least 1")
	}
	return cfg, nil
}

func (cfg *config) fabric(reg *metrics.Registry) serve.Config {
	return serve.Config{
		CacheBytes:   cfg.cacheMB << 20,
		QuantumBytes: cfg.quantumKB << 10,
		Metrics:      reg,
	}
}

// interactiveSessions are the viewers: small protein-subset windows replayed
// back and forth with think time, starts staggered 1 ms apart.
func (cfg *config) interactiveSessions() []serve.SimSession {
	var out []serve.SimSession
	for n := 0; n < cfg.viewers; n++ {
		out = append(out, serve.SimSession{
			Tenant:  fmt.Sprintf("ia%d", n),
			Class:   "interactive",
			Logical: fmt.Sprintf("/ia%d", n),
			Tag:     "p",
			NAtoms:  cfg.iaAtoms,
			Pattern: vmd.BackAndForth(cfg.window, cfg.sweeps),
			Think:   cfg.thinkMS / 1e3,
			Start:   float64(n) * 0.001,
		})
	}
	return out
}

// bulkSessions are one tenant's parallel full-trajectory scans with no think
// time: enough backlog to keep the decode server saturated.
func (cfg *config) bulkSessions() []serve.SimSession {
	var out []serve.SimSession
	for n := 0; n < cfg.scans; n++ {
		pattern := make([]int, cfg.scanFrames)
		for i := range pattern {
			pattern[i] = i
		}
		out = append(out, serve.SimSession{
			Tenant:  "bulk",
			Class:   "bulk",
			Logical: fmt.Sprintf("/bulk%d", n),
			Tag:     "misc",
			NAtoms:  cfg.bulkAtoms,
			Pattern: pattern,
		})
	}
	return out
}

// trimAffix returns s without prefix and suffix, reporting whether both were
// present around a non-empty middle.
func trimAffix(s, prefix, suffix string) (string, bool) {
	if strings.HasPrefix(s, prefix) && strings.HasSuffix(s, suffix) &&
		len(s) > len(prefix)+len(suffix) {
		return s[len(prefix) : len(s)-len(suffix)], true
	}
	return "", false
}

// emitScenario simulates sessions against a fresh fabric and writes the
// bench-formatted percentile lines. The iterations column is the sample
// count behind each percentile.
func emitScenario(w io.Writer, cfg *config, name string, sessions []serve.SimSession) serve.SimReport {
	reg := metrics.NewRegistry()
	rep := serve.Simulate(cfg.fabric(reg), serve.DefaultCostModel, sessions)
	snap := reg.Snapshot()
	var hists []string
	for n := range snap.Histograms {
		hists = append(hists, n)
	}
	sort.Strings(hists)
	for _, n := range hists {
		var label string
		if t, ok := trimAffix(n, "serve.tenant.", ".read_ns"); ok {
			label = "tenant=" + t
		} else if c, ok := trimAffix(n, "serve.class.", ".read_ns"); ok {
			label = "class=" + c
		} else {
			continue
		}
		h := snap.Histograms[n]
		fmt.Fprintf(w, "BenchmarkServe/%s/%s/p50 \t%d\t%d ns/op\n", name, label, h.Count, h.P50)
		fmt.Fprintf(w, "BenchmarkServe/%s/%s/p99 \t%d\t%d ns/op\n", name, label, h.Count, h.P99)
	}
	fmt.Fprintf(w, "BenchmarkServe/%s/makespan \t%d\t%d ns/op \t%d decodes \t%d coalesced \t%d hits \t%d throttled\n",
		name, rep.Reads, int64(rep.Makespan*1e9), rep.Decodes, rep.Coalesced, rep.Hits, rep.Throttled)
	return rep
}

func run(cfg *config, stdout, stderr io.Writer) error {
	solo := emitScenario(stdout, cfg, "solo", cfg.interactiveSessions())
	cont := emitScenario(stdout, cfg, "contended",
		append(cfg.interactiveSessions(), cfg.bulkSessions()...))
	for _, s := range []struct {
		name string
		rep  serve.SimReport
	}{{"solo", solo}, {"contended", cont}} {
		fmt.Fprintf(stderr, "adaload %s: reads=%d hits=%d decodes=%d coalesced=%d evictions=%d makespan=%.3fs\n",
			s.name, s.rep.Reads, s.rep.Hits, s.rep.Decodes, s.rep.Coalesced, s.rep.Evictions, s.rep.Makespan)
		if s.rep.Reads != s.rep.Hits+s.rep.Decodes+s.rep.Coalesced {
			return fmt.Errorf("adaload %s: accounting broken: reads=%d != hits+decodes+coalesced=%d",
				s.name, s.rep.Reads, s.rep.Hits+s.rep.Decodes+s.rep.Coalesced)
		}
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "adaload:", err)
		os.Exit(1)
	}
	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "adaload:", err)
		os.Exit(1)
	}
}
