// Command adabench regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	adabench                  # run every experiment
//	adabench -exp fig7b       # run one experiment
//	adabench -list            # list experiment IDs
//	adabench -scale 20        # shrink the live-pipeline experiments
//	adabench -sample 16       # sample frames for data-model calibration
//
// Small experiments run the live pipeline (real codec, real middleware,
// virtual clock); the paper-scale series are produced by the analytic
// engine calibrated from a real measured sample (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/gpcr"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	scale := flag.Int("scale", 10, "system shrink factor for live-pipeline experiments")
	sample := flag.Int("sample", 8, "real sample frames used to calibrate the data model")
	frames := flag.Int("frames", 120, "trajectory length for live-pipeline experiments")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	fmt.Fprintln(os.Stderr, "calibrating data model from a real sample (full-size system)...")
	dm, err := bench.Measure(gpcr.Default(), *sample)
	if err != nil {
		fatal(err)
	}
	cfg := &bench.Config{Model: dm, Scale: *scale, MeasuredFrames: *frames}
	fmt.Fprintf(os.Stderr,
		"model: %d atoms (%d protein), %.0f B/frame compressed, %.0f B/frame raw (%.2fx), protein fraction %.1f%%\n\n",
		dm.NAtoms, dm.ProteinAtoms, dm.CompressedPerFrame, dm.RawPerFrame,
		dm.CompressionRatio(), 100*dm.ProteinFraction())

	run := func(e bench.Experiment) {
		tbl, err := e.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Println(tbl.Format())
	}
	if *exp != "" {
		e, err := bench.Lookup(*exp)
		if err != nil {
			fatal(err)
		}
		run(e)
		return
	}
	for _, e := range bench.Experiments {
		run(e)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adabench:", err)
	os.Exit(1)
}
