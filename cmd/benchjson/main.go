// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result. Standard units map to
// fixed fields (ns_per_op, mb_per_s, bytes_per_op, allocs_per_op); any other
// unit — like the vstall virtual-stall metric — lands in the metrics map.
//
//	go test -run '^$' -bench ParallelDecode -benchmem . | go run ./cmd/benchjson
//
// With -compare it instead diffs two such JSON files and acts as the CI
// perf-regression gate:
//
//	benchjson -compare old.json new.json -max-regress 15 \
//	    -assert-speedup workers-4:serial:3.0
//
// The delta table goes to stdout. The exit status is 1 when any shared
// benchmark regressed by more than -max-regress percent, or when a speedup
// assertion (ratio of two benchmarks in new.json, matched by sub-benchmark
// suffix) falls below its bar. Speedup assertions whose numerator names a
// worker count the run's recorded "cpus" metric cannot satisfy are skipped
// with a note: a 2-core runner cannot show a 4-worker wall-clock speedup,
// and failing on physics would only teach people to ignore the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The rest of the line is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// canonicalName undoes the "-GOMAXPROCS" suffix go test appends to benchmark
// names on multi-proc runs, so a baseline recorded on an N-core box compares
// against a run from an M-core one. The suffix is ambiguous by inspection
// (workers-4 ends in "-4" with no procs suffix at GOMAXPROCS=1), so only
// results that report their own "cpus" metric are rewritten, and only when
// the trailing number equals that metric.
func canonicalName(r Result) string {
	cpus, ok := r.Metrics["cpus"]
	if !ok || cpus <= 1 {
		return r.Name
	}
	suffix := "-" + strconv.Itoa(int(cpus))
	return strings.TrimSuffix(r.Name, suffix)
}

func loadResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// deltaRow is one line of the comparison table.
type deltaRow struct {
	name     string
	unit     string  // "MB/s" or "ns/op"
	oldV     float64 // zero when the benchmark is new
	newV     float64 // zero when the benchmark vanished
	deltaPct float64 // positive = improvement, in the unit's "better" sense
	status   string  // "ok", "REGRESSION", "new", "gone"
}

// compareResults diffs two result sets by canonical name. Throughput
// (MB/s, higher better) is preferred when both sides report it; otherwise
// wall time (ns/op, lower better). A drop beyond maxRegress percent marks
// the row REGRESSION. Benchmarks on only one side are reported but never
// fail the gate — renames show up as a gone/new pair for a human to read.
func compareResults(base, fresh []Result, maxRegress float64) (rows []deltaRow, failed bool) {
	freshBy := map[string]Result{}
	for _, r := range fresh {
		freshBy[canonicalName(r)] = r
	}
	seen := map[string]bool{}
	for _, o := range base {
		name := canonicalName(o)
		seen[name] = true
		n, ok := freshBy[name]
		if !ok {
			rows = append(rows, deltaRow{name: name, unit: "ns/op", oldV: o.NsPerOp, status: "gone"})
			continue
		}
		row := deltaRow{name: name, status: "ok"}
		if o.MBPerS > 0 && n.MBPerS > 0 {
			row.unit, row.oldV, row.newV = "MB/s", o.MBPerS, n.MBPerS
			row.deltaPct = (n.MBPerS - o.MBPerS) / o.MBPerS * 100
		} else {
			row.unit, row.oldV, row.newV = "ns/op", o.NsPerOp, n.NsPerOp
			if o.NsPerOp > 0 {
				row.deltaPct = (o.NsPerOp - n.NsPerOp) / o.NsPerOp * 100
			}
		}
		if row.deltaPct < -maxRegress {
			row.status = "REGRESSION"
			failed = true
		}
		rows = append(rows, row)
	}
	for _, n := range fresh {
		if name := canonicalName(n); !seen[name] {
			rows = append(rows, deltaRow{name: name, unit: "ns/op", newV: n.NsPerOp, status: "new"})
		}
	}
	return rows, failed
}

func printDeltaTable(w io.Writer, rows []deltaRow, maxRegress float64) {
	fmt.Fprintf(w, "%-55s %14s %14s %9s  %s\n", "benchmark", "old", "new", "delta", "status")
	for _, r := range rows {
		val := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f %s", v, r.unit)
		}
		delta := "-"
		if r.status == "ok" || r.status == "REGRESSION" {
			delta = fmt.Sprintf("%+.1f%%", r.deltaPct)
		}
		fmt.Fprintf(w, "%-55s %14s %14s %9s  %s\n", r.name, val(r.oldV), val(r.newV), delta, r.status)
	}
	fmt.Fprintf(w, "(regression bar: -%.0f%% on MB/s, +%.0f%% on ns/op)\n", maxRegress, maxRegress)
}

// speedupSpec is one -assert-speedup entry: the ratio of two benchmarks in
// the NEW results, matched by sub-benchmark suffix, must reach Ratio.
type speedupSpec struct {
	num, den string
	ratio    float64
}

func parseSpeedupSpecs(s string) ([]speedupSpec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []speedupSpec
	for _, part := range strings.Split(s, ",") {
		f := strings.Split(part, ":")
		if len(f) != 3 {
			return nil, fmt.Errorf("bad speedup spec %q (want num:den:ratio)", part)
		}
		ratio, err := strconv.ParseFloat(f[2], 64)
		if err != nil || ratio <= 0 {
			return nil, fmt.Errorf("bad speedup ratio in %q", part)
		}
		specs = append(specs, speedupSpec{num: f[0], den: f[1], ratio: ratio})
	}
	return specs, nil
}

// findResult locates the unique result whose canonical name is key or ends
// in "/key".
func findResult(rs []Result, key string) (Result, error) {
	var found []Result
	for _, r := range rs {
		name := canonicalName(r)
		if name == key || strings.HasSuffix(name, "/"+key) {
			found = append(found, r)
		}
	}
	switch len(found) {
	case 0:
		return Result{}, fmt.Errorf("no benchmark matches %q", key)
	case 1:
		return found[0], nil
	}
	return Result{}, fmt.Errorf("%d benchmarks match %q", len(found), key)
}

var trailingCount = regexp.MustCompile(`-(\d+)$`)

// checkSpeedup evaluates one assertion against the new results. ok=false
// only on a hard failure; an assertion the runner lacks the cores to
// satisfy reports ok=true with a skip note.
func checkSpeedup(rs []Result, spec speedupSpec) (line string, ok bool) {
	num, err := findResult(rs, spec.num)
	if err != nil {
		return fmt.Sprintf("speedup %s/%s: %v", spec.num, spec.den, err), false
	}
	den, err := findResult(rs, spec.den)
	if err != nil {
		return fmt.Sprintf("speedup %s/%s: %v", spec.num, spec.den, err), false
	}
	// CPU gate: a numerator named e.g. workers-4 needs 4 schedulable CPUs
	// for a wall-clock speedup to be physically possible.
	if m := trailingCount.FindStringSubmatch(spec.num); m != nil {
		need, _ := strconv.Atoi(m[1])
		if cpus, has := num.Metrics["cpus"]; has && int(cpus) < need {
			return fmt.Sprintf("speedup %s/%s: SKIP (run recorded %d cpus, assertion needs %d)",
				spec.num, spec.den, int(cpus), need), true
		}
	}
	var speedup float64
	switch {
	case num.MBPerS > 0 && den.MBPerS > 0:
		speedup = num.MBPerS / den.MBPerS
	case num.NsPerOp > 0:
		speedup = den.NsPerOp / num.NsPerOp
	default:
		return fmt.Sprintf("speedup %s/%s: no comparable metric", spec.num, spec.den), false
	}
	verdict := "ok"
	if speedup < spec.ratio {
		verdict = "FAIL"
	}
	return fmt.Sprintf("speedup %s/%s = %.2fx (want >= %.2fx)  %s",
		spec.num, spec.den, speedup, spec.ratio, verdict), speedup >= spec.ratio
}

// runCompare drives the gate and returns the process exit code.
func runCompare(w io.Writer, oldPath, newPath string, maxRegress float64, speedups string) int {
	specs, err := parseSpeedupSpecs(speedups)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	base, err := loadResults(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	fresh, err := loadResults(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	rows, failed := compareResults(base, fresh, maxRegress)
	printDeltaTable(w, rows, maxRegress)
	for _, spec := range specs {
		line, ok := checkSpeedup(fresh, spec)
		fmt.Fprintln(w, line)
		if !ok {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(w, "RESULT: FAIL")
		return 1
	}
	fmt.Fprintln(w, "RESULT: ok")
	return 0
}

func main() {
	compare := flag.Bool("compare", false, "compare two benchjson files: -compare old.json new.json")
	maxRegress := flag.Float64("max-regress", 15, "percent slowdown on any shared benchmark that fails the gate")
	speedups := flag.String("assert-speedup", "", "comma-separated num:den:ratio assertions on the new results")
	flag.Parse()

	if *compare {
		// flag.Parse stops at the first positional argument, but the
		// documented invocation puts the gate options after the two file
		// paths; re-parse whatever followed them.
		args := flag.Args()
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-max-regress pct] [-assert-speedup num:den:ratio,...]")
			os.Exit(2)
		}
		if len(args) > 2 {
			rest := flag.NewFlagSet("compare", flag.ExitOnError)
			maxRegress = rest.Float64("max-regress", *maxRegress, "percent slowdown that fails the gate")
			speedups = rest.String("assert-speedup", *speedups, "num:den:ratio assertions")
			rest.Parse(args[2:])
			if rest.NArg() != 0 {
				fmt.Fprintln(os.Stderr, "benchjson: unexpected arguments:", rest.Args())
				os.Exit(2)
			}
		}
		os.Exit(runCompare(os.Stdout, args[0], args[1], *maxRegress, *speedups))
	}

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []Result{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
