// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result. Standard units map to
// fixed fields (ns_per_op, mb_per_s, bytes_per_op, allocs_per_op); any other
// unit — like the vstall virtual-stall metric — lands in the metrics map.
//
//	go test -run '^$' -bench ParallelDecode -benchmem . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The rest of the line is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []Result{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
