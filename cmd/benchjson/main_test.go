package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkParallelDecode/workers-4-8   \t 50\t  21565178 ns/op\t 145.23 MB/s\t 3517820 B/op\t     146 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkParallelDecode/workers-4-8" || r.Iterations != 50 {
		t.Fatalf("header parse: %+v", r)
	}
	if r.NsPerOp != 21565178 || r.MBPerS != 145.23 || r.BytesPerOp != 3517820 || r.AllocsPerOp != 146 {
		t.Fatalf("unit parse: %+v", r)
	}

	r, ok = parseLine("BenchmarkPlaybackPrefetch/sequential/prefetch 	       1	  21863671 ns/op	         0.0003489 vstall")
	if !ok {
		t.Fatal("custom-metric line rejected")
	}
	if r.Metrics["vstall"] != 0.0003489 {
		t.Fatalf("custom metric: %+v", r.Metrics)
	}

	for _, bad := range []string{"", "PASS", "ok  \trepro\t1.2s", "goos: linux", "BenchmarkX notanumber 3 ns/op"} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestCanonicalName(t *testing.T) {
	cases := []struct {
		name string
		cpus float64 // 0 = no cpus metric
		want string
	}{
		// 8-proc run: the -8 suffix is the procs count and strips.
		{"BenchmarkParallelDecode/workers-4-8", 8, "BenchmarkParallelDecode/workers-4"},
		// 1-proc run: go test appends no suffix, nothing to strip.
		{"BenchmarkParallelDecode/workers-4", 1, "BenchmarkParallelDecode/workers-4"},
		// Without the cpus metric the trailing -4 is ambiguous: keep it.
		{"BenchmarkParallelDecode/workers-4", 0, "BenchmarkParallelDecode/workers-4"},
		{"BenchmarkXTCDecode-8", 8, "BenchmarkXTCDecode"},
	}
	for _, c := range cases {
		r := Result{Name: c.name}
		if c.cpus > 0 {
			r.Metrics = map[string]float64{"cpus": c.cpus}
		}
		if got := canonicalName(r); got != c.want {
			t.Errorf("canonicalName(%q, cpus=%g) = %q, want %q", c.name, c.cpus, got, c.want)
		}
	}
}

func TestCompareResultsRegression(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkA", MBPerS: 100, NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 5},
	}
	fresh := []Result{
		{Name: "BenchmarkA", MBPerS: 80, NsPerOp: 1250}, // -20% MB/s: regression at bar 15
		{Name: "BenchmarkB", NsPerOp: 1100},             // +10% ns/op: inside the bar
		{Name: "BenchmarkNew", NsPerOp: 7},
	}
	rows, failed := compareResults(base, fresh, 15)
	if !failed {
		t.Fatal("20% throughput drop not flagged")
	}
	status := map[string]string{}
	for _, r := range rows {
		status[r.name] = r.status
	}
	want := map[string]string{
		"BenchmarkA": "REGRESSION", "BenchmarkB": "ok",
		"BenchmarkGone": "gone", "BenchmarkNew": "new",
	}
	for name, st := range want {
		if status[name] != st {
			t.Errorf("%s: status %q, want %q", name, status[name], st)
		}
	}

	// The same fresh numbers pass a looser bar; gone/new rows never fail.
	if _, failed := compareResults(base, fresh, 25); failed {
		t.Error("25% bar still failed")
	}
	// ns/op regression beyond the bar fails too.
	fresh[1].NsPerOp = 1300
	if _, failed := compareResults(base, fresh, 15); !failed {
		t.Error("30% ns/op slowdown not flagged")
	}
}

func TestCheckSpeedup(t *testing.T) {
	mk := func(cpus float64) []Result {
		m := map[string]float64{"cpus": cpus}
		// go test appends "-GOMAXPROCS" to names only on multi-proc runs.
		suffix := ""
		if cpus > 1 {
			suffix = "-" + strconv.Itoa(int(cpus))
		}
		return []Result{
			{Name: "BenchmarkParallelDecode/serial" + suffix, MBPerS: 100, Metrics: m},
			{Name: "BenchmarkParallelDecode/workers-4" + suffix, MBPerS: 350, Metrics: m},
		}
	}
	spec := speedupSpec{num: "workers-4", den: "serial", ratio: 3.0}

	if line, ok := checkSpeedup(mk(4), spec); !ok || !strings.Contains(line, "3.50x") {
		t.Errorf("3.5x at 4 cpus: ok=%v line=%q", ok, line)
	}
	// Below the bar: hard failure.
	rs := mk(4)
	rs[1].MBPerS = 250
	if line, ok := checkSpeedup(rs, spec); ok || !strings.Contains(line, "FAIL") {
		t.Errorf("2.5x at 4 cpus: ok=%v line=%q", ok, line)
	}
	// Too few cores for the assertion to be physical: skip, not fail.
	rs = mk(1)
	rs[1].MBPerS = 100
	if line, ok := checkSpeedup(rs, spec); !ok || !strings.Contains(line, "SKIP") {
		t.Errorf("1 cpu: ok=%v line=%q", ok, line)
	}
	// Unknown benchmark name: hard failure.
	if _, ok := checkSpeedup(mk(4), speedupSpec{num: "workers-16", den: "serial", ratio: 2}); ok {
		t.Error("missing numerator passed")
	}
}

func TestParseSpeedupSpecs(t *testing.T) {
	specs, err := parseSpeedupSpecs("workers-4:serial:3.0,workers-2:serial:1.5")
	if err != nil || len(specs) != 2 {
		t.Fatalf("specs=%v err=%v", specs, err)
	}
	if specs[0] != (speedupSpec{num: "workers-4", den: "serial", ratio: 3.0}) {
		t.Errorf("spec[0] = %+v", specs[0])
	}
	for _, bad := range []string{"workers-4:serial", "a:b:xyz", "a:b:-1"} {
		if _, err := parseSpeedupSpecs(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if specs, err := parseSpeedupSpecs(""); err != nil || specs != nil {
		t.Errorf("empty spec: %v, %v", specs, err)
	}
}

// TestRunCompareEndToEnd drives the gate exactly as `make bench-check` does,
// including the cross-machine name canonicalization (suffix-free 1-proc
// baseline vs an 8-proc fresh run).
func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rs []Result) string {
		data, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cpus8 := map[string]float64{"cpus": 8}
	baseline := write("old.json", []Result{
		{Name: "BenchmarkXTCDecode", MBPerS: 140, NsPerOp: 100},
		{Name: "BenchmarkParallelDecode/serial", MBPerS: 140, NsPerOp: 100},
		{Name: "BenchmarkParallelDecode/workers-4", MBPerS: 150, NsPerOp: 95},
	})
	good := write("new.json", []Result{
		{Name: "BenchmarkXTCDecode-8", MBPerS: 500, NsPerOp: 30, Metrics: cpus8},
		{Name: "BenchmarkParallelDecode/serial-8", MBPerS: 450, NsPerOp: 33, Metrics: cpus8},
		{Name: "BenchmarkParallelDecode/workers-4-8", MBPerS: 1500, NsPerOp: 10, Metrics: cpus8},
	})

	var out strings.Builder
	if code := runCompare(&out, baseline, good, 15, "workers-4:serial:3.0"); code != 0 {
		t.Fatalf("good run exited %d:\n%s", code, out.String())
	}
	for _, want := range []string{"BenchmarkParallelDecode/workers-4", "3.33x", "RESULT: ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// Feeding the stale numbers as the fresh run must fail the gate: the
	// improved baseline regressed and the speedup bar is missed.
	out.Reset()
	if code := runCompare(&out, good, baseline, 15, "workers-4:serial:3.0"); code != 1 {
		t.Fatalf("stale run exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "RESULT: FAIL") {
		t.Errorf("stale run output:\n%s", out.String())
	}

	// Unreadable input is a usage error, not a gate verdict.
	if code := runCompare(&out, baseline, filepath.Join(dir, "missing.json"), 15, ""); code != 2 {
		t.Errorf("missing file exited %d", code)
	}
}
