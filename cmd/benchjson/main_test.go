package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkParallelDecode/workers-4-8   \t 50\t  21565178 ns/op\t 145.23 MB/s\t 3517820 B/op\t     146 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkParallelDecode/workers-4-8" || r.Iterations != 50 {
		t.Fatalf("header parse: %+v", r)
	}
	if r.NsPerOp != 21565178 || r.MBPerS != 145.23 || r.BytesPerOp != 3517820 || r.AllocsPerOp != 146 {
		t.Fatalf("unit parse: %+v", r)
	}

	r, ok = parseLine("BenchmarkPlaybackPrefetch/sequential/prefetch 	       1	  21863671 ns/op	         0.0003489 vstall")
	if !ok {
		t.Fatal("custom-metric line rejected")
	}
	if r.Metrics["vstall"] != 0.0003489 {
		t.Fatalf("custom metric: %+v", r.Metrics)
	}

	for _, bad := range []string{"", "PASS", "ok  \trepro\t1.2s", "goos: linux", "BenchmarkX notanumber 3 ns/op"} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}
