// Command xtcgen generates a synthetic GPCR dataset on disk: a .pdb
// structure file and a compressed .xtc trajectory, optionally also a raw
// (uncompressed) copy.
//
// Usage:
//
//	xtcgen -out /tmp/gpcr -frames 626            # full-size system
//	xtcgen -out /tmp/small -frames 100 -scale 10 # 1/10 system
//	xtcgen -out /tmp/gpcr -frames 626 -raw       # also write the raw form
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dcd"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/pdb"
	"repro/internal/xtc"
)

func main() {
	out := flag.String("out", "gpcr", "output path prefix (<out>.pdb, <out>.xtc)")
	frames := flag.Int("frames", 626, "trajectory frames to generate")
	scale := flag.Int("scale", 1, "system shrink factor (1 = full ~43.5k atoms)")
	seed := flag.Int64("seed", 42, "deterministic generation seed")
	raw := flag.Bool("raw", false, "also write an uncompressed <out>.raw.xtc")
	dcdOut := flag.Bool("dcd", false, "also write a NAMD/CHARMM <out>.dcd")
	flag.Parse()

	if err := run(*out, *frames, *scale, *seed, *raw, *dcdOut); err != nil {
		fmt.Fprintln(os.Stderr, "xtcgen:", err)
		os.Exit(1)
	}
}

func run(out string, frames, scale int, seed int64, raw, dcdOut bool) error {
	cfg := gpcr.Scaled(scale)
	cfg.Seed = seed
	sys, err := cfg.Build()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	pdbPath := out + ".pdb"
	pf, err := os.Create(pdbPath)
	if err != nil {
		return err
	}
	if err := pdb.Write(pf, sys.Structure); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}

	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	simr, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		return err
	}

	xtcPath := out + ".xtc"
	xf, err := os.Create(xtcPath)
	if err != nil {
		return err
	}
	cw := xtc.NewWriter(xf)
	var rw *xtc.Writer
	var rf *os.File
	if raw {
		rf, err = os.Create(out + ".raw.xtc")
		if err != nil {
			xf.Close()
			return err
		}
		rw = xtc.NewRawWriter(rf)
	}
	var dw *dcd.Writer
	var df *os.File
	if dcdOut {
		df, err = os.Create(out + ".dcd")
		if err != nil {
			xf.Close()
			return err
		}
		dw = dcd.NewWriter(df, dcd.Header{
			NFrames: frames, StepInterval: 1, DeltaPS: 10, HasUnitCell: true,
			Titles: []string{"SYNTHETIC CB1-LIKE GPCR SYSTEM (xtcgen)"},
		})
	}
	for i := 0; i < frames; i++ {
		f := simr.Step()
		if err := cw.WriteFrame(f); err != nil {
			return err
		}
		if rw != nil {
			if err := rw.WriteFrame(f); err != nil {
				return err
			}
		}
		if dw != nil {
			if err := dw.WriteFrame(f); err != nil {
				return err
			}
		}
	}
	if err := xf.Close(); err != nil {
		return err
	}
	if rf != nil {
		if err := rf.Close(); err != nil {
			return err
		}
	}
	if dw != nil {
		if err := dw.Close(); err != nil {
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
		fmt.Printf("%s.dcd: NAMD/CHARMM format\n", out)
	}

	fmt.Printf("system: %d atoms (%.1f%% protein), box %.1f nm\n",
		sys.Structure.NAtoms(), 100*cfg.ProteinFraction(), sys.Box)
	fmt.Printf("%s: structure (%d atoms)\n", pdbPath, sys.Structure.NAtoms())
	fmt.Printf("%s: %d frames, %d bytes compressed (%.2fx vs raw)\n",
		xtcPath, frames, cw.BytesWritten(),
		float64(frames)*float64(xtc.RawFrameSize(sys.Structure.NAtoms()))/float64(cw.BytesWritten()))
	if rw != nil {
		fmt.Printf("%s.raw.xtc: %d bytes raw\n", out, rw.BytesWritten())
	}
	return nil
}
