// Package ada is the public API of the ADA reproduction: an
// application-conscious data acquirer for visual molecular dynamics.
//
// ADA is a light-weight file-system middleware that pre-processes molecular
// dynamics trajectory data on the storage side: it decompresses the
// trajectory once at ingest, categorizes atoms with the structure file
// (protein / water / lipid / ion / ligand), labels contiguous index ranges
// per category (Algorithm 1 of the paper), and dispatches each tagged
// subset to the backend its tag maps to — the active protein data to fast
// SSD-backed storage, the inactive MISC data to cheap HDD-backed storage.
// A visualization front end then loads exactly the subset it needs
// (`mol addfile bar.xtc tag p`), already decompressed and filtered.
//
// The simplest end-to-end flow:
//
//	store, _ := ada.NewContainerStore(
//		ada.Backend{Name: "ssd", FS: ada.NewMemFS(), Mount: "/mnt1"},
//		ada.Backend{Name: "hdd", FS: ada.NewMemFS(), Mount: "/mnt2"},
//	)
//	acq := ada.New(store, nil, ada.Options{})
//	pdbBytes, xtcBytes, _ := ada.GenerateTrajectory(ada.ScaledSystem(100), 10)
//	report, _ := acq.Ingest("/traj.xtc", pdbBytes, bytes.NewReader(xtcBytes))
//	sub, _ := acq.OpenSubset("/traj.xtc", ada.TagProtein)
//
// Everything the paper's evaluation needs is also exported: the three
// platform models (NewSSDServer, NewSmallCluster, NewFatNode), the VMD-like
// session with its four load paths and OOM accounting, and the TCP
// storage-node server/client for cross-process deployments.
package ada

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/metrics"
	"repro/internal/pdb"
	"repro/internal/placement"
	"repro/internal/plfs"
	"repro/internal/rpc"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/tier"
	"repro/internal/vfs"
	"repro/internal/vmd"
	"repro/internal/xtc"
)

// Core middleware types.
type (
	// Acquirer is the ADA middleware instance (data pre-processor +
	// I/O determinator).
	Acquirer = core.ADA
	// Options configures an Acquirer.
	Options = core.Options
	// Granularity selects coarse (p/m) or fine (per-category) tagging.
	Granularity = core.Granularity
	// Placement maps tags to backend names.
	Placement = core.Placement
	// IngestReport summarizes one ingest pass.
	IngestReport = core.IngestReport
	// Manifest records an ingested dataset's subsets and placement.
	Manifest = core.Manifest
	// LabelSet is the labeler's output (Algorithm 1).
	LabelSet = core.LabelSet
	// SubsetReader streams one tagged subset's frames.
	SubsetReader = core.SubsetReader
	// StorageCost models the storage node's pre-processing CPU rates.
	StorageCost = core.StorageCost
)

// Storage types.
type (
	// FS is the POSIX-like file-system interface all backends implement.
	FS = vfs.FS
	// File is an open file handle.
	File = vfs.File
	// Backend is one mount of the PLFS-style container store.
	Backend = plfs.Backend
	// ContainerStore is the multi-backend container layer ADA dispatches
	// through.
	ContainerStore = plfs.FS
)

// Workload and front-end types.
type (
	// SystemConfig describes a synthetic GPCR system's composition.
	SystemConfig = gpcr.Config
	// System is a built synthetic system.
	System = gpcr.System
	// Frame is one trajectory snapshot.
	Frame = xtc.Frame
	// Session is a VMD-like process with memory accounting.
	Session = vmd.Session
	// ComputeCost models the compute node's CPU rates.
	ComputeCost = vmd.ComputeCost
	// Platform is one of the paper's three evaluation environments.
	Platform = cluster.Platform
	// Dataset is a workload staged on a platform.
	Dataset = cluster.Dataset
	// Env is the virtual clock + profile experiments charge into.
	Env = sim.Env
)

// Tags and granularities.
const (
	// TagProtein is the active-data tag ("p").
	TagProtein = core.TagProtein
	// TagMisc is the inactive-data tag ("m").
	TagMisc = core.TagMisc
	// Coarse groups data into p and m, as the paper's prototype does.
	Coarse = core.Coarse
	// Fine groups data per residue category (Section 4.1's extension).
	Fine = core.Fine
)

// ErrOutOfMemory reports an OOM-killed load (re-exported from the session).
var ErrOutOfMemory = vmd.ErrOutOfMemory

// New returns an ADA middleware instance over a container store. env may be
// nil to disable virtual-time accounting.
func New(store *ContainerStore, env *Env, opts Options) *Acquirer {
	return core.New(store, env, opts)
}

// NewContainerStore builds the PLFS-style container layer over backends.
func NewContainerStore(backends ...Backend) (*ContainerStore, error) {
	return plfs.New(backends...)
}

// NewMemFS returns an in-memory backend file system.
func NewMemFS() *vfs.MemFS { return vfs.NewMemFS() }

// NewEnv returns a fresh virtual-time environment.
func NewEnv() *Env { return sim.NewEnv() }

// NewSession returns a VMD-like session. memCapacity of 0 means unlimited;
// a zero ComputeCost selects the calibrated defaults.
func NewSession(env *Env, memCapacity int64, cost ComputeCost) *Session {
	return vmd.NewSession(env, memCapacity, cost)
}

// DefaultSystem returns the paper-scale synthetic CB1-like system
// (~43,500 atoms, ~42.5% protein).
func DefaultSystem() SystemConfig { return gpcr.Default() }

// ScaledSystem returns DefaultSystem shrunk by factor for fast runs.
func ScaledSystem(factor int) SystemConfig { return gpcr.Scaled(factor) }

// The three evaluation platforms (Sections 4.1-4.3).
var (
	NewSSDServer    = cluster.NewSSDServer
	NewSmallCluster = cluster.NewSmallCluster
	NewFatNode      = cluster.NewFatNode
)

// GenerateTrajectory builds the system, writes its structure file, and
// simulates a compressed trajectory of the given length. It is the
// convenience entry point for examples and tools; use the internal
// generator packages directly for streaming generation of large files.
func GenerateTrajectory(cfg SystemConfig, frames int) (pdbBytes, xtcBytes []byte, err error) {
	sys, err := cfg.Build()
	if err != nil {
		return nil, nil, err
	}
	var pb bytes.Buffer
	if err := pdb.Write(&pb, sys.Structure); err != nil {
		return nil, nil, err
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	s, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		return nil, nil, err
	}
	var tb bytes.Buffer
	w := xtc.NewWriter(&tb)
	if err := s.WriteTrajectory(w, frames); err != nil {
		return nil, nil, err
	}
	return pb.Bytes(), tb.Bytes(), nil
}

// ServeStorageNode exposes a backend file system on a TCP listener (the
// cmd/adanode entry point); it blocks until the listener closes.
func ServeStorageNode(ln net.Listener, fsys FS, logger *log.Logger) error {
	return rpc.NewServer(fsys, logger).Serve(ln)
}

// DialStorageNode connects to a remote storage node; the returned client
// implements FS and can be used as a container-store backend.
func DialStorageNode(addr string) (*rpc.Client, error) { return rpc.Dial(addr) }

// Transport resilience (see DESIGN.md "Failure model").
type (
	// RetryPolicy bounds a storage-node client's deadlines, retries, and
	// backoff; retries are idempotency-aware.
	RetryPolicy = rpc.RetryPolicy
	// NodeDialer customizes how a storage-node client connects (e.g. to
	// wrap the transport with a FaultInjector).
	NodeDialer = rpc.Dialer
	// FaultInjector deterministically injects transport and file-system
	// faults for resilience testing.
	FaultInjector = faultfs.Injector
	// FaultRule is one fault clause of an injector.
	FaultRule = faultfs.Rule
)

// Resilience errors.
var (
	// ErrBackendDown marks a backend whose retry budget is exhausted;
	// the container store degrades instead of hanging.
	ErrBackendDown = vfs.ErrBackendDown
	// ErrClientClosed is returned by storage-node calls issued after Close.
	ErrClientClosed = rpc.ErrClientClosed
	// ErrServerClosed is how a storage node's Serve reports a graceful
	// shutdown.
	ErrServerClosed = rpc.ErrServerClosed
	// ErrFaultInjected marks an error synthesized by a FaultInjector.
	ErrFaultInjected = faultfs.ErrInjected
)

// DefaultRetryPolicy returns the production retry defaults used by
// DialStorageNode.
func DefaultRetryPolicy() RetryPolicy { return rpc.DefaultRetryPolicy() }

// DialStorageNodeWith connects to a storage node through a custom dialer
// (nil means plain TCP) under an explicit retry policy.
func DialStorageNodeWith(addr string, dialer NodeDialer, policy RetryPolicy) (*rpc.Client, error) {
	return rpc.DialWith(addr, dialer, policy)
}

// ParseFaultSpec builds a fault injector from its textual form, e.g.
// "seed=42; drop:conn.read:every=3; slow:read:delay=50ms" (the adanode
// -fault-spec grammar).
func ParseFaultSpec(spec string) (*FaultInjector, error) { return faultfs.Parse(spec) }

// InjectFaults wraps a backend file system so the injector's rules apply
// to its operations.
func InjectFaults(fsys FS, in *FaultInjector) FS { return faultfs.Wrap(fsys, in) }

// InjectConnFaults wraps a network connection so the injector's conn.read
// and conn.write rules apply; combine with a NodeDialer to fault a
// storage-node client's transport:
//
//	dialer := func(addr string) (net.Conn, error) {
//		conn, err := net.Dial("tcp", addr)
//		if err != nil {
//			return nil, err
//		}
//		return ada.InjectConnFaults(conn, in), nil
//	}
func InjectConnFaults(conn net.Conn, in *FaultInjector) net.Conn {
	return faultfs.WrapConn(conn, in)
}

// Multi-node placement (see DESIGN.md "Cluster model"): a versioned table
// maps container directories onto storage nodes with R-way replication;
// the cluster FS routes reads through replica failover and hedging, and
// rebalances data when the table changes.
type (
	// PlacementTable is the versioned container-to-node map every cluster
	// member serves (adanode -cluster-table / -join).
	PlacementTable = placement.Table
	// PlacementNode names one storage node and its address.
	PlacementNode = placement.Node
	// StorageCluster is a replicated FS over the placement table's nodes;
	// use it as the single backend of a ContainerStore.
	StorageCluster = placement.Cluster
	// ClusterConfig tunes cluster behavior (hedged-read delay, metrics).
	ClusterConfig = placement.Config
	// RebalanceReport summarizes what one Cluster.Rebalance moved.
	RebalanceReport = placement.RebalanceReport
	// NodePool is a vfs.FS fanning calls over several connections to one
	// storage node; register one per node as the Cluster's FS.
	NodePool = rpc.Pool
)

// NewStorageCluster builds the replicated cluster FS: every node the
// table names must have an FS (usually a NodePool) in nodes.
func NewStorageCluster(tbl *PlacementTable, nodes map[string]FS, cfg ClusterConfig) (*StorageCluster, error) {
	return placement.NewCluster(tbl, nodes, cfg)
}

// ParsePlacementTable decodes and validates a placement table's JSON form.
func ParsePlacementTable(data []byte) (*PlacementTable, error) { return placement.Unmarshal(data) }

// NewStorageNodePool opens size lazy connections to one storage node under
// the given retry policy (nil dialer means plain TCP). Pool calls fail
// with ErrBackendDown once retries exhaust, which is what lets a Cluster
// fail over instead of hanging.
func NewStorageNodePool(addr string, size int, dialer NodeDialer, policy RetryPolicy) *NodePool {
	return rpc.NewPool(addr, size, dialer, policy)
}

// Durability types (see DESIGN.md "Durability model"): crash-consistent
// ingest recovery, end-to-end checksum verification, and background
// scrubbing.
type (
	// RecoveryAction reports what Recover did to one container.
	RecoveryAction = core.RecoveryAction
	// FsckResult is one dataset's integrity verdict list.
	FsckResult = core.FsckResult
	// DroppingVerdict is Fsck's judgement of one dropping.
	DroppingVerdict = core.DroppingVerdict
	// Scrubber verifies every dataset's checksums at a bounded byte rate.
	Scrubber = core.Scrubber
	// ScrubReport summarizes one scrub pass.
	ScrubReport = core.ScrubReport
)

// Recovery outcomes per container, as returned by Acquirer.Recover.
const (
	// RecoveryClean: committed, nothing to do.
	RecoveryClean = core.RecoveryClean
	// RecoverySwept: committed, leftover ingest state removed.
	RecoverySwept = core.RecoverySwept
	// RecoveryCommitted: an interrupted commit was replayed to completion.
	RecoveryCommitted = core.RecoveryCommitted
	// RecoveryRolledBack: the ingest never committed; the container was
	// removed.
	RecoveryRolledBack = core.RecoveryRolledBack
)

// ErrCorrupted marks a verified read whose stored bytes fail their
// checksum on every available copy (primary and replica).
var ErrCorrupted = vfs.ErrCorrupted

// Tiering (see DESIGN.md "Tiering model"): read-path heat tracking and a
// heat-driven background migrator that moves tagged subsets between
// backends with the ingest pipeline's crash-safety guarantees.
type (
	// AccessFunc observes one read-path dropping access; install a tracker's
	// Record via Acquirer.SetAccessFunc (and FrameCache.SetAccessFunc for
	// cache hits, which storage cannot see).
	AccessFunc = core.AccessFunc
	// HeatTracker aggregates accesses into exponentially decayed
	// per-dropping heat.
	HeatTracker = tier.Tracker
	// TierPolicy ranks migration candidates and supplies pins.
	TierPolicy = tier.Policy
	// LFUPolicy is the default decayed-LFU policy with per-tag pins.
	LFUPolicy = tier.LFU
	// TierConfig parameterizes the migration planner (backends, capacity,
	// watermarks).
	TierConfig = tier.Config
	// Migrator plans and executes heat-driven migrations.
	Migrator = tier.Migrator
	// MigrationStep summarizes one planning round.
	MigrationStep = tier.StepReport
	// TierReport snapshots placements and heat for operators.
	TierReport = tier.Report
)

// Per-tag placement pins (TierPolicy overrides that outrank heat).
const (
	// PinNone lets the heat policy decide.
	PinNone = tier.PinNone
	// PinFast keeps a tag on the fast backend once promoted.
	PinFast = tier.PinFast
	// PinNever excludes a tag from migration.
	PinNever = tier.PinNever
)

// NewHeatTracker returns a heat tracker reading seconds from now (nil =
// wall clock) with the given half-life (0 disables decay).
func NewHeatTracker(now func() float64, halfLifeSeconds float64) *HeatTracker {
	if now == nil {
		now = tier.WallClock()
	}
	return tier.NewTracker(now, halfLifeSeconds)
}

// NewLFUPolicy returns the default decayed-LFU policy with no pins.
func NewLFUPolicy() *LFUPolicy { return tier.NewLFU() }

// NewMigrator validates cfg against the store and returns a migration
// planner; pol nil selects the default decayed-LFU policy.
func NewMigrator(acq *Acquirer, store *ContainerStore, trk *HeatTracker, pol TierPolicy, cfg TierConfig) (*Migrator, error) {
	return tier.NewMigrator(acq, store, trk, pol, cfg)
}

// ParseTierSpec parses the adanode/adactl tier-spec grammar, e.g.
// "fast=ssd,slow=hdd,cap=64MiB,halflife=5m,pin=p:fast"; the returned
// policy carries the pins.
func ParseTierSpec(spec string) (TierConfig, *LFUPolicy, error) { return tier.ParseSpec(spec) }

// Extension types (see DESIGN.md "extensions"):
type (
	// Schema is the config-file-driven categorizer (the paper's stated
	// future work).
	Schema = core.Schema
	// SchemaRule is one first-match-wins categorization rule.
	SchemaRule = core.Rule
	// TrajectoryReader abstracts ingest input formats (XTC, DCD, TRR).
	TrajectoryReader = core.TrajectoryReader
	// FrameSource provides random frame access for playback.
	FrameSource = vmd.FrameSource
	// FrameCache is the LRU playback cache with memory accounting.
	FrameCache = vmd.FrameCache
	// PlayStats summarizes a playback run (hit rate, stalls).
	PlayStats = vmd.PlayStats
)

// ParseSchema reads a user-defined categorization schema from its JSON
// configuration form.
func ParseSchema(data []byte) (*Schema, error) { return core.ParseSchema(data) }

// Trajectory-format adapters for Acquirer.IngestTrajectory.
var (
	// NewXTCTrajectory wraps a compressed XTC stream.
	NewXTCTrajectory = core.NewXTCTrajectory
	// NewDCDTrajectory wraps a NAMD/CHARMM DCD stream.
	NewDCDTrajectory = core.NewDCDTrajectory
	// NewTRRTrajectory wraps a GROMACS TRR stream.
	NewTRRTrajectory = core.NewTRRTrajectory
)

// Playback access patterns (Section 2.1's replay behaviors).
var (
	// SequentialPattern plays 0..frames-1 once.
	SequentialPattern = vmd.Sequential
	// BackAndForthPattern sweeps the trajectory forward and backward.
	BackAndForthPattern = vmd.BackAndForth
	// RandomAccessPattern plays uniformly random frames.
	RandomAccessPattern = vmd.RandomAccess
)

// Select evaluates a VMD-style atom-selection expression ("protein and
// chain A") against a structure, returning the matching atom index ranges.
var Select = vmd.Select

// Multi-tenant serving (internal/serve): many playback sessions multiplex
// over one shared, size-bounded frame cache with heat-aware admission,
// deficit-round-robin fair-share scheduling, per-tenant quotas, and
// singleflight request coalescing. A ServeHandle is a playback FrameSource,
// so sessions play through the fabric with Session.PlayThrough.
type (
	// ServeFabric is the live multi-tenant serving layer.
	ServeFabric = serve.Fabric
	// ServeConfig sizes a fabric (cache budget, DRR quantum, quotas).
	ServeConfig = serve.Config
	// ServeHandle is one tenant's view of a dataset subset in the fabric.
	ServeHandle = serve.Handle
	// ServeSimSession is one synthetic client in a SimulateServe run.
	ServeSimSession = serve.SimSession
	// ServeSimReport summarizes a SimulateServe run.
	ServeSimReport = serve.SimReport
	// ServeCostModel prices the simulated node's decode and hit paths.
	ServeCostModel = serve.CostModel
)

// DefaultServeCostModel matches the repo's measured decode rate.
var DefaultServeCostModel = serve.DefaultCostModel

// NewServeFabric starts a live serving fabric; Close it when done.
func NewServeFabric(cfg ServeConfig) *ServeFabric { return serve.New(cfg) }

// SimulateServe replays sessions through the fabric's deterministic
// discrete-event simulator (virtual clock, one decode server); latency
// percentiles land in cfg.Metrics under serve.tenant.* / serve.class.*.
func SimulateServe(cfg ServeConfig, cost ServeCostModel, sessions []ServeSimSession) ServeSimReport {
	return serve.Simulate(cfg, cost, sessions)
}

// Streaming ingest (see DESIGN.md "Streaming model"): a live dataset is an
// open container a producer appends frame batches to while readers tail the
// growing head with bounded staleness. Sealing turns it into an ordinary
// immutable container, byte-identical to a one-shot Ingest of the same
// frames.
type (
	// LiveIngest is an open append session on a live dataset.
	LiveIngest = core.LiveIngest
	// LiveHead is the durably published state of a live dataset.
	LiveHead = core.LiveHead
	// LiveReader tails one subset of a live dataset at the core layer;
	// most callers want the higher-level StreamSource.
	LiveReader = core.LiveReader
	// StreamSource is a tailing FrameSource over a live dataset; wrap it
	// in a prefetching session source to play a trajectory as it grows.
	StreamSource = stream.Source
	// StreamOptions configures a StreamSource (staleness bound, metrics).
	StreamOptions = stream.Options
	// StreamIngestor decouples a bursty producer from storage latency with
	// a bounded append queue; backpressure lands in stream.append.blocked_ns.
	StreamIngestor = stream.Ingestor
)

// RecoveryLive: a streaming ingest was killed mid-append; the container is
// still live and can be resumed with Acquirer.ResumeLiveIngest.
const RecoveryLive = core.RecoveryLive

// DefaultStreamStaleness bounds how far a tailing reader's view of the head
// may lag the producer's last publication.
const DefaultStreamStaleness = stream.DefaultStaleness

// ErrLiveClosed unblocks readers parked past the head when their live
// source is closed.
var ErrLiveClosed = core.ErrLiveClosed

// XTCIndex records every frame's offset and encoded size in a compressed
// trajectory stream; producers use it to cut whole-frame append batches.
type XTCIndex = xtc.Index

// BuildXTCIndex scans a compressed XTC stream once and indexes its frame
// boundaries without decompressing coordinate payloads.
func BuildXTCIndex(r io.ReaderAt, size int64) (*XTCIndex, error) {
	return xtc.BuildIndex(r, size)
}

// OpenStream starts tailing one subset of a live (or already sealed)
// dataset.
func OpenStream(acq *Acquirer, logical, tag string, opts StreamOptions) (*StreamSource, error) {
	return stream.Open(acq, logical, tag, opts)
}

// NewStreamIngestor wraps an open live-ingest session with a bounded append
// queue (0 selects the default bound); reg may be nil. Close drains the
// queue and seals the dataset.
func NewStreamIngestor(li *LiveIngest, queueBatches int, reg *MetricsRegistry) *StreamIngestor {
	return stream.NewIngestor(li, queueBatches, reg)
}

// Runtime observability (see internal/metrics): the storage stack —
// container store, RPC nodes, ingest pipeline, playback cache — records
// wall-clock counters, latency histograms, and span traces into a shared
// registry, independent of the virtual-time Env profiles.
type (
	// MetricsRegistry is the concurrency-safe runtime metrics registry.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = metrics.Snapshot
)

// Metrics returns the process-wide default registry every instrumented
// component reports into unless configured otherwise. Print a run summary
// with Metrics().WriteText(os.Stdout), or serve it: cmd/adanode exposes the
// same registry over HTTP with -metrics-addr.
func Metrics() *MetricsRegistry { return metrics.Default }

// NewMetricsRegistry returns an isolated registry; wire it through
// Options.Metrics, ContainerStore.SetMetrics, Session.SetMetrics, or
// vfs.Instrument to scope collection to one component.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// InstrumentFS wraps a backend file system so every operation, byte, and
// latency is recorded under prefix in reg (nil = the default registry).
func InstrumentFS(fsys FS, reg *MetricsRegistry, prefix string) FS {
	return vfs.Instrument(fsys, reg, prefix)
}

// Version identifies this reproduction.
const Version = "1.0.0"

// String renders a short library banner.
func String() string {
	return fmt.Sprintf("ada %s — application-conscious data acquirer (ICPP'21 reproduction)", Version)
}
