// finegrained-tags demonstrates the Section 4.1 extension: with
// fine-grained categorization, a biologist can pull any single component of
// the system — `mol addfile bar.xtc tag water` — and ADA serves exactly
// that subset from wherever its tag was placed.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	ada "repro"
)

func main() {
	store, err := ada.NewContainerStore(
		ada.Backend{Name: "ssd", FS: ada.NewMemFS(), Mount: "/mnt1"},
		ada.Backend{Name: "hdd", FS: ada.NewMemFS(), Mount: "/mnt2"},
	)
	if err != nil {
		log.Fatal(err)
	}
	// Fine granularity: one tag per residue category.
	acq := ada.New(store, nil, ada.Options{Granularity: ada.Fine})

	pdbBytes, xtcBytes, err := ada.GenerateTrajectory(ada.ScaledSystem(30), 10)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := acq.Ingest("/bar.xtc", pdbBytes, bytes.NewReader(xtcBytes)); err != nil {
		log.Fatal(err)
	}

	m, err := acq.Manifest("/bar.xtc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d atoms categorized into %d tags\n",
		m.Logical, m.NAtoms, len(m.Subsets))
	for _, tag := range m.Tags() {
		s := m.Subsets[tag]
		fmt.Printf("  %-8s %7d atoms  %9d bytes  on %-4s (%s)\n",
			tag, s.NAtoms, s.Bytes, s.Backend, s.Ranges)
	}

	// View only the solvent: the lipid bilayer and the protein never move.
	fmt.Println("\n$ mol addfile /mnt/bar.xtc tag water")
	sub, err := acq.OpenSubset("/bar.xtc", "water")
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	frames, minZ, maxZ := 0, float32(1e9), float32(-1e9)
	for {
		f, err := sub.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		frames++
		for _, c := range f.Coords {
			if c[2] < minZ {
				minZ = c[2]
			}
			if c[2] > maxZ {
				maxZ = c[2]
			}
		}
	}
	fmt.Printf("streamed %d frames of %d water atoms; z spans %.2f..%.2f nm\n",
		frames, sub.Info.NAtoms, minZ, maxZ)
	fmt.Println("(note the membrane slab gap around the box middle — the water")
	fmt.Println(" grid excludes the bilayer region, visible without loading lipids)")
}
