// custom-schema demonstrates the paper's stated future direction: a
// dynamic categorizing-and-labeling interface where the user describes the
// structure of the raw data in a configuration file instead of relying on
// the built-in protein/MISC split. Here a binding-site study keeps the
// aromatic pocket residues and the ligand on fast storage as their own
// tags, and everything else on bulk storage.
package main

import (
	"bytes"
	"fmt"
	"log"

	ada "repro"
	"repro/internal/core"
)

const schemaJSON = `{
  "name": "cb1-binding-site",
  "rules": [
    {"tag": "pocket",  "residues": ["TRP", "PHE"]},
    {"tag": "ligand",  "hetatm": true, "categories": ["ligand"]},
    {"tag": "protein", "categories": ["protein"]},
    {"tag": "solvent", "categories": ["water", "ion"]}
  ],
  "default_tag": "membrane",
  "placement": {
    "pocket": "ssd", "ligand": "ssd", "protein": "ssd",
    "solvent": "hdd", "membrane": "hdd"
  }
}`

func main() {
	schema, err := core.ParseSchema([]byte(schemaJSON))
	if err != nil {
		log.Fatal(err)
	}
	store, err := ada.NewContainerStore(
		ada.Backend{Name: "ssd", FS: ada.NewMemFS(), Mount: "/mnt1"},
		ada.Backend{Name: "hdd", FS: ada.NewMemFS(), Mount: "/mnt2"},
	)
	if err != nil {
		log.Fatal(err)
	}
	acq := ada.New(store, nil, ada.Options{Schema: schema})

	pdbBytes, xtcBytes, err := ada.GenerateTrajectory(ada.ScaledSystem(30), 8)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := acq.Ingest("/study.xtc", pdbBytes, bytes.NewReader(xtcBytes))
	if err != nil {
		log.Fatal(err)
	}
	m, err := acq.Manifest("/study.xtc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema %q categorized %d atoms into %d tags:\n",
		schema.Name, rep.NAtoms, len(m.Subsets))
	for _, tag := range m.Tags() {
		s := m.Subsets[tag]
		fmt.Printf("  %-8s %6d atoms %9d bytes  on %-4s\n", tag, s.NAtoms, s.Bytes, s.Backend)
	}

	// The study only ever touches the pocket: a few percent of the data.
	sub, err := acq.OpenSubset("/study.xtc", "pocket")
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	fmt.Printf("\npocket subset: %d atoms in ranges %s — %.1f%% of the raw bytes\n",
		sub.Info.NAtoms, sub.Info.Ranges,
		100*float64(sub.Info.Bytes)/float64(rep.Raw))
}
