// Live ingest: a producer appends trajectory frames to an open dataset
// while a reader tails the growing head — the streaming analogue of the
// quickstart's one-shot ingest. Sealing the session leaves an ordinary
// immutable container, byte-identical to what a one-shot ingest of the
// same frames would have written.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"

	ada "repro"
)

func main() {
	store, err := ada.NewContainerStore(
		ada.Backend{Name: "ssd", FS: ada.NewMemFS(), Mount: "/mnt1"},
		ada.Backend{Name: "hdd", FS: ada.NewMemFS(), Mount: "/mnt2"},
	)
	if err != nil {
		log.Fatal(err)
	}
	reg := ada.NewMetricsRegistry()
	acq := ada.New(store, nil, ada.Options{Metrics: reg})

	// A 1/50-scale CB1-like system with 24 trajectory frames. A real
	// deployment would receive these frames from a running simulation; here
	// the whole trajectory is pre-generated and split into batches.
	const frames = 24
	pdbBytes, xtcBytes, err := ada.GenerateTrajectory(ada.ScaledSystem(50), frames)
	if err != nil {
		log.Fatal(err)
	}
	batches := splitBatches(xtcBytes, 4)
	fmt.Printf("generated %d frames (%d bytes compressed) in %d batches\n",
		frames, len(xtcBytes), len(batches))

	// Open the live session and wrap it in the buffering ingestor: Enqueue
	// returns as soon as the batch is queued, and a single drain goroutine
	// appends in order. Close drains the queue and seals the dataset.
	li, err := acq.OpenLiveIngest("/live.xtc", pdbBytes)
	if err != nil {
		log.Fatal(err)
	}
	ing := ada.NewStreamIngestor(li, 0, reg)

	// Tail the protein subset while it grows. The source blocks reads past
	// the head until the producer publishes, so the consumer just reads
	// 0, 1, 2, ... and io.EOF marks the seal.
	src, err := ada.OpenStream(acq, "/live.xtc", ada.TagProtein, ada.StreamOptions{Metrics: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			f, err := src.ReadFrameAt(i)
			if errors.Is(err, io.EOF) {
				fmt.Printf("tail: sealed after %d frames\n", i)
				return
			}
			if err != nil {
				log.Fatal(err)
			}
			if i%8 == 0 {
				fmt.Printf("tail: frame %d (step %d, %d protein atoms), head at %d\n",
					i, f.Step, len(f.Coords), src.Frames())
			}
		}
	}()

	for _, b := range batches {
		if err := ing.Enqueue(b); err != nil {
			log.Fatal(err)
		}
	}
	report, err := ing.Close() // drain + seal
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	fmt.Printf("sealed: %d frames, %d raw bytes, subsets %v\n",
		report.Frames, report.Raw, report.Subsets)

	// The sealed dataset is an ordinary container now: the one-shot read
	// path sees exactly what the tail saw.
	sub, err := acq.OpenSubset("/live.xtc", ada.TagProtein)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	n := 0
	for {
		if _, err := sub.ReadFrame(); err == io.EOF {
			break
		} else if err != nil {
			log.Fatal(err)
		}
		n++
	}
	fmt.Printf("sealed container replays %d frames through the ordinary subset reader\n", n)

	snap := reg.Snapshot()
	fmt.Printf("stream.publishes=%d stream.append.frames=%d stream.append.bytes=%d\n",
		snap.Counters["stream.publishes"],
		snap.Counters["stream.append.frames"],
		snap.Counters["stream.append.bytes"])
}

// splitBatches cuts a compressed XTC stream into batches of n whole frames
// using the format's self-describing frame headers.
func splitBatches(xtcBytes []byte, n int) [][]byte {
	idx, err := ada.BuildXTCIndex(bytes.NewReader(xtcBytes), int64(len(xtcBytes)))
	if err != nil {
		log.Fatal(err)
	}
	var out [][]byte
	for i := 0; i < idx.Frames(); i += n {
		j := i + n
		if j > idx.Frames() {
			j = idx.Frames()
		}
		end := idx.Offset(j-1) + idx.Size(j-1)
		out = append(out, xtcBytes[idx.Offset(i):end])
	}
	return out
}
