// Quickstart: generate a synthetic GPCR dataset, ingest it through ADA, and
// load just the protein subset the way VMD would (`mol addfile ... tag p`).
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	ada "repro"
)

func main() {
	// Two backends: a fast one for active data, a bulk one for MISC data.
	store, err := ada.NewContainerStore(
		ada.Backend{Name: "ssd", FS: ada.NewMemFS(), Mount: "/mnt1"},
		ada.Backend{Name: "hdd", FS: ada.NewMemFS(), Mount: "/mnt2"},
	)
	if err != nil {
		log.Fatal(err)
	}
	acq := ada.New(store, nil, ada.Options{})

	// A 1/50-scale CB1-like system (~870 atoms) with 25 trajectory frames.
	pdbBytes, xtcBytes, err := ada.GenerateTrajectory(ada.ScaledSystem(50), 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated: %d bytes .pdb, %d bytes compressed .xtc\n",
		len(pdbBytes), len(xtcBytes))

	// Ingest: ADA decompresses once on the storage side, labels the atoms
	// via the structure file, and dispatches "p" to ssd and "m" to hdd.
	report, err := acq.Ingest("/bar.xtc", pdbBytes, bytes.NewReader(xtcBytes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d frames: %d raw bytes split into subsets %v\n",
		report.Frames, report.Raw, report.Subsets)

	// $ mol addfile /mnt/bar.xtc tag p  — only the protein subset moves.
	sub, err := acq.OpenSubset("/bar.xtc", ada.TagProtein)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	fmt.Printf("tag %q: %d atoms on backend %s (%d bytes, ranges %s)\n",
		sub.Tag, sub.Info.NAtoms, sub.Info.Backend, sub.Size(), sub.Info.Ranges)

	frames := 0
	for {
		f, err := sub.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		frames++
		if frames == 1 {
			fmt.Printf("first frame: step %d, %d protein atoms, first coord %v nm\n",
				f.Step, f.NAtoms(), f.Coords[0])
		}
	}
	fmt.Printf("streamed %d pre-filtered frames — no decompression, no scan\n", frames)
}
