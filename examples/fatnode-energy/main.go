// fatnode-energy reproduces the Section 4.3 workflow on the 1 TB fat-node
// model: grow the trajectory until the traditional XFS path and ADA(all)
// are OOM-killed while ADA(protein) keeps rendering, and report the energy
// each run consumed. The live pipeline runs a scaled system; the memory
// capacity is scaled by the same factor so the kill points appear at the
// same relative sizes as Fig 10.
package main

import (
	"fmt"
	"log"

	ada "repro"
	"repro/internal/bench"
	"repro/internal/gpcr"
)

func main() {
	platform, err := ada.NewFatNode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("platform:", platform)

	// 1/20-scale system; memory shrunk so that the raw dataset crosses
	// capacity between the two trajectory sizes below.
	cfg := gpcr.Scaled(20)
	smallFrames, bigFrames := 300, 900

	dsSmall, err := platform.Stage("small", cfg, smallFrames)
	if err != nil {
		log.Fatal(err)
	}
	dsBig, err := platform.Stage("big", cfg, bigFrames)
	if err != nil {
		log.Fatal(err)
	}
	platform.MemCapacity = dsSmall.Raw + dsSmall.Raw/2 // between the two sizes

	run := func(name string, ds *ada.Dataset) {
		fmt.Printf("\n%s: %d frames, raw %.1f MB (capacity %.1f MB)\n",
			name, ds.Frames, float64(ds.Raw)/1e6, float64(platform.MemCapacity)/1e6)
		for _, sc := range []bench.Scenario{bench.CBase, bench.ADAAll, bench.ADAProtein} {
			pt, err := bench.RunMeasured(platform, ds, sc)
			if err != nil {
				log.Fatal(err)
			}
			status := "rendered"
			if pt.Killed {
				status = "KILLED (out of memory)"
			}
			fmt.Printf("  %-12s turnaround %8.4fs  energy %8.4f kJ  peak %7.2f MB  %s\n",
				sc.Label(platform.TraditionalName), pt.Turnaround, pt.EnergyKJ,
				float64(pt.MemoryPeak)/1e6, status)
		}
	}
	run("small trajectory", dsSmall)
	run("big trajectory", dsBig)

	fmt.Println("\nAt the big size only ADA(protein) survives: the protein subset is the")
	fmt.Println("only representation that still fits, exactly as in Fig 10 of the paper.")
}
