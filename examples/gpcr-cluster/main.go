// gpcr-cluster reproduces the Section 4.2 workflow on the nine-node hybrid
// cluster model: stage a GPCR dataset, then run the four evaluation
// scenarios (C-PVFS, D-PVFS, D-ADA(all), D-ADA(protein)) through the live
// pipeline and compare their retrieval times, turnaround times, and memory
// footprints.
package main

import (
	"fmt"
	"log"

	ada "repro"
	"repro/internal/bench"
	"repro/internal/gpcr"
)

func main() {
	platform, err := ada.NewSmallCluster()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("platform:", platform)
	for _, kv := range platform.Params {
		fmt.Printf("  %-24s %s\n", kv[0], kv[1])
	}

	// Stage a 1/10-scale system with 400 frames: small enough to run the
	// real codec end to end, big enough that transfer dominates seeks.
	ds, err := platform.Stage("gpcr", gpcr.Scaled(10), 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstaged %d frames of %d atoms (%d protein): %d B compressed, %d B raw\n\n",
		ds.Frames, ds.NAtoms, ds.ProteinAtoms, ds.Compressed, ds.Raw)

	fmt.Printf("%-14s %12s %12s %12s %10s\n",
		"scenario", "retrieval", "turnaround", "memory", "loaded")
	var dBase, adaProt float64
	for _, sc := range bench.Scenarios {
		pt, err := bench.RunMeasured(platform, ds, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.4fs %10.4fs %10.2fMB %8.2fMB\n",
			sc.Label(platform.TraditionalName),
			pt.RetrievalSec, pt.Turnaround,
			float64(pt.MemoryPeak)/1e6, float64(pt.LoadedBytes)/1e6)
		switch sc {
		case bench.DBase:
			dBase = pt.Turnaround
		case bench.ADAProtein:
			adaProt = pt.Turnaround
		}
	}
	fmt.Printf("\nD-PVFS / D-ADA(protein) turnaround: %.1fx (paper: ~9x at 6,256 full-scale frames)\n",
		dBase/adaProt)
}
