// remote-nodes runs ADA across real TCP storage nodes: two adanode-style
// servers are started in-process on loopback listeners, connected as
// container-store backends, and a dataset is ingested and read back across
// the sockets — the cross-process deployment path of cmd/adanode.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"

	ada "repro"
)

func main() {
	ssdAddr := startNode("ssd-node")
	hddAddr := startNode("hdd-node")
	fmt.Printf("storage nodes listening on %s and %s\n", ssdAddr, hddAddr)

	ssd, err := ada.DialStorageNode(ssdAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer ssd.Close()
	hdd, err := ada.DialStorageNode(hddAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer hdd.Close()

	store, err := ada.NewContainerStore(
		ada.Backend{Name: "ssd", FS: ssd, Mount: "/"},
		ada.Backend{Name: "hdd", FS: hdd, Mount: "/"},
	)
	if err != nil {
		log.Fatal(err)
	}
	acq := ada.New(store, nil, ada.Options{})

	pdbBytes, xtcBytes, err := ada.GenerateTrajectory(ada.ScaledSystem(40), 12)
	if err != nil {
		log.Fatal(err)
	}
	report, err := acq.Ingest("/bar.xtc", pdbBytes, bytes.NewReader(xtcBytes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d frames over TCP: subsets %v\n", report.Frames, report.Subsets)

	sub, err := acq.OpenSubset("/bar.xtc", ada.TagProtein)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	frames := 0
	for {
		if _, err := sub.ReadFrame(); err == io.EOF {
			break
		} else if err != nil {
			log.Fatal(err)
		}
		frames++
	}
	fmt.Printf("read %d protein frames (%d atoms each) back across the sockets\n",
		frames, sub.Info.NAtoms)
}

// startNode launches a storage node over an in-memory FS on a loopback
// listener and returns its address.
func startNode(name string) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := ada.ServeStorageNode(ln, ada.NewMemFS(), nil); err != nil {
			log.Printf("%s: %v", name, err)
		}
	}()
	return ln.Addr().String()
}
