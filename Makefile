# Single entry point for local development and CI (.github/workflows/ci.yml
# calls these same targets so the two never drift).

GO ?= go

.PHONY: all build test race lint bench bench-decode bench-ingest bench-serve bench-stream bench-check bench-tier test-faults test-crash test-tier test-cluster test-stream clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection matrix: one pass with the fixed seed baked into the
# tests, then one randomized smoke pass (the chosen seed is logged so any
# failure is replayable with ADA_FAULT_SEED=<seed>).
test-faults:
	$(GO) test -race -count=1 ./internal/faultfs/
	$(GO) test -race -count=1 -run 'Fault|ServerDrain|ConcurrentClose' ./internal/rpc/
	ADA_FAULT_SEED=random $(GO) test -race -count=1 -v -run 'FaultWorkloadSeed' ./internal/rpc/

# Crash-consistency matrix: the kill-point sweep (crash after every Nth
# store op during an ingest, then recover) plus the rest of the durability
# suite — recovery classification, checkpoint resume, verified reads with
# replica failover, fsck verdicts, and the background scrubber.
test-crash:
	$(GO) test -race -count=1 -run 'Crash|Recover|Resume|Failover|Fsck|Scrub|Checksum' ./internal/core/

# lint = vet + gofmt cleanliness. gofmt -l prints offending files; the
# test -z turns any output into a nonzero exit.
lint:
	$(GO) vet ./...
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

# Node-kill fault matrix: the placement suite (consistent-hash table,
# replicated reads/writes, failover, rebalance) plus the headline matrix —
# a 3-node R=2 cluster over real TCP, nodes killed or partitioned mid-read
# and mid-ingest at swept points, asserting byte-identical degraded reads
# and exactly-R-copies recovery. Per-cell outcomes land in
# cluster-matrix.tsv for the CI artifact. The cmd tests cover the operator
# flow (adanode -cluster-table/-join, adactl cluster).
test-cluster:
	ADA_CLUSTER_MATRIX_OUT=$(CURDIR)/cluster-matrix.tsv \
		$(GO) test -race -count=1 ./internal/placement/
	$(GO) test -race -count=1 -run 'Cluster' ./internal/core/ ./internal/vmd/ ./cmd/adanode/ ./cmd/adactl/
	@test -s cluster-matrix.tsv && { echo; echo "node-kill matrix:"; cat cluster-matrix.tsv; }

# Streaming-ingest suite: the live subsystem end to end under -race — the
# bounded-queue ingestor and tailing source (including the headline test:
# a producer killed mid-append by fault injection while concurrent readers
# tail, every observed prefix identical to the final sealed container), the
# core live writer/reader with the mid-append kill-point sweep, vmd tail
# mode, the rpc watch long-poll, and the serve fabric's live handles.
test-stream:
	$(GO) test -race -count=1 ./internal/stream/
	$(GO) test -race -count=1 -run 'Live|Tail|Watch' \
		./internal/core/ ./internal/vmd/ ./internal/rpc/ ./internal/serve/ ./cmd/adactl/

# Heat-driven tiering suite: tracker/planner/spec units, the deterministic
# two-dataset migration end-to-end, read-during-migration byte-identity, and
# the migration kill-point sweep extending the crash matrix — all under -race.
test-tier:
	$(GO) test -race -count=1 ./internal/tier/
	$(GO) test -race -count=1 -run 'MoveSubset|AccessHook|ReadDuringMigration|CrashMidMigration' ./internal/core/

# One iteration of every benchmark — a smoke pass proving the bench
# harness still runs end to end, not a measurement.
bench: bench-decode bench-ingest bench-serve bench-stream bench-tier
	$(GO) test -bench=. -benchtime=1x ./...

# Decode/prefetch benchmarks rendered to BENCH_decode.json (ns/op, MB/s,
# allocs/op, vstall, cpus, per-worker utilization) for the CI artifact and
# regression tracking.
bench-decode:
	$(GO) test -run '^$$' -bench 'ParallelDecode|XTCDecode|PlaybackPrefetch' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_decode.json

# Ingest wire-speed benchmarks (fused XTC encode, end-to-end serial and
# pipelined ingest over in-memory backends) rendered to BENCH_ingest.json
# for the CI artifact and regression tracking.
bench-ingest:
	$(GO) test -run '^$$' -bench 'XTCEncode|IngestParallel' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_ingest.json

# Streaming-ingest baseline: live append wire speed (direct and through the
# bounded-queue ingestor) and publish-to-visibility tail lag (p50/p99 as
# custom metrics) rendered to BENCH_stream.json for the CI artifact and
# regression tracking.
bench-stream:
	$(GO) test -run '^$$' -bench 'StreamAppend|StreamTailLag' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_stream.json

# Serve-fabric latency baseline: cmd/adaload replays the standard
# multi-tenant workload (interactive viewers vs a saturating bulk scan)
# through the deterministic fabric simulator and benchjson renders the
# per-tenant/per-class p50/p99 latencies to BENCH_serve.json. Virtual-clock
# percentiles are bit-identical run to run, so the regression bar on them is
# meaningful at any tightness.
bench-serve:
	$(GO) run ./cmd/adaload | $(GO) run ./cmd/benchjson > BENCH_serve.json

# Perf-regression gate: run the decode and ingest benchmarks fresh and diff
# against the committed baselines. Fails (nonzero exit) when any benchmark
# slows past BENCH_MAX_REGRESS percent or the 4-worker parallel speedup
# misses BENCH_SPEEDUP — except that speedup assertions are skipped on
# runners with fewer schedulable CPUs than the assertion's worker count (the
# run records a "cpus" metric benchjson reads). The delta tables land in
# bench-delta.txt and bench-ingest-delta.txt for the CI artifact. After an
# intentional perf change, refresh the baselines with `make bench-decode
# bench-ingest` and commit BENCH_decode.json / BENCH_ingest.json.
# The stream gate reruns only the MB/s append benchmarks: tail lag is
# publish-to-wake timing, whose ns/op is scheduler-noisy on shared runners,
# so its percentiles are tracked in BENCH_stream.json (bench-stream) but not
# gated — the baseline's TailLag row shows as "gone" in the delta, which the
# comparer reports without failing.
BENCH_MAX_REGRESS ?= 15
BENCH_SPEEDUP ?= workers-4:serial:3.0
bench-check:
	$(GO) test -run '^$$' -bench 'ParallelDecode|XTCDecode|PlaybackPrefetch' -benchmem . \
		| $(GO) run ./cmd/benchjson > bench-new.json
	$(GO) test -run '^$$' -bench 'XTCEncode|IngestParallel' -benchmem . \
		| $(GO) run ./cmd/benchjson > bench-ingest-new.json
	$(GO) run ./cmd/adaload | $(GO) run ./cmd/benchjson > bench-serve-new.json
	$(GO) test -run '^$$' -bench 'StreamAppend' -benchmem . \
		| $(GO) run ./cmd/benchjson > bench-stream-new.json
	$(GO) run ./cmd/benchjson -compare BENCH_decode.json bench-new.json \
		-max-regress $(BENCH_MAX_REGRESS) -assert-speedup '$(BENCH_SPEEDUP)' \
		> bench-delta.txt; decode=$$?; cat bench-delta.txt; \
	$(GO) run ./cmd/benchjson -compare BENCH_ingest.json bench-ingest-new.json \
		-max-regress $(BENCH_MAX_REGRESS) \
		> bench-ingest-delta.txt; ingest=$$?; cat bench-ingest-delta.txt; \
	$(GO) run ./cmd/benchjson -compare BENCH_serve.json bench-serve-new.json \
		-max-regress $(BENCH_MAX_REGRESS) \
		> bench-serve-delta.txt; serve=$$?; cat bench-serve-delta.txt; \
	$(GO) run ./cmd/benchjson -compare BENCH_stream.json bench-stream-new.json \
		-max-regress $(BENCH_MAX_REGRESS) \
		> bench-stream-delta.txt; stream=$$?; cat bench-stream-delta.txt; \
	exit $$((decode + ingest + serve + stream))

# Tiering benchmarks rendered to BENCH_tier.txt for the CI artifact:
# migration-pipeline throughput plus the read-path A/B for the heat hook
# (budget: <2% read tax, asserted structurally by TestHeatHookReadTax).
bench-tier:
	$(GO) test -count=1 -run 'HeatHookReadTax' -v \
		-bench 'MigrationThroughput|ReadNoHeatHook|ReadWithHeatHook' -benchmem \
		./internal/tier/ > BENCH_tier.txt
	cat BENCH_tier.txt

clean:
	$(GO) clean ./...
