// Streaming-ingest benchmarks: live append throughput (how fast a producer
// can push frame batches through the checkpointed append log) and tail lag
// (how long after a publish a parked reader observes the new head). Both run
// over in-memory backends so the numbers price the streaming machinery, not
// a disk. Rendered to BENCH_stream.json by `make bench-stream`; the CI gate
// rides ns/op, the lag percentiles are reported as custom metrics
// (lag_p50_us / lag_p99_us) for tracking.
package ada_test

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plfs"
	"repro/internal/stream"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// streamBatches cuts the ablation trajectory into whole-frame batches.
func streamBatches(b *testing.B, traj []byte, n int) [][]byte {
	b.Helper()
	idx, err := xtc.BuildIndex(bytes.NewReader(traj), int64(len(traj)))
	if err != nil {
		b.Fatal(err)
	}
	var out [][]byte
	for i := 0; i < idx.Frames(); i += n {
		j := i + n
		if j > idx.Frames() {
			j = idx.Frames()
		}
		end := idx.Offset(j-1) + idx.Size(j-1)
		out = append(out, traj[idx.Offset(i):end])
	}
	return out
}

func streamADA(b *testing.B) *core.ADA {
	b.Helper()
	store, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: vfs.NewMemFS(), Mount: "/m1"},
		plfs.Backend{Name: "hdd", FS: vfs.NewMemFS(), Mount: "/m2"},
	)
	if err != nil {
		b.Fatal(err)
	}
	return core.New(store, nil, core.Options{Metrics: metrics.NewRegistry()})
}

// BenchmarkStreamAppend measures live append wire speed: MB/s of
// decompressed trajectory data through open → append batches (checkpoint +
// publish per batch) → seal. "direct" drives core.LiveIngest.Append inline;
// "queued" goes through the stream.Ingestor bounded queue, pricing the
// hand-off a decoupled producer pays.
func BenchmarkStreamAppend(b *testing.B) {
	pdbBytes, traj := ablationDataset(b)
	batches := streamBatches(b, traj, 5)
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			li, err := streamADA(b).OpenLiveIngest("/g", pdbBytes)
			if err != nil {
				b.Fatal(err)
			}
			for _, batch := range batches {
				if _, err := li.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
			rep, err := li.Seal()
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.SetBytes(rep.Raw)
			}
		}
		reportCPUs(b)
	})
	b.Run("queued", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			li, err := streamADA(b).OpenLiveIngest("/g", pdbBytes)
			if err != nil {
				b.Fatal(err)
			}
			ing := stream.NewIngestor(li, 0, nil)
			for _, batch := range batches {
				if err := ing.Enqueue(batch); err != nil {
					b.Fatal(err)
				}
			}
			rep, err := ing.Close()
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.SetBytes(rep.Raw)
			}
		}
		reportCPUs(b)
	})
}

// BenchmarkStreamTailLag measures publish-to-visibility latency: a reader
// parks on the next unpublished frame while the producer appends batches;
// the lag is the wall time from Append returning (head published) to the
// parked ReadFrameAt observing the frame. One op = one full produce/tail
// session; p50/p99 aggregate every frame of every iteration.
func BenchmarkStreamTailLag(b *testing.B) {
	pdbBytes, traj := ablationDataset(b)
	const perBatch = 5
	batches := streamBatches(b, traj, perBatch)
	idx, err := xtc.BuildIndex(bytes.NewReader(traj), int64(len(traj)))
	if err != nil {
		b.Fatal(err)
	}
	frames := idx.Frames()
	var lags []time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := streamADA(b)
		li, err := a.OpenLiveIngest("/g", pdbBytes)
		if err != nil {
			b.Fatal(err)
		}
		src, err := stream.Open(a, "/g", core.TagProtein, stream.Options{Staleness: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		published := make([]time.Time, frames)
		observed := make([]time.Time, frames)
		done := make(chan error, 1)
		go func() {
			for f := 0; f < frames; f++ {
				if _, err := src.ReadFrameAt(f); err != nil {
					done <- err
					return
				}
				observed[f] = time.Now()
			}
			done <- nil
		}()
		next := 0
		for _, batch := range batches {
			if _, err := li.Append(batch); err != nil {
				b.Fatal(err)
			}
			now := time.Now()
			for f := next; f < next+perBatch && f < frames; f++ {
				published[f] = now
			}
			next += perBatch
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		if _, err := li.Seal(); err != nil {
			b.Fatal(err)
		}
		src.Close()
		for f := 0; f < frames; f++ {
			if lag := observed[f].Sub(published[f]); lag > 0 {
				lags = append(lags, lag)
			} else {
				lags = append(lags, 0)
			}
		}
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	p := func(q float64) float64 {
		k := int(q * float64(len(lags)-1))
		return float64(lags[k]) / float64(time.Microsecond)
	}
	b.ReportMetric(p(0.50), "lag_p50_us")
	b.ReportMetric(p(0.99), "lag_p99_us")
}
