package ada_test

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/gpcr"
	"repro/internal/xdr"
)

// TestEncodeGoldenBytes pins the compressed encoding of the deterministic
// 43.5k-atom GPCR frame to the byte stream the pre-optimization encoder
// produced. The wire-speed encode path (64-bit accumulator writer, fused
// pack/run loops, pooled scratch) is required to be a pure performance
// change: any drift in this hash means on-disk subsets stop being
// bit-compatible across versions and the fast paths diverged from the
// reference arithmetic.
func TestEncodeGoldenBytes(t *testing.T) {
	const (
		wantAtoms = 43506
		wantLen   = 176392
		wantHash  = "551c1b3c0c560ed889968eeba4e4a81342f27eacde71afa1d1ab6a77dbbdefa2"
	)
	sys, err := gpcr.Default().Build()
	if err != nil {
		t.Fatal(err)
	}
	f := sys.InitialFrame()
	if f.NAtoms() != wantAtoms {
		t.Fatalf("staged frame has %d atoms, want %d", f.NAtoms(), wantAtoms)
	}
	w := xdr.NewWriter(1 << 21)
	if err := f.AppendEncoded(w); err != nil {
		t.Fatal(err)
	}
	enc := w.Bytes()
	if len(enc) != wantLen {
		t.Errorf("encoded length = %d, want %d", len(enc), wantLen)
	}
	sum := sha256.Sum256(enc)
	if got := hex.EncodeToString(sum[:]); got != wantHash {
		t.Errorf("encoded sha256 = %s, want %s", got, wantHash)
	}
}
