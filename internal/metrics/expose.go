package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders the registry in a line-oriented, greppable text form:
//
//	counter rpc.server.requests 42
//	gauge   ingest.queue_depth_hwm 4
//	hist    fs.node.write.ns count=10 sum=1234 min=80 max=400 p50=100 p95=380 p99=400
//	span    ingest.total start=1722870000000000000 dur_ns=52000000
//
// Lines are sorted by kind then name so diffs between scrapes are stable.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "hist %s count=%d sum=%d min=%d max=%d p50=%d p95=%d p99=%d\n",
			k, h.Count, h.Sum, h.Min, h.Max, h.P50, h.P95, h.P99); err != nil {
			return err
		}
	}
	for _, sp := range s.Spans {
		if _, err := fmt.Fprintf(w, "span %s start=%d dur_ns=%d\n",
			sp.Name, sp.StartUnix, sp.DurNanos); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
