// Package metrics is a dependency-free, concurrency-safe metrics registry
// for the real (wall-clock) hot paths of the storage stack: ingest
// pipeline, PLFS dispatch, RPC storage nodes, and playback cache. It is the
// runtime counterpart of internal/sim's virtual-time profiles — sim answers
// "what would this cost on the paper's hardware", metrics answers "what is
// this Go process actually doing right now".
//
// The registry holds three metric kinds plus span traces:
//
//   - Counter: a monotonically increasing atomic int64.
//   - Gauge: an atomic int64 with Set/Add and a SetMax high-water helper
//     (queue depths, cache residency).
//   - Histogram: a bounded log-linear bucket histogram (8 sub-buckets per
//     power of two, ≤12.5% relative quantile error) for latencies in
//     nanoseconds and sizes in bytes, with p50/p95/p99 estimation.
//
// All metric methods are safe on nil receivers, and all Registry lookup
// methods are safe on a nil *Registry, so instrumented code can hold a nil
// registry to disable collection without branching.
//
// Metric names are dotted paths ("rpc.client.requests"); exposition is
// line-oriented text (WriteText) or JSON (WriteJSON / Snapshot).
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Components instrument against it
// unless explicitly pointed elsewhere.
var Default = NewRegistry()

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation (queue depths, peak memory).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: values 0..7 map to exact buckets 0..7; larger
// values map log-linearly with 8 sub-buckets per power of two, giving a
// bounded array (numBuckets) covering the full non-negative int64 range
// with ≤12.5% relative error on quantile estimates.
const (
	subBuckets = 8
	numBuckets = subBuckets + (62-3+1)*subBuckets // 8 exact + octaves 3..62 × 8
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	octave := bits.Len64(uint64(v)) - 1 // floor(log2 v), ≥3 here
	sub := int((uint64(v) >> uint(octave-3)) & (subBuckets - 1))
	idx := subBuckets + (octave-3)*subBuckets + sub
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpper returns the largest value the bucket holds.
func bucketUpper(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	g := (idx - subBuckets) / subBuckets
	sub := (idx - subBuckets) % subBuckets
	u := (uint64(subBuckets+sub+1) << uint(g)) - 1
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// Histogram is a bounded-bucket distribution of non-negative int64 samples
// (latency nanoseconds, sizes in bytes).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First sample seeds min; concurrent racers are corrected by the
		// CAS loops below.
		h.min.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) from the buckets,
// clamped to the observed min/max.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	est := h.max.Load()
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			est = bucketUpper(i)
			break
		}
	}
	if min := h.min.Load(); est < min {
		est = min
	}
	if max := h.max.Load(); est > max {
		est = max
	}
	return est
}

// HistogramSnapshot is one histogram's summary.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	return s
}

// Registry is a named collection of metrics. Lookup methods get-or-create,
// so callers can resolve handles once and use them lock-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    spanRing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    spanRing{cap: defaultSpanRing},
	}
}

// Counter returns the named counter, creating it if needed. Nil registry
// returns nil (a no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset drops every metric and span (tests and long-lived tools).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.mu.Unlock()
	r.spans.reset()
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
}

// Snapshot captures the registry. Safe to call concurrently with updates.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	s.Spans = r.Spans()
	return s
}

// sortedKeys returns map keys in order (for stable exposition).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
