package metrics

import (
	"sync"
	"time"
)

// defaultSpanRing bounds the completed-span trace buffer.
const defaultSpanRing = 256

// now is swappable for deterministic tests.
var now = time.Now

// SpanRecord is one completed span in the trace ring.
type SpanRecord struct {
	Name      string `json:"name"`
	StartUnix int64  `json:"start_unix_nano"`
	DurNanos  int64  `json:"dur_nanos"`
}

// Span is a lightweight in-flight timer. End records its duration into the
// histogram named after the span and appends it to the registry's bounded
// trace ring.
type Span struct {
	r     *Registry
	name  string
	start time.Time
	done  bool
}

// StartSpan begins timing a named operation (e.g. "ingest.total",
// "read.subset"). Safe on a nil registry (End becomes a no-op).
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: now()}
}

// End stops the span. Calling End more than once records only the first.
func (s *Span) End() time.Duration {
	if s == nil || s.done {
		return 0
	}
	s.done = true
	d := now().Sub(s.start)
	s.r.Histogram(s.name + ".ns").Observe(d.Nanoseconds())
	s.r.spans.add(SpanRecord{
		Name:      s.name,
		StartUnix: s.start.UnixNano(),
		DurNanos:  d.Nanoseconds(),
	})
	return d
}

// Spans returns the completed spans currently in the ring, oldest first.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	return r.spans.list()
}

// spanRing is a bounded FIFO of completed spans.
type spanRing struct {
	mu    sync.Mutex
	cap   int
	buf   []SpanRecord
	start int // index of the oldest record
}

func (sr *spanRing) add(rec SpanRecord) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.cap <= 0 {
		sr.cap = defaultSpanRing
	}
	if len(sr.buf) < sr.cap {
		sr.buf = append(sr.buf, rec)
		return
	}
	sr.buf[sr.start] = rec
	sr.start = (sr.start + 1) % sr.cap
}

func (sr *spanRing) list() []SpanRecord {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if len(sr.buf) == 0 {
		return nil
	}
	out := make([]SpanRecord, 0, len(sr.buf))
	for i := 0; i < len(sr.buf); i++ {
		out = append(out, sr.buf[(sr.start+i)%len(sr.buf)])
	}
	return out
}

func (sr *spanRing) reset() {
	sr.mu.Lock()
	sr.buf = nil
	sr.start = 0
	sr.mu.Unlock()
}
