package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Error("Counter not idempotent")
	}

	g := r.Gauge("q.depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
	g.SetMax(10)
	g.SetMax(7) // lower: no effect
	if got := g.Value(); got != 10 {
		t.Errorf("gauge after SetMax = %d, want 10", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.StartSpan("x").End()
	if n := len(r.Spans()); n != 0 {
		t.Errorf("nil registry has %d spans", n)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var sp *Span
	sp.End() // must not panic
}

func TestBucketLayout(t *testing.T) {
	// Every value must land in a bucket whose upper bound is ≥ the value
	// and within 12.5% relative error.
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1023, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := bucketIndex(v)
		up := bucketUpper(idx)
		if up < v && idx != numBuckets-1 {
			t.Errorf("value %d: bucket upper %d below value", v, up)
		}
		if v >= 8 && idx != numBuckets-1 {
			if err := float64(up-v) / float64(v); err > 0.125 {
				t.Errorf("value %d: relative error %.3f > 0.125", v, err)
			}
		}
	}
	// Buckets must be monotonically increasing.
	for i := 1; i < numBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket %d upper %d not increasing", i, bucketUpper(i))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Errorf("sum = %d", h.Sum())
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if err := math.Abs(float64(got-c.want)) / float64(c.want); err > 0.13 {
			t.Errorf("p%v = %d, want ~%d (err %.3f)", c.q*100, got, c.want, err)
		}
	}
	// Quantiles clamp to observed extremes.
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
	h2 := r.Histogram("single")
	h2.Observe(42)
	for _, q := range []float64{0.5, 0.99} {
		if got := h2.Quantile(q); got != 42 {
			t.Errorf("single-sample q%.2f = %d, want 42", q, got)
		}
	}
}

func TestSpans(t *testing.T) {
	r := NewRegistry()
	base := time.Unix(1000, 0)
	step := 0
	now = func() time.Time {
		step++
		return base.Add(time.Duration(step) * time.Millisecond)
	}
	defer func() { now = time.Now }()

	sp := r.StartSpan("ingest.total")
	d := sp.End()
	if d != time.Millisecond {
		t.Errorf("span duration = %v", d)
	}
	if d2 := sp.End(); d2 != 0 {
		t.Error("double End recorded again")
	}
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Name != "ingest.total" || spans[0].DurNanos != int64(time.Millisecond) {
		t.Fatalf("spans = %+v", spans)
	}
	if got := r.Histogram("ingest.total.ns").Count(); got != 1 {
		t.Errorf("span histogram count = %d", got)
	}
	// The ring stays bounded and keeps the newest records.
	for i := 0; i < defaultSpanRing*2; i++ {
		r.StartSpan("loop").End()
	}
	spans = r.Spans()
	if len(spans) != defaultSpanRing {
		t.Fatalf("ring size = %d, want %d", len(spans), defaultSpanRing)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartUnix < spans[i-1].StartUnix {
			t.Fatal("ring not oldest-first")
		}
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Inc()
	r.Gauge("depth").Set(3)
	r.Histogram("lat.ns").Observe(100)
	r.StartSpan("op").End()

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"counter a.first 1\n",
		"counter z.last 2\n",
		"gauge depth 3\n",
		"hist lat.ns count=1 sum=100 min=100 max=100",
		"span op start=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q in:\n%s", want, text)
		}
	}
	if strings.Index(text, "a.first") > strings.Index(text, "z.last") {
		t.Error("counters not sorted")
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON exposition invalid: %v", err)
	}
	if snap.Counters["a.first"] != 1 || snap.Histograms["lat.ns"].Count != 1 {
		t.Errorf("JSON snapshot = %+v", snap)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.StartSpan("s").End()
	r.Reset()
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 || len(s.Spans) != 0 {
		t.Errorf("after Reset: %+v", s)
	}
}

// TestConcurrentHammer exercises parallel Inc/Observe/span traffic against
// concurrent snapshots; run under -race this is the registry's safety proof.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	var writers, scrapers sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scrapers race every reader path against the writers.
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Snapshot()
					_ = r.WriteText(devNull{})
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			c := r.Counter("hammer.count")
			g := r.Gauge("hammer.depth")
			h := r.Histogram("hammer.lat")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.SetMax(int64(i))
				h.Observe(int64(i % 1024))
				if i%64 == 0 {
					r.StartSpan("hammer.span").End()
				}
				// Exercise the get-or-create path too.
				r.Counter("hammer.count").Add(1)
			}
		}()
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()

	s := r.Snapshot()
	if s.Counters["hammer.count"] != workers*iters*2 {
		t.Errorf("count = %d, want %d", s.Counters["hammer.count"], workers*iters*2)
	}
	if s.Histograms["hammer.lat"].Count != workers*iters {
		t.Errorf("observations = %d, want %d", s.Histograms["hammer.lat"].Count, workers*iters)
	}
	if s.Gauges["hammer.depth"] != iters-1 {
		t.Errorf("gauge hwm = %d, want %d", s.Gauges["hammer.depth"], iters-1)
	}
}

// devNull is a minimal sink for the scraper goroutines.
type devNull struct{}

func (devNull) Write(p []byte) (int, error) { return len(p), nil }
