package tier

import (
	"testing"
	"time"
)

func TestParseSpecFull(t *testing.T) {
	cfg, pol, err := ParseSpec(
		"fast=ssd,slow=hdd,cap=64MiB,high=0.8,low=0.5,promote=2KiB,halflife=5m,interval=30s,max=3,pin=p:fast,pin=water:never")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fast != "ssd" || cfg.Slow != "hdd" {
		t.Errorf("backends = %q/%q", cfg.Fast, cfg.Slow)
	}
	if cfg.CapacityBytes != 64<<20 {
		t.Errorf("cap = %d", cfg.CapacityBytes)
	}
	if cfg.HighWater != 0.8 || cfg.LowWater != 0.5 {
		t.Errorf("watermarks = %g/%g", cfg.HighWater, cfg.LowWater)
	}
	if cfg.PromoteHeat != 2048 {
		t.Errorf("promote = %g", cfg.PromoteHeat)
	}
	if cfg.HalfLife != 300 {
		t.Errorf("halflife = %g", cfg.HalfLife)
	}
	if cfg.Interval != 30*time.Second || cfg.MaxMovesPerStep != 3 {
		t.Errorf("interval = %v, max = %d", cfg.Interval, cfg.MaxMovesPerStep)
	}
	if pol.Pin("/any", "p") != PinFast || pol.Pin("/any", "water") != PinNever {
		t.Error("pins not installed")
	}
	if pol.Pin("/any", "m") != PinNone {
		t.Error("unpinned tag not PinNone")
	}
}

func TestParseSpecDefaults(t *testing.T) {
	cfg, _, err := ParseSpec("fast=a,slow=b,cap=1024")
	if err != nil {
		t.Fatal(err)
	}
	// ParseSpec returns the effective config so callers can read HalfLife
	// (for the tracker) before building the migrator.
	if cfg.HighWater != 0.9 || cfg.LowWater != 0.7 || cfg.PromoteHeat != 1 ||
		cfg.HalfLife != 60 || cfg.Interval != 5*time.Second {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",                                 // missing everything
		"fast=a,cap=1M",                    // missing slow
		"fast=a,slow=b",                    // missing cap
		"fast=a,slow=b,cap=0",              // zero cap
		"fast=a,slow=b,cap=1M,bogus=1",     // unknown key
		"fast=a,slow=b,cap=nope",           // bad size
		"fast=a,slow=b,cap=1M,high=x",      // bad float
		"fast=a,slow=b,cap=1M,pin=p",       // pin without mode
		"fast=a,slow=b,cap=1M,pin=p:up",    // unknown pin mode
		"fast,slow=b,cap=1M",               // not key=value
		"fast=a,slow=b,cap=1M,halflife=60", // duration without unit
	} {
		if _, _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded", spec)
		}
	}
}

func TestParseSize(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int64
	}{
		{"1024", 1024},
		{"4K", 4 << 10},
		{"4KiB", 4 << 10},
		{"8M", 8 << 20},
		{"8MiB", 8 << 20},
		{"2G", 2 << 30},
		{"2GiB", 2 << 30},
	} {
		got, err := ParseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "xMiB", "1.5M", "M"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) succeeded", bad)
		}
	}
}

func TestLFUPins(t *testing.T) {
	p := NewLFU()
	p.SetPin("p", PinFast)
	if p.Pin("/a", "p") != PinFast || p.Pin("/b", "p") != PinFast {
		t.Error("pin not per-tag across datasets")
	}
	p.SetPin("p", PinNone) // clearing
	if p.Pin("/a", "p") != PinNone {
		t.Error("pin not cleared")
	}
	if got := p.Score(Candidate{Heat: 42}); got != 42 {
		t.Errorf("LFU score = %g", got)
	}
}
