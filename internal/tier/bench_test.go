package tier

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plfs"
)

// benchStore stages one ingested dataset and a serving ADA instance.
func benchStore(b *testing.B, scale, frames int) (*core.ADA, *plfs.FS) {
	b.Helper()
	pdbBytes, traj := testDataset(b, scale, frames)
	containers := newStore(b)
	reg := metrics.NewRegistry()
	ingestPlaced(b, containers, reg, "/ds",
		core.Placement{core.TagProtein: "ssd", core.TagMisc: "hdd"}, pdbBytes, traj)
	return core.New(containers, nil, core.Options{Metrics: reg}), containers
}

// BenchmarkMigrationThroughput measures the full crash-safe move pipeline —
// source verify, staged copy, read-back verify, atomic publish, manifest
// rewrite — by bouncing one protein subset between the two backends.
func BenchmarkMigrationThroughput(b *testing.B) {
	a, _ := benchStore(b, 20, 8)
	targets := [2]string{"hdd", "ssd"}
	n, err := a.MoveSubset("/ds", core.TagProtein, targets[0])
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.MoveSubset("/ds", core.TagProtein, targets[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// streamSubset reads every frame of the protein subset once.
func streamSubset(b *testing.B, a *core.ADA) int {
	b.Helper()
	sr, err := a.OpenSubset("/ds", core.TagProtein)
	if err != nil {
		b.Fatal(err)
	}
	defer sr.Close()
	frames := 0
	for {
		if _, err := sr.ReadFrame(); err == io.EOF {
			return frames
		} else if err != nil {
			b.Fatal(err)
		}
		frames++
	}
}

// BenchmarkReadNoHeatHook is the baseline for BenchmarkReadWithHeatHook:
// the same streaming read with no access observer installed.
func BenchmarkReadNoHeatHook(b *testing.B) {
	a, _ := benchStore(b, 20, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streamSubset(b, a)
	}
}

// BenchmarkReadWithHeatHook streams through a live tracker, the
// configuration every read pays once tiering is on. Compare ns/op against
// BenchmarkReadNoHeatHook: the delta is the heat tax (budget: under 2%,
// asserted structurally by TestHeatHookReadTax).
func BenchmarkReadWithHeatHook(b *testing.B) {
	a, _ := benchStore(b, 20, 8)
	trk := NewTracker(WallClock(), 60)
	a.SetAccessFunc(trk.Record)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streamSubset(b, a)
	}
}

// TestHeatHookReadTax pins the <2% read-tax budget without a flaky
// wall-clock A/B: the hook adds exactly one Tracker.Record per frame
// fetched, so the tax is Record's cost over the frame fetch's cost. Record
// is a map probe plus a few float ops (~100ns); a frame fetch decodes and
// checksum-verifies kilobytes. The ratio holds with an order of magnitude
// to spare, so the assertion survives loaded CI machines.
func TestHeatHookReadTax(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	// Scaled(10) is a ~4.3k-atom system — small for a real trajectory, so
	// the measured frame-fetch cost (the tax's denominator) is conservative.
	pdbBytes, traj := testDataset(t, 10, 8)
	containers := newStore(t)
	reg := metrics.NewRegistry()
	ingestPlaced(t, containers, reg, "/ds",
		core.Placement{core.TagProtein: "ssd", core.TagMisc: "hdd"}, pdbBytes, traj)
	a := core.New(containers, nil, core.Options{Metrics: reg})

	// Per-frame fetch cost: best of several full streams (min filters
	// scheduler noise).
	frameCost := time.Duration(1 << 62)
	var frames int
	for trial := 0; trial < 5; trial++ {
		start := time.Now()
		sr, err := a.OpenSubset("/ds", core.TagProtein)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			if _, err := sr.ReadFrame(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			n++
		}
		sr.Close()
		if d := time.Since(start) / time.Duration(n); d < frameCost {
			frameCost, frames = d, n
		}
	}
	if frames == 0 {
		t.Fatal("no frames streamed")
	}

	// Per-access hook cost, same treatment.
	trk := NewTracker(WallClock(), 60)
	const records = 200_000
	recordCost := time.Duration(1 << 62)
	for trial := 0; trial < 5; trial++ {
		start := time.Now()
		for i := 0; i < records; i++ {
			trk.Record("/ds", "subset.p", 1024)
		}
		if d := time.Since(start) / records; d < recordCost {
			recordCost = d
		}
	}

	tax := float64(recordCost) / float64(frameCost)
	t.Logf("frame fetch %v, heat record %v, read tax %.3f%%", frameCost, recordCost, 100*tax)
	if tax >= 0.02 {
		t.Fatalf("heat hook costs %.2f%% of a frame fetch, budget is 2%%", 100*tax)
	}
}
