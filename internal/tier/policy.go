package tier

import "sync"

// Pin is a per-tag placement override that outranks the heat policy.
type Pin int

const (
	// PinNone lets the heat policy decide (the default).
	PinNone Pin = iota
	// PinFast keeps the tag on the fast backend: it is promoted like any
	// hot subset but never demoted, regardless of heat or watermarks.
	PinFast
	// PinNever excludes the tag from migration entirely — it stays where
	// ingest placed it.
	PinNever
)

func (p Pin) String() string {
	switch p {
	case PinFast:
		return "fast"
	case PinNever:
		return "never"
	default:
		return "none"
	}
}

// Candidate is one subset the planner considers moving.
type Candidate struct {
	Logical string
	Tag     string
	Backend string  // current owner (plfs index truth)
	Bytes   int64   // payload + frame-index bytes a move would copy
	Heat    float64 // decayed heat from the tracker
}

// Policy ranks migration candidates and supplies placement overrides. The
// planner promotes high scores and demotes low ones; Pin outranks Score.
// Implementations must be safe for concurrent use.
type Policy interface {
	// Score returns the candidate's rank; higher means hotter.
	Score(c Candidate) float64
	// Pin returns the tag's placement override.
	Pin(logical, tag string) Pin
}

// LFU is the default policy: rank equals the tracker's exponentially
// decayed byte count (decayed LFU), with explicit per-tag pins.
type LFU struct {
	mu   sync.Mutex
	pins map[string]Pin
}

// NewLFU returns the default decayed-LFU policy with no pins.
func NewLFU() *LFU { return &LFU{pins: map[string]Pin{}} }

// SetPin installs (or, with PinNone, clears) a per-tag override.
func (l *LFU) SetPin(tag string, p Pin) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p == PinNone {
		delete(l.pins, tag)
		return
	}
	l.pins[tag] = p
}

// Score ranks by decayed heat.
func (l *LFU) Score(c Candidate) float64 { return c.Heat }

// Pin returns the tag's override (logical is ignored: pins are per tag
// across datasets, matching how placement schemas name tags).
func (l *LFU) Pin(logical, tag string) Pin {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pins[tag]
}
