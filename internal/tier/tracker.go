// Package tier adds heat-driven tiering to the container store: it tracks
// per-dropping access heat from the read path and runs a background
// migration planner that promotes hot droppings to the fast backend and
// demotes cold ones when the fast backend fills past a high watermark.
//
// The paper's placement decision (protein subset to the SSD, MISC to the
// HDD) is static — made once at ingest from the schema. Tiering makes it
// dynamic: whatever the biologist actually replays becomes hot and earns
// the fast mount, and datasets that fall out of use drain back to capacity
// storage. Migrations reuse the durability primitives of the ingest commit
// protocol (staged copy, whole-stream verification, atomic index re-point),
// so a crash at any point leaves exactly one complete copy of every
// dropping.
package tier

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Key identifies one dropping's heat series.
type Key struct {
	Logical  string // dataset (container) name
	Dropping string // dropping name, e.g. "subset.p"
}

// HeatEntry is one row of a Tracker snapshot.
type HeatEntry struct {
	Key
	Heat float64 // exponentially decayed bytes
}

// Tracker aggregates read-path accesses into per-dropping heat with
// exponential decay: an access adds its byte count, and heat halves every
// HalfLife seconds of the supplied clock. Decay is folded in lazily at
// observation time, so an idle tracker costs nothing and heat depends only
// on the access/clock sequence — deterministic under a virtual clock.
//
// Record matches core.AccessFunc, so a tracker plugs straight into
// (*core.ADA).SetAccessFunc. It is safe for concurrent use.
type Tracker struct {
	mu       sync.Mutex
	now      func() float64
	halfLife float64
	heat     map[Key]*cell
	// One-entry lookup cache: the hook runs on every frame fetch and
	// playback hammers a single dropping, so skipping the map's two string
	// hashes on consecutive same-key accesses keeps the read tax down.
	lastKey  Key
	lastCell *cell
}

type cell struct {
	heat float64
	last float64 // clock reading when heat was last folded
}

// NewTracker returns a tracker reading time (in seconds) from now and
// halving heat every halfLife seconds. A non-positive halfLife disables
// decay (pure LFU).
func NewTracker(now func() float64, halfLife float64) *Tracker {
	return &Tracker{now: now, halfLife: halfLife, heat: map[Key]*cell{}}
}

// WallClock returns a monotonic wall-clock suitable for NewTracker in a
// live process; tests use a sim.Clock's Now instead.
func WallClock() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// decayTo folds decay into c up to clock reading at. Folds shorter than a
// millionth of the half-life are deferred — Exp2 is the hook's costliest
// instruction and 2^-dt/h is 1 to nine digits there; keeping c.last anchored
// means the deferred interval still decays in full at the next real fold, so
// nothing is lost, only batched.
func (t *Tracker) decayTo(c *cell, at float64) {
	dt := at - c.last
	if dt <= 0 {
		return
	}
	if t.halfLife > 0 && c.heat > 0 {
		if dt < t.halfLife*1e-6 {
			return
		}
		c.heat *= math.Exp2(-dt / t.halfLife)
	}
	c.last = at
}

// Record observes one access: the dropping's heat gains `bytes` after decay
// up to the current clock. Its signature matches core.AccessFunc.
func (t *Tracker) Record(logical, dropping string, bytes int64) {
	if bytes <= 0 {
		return
	}
	at := t.now()
	k := Key{Logical: logical, Dropping: dropping}
	t.mu.Lock()
	c := t.lastCell
	if c == nil || t.lastKey != k {
		c = t.heat[k]
		if c == nil {
			c = &cell{last: at}
			t.heat[k] = c
		}
		t.lastKey, t.lastCell = k, c
	}
	t.decayTo(c, at)
	c.heat += float64(bytes)
	t.mu.Unlock()
}

// Heat returns the dropping's decayed heat as of the current clock.
func (t *Tracker) Heat(logical, dropping string) float64 {
	at := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.heat[Key{Logical: logical, Dropping: dropping}]
	if c == nil {
		return 0
	}
	t.decayTo(c, at)
	return c.heat
}

// Len returns the number of droppings with recorded heat.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.heat)
}

// Forget drops every heat series of one dataset — call when the dataset is
// removed so the planner stops ranking its ghosts.
func (t *Tracker) Forget(logical string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := range t.heat {
		if k.Logical == logical {
			delete(t.heat, k)
		}
	}
	if t.lastKey.Logical == logical {
		t.lastCell = nil
	}
}

// Snapshot returns every tracked dropping with decayed heat, hottest first
// (ties broken by key for determinism).
func (t *Tracker) Snapshot() []HeatEntry {
	at := t.now()
	t.mu.Lock()
	out := make([]HeatEntry, 0, len(t.heat))
	for k, c := range t.heat {
		t.decayTo(c, at)
		out = append(out, HeatEntry{Key: k, Heat: c.heat})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Heat != out[j].Heat {
			return out[i].Heat > out[j].Heat
		}
		if out[i].Logical != out[j].Logical {
			return out[i].Logical < out[j].Logical
		}
		return out[i].Dropping < out[j].Dropping
	})
	return out
}
