package tier

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/metrics"
	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmd"
	"repro/internal/xtc"
)

// testDataset builds a small synthetic dataset: pdb bytes plus a compressed
// trajectory stream (the same fixture shape core's tests use).
func testDataset(t testing.TB, scale, frames int) (pdbBytes, traj []byte) {
	t.Helper()
	sys, err := gpcr.Scaled(scale).Build()
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := pdb.Write(&pb, sys.Structure); err != nil {
		t.Fatal(err)
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	s, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	w := xtc.NewWriter(&tb)
	if err := s.WriteTrajectory(w, frames); err != nil {
		t.Fatal(err)
	}
	return pb.Bytes(), tb.Bytes()
}

func newStore(t testing.TB) *plfs.FS {
	t.Helper()
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: vfs.NewMemFS(), Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: vfs.NewMemFS(), Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return containers
}

// ingestPlaced ingests one dataset with an explicit tag placement.
func ingestPlaced(t testing.TB, containers *plfs.FS, reg *metrics.Registry,
	logical string, pl core.Placement, pdbBytes, traj []byte) {
	t.Helper()
	a := core.New(containers, nil, core.Options{Placement: pl, Metrics: reg})
	if _, err := a.Ingest(logical, pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
}

func readFrames(t testing.TB, a *core.ADA, logical, tag string) []*xtc.Frame {
	t.Helper()
	sr, err := a.OpenSubset(logical, tag)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	var out []*xtc.Frame
	for {
		f, err := sr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}

func sameFrames(a, b []*xtc.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Step != b[i].Step || len(a[i].Coords) != len(b[i].Coords) {
			return false
		}
		for j := range a[i].Coords {
			if a[i].Coords[j] != b[i].Coords[j] {
				return false
			}
		}
	}
	return true
}

func subsetBackend(t testing.TB, containers *plfs.FS, logical, tag string) string {
	t.Helper()
	d, err := containers.StatDropping(logical, core.SubsetDropping(tag))
	if err != nil {
		t.Fatal(err)
	}
	return d.Backend
}

// TestMigratorEndToEnd is the subsystem's deterministic acceptance test.
// Two datasets: /a ingested entirely on the slow backend, /b entirely on
// the fast one, which starts over the high watermark. A vmd playback
// session replays only /a's protein subset, heating it through both signal
// paths (cache hits via FrameCache.SetAccessFunc, misses via the storage
// AccessFunc). One planning round must then demote both of /b's cold
// subsets and promote /a's hot protein subset — with every byte served
// before and after identical, and the move visible in the tier.* metrics.
func TestMigratorEndToEnd(t *testing.T) {
	pdbBytes, traj := testDataset(t, 200, 6)
	containers := newStore(t)
	reg := metrics.NewRegistry()
	allSlow := core.Placement{core.TagProtein: "hdd", core.TagMisc: "hdd"}
	allFast := core.Placement{core.TagProtein: "ssd", core.TagMisc: "ssd"}
	ingestPlaced(t, containers, reg, "/a", allSlow, pdbBytes, traj)
	ingestPlaced(t, containers, reg, "/b", allFast, pdbBytes, traj)

	a := core.New(containers, nil, core.Options{Metrics: reg})
	golden := map[[2]string][]*xtc.Frame{}
	for _, logical := range []string{"/a", "/b"} {
		for _, tag := range []string{core.TagProtein, core.TagMisc} {
			golden[[2]string{logical, tag}] = readFrames(t, a, logical, tag)
		}
	}

	// The virtual clock makes heat decay deterministic; only the test
	// advances it.
	env := sim.NewEnv()
	trk := NewTracker(env.Clock.Now, 60)
	a.SetAccessFunc(trk.Record)

	// Size the fast budget so /b alone breaches the high watermark, but a
	// single demoted subset's worth of space fits /a's protein subset.
	u0 := containers.UsageOf("ssd")
	cfg := Config{
		Fast: "ssd", Slow: "hdd",
		CapacityBytes: (u0-1)*10/9 - 10, // high watermark lands just under u0
		HighWater:     0.9, LowWater: 0.1,
	}
	m, err := NewMigrator(a, containers, trk, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Replay /a's protein subset: a back-and-forth sweep through a frame
	// cache. Misses decode through storage (core's AccessFunc observes
	// them); repeats hit the cache, whose hook reports what storage cannot
	// see. Together the tracker counts every access exactly once.
	src, err := a.OpenSubsetAt("/a", core.TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	s := vmd.NewSession(nil, 0, vmd.ComputeCost{})
	cache := s.NewFrameCache(src, 1<<30)
	cache.SetAccessFunc(func(b int64) {
		trk.Record("/a", core.SubsetDropping(core.TagProtein), b)
	})
	st, err := s.Play(cache, vmd.BackAndForth(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 || st.Cache.Misses == 0 {
		t.Fatalf("playback should both hit and miss: %+v", st.Cache)
	}
	cache.Release()
	src.Close()
	hot := trk.Heat("/a", core.SubsetDropping(core.TagProtein))
	if hot <= 0 {
		t.Fatal("playback produced no heat")
	}
	// Five minutes of idle (five half-lives) decays the heat but leaves it
	// above the promotion bar: the signal survives the planning delay.
	env.Clock.Advance(300)
	if h := trk.Heat("/a", core.SubsetDropping(core.TagProtein)); h <= 1 || h >= hot {
		t.Fatalf("decayed heat = %g (was %g)", h, hot)
	}

	rep, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Demotions) != 2 {
		t.Fatalf("demotions = %+v, want /b's two subsets", rep.Demotions)
	}
	for _, mv := range rep.Demotions {
		if mv.Logical != "/b" || mv.From != "ssd" || mv.To != "hdd" {
			t.Fatalf("unexpected demotion %+v", mv)
		}
	}
	if len(rep.Promotions) != 1 || rep.Promotions[0].Logical != "/a" ||
		rep.Promotions[0].Tag != core.TagProtein || rep.Promotions[0].To != "ssd" {
		t.Fatalf("promotions = %+v, want /a protein to ssd", rep.Promotions)
	}
	if rep.BytesMoved <= 0 {
		t.Fatal("no bytes moved")
	}

	// Placement after the round: /a's hot protein on fast, everything cold
	// on slow.
	want := map[[2]string]string{
		{"/a", core.TagProtein}: "ssd",
		{"/a", core.TagMisc}:    "hdd",
		{"/b", core.TagProtein}: "hdd",
		{"/b", core.TagMisc}:    "hdd",
	}
	for k, be := range want {
		if got := subsetBackend(t, containers, k[0], k[1]); got != be {
			t.Errorf("%s/%s on %s, want %s", k[0], k[1], got, be)
		}
	}
	// Every subset still reads byte-identically. Detach the hook first:
	// these verification reads are the test's, not the workload's, and must
	// not heat the cold subsets before the convergence check below.
	a.SetAccessFunc(nil)
	for k, frames := range golden {
		if !sameFrames(readFrames(t, a, k[0], k[1]), frames) {
			t.Errorf("%s/%s frames changed across migration", k[0], k[1])
		}
	}
	// The round is visible to operators.
	snap := reg.Snapshot()
	if snap.Counters["tier.demotions"] != 2 || snap.Counters["tier.promotions"] != 1 {
		t.Errorf("counters = demote:%d promote:%d", snap.Counters["tier.demotions"], snap.Counters["tier.promotions"])
	}
	if snap.Counters["tier.bytes_moved"] != rep.BytesMoved {
		t.Errorf("tier.bytes_moved = %d, want %d", snap.Counters["tier.bytes_moved"], rep.BytesMoved)
	}
	if snap.Gauges["tier.fast_usage_bytes"] != containers.UsageOf("ssd") {
		t.Errorf("tier.fast_usage_bytes = %d, want %d",
			snap.Gauges["tier.fast_usage_bytes"], containers.UsageOf("ssd"))
	}
	if snap.Gauges["tier.over_high_watermark"] != 0 {
		t.Error("still over the high watermark after the round")
	}

	// A second round is a no-op: the store has converged.
	rep2, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Demotions)+len(rep2.Promotions) != 0 {
		t.Fatalf("second step moved data: %+v", rep2)
	}

	// The operator report agrees with the store.
	r, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	if r.FastUsage != containers.UsageOf("ssd") || len(r.Subsets) != 4 {
		t.Fatalf("report = %+v", r)
	}
	for _, sp := range r.Subsets {
		if want[[2]string{sp.Logical, sp.Tag}] != sp.Backend {
			t.Errorf("report places %s/%s on %s", sp.Logical, sp.Tag, sp.Backend)
		}
	}
}

func TestMigratorPinNever(t *testing.T) {
	pdbBytes, traj := testDataset(t, 150, 3)
	containers := newStore(t)
	reg := metrics.NewRegistry()
	allFast := core.Placement{core.TagProtein: "ssd", core.TagMisc: "ssd"}
	ingestPlaced(t, containers, reg, "/ds", allFast, pdbBytes, traj)
	a := core.New(containers, nil, core.Options{Metrics: reg})
	trk := NewTracker((&virtualClock{}).Now, 0)
	pol := NewLFU()
	pol.SetPin(core.TagProtein, PinNever)
	pol.SetPin(core.TagMisc, PinNever)
	m, err := NewMigrator(a, containers, trk, pol, Config{
		Fast: "ssd", Slow: "hdd",
		CapacityBytes: containers.UsageOf("ssd") / 2, // hopelessly over budget
		HighWater:     0.9, LowWater: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Demotions) != 0 {
		t.Fatalf("pinned subsets demoted: %+v", rep.Demotions)
	}
	if reg.Snapshot().Gauges["tier.over_high_watermark"] != 1 {
		t.Error("over-watermark gauge not raised")
	}
}

func TestMigratorPinFastPromotesCold(t *testing.T) {
	pdbBytes, traj := testDataset(t, 150, 3)
	containers := newStore(t)
	reg := metrics.NewRegistry()
	allSlow := core.Placement{core.TagProtein: "hdd", core.TagMisc: "hdd"}
	ingestPlaced(t, containers, reg, "/ds", allSlow, pdbBytes, traj)
	a := core.New(containers, nil, core.Options{Metrics: reg})
	trk := NewTracker((&virtualClock{}).Now, 0) // no accesses: everything cold
	pol := NewLFU()
	pol.SetPin(core.TagProtein, PinFast)
	m, err := NewMigrator(a, containers, trk, pol, Config{
		Fast: "ssd", Slow: "hdd", CapacityBytes: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Promotions) != 1 || rep.Promotions[0].Tag != core.TagProtein {
		t.Fatalf("promotions = %+v, want the pinned protein subset only", rep.Promotions)
	}
	if got := subsetBackend(t, containers, "/ds", core.TagMisc); got != "hdd" {
		t.Errorf("cold unpinned subset moved to %s", got)
	}
}

func TestMigratorMaxMovesPerStep(t *testing.T) {
	pdbBytes, traj := testDataset(t, 150, 3)
	containers := newStore(t)
	reg := metrics.NewRegistry()
	allFast := core.Placement{core.TagProtein: "ssd", core.TagMisc: "ssd"}
	ingestPlaced(t, containers, reg, "/ds", allFast, pdbBytes, traj)
	a := core.New(containers, nil, core.Options{Metrics: reg})
	trk := NewTracker((&virtualClock{}).Now, 0)
	m, err := NewMigrator(a, containers, trk, nil, Config{
		Fast: "ssd", Slow: "hdd",
		CapacityBytes: 1, // everything must leave...
		HighWater:     0.9, LowWater: 0.1,
		MaxMovesPerStep: 1, // ...but only one subset per round
	})
	if err != nil {
		t.Fatal(err)
	}
	for round, wantLeft := range []int{1, 0} {
		rep, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Demotions) != 1 {
			t.Fatalf("round %d demotions = %+v", round, rep.Demotions)
		}
		left := 0
		for _, tag := range []string{core.TagProtein, core.TagMisc} {
			if subsetBackend(t, containers, "/ds", tag) == "ssd" {
				left++
			}
		}
		if left != wantLeft {
			t.Fatalf("round %d leaves %d subsets on fast, want %d", round, left, wantLeft)
		}
	}
}

func TestNewMigratorValidation(t *testing.T) {
	containers := newStore(t)
	a := core.New(containers, nil, core.Options{Metrics: metrics.NewRegistry()})
	trk := NewTracker((&virtualClock{}).Now, 0)
	ok := Config{Fast: "ssd", Slow: "hdd", CapacityBytes: 1 << 20}
	if _, err := NewMigrator(a, containers, trk, nil, ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"unknown fast":  func(c *Config) { c.Fast = "nvme" },
		"unknown slow":  func(c *Config) { c.Slow = "tape" },
		"fast == slow":  func(c *Config) { c.Slow = "ssd" },
		"zero capacity": func(c *Config) { c.CapacityBytes = 0 },
		"low > high":    func(c *Config) { c.LowWater = 0.95; c.HighWater = 0.5 },
		"high > 1":      func(c *Config) { c.HighWater = 1.5 },
	} {
		cfg := ok
		mutate(&cfg)
		if _, err := NewMigrator(a, containers, trk, nil, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestMigratorRunStop drives the background loop on a short interval and
// checks Stop's drain contract (idempotent, safe without Run).
func TestMigratorRunStop(t *testing.T) {
	pdbBytes, traj := testDataset(t, 150, 3)
	containers := newStore(t)
	reg := metrics.NewRegistry()
	allFast := core.Placement{core.TagProtein: "ssd", core.TagMisc: "ssd"}
	ingestPlaced(t, containers, reg, "/ds", allFast, pdbBytes, traj)
	a := core.New(containers, nil, core.Options{Metrics: reg})
	trk := NewTracker((&virtualClock{}).Now, 0)
	m, err := NewMigrator(a, containers, trk, nil, Config{
		Fast: "ssd", Slow: "hdd", CapacityBytes: 1,
		HighWater: 0.9, LowWater: 0.1,
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Stop() // Stop before Run is a no-op
	m.Run()
	m.Run() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["tier.demotions"] < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never drained the fast backend")
		}
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	steps := reg.Snapshot().Counters["tier.steps"]
	time.Sleep(10 * time.Millisecond)
	if got := reg.Snapshot().Counters["tier.steps"]; got != steps {
		t.Fatalf("loop still stepping after Stop: %d -> %d", steps, got)
	}
	for _, tag := range []string{core.TagProtein, core.TagMisc} {
		if got := subsetBackend(t, containers, "/ds", tag); got != "hdd" {
			t.Errorf("subset.%s still on %s", tag, got)
		}
	}
}
