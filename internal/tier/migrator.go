package tier

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plfs"
)

// Config parameterizes the migration planner. Fast/Slow name two of the
// store's backends; CapacityBytes bounds the fast backend (MemFS mounts
// have no physical capacity, so the budget is explicit). Watermarks are
// fractions of CapacityBytes: when fast usage exceeds HighWater the planner
// demotes coldest-first until usage falls to LowWater, and promotions only
// run while they keep usage under HighWater.
type Config struct {
	Fast            string
	Slow            string
	CapacityBytes   int64
	HighWater       float64       // demotion trigger (fraction of cap; default 0.9)
	LowWater        float64       // demotion target (fraction of cap; default 0.7)
	PromoteHeat     float64       // min decayed heat to promote (default 1 byte)
	HalfLife        float64       // heat half-life in seconds (default 60)
	Interval        time.Duration // background planning period (default 5s)
	MaxMovesPerStep int           // cap on migrations per Step (0 = unlimited)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.HighWater == 0 {
		c.HighWater = 0.9
	}
	if c.LowWater == 0 {
		c.LowWater = 0.7
	}
	if c.PromoteHeat == 0 {
		c.PromoteHeat = 1
	}
	if c.HalfLife == 0 {
		c.HalfLife = 60
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Second
	}
	return c
}

// Move records one executed migration.
type Move struct {
	Logical string
	Tag     string
	From    string
	To      string
	Bytes   int64
}

// StepReport summarizes one planning round.
type StepReport struct {
	Demotions  []Move
	Promotions []Move
	BytesMoved int64
	FastUsage  int64 // fast-backend bytes after the round
}

// migratorMetrics publishes the subsystem's counters under tier.*.
type migratorMetrics struct {
	steps      *metrics.Counter // tier.steps: planning rounds run
	stepErrors *metrics.Counter // tier.step_errors: rounds that hit an error
	promotions *metrics.Counter // tier.promotions: subsets moved to fast
	demotions  *metrics.Counter // tier.demotions: subsets moved off fast
	bytesMoved *metrics.Counter // tier.bytes_moved: payload+index bytes copied
	fastUsage  *metrics.Gauge   // tier.fast_usage_bytes: fast backend occupancy
	capacity   *metrics.Gauge   // tier.capacity_bytes: configured fast budget
	overHigh   *metrics.Gauge   // tier.over_high_watermark: 1 while usage > high
	tracked    *metrics.Gauge   // tier.tracked_droppings: heat series held
}

func newMigratorMetrics(reg *metrics.Registry) migratorMetrics {
	return migratorMetrics{
		steps:      reg.Counter("tier.steps"),
		stepErrors: reg.Counter("tier.step_errors"),
		promotions: reg.Counter("tier.promotions"),
		demotions:  reg.Counter("tier.demotions"),
		bytesMoved: reg.Counter("tier.bytes_moved"),
		fastUsage:  reg.Gauge("tier.fast_usage_bytes"),
		capacity:   reg.Gauge("tier.capacity_bytes"),
		overHigh:   reg.Gauge("tier.over_high_watermark"),
		tracked:    reg.Gauge("tier.tracked_droppings"),
	}
}

// Migrator plans and executes dropping migrations between two backends from
// the heat a Tracker has accumulated. Step runs one deterministic planning
// round; Run/Stop wrap it in a background loop with graceful drain (an
// in-flight round finishes before Stop returns, so a migration is never
// torn by shutdown — only by a crash, which recovery repairs).
type Migrator struct {
	a   *core.ADA
	fs  *plfs.FS
	tr  *Tracker
	pol Policy
	cfg Config
	mm  migratorMetrics

	mu   sync.Mutex // serializes Step against itself and Stop
	stop chan struct{}
	done chan struct{}
}

// NewMigrator validates cfg against the store's backends and returns a
// planner. pol nil selects the default decayed-LFU policy.
func NewMigrator(a *core.ADA, fs *plfs.FS, tr *Tracker, pol Policy, cfg Config) (*Migrator, error) {
	cfg = cfg.withDefaults()
	names := map[string]bool{}
	for _, n := range fs.Backends() {
		names[n] = true
	}
	if !names[cfg.Fast] {
		return nil, fmt.Errorf("tier: unknown fast backend %q", cfg.Fast)
	}
	if !names[cfg.Slow] {
		return nil, fmt.Errorf("tier: unknown slow backend %q", cfg.Slow)
	}
	if cfg.Fast == cfg.Slow {
		return nil, fmt.Errorf("tier: fast and slow are both %q", cfg.Fast)
	}
	if cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("tier: capacity must be positive (got %d)", cfg.CapacityBytes)
	}
	if cfg.LowWater <= 0 || cfg.HighWater > 1 || cfg.LowWater > cfg.HighWater {
		return nil, fmt.Errorf("tier: watermarks must satisfy 0 < low <= high <= 1 (got low=%g high=%g)",
			cfg.LowWater, cfg.HighWater)
	}
	if pol == nil {
		pol = NewLFU()
	}
	m := &Migrator{a: a, fs: fs, tr: tr, pol: pol, cfg: cfg, mm: newMigratorMetrics(a.Metrics())}
	m.mm.capacity.Set(cfg.CapacityBytes)
	return m, nil
}

// Config returns the effective (defaulted) configuration.
func (m *Migrator) Config() Config { return m.cfg }

// candidates lists every subset of every dataset with its current owner
// (plfs index truth, not the advisory manifest), movable byte count, and
// decayed heat. Sorted by (logical, tag) for deterministic planning.
func (m *Migrator) candidates() ([]Candidate, error) {
	datasets, err := m.a.Datasets()
	if err != nil {
		return nil, err
	}
	sort.Strings(datasets)
	var out []Candidate
	for _, logical := range datasets {
		idx, err := m.fs.Index(logical)
		if err != nil {
			return nil, fmt.Errorf("tier: index %s: %w", logical, err)
		}
		sizes := map[string]int64{}
		for _, d := range idx {
			sizes[d.Name] = d.Size
		}
		for _, d := range idx {
			tag, ok := core.SubsetTag(d.Name)
			if !ok {
				continue
			}
			out = append(out, Candidate{
				Logical: logical,
				Tag:     tag,
				Backend: d.Backend,
				Bytes:   d.Size + sizes[core.IndexDropping(tag)],
				Heat:    m.tr.Heat(logical, d.Name),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Logical != out[j].Logical {
			return out[i].Logical < out[j].Logical
		}
		return out[i].Tag < out[j].Tag
	})
	return out, nil
}

// Step runs one planning round: demote coldest-first while the fast backend
// is over the high watermark (down to the low watermark), then promote
// hottest-first while promotions fit under the high watermark. Each move is
// executed crash-safely through core.MoveSubset before the next is planned,
// so usage numbers stay truthful mid-round. Deterministic given the
// tracker's clock and the store's contents.
func (m *Migrator) Step() (*StepReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mm.steps.Inc()
	rep, err := m.step()
	if err != nil {
		m.mm.stepErrors.Inc()
	}
	if rep != nil {
		m.mm.fastUsage.Set(rep.FastUsage)
		high := int64(m.cfg.HighWater * float64(m.cfg.CapacityBytes))
		if rep.FastUsage > high {
			m.mm.overHigh.Set(1)
		} else {
			m.mm.overHigh.Set(0)
		}
	}
	m.mm.tracked.Set(int64(m.tr.Len()))
	return rep, err
}

func (m *Migrator) step() (*StepReport, error) {
	rep := &StepReport{FastUsage: m.fs.UsageOf(m.cfg.Fast)}
	cands, err := m.candidates()
	if err != nil {
		return rep, err
	}
	high := int64(m.cfg.HighWater * float64(m.cfg.CapacityBytes))
	low := int64(m.cfg.LowWater * float64(m.cfg.CapacityBytes))
	moves := 0
	budget := func() bool {
		return m.cfg.MaxMovesPerStep <= 0 || moves < m.cfg.MaxMovesPerStep
	}

	// Demotion: triggered above the high watermark, drains to the low one.
	if rep.FastUsage > high {
		onFast := filter(cands, func(c Candidate) bool {
			return c.Backend == m.cfg.Fast && m.pol.Pin(c.Logical, c.Tag) == PinNone
		})
		// Coldest first; among equals, biggest first frees space fastest.
		sort.SliceStable(onFast, func(i, j int) bool {
			si, sj := m.pol.Score(onFast[i]), m.pol.Score(onFast[j])
			if si != sj {
				return si < sj
			}
			return onFast[i].Bytes > onFast[j].Bytes
		})
		for _, c := range onFast {
			if rep.FastUsage <= low || !budget() {
				break
			}
			n, err := m.a.MoveSubset(c.Logical, c.Tag, m.cfg.Slow)
			rep.FastUsage = m.fs.UsageOf(m.cfg.Fast)
			if err != nil {
				return rep, fmt.Errorf("tier: demote %s/%s: %w", c.Logical, c.Tag, err)
			}
			moves++
			mv := Move{Logical: c.Logical, Tag: c.Tag, From: m.cfg.Fast, To: m.cfg.Slow, Bytes: n}
			rep.Demotions = append(rep.Demotions, mv)
			rep.BytesMoved += n
			m.mm.demotions.Inc()
			m.mm.bytesMoved.Add(n)
		}
	}

	// Promotion: hottest eligible subsets move to fast while they fit under
	// the high watermark (never past it — promotion must not trigger the
	// demotion it just paid for).
	offFast := filter(cands, func(c Candidate) bool {
		if c.Backend == m.cfg.Fast {
			return false
		}
		switch m.pol.Pin(c.Logical, c.Tag) {
		case PinNever:
			return false
		case PinFast:
			return true
		}
		return m.pol.Score(c) >= m.cfg.PromoteHeat
	})
	sort.SliceStable(offFast, func(i, j int) bool {
		// Pinned-to-fast candidates lead; then by score descending.
		pi := m.pol.Pin(offFast[i].Logical, offFast[i].Tag) == PinFast
		pj := m.pol.Pin(offFast[j].Logical, offFast[j].Tag) == PinFast
		if pi != pj {
			return pi
		}
		return m.pol.Score(offFast[i]) > m.pol.Score(offFast[j])
	})
	for _, c := range offFast {
		if !budget() {
			break
		}
		if rep.FastUsage+c.Bytes > high {
			continue // try a smaller candidate further down the ranking
		}
		n, err := m.a.MoveSubset(c.Logical, c.Tag, m.cfg.Fast)
		rep.FastUsage = m.fs.UsageOf(m.cfg.Fast)
		if err != nil {
			return rep, fmt.Errorf("tier: promote %s/%s: %w", c.Logical, c.Tag, err)
		}
		moves++
		mv := Move{Logical: c.Logical, Tag: c.Tag, From: c.Backend, To: m.cfg.Fast, Bytes: n}
		rep.Promotions = append(rep.Promotions, mv)
		rep.BytesMoved += n
		m.mm.promotions.Inc()
		m.mm.bytesMoved.Add(n)
	}
	return rep, nil
}

func filter(cands []Candidate, keep func(Candidate) bool) []Candidate {
	var out []Candidate
	for _, c := range cands {
		if keep(c) {
			out = append(out, c)
		}
	}
	return out
}

// Run starts the background planning loop on the configured interval.
// Errors inside a round are counted (tier.step_errors) and the loop keeps
// going — a backend that is down this round may be back the next.
func (m *Migrator) Run() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return // already running
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	go func() {
		defer close(done)
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.Step()
			}
		}
	}()
}

// Stop drains the background loop: a round in flight completes its current
// migration sequence before Stop returns. Idempotent; safe without Run.
func (m *Migrator) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SubsetPlacement is one row of a tier report.
type SubsetPlacement struct {
	Logical string
	Tag     string
	Backend string
	Bytes   int64
	Heat    float64
	Pin     Pin
}

// Report describes the store's current tiering state for operators
// (`adactl tier`): per-backend usage plus every subset's placement and heat.
type Report struct {
	Usage     map[string]int64
	Capacity  int64
	FastUsage int64
	Fast      string
	Slow      string
	Subsets   []SubsetPlacement
}

// Report snapshots placements and heat without moving anything.
func (m *Migrator) Report() (*Report, error) {
	cands, err := m.candidates()
	if err != nil {
		return nil, err
	}
	r := &Report{
		Usage:    m.fs.Usage(),
		Capacity: m.cfg.CapacityBytes,
		Fast:     m.cfg.Fast,
		Slow:     m.cfg.Slow,
	}
	r.FastUsage = r.Usage[m.cfg.Fast]
	for _, c := range cands {
		r.Subsets = append(r.Subsets, SubsetPlacement{
			Logical: c.Logical,
			Tag:     c.Tag,
			Backend: c.Backend,
			Bytes:   c.Bytes,
			Heat:    c.Heat,
			Pin:     m.pol.Pin(c.Logical, c.Tag),
		})
	}
	return r, nil
}
