package tier

import (
	"math"
	"sync"
	"testing"
	"time"
)

// virtualClock is a hand-advanced clock for deterministic decay tests.
type virtualClock struct {
	mu  sync.Mutex
	now float64
}

func (c *virtualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Advance(d float64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestTrackerDecay(t *testing.T) {
	clk := &virtualClock{}
	tr := NewTracker(clk.Now, 10) // heat halves every 10s
	tr.Record("/ds", "subset.p", 1000)
	if got := tr.Heat("/ds", "subset.p"); got != 1000 {
		t.Fatalf("heat at t=0: %g", got)
	}
	clk.Advance(10)
	if got := tr.Heat("/ds", "subset.p"); math.Abs(got-500) > 1e-9 {
		t.Fatalf("heat after one half-life: %g, want 500", got)
	}
	clk.Advance(10)
	if got := tr.Heat("/ds", "subset.p"); math.Abs(got-250) > 1e-9 {
		t.Fatalf("heat after two half-lives: %g, want 250", got)
	}
	// A new access decays the old heat first, then adds.
	tr.Record("/ds", "subset.p", 100)
	if got := tr.Heat("/ds", "subset.p"); math.Abs(got-350) > 1e-9 {
		t.Fatalf("heat after decayed add: %g, want 350", got)
	}
	// Lazy decay is path-independent: observing mid-way changes nothing.
	tr2 := NewTracker(clk.Now, 10)
	tr2.Record("/ds", "subset.p", 1000)
	clk.Advance(5)
	_ = tr2.Heat("/ds", "subset.p") // fold at the half-way point
	clk.Advance(5)
	if got := tr2.Heat("/ds", "subset.p"); math.Abs(got-500) > 1e-9 {
		t.Fatalf("split-fold heat: %g, want 500", got)
	}
}

func TestTrackerNoDecay(t *testing.T) {
	clk := &virtualClock{}
	tr := NewTracker(clk.Now, 0) // halfLife <= 0: pure LFU
	tr.Record("/ds", "subset.p", 100)
	clk.Advance(1e6)
	tr.Record("/ds", "subset.p", 100)
	if got := tr.Heat("/ds", "subset.p"); got != 200 {
		t.Fatalf("undecayed heat = %g, want 200", got)
	}
}

func TestTrackerIgnoresNonPositive(t *testing.T) {
	tr := NewTracker((&virtualClock{}).Now, 10)
	tr.Record("/ds", "subset.p", 0)
	tr.Record("/ds", "subset.p", -5)
	if tr.Len() != 0 {
		t.Fatalf("tracked %d series after no-op records", tr.Len())
	}
}

func TestTrackerSnapshotAndForget(t *testing.T) {
	clk := &virtualClock{}
	tr := NewTracker(clk.Now, 10)
	tr.Record("/a", "subset.p", 300)
	tr.Record("/a", "subset.m", 100)
	tr.Record("/b", "subset.p", 200)
	tr.Record("/b", "subset.m", 100)
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Hottest first; equal heat breaks ties by (logical, dropping).
	want := []HeatEntry{
		{Key{"/a", "subset.p"}, 300},
		{Key{"/b", "subset.p"}, 200},
		{Key{"/a", "subset.m"}, 100},
		{Key{"/b", "subset.m"}, 100},
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, snap[i], want[i])
		}
	}
	tr.Forget("/a")
	if tr.Len() != 2 {
		t.Fatalf("len after Forget = %d", tr.Len())
	}
	if got := tr.Heat("/a", "subset.p"); got != 0 {
		t.Fatalf("forgotten heat = %g", got)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	now := WallClock()
	a := now()
	time.Sleep(time.Millisecond)
	if b := now(); b <= a {
		t.Fatalf("wall clock not monotonic: %g then %g", a, b)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	clk := &virtualClock{}
	tr := NewTracker(clk.Now, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record("/ds", "subset.p", 1)
				tr.Heat("/ds", "subset.p")
			}
		}()
	}
	wg.Wait()
	if got := tr.Heat("/ds", "subset.p"); got != 800 {
		t.Fatalf("heat = %g, want 800", got)
	}
}
