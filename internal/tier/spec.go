package tier

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a -tier-spec flag value: comma-separated key=value
// pairs.
//
//	fast=ssd       fast backend name (required)
//	slow=hdd       slow backend name (required)
//	cap=64MiB      fast-backend capacity budget (required)
//	high=0.9       demotion trigger, fraction of cap
//	low=0.7        demotion target, fraction of cap
//	promote=1KiB   min decayed heat (bytes) to promote
//	halflife=60s   heat half-life (Go duration)
//	interval=5s    background planning period (Go duration)
//	max=0          max migrations per planning round (0 = unlimited)
//	pin=p:fast     per-tag override, repeatable; modes fast|never|none
//
// Sizes take optional K/M/G or KiB/MiB/GiB suffixes (both binary).
// Example:
//
//	-tier-spec fast=ssd,slow=hdd,cap=64MiB,high=0.9,low=0.7,halflife=5m
//
// The returned *LFU carries the pins; pass both to NewMigrator.
func ParseSpec(spec string) (Config, *LFU, error) {
	cfg := Config{}
	pol := NewLFU()
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, nil, fmt.Errorf("tier: spec field %q is not key=value", field)
		}
		var err error
		switch k {
		case "fast":
			cfg.Fast = v
		case "slow":
			cfg.Slow = v
		case "cap":
			cfg.CapacityBytes, err = ParseSize(v)
		case "high":
			cfg.HighWater, err = strconv.ParseFloat(v, 64)
		case "low":
			cfg.LowWater, err = strconv.ParseFloat(v, 64)
		case "promote":
			var n int64
			n, err = ParseSize(v)
			cfg.PromoteHeat = float64(n)
		case "halflife":
			var d time.Duration
			d, err = time.ParseDuration(v)
			cfg.HalfLife = d.Seconds()
		case "interval":
			cfg.Interval, err = time.ParseDuration(v)
		case "max":
			cfg.MaxMovesPerStep, err = strconv.Atoi(v)
		case "pin":
			tag, mode, ok := strings.Cut(v, ":")
			if !ok || tag == "" {
				return cfg, nil, fmt.Errorf("tier: pin %q is not tag:mode", v)
			}
			switch mode {
			case "fast":
				pol.SetPin(tag, PinFast)
			case "never":
				pol.SetPin(tag, PinNever)
			case "none":
				pol.SetPin(tag, PinNone)
			default:
				return cfg, nil, fmt.Errorf("tier: pin mode %q (want fast|never|none)", mode)
			}
		default:
			return cfg, nil, fmt.Errorf("tier: unknown spec key %q", k)
		}
		if err != nil {
			return cfg, nil, fmt.Errorf("tier: spec %s=%s: %w", k, v, err)
		}
	}
	if cfg.Fast == "" || cfg.Slow == "" {
		return cfg, nil, fmt.Errorf("tier: spec needs fast= and slow= backends")
	}
	if cfg.CapacityBytes <= 0 {
		return cfg, nil, fmt.Errorf("tier: spec needs cap= (fast backend capacity)")
	}
	// Return the effective configuration so callers can build the tracker
	// (which needs HalfLife) before the migrator.
	return cfg.withDefaults(), pol, nil
}

// ParseSize parses a byte count with an optional binary suffix:
// "64MiB", "8M", "1024".
func ParseSize(s string) (int64, error) {
	orig := s
	mult := int64(1)
	for _, suf := range []struct {
		text string
		mult int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(s, suf.text) {
			s, mult = strings.TrimSuffix(s, suf.text), suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", orig)
	}
	return n * mult, nil
}
