// Package analysis provides the trajectory analysis kernels a VMD user
// runs on the active data once it reaches the compute node: center of
// mass, radius of gyration, root-mean-square deviation, and mean squared
// displacement. These are the "sophisticated operations" the paper argues
// compute-node CPUs should spend their time on instead of decompression.
//
// All kernels treat atoms as unit-mass points (the repository's synthetic
// systems carry no masses), and operate on the repository's common frame
// type in nanometers.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/xtc"
)

// CenterOfMass returns the unweighted centroid of the coordinates.
func CenterOfMass(coords []xtc.Vec3) xtc.Vec3 {
	if len(coords) == 0 {
		return xtc.Vec3{}
	}
	var sum [3]float64
	for _, c := range coords {
		for d := 0; d < 3; d++ {
			sum[d] += float64(c[d])
		}
	}
	n := float64(len(coords))
	return xtc.Vec3{float32(sum[0] / n), float32(sum[1] / n), float32(sum[2] / n)}
}

// RadiusOfGyration returns sqrt(mean squared distance from the centroid),
// the compactness measure biologists watch for unfolding events.
func RadiusOfGyration(coords []xtc.Vec3) float64 {
	if len(coords) == 0 {
		return 0
	}
	com := CenterOfMass(coords)
	var sum float64
	for _, c := range coords {
		for d := 0; d < 3; d++ {
			dd := float64(c[d] - com[d])
			sum += dd * dd
		}
	}
	return math.Sqrt(sum / float64(len(coords)))
}

// RMSD returns the root-mean-square deviation between two conformations of
// the same atom set, without superposition (coordinates are compared in
// the fixed simulation frame).
func RMSD(a, b []xtc.Vec3) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("analysis: RMSD over %d vs %d atoms", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range a {
		for d := 0; d < 3; d++ {
			dd := float64(a[i][d] - b[i][d])
			sum += dd * dd
		}
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// AlignedRMSD returns the RMSD after removing the translational offset
// between the two conformations (centroids superposed; no rotation fit).
func AlignedRMSD(a, b []xtc.Vec3) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("analysis: AlignedRMSD over %d vs %d atoms", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	ca, cb := CenterOfMass(a), CenterOfMass(b)
	var sum float64
	for i := range a {
		for d := 0; d < 3; d++ {
			dd := float64((a[i][d] - ca[d]) - (b[i][d] - cb[d]))
			sum += dd * dd
		}
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// BoundingBox returns the axis-aligned min and max corners.
func BoundingBox(coords []xtc.Vec3) (lo, hi xtc.Vec3) {
	if len(coords) == 0 {
		return
	}
	lo, hi = coords[0], coords[0]
	for _, c := range coords[1:] {
		for d := 0; d < 3; d++ {
			if c[d] < lo[d] {
				lo[d] = c[d]
			}
			if c[d] > hi[d] {
				hi[d] = c[d]
			}
		}
	}
	return lo, hi
}

// TrajectoryStats accumulates per-frame series over a trajectory.
type TrajectoryStats struct {
	Frames int
	RGyr   []float64 // radius of gyration per frame
	RMSD   []float64 // RMSD vs the first frame (translation-aligned)
	MSD    []float64 // mean squared displacement vs the first frame
	first  []xtc.Vec3
}

// Add folds one frame into the series.
func (ts *TrajectoryStats) Add(f *xtc.Frame) error {
	if ts.first == nil {
		ts.first = append([]xtc.Vec3(nil), f.Coords...)
	}
	if len(f.Coords) != len(ts.first) {
		return fmt.Errorf("analysis: frame %d has %d atoms, first had %d",
			ts.Frames, len(f.Coords), len(ts.first))
	}
	ts.RGyr = append(ts.RGyr, RadiusOfGyration(f.Coords))
	r, err := AlignedRMSD(ts.first, f.Coords)
	if err != nil {
		return err
	}
	ts.RMSD = append(ts.RMSD, r)
	var msd float64
	for i := range f.Coords {
		for d := 0; d < 3; d++ {
			dd := float64(f.Coords[i][d] - ts.first[i][d])
			msd += dd * dd
		}
	}
	if n := len(f.Coords); n > 0 {
		msd /= float64(n)
	}
	ts.MSD = append(ts.MSD, msd)
	ts.Frames++
	return nil
}

// Mean returns the arithmetic mean of a series.
func Mean(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	var sum float64
	for _, v := range series {
		sum += v
	}
	return sum / float64(len(series))
}
