package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xtc"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCenterOfMass(t *testing.T) {
	coords := []xtc.Vec3{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {2, 2, 0}}
	com := CenterOfMass(coords)
	if com != (xtc.Vec3{1, 1, 0}) {
		t.Errorf("COM = %v", com)
	}
	if CenterOfMass(nil) != (xtc.Vec3{}) {
		t.Error("empty COM should be zero")
	}
}

func TestRadiusOfGyration(t *testing.T) {
	// Two points 2 apart: each 1 from the centroid -> rgyr = 1.
	coords := []xtc.Vec3{{-1, 0, 0}, {1, 0, 0}}
	if got := RadiusOfGyration(coords); !almostEq(got, 1, 1e-9) {
		t.Errorf("RGyr = %v", got)
	}
	if RadiusOfGyration(nil) != 0 {
		t.Error("empty RGyr should be 0")
	}
	// Scaling coordinates scales rgyr linearly.
	doubled := []xtc.Vec3{{-2, 0, 0}, {2, 0, 0}}
	if got := RadiusOfGyration(doubled); !almostEq(got, 2, 1e-9) {
		t.Errorf("scaled RGyr = %v", got)
	}
}

func TestRMSD(t *testing.T) {
	a := []xtc.Vec3{{0, 0, 0}, {1, 1, 1}}
	b := []xtc.Vec3{{1, 0, 0}, {2, 1, 1}} // uniform +1 in x
	got, err := RMSD(a, b)
	if err != nil || !almostEq(got, 1, 1e-9) {
		t.Errorf("RMSD = %v, %v", got, err)
	}
	// Translation-aligned RMSD of a pure translation is zero.
	ar, err := AlignedRMSD(a, b)
	if err != nil || !almostEq(ar, 0, 1e-6) {
		t.Errorf("AlignedRMSD = %v, %v", ar, err)
	}
	if _, err := RMSD(a, b[:1]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := AlignedRMSD(a, b[:1]); err == nil {
		t.Error("aligned length mismatch should fail")
	}
	z, err := RMSD(nil, nil)
	if err != nil || z != 0 {
		t.Errorf("empty RMSD = %v, %v", z, err)
	}
}

func TestBoundingBox(t *testing.T) {
	coords := []xtc.Vec3{{1, 5, -2}, {-3, 2, 7}, {0, 0, 0}}
	lo, hi := BoundingBox(coords)
	if lo != (xtc.Vec3{-3, 0, -2}) || hi != (xtc.Vec3{1, 5, 7}) {
		t.Errorf("bbox = %v..%v", lo, hi)
	}
}

func TestTrajectoryStats(t *testing.T) {
	var ts TrajectoryStats
	base := []xtc.Vec3{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}
	f0 := &xtc.Frame{Coords: base}
	if err := ts.Add(f0); err != nil {
		t.Fatal(err)
	}
	// Second frame: everything shifted by (1,0,0): MSD=1, aligned RMSD=0.
	shifted := make([]xtc.Vec3, len(base))
	for i, c := range base {
		shifted[i] = xtc.Vec3{c[0] + 1, c[1], c[2]}
	}
	if err := ts.Add(&xtc.Frame{Coords: shifted}); err != nil {
		t.Fatal(err)
	}
	if ts.Frames != 2 {
		t.Errorf("frames = %d", ts.Frames)
	}
	if !almostEq(ts.MSD[0], 0, 1e-9) || !almostEq(ts.MSD[1], 1, 1e-6) {
		t.Errorf("MSD = %v", ts.MSD)
	}
	if !almostEq(ts.RMSD[1], 0, 1e-6) {
		t.Errorf("aligned RMSD of translation = %v", ts.RMSD[1])
	}
	if !almostEq(ts.RGyr[0], ts.RGyr[1], 1e-6) {
		t.Errorf("rgyr changed under translation: %v", ts.RGyr)
	}
	// Mismatched frame.
	if err := ts.Add(&xtc.Frame{Coords: base[:2]}); err == nil {
		t.Error("atom-count change should fail")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); !almostEq(got, 2, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
}

// Invariants under rigid translation, checked property-style.
func TestQuickTranslationInvariance(t *testing.T) {
	f := func(seed int64, n uint8, dx, dy, dz int16) bool {
		rng := rand.New(rand.NewSource(seed))
		natoms := int(n)%50 + 2
		a := make([]xtc.Vec3, natoms)
		b := make([]xtc.Vec3, natoms)
		shift := xtc.Vec3{float32(dx) / 100, float32(dy) / 100, float32(dz) / 100}
		for i := range a {
			for d := 0; d < 3; d++ {
				a[i][d] = float32(rng.Float64()*10 - 5)
				b[i][d] = a[i][d] + shift[d]
			}
		}
		rg1, rg2 := RadiusOfGyration(a), RadiusOfGyration(b)
		ar, err := AlignedRMSD(a, b)
		if err != nil {
			return false
		}
		return almostEq(rg1, rg2, 1e-3) && almostEq(ar, 0, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
