// Package vfs defines the POSIX-like file-system interface every storage
// layer in this repository implements — the in-memory store, the
// device-timed local file systems (ext4/XFS stand-ins), the striped
// parallel file system, and the PLFS container layer — plus an in-memory
// reference implementation.
//
// Paths are slash-separated and rooted at "/"; they are cleaned on entry so
// "a//b/./c" and "/a/b/c" refer to the same file.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// Errors returned by FS implementations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrClosed   = errors.New("vfs: file already closed")
	// ErrBackendDown marks a backend whose transport is gone: the remote
	// storage node is unreachable or stopped responding within its retry
	// budget. Layers above (plfs, cluster) use it to degrade instead of
	// hanging or blindly retrying.
	ErrBackendDown = errors.New("vfs: backend down")
	// ErrCorrupted marks stored data whose checksum no longer matches what
	// was written: a flipped bit on disk, a torn write, or a truncated
	// dropping. Layers above use it to trigger replica failover or scrub
	// reporting rather than serving bad bytes as valid coordinates.
	ErrCorrupted = errors.New("vfs: data corrupted")
	// ErrNoSpace marks a backend that is out of capacity. Capacity-bounded
	// file systems wrap it from Create/Write so the layers above (plfs
	// dispatch, the tier planner, ingest) can react to a full fast backend —
	// demote cold data or re-place the write — instead of failing opaquely.
	ErrNoSpace = errors.New("vfs: no space left on device")
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string // base name
	Size  int64
	IsDir bool
}

// File is an open file handle.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.ReaderAt
	// Size returns the current file size.
	Size() int64
	// Name returns the cleaned absolute path the file was opened with.
	Name() string
}

// FS is the file-system interface ADA's I/O determinator dispatches to.
type FS interface {
	// Create truncates or creates the file for writing (and reading).
	Create(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Stat describes a file or directory.
	Stat(name string) (FileInfo, error)
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]FileInfo, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(name string) error
	// Remove deletes a file or empty directory.
	Remove(name string) error
	// Rename atomically moves oldname to newname. Renaming a file over an
	// existing file replaces it; the parent directory of newname must
	// already exist. Directories move with their whole subtree.
	Rename(oldname, newname string) error
}

// Clean normalizes a path to the canonical rooted form.
func Clean(name string) string {
	if !strings.HasPrefix(name, "/") {
		name = "/" + name
	}
	return path.Clean(name)
}

// ReadFile reads the whole named file.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := io.ReadFull(f, buf); err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return buf, nil
}

// WriteFile writes data to the named file, creating it.
func WriteFile(fsys FS, name string, data []byte) error {
	if err := fsys.MkdirAll(path.Dir(Clean(name))); err != nil {
		return err
	}
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Exists reports whether the named file or directory exists.
func Exists(fsys FS, name string) bool {
	_, err := fsys.Stat(name)
	return err == nil
}

// ReplaceFile atomically replaces the named file with data: the bytes are
// written to a temporary sibling first and renamed into place, so readers
// observe either the old content or the new, never a torn prefix.
func ReplaceFile(fsys FS, name string, data []byte) error {
	name = Clean(name)
	tmp := name + ".tmp"
	if err := WriteFile(fsys, tmp, data); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, name); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}

// MemFS is a thread-safe in-memory file system.
type MemFS struct {
	mu    sync.RWMutex
	files map[string]*memNode
}

type memNode struct {
	data  []byte
	isDir bool
}

// NewMemFS returns an empty in-memory FS containing only the root.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memNode{"/": {isDir: true}}}
}

var _ FS = (*MemFS)(nil)

func (m *MemFS) parentDirExists(name string) error {
	dir := path.Dir(name)
	n, ok := m.files[dir]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, dir)
	}
	if !n.isDir {
		return fmt.Errorf("%w: %s", ErrNotDir, dir)
	}
	return nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	name = Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.parentDirExists(name); err != nil {
		return nil, err
	}
	if n, ok := m.files[name]; ok && n.isDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, name)
	}
	node := &memNode{}
	m.files[name] = node
	return &memFile{fs: m, name: name, node: node, writable: true}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	name = Clean(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if n.isDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, name)
	}
	return &memFile{fs: m, name: name, node: n}, nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (FileInfo, error) {
	name = Clean(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, ok := m.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return FileInfo{Name: path.Base(name), Size: int64(len(n.data)), IsDir: n.isDir}, nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(name string) ([]FileInfo, error) {
	name = Clean(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if !n.isDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, name)
	}
	prefix := name
	if prefix != "/" {
		prefix += "/"
	}
	var out []FileInfo
	for p, node := range m.files {
		if p == name || !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if strings.Contains(rest, "/") {
			continue // deeper entry
		}
		out = append(out, FileInfo{Name: rest, Size: int64(len(node.data)), IsDir: node.isDir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(name string) error {
	name = Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	segs := strings.Split(strings.TrimPrefix(name, "/"), "/")
	cur := ""
	for _, s := range segs {
		if s == "" {
			continue
		}
		cur += "/" + s
		if n, ok := m.files[cur]; ok {
			if !n.isDir {
				return fmt.Errorf("%w: %s", ErrNotDir, cur)
			}
			continue
		}
		m.files[cur] = &memNode{isDir: true}
	}
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	name = Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if n.isDir {
		prefix := name + "/"
		for p := range m.files {
			if strings.HasPrefix(p, prefix) {
				return fmt.Errorf("vfs: directory %s not empty", name)
			}
		}
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	oldname = Clean(oldname)
	newname = Clean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	src, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldname)
	}
	if oldname == newname {
		return nil
	}
	if err := m.parentDirExists(newname); err != nil {
		return err
	}
	if dst, ok := m.files[newname]; ok {
		if src.isDir != dst.isDir {
			if dst.isDir {
				return fmt.Errorf("%w: %s", ErrIsDir, newname)
			}
			return fmt.Errorf("%w: %s", ErrNotDir, newname)
		}
		if dst.isDir {
			prefix := newname + "/"
			for p := range m.files {
				if strings.HasPrefix(p, prefix) {
					return fmt.Errorf("vfs: directory %s not empty", newname)
				}
			}
		}
	}
	if src.isDir {
		if strings.HasPrefix(newname, oldname+"/") {
			return fmt.Errorf("vfs: cannot move %s into itself", oldname)
		}
		prefix := oldname + "/"
		moved := make(map[string]*memNode)
		for p, node := range m.files {
			if strings.HasPrefix(p, prefix) {
				moved[newname+"/"+p[len(prefix):]] = node
				delete(m.files, p)
			}
		}
		for p, node := range moved {
			m.files[p] = node
		}
	}
	delete(m.files, oldname)
	m.files[newname] = src
	return nil
}

// TotalBytes returns the sum of all file sizes (directories excluded).
func (m *MemFS) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, node := range m.files {
		n += int64(len(node.data))
	}
	return n
}

// Walk visits every file (not directory) under root in sorted order.
func Walk(fsys FS, root string, fn func(path string, info FileInfo) error) error {
	root = Clean(root)
	entries, err := fsys.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		p := path.Join(root, e.Name)
		if e.IsDir {
			if err := Walk(fsys, p, fn); err != nil {
				return err
			}
			continue
		}
		if err := fn(p, e); err != nil {
			return err
		}
	}
	return nil
}

type memFile struct {
	fs       *MemFS
	name     string
	node     *memNode
	off      int64
	writable bool
	closed   bool
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Size() int64 {
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	return int64(len(f.node.data))
}

func (f *memFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	if f.off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative offset %d", off)
	}
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if !f.writable {
		return 0, fmt.Errorf("vfs: %s opened read-only", f.name)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	// Append-at-offset semantics: extend with zeros if needed. Growth is
	// geometric — an exact-size reallocation here would copy the whole
	// file once per appended frame, turning streaming ingest quadratic.
	end := f.off + int64(len(p))
	if end > int64(len(f.node.data)) {
		if end <= int64(cap(f.node.data)) {
			f.node.data = f.node.data[:end]
		} else {
			newCap := 2 * cap(f.node.data)
			if int64(newCap) < end {
				newCap = int(end)
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.node.data)
			f.node.data = grown
		}
	}
	copy(f.node.data[f.off:], p)
	f.off = end
	return len(p), nil
}

func (f *memFile) Close() error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}
