package vfs

import (
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/metrics"
)

// TestInstrumentTransparent drives the same operation sequence against a
// bare MemFS and an instrumented one and requires identical observable
// behavior: results, errors, directory listings, and file contents.
func TestInstrumentTransparent(t *testing.T) {
	reg := metrics.NewRegistry()
	bare := NewMemFS()
	wrapped := Instrument(NewMemFS(), reg, "fs.test")

	type step func(fs FS) (interface{}, error)
	steps := []struct {
		name string
		run  step
	}{
		{"mkdir", func(fs FS) (interface{}, error) { return nil, fs.MkdirAll("/a/b") }},
		{"write", func(fs FS) (interface{}, error) { return nil, WriteFile(fs, "/a/b/f.txt", []byte("hello world")) }},
		{"read", func(fs FS) (interface{}, error) { return ReadFile(fs, "/a/b/f.txt") }},
		{"stat", func(fs FS) (interface{}, error) { return fs.Stat("/a/b/f.txt") }},
		{"readdir", func(fs FS) (interface{}, error) { return fs.ReadDir("/a/b") }},
		{"open-missing", func(fs FS) (interface{}, error) { return nil, errOnly(fs.Open("/nope")) }},
		{"create-over-dir", func(fs FS) (interface{}, error) { return nil, errOnly(fs.Create("/a/b")) }},
		{"remove", func(fs FS) (interface{}, error) { return nil, fs.Remove("/a/b/f.txt") }},
		{"stat-after-remove", func(fs FS) (interface{}, error) { return nil, errOnly2(fs.Stat("/a/b/f.txt")) }},
	}
	for _, s := range steps {
		gotBare, errBare := s.run(bare)
		gotWrapped, errWrapped := s.run(wrapped)
		if (errBare == nil) != (errWrapped == nil) {
			t.Fatalf("%s: error mismatch: bare=%v wrapped=%v", s.name, errBare, errWrapped)
		}
		if errBare != nil && !errors.Is(errWrapped, errors.Unwrap(errBare)) &&
			errBare.Error() != errWrapped.Error() {
			t.Errorf("%s: error text mismatch: bare=%v wrapped=%v", s.name, errBare, errWrapped)
		}
		if !reflect.DeepEqual(gotBare, gotWrapped) {
			t.Errorf("%s: result mismatch: bare=%#v wrapped=%#v", s.name, gotBare, gotWrapped)
		}
	}

	// Partial reads and ReadAt semantics survive the wrapper.
	if err := WriteFile(wrapped, "/seq", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	f, err := wrapped.Open("/seq")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := f.Read(buf); n != 4 || err != nil || string(buf) != "0123" {
		t.Errorf("Read = %d,%v,%q", n, err, buf)
	}
	if n, err := f.ReadAt(buf, 8); n != 2 || err != io.EOF || string(buf[:n]) != "89" {
		t.Errorf("ReadAt = %d,%v,%q", n, err, buf[:n])
	}
	if f.Size() != 10 || f.Name() != "/seq" {
		t.Errorf("Size/Name = %d,%q", f.Size(), f.Name())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The registry actually saw the traffic.
	s := reg.Snapshot()
	if s.Counters["fs.test.ops.create"] == 0 || s.Counters["fs.test.ops.open"] == 0 {
		t.Errorf("op counters not recorded: %+v", s.Counters)
	}
	if s.Counters["fs.test.bytes_written"] < 11 {
		t.Errorf("bytes_written = %d, want ≥ 11", s.Counters["fs.test.bytes_written"])
	}
	if s.Counters["fs.test.bytes_read"] < 11 {
		t.Errorf("bytes_read = %d, want ≥ 11", s.Counters["fs.test.bytes_read"])
	}
	if s.Counters["fs.test.errors"] < 3 { // open-missing, create-over-dir, stat-after-remove
		t.Errorf("errors = %d, want ≥ 3", s.Counters["fs.test.errors"])
	}
	if s.Histograms["fs.test.open.ns"].Count == 0 || s.Histograms["fs.test.write.ns"].Count == 0 {
		t.Errorf("latency histograms empty: %+v", s.Histograms)
	}
	if wrapped.Unwrap() == nil {
		t.Error("Unwrap returned nil")
	}
}

func errOnly(_ File, err error) error      { return err }
func errOnly2(_ FileInfo, err error) error { return err }
