package vfs

import (
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCleanPaths(t *testing.T) {
	cases := map[string]string{
		"a/b":      "/a/b",
		"/a//b/.":  "/a/b",
		"/a/../b":  "/b",
		"/":        "/",
		"":         "/",
		"a/./b/c/": "/a/b/c",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCreateWriteOpenRead(t *testing.T) {
	m := NewMemFS()
	f, err := m.Create("/foo.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(m, "foo.txt") // relative resolves to same file
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Errorf("read %q", got)
	}
	info, err := m.Stat("/foo.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 11 || info.IsDir {
		t.Errorf("info = %+v", info)
	}
}

func TestOpenMissing(t *testing.T) {
	m := NewMemFS()
	if _, err := m.Open("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v", err)
	}
	if _, err := m.Stat("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat err = %v", err)
	}
}

func TestCreateRequiresParentDir(t *testing.T) {
	m := NewMemFS()
	if _, err := m.Create("/a/b/c"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist for missing parent", err)
	}
	if err := m.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(m, "/a/b/c", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestMkdirAllOverFileFails(t *testing.T) {
	m := NewMemFS()
	if err := WriteFile(m, "/x", []byte("f")); err != nil {
		t.Fatal(err)
	}
	if err := m.MkdirAll("/x/y"); !errors.Is(err, ErrNotDir) {
		t.Errorf("err = %v, want ErrNotDir", err)
	}
}

func TestReadDir(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d/sub"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"/d/b.txt", "/d/a.txt", "/d/sub/deep.txt"} {
		if err := WriteFile(m, name, []byte("z")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := m.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %v", entries)
	}
	if entries[0].Name != "a.txt" || entries[1].Name != "b.txt" || entries[2].Name != "sub" {
		t.Errorf("order = %v, %v, %v", entries[0].Name, entries[1].Name, entries[2].Name)
	}
	if !entries[2].IsDir {
		t.Error("sub should be a directory")
	}
	if _, err := m.ReadDir("/d/a.txt"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir on file: %v", err)
	}
}

func TestRemove(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(m, "/d/f", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/d"); err == nil {
		t.Error("removing non-empty dir should fail")
	}
	if err := m.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if Exists(m, "/d") {
		t.Error("dir still exists")
	}
	if err := m.Remove("/d"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove: %v", err)
	}
}

func TestReadAt(t *testing.T) {
	m := NewMemFS()
	if err := WriteFile(m, "/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	f, err := m.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4)
	n, err := f.ReadAt(buf, 3)
	if err != nil || n != 4 || string(buf) != "3456" {
		t.Errorf("ReadAt = %d %q %v", n, buf, err)
	}
	n, err = f.ReadAt(buf, 8)
	if err != io.EOF || n != 2 || string(buf[:n]) != "89" {
		t.Errorf("partial ReadAt = %d %q %v", n, buf[:n], err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("past-end ReadAt err = %v", err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Error("negative offset should fail")
	}
}

func TestClosedHandle(t *testing.T) {
	m := NewMemFS()
	f, err := m.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close: %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v", err)
	}
}

func TestOpenIsReadOnly(t *testing.T) {
	m := NewMemFS()
	if err := WriteFile(m, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f, err := m.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("y")); err == nil {
		t.Error("write through Open handle should fail")
	}
}

func TestCreateTruncates(t *testing.T) {
	m := NewMemFS()
	if err := WriteFile(m, "/f", []byte("long content")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(m, "/f", []byte("s")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(m, "/f")
	if err != nil || string(got) != "s" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestWalk(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a/1", "/a/b/2", "/top"} {
		if err := WriteFile(m, p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	err := Walk(m, "/", func(p string, info FileInfo) error {
		seen = append(seen, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/a/1", "/a/b/2", "/top"}
	if len(seen) != len(want) {
		t.Fatalf("seen = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("seen = %v, want %v", seen, want)
		}
	}
}

func TestTotalBytes(t *testing.T) {
	m := NewMemFS()
	_ = m.MkdirAll("/d")
	_ = WriteFile(m, "/d/a", make([]byte, 100))
	_ = WriteFile(m, "/d/b", make([]byte, 23))
	if got := m.TotalBytes(); got != 123 {
		t.Errorf("TotalBytes = %d", got)
	}
}

// TestQuickWriteReadConsistency writes random chunk sequences and verifies
// the file content equals the concatenation.
func TestQuickWriteReadConsistency(t *testing.T) {
	f := func(seed int64, nChunks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemFS()
		fh, err := m.Create("/f")
		if err != nil {
			return false
		}
		var want []byte
		for i := 0; i < int(nChunks)%10+1; i++ {
			chunk := make([]byte, rng.Intn(300))
			rng.Read(chunk)
			want = append(want, chunk...)
			if _, err := fh.Write(chunk); err != nil {
				return false
			}
		}
		fh.Close()
		got, err := ReadFile(m, "/f")
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
