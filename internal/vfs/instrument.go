package vfs

import (
	"io"
	"time"

	"repro/internal/metrics"
)

// InstrumentedFS wraps an FS and records per-operation counts, error
// counts, byte totals, and latency histograms into a metrics registry. The
// wrapper is behavior-transparent: every call, result, and error passes
// through unchanged.
//
// Metric names are rooted at the given prefix (typically the backend name):
//
//	<prefix>.ops.<op>       counter, one per Create/Open/Stat/ReadDir/MkdirAll/Remove/Rename
//	<prefix>.errors         counter, failed operations (file I/O included)
//	<prefix>.<op>.ns        histogram, per-op latency
//	<prefix>.bytes_read     counter (Read + ReadAt on files)
//	<prefix>.bytes_written  counter
//	<prefix>.read.ns        histogram, per-call file read latency
//	<prefix>.write.ns       histogram, per-call file write latency
type InstrumentedFS struct {
	fs  FS
	m   fsMetrics
	reg *metrics.Registry
}

// fsMetrics holds pre-resolved metric handles so the hot path never takes
// the registry lock.
type fsMetrics struct {
	ops     [7]*metrics.Counter // indexed by opKind
	latency [7]*metrics.Histogram
	errors  *metrics.Counter

	bytesRead    *metrics.Counter
	bytesWritten *metrics.Counter
	readNS       *metrics.Histogram
	writeNS      *metrics.Histogram
}

type opKind int

const (
	opCreate opKind = iota
	opOpen
	opStat
	opReadDir
	opMkdirAll
	opRemove
	opRename
)

var opNames = [7]string{"create", "open", "stat", "readdir", "mkdirall", "remove", "rename"}

// Instrument wraps fsys so every operation is recorded under prefix in reg.
// A nil reg uses metrics.Default. Instrumenting an already-instrumented FS
// double-counts; don't.
func Instrument(fsys FS, reg *metrics.Registry, prefix string) *InstrumentedFS {
	if reg == nil {
		reg = metrics.Default
	}
	ifs := &InstrumentedFS{fs: fsys, reg: reg}
	for i, name := range opNames {
		ifs.m.ops[i] = reg.Counter(prefix + ".ops." + name)
		ifs.m.latency[i] = reg.Histogram(prefix + "." + name + ".ns")
	}
	ifs.m.errors = reg.Counter(prefix + ".errors")
	ifs.m.bytesRead = reg.Counter(prefix + ".bytes_read")
	ifs.m.bytesWritten = reg.Counter(prefix + ".bytes_written")
	ifs.m.readNS = reg.Histogram(prefix + ".read.ns")
	ifs.m.writeNS = reg.Histogram(prefix + ".write.ns")
	return ifs
}

var _ FS = (*InstrumentedFS)(nil)

// Unwrap returns the underlying FS.
func (i *InstrumentedFS) Unwrap() FS { return i.fs }

// record accounts one completed operation.
func (i *InstrumentedFS) record(op opKind, start time.Time, err error) {
	i.m.ops[op].Inc()
	i.m.latency[op].Observe(time.Since(start).Nanoseconds())
	if err != nil {
		i.m.errors.Inc()
	}
}

// Create implements FS.
func (i *InstrumentedFS) Create(name string) (File, error) {
	start := time.Now()
	f, err := i.fs.Create(name)
	i.record(opCreate, start, err)
	if err != nil {
		return nil, err
	}
	return &instrumentedFile{File: f, m: &i.m}, nil
}

// Open implements FS.
func (i *InstrumentedFS) Open(name string) (File, error) {
	start := time.Now()
	f, err := i.fs.Open(name)
	i.record(opOpen, start, err)
	if err != nil {
		return nil, err
	}
	return &instrumentedFile{File: f, m: &i.m}, nil
}

// Stat implements FS.
func (i *InstrumentedFS) Stat(name string) (FileInfo, error) {
	start := time.Now()
	info, err := i.fs.Stat(name)
	i.record(opStat, start, err)
	return info, err
}

// ReadDir implements FS.
func (i *InstrumentedFS) ReadDir(name string) ([]FileInfo, error) {
	start := time.Now()
	entries, err := i.fs.ReadDir(name)
	i.record(opReadDir, start, err)
	return entries, err
}

// MkdirAll implements FS.
func (i *InstrumentedFS) MkdirAll(name string) error {
	start := time.Now()
	err := i.fs.MkdirAll(name)
	i.record(opMkdirAll, start, err)
	return err
}

// Remove implements FS.
func (i *InstrumentedFS) Remove(name string) error {
	start := time.Now()
	err := i.fs.Remove(name)
	i.record(opRemove, start, err)
	return err
}

// Rename implements FS.
func (i *InstrumentedFS) Rename(oldname, newname string) error {
	start := time.Now()
	err := i.fs.Rename(oldname, newname)
	i.record(opRename, start, err)
	return err
}

// instrumentedFile accounts file-level reads and writes.
type instrumentedFile struct {
	File
	m *fsMetrics
}

func (f *instrumentedFile) Read(p []byte) (int, error) {
	start := time.Now()
	n, err := f.File.Read(p)
	f.m.readNS.Observe(time.Since(start).Nanoseconds())
	f.m.bytesRead.Add(int64(n))
	if err != nil && err != io.EOF {
		f.m.errors.Inc()
	}
	return n, err
}

func (f *instrumentedFile) ReadAt(p []byte, off int64) (int, error) {
	start := time.Now()
	n, err := f.File.ReadAt(p, off)
	f.m.readNS.Observe(time.Since(start).Nanoseconds())
	f.m.bytesRead.Add(int64(n))
	if err != nil && err != io.EOF {
		f.m.errors.Inc()
	}
	return n, err
}

func (f *instrumentedFile) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := f.File.Write(p)
	f.m.writeNS.Observe(time.Since(start).Nanoseconds())
	f.m.bytesWritten.Add(int64(n))
	if err != nil {
		f.m.errors.Inc()
	}
	return n, err
}
