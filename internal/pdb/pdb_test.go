package pdb

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

const samplePDB = `TITLE     CB1-LIKE TEST SYSTEM
REMARK    generated for tests
CRYST1   80.000   80.000   80.000  90.00  90.00  90.00 P 1           1
ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N
ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C
ATOM      3  C   LEU A   2      12.500   7.200  -4.600  1.00  0.00           C
TER
HETATM    4  O   HOH B   1      20.000  20.000  20.000  1.00  0.00           O
HETATM    5  H1  HOH B   1      20.500  20.000  20.000  1.00  0.00           H
ATOM      6  P   POPCC   1      30.000  30.000  30.000  1.00  0.00           P
HETATM    7 NA   SOD D   1     40.000  40.000  40.000  1.00  0.00          NA
HETATM    8  C1  LIG E   1     50.000  50.000  50.000  1.00  0.00           C
END
ATOM      9  N   GLY F   1      0.000   0.000   0.000  1.00  0.00           N
`

func TestParseSample(t *testing.T) {
	s, err := Parse(strings.NewReader(samplePDB))
	if err != nil {
		t.Fatal(err)
	}
	if s.Title != "CB1-LIKE TEST SYSTEM" {
		t.Errorf("Title = %q", s.Title)
	}
	if s.NAtoms() != 8 {
		t.Fatalf("NAtoms = %d, want 8 (END must stop parsing)", s.NAtoms())
	}
	wantCats := []Category{Protein, Protein, Protein, Water, Water, Lipid, Ion, Ligand}
	for i, want := range wantCats {
		if got := s.Atoms[i].Category; got != want {
			t.Errorf("atom %d (%s): category = %v, want %v", i, s.Atoms[i].ResName, got, want)
		}
	}
	a := s.Atoms[0]
	if a.Serial != 1 || a.Name != "N" || a.ResName != "ALA" || a.ChainID != 'A' || a.ResSeq != 1 {
		t.Errorf("atom 0 fields = %+v", a)
	}
	if a.X != 11.104 || a.Y != 6.134 || a.Z != -6.504 {
		t.Errorf("atom 0 coords = %v %v %v", a.X, a.Y, a.Z)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		res  string
		het  bool
		want Category
	}{
		{"ALA", false, Protein},
		{"gly", false, Protein},
		{"HOH", true, Water},
		{"SOL", false, Water},
		{"POPC", false, Lipid},
		{"CHL1", false, Lipid},
		{"SOD", true, Ion},
		{"CL-", true, Ion},
		{"XYZ", true, Ligand},
		{"XYZ", false, Other},
		{"  TIP3 ", false, Water},
	}
	for _, c := range cases {
		if got := Classify(c.res, c.het); got != c.want {
			t.Errorf("Classify(%q, het=%v) = %v, want %v", c.res, c.het, got, c.want)
		}
	}
}

func TestCategoryStringRoundTrip(t *testing.T) {
	for c := Protein; c < numCategories; c++ {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCategory(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Error("ParseCategory(bogus) should fail")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig := &Structure{
		Title: "ROUNDTRIP",
		Atoms: []Atom{
			{Serial: 1, Name: "N", ResName: "ALA", ChainID: 'A', ResSeq: 1, X: 1.5, Y: -2.25, Z: 3.125, Element: "N", Category: Protein},
			{Serial: 2, Name: "CA", ResName: "ALA", ChainID: 'A', ResSeq: 1, X: 0, Y: 0, Z: 0, Element: "C", Category: Protein},
			{Serial: 3, Name: "O", ResName: "HOH", ChainID: 'B', ResSeq: 2, X: 10, Y: 20, Z: 30, Element: "O", HetAtm: true, Category: Water},
			{Serial: 4, Name: "P", ResName: "POPC", ChainID: 'C', ResSeq: 3, X: -5.5, Y: 6.75, Z: 7, Element: "P", Category: Lipid},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != orig.Title {
		t.Errorf("Title = %q", got.Title)
	}
	if got.NAtoms() != orig.NAtoms() {
		t.Fatalf("NAtoms = %d, want %d", got.NAtoms(), orig.NAtoms())
	}
	for i := range orig.Atoms {
		w, g := orig.Atoms[i], got.Atoms[i]
		if g.Name != w.Name || g.ResName != w.ResName || g.ChainID != w.ChainID ||
			g.ResSeq != w.ResSeq || g.Category != w.Category || g.HetAtm != w.HetAtm {
			t.Errorf("atom %d: got %+v, want %+v", i, g, w)
		}
		if g.X != w.X || g.Y != w.Y || g.Z != w.Z {
			t.Errorf("atom %d coords: got (%v,%v,%v), want (%v,%v,%v)",
				i, g.X, g.Y, g.Z, w.X, w.Y, w.Z)
		}
	}
}

func TestWriteParseRoundTripQuick(t *testing.T) {
	resNames := []string{"ALA", "GLY", "HOH", "POPC", "SOD", "LIG"}
	f := func(serial uint16, res uint8, xi, yi, zi int16) bool {
		a := Atom{
			Serial:  int(serial)%99998 + 1,
			Name:    "CA",
			ResName: resNames[int(res)%len(resNames)],
			ChainID: 'A',
			ResSeq:  1,
			// PDB coordinates have 3 decimals in an 8-char field; restrict
			// to exactly representable values within ±499.875.
			X: float64(xi%4000) / 8, Y: float64(yi%4000) / 8, Z: float64(zi%4000) / 8,
			Element: "C",
		}
		a.HetAtm = a.ResName == "LIG"
		a.Category = Classify(a.ResName, a.HetAtm)
		var buf bytes.Buffer
		if err := Write(&buf, &Structure{Atoms: []Atom{a}}); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil || got.NAtoms() != 1 {
			return false
		}
		g := got.Atoms[0]
		return g.ResName == a.ResName && g.Category == a.Category &&
			g.X == a.X && g.Y == a.Y && g.Z == a.Z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"ATOM      1  N   ALA A   1      xx.xxx   6.134  -6.504",
		"ATOM      b  N   ALA A   1      11.104   6.134  -6.504",
		"ATOM      1  N   ALA A   x      11.104   6.134  -6.504",
		"ATOM      1  N   ALA A   1      11.104",
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("Parse(%q) should fail", line)
		}
	}
}

func TestParseSkipsShortAndUnknownLines(t *testing.T) {
	in := "X\n\nJUNKRECORD blah\nATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N\n"
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.NAtoms() != 1 {
		t.Errorf("NAtoms = %d, want 1", s.NAtoms())
	}
}

func TestCategoryCounts(t *testing.T) {
	s, err := Parse(strings.NewReader(samplePDB))
	if err != nil {
		t.Fatal(err)
	}
	counts := s.CategoryCounts()
	want := map[Category]int{Protein: 3, Water: 2, Lipid: 1, Ion: 1, Ligand: 1}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("count[%v] = %d, want %d", c, counts[c], n)
		}
	}
}
