// Package pdb reads and writes Protein Data Bank structure files and
// classifies atoms into the categories ADA's data pre-processor labels:
// protein, water, lipid, ion, and ligand.
//
// Only the record types that matter for trajectory pre-processing are
// implemented: ATOM, HETATM, TER, CRYST1, TITLE, REMARK, and END. Column
// positions follow the PDB 3.3 fixed-width specification.
package pdb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Category is the coarse classification of an atom's residue.
type Category uint8

// Categories, ordered roughly by how "active" the paper considers them:
// protein is the active data; everything else is MISC.
const (
	Protein Category = iota
	Water
	Lipid
	Ion
	Ligand
	Other
	numCategories
)

// String returns the lower-case category name, which doubles as the
// fine-grained tag in ADA ("protein", "water", ...).
func (c Category) String() string {
	switch c {
	case Protein:
		return "protein"
	case Water:
		return "water"
	case Lipid:
		return "lipid"
	case Ion:
		return "ion"
	case Ligand:
		return "ligand"
	default:
		return "other"
	}
}

// NumCategories is the number of distinct categories.
const NumCategories = int(numCategories)

// ParseCategory maps a name back to its Category.
func ParseCategory(s string) (Category, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "protein":
		return Protein, nil
	case "water":
		return Water, nil
	case "lipid":
		return Lipid, nil
	case "ion":
		return Ion, nil
	case "ligand":
		return Ligand, nil
	case "other":
		return Other, nil
	}
	return Other, fmt.Errorf("pdb: unknown category %q", s)
}

// standard amino acid residue names (plus common variants).
var proteinResidues = map[string]bool{
	"ALA": true, "ARG": true, "ASN": true, "ASP": true, "CYS": true,
	"GLN": true, "GLU": true, "GLY": true, "HIS": true, "ILE": true,
	"LEU": true, "LYS": true, "MET": true, "PHE": true, "PRO": true,
	"SER": true, "THR": true, "TRP": true, "TYR": true, "VAL": true,
	"HSD": true, "HSE": true, "HSP": true, "HID": true, "HIE": true,
	"HIP": true, "CYX": true, "MSE": true,
}

var waterResidues = map[string]bool{
	"HOH": true, "SOL": true, "WAT": true, "TIP": true, "TIP3": true,
	"TIP4": true, "SPC": true, "T3P": true,
}

var lipidResidues = map[string]bool{
	"POPC": true, "POPE": true, "DPPC": true, "DOPC": true, "DMPC": true,
	"CHL1": true, "CHOL": true, "PLPC": true, "POPS": true, "POPG": true,
}

var ionResidues = map[string]bool{
	"NA": true, "CL": true, "K": true, "MG": true, "CA": true, "ZN": true,
	"SOD": true, "CLA": true, "POT": true, "CAL": true, "NA+": true, "CL-": true,
}

// Classify maps a residue name to its Category. Unknown HETATM residues are
// treated as ligands by the caller; unknown ATOM residues fall to Other.
func Classify(resName string, hetatm bool) Category {
	res := strings.ToUpper(strings.TrimSpace(resName))
	switch {
	case proteinResidues[res]:
		return Protein
	case waterResidues[res]:
		return Water
	case lipidResidues[res]:
		return Lipid
	case ionResidues[res]:
		return Ion
	case hetatm:
		return Ligand
	default:
		return Other
	}
}

// Atom is one ATOM or HETATM record.
type Atom struct {
	Serial   int
	Name     string // atom name, e.g. "CA"
	ResName  string // residue name, e.g. "ALA"
	ChainID  byte
	ResSeq   int
	X, Y, Z  float64 // Ångströms
	Element  string
	HetAtm   bool
	Category Category
}

// Structure is a parsed PDB file.
type Structure struct {
	Title string
	Atoms []Atom
}

// NAtoms returns the number of atoms.
func (s *Structure) NAtoms() int { return len(s.Atoms) }

// CategoryCounts returns the number of atoms in each category.
func (s *Structure) CategoryCounts() [NumCategories]int {
	var counts [NumCategories]int
	for _, a := range s.Atoms {
		counts[a.Category]++
	}
	return counts
}

// CategoryOf returns the category of atom index i.
func (s *Structure) CategoryOf(i int) Category { return s.Atoms[i].Category }

// Parse reads a PDB file from r.
func Parse(r io.Reader) (*Structure, error) {
	s := &Structure{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		rec := line
		if len(rec) > 6 {
			rec = rec[:6]
		}
		rec = strings.TrimRight(rec, " ")
		switch rec {
		case "ATOM", "HETATM":
			a, err := parseAtomLine(line, rec == "HETATM")
			if err != nil {
				return nil, fmt.Errorf("pdb: line %d: %w", lineno, err)
			}
			s.Atoms = append(s.Atoms, a)
		case "TITLE":
			t := strings.TrimSpace(line[6:])
			if s.Title == "" {
				s.Title = t
			} else {
				s.Title += " " + t
			}
		case "END", "ENDMDL":
			// Single-model structures only; stop at the first END.
			if rec == "END" {
				return s, nil
			}
		default:
			// TER, CRYST1, REMARK etc. are skipped.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pdb: %w", err)
	}
	return s, nil
}

func field(line string, lo, hi int) string {
	if len(line) < lo {
		return ""
	}
	if len(line) < hi {
		hi = len(line)
	}
	return strings.TrimSpace(line[lo:hi])
}

func parseAtomLine(line string, het bool) (Atom, error) {
	var a Atom
	a.HetAtm = het
	var err error
	if s := field(line, 6, 11); s != "" {
		if a.Serial, err = strconv.Atoi(s); err != nil {
			return a, fmt.Errorf("bad serial %q", s)
		}
	}
	a.Name = field(line, 12, 16)
	a.ResName = field(line, 17, 21) // col 21 tolerated for 4-char lipid names
	if len(line) > 21 && line[21] != ' ' {
		a.ChainID = line[21]
	}
	if s := field(line, 22, 26); s != "" {
		if a.ResSeq, err = strconv.Atoi(s); err != nil {
			return a, fmt.Errorf("bad residue number %q", s)
		}
	}
	coords := [3]*float64{&a.X, &a.Y, &a.Z}
	cols := [3][2]int{{30, 38}, {38, 46}, {46, 54}}
	for i, c := range cols {
		s := field(line, c[0], c[1])
		if s == "" {
			return a, fmt.Errorf("missing coordinate %d", i)
		}
		if *coords[i], err = strconv.ParseFloat(s, 64); err != nil {
			return a, fmt.Errorf("bad coordinate %q", s)
		}
	}
	a.Element = field(line, 76, 78)
	a.Category = Classify(a.ResName, het)
	return a, nil
}

// Write emits s as a PDB file.
func Write(w io.Writer, s *Structure) error {
	bw := bufio.NewWriter(w)
	if s.Title != "" {
		fmt.Fprintf(bw, "TITLE     %s\n", s.Title)
	}
	for i, a := range s.Atoms {
		rec := "ATOM  "
		if a.HetAtm {
			rec = "HETATM"
		}
		serial := a.Serial
		if serial == 0 {
			serial = i + 1
		}
		chain := a.ChainID
		if chain == 0 {
			chain = 'A'
		}
		name := a.Name
		// PDB convention: 1-3 char names start at column 14.
		if len(name) < 4 {
			name = " " + name
		}
		fmt.Fprintf(bw, "%s%5d %-4s %-4s%c%4d    %8.3f%8.3f%8.3f%6.2f%6.2f          %2s\n",
			rec, serial%100000, name, a.ResName, chain, a.ResSeq%10000,
			a.X, a.Y, a.Z, 1.0, 0.0, a.Element)
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}
