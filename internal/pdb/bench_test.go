package pdb

import (
	"bytes"
	"strings"
	"testing"
)

// benchStructure builds an n-atom structure once.
func benchStructure(n int) *Structure {
	s := &Structure{Title: "BENCH"}
	residues := []string{"ALA", "SOL", "POPC", "SOD", "LIG"}
	for i := 0; i < n; i++ {
		res := residues[i%len(residues)]
		het := res == "LIG" || res == "SOD"
		s.Atoms = append(s.Atoms, Atom{
			Serial: i + 1, Name: "CA", ResName: res, ChainID: 'A',
			ResSeq: i/8 + 1, X: float64(i % 80), Y: float64(i % 77), Z: float64(i % 71),
			Element: "C", HetAtm: het, Category: Classify(res, het),
		})
	}
	return s
}

func BenchmarkWrite(b *testing.B) {
	s := benchStructure(10000)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, s); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkParse(b *testing.B) {
	s := benchStructure(10000)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		b.Fatal(err)
	}
	text := buf.String()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	names := []string{"ALA", "HOH", "POPC", "NA", "XYZ", "TRP"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(names[i%len(names)], i%2 == 0)
	}
}
