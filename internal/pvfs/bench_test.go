package pvfs

import (
	"testing"

	"repro/internal/device"
	"repro/internal/vfs"
)

func BenchmarkStripedWholeFileRead(b *testing.B) {
	fs, err := New(threeSSD("bench"), nil)
	if err != nil {
		b.Fatal(err)
	}
	const size = 16 << 20
	if err := vfs.WriteFile(fs, "/f", make([]byte, size)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vfs.ReadFile(fs, "/f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStripedWrite(b *testing.B) {
	fs, err := New(threeSSD("bench"), nil)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4<<20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vfs.WriteFile(fs, "/f", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetadataStat(b *testing.B) {
	fs, err := New(Config{
		Label:      "meta",
		Servers:    []Server{{Name: "a", Dev: device.Plextor256GB()}},
		ClientLink: threeSSD("x").ClientLink,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/f", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat("/f"); err != nil {
			b.Fatal(err)
		}
	}
}
