// Package pvfs implements a PVFS/OrangeFS-like parallel file system: a
// metadata server mapping paths to striped layouts, and N data servers
// each holding every k-th stripe of a file. Reads and writes move stripes
// over per-server network links in parallel; elapsed virtual time is the
// slowest of the per-server device+link times and the client NIC drain,
// matching how a striped parallel read actually behaves.
//
// The paper's nine-node cluster runs two independent PVFS instances — one
// over the three HDD storage nodes and one over the three SSD nodes — and
// ADA's I/O dispatcher steers subsets between them.
//
// Timing semantics: stripes touched within ONE Read/Write call proceed in
// parallel (the elapsed charge is the slowest server, as a parallel client
// library behaves). A caller that streams in small chunks touches one
// stripe per call and therefore serializes, like a client with no
// readahead; whole-file reads (vfs.ReadFile) get the full parallelism. The
// analytic models in internal/cluster assume the parallel whole-file case.
package pvfs

import (
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"

	"repro/internal/device"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// DefaultStripeSize is the striping unit (the OrangeFS default, 64 KiB,
// scaled up to 1 MiB as deployments typically configure for HPC I/O).
const DefaultStripeSize = 1 << 20

// metadataLatency is the virtual cost of one metadata operation.
const metadataLatency = 200e-6

// Server describes one data server.
type Server struct {
	Name string
	Dev  device.Device
	Link netsim.Link
}

// Config configures a parallel file system instance.
type Config struct {
	Label      string // used in profile buckets, e.g. "pvfs-ssd"
	StripeSize int64
	Servers    []Server
	ClientLink netsim.Link // the compute node's NIC
}

// FS is a parallel file system client bound to one metadata domain.
type FS struct {
	mu      sync.Mutex
	cfg     Config
	env     *sim.Env
	nodes   map[string]*mnode
	stores  []*vfs.MemFS
	nextID  int64
	nextSrv int
}

type mnode struct {
	isDir bool
	size  int64
	id    int64 // stripe namespace on the data servers
	first int   // server index of stripe 0 (round-robin placement)
}

var _ vfs.FS = (*FS)(nil)

// New returns a parallel FS with the given configuration. env may be nil to
// disable time accounting.
func New(cfg Config, env *sim.Env) (*FS, error) {
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("pvfs: no data servers configured")
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = DefaultStripeSize
	}
	if cfg.Label == "" {
		cfg.Label = "pvfs"
	}
	if cfg.ClientLink.Bandwidth == 0 {
		cfg.ClientLink = netsim.InfiniBand()
	}
	fs := &FS{
		cfg:   cfg,
		env:   env,
		nodes: map[string]*mnode{"/": {isDir: true}},
	}
	for range cfg.Servers {
		fs.stores = append(fs.stores, vfs.NewMemFS())
	}
	return fs, nil
}

// Label returns the instance label.
func (s *FS) Label() string { return s.cfg.Label }

// NumServers returns the data server count.
func (s *FS) NumServers() int { return len(s.cfg.Servers) }

// TotalBytes returns the bytes stored across all data servers.
func (s *FS) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, st := range s.stores {
		n += st.TotalBytes()
	}
	return n
}

func (s *FS) chargeMeta() {
	if s.env != nil {
		s.env.Charge("meta."+s.cfg.Label, metadataLatency)
	}
}

// stripePath names stripe k of file id on its data server.
func stripePath(id int64, k int64) string {
	return fmt.Sprintf("/stripes/%d/%d", id, k)
}

// Create implements vfs.FS.
func (s *FS) Create(name string) (vfs.File, error) {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeMeta()
	dir := path.Dir(name)
	dn, ok := s.nodes[dir]
	if !ok {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, dir)
	}
	if !dn.isDir {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotDir, dir)
	}
	if n, ok := s.nodes[name]; ok {
		if n.isDir {
			return nil, fmt.Errorf("%w: %s", vfs.ErrIsDir, name)
		}
		s.removeStripesLocked(n)
	}
	s.nextID++
	n := &mnode{id: s.nextID, first: s.nextSrv}
	s.nextSrv = (s.nextSrv + 1) % len(s.cfg.Servers)
	s.nodes[name] = n
	return &pfile{fs: s, name: name, node: n, writable: true, lastReadEnd: -1, lastWriteEnd: -1}, nil
}

func (s *FS) removeStripesLocked(n *mnode) {
	stripes := (n.size + s.cfg.StripeSize - 1) / s.cfg.StripeSize
	for k := int64(0); k < stripes; k++ {
		srv := (n.first + int(k)) % len(s.stores)
		_ = s.stores[srv].Remove(stripePath(n.id, k))
	}
}

// Open implements vfs.FS.
func (s *FS) Open(name string) (vfs.File, error) {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeMeta()
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	if n.isDir {
		return nil, fmt.Errorf("%w: %s", vfs.ErrIsDir, name)
	}
	return &pfile{fs: s, name: name, node: n, lastReadEnd: -1, lastWriteEnd: -1}, nil
}

// Stat implements vfs.FS.
func (s *FS) Stat(name string) (vfs.FileInfo, error) {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeMeta()
	n, ok := s.nodes[name]
	if !ok {
		return vfs.FileInfo{}, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	return vfs.FileInfo{Name: path.Base(name), Size: n.size, IsDir: n.isDir}, nil
}

// ReadDir implements vfs.FS.
func (s *FS) ReadDir(name string) ([]vfs.FileInfo, error) {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeMeta()
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	if !n.isDir {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotDir, name)
	}
	prefix := name
	if prefix != "/" {
		prefix += "/"
	}
	var out []vfs.FileInfo
	for p, node := range s.nodes {
		if p == name || !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if strings.Contains(rest, "/") {
			continue
		}
		out = append(out, vfs.FileInfo{Name: rest, Size: node.size, IsDir: node.isDir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// MkdirAll implements vfs.FS.
func (s *FS) MkdirAll(name string) error {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeMeta()
	segs := strings.Split(strings.TrimPrefix(name, "/"), "/")
	cur := ""
	for _, seg := range segs {
		if seg == "" {
			continue
		}
		cur += "/" + seg
		if n, ok := s.nodes[cur]; ok {
			if !n.isDir {
				return fmt.Errorf("%w: %s", vfs.ErrNotDir, cur)
			}
			continue
		}
		s.nodes[cur] = &mnode{isDir: true}
	}
	return nil
}

// Remove implements vfs.FS.
func (s *FS) Remove(name string) error {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeMeta()
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	if n.isDir {
		prefix := name + "/"
		for p := range s.nodes {
			if strings.HasPrefix(p, prefix) {
				return fmt.Errorf("pvfs: directory %s not empty", name)
			}
		}
	} else {
		s.removeStripesLocked(n)
	}
	delete(s.nodes, name)
	return nil
}

// Rename implements vfs.FS. Striping is keyed by immutable file id, so a
// rename is a pure metadata operation: the stripes never move.
func (s *FS) Rename(oldname, newname string) error {
	oldname = vfs.Clean(oldname)
	newname = vfs.Clean(newname)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chargeMeta()
	n, ok := s.nodes[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, oldname)
	}
	if oldname == newname {
		return nil
	}
	dir := path.Dir(newname)
	dn, ok := s.nodes[dir]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, dir)
	}
	if !dn.isDir {
		return fmt.Errorf("%w: %s", vfs.ErrNotDir, dir)
	}
	if dst, ok := s.nodes[newname]; ok {
		if dst.isDir != n.isDir {
			if dst.isDir {
				return fmt.Errorf("%w: %s", vfs.ErrIsDir, newname)
			}
			return fmt.Errorf("%w: %s", vfs.ErrNotDir, newname)
		}
		if dst.isDir {
			prefix := newname + "/"
			for p := range s.nodes {
				if strings.HasPrefix(p, prefix) {
					return fmt.Errorf("pvfs: directory %s not empty", newname)
				}
			}
		} else {
			s.removeStripesLocked(dst)
		}
	}
	if n.isDir {
		if strings.HasPrefix(newname, oldname+"/") {
			return fmt.Errorf("pvfs: cannot move %s into itself", oldname)
		}
		prefix := oldname + "/"
		moved := make(map[string]*mnode)
		for p, node := range s.nodes {
			if strings.HasPrefix(p, prefix) {
				moved[newname+"/"+p[len(prefix):]] = node
				delete(s.nodes, p)
			}
		}
		for p, node := range moved {
			s.nodes[p] = node
		}
	}
	delete(s.nodes, oldname)
	s.nodes[newname] = n
	return nil
}

// chargeTransfer accounts one striped transfer: perServer maps server index
// to bytes moved. Wall time is the slowest server path or the client NIC,
// whichever is worse; per-server device time is recorded concurrently.
// ops is the positioning charge per server: zero for a sequential
// continuation of the previous access on the same handle.
func (s *FS) chargeTransfer(perServer map[int]int64, write bool, ops int) {
	if s.env == nil || len(perServer) == 0 {
		return
	}
	kind := "read"
	if write {
		kind = "write"
	}
	var worst, total int64
	var worstElapsed float64
	for idx, bytes := range perServer {
		srv := s.cfg.Servers[idx]
		var devTime float64
		if write {
			devTime = srv.Dev.WriteTime(bytes, ops)
		} else {
			devTime = srv.Dev.ReadTime(bytes, ops)
		}
		elapsed := devTime + srv.Link.TransferTime(bytes)
		if elapsed > worstElapsed {
			worstElapsed = elapsed
		}
		s.env.ChargeConcurrent(fmt.Sprintf("io.%s.%s.%s", kind, s.cfg.Label, srv.Name), devTime)
		total += bytes
		if bytes > worst {
			worst = bytes
		}
	}
	drain := s.cfg.ClientLink.TransferTime(total)
	if drain > worstElapsed {
		worstElapsed = drain
	}
	s.env.Clock.Advance(worstElapsed)
	s.env.Profile.Add("net."+kind+"."+s.cfg.Label, worstElapsed)
}

// pfile is an open striped file.
type pfile struct {
	fs       *FS
	name     string
	node     *mnode
	off      int64
	writable bool
	closed   bool
	// Sequential-access tracking: continuing exactly where the previous
	// access ended does not pay another positioning charge.
	lastReadEnd  int64
	lastWriteEnd int64
}

// seqOps returns 0 for a sequential continuation, 1 otherwise.
func seqOps(off, lastEnd int64) int {
	if off == lastEnd {
		return 0
	}
	return 1
}

func (f *pfile) Name() string { return f.name }

func (f *pfile) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.node.size
}

// stripeServer returns the data-server index holding stripe k.
func (f *pfile) stripeServer(k int64) int {
	return (f.node.first + int(k)) % len(f.fs.stores)
}

func (f *pfile) readAtLocked(p []byte, off int64) (int, map[int]int64, error) {
	if off >= f.node.size {
		return 0, nil, io.EOF
	}
	perServer := map[int]int64{}
	ss := f.fs.cfg.StripeSize
	n := 0
	for n < len(p) && off < f.node.size {
		k := off / ss
		in := off % ss
		limit := ss - in
		if rem := f.node.size - off; rem < limit {
			limit = rem
		}
		if rem := int64(len(p) - n); rem < limit {
			limit = rem
		}
		srv := f.stripeServer(k)
		data, err := vfs.ReadFile(f.fs.stores[srv], stripePath(f.node.id, k))
		if err != nil {
			return n, perServer, fmt.Errorf("pvfs: %s stripe %d on %s: %w",
				f.name, k, f.fs.cfg.Servers[srv].Name, err)
		}
		c := copy(p[n:], data[in:in+limit])
		perServer[srv] += int64(c)
		n += c
		off += int64(c)
		if int64(c) < limit {
			return n, perServer, fmt.Errorf("pvfs: short stripe %d of %s", k, f.name)
		}
	}
	return n, perServer, nil
}

func (f *pfile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	f.fs.mu.Lock()
	start := f.off
	n, perServer, err := f.readAtLocked(p, f.off)
	f.off += int64(n)
	f.fs.mu.Unlock()
	f.fs.chargeTransfer(perServer, false, seqOps(start, f.lastReadEnd))
	if n > 0 {
		f.lastReadEnd = start + int64(n)
	}
	if err == nil && n < len(p) {
		return n, io.EOF
	}
	return n, err
}

func (f *pfile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("pvfs: negative offset %d", off)
	}
	f.fs.mu.Lock()
	n, perServer, err := f.readAtLocked(p, off)
	f.fs.mu.Unlock()
	f.fs.chargeTransfer(perServer, false, seqOps(off, f.lastReadEnd))
	if n > 0 {
		f.lastReadEnd = off + int64(n)
	}
	if err == nil && n < len(p) {
		return n, io.EOF
	}
	return n, err
}

func (f *pfile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	if !f.writable {
		return 0, fmt.Errorf("pvfs: %s opened read-only", f.name)
	}
	f.fs.mu.Lock()
	ss := f.fs.cfg.StripeSize
	perServer := map[int]int64{}
	n := 0
	off := f.off
	for n < len(p) {
		k := off / ss
		in := off % ss
		limit := ss - in
		if rem := int64(len(p) - n); rem < limit {
			limit = rem
		}
		srv := f.stripeServer(k)
		store := f.fs.stores[srv]
		sp := stripePath(f.node.id, k)
		// Read-modify-write the stripe in the in-memory store.
		cur, err := vfs.ReadFile(store, sp)
		if err != nil {
			cur = nil
		}
		end := in + limit
		if int64(len(cur)) < end {
			grown := make([]byte, end)
			copy(grown, cur)
			cur = grown
		}
		copy(cur[in:end], p[n:n+int(limit)])
		if err := vfs.WriteFile(store, sp, cur); err != nil {
			f.fs.mu.Unlock()
			return n, fmt.Errorf("pvfs: write stripe %d: %w", k, err)
		}
		perServer[srv] += limit
		n += int(limit)
		off += limit
	}
	start := f.off
	f.off = off
	if off > f.node.size {
		f.node.size = off
	}
	f.fs.mu.Unlock()
	f.fs.chargeTransfer(perServer, true, seqOps(start, f.lastWriteEnd))
	f.lastWriteEnd = off
	return len(p), nil
}

func (f *pfile) Close() error {
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	return nil
}
