package pvfs

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func threeHDD(label string) Config {
	mk := func(name string) Server {
		return Server{Name: name, Dev: device.WDBlue1TB(), Link: netsim.InfiniBand()}
	}
	return Config{
		Label:      label,
		Servers:    []Server{mk("hdd1"), mk("hdd2"), mk("hdd3")},
		ClientLink: netsim.InfiniBand(),
	}
}

func threeSSD(label string) Config {
	mk := func(name string) Server {
		return Server{Name: name, Dev: device.Plextor256GB(), Link: netsim.InfiniBand()}
	}
	return Config{
		Label:      label,
		Servers:    []Server{mk("ssd1"), mk("ssd2"), mk("ssd3")},
		ClientLink: netsim.InfiniBand(),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("no servers should fail")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs, err := New(threeHDD("t"), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5*DefaultStripeSize+12345) // spans many stripes
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	if err := vfs.WriteFile(fs, "/data/traj.xtc", data); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/data/traj.xtc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	info, err := fs.Stat("/data/traj.xtc")
	if err != nil || info.Size != int64(len(data)) {
		t.Errorf("Stat = %+v, %v", info, err)
	}
}

func TestStripesSpreadAcrossServers(t *testing.T) {
	fs, err := New(threeHDD("t"), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 6*DefaultStripeSize)
	if err := vfs.WriteFile(fs, "/f", data); err != nil {
		t.Fatal(err)
	}
	// With 6 stripes over 3 servers each store should hold 2 stripes.
	for i, st := range fs.stores {
		if got := st.TotalBytes(); got != 2*DefaultStripeSize {
			t.Errorf("server %d holds %d bytes, want %d", i, got, 2*DefaultStripeSize)
		}
	}
}

func TestParallelReadFasterThanSingleDevice(t *testing.T) {
	// A striped read over 3 HDDs must beat one HDD by close to 3x.
	env := sim.NewEnv()
	fs, err := New(threeHDD("par"), env)
	if err != nil {
		t.Fatal(err)
	}
	const size = 90 * device.MB
	if err := vfs.WriteFile(fs, "/f", make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	start := env.Clock.Now()
	if _, err := vfs.ReadFile(fs, "/f"); err != nil {
		t.Fatal(err)
	}
	elapsed := env.Clock.Now() - start
	single := device.WDBlue1TB().ReadTime(size, 1)
	speedup := single / elapsed
	t.Logf("3-way striped read: %.3fs vs single-disk %.3fs (%.2fx)", elapsed, single, speedup)
	if speedup < 2.5 || speedup > 3.5 {
		t.Errorf("speedup = %.2fx, want ~3x", speedup)
	}
}

func TestSSDClusterBeatsHDDCluster(t *testing.T) {
	read := func(cfg Config) float64 {
		env := sim.NewEnv()
		fs, err := New(cfg, env)
		if err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(fs, "/f", make([]byte, 60*device.MB)); err != nil {
			t.Fatal(err)
		}
		start := env.Clock.Now()
		if _, err := vfs.ReadFile(fs, "/f"); err != nil {
			t.Fatal(err)
		}
		return env.Clock.Now() - start
	}
	hdd := read(threeHDD("h"))
	ssd := read(threeSSD("s"))
	t.Logf("hdd=%.4fs ssd=%.4fs ratio=%.1fx", hdd, ssd, hdd/ssd)
	// Fig 9a: ADA on SSD nodes reads >2x faster than PVFS spanning HDDs.
	if hdd/ssd < 2 {
		t.Errorf("SSD cluster only %.2fx faster than HDD cluster", hdd/ssd)
	}
}

func TestReadAt(t *testing.T) {
	fs, err := New(threeHDD("t"), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*DefaultStripeSize+100)
	for i := range data {
		data[i] = byte(i)
	}
	if err := vfs.WriteFile(fs, "/f", data); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 200)
	off := int64(DefaultStripeSize - 100) // straddles stripe boundary
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != data[off+int64(i)] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if _, err := f.ReadAt(buf, int64(len(data))+1); err != io.EOF {
		t.Errorf("past-end: %v", err)
	}
}

func TestMetadataOps(t *testing.T) {
	fs, err := New(threeHDD("t"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/a/b/f1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/a/b/f2", []byte("yy")); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/a/b")
	if err != nil || len(entries) != 2 {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	if entries[0].Name != "f1" || entries[1].Size != 2 {
		t.Errorf("entries = %+v", entries)
	}
	if _, err := fs.Open("/a/b/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("Open missing: %v", err)
	}
	if err := fs.Remove("/a/b/f1"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(fs, "/a/b/f1") {
		t.Error("f1 still exists")
	}
}

func TestRemoveReleasesStripes(t *testing.T) {
	fs, err := New(threeHDD("t"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/f", make([]byte, 4*DefaultStripeSize)); err != nil {
		t.Fatal(err)
	}
	if fs.TotalBytes() == 0 {
		t.Fatal("no stripes stored")
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if got := fs.TotalBytes(); got != 0 {
		t.Errorf("TotalBytes after remove = %d", got)
	}
}

func TestMetadataLatencyCharged(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(threeHDD("m"), env)
	if err != nil {
		t.Fatal(err)
	}
	before := env.Clock.Now()
	_, _ = fs.Stat("/")
	if env.Clock.Now() <= before {
		t.Error("Stat should charge metadata latency")
	}
	if env.Profile.Get("meta.m") <= 0 {
		t.Error("metadata bucket empty")
	}
}

func TestQuickRoundTripVariousSizes(t *testing.T) {
	f := func(seed int64, sz uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		fs, err := New(Config{
			Label:      "q",
			StripeSize: 4096,
			Servers: []Server{
				{Name: "a", Dev: device.Plextor256GB(), Link: netsim.Local()},
				{Name: "b", Dev: device.Plextor256GB(), Link: netsim.Local()},
			},
			ClientLink: netsim.Local(),
		}, nil)
		if err != nil {
			return false
		}
		data := make([]byte, sz%(64*1024))
		rng.Read(data)
		if err := vfs.WriteFile(fs, "/f", data); err != nil {
			return false
		}
		got, err := vfs.ReadFile(fs, "/f")
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAcrossHandles(t *testing.T) {
	fs, err := New(threeHDD("t"), nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 100000)
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/f")
	if err != nil || len(got) != 1000000 {
		t.Fatalf("read %d bytes, %v", len(got), err)
	}
	for i, b := range got {
		if b != byte(i/100000) {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
}

func TestClientNICBottleneck(t *testing.T) {
	// Infinitely fast servers, slow client NIC: elapsed = total/clientBW.
	env := sim.NewEnv()
	slow := netsim.Link{Name: "slow", Bandwidth: 10 * device.MB}
	cfg := Config{
		Label: "nic",
		Servers: []Server{
			{Name: "a", Dev: device.Device{ReadBW: 1e18, WriteBW: 1e18, Capacity: device.GB}, Link: netsim.Local()},
			{Name: "b", Dev: device.Device{ReadBW: 1e18, WriteBW: 1e18, Capacity: device.GB}, Link: netsim.Local()},
		},
		ClientLink: slow,
	}
	fs, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/f", make([]byte, 20*device.MB)); err != nil {
		t.Fatal(err)
	}
	start := env.Clock.Now()
	if _, err := vfs.ReadFile(fs, "/f"); err != nil {
		t.Fatal(err)
	}
	elapsed := env.Clock.Now() - start
	if math.Abs(elapsed-2.0) > 0.1 {
		t.Errorf("elapsed = %.3fs, want ~2.0s (20MB over a 10MB/s NIC)", elapsed)
	}
}
