// Package device models the performance characteristics of storage devices:
// rotating disks with seek latency, NVMe/SATA SSDs, and RAID compositions.
// The models are the ones the paper's platforms are built from (Tables 4
// and 5): WD 1 TB HDDs at 126 MB/s over SATA, Plextor 256 GB SSDs at
// 3000/1000 MB/s over PCIe, and a ten-disk RAID-50 array.
package device

import "fmt"

// MB is one megabyte in bytes (decimal, as vendors rate throughput).
const MB = 1000 * 1000

// GB is one gigabyte in bytes.
const GB = 1000 * MB

// Device describes a storage device's steady-state performance.
type Device struct {
	Name      string
	ReadBW    float64 // bytes/second sustained read
	WriteBW   float64 // bytes/second sustained write
	SeekSec   float64 // per-operation positioning latency, seconds
	Capacity  int64   // bytes
	IdleWatts float64
	BusyWatts float64
}

// ReadTime returns the modeled time to read n bytes in ops operations.
func (d Device) ReadTime(n int64, ops int) float64 {
	if n < 0 || ops < 0 {
		panic(fmt.Sprintf("device: negative read charge n=%d ops=%d", n, ops))
	}
	return float64(ops)*d.SeekSec + float64(n)/d.ReadBW
}

// WriteTime returns the modeled time to write n bytes in ops operations.
func (d Device) WriteTime(n int64, ops int) float64 {
	if n < 0 || ops < 0 {
		panic(fmt.Sprintf("device: negative write charge n=%d ops=%d", n, ops))
	}
	return float64(ops)*d.SeekSec + float64(n)/d.WriteBW
}

// WDBlue1TB is the cluster's Western Digital 1 TB SATA HDD (126 MB/s max).
func WDBlue1TB() Device {
	return Device{
		Name:      "WD 1TB HDD",
		ReadBW:    126 * MB,
		WriteBW:   126 * MB,
		SeekSec:   0.008, // ~8 ms average positioning
		Capacity:  1000 * GB,
		IdleWatts: 4,
		BusyWatts: 7,
	}
}

// Plextor256GB is the cluster's PCIe SSD (3000 MB/s peak read, 1000 write).
func Plextor256GB() Device {
	return Device{
		Name:      "Plextor 256GB SSD",
		ReadBW:    3000 * MB,
		WriteBW:   1000 * MB,
		SeekSec:   0.0001, // ~100 µs
		Capacity:  256 * GB,
		IdleWatts: 1,
		BusyWatts: 6,
	}
}

// NVMe256GB is the SSD server's NVMe drive (Section 4.1).
func NVMe256GB() Device {
	return Device{
		Name:      "NVMe 256GB SSD",
		ReadBW:    3000 * MB,
		WriteBW:   1000 * MB,
		SeekSec:   0.00008,
		Capacity:  256 * GB,
		IdleWatts: 1,
		BusyWatts: 7,
	}
}

// RAID returns a striped composition of n identical member devices with the
// given count of parity disks excluded from useful bandwidth. level is a
// display label ("RAID0", "RAID50", ...).
func RAID(member Device, n, parity int, level string) Device {
	if n <= parity {
		panic(fmt.Sprintf("device: RAID with %d members and %d parity disks", n, parity))
	}
	data := float64(n - parity)
	return Device{
		Name:      fmt.Sprintf("%s (%d x %s)", level, n, member.Name),
		ReadBW:    member.ReadBW * data,
		WriteBW:   member.WriteBW * data,
		SeekSec:   member.SeekSec, // members seek in parallel
		Capacity:  int64(data) * member.Capacity,
		IdleWatts: member.IdleWatts * float64(n),
		BusyWatts: member.BusyWatts * float64(n),
	}
}

// RAID50x10 is the fat-node server's array: ten WD 1 TB disks in RAID 50
// (two RAID-5 groups of five, two parity disks total).
func RAID50x10() Device {
	return RAID(WDBlue1TB(), 10, 2, "RAID50")
}
