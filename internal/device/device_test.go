package device

import (
	"math"
	"testing"
)

func TestReadWriteTime(t *testing.T) {
	d := Device{ReadBW: 100 * MB, WriteBW: 50 * MB, SeekSec: 0.01}
	if got := d.ReadTime(100*MB, 1); math.Abs(got-1.01) > 1e-9 {
		t.Errorf("ReadTime = %v, want 1.01", got)
	}
	if got := d.WriteTime(100*MB, 2); math.Abs(got-2.02) > 1e-9 {
		t.Errorf("WriteTime = %v, want 2.02", got)
	}
	if got := d.ReadTime(0, 0); got != 0 {
		t.Errorf("zero read = %v", got)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative bytes should panic")
		}
	}()
	WDBlue1TB().ReadTime(-1, 0)
}

func TestPaperDevices(t *testing.T) {
	hdd := WDBlue1TB()
	if hdd.ReadBW != 126*MB {
		t.Errorf("HDD read BW = %v", hdd.ReadBW)
	}
	ssd := Plextor256GB()
	if ssd.ReadBW != 3000*MB || ssd.WriteBW != 1000*MB {
		t.Errorf("SSD BW = %v/%v", ssd.ReadBW, ssd.WriteBW)
	}
	// SSD must read >20x faster than HDD per Table 4.
	if ssd.ReadBW/hdd.ReadBW < 20 {
		t.Errorf("SSD/HDD ratio = %v", ssd.ReadBW/hdd.ReadBW)
	}
}

func TestRAID50(t *testing.T) {
	arr := RAID50x10()
	member := WDBlue1TB()
	if arr.ReadBW != member.ReadBW*8 {
		t.Errorf("RAID50 read BW = %v, want 8x member", arr.ReadBW)
	}
	if arr.Capacity != 8*member.Capacity {
		t.Errorf("RAID50 capacity = %v", arr.Capacity)
	}
	if arr.SeekSec != member.SeekSec {
		t.Errorf("RAID50 seek = %v", arr.SeekSec)
	}
	if arr.BusyWatts != 10*member.BusyWatts {
		t.Errorf("RAID50 busy watts = %v", arr.BusyWatts)
	}
}

func TestRAIDValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RAID with parity >= members should panic")
		}
	}()
	RAID(WDBlue1TB(), 2, 2, "RAID1")
}
