package serve

import (
	"container/list"

	"repro/internal/xtc"
)

// Key names one decoded frame in the shared cache: a dataset, a tagged
// subset of it, and a frame number.
type Key struct {
	Logical string
	Tag     string
	Frame   int
}

// droppingPrefix matches core's subset dropping naming, so serve-side heat
// shares a namespace with the tiering tracker's.
const droppingPrefix = "subset."

func (k Key) dropping() string { return droppingPrefix + k.Tag }

type centry struct {
	key   Key
	frame *xtc.Frame
	bytes int64
}

// frameCache is the fabric's shared decoded-frame store: plain LRU under a
// byte budget, with the admission decision (heat comparison against the
// would-be victims) made by the caller via evictOK. It is guarded by the
// fabric's mutex.
type frameCache struct {
	budget int64
	used   int64
	lru    *list.List // front = most recent; values *centry
	lookup map[Key]*list.Element
}

func newFrameCache(budget int64) *frameCache {
	return &frameCache{budget: budget, lru: list.New(), lookup: map[Key]*list.Element{}}
}

// get returns the cached frame and refreshes its recency.
func (c *frameCache) get(k Key) (*xtc.Frame, bool) {
	e, ok := c.lookup[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*centry).frame, true
}

// admit inserts the frame if it fits the budget after evicting LRU victims,
// asking evictOK before each eviction. A false answer — the victim is worth
// more than the incoming frame — rejects the insertion instead. Returns
// (admitted, victims evicted); the frame is served to its waiters either
// way, only residency is at stake.
func (c *frameCache) admit(k Key, f *xtc.Frame, bytes int64, evictOK func(victim Key) bool) (bool, int) {
	if bytes > c.budget {
		return false, 0
	}
	evicted := 0
	for c.used+bytes > c.budget {
		e := c.lru.Back()
		if e == nil {
			break
		}
		victim := e.Value.(*centry)
		if !evictOK(victim.key) {
			return false, evicted
		}
		c.remove(e)
		evicted++
	}
	if e, ok := c.lookup[k]; ok {
		// A racing decode of the same key already published: keep the
		// resident copy.
		c.lru.MoveToFront(e)
		return true, evicted
	}
	c.lookup[k] = c.lru.PushFront(&centry{key: k, frame: f, bytes: bytes})
	c.used += bytes
	return true, evicted
}

func (c *frameCache) remove(e *list.Element) {
	ent := e.Value.(*centry)
	c.lru.Remove(e)
	delete(c.lookup, ent.key)
	c.used -= ent.bytes
}

// len returns the number of resident frames.
func (c *frameCache) len() int { return c.lru.Len() }
