package serve

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/vmd"
	"repro/internal/xtc"
)

const (
	iaAtoms   = 1000  // interactive subset (protein-only)
	bulkAtoms = 40000 // bulk scanner's full-system frames
)

// fairnessConfig is shared by the solo and contended runs so the comparison
// isolates the workload change.
func fairnessConfig(reg *metrics.Registry) Config {
	return Config{
		CacheBytes:   64 << 20,
		QuantumBytes: 512 << 10, // ~one bulk frame per DRR visit
		Metrics:      reg,
	}
}

// interactiveSessions are four independent viewers replaying small windows
// back and forth with think time — the paper's §2.1 workload.
func interactiveSessions() []SimSession {
	var out []SimSession
	for n := 0; n < 4; n++ {
		out = append(out, SimSession{
			Tenant:  fmt.Sprintf("ia%d", n),
			Class:   "interactive",
			Logical: fmt.Sprintf("/ia%d", n),
			Tag:     "p",
			NAtoms:  iaAtoms,
			Pattern: vmd.BackAndForth(24, 4),
			Think:   0.005,
			Start:   float64(n) * 0.001,
		})
	}
	return out
}

// bulkSessions are one tenant's four parallel full-trajectory scans with no
// think time: enough demand to saturate the decode server indefinitely.
func bulkSessions() []SimSession {
	var out []SimSession
	for n := 0; n < 4; n++ {
		pattern := make([]int, 4000)
		for i := range pattern {
			pattern[i] = i
		}
		out = append(out, SimSession{
			Tenant:  "bulk",
			Class:   "bulk",
			Logical: fmt.Sprintf("/bulk%d", n),
			Tag:     "misc",
			NAtoms:  bulkAtoms,
			Pattern: pattern,
		})
	}
	return out
}

// TestFairShareBoundsInteractiveP99 is the scheduler's headline guarantee:
// a saturating bulk scan inflates interactive p99 by at most a fixed,
// provable bound — one in-service bulk frame (non-preemptible) plus one
// quantum's worth dispatched ahead — instead of queueing interactive reads
// behind the whole backlog.
func TestFairShareBoundsInteractiveP99(t *testing.T) {
	soloReg := metrics.NewRegistry()
	solo := Simulate(fairnessConfig(soloReg), DefaultCostModel, interactiveSessions())
	p99Solo := soloReg.Snapshot().Histograms["serve.class.interactive.read_ns"].P99
	if p99Solo <= 0 || solo.Reads != 4*96 {
		t.Fatalf("solo baseline broken: p99=%dns reads=%d", p99Solo, solo.Reads)
	}

	contReg := metrics.NewRegistry()
	cont := Simulate(fairnessConfig(contReg), DefaultCostModel,
		append(interactiveSessions(), bulkSessions()...))
	snap := contReg.Snapshot()
	p99Cont := snap.Histograms["serve.class.interactive.read_ns"].P99

	// The bulk tenant must actually have been backlogged, or the run proves
	// nothing.
	if hwm := snap.Gauges["serve.queue_depth_hwm"]; hwm < 2 {
		t.Fatalf("queue HWM = %d; bulk scan never contended", hwm)
	}
	if bulkP50 := snap.Histograms["serve.class.bulk.read_ns"].P50; bulkP50 <= 0 {
		t.Fatal("bulk class saw no traffic")
	}

	// Fixed bound: an interactive miss can wait out the residual of one
	// in-service bulk frame plus at most one more dispatched by the bulk
	// tenant's quantum before DRR reaches it. Doubling the solo term and
	// adding 3 bulk service times absorbs the histogram's 12.5% bucket
	// error with room to spare — the point is the bound does not scale with
	// the bulk backlog (16k queued frames ≈ 15 virtual seconds of work).
	bulkSvcNS := int64(float64(xtc.RawFrameSize(bulkAtoms)) / DefaultCostModel.DecodeBps * 1e9)
	bound := 2*p99Solo + 3*bulkSvcNS
	if p99Cont > bound {
		t.Errorf("interactive p99 under bulk load = %dns, bound %dns (solo %dns, bulk svc %dns)",
			p99Cont, bound, p99Solo, bulkSvcNS)
	}

	// Accounting identity: every read is exactly one of cache hit, decode
	// originator, or coalesced attach — coalesced demands never re-count a
	// decode.
	for _, r := range []SimReport{solo, cont} {
		if r.Reads != r.Hits+r.Decodes+r.Coalesced {
			t.Errorf("reads=%d != hits=%d + decodes=%d + coalesced=%d",
				r.Reads, r.Hits, r.Decodes, r.Coalesced)
		}
	}
	if snap.Counters["serve.decodes"] != cont.Decodes ||
		snap.Counters["serve.coalesced"] != cont.Coalesced {
		t.Errorf("registry decodes/coalesced = %d/%d, report = %d/%d",
			snap.Counters["serve.decodes"], snap.Counters["serve.coalesced"],
			cont.Decodes, cont.Coalesced)
	}
}

// TestFairnessDeterministic: the whole contended simulation — report and
// latency distributions — is bit-identical run to run, which is what lets
// CI gate its percentiles with a tight regression bar.
func TestFairnessDeterministic(t *testing.T) {
	run := func() (SimReport, metrics.Snapshot) {
		reg := metrics.NewRegistry()
		rep := Simulate(fairnessConfig(reg), DefaultCostModel,
			append(interactiveSessions(), bulkSessions()...))
		return rep, reg.Snapshot()
	}
	rep1, snap1 := run()
	rep2, snap2 := run()
	if rep1 != rep2 {
		t.Errorf("reports differ:\n  %+v\n  %+v", rep1, rep2)
	}
	if !reflect.DeepEqual(snap1.Histograms, snap2.Histograms) {
		t.Error("latency histograms differ between identical runs")
	}
	if !reflect.DeepEqual(snap1.Counters, snap2.Counters) {
		t.Error("counters differ between identical runs")
	}
}

// TestSimCoalescingCountsOnce: N sessions demanding the same cold frame at
// the same instant produce exactly one decode, with the rest attached as
// coalesced waiters sharing its completion.
func TestSimCoalescingCountsOnce(t *testing.T) {
	const demands = 6
	var sessions []SimSession
	for n := 0; n < demands; n++ {
		sessions = append(sessions, SimSession{
			Tenant:  fmt.Sprintf("t%d", n),
			Class:   "burst",
			Logical: "/shared",
			Tag:     "p",
			NAtoms:  iaAtoms,
			Pattern: []int{5},
		})
	}
	reg := metrics.NewRegistry()
	rep := Simulate(fairnessConfig(reg), DefaultCostModel, sessions)
	if rep.Decodes != 1 || rep.Coalesced != demands-1 || rep.Hits != 0 {
		t.Errorf("report = %+v, want 1 decode, %d coalesced, 0 hits", rep, demands-1)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.decodes"] != 1 {
		t.Errorf("serve.decodes = %d for %d same-frame demands, want exactly 1",
			snap.Counters["serve.decodes"], demands)
	}
	if h := snap.Histograms["serve.class.burst.read_ns"]; h.Count != demands {
		t.Errorf("%d latency samples, want %d (every waiter observes the shared decode)",
			h.Count, demands)
	}
}
