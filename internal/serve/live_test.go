package serve

import (
	"sync"
	"testing"

	"repro/internal/xtc"
)

// growingSource is a stub live FrameSource: Frames() extends as frames are
// published and Live() flips false on seal — the contract stream.Source
// provides over a real live dataset.
type growingSource struct {
	mu     sync.Mutex
	natoms int
	head   int
	sealed bool
	reads  int
}

func (g *growingSource) Frames() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.head
}

func (g *growingSource) Live() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.sealed
}

func (g *growingSource) ConcurrentFrameReads() bool { return true }

func (g *growingSource) ReadFrameAt(i int) (*xtc.Frame, error) {
	g.mu.Lock()
	g.reads++
	g.mu.Unlock()
	return &xtc.Frame{Step: int32(i), Coords: make([]xtc.Vec3, g.natoms)}, nil
}

func (g *growingSource) publish(n int) {
	g.mu.Lock()
	g.head += n
	g.mu.Unlock()
}

func (g *growingSource) seal() {
	g.mu.Lock()
	g.sealed = true
	g.mu.Unlock()
}

func (g *growingSource) sourceReads() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reads
}

// TestFabricServesLiveHandle: a handle over a live source extends its frame
// count as the head advances, keeps pre-growth frames cached (published
// prefixes are immutable, so no invalidation is needed), and flips Live()
// on seal.
func TestFabricServesLiveHandle(t *testing.T) {
	src := &growingSource{natoms: 10}
	f, reg := newTestFabric(t, Config{Workers: 2})
	h := f.Open("alice", "/live", "p", src.natoms, src)

	if !h.Live() {
		t.Fatal("live source not detected")
	}
	if h.Frames() != 0 {
		t.Fatalf("empty live dataset has %d frames", h.Frames())
	}

	src.publish(4)
	if h.Frames() != 4 {
		t.Fatalf("frames = %d after first publish", h.Frames())
	}
	for i := 0; i < 4; i++ {
		fr, err := h.ReadFrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if int(fr.Step) != i {
			t.Fatalf("frame %d came back as step %d", i, fr.Step)
		}
	}
	decodes := src.sourceReads()

	// The head advances; cached pre-growth frames must be served without
	// touching the source again.
	src.publish(4)
	if h.Frames() != 8 {
		t.Fatalf("frames = %d after second publish", h.Frames())
	}
	for i := 0; i < 4; i++ {
		if _, err := h.ReadFrameAt(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.sourceReads(); got != decodes {
		t.Fatalf("pre-growth frames re-decoded: %d source reads, want %d", got, decodes)
	}
	for i := 4; i < 8; i++ {
		if _, err := h.ReadFrameAt(i); err != nil {
			t.Fatal(err)
		}
	}

	src.seal()
	if h.Live() {
		t.Fatal("handle still live after seal")
	}
	if reg.Snapshot().Counters["serve.cache.hits"] != 4 {
		t.Errorf("cache hits = %d, want 4", reg.Snapshot().Counters["serve.cache.hits"])
	}
}

// TestFabricHandleNotLive: a plain immutable source never reports live.
func TestFabricHandleNotLive(t *testing.T) {
	src := &stubSource{frames: 4, natoms: 10}
	f, _ := newTestFabric(t, Config{Workers: 1})
	h := f.Open("alice", "/ds", "p", src.natoms, src)
	if h.Live() {
		t.Fatal("immutable source reported live")
	}
}
