// Package serve turns the storage node's read side from one-reader-one-cache
// into a multi-tenant serving fabric: many playback sessions multiplex over
// a single size-bounded decoded-frame cache with heat-aware admission
// (the tiering tracker's decayed byte heat decides whether an incoming frame
// may displace a resident one), per-tenant token-bucket quotas with
// deficit-round-robin fair-share dispatch (one bulk scan cannot starve
// interactive playback), and singleflight request coalescing (N sessions
// demanding the same frame trigger one decode).
//
// A session opens a Handle naming its tenant and subset; the handle
// satisfies vmd.FrameSource, so existing playback code plugs in unchanged —
// sessions become views into the shared fabric instead of owning caches.
// Cache hits bypass the scheduler entirely; misses queue as flights, and
// every flight is dispatched by the fair-share scheduler and decoded once
// regardless of how many sessions wait on it.
//
// The same scheduler and cache run in two harnesses: the live Fabric
// (goroutine workers, wall clock) and Simulate (single-threaded
// discrete-event loop on a virtual clock) — the latter is what the fairness
// tests and the adaload baseline use, so latency percentiles are
// deterministic run-to-run.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/tier"
	"repro/internal/xtc"
)

// ErrClosed is returned for reads issued to (or stranded in) a closed
// fabric.
var ErrClosed = errors.New("serve: fabric closed")

// FrameSource is the random-access frame interface the fabric serves from
// and exposes; it matches vmd.FrameSource structurally, so serve.Handle
// plugs into vmd playback and core.SubsetRandomReader plugs into Open.
type FrameSource interface {
	Frames() int
	ReadFrameAt(i int) (*xtc.Frame, error)
}

// concurrentSource mirrors vmd's marker: sources that declare concurrent
// reads are decoded by several workers at once, others serialize behind a
// per-handle mutex.
type concurrentSource interface {
	ConcurrentFrameReads() bool
}

// Config sizes a fabric. Zero values select defaults.
type Config struct {
	// CacheBytes bounds the shared decoded-frame cache (default 256 MiB).
	CacheBytes int64
	// RateBps is each tenant's decode quota in raw bytes/sec; <=0 leaves
	// tenants unmetered (fair-share DRR still applies).
	RateBps float64
	// BurstBytes is the token-bucket capacity (default 8 MiB).
	BurstBytes int64
	// QuantumBytes is the DRR credit granted per scheduler visit
	// (default 1 MiB — a handful of frames).
	QuantumBytes int64
	// HeatHalfLife is the cache-admission heat decay in clock seconds
	// (default 300).
	HeatHalfLife float64
	// Now supplies the clock for quotas and heat (default: wall clock).
	// Simulate ignores it and drives its own event time.
	Now func() float64
	// Metrics receives serve.* instrumentation (default metrics.Default).
	Metrics *metrics.Registry
	// Workers is the number of live decode dispatchers (default
	// xtc.DefaultWorkers). Unused by Simulate.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.BurstBytes <= 0 {
		c.BurstBytes = 8 << 20
	}
	if c.QuantumBytes <= 0 {
		c.QuantumBytes = 1 << 20
	}
	if c.HeatHalfLife <= 0 {
		c.HeatHalfLife = 300
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Default
	}
	if c.Now == nil {
		c.Now = tier.WallClock()
	}
	c.Workers = xtc.DefaultWorkers(c.Workers)
	return c
}

// flight is one in-progress decode: the unit of scheduling and of
// coalescing. Every session demanding its key between submit and completion
// attaches to the same flight; the first demander's tenant pays for it.
type flight struct {
	key    Key
	tenant string
	cost   int64
	h      *Handle
	done   chan struct{}
	frame  *xtc.Frame
	err    error
}

// serveMetrics is the fabric's serve.* instrumentation set.
type serveMetrics struct {
	requests  *metrics.Counter
	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
	rejected  *metrics.Counter
	decodes   *metrics.Counter
	coalesced *metrics.Counter
	throttled *metrics.Counter
	bytes     *metrics.Gauge
	queueHWM  *metrics.Gauge
}

func newServeMetrics(reg *metrics.Registry) serveMetrics {
	return serveMetrics{
		requests:  reg.Counter("serve.requests"),
		hits:      reg.Counter("serve.cache.hits"),
		misses:    reg.Counter("serve.cache.misses"),
		evictions: reg.Counter("serve.cache.evictions"),
		rejected:  reg.Counter("serve.cache.rejected"),
		decodes:   reg.Counter("serve.decodes"),
		coalesced: reg.Counter("serve.coalesced"),
		throttled: reg.Counter("serve.throttled"),
		bytes:     reg.Gauge("serve.cache.bytes"),
		queueHWM:  reg.Gauge("serve.queue_depth_hwm"),
	}
}

// tenantMetrics are the per-tenant handles a Handle caches at Open.
type tenantMetrics struct {
	requests *metrics.Counter
	readNS   *metrics.Histogram
}

func newTenantMetrics(reg *metrics.Registry, tenant string) tenantMetrics {
	return tenantMetrics{
		requests: reg.Counter(fmt.Sprintf("serve.tenant.%s.requests", tenant)),
		readNS:   reg.Histogram(fmt.Sprintf("serve.tenant.%s.read_ns", tenant)),
	}
}

// Fabric is the live multi-tenant serving layer. Open handles, read frames
// through them from any number of goroutines, Close when done.
type Fabric struct {
	cfg  Config
	now  func() float64
	reg  *metrics.Registry
	heat *tier.Tracker
	sm   serveMetrics
	// sleep is the throttle wait, replaceable in tests.
	sleep func(sec float64)

	mu      sync.Mutex
	cond    *sync.Cond // wakes workers on submit and on close
	cache   *frameCache
	sched   *scheduler
	flights map[Key]*flight
	closed  bool
	wg      sync.WaitGroup
}

// New starts a fabric with cfg.Workers decode dispatchers.
func New(cfg Config) *Fabric {
	cfg = cfg.withDefaults()
	f := &Fabric{
		cfg:     cfg,
		now:     cfg.Now,
		reg:     cfg.Metrics,
		heat:    tier.NewTracker(cfg.Now, cfg.HeatHalfLife),
		sm:      newServeMetrics(cfg.Metrics),
		cache:   newFrameCache(cfg.CacheBytes),
		sched:   newScheduler(cfg.QuantumBytes, cfg.RateBps, cfg.BurstBytes),
		flights: map[Key]*flight{},
		sleep: func(sec float64) {
			time.Sleep(time.Duration(sec * float64(time.Second)))
		},
	}
	f.cond = sync.NewCond(&f.mu)
	for w := 0; w < cfg.Workers; w++ {
		f.wg.Add(1)
		go f.worker()
	}
	return f
}

// Heat exposes the fabric's admission tracker (shared eviction signal;
// adanode also feeds it to the tier migrator so cache admission and tier
// placement agree on what is hot).
func (f *Fabric) Heat() *tier.Tracker { return f.heat }

// Close fails every queued flight with ErrClosed, stops the workers, and
// waits for in-progress decodes to finish. Idempotent.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	for _, fl := range f.sched.drain() {
		delete(f.flights, fl.key)
		fl.err = ErrClosed
		close(fl.done)
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	f.wg.Wait()
}

// Open returns a tenant's handle onto one subset of one dataset. natoms
// sizes the subset's frames — the unit of quota and admission accounting.
// The handle satisfies vmd.FrameSource and is safe for concurrent use.
func (f *Fabric) Open(tenant, logical, tag string, natoms int, src FrameSource) *Handle {
	h := &Handle{
		f:       f,
		tenant:  tenant,
		logical: logical,
		tag:     tag,
		natoms:  natoms,
		cost:    xtc.RawFrameSize(natoms),
		src:     src,
		tm:      newTenantMetrics(f.reg, tenant),
	}
	if cs, ok := src.(concurrentSource); !ok || !cs.ConcurrentFrameReads() {
		h.srcMu = &sync.Mutex{}
	}
	return h
}

// Handle is one tenant's view into the fabric: a FrameSource whose reads go
// through the shared cache, the fair-share scheduler, and coalescing.
type Handle struct {
	f       *Fabric
	tenant  string
	logical string
	tag     string
	natoms  int
	cost    int64
	src     FrameSource
	srcMu   *sync.Mutex
	tm      tenantMetrics
}

// Frames returns the underlying source's frame count. For a live source
// this is the current head — it extends as the producer publishes, and
// frames cached before a head advance stay valid because published
// prefixes are immutable.
func (h *Handle) Frames() int { return h.src.Frames() }

// liveSource mirrors vmd's tail marker: sources over a still-growing
// dataset (stream.Source, core.LiveReader).
type liveSource interface {
	Live() bool
}

// Live reports whether the handle serves a still-growing live dataset. It
// flips to false once the producer seals.
func (h *Handle) Live() bool {
	if ls, ok := h.src.(liveSource); ok {
		return ls.Live()
	}
	return false
}

// Tenant returns the handle's tenant name.
func (h *Handle) Tenant() string { return h.tenant }

// read decodes one frame from the handle's source, serialized when the
// source does not support concurrent reads.
func (h *Handle) read(i int) (*xtc.Frame, error) {
	if h.srcMu != nil {
		h.srcMu.Lock()
		defer h.srcMu.Unlock()
	}
	return h.src.ReadFrameAt(i)
}

// ReadFrameAt returns frame i through the fabric: a cache hit is immediate;
// a miss either attaches to the in-flight decode of the same frame
// (coalesced — counted once as a decode, however many handles wait) or
// submits a new flight to the fair-share scheduler and waits for a worker.
func (h *Handle) ReadFrameAt(i int) (*xtc.Frame, error) {
	f := h.f
	start := time.Now()
	f.heat.Record(h.logical, droppingPrefix+h.tag, h.cost)
	f.sm.requests.Inc()
	h.tm.requests.Inc()

	k := Key{Logical: h.logical, Tag: h.tag, Frame: i}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if fr, ok := f.cache.get(k); ok {
		f.sm.hits.Inc()
		f.mu.Unlock()
		h.tm.readNS.Observe(time.Since(start).Nanoseconds())
		return fr, nil
	}
	f.sm.misses.Inc()
	if fl, ok := f.flights[k]; ok {
		f.sm.coalesced.Inc()
		f.mu.Unlock()
		<-fl.done
		h.tm.readNS.Observe(time.Since(start).Nanoseconds())
		return fl.frame, fl.err
	}
	fl := &flight{key: k, tenant: h.tenant, cost: h.cost, h: h, done: make(chan struct{})}
	f.flights[k] = fl
	f.sched.submit(fl)
	f.sm.queueHWM.SetMax(int64(f.sched.pending))
	f.cond.Signal()
	f.mu.Unlock()

	<-fl.done
	h.tm.readNS.Observe(time.Since(start).Nanoseconds())
	return fl.frame, fl.err
}

// admitLocked runs heat-based admission for a completed decode. Must be
// called with f.mu held.
func (f *Fabric) admitLocked(k Key, fr *xtc.Frame, bytes int64) {
	incoming := f.heat.Heat(k.Logical, k.dropping())
	ok, evicted := f.cache.admit(k, fr, bytes, func(victim Key) bool {
		// An incoming frame may displace a victim only if its subset is at
		// least as hot; rejecting the newcomer otherwise keeps a bulk scan's
		// one-touch frames from flushing an interactive session's working
		// set.
		return f.heat.Heat(victim.Logical, victim.dropping()) <= incoming
	})
	f.sm.evictions.Add(int64(evicted))
	if !ok {
		f.sm.rejected.Inc()
	}
	f.sm.bytes.Set(f.cache.used)
}

// worker is one decode dispatcher: it pulls flights off the fair-share
// scheduler, decodes them, publishes results (waking every coalesced
// waiter), and feeds the cache through admission.
func (f *Fabric) worker() {
	defer f.wg.Done()
	for {
		f.mu.Lock()
		var fl *flight
		for fl == nil {
			if f.closed {
				f.mu.Unlock()
				return
			}
			var notBefore float64
			var queued int
			fl, notBefore, queued = f.sched.next(f.now())
			if fl != nil {
				break
			}
			if queued == 0 {
				f.cond.Wait()
				continue
			}
			// Queued work exists but every tenant is over quota: wait out the
			// throttle in capped slices so a submit for an eligible tenant is
			// picked up promptly.
			f.sm.throttled.Inc()
			f.mu.Unlock()
			wait := notBefore - f.now()
			if wait > 0.002 {
				wait = 0.002
			}
			if wait > 0 {
				f.sleep(wait)
			}
			f.mu.Lock()
		}
		f.mu.Unlock()

		frame, err := fl.h.read(fl.key.Frame)
		f.sm.decodes.Inc()

		f.mu.Lock()
		if err == nil {
			f.admitLocked(fl.key, frame, fl.cost)
		}
		delete(f.flights, fl.key)
		f.mu.Unlock()
		fl.frame, fl.err = frame, err
		close(fl.done)
	}
}
