package serve

import "math"

// tokenBucket meters one tenant's decode bandwidth in bytes/sec with a burst
// allowance. It is guarded by the owning scheduler's (or fabric's) mutex;
// times are clock seconds from the fabric's clock.
type tokenBucket struct {
	rate   float64 // refill, bytes/sec; <=0 disables metering
	burst  float64 // capacity, bytes
	tokens float64
	last   float64 // clock reading of the last refill
}

func newTokenBucket(rate float64, burst int64) *tokenBucket {
	b := &tokenBucket{rate: rate, burst: float64(burst)}
	b.tokens = b.burst
	return b
}

func (b *tokenBucket) refill(now float64) {
	if b.rate <= 0 {
		return
	}
	if dt := now - b.last; dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// need returns the tokens a request of the given cost must see in the
// bucket: a request larger than the whole bucket becomes eligible at a full
// bucket (and drives the balance negative when taken), so an undersized
// burst throttles oversized frames instead of starving them forever.
func (b *tokenBucket) need(cost int64) float64 {
	if c := float64(cost); c < b.burst {
		return c
	}
	return b.burst
}

// eligibleAt returns the clock time a request of the given cost can be paid
// for — now if the bucket already covers it.
func (b *tokenBucket) eligibleAt(now float64, cost int64) float64 {
	if b.rate <= 0 {
		return now
	}
	b.refill(now)
	need := b.need(cost)
	if b.tokens >= need {
		return now
	}
	return now + (need-b.tokens)/b.rate
}

func (b *tokenBucket) take(cost int64) {
	if b.rate <= 0 {
		return
	}
	b.tokens -= float64(cost)
}

// tenantQueue is one tenant's FIFO of pending decode flights plus its DRR
// and quota state.
type tenantQueue struct {
	name    string
	q       []*flight
	deficit int64 // DRR byte credit carried between rounds
	granted bool  // quantum already granted at the current cursor visit
	bucket  *tokenBucket
	active  bool // in the scheduler's ring
}

// scheduler is a deficit-round-robin fair-share queue of decode flights with
// per-tenant token buckets: each cursor visit grants a tenant at most one
// quantum of byte credit (lazily — only when its head does not already fit),
// a tenant keeps serving while its accumulated deficit covers its head, and
// a flight is dispatchable only when the tenant's token bucket can also pay
// for it. Deficits persist across rounds, so a request larger than the
// quantum accumulates credit over several visits instead of starving, and a
// drained tenant forfeits its credit — an idle tenant cannot bank bandwidth.
// All methods require external locking.
type scheduler struct {
	quantum int64
	rate    float64
	burst   int64
	tenants map[string]*tenantQueue
	ring    []*tenantQueue // active tenants, first-submit order
	cursor  int
	pending int
}

func newScheduler(quantum int64, rate float64, burst int64) *scheduler {
	return &scheduler{quantum: quantum, rate: rate, burst: burst, tenants: map[string]*tenantQueue{}}
}

// submit queues a flight under its tenant.
func (s *scheduler) submit(fl *flight) {
	t := s.tenants[fl.tenant]
	if t == nil {
		t = &tenantQueue{name: fl.tenant, bucket: newTokenBucket(s.rate, s.burst)}
		s.tenants[fl.tenant] = t
	}
	t.q = append(t.q, fl)
	s.pending++
	if !t.active {
		t.active = true
		t.deficit = 0
		t.granted = false
		s.ring = append(s.ring, t)
	}
}

// next pops the next dispatchable flight. When nothing is dispatchable it
// returns nil with notBefore = the earliest clock time a queued flight's
// token bucket can pay (+Inf with an empty queue) and the number of flights
// still queued. Deficit-only blockage never ends a call — the scan loops,
// granting one quantum per visit, until either a flight dispatches or every
// queued head is waiting on its bucket.
func (s *scheduler) next(now float64) (fl *flight, notBefore float64, queued int) {
	notBefore = math.Inf(1)
	if s.pending == 0 {
		return nil, notBefore, 0
	}
	for {
		deficitBlocked := false
		for scanned := 0; scanned < len(s.ring); scanned++ {
			t := s.ring[s.cursor]
			head := t.q[0]
			if !t.granted && t.deficit < head.cost {
				// Lazy per-visit grant: credit only accrues toward a head
				// that needs it, so a bucket-throttled tenant cannot bank an
				// unbounded deficit while it waits.
				t.deficit += s.quantum
				t.granted = true
			}
			if at := t.bucket.eligibleAt(now, head.cost); at > now {
				if at < notBefore {
					notBefore = at
				}
			} else if t.deficit >= head.cost {
				t.deficit -= head.cost
				t.bucket.take(head.cost)
				t.q = t.q[1:]
				s.pending--
				if len(t.q) == 0 {
					// A drained tenant forfeits its remaining credit.
					t.deficit, t.granted, t.active = 0, false, false
					s.ring = append(s.ring[:s.cursor], s.ring[s.cursor+1:]...)
					if len(s.ring) > 0 {
						s.cursor %= len(s.ring)
						s.ring[s.cursor].granted = false
					} else {
						s.cursor = 0
					}
				}
				// The cursor stays on the served tenant: it keeps serving on
				// later calls while its deficit lasts (classic DRR batching).
				return head, now, s.pending
			} else {
				deficitBlocked = true
			}
			s.cursor = (s.cursor + 1) % len(s.ring)
			s.ring[s.cursor].granted = false
		}
		if !deficitBlocked {
			return nil, notBefore, s.pending
		}
	}
}

// drain empties every queue, returning the abandoned flights (fabric
// shutdown fails them).
func (s *scheduler) drain() []*flight {
	var out []*flight
	for _, t := range s.ring {
		out = append(out, t.q...)
		t.q, t.deficit, t.granted, t.active = nil, 0, false, false
	}
	s.ring, s.cursor, s.pending = nil, 0, 0
	return out
}
