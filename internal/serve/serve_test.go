package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/tier"
	"repro/internal/xtc"
)

// stubSource is a synthetic FrameSource whose frames carry their index in
// Step, with an optional per-read gate for interleaving control.
type stubSource struct {
	frames int
	natoms int
	gate   func(i int)
	reads  atomic.Int64
}

func (s *stubSource) Frames() int                { return s.frames }
func (s *stubSource) ConcurrentFrameReads() bool { return true }

func (s *stubSource) ReadFrameAt(i int) (*xtc.Frame, error) {
	s.reads.Add(1)
	if s.gate != nil {
		s.gate(i)
	}
	return &xtc.Frame{Step: int32(i), Coords: make([]xtc.Vec3, s.natoms)}, nil
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(100, 200) // 100 B/s, burst 200
	if at := b.eligibleAt(0, 150); at != 0 {
		t.Errorf("full bucket eligibleAt = %v, want 0", at)
	}
	b.take(150)
	if at := b.eligibleAt(0, 100); at != 0.5 {
		t.Errorf("eligibleAt after drain = %v, want 0.5 (50 short at 100 B/s)", at)
	}
	// Oversized requests become eligible at a full bucket, not never.
	b2 := newTokenBucket(100, 200)
	b2.take(200)
	if at := b2.eligibleAt(0, 1000); at != 2 {
		t.Errorf("oversized eligibleAt = %v, want 2 (refill to burst)", at)
	}
	// Unmetered bucket is always eligible.
	b3 := newTokenBucket(0, 0)
	if at := b3.eligibleAt(5, 1<<40); at != 5 {
		t.Errorf("unmetered eligibleAt = %v, want now", at)
	}
}

// TestSchedulerDRRAlternates: equal-cost tenants are served strictly
// round-robin.
func TestSchedulerDRRAlternates(t *testing.T) {
	s := newScheduler(100, 0, 0)
	for i := 0; i < 4; i++ {
		s.submit(&flight{tenant: "a", cost: 100})
		s.submit(&flight{tenant: "b", cost: 100})
	}
	var order []string
	for {
		fl, _, _ := s.next(0)
		if fl == nil {
			break
		}
		order = append(order, fl.tenant)
	}
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("dispatched %d flights, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestSchedulerDRRByteFair: with unequal request sizes the served *bytes*
// per tenant stay balanced, not the request counts — a bulk tenant's big
// frames cost it turns.
func TestSchedulerDRRByteFair(t *testing.T) {
	const quantum = 100
	s := newScheduler(quantum, 0, 0)
	for i := 0; i < 30; i++ {
		s.submit(&flight{tenant: "small", cost: 100})
	}
	for i := 0; i < 10; i++ {
		s.submit(&flight{tenant: "big", cost: 300})
	}
	bytes := map[string]int64{}
	for dispatched := 0; dispatched < 20; dispatched++ {
		fl, _, _ := s.next(0)
		if fl == nil {
			t.Fatalf("scheduler stalled after %d dispatches", dispatched)
		}
		bytes[fl.tenant] += fl.cost
	}
	diff := bytes["small"] - bytes["big"]
	if diff < 0 {
		diff = -diff
	}
	// Byte shares may diverge by at most one max-size request plus one
	// quantum of carried credit.
	if limit := int64(300 + quantum); diff > limit {
		t.Errorf("served bytes small=%d big=%d, diverge by %d > %d",
			bytes["small"], bytes["big"], diff, limit)
	}
}

// TestSchedulerLargeHeadAccumulates: a request bigger than the quantum is
// served after enough visits instead of starving.
func TestSchedulerLargeHeadAccumulates(t *testing.T) {
	s := newScheduler(100, 0, 0)
	s.submit(&flight{tenant: "a", cost: 1000})
	fl, _, _ := s.next(0)
	if fl == nil || fl.cost != 1000 {
		t.Fatalf("oversized head not dispatched: %+v", fl)
	}
}

// TestSchedulerQuotaThrottle: an over-quota tenant's head reports a finite
// notBefore and dispatches once the bucket refills.
func TestSchedulerQuotaThrottle(t *testing.T) {
	s := newScheduler(1000, 100, 100) // 100 B/s, burst 100
	s.submit(&flight{tenant: "a", cost: 100})
	fl, _, _ := s.next(0)
	if fl == nil {
		t.Fatal("burst should cover the first request")
	}
	s.submit(&flight{tenant: "a", cost: 100})
	fl, notBefore, queued := s.next(0)
	if fl != nil {
		t.Fatal("second request dispatched with an empty bucket")
	}
	if queued != 1 || notBefore != 1 {
		t.Errorf("notBefore = %v queued = %d, want 1s refill and 1 queued", notBefore, queued)
	}
	if fl, _, _ = s.next(notBefore); fl == nil {
		t.Error("request still throttled after the bucket refilled")
	}
}

// TestCacheAdmissionHeat: a cold subset's frame cannot displace a hotter
// subset's resident frames; once the newcomer outheats them it can.
func TestCacheAdmissionHeat(t *testing.T) {
	now := 0.0
	tr := tier.NewTracker(func() float64 { return now }, 0)
	c := newFrameCache(200)
	hot := func(k Key) float64 { return tr.Heat(k.Logical, k.dropping()) }
	evictOK := func(incoming Key) func(Key) bool {
		return func(victim Key) bool { return hot(victim) <= hot(incoming) }
	}

	tr.Record("/a", "subset.p", 1000)
	a0, a1 := Key{"/a", "p", 0}, Key{"/a", "p", 1}
	for _, k := range []Key{a0, a1} {
		if ok, _ := c.admit(k, nil, 100, evictOK(k)); !ok {
			t.Fatalf("admit %v into empty space failed", k)
		}
	}
	// Cold newcomer: /b has a tenth of /a's heat, so it must be rejected.
	tr.Record("/b", "subset.p", 100)
	b0 := Key{"/b", "p", 0}
	if ok, _ := c.admit(b0, nil, 100, evictOK(b0)); ok {
		t.Fatal("cold subset displaced a hot one")
	}
	if _, ok := c.get(a0); !ok {
		t.Fatal("rejected admission evicted the resident frame")
	}
	// Heat /b past /a: now it earns residency.
	tr.Record("/b", "subset.p", 10000)
	if ok, evicted := c.admit(b0, nil, 100, evictOK(b0)); !ok || evicted != 1 {
		t.Fatalf("hot newcomer: admitted=%v evicted=%d, want true/1", ok, evicted)
	}
	if c.len() != 2 || c.used != 200 {
		t.Errorf("cache holds %d frames / %d bytes, want 2 / 200", c.len(), c.used)
	}
}

func newTestFabric(t *testing.T, cfg Config) (*Fabric, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	f := New(cfg)
	t.Cleanup(f.Close)
	return f, reg
}

// TestFabricServesAndCaches: reads come back with the right content, repeat
// reads hit the shared cache without touching the source, and a second
// tenant's handle shares the same residency.
func TestFabricServesAndCaches(t *testing.T) {
	src := &stubSource{frames: 16, natoms: 10}
	f, reg := newTestFabric(t, Config{Workers: 2})
	h := f.Open("alice", "/ds", "p", src.natoms, src)
	for i := 0; i < 8; i++ {
		fr, err := h.ReadFrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if int(fr.Step) != i {
			t.Fatalf("frame %d came back as step %d", i, fr.Step)
		}
	}
	decodes := src.reads.Load()
	h2 := f.Open("bob", "/ds", "p", src.natoms, src)
	for i := 0; i < 8; i++ {
		if _, err := h2.ReadFrameAt(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.reads.Load(); got != decodes {
		t.Errorf("second tenant re-decoded: %d source reads, want %d", got, decodes)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.cache.hits"] != 8 || snap.Counters["serve.decodes"] != 8 {
		t.Errorf("hits=%d decodes=%d, want 8/8",
			snap.Counters["serve.cache.hits"], snap.Counters["serve.decodes"])
	}
	if snap.Counters["serve.tenant.alice.requests"] != 8 ||
		snap.Counters["serve.tenant.bob.requests"] != 8 {
		t.Error("per-tenant request counters missing")
	}
	if reg.Snapshot().Histograms["serve.tenant.alice.read_ns"].Count != 8 {
		t.Error("per-tenant latency histogram missing samples")
	}
}

// TestFabricCoalesces: N concurrent demands for the same uncached frame run
// one decode; the rest attach to the in-flight one. Meaningful under -race.
func TestFabricCoalesces(t *testing.T) {
	const demands = 8
	release := make(chan struct{})
	var gated sync.Once
	started := make(chan struct{})
	src := &stubSource{frames: 4, natoms: 10, gate: func(i int) {
		gated.Do(func() { close(started); <-release })
	}}
	f, reg := newTestFabric(t, Config{Workers: 2})
	h := f.Open("alice", "/ds", "p", src.natoms, src)

	var wg sync.WaitGroup
	errs := make([]error, demands)
	for d := 0; d < demands; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			fr, err := h.ReadFrameAt(3)
			if err == nil && fr.Step != 3 {
				err = errors.New("wrong frame")
			}
			errs[d] = err
		}(d)
	}
	<-started // the first demand's decode is in progress; the rest pile on
	// Wait until every other demand has either attached to the flight or
	// been counted — they cannot finish while the decode is gated.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Counters["serve.coalesced"] < demands-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d demands coalesced", reg.Snapshot().Counters["serve.coalesced"])
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for d, err := range errs {
		if err != nil {
			t.Fatalf("demand %d: %v", d, err)
		}
	}
	if got := src.reads.Load(); got != 1 {
		t.Errorf("%d source decodes for %d same-frame demands, want 1", got, demands)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.decodes"] != 1 || snap.Counters["serve.coalesced"] != demands-1 {
		t.Errorf("decodes=%d coalesced=%d, want 1/%d",
			snap.Counters["serve.decodes"], snap.Counters["serve.coalesced"], demands-1)
	}
}

// TestFabricCloseFailsQueued: Close fails flights still waiting in the
// scheduler with ErrClosed while letting the in-progress decode finish.
func TestFabricCloseFailsQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var gated sync.Once
	src := &stubSource{frames: 4, natoms: 10, gate: func(i int) {
		gated.Do(func() { close(started); <-release })
	}}
	reg := metrics.NewRegistry()
	f := New(Config{Workers: 1, Metrics: reg})
	h := f.Open("alice", "/ds", "p", src.natoms, src)

	first := make(chan error, 1)
	go func() {
		_, err := h.ReadFrameAt(0)
		first <- err
	}()
	<-started
	queued := make(chan error, 1)
	go func() {
		_, err := h.ReadFrameAt(1) // single worker is busy: this one queues
		queued <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Counters["serve.cache.misses"] < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second demand never issued")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() { f.Close(); close(done) }()
	if err := <-queued; !errors.Is(err, ErrClosed) {
		t.Errorf("queued read after Close: err = %v, want ErrClosed", err)
	}
	close(release)
	if err := <-first; err != nil {
		t.Errorf("in-progress decode failed on Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung")
	}
	if _, err := h.ReadFrameAt(2); !errors.Is(err, ErrClosed) {
		t.Errorf("read on closed fabric: err = %v, want ErrClosed", err)
	}
}

// TestFabricQuotaThrottlesLiveReads: with a tight per-tenant quota a burst
// of misses takes at least the token-refill time.
func TestFabricQuotaThrottlesLiveReads(t *testing.T) {
	src := &stubSource{frames: 8, natoms: 1000}
	cost := xtc.RawFrameSize(1000)
	// Burst covers one frame; refilling for each further frame takes
	// cost/rate = 20ms.
	f, _ := newTestFabric(t, Config{Workers: 1, RateBps: float64(cost) * 50, BurstBytes: cost})
	h := f.Open("alice", "/ds", "p", 1000, src)
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := h.ReadFrameAt(i); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("4 misses at 1 frame/20ms quota finished in %v, want >= 50ms", elapsed)
	}
}
