package serve

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/tier"
	"repro/internal/xtc"
)

// CostModel prices the simulated storage node's read side.
type CostModel struct {
	// DecodeBps is the shared decode server's throughput over raw frame
	// bytes — a miss occupies the server for cost/DecodeBps seconds.
	DecodeBps float64
	// HitBps is the rate a cache hit is copied out at; hits never queue.
	HitBps float64
}

// DefaultCostModel matches the repo's measured single-core decode rate
// (~500 MB/s raw after the PR-6 fused unpack path) and a memory-bandwidth
// hit path.
var DefaultCostModel = CostModel{DecodeBps: 500e6, HitBps: 8e9}

// SimSession is one synthetic playback client in a Simulate run.
type SimSession struct {
	Tenant  string
	Class   string // histogram label (serve.class.<Class>.read_ns); Tenant when empty
	Logical string
	Tag     string
	NAtoms  int
	Pattern []int   // frame numbers to demand, in order
	Think   float64 // seconds between a read completing and the next demand
	Start   float64 // virtual start time
}

// SimReport summarizes a Simulate run; the latency distributions land in the
// config's metrics registry (serve.tenant.<t>.read_ns and
// serve.class.<c>.read_ns, in virtual nanoseconds).
type SimReport struct {
	Reads     int64
	Hits      int64
	Decodes   int64
	Coalesced int64
	Evictions int64
	Rejected  int64
	Throttled int64 // scheduler passes where every queued tenant was over quota
	Makespan  float64
}

// sim event kinds, ordered (time, seq) on the heap for determinism.
const (
	evIssue = iota // a session demands its next frame
	evDone         // the decode server finishes a flight
	evPump         // re-try dispatch after a quota throttle window
)

type event struct {
	at   float64
	seq  int
	kind int
	sess *simSess
	fl   *flight
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type simSess struct {
	SimSession
	step    int
	cost    int64
	readNS  *metrics.Histogram
	classNS *metrics.Histogram
}

// simWaiter records one session attached to a flight and when it asked.
type simWaiter struct {
	sess   *simSess
	issued float64
}

// Simulate replays the given sessions against one fabric — same scheduler,
// cache, and admission logic as the live path — as a single-threaded
// discrete-event simulation on a virtual clock. One virtual decode server
// models the node's decode bandwidth (CostModel.DecodeBps); cache hits are
// served off-queue at HitBps. The run is fully deterministic: identical
// inputs produce identical latency histograms, which is what lets CI gate
// on p50/p99 with a tight regression bar.
func Simulate(cfg Config, cost CostModel, sessions []SimSession) SimReport {
	cfg = cfg.withDefaults()
	if cost.DecodeBps <= 0 {
		cost.DecodeBps = DefaultCostModel.DecodeBps
	}
	if cost.HitBps <= 0 {
		cost.HitBps = DefaultCostModel.HitBps
	}
	reg := cfg.Metrics
	sm := newServeMetrics(reg)

	now := 0.0
	heatTr := tier.NewTracker(func() float64 { return now }, cfg.HeatHalfLife)
	cache := newFrameCache(cfg.CacheBytes)
	sched := newScheduler(cfg.QuantumBytes, cfg.RateBps, cfg.BurstBytes)
	flights := map[Key]*flight{}
	waiters := map[*flight][]simWaiter{}

	var rep SimReport
	var events eventHeap
	seq := 0
	push := func(e *event) {
		e.seq = seq
		seq++
		heap.Push(&events, e)
	}

	for i := range sessions {
		s := &simSess{SimSession: sessions[i]}
		if s.Class == "" {
			s.Class = s.Tenant
		}
		s.cost = xtc.RawFrameSize(s.NAtoms)
		s.readNS = reg.Histogram(fmt.Sprintf("serve.tenant.%s.read_ns", s.Tenant))
		s.classNS = reg.Histogram(fmt.Sprintf("serve.class.%s.read_ns", s.Class))
		if len(s.Pattern) > 0 {
			push(&event{at: s.Start, kind: evIssue, sess: s})
		}
	}

	serverBusy := false
	observe := func(s *simSess, latSec float64) {
		ns := int64(latSec * 1e9)
		s.readNS.Observe(ns)
		s.classNS.Observe(ns)
		reg.Counter(fmt.Sprintf("serve.tenant.%s.requests", s.Tenant)).Inc()
	}
	finish := func(s *simSess, doneAt float64) {
		if doneAt > rep.Makespan {
			rep.Makespan = doneAt
		}
		if s.step < len(s.Pattern) {
			push(&event{at: doneAt + s.Think, kind: evIssue, sess: s})
		}
	}
	admit := func(k Key, fr *xtc.Frame, bytes int64) {
		incoming := heatTr.Heat(k.Logical, k.dropping())
		ok, evicted := cache.admit(k, fr, bytes, func(victim Key) bool {
			return heatTr.Heat(victim.Logical, victim.dropping()) <= incoming
		})
		rep.Evictions += int64(evicted)
		sm.evictions.Add(int64(evicted))
		if !ok {
			rep.Rejected++
			sm.rejected.Inc()
		}
		sm.bytes.Set(cache.used)
	}
	var pump func()
	pump = func() {
		if serverBusy {
			return
		}
		fl, notBefore, queued := sched.next(now)
		if fl != nil {
			rep.Decodes++
			sm.decodes.Inc()
			serverBusy = true
			push(&event{at: now + float64(fl.cost)/cost.DecodeBps, kind: evDone, fl: fl})
			return
		}
		if queued > 0 && !math.IsInf(notBefore, 1) {
			rep.Throttled++
			sm.throttled.Inc()
			push(&event{at: notBefore, kind: evPump})
		}
	}

	for events.Len() > 0 {
		e := heap.Pop(&events).(*event)
		now = e.at
		switch e.kind {
		case evIssue:
			s := e.sess
			i := s.Pattern[s.step]
			s.step++
			rep.Reads++
			sm.requests.Inc()
			heatTr.Record(s.Logical, droppingPrefix+s.Tag, s.cost)
			k := Key{Logical: s.Logical, Tag: s.Tag, Frame: i}
			if _, ok := cache.get(k); ok {
				rep.Hits++
				sm.hits.Inc()
				lat := float64(s.cost) / cost.HitBps
				observe(s, lat)
				finish(s, now+lat)
				continue
			}
			sm.misses.Inc()
			if fl, ok := flights[k]; ok {
				rep.Coalesced++
				sm.coalesced.Inc()
				waiters[fl] = append(waiters[fl], simWaiter{sess: s, issued: now})
				continue
			}
			fl := &flight{key: k, tenant: s.Tenant, cost: s.cost}
			flights[k] = fl
			waiters[fl] = []simWaiter{{sess: s, issued: now}}
			sched.submit(fl)
			sm.queueHWM.SetMax(int64(sched.pending))
			pump()
		case evDone:
			fl := e.fl
			serverBusy = false
			// The simulated decode always succeeds; content is not modeled,
			// only residency and timing.
			admit(fl.key, nil, fl.cost)
			for _, w := range waiters[fl] {
				observe(w.sess, now-w.issued)
				finish(w.sess, now)
			}
			delete(waiters, fl)
			delete(flights, fl.key)
			pump()
		case evPump:
			pump()
		}
	}
	return rep
}
