// Package osfs adapts a host directory to the vfs.FS interface, so the CLI
// tools (cmd/adactl, cmd/adanode) can run ADA against real disks rather
// than simulated ones.
//
// All paths are confined to the configured root: escaping via ".." is
// rejected by cleaning against the virtual rooted namespace first.
package osfs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/vfs"
)

// FS is a vfs.FS rooted at a host directory.
type FS struct {
	root string
}

var _ vfs.FS = (*FS)(nil)

// New returns an FS rooted at dir, creating it if needed.
func New(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("osfs: %w", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("osfs: %w", err)
	}
	return &FS{root: abs}, nil
}

// Root returns the host directory.
func (s *FS) Root() string { return s.root }

// hostPath maps a virtual rooted path into the host tree.
func (s *FS) hostPath(name string) string {
	clean := vfs.Clean(name) // always "/"-rooted, ".." resolved
	return filepath.Join(s.root, filepath.FromSlash(clean))
}

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case os.IsNotExist(err):
		return fmt.Errorf("%w: %v", vfs.ErrNotExist, err)
	case os.IsExist(err):
		return fmt.Errorf("%w: %v", vfs.ErrExist, err)
	default:
		return err
	}
}

// Create implements vfs.FS.
func (s *FS) Create(name string) (vfs.File, error) {
	f, err := os.Create(s.hostPath(name))
	if err != nil {
		return nil, mapErr(err)
	}
	return &file{f: f, name: vfs.Clean(name)}, nil
}

// Open implements vfs.FS.
func (s *FS) Open(name string) (vfs.File, error) {
	f, err := os.Open(s.hostPath(name))
	if err != nil {
		return nil, mapErr(err)
	}
	info, err := f.Stat()
	if err == nil && info.IsDir() {
		f.Close()
		return nil, fmt.Errorf("%w: %s", vfs.ErrIsDir, name)
	}
	return &file{f: f, name: vfs.Clean(name)}, nil
}

// Stat implements vfs.FS.
func (s *FS) Stat(name string) (vfs.FileInfo, error) {
	info, err := os.Stat(s.hostPath(name))
	if err != nil {
		return vfs.FileInfo{}, mapErr(err)
	}
	return vfs.FileInfo{Name: info.Name(), Size: info.Size(), IsDir: info.IsDir()}, nil
}

// ReadDir implements vfs.FS.
func (s *FS) ReadDir(name string) ([]vfs.FileInfo, error) {
	entries, err := os.ReadDir(s.hostPath(name))
	if err != nil {
		if pe, ok := err.(*fs.PathError); ok && pe.Err.Error() == "not a directory" {
			return nil, fmt.Errorf("%w: %s", vfs.ErrNotDir, name)
		}
		return nil, mapErr(err)
	}
	out := make([]vfs.FileInfo, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, vfs.FileInfo{Name: e.Name(), Size: info.Size(), IsDir: e.IsDir()})
	}
	return out, nil
}

// MkdirAll implements vfs.FS.
func (s *FS) MkdirAll(name string) error {
	return mapErr(os.MkdirAll(s.hostPath(name), 0o755))
}

// Remove implements vfs.FS.
func (s *FS) Remove(name string) error {
	return mapErr(os.Remove(s.hostPath(name)))
}

// Rename implements vfs.FS.
func (s *FS) Rename(oldname, newname string) error {
	return mapErr(os.Rename(s.hostPath(oldname), s.hostPath(newname)))
}

// file adapts *os.File.
type file struct {
	f    *os.File
	name string
}

func (f *file) Name() string { return f.name }

func (f *file) Size() int64 {
	info, err := f.f.Stat()
	if err != nil {
		return 0
	}
	return info.Size()
}

func (f *file) Read(p []byte) (int, error)              { return f.f.Read(p) }
func (f *file) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *file) Write(p []byte) (int, error)             { return f.f.Write(p) }
func (f *file) Close() error                            { return f.f.Close() }
