package osfs

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newFS(t)
	if err := s.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("host"), 5000)
	if err := vfs.WriteFile(s, "/a/b/f.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(s, "/a/b/f.bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read %d bytes, %v", len(got), err)
	}
	info, err := s.Stat("/a/b/f.bin")
	if err != nil || info.Size != int64(len(data)) {
		t.Errorf("Stat = %+v, %v", info, err)
	}
}

func TestSentinelErrors(t *testing.T) {
	s := newFS(t)
	if _, err := s.Open("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("Open = %v", err)
	}
	if _, err := s.Stat("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("Stat = %v", err)
	}
}

func TestOpenDirFails(t *testing.T) {
	s := newFS(t)
	if err := s.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Errorf("Open dir = %v", err)
	}
}

func TestReadDir(t *testing.T) {
	s := newFS(t)
	if err := s.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"/d/b", "/d/a"} {
		if err := vfs.WriteFile(s, n, []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := s.ReadDir("/d")
	if err != nil || len(entries) != 2 {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	// os.ReadDir sorts by name.
	if entries[0].Name != "a" {
		t.Errorf("entries = %+v", entries)
	}
}

func TestEscapeConfinement(t *testing.T) {
	s := newFS(t)
	// Paths with .. must stay under the root.
	if err := vfs.WriteFile(s, "/../../evil", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(s, "/evil") {
		t.Error("cleaned path not under root")
	}
	if _, err := filepath.Rel(s.Root(), s.hostPath("/../../evil")); err != nil {
		t.Errorf("escaped root: %v", err)
	}
}

func TestRemove(t *testing.T) {
	s := newFS(t)
	if err := vfs.WriteFile(s, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("double remove = %v", err)
	}
}

func TestReadAt(t *testing.T) {
	s := newFS(t)
	if err := vfs.WriteFile(s, "/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	f, err := s.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 4); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "456" {
		t.Errorf("ReadAt = %q", buf)
	}
	if f.Size() != 10 {
		t.Errorf("Size = %d", f.Size())
	}
}
