package dcd

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/xtc"
)

func makeFrames(n, natoms int, seed int64) []*xtc.Frame {
	rng := rand.New(rand.NewSource(seed))
	frames := make([]*xtc.Frame, n)
	for k := range frames {
		f := &xtc.Frame{Coords: make([]xtc.Vec3, natoms)}
		f.Box[0], f.Box[4], f.Box[8] = 8, 8, 8
		for i := range f.Coords {
			for d := 0; d < 3; d++ {
				f.Coords[i][d] = float32(rng.Float64() * 8)
			}
		}
		frames[k] = f
	}
	return frames
}

func roundTrip(t *testing.T, frames []*xtc.Frame, hdr Header) ([]*xtc.Frame, Header) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, hdr)
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return got, r.Header()
}

func TestRoundTrip(t *testing.T) {
	frames := makeFrames(5, 120, 1)
	hdr := Header{
		NFrames: 5, FirstStep: 100, StepInterval: 10, DeltaPS: 2,
		Titles: []string{"SYNTHETIC CB1 RUN", "SECOND TITLE LINE"},
	}
	got, ghdr := roundTrip(t, frames, hdr)
	if len(got) != 5 {
		t.Fatalf("frames = %d", len(got))
	}
	if ghdr.NAtoms != 120 || ghdr.NFrames != 5 || ghdr.FirstStep != 100 || ghdr.StepInterval != 10 {
		t.Errorf("header = %+v", ghdr)
	}
	if math.Abs(float64(ghdr.DeltaPS-2)) > 1e-4 {
		t.Errorf("delta = %v ps", ghdr.DeltaPS)
	}
	if len(ghdr.Titles) != 2 || ghdr.Titles[0] != "SYNTHETIC CB1 RUN" {
		t.Errorf("titles = %q", ghdr.Titles)
	}
	// Coordinates survive within float32 Å->nm conversion.
	for k := range frames {
		if got[k].Step != 100+int32(k)*10 {
			t.Errorf("frame %d step = %d", k, got[k].Step)
		}
		for i := range frames[k].Coords {
			for d := 0; d < 3; d++ {
				diff := math.Abs(float64(got[k].Coords[i][d] - frames[k].Coords[i][d]))
				if diff > 1e-5 {
					t.Fatalf("frame %d atom %d dim %d: diff %g", k, i, d, diff)
				}
			}
		}
	}
}

func TestRoundTripWithUnitCell(t *testing.T) {
	frames := makeFrames(3, 50, 2)
	got, ghdr := roundTrip(t, frames, Header{NFrames: 3, HasUnitCell: true, DeltaPS: 1})
	if !ghdr.HasUnitCell {
		t.Fatal("unit cell flag lost")
	}
	for k := range got {
		if math.Abs(float64(got[k].Box[0]-8)) > 1e-6 || math.Abs(float64(got[k].Box[8]-8)) > 1e-6 {
			t.Errorf("frame %d box = %v %v %v", k, got[k].Box[0], got[k].Box[4], got[k].Box[8])
		}
	}
}

func TestFrameCountMismatch(t *testing.T) {
	frames := makeFrames(2, 10, 3)
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{NFrames: 5})
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err == nil {
		t.Error("Close should report frame-count mismatch")
	}
}

func TestAtomCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{NAtoms: 10, NFrames: 1})
	f := makeFrames(1, 20, 4)[0]
	if err := w.WriteFrame(f); err == nil {
		t.Error("mismatched atoms should fail")
	}
}

func TestTruncatedStream(t *testing.T) {
	frames := makeFrames(2, 30, 5)
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{NFrames: 2})
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); err != nil {
		t.Fatalf("first frame should decode: %v", err)
	}
	if _, err := r.ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated second frame: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	raw := []byte{84, 0, 0, 0, 'X', 'X', 'X', 'X'}
	raw = append(raw, make([]byte, 80)...)
	raw = append(raw, []byte{84, 0, 0, 0}...)
	if _, err := NewReader(bytes.NewReader(raw)); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestRecordMarkerMismatch(t *testing.T) {
	frames := makeFrames(1, 10, 6)
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{NFrames: 1})
	if err := w.WriteFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	w.Close()
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // corrupt the trailing length marker
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestBytesConsumed(t *testing.T) {
	frames := makeFrames(3, 25, 7)
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{NFrames: 3})
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	total := int64(buf.Len())
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if r.BytesConsumed() != total {
		t.Errorf("BytesConsumed = %d, want %d", r.BytesConsumed(), total)
	}
}
