// Package dcd implements the CHARMM/NAMD DCD binary trajectory format,
// the other trajectory type VMD commonly loads. DCD is uncompressed:
// little-endian Fortran unformatted records (each payload framed by
// leading and trailing 32-bit byte counts) holding an icntrl header, title
// records, the atom count, and per frame three float32 arrays (X, Y, Z) in
// Ångströms, optionally preceded by a unit-cell record.
//
// Frames convert to and from the repository's xtc.Frame (nanometers).
package dcd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/xtc"
)

// magic is the 4-byte tag opening the header record.
var magic = [4]byte{'C', 'O', 'R', 'D'}

// ErrFormat is returned for malformed DCD streams.
var ErrFormat = errors.New("dcd: malformed stream")

// Header carries the fields of the icntrl block this package uses.
type Header struct {
	NFrames      int
	FirstStep    int32
	StepInterval int32
	DeltaPS      float32 // timestep, stored in AKMA units on disk
	Titles       []string
	NAtoms       int
	HasUnitCell  bool
}

// akmaPerPS converts picoseconds to CHARMM's AKMA time unit.
const akmaPerPS = 1 / 0.0488882129

// Writer emits a DCD stream. The frame count is written up front, so the
// caller declares it in the header; writing a different number of frames
// is reported at Close.
type Writer struct {
	w       *bufio.Writer
	hdr     Header
	written int
	started bool
}

// NewWriter returns a Writer that will emit the given header before the
// first frame.
func NewWriter(w io.Writer, hdr Header) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), hdr: hdr}
}

// record writes one Fortran unformatted record.
func (w *Writer) record(payload []byte) error {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	if _, err := w.w.Write(n[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	_, err := w.w.Write(n[:])
	return err
}

func (w *Writer) writeHeader() error {
	// icntrl: 20 int32s after the CORD tag.
	buf := make([]byte, 4+20*4)
	copy(buf, magic[:])
	put := func(i int, v int32) {
		binary.LittleEndian.PutUint32(buf[4+i*4:], uint32(v))
	}
	put(0, int32(w.hdr.NFrames))
	put(1, w.hdr.FirstStep)
	put(2, w.hdr.StepInterval)
	delta := float32(w.hdr.DeltaPS * akmaPerPS)
	binary.LittleEndian.PutUint32(buf[4+9*4:], math.Float32bits(delta))
	if w.hdr.HasUnitCell {
		put(10, 1)
	}
	put(19, 24) // CHARMM version marker
	if err := w.record(buf); err != nil {
		return err
	}

	// Title record: count + 80-byte lines.
	titles := w.hdr.Titles
	if len(titles) == 0 {
		titles = []string{"CREATED BY repro/internal/dcd"}
	}
	tbuf := make([]byte, 4+80*len(titles))
	binary.LittleEndian.PutUint32(tbuf, uint32(len(titles)))
	for i, t := range titles {
		line := tbuf[4+80*i : 4+80*(i+1)]
		for j := range line {
			line[j] = ' '
		}
		copy(line, t)
	}
	if err := w.record(tbuf); err != nil {
		return err
	}

	// Atom count record.
	abuf := make([]byte, 4)
	binary.LittleEndian.PutUint32(abuf, uint32(w.hdr.NAtoms))
	return w.record(abuf)
}

// WriteFrame appends one frame; coordinates are converted from nm to Å.
func (w *Writer) WriteFrame(f *xtc.Frame) error {
	if !w.started {
		if w.hdr.NAtoms == 0 {
			w.hdr.NAtoms = f.NAtoms()
		}
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.started = true
	}
	if f.NAtoms() != w.hdr.NAtoms {
		return fmt.Errorf("dcd: frame has %d atoms, header declares %d", f.NAtoms(), w.hdr.NAtoms)
	}
	if w.hdr.HasUnitCell {
		cell := make([]byte, 6*8)
		// CHARMM order: A, gamma, B, beta, alpha, C (Å and degrees).
		a := float64(f.Box[0]) * 10
		b := float64(f.Box[4]) * 10
		c := float64(f.Box[8]) * 10
		vals := [6]float64{a, 90, b, 90, 90, c}
		for i, v := range vals {
			binary.LittleEndian.PutUint64(cell[i*8:], math.Float64bits(v))
		}
		if err := w.record(cell); err != nil {
			return err
		}
	}
	n := f.NAtoms()
	buf := make([]byte, n*4)
	for d := 0; d < 3; d++ {
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(f.Coords[i][d]*10))
		}
		if err := w.record(buf); err != nil {
			return err
		}
	}
	w.written++
	return nil
}

// Close flushes the stream and verifies the declared frame count.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.started && w.hdr.NFrames != 0 && w.written != w.hdr.NFrames {
		return fmt.Errorf("dcd: header declared %d frames but %d were written",
			w.hdr.NFrames, w.written)
	}
	return nil
}

// Reader decodes a DCD stream.
type Reader struct {
	r        *bufio.Reader
	hdr      Header
	consumed int64
	frame    int
}

// NewReader parses the header records and positions at the first frame.
func NewReader(r io.Reader) (*Reader, error) {
	d := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	head, err := d.readRecord()
	if err != nil {
		return nil, fmt.Errorf("dcd: header: %w", err)
	}
	if len(head) != 4+20*4 || head[0] != 'C' || head[1] != 'O' || head[2] != 'R' || head[3] != 'D' {
		return nil, fmt.Errorf("%w: bad header record", ErrFormat)
	}
	geti := func(i int) int32 {
		return int32(binary.LittleEndian.Uint32(head[4+i*4:]))
	}
	d.hdr.NFrames = int(geti(0))
	d.hdr.FirstStep = geti(1)
	d.hdr.StepInterval = geti(2)
	d.hdr.DeltaPS = math.Float32frombits(binary.LittleEndian.Uint32(head[4+9*4:])) / akmaPerPS
	d.hdr.HasUnitCell = geti(10) != 0

	titles, err := d.readRecord()
	if err != nil {
		return nil, fmt.Errorf("dcd: titles: %w", err)
	}
	if len(titles) >= 4 {
		n := int(binary.LittleEndian.Uint32(titles))
		for i := 0; i < n && 4+80*(i+1) <= len(titles); i++ {
			d.hdr.Titles = append(d.hdr.Titles, trimSpaces(string(titles[4+80*i:4+80*(i+1)])))
		}
	}
	atoms, err := d.readRecord()
	if err != nil {
		return nil, fmt.Errorf("dcd: atom count: %w", err)
	}
	if len(atoms) != 4 {
		return nil, fmt.Errorf("%w: atom-count record of %d bytes", ErrFormat, len(atoms))
	}
	d.hdr.NAtoms = int(int32(binary.LittleEndian.Uint32(atoms)))
	if d.hdr.NAtoms < 0 {
		return nil, fmt.Errorf("%w: negative atom count", ErrFormat)
	}
	return d, nil
}

// Header returns the parsed header.
func (d *Reader) Header() Header { return d.hdr }

// BytesConsumed returns the encoded bytes read so far.
func (d *Reader) BytesConsumed() int64 { return d.consumed }

func trimSpaces(s string) string {
	end := len(s)
	for end > 0 && (s[end-1] == ' ' || s[end-1] == 0) {
		end--
	}
	return s[:end]
}

func (d *Reader) readRecord() ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(d.r, n[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint32(n[:])
	if size > 1<<28 {
		return nil, fmt.Errorf("%w: record of %d bytes", ErrFormat, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return nil, unexpected(err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(d.r, tail[:]); err != nil {
		return nil, unexpected(err)
	}
	if binary.LittleEndian.Uint32(tail[:]) != size {
		return nil, fmt.Errorf("%w: record length markers disagree (%d vs %d)",
			ErrFormat, size, binary.LittleEndian.Uint32(tail[:]))
	}
	d.consumed += int64(size) + 8
	return payload, nil
}

// ReadFrame decodes the next frame (coordinates converted Å -> nm),
// returning io.EOF at end of stream.
func (d *Reader) ReadFrame() (*xtc.Frame, error) {
	f := &xtc.Frame{
		Step: d.hdr.FirstStep + int32(d.frame)*maxInt32(d.hdr.StepInterval, 1),
		Time: float32(d.frame) * d.hdr.DeltaPS * float32(maxInt32(d.hdr.StepInterval, 1)),
	}
	if d.hdr.HasUnitCell {
		cell, err := d.readRecord()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		if len(cell) != 48 {
			return nil, fmt.Errorf("%w: unit-cell record of %d bytes", ErrFormat, len(cell))
		}
		f.Box[0] = float32(math.Float64frombits(binary.LittleEndian.Uint64(cell[0:])) / 10)
		f.Box[4] = float32(math.Float64frombits(binary.LittleEndian.Uint64(cell[16:])) / 10)
		f.Box[8] = float32(math.Float64frombits(binary.LittleEndian.Uint64(cell[40:])) / 10)
	}
	f.Coords = make([]xtc.Vec3, d.hdr.NAtoms)
	for dim := 0; dim < 3; dim++ {
		rec, err := d.readRecord()
		if err == io.EOF {
			if dim == 0 && !d.hdr.HasUnitCell {
				return nil, io.EOF
			}
			return nil, io.ErrUnexpectedEOF
		}
		if err != nil {
			return nil, err
		}
		if len(rec) != d.hdr.NAtoms*4 {
			return nil, fmt.Errorf("%w: coordinate record of %d bytes for %d atoms",
				ErrFormat, len(rec), d.hdr.NAtoms)
		}
		for i := 0; i < d.hdr.NAtoms; i++ {
			f.Coords[i][dim] = math.Float32frombits(binary.LittleEndian.Uint32(rec[i*4:])) / 10
		}
	}
	d.frame++
	return f, nil
}

// ReadAll decodes every frame.
func (d *Reader) ReadAll() ([]*xtc.Frame, error) {
	var out []*xtc.Frame
	for {
		f, err := d.ReadFrame()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func maxInt32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
