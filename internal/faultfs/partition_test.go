package faultfs

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

func TestParsePartitionRule(t *testing.T) {
	in, err := Parse("partition:conn.read:nth=3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if in.rules[0].Kind != KindPartition || in.rules[0].Op != "conn.read" || in.rules[0].Nth != 3 {
		t.Fatalf("parsed rule = %+v", in.rules[0])
	}
	if got := KindPartition.String(); got != "partition" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPartitionRuleRequiresConnOp(t *testing.T) {
	for _, spec := range []string{"partition", "partition:read", "partition:fs.read"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a non-conn partition rule", spec)
		}
	}
}

// pipeConns returns both ends of an in-memory duplex connection.
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	client, server = net.Pipe()
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestPartitionBlackholesTraffic(t *testing.T) {
	in := MustNew(1, Rule{Kind: KindPartition, Op: "conn.read", Nth: 1})
	clientEnd, serverEnd := pipeConns(t)
	faulted := WrapConn(serverEnd, in)

	// The client's write succeeds at the transport level (net.Pipe is
	// synchronous, so the blackholed read on the other side absorbs it).
	go clientEnd.Write([]byte("request-bytes"))

	// The partitioned read discards the inbound bytes and blocks until
	// the deadline fires — the timeout path, not an error return.
	faulted.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 64)
	start := time.Now()
	n, err := faulted.Read(buf)
	if n != 0 {
		t.Fatalf("partitioned read delivered %d bytes", n)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned read err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("partitioned read returned after %v, before the deadline", d)
	}
	if !in.Partitioned() {
		t.Fatal("injector not marked partitioned")
	}

	// Writes through the partition claim success but transmit nothing:
	// a concurrent reader on the peer end must stay empty-handed.
	peerGot := make(chan int, 1)
	go func() {
		clientEnd.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _ := clientEnd.Read(make([]byte, 64))
		peerGot <- n
	}()
	if n, err := faulted.Write([]byte("response")); n != len("response") || err != nil {
		t.Fatalf("partitioned write = (%d, %v), want full fake success", n, err)
	}
	if n := <-peerGot; n != 0 {
		t.Fatalf("peer received %d bytes through a partition", n)
	}
}

func TestPartitionStickyAndReset(t *testing.T) {
	in := MustNew(1, Rule{Kind: KindPartition, Op: "conn.write", Nth: 2})
	if _, ok := in.next("conn.write"); ok {
		t.Fatal("rule fired before nth")
	}
	if fl, ok := in.next("conn.write"); !ok || fl.kind != KindPartition {
		t.Fatalf("nth op: fault = (%+v, %v)", fl, ok)
	}
	// Sticky: every conn op now faults, but fs ops pass (the node's disk
	// is fine, only its network is gone).
	if fl, ok := in.next("conn.read"); !ok || fl.kind != KindPartition {
		t.Fatalf("conn op after partition = (%+v, %v)", fl, ok)
	}
	if _, ok := in.next("read"); ok {
		t.Fatal("fs op faulted by a partition")
	}
	in.SetPartitioned(false)
	if in.Partitioned() {
		t.Fatal("SetPartitioned(false) did not heal")
	}
	in.SetPartitioned(true)
	in.Reset()
	if in.Partitioned() {
		t.Fatal("Reset did not clear partitioned state")
	}
}

func TestNodeListenerKill(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node := WrapNodeListener(ln, nil)
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := node.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err := net.Dial("tcp", node.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	srvConn := <-accepted
	defer srvConn.Close()
	if node.ConnCount() != 1 {
		t.Fatalf("ConnCount = %d, want 1", node.ConnCount())
	}

	node.Kill()
	if !node.Killed() {
		t.Fatal("Killed() = false after Kill")
	}
	// The live connection is severed: the client's blocking read errors
	// out instead of hanging.
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on a killed node's conn succeeded")
	}
	// New dials are refused (or reset) — the address no longer listens.
	if c, err := net.DialTimeout("tcp", node.Addr().String(), time.Second); err == nil {
		c.Close()
		t.Fatal("dial to a killed node succeeded")
	}
	node.Kill() // idempotent
}
