package faultfs

import (
	"fmt"
	"net"
	"time"
)

// Conn decorates a net.Conn with fault injection on the transport: the
// injector sees ops "conn.read" and "conn.write", one per Read/Write call.
//
// Kinds map to transport failures as follows:
//
//   - err: the call fails with ErrInjected; the connection stays open
//     (a transient I/O error).
//   - drop: the connection is closed before any bytes move — a mid-call
//     connection drop. On a write this models a request that provably
//     never reached the peer.
//   - slow: the call sleeps for the delay first; with a deadline set on
//     the conn, long delays surface as timeouts from the underlying call.
//   - partial: roughly half the bytes transfer, then the connection is
//     closed — a torn frame on the wire.
//   - partition: the link blackholes. Reads absorb and discard whatever
//     the peer sends and block until the connection's deadline fires or
//     the peer gives up; writes report full success without transmitting.
//     The peer sees neither an error nor a byte — only its own timeout.
type Conn struct {
	net.Conn
	in *Injector
}

// WrapConn decorates c with the injector's faults.
func WrapConn(c net.Conn, in *Injector) net.Conn { return &Conn{Conn: c, in: in} }

func (c *Conn) Read(p []byte) (int, error) {
	fl, ok := c.in.next("conn.read")
	if !ok {
		return c.Conn.Read(p)
	}
	switch fl.kind {
	case KindSlow:
		time.Sleep(fl.delay)
		return c.Conn.Read(p)
	case KindErr:
		return 0, fmt.Errorf("%w: conn.read", ErrInjected)
	case KindPartition:
		// Blackhole: consume inbound bytes without delivering any, until
		// the underlying conn errors (deadline, close, or peer reset).
		buf := make([]byte, 4096)
		for {
			if _, err := c.Conn.Read(buf); err != nil {
				return 0, err
			}
		}
	case KindCorrupt:
		n, err := c.Conn.Read(p)
		if n > 0 {
			p[n/2] ^= fl.xor
		}
		return n, err
	case KindPartial:
		if len(p) > 1 {
			n, err := c.Conn.Read(p[:len(p)/2])
			c.Conn.Close()
			if err != nil {
				return n, err
			}
			return n, nil // the torn end surfaces on the next read
		}
		fallthrough
	default: // KindDrop
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped mid-read", ErrInjected)
	}
}

func (c *Conn) Write(p []byte) (int, error) {
	fl, ok := c.in.next("conn.write")
	if !ok {
		return c.Conn.Write(p)
	}
	switch fl.kind {
	case KindSlow:
		time.Sleep(fl.delay)
		return c.Conn.Write(p)
	case KindErr:
		return 0, fmt.Errorf("%w: conn.write", ErrInjected)
	case KindPartition:
		// Blackhole: the bytes vanish on the wire but the local stack
		// reports success, exactly like a send into a dead link.
		return len(p), nil
	case KindCorrupt:
		if len(p) > 0 {
			q := make([]byte, len(p))
			copy(q, p)
			q[len(q)/2] ^= fl.xor
			p = q
		}
		return c.Conn.Write(p)
	case KindPartial:
		if len(p) > 1 {
			n, err := c.Conn.Write(p[:len(p)/2])
			c.Conn.Close()
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("%w: connection dropped mid-write", ErrInjected)
		}
		fallthrough
	default: // KindDrop
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped before write", ErrInjected)
	}
}

// listener wraps every accepted connection with the injector — the
// server-side counterpart of WrapConn (adanode -fault-spec).
type listener struct {
	net.Listener
	in *Injector
}

// WrapListener returns a listener whose accepted connections inject faults.
func WrapListener(ln net.Listener, in *Injector) net.Listener {
	return &listener{Listener: ln, in: in}
}

func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, l.in), nil
}
