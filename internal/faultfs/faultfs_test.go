package faultfs

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

func TestParseSpec(t *testing.T) {
	in, err := Parse("seed=42; drop:conn.read:every=3; slow:read:delay=50ms; err:write:nth=2; partial:prob=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 42 {
		t.Errorf("seed = %d, want 42", in.Seed())
	}
	want := []Rule{
		{Kind: KindDrop, Op: "conn.read", Every: 3},
		{Kind: KindSlow, Op: "read", Delay: 50 * time.Millisecond},
		{Kind: KindErr, Op: "write", Nth: 2},
		{Kind: KindPartial, Prob: 0.5},
	}
	if len(in.rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(in.rules), len(want))
	}
	for i, r := range in.rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
	if s := in.String(); !strings.Contains(s, "seed=42") {
		t.Errorf("String() = %q, want the seed echoed", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",                      // no rules
		"seed=7",                // seed only
		"explode:read",          // unknown kind
		"err:read:count=3",      // unknown selector
		"slow:read",             // slow without delay
		"err:read:every=x",      // bad int
		"drop:a:b:every=1",      // two op names
		"seed=abc;drop:read",    // bad seed
		"err:read:prob=1.5",     // prob out of range
		"err:read:every=-1",     // negative selector
		"slow:read:delay=50xyz", // bad duration
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestDeterministicProb(t *testing.T) {
	fire := func(seed int64) []bool {
		in := MustNew(seed, Rule{Kind: KindErr, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			_, out[i] = in.next("op")
		}
		return out
	}
	a, b := fire(7), fire(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := fire(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical firing patterns")
	}
}

func TestSelectors(t *testing.T) {
	in := MustNew(1,
		Rule{Kind: KindErr, Op: "a", Every: 3},
		Rule{Kind: KindDrop, Op: "b", Nth: 2},
	)
	var aFired, bFired []int
	for i := 1; i <= 9; i++ {
		if _, ok := in.next("a"); ok {
			aFired = append(aFired, i)
		}
	}
	for i := 1; i <= 4; i++ {
		if _, ok := in.next("b"); ok {
			bFired = append(bFired, i)
		}
	}
	if len(aFired) != 3 || aFired[0] != 3 || aFired[1] != 6 || aFired[2] != 9 {
		t.Errorf("every=3 fired at %v, want [3 6 9]", aFired)
	}
	if len(bFired) != 1 || bFired[0] != 2 {
		t.Errorf("nth=2 fired at %v, want [2]", bFired)
	}
}

func TestDisabledPassesThrough(t *testing.T) {
	in := MustNew(1, Rule{Kind: KindErr, Nth: 1})
	in.SetEnabled(false)
	for i := 0; i < 5; i++ {
		if _, ok := in.next("op"); ok {
			t.Fatal("disabled injector fired")
		}
	}
	// Arming resets nothing, but disabled ops were not counted: the first
	// armed op is the rule's Nth=1.
	in.SetEnabled(true)
	if _, ok := in.next("op"); !ok {
		t.Error("nth=1 did not fire on the first armed op")
	}
}

func TestFSInjection(t *testing.T) {
	reg := metrics.NewRegistry()
	in := MustNew(1, Rule{Kind: KindErr, Op: "stat", Every: 2})
	in.SetMetrics(reg)
	fsys := Wrap(vfs.NewMemFS(), in)
	if err := fsys.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat("/d"); err != nil {
		t.Fatalf("first stat: %v", err)
	}
	if _, err := fsys.Stat("/d"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second stat = %v, want ErrInjected", err)
	}
	if got := reg.Snapshot().Counters["faultfs.injected.errors"]; got != 1 {
		t.Errorf("injected.errors = %d, want 1", got)
	}
}

func TestFilePartialWrite(t *testing.T) {
	in := MustNew(1, Rule{Kind: KindPartial, Op: "write", Nth: 1})
	fsys := Wrap(vfs.NewMemFS(), in)
	f, err := fsys.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Errorf("partial write landed %d bytes, want 5", n)
	}
	in.SetEnabled(false)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(fsys, "/f")
	if err != nil || string(data) != "01234" {
		t.Errorf("file holds %q, %v; want the torn half", data, err)
	}
}

func TestFileSlow(t *testing.T) {
	in := MustNew(1, Rule{Kind: KindSlow, Op: "read", Delay: 20 * time.Millisecond})
	fsys := Wrap(vfs.NewMemFS(), in)
	if err := vfs.WriteFile(fsys, "/f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("slow read took %v, want >= ~20ms", d)
	}
}

func TestConnDrop(t *testing.T) {
	reg := metrics.NewRegistry()
	in := MustNew(1, Rule{Kind: KindDrop, Op: "conn.write", Nth: 2})
	in.SetMetrics(reg)
	a, b := net.Pipe()
	defer b.Close()
	wrapped := WrapConn(a, in)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := wrapped.Write([]byte("one")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := wrapped.Write([]byte("two"))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped write = %d, %v; want 0, ErrInjected", n, err)
	}
	// The drop closed the underlying conn.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("underlying conn still open after drop")
	}
	if got := reg.Snapshot().Counters["faultfs.injected.drops"]; got != 1 {
		t.Errorf("injected.drops = %d, want 1", got)
	}
}

func TestWrapListener(t *testing.T) {
	in := MustNew(1, Rule{Kind: KindErr, Op: "conn.read", Nth: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wrapped := WrapListener(ln, in)
	done := make(chan error, 1)
	go func() {
		conn, err := wrapped.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = conn.Read(make([]byte, 4))
		done <- err
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Write([]byte("ping"))
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Errorf("accepted conn read = %v, want ErrInjected", err)
	}
}

func TestCorruptReadRule(t *testing.T) {
	// The crash-consistency docs' canonical spec: flip a byte on the 5th
	// file-system read ("fs.read" aliases "read").
	in, err := Parse("corrupt:fs.read:nth=5,xor=0xff")
	if err != nil {
		t.Fatal(err)
	}
	in.SetEnabled(false)
	fsys := Wrap(vfs.NewMemFS(), in)
	orig := []byte("0123456789")
	if err := vfs.WriteFile(fsys, "/f", orig); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in.SetEnabled(true)
	buf := make([]byte, len(orig))
	for i := 1; i <= 6; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if i == 5 {
			// Exactly the middle byte of the transfer is flipped; the op
			// itself succeeds — a silent bit flip, not an error.
			want := append([]byte(nil), orig...)
			want[len(want)/2] ^= 0xff
			if !bytes.Equal(buf, want) {
				t.Fatalf("read 5 = %q, want %q", buf, want)
			}
			continue
		}
		if !bytes.Equal(buf, orig) {
			t.Fatalf("read %d corrupted: %q", i, buf)
		}
	}
}

func TestCorruptWriteLeavesCallerBuffer(t *testing.T) {
	in := MustNew(1, Rule{Kind: KindCorrupt, Op: "write", Nth: 1, Xor: 0x01})
	fsys := Wrap(vfs.NewMemFS(), in)
	f, err := fsys.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("abcdef")
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	in.SetEnabled(false)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if string(payload) != "abcdef" {
		t.Errorf("caller buffer mutated: %q", payload)
	}
	stored, err := vfs.ReadFile(fsys, "/f")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("abceef") // 'd' ^ 0x01
	if !bytes.Equal(stored, want) {
		t.Errorf("stored = %q, want %q", stored, want)
	}
}

func TestKillRule(t *testing.T) {
	reg := metrics.NewRegistry()
	in := MustNew(1, Rule{Kind: KindKill, Nth: 3})
	in.SetMetrics(reg)
	fsys := Wrap(vfs.NewMemFS(), in)
	if err := fsys.MkdirAll("/d"); err != nil { // op 1
		t.Fatal(err)
	}
	if _, err := fsys.Stat("/d"); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := fsys.Stat("/d"); !errors.Is(err, ErrInjected) { // op 3: the kill
		t.Fatalf("kill op = %v, want ErrInjected", err)
	}
	if !in.Killed() {
		t.Fatal("injector not killed after the kill op")
	}
	// Every subsequent operation fails, whatever it is: the process is dead.
	if _, err := fsys.ReadDir("/d"); !errors.Is(err, ErrInjected) {
		t.Errorf("post-kill readdir = %v", err)
	}
	if _, err := fsys.Create("/d/f"); !errors.Is(err, ErrInjected) {
		t.Errorf("post-kill create = %v", err)
	}
	if got := in.Ops(); got != 5 {
		t.Errorf("Ops() = %d, want 5", got)
	}
	if got := reg.Snapshot().Counters["faultfs.injected.kills"]; got != 1 {
		t.Errorf("injected.kills = %d, want 1", got)
	}
	// Reset revives the file system and restarts the op sequence, so the
	// same injector can sweep the next kill point.
	in.Reset()
	if in.Killed() {
		t.Error("Killed() still true after Reset")
	}
	if _, err := fsys.Stat("/d"); err != nil {
		t.Errorf("post-reset stat: %v", err)
	}
	if got := in.Ops(); got != 1 {
		t.Errorf("Ops() after reset = %d, want 1", got)
	}
}
