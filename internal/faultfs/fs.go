package faultfs

import (
	"fmt"
	"time"

	"repro/internal/vfs"
)

// FS decorates a vfs.FS with fault injection. Operation names seen by the
// injector are the lowercase method names ("create", "open", "stat",
// "readdir", "mkdirall", "remove", "rename") plus file-level "read",
// "write", and "close".
type FS struct {
	fsys vfs.FS
	in   *Injector
}

// Wrap decorates fsys with the injector's faults.
func Wrap(fsys vfs.FS, in *Injector) *FS { return &FS{fsys: fsys, in: in} }

var _ vfs.FS = (*FS)(nil)

// Unwrap returns the underlying FS.
func (f *FS) Unwrap() vfs.FS { return f.fsys }

// fsFault resolves one injection decision for a file-system op: slow faults
// sleep and let the op proceed, corrupt faults pass (there is no payload at
// this level to flip); every other kind replaces the op with an injected
// error (a file system has no connection to drop).
func (f *FS) fsFault(op string) error {
	fl, ok := f.in.next(op)
	if !ok {
		return nil
	}
	switch fl.kind {
	case KindSlow:
		time.Sleep(fl.delay)
		return nil
	case KindCorrupt:
		return nil
	}
	return fmt.Errorf("%w: %s (%s)", ErrInjected, op, fl.kind)
}

// Create implements vfs.FS.
func (f *FS) Create(name string) (vfs.File, error) {
	if err := f.fsFault("create"); err != nil {
		return nil, err
	}
	file, err := f.fsys.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: f.in}, nil
}

// Open implements vfs.FS.
func (f *FS) Open(name string) (vfs.File, error) {
	if err := f.fsFault("open"); err != nil {
		return nil, err
	}
	file, err := f.fsys.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: f.in}, nil
}

// Stat implements vfs.FS.
func (f *FS) Stat(name string) (vfs.FileInfo, error) {
	if err := f.fsFault("stat"); err != nil {
		return vfs.FileInfo{}, err
	}
	return f.fsys.Stat(name)
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(name string) ([]vfs.FileInfo, error) {
	if err := f.fsFault("readdir"); err != nil {
		return nil, err
	}
	return f.fsys.ReadDir(name)
}

// MkdirAll implements vfs.FS.
func (f *FS) MkdirAll(name string) error {
	if err := f.fsFault("mkdirall"); err != nil {
		return err
	}
	return f.fsys.MkdirAll(name)
}

// Remove implements vfs.FS.
func (f *FS) Remove(name string) error {
	if err := f.fsFault("remove"); err != nil {
		return err
	}
	return f.fsys.Remove(name)
}

// Rename implements vfs.FS.
func (f *FS) Rename(oldname, newname string) error {
	if err := f.fsFault("rename"); err != nil {
		return err
	}
	return f.fsys.Rename(oldname, newname)
}

// faultFile injects on file-level reads, writes, and closes.
type faultFile struct {
	vfs.File
	in *Injector
}

func (f *faultFile) fileFault(op string, p []byte) (partial []byte, mask byte, err error) {
	fl, ok := f.in.next(op)
	if !ok {
		return nil, 0, nil
	}
	switch fl.kind {
	case KindSlow:
		time.Sleep(fl.delay)
		return nil, 0, nil
	case KindCorrupt:
		// The op proceeds; the caller flips one payload byte with mask.
		return nil, fl.xor, nil
	case KindPartial:
		if len(p) > 1 {
			return p[:len(p)/2], 0, fmt.Errorf("%w: partial %s", ErrInjected, op)
		}
	}
	return nil, 0, fmt.Errorf("%w: %s (%s)", ErrInjected, op, fl.kind)
}

func (f *faultFile) Read(p []byte) (int, error) {
	_, mask, err := f.fileFault("read", nil)
	if err != nil {
		return 0, err
	}
	n, rerr := f.File.Read(p)
	if mask != 0 && n > 0 {
		p[n/2] ^= mask
	}
	return n, rerr
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	_, mask, err := f.fileFault("read", nil)
	if err != nil {
		return 0, err
	}
	n, rerr := f.File.ReadAt(p, off)
	if mask != 0 && n > 0 {
		p[n/2] ^= mask
	}
	return n, rerr
}

func (f *faultFile) Write(p []byte) (int, error) {
	partial, mask, err := f.fileFault("write", p)
	if err != nil {
		if partial == nil {
			return 0, err
		}
		// Half the bytes land before the failure, like a torn write.
		n, werr := f.File.Write(partial)
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	if mask != 0 && len(p) > 0 {
		// Corrupt a copy so the caller's buffer is untouched — the flip
		// happens "on the device", not in application memory.
		q := make([]byte, len(p))
		copy(q, p)
		q[len(q)/2] ^= mask
		p = q
	}
	return f.File.Write(p)
}

func (f *faultFile) Close() error {
	if _, _, err := f.fileFault("close", nil); err != nil {
		return err
	}
	return f.File.Close()
}
