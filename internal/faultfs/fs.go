package faultfs

import (
	"fmt"
	"time"

	"repro/internal/vfs"
)

// FS decorates a vfs.FS with fault injection. Operation names seen by the
// injector are the lowercase method names ("create", "open", "stat",
// "readdir", "mkdirall", "remove") plus file-level "read", "write", and
// "close".
type FS struct {
	fsys vfs.FS
	in   *Injector
}

// Wrap decorates fsys with the injector's faults.
func Wrap(fsys vfs.FS, in *Injector) *FS { return &FS{fsys: fsys, in: in} }

var _ vfs.FS = (*FS)(nil)

// Unwrap returns the underlying FS.
func (f *FS) Unwrap() vfs.FS { return f.fsys }

// fsFault resolves one injection decision for a file-system op: slow faults
// sleep and let the op proceed; every other kind replaces the op with an
// injected error (a file system has no connection to drop).
func (f *FS) fsFault(op string) error {
	fl, ok := f.in.next(op)
	if !ok {
		return nil
	}
	if fl.kind == KindSlow {
		time.Sleep(fl.delay)
		return nil
	}
	return fmt.Errorf("%w: %s (%s)", ErrInjected, op, fl.kind)
}

// Create implements vfs.FS.
func (f *FS) Create(name string) (vfs.File, error) {
	if err := f.fsFault("create"); err != nil {
		return nil, err
	}
	file, err := f.fsys.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: f.in}, nil
}

// Open implements vfs.FS.
func (f *FS) Open(name string) (vfs.File, error) {
	if err := f.fsFault("open"); err != nil {
		return nil, err
	}
	file, err := f.fsys.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: f.in}, nil
}

// Stat implements vfs.FS.
func (f *FS) Stat(name string) (vfs.FileInfo, error) {
	if err := f.fsFault("stat"); err != nil {
		return vfs.FileInfo{}, err
	}
	return f.fsys.Stat(name)
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(name string) ([]vfs.FileInfo, error) {
	if err := f.fsFault("readdir"); err != nil {
		return nil, err
	}
	return f.fsys.ReadDir(name)
}

// MkdirAll implements vfs.FS.
func (f *FS) MkdirAll(name string) error {
	if err := f.fsFault("mkdirall"); err != nil {
		return err
	}
	return f.fsys.MkdirAll(name)
}

// Remove implements vfs.FS.
func (f *FS) Remove(name string) error {
	if err := f.fsFault("remove"); err != nil {
		return err
	}
	return f.fsys.Remove(name)
}

// faultFile injects on file-level reads, writes, and closes.
type faultFile struct {
	vfs.File
	in *Injector
}

func (f *faultFile) fileFault(op string, p []byte) (partial []byte, err error) {
	fl, ok := f.in.next(op)
	if !ok {
		return nil, nil
	}
	switch fl.kind {
	case KindSlow:
		time.Sleep(fl.delay)
		return nil, nil
	case KindPartial:
		if len(p) > 1 {
			return p[:len(p)/2], fmt.Errorf("%w: partial %s", ErrInjected, op)
		}
	}
	return nil, fmt.Errorf("%w: %s (%s)", ErrInjected, op, fl.kind)
}

func (f *faultFile) Read(p []byte) (int, error) {
	if _, err := f.fileFault("read", nil); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if _, err := f.fileFault("read", nil); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	partial, err := f.fileFault("write", p)
	if err != nil {
		if partial == nil {
			return 0, err
		}
		// Half the bytes land before the failure, like a torn write.
		n, werr := f.File.Write(partial)
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Close() error {
	if _, err := f.fileFault("close", nil); err != nil {
		return err
	}
	return f.File.Close()
}
