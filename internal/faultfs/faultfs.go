// Package faultfs is a deterministic, seed-driven fault injector for the
// storage stack: decorators for vfs.FS and net.Conn that inject errors,
// latency, partial transfers, and mid-call connection drops according to a
// compact rule spec. The same injector drives unit tests (fault-matrix
// tables over the RPC path) and live processes (adanode -fault-spec), so a
// failure mode observed in production can be replayed byte-for-byte in a
// test by reusing its seed and spec.
//
// A spec is a semicolon-separated list of clauses:
//
//	seed=42; drop:conn.read:every=3; slow:read:delay=50ms; err:write:nth=2
//
// Each fault clause is "kind[:op][:key=val[,key=val...]]" where kind is one
// of err, drop, slow, partial, corrupt, kill, partition; op names the
// operation the rule matches ("create", "open", "stat", "readdir",
// "mkdirall", "remove", "rename", "read", "write", "close" for file
// systems — an "fs." prefix is accepted and stripped, so "fs.read" equals
// "read" — and "conn.read" / "conn.write" for connections; empty matches
// every op, except that partition rules must name a conn.* op); and the
// selector keys are:
//
//	every=N   fire on every Nth matching operation
//	nth=N     fire on exactly the Nth matching operation
//	prob=P    fire with probability P per matching operation (seed-driven)
//	delay=D   injected latency (required for slow, e.g. 50ms)
//	xor=M     byte mask XORed into the payload (corrupt; default 0xff)
//
// A rule with no selector fires on every matching operation. Injections are
// counted under faultfs.injected.* in the metrics registry.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ErrInjected marks every fault this package injects, so tests and callers
// can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// Kind is the class of fault a rule injects.
type Kind uint8

// The fault kinds.
const (
	// KindErr returns ErrInjected from the operation without side effects
	// (a transient failure; connections stay usable).
	KindErr Kind = iota + 1
	// KindDrop severs the transport: connections are closed mid-call with
	// nothing transferred; file-system ops fail like KindErr.
	KindDrop
	// KindSlow sleeps for the rule's Delay before performing the operation
	// (long enough delays push calls past their deadline).
	KindSlow
	// KindPartial transfers roughly half the requested bytes and then
	// fails: partial file writes, or a half frame on the wire followed by
	// a connection drop.
	KindPartial
	// KindCorrupt lets the operation proceed but XORs the rule's Xor mask
	// into one byte of the payload — a silent bit flip, exactly what
	// end-to-end checksums exist to catch. The flipped byte is the middle
	// of the transfer, so it is deterministic for a given op sequence.
	KindCorrupt
	// KindKill simulates the process or file system dying: the first time
	// the rule fires, the injector enters a permanently failed state and
	// every subsequent matching-or-not operation fails. Crash-consistency
	// tests sweep the kill point across an op sequence.
	KindKill
	// KindPartition simulates a network partition: the first time the rule
	// fires, the injector enters a sticky partitioned state in which every
	// connection op blackholes — reads absorb and discard inbound bytes
	// without delivering them, writes report success without transmitting.
	// Unlike drop or kill, the TCP endpoint stays up and accepting, so
	// clients exercise their deadline/timeout path instead of seeing a
	// connection-refused. Partition rules must target a conn.* op;
	// file-system ops are unaffected (the process and its disk are fine,
	// only the wire is gone). Cleared by Reset or SetPartitioned(false).
	KindPartition
)

// String names the kind as it appears in specs.
func (k Kind) String() string {
	switch k {
	case KindErr:
		return "err"
	case KindDrop:
		return "drop"
	case KindSlow:
		return "slow"
	case KindPartial:
		return "partial"
	case KindCorrupt:
		return "corrupt"
	case KindKill:
		return "kill"
	case KindPartition:
		return "partition"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rule selects which operations to fault and how.
type Rule struct {
	Kind  Kind
	Op    string        // operation name; "" matches every op
	Every int           // fire on every Nth matching op
	Nth   int           // fire on exactly the Nth matching op
	Prob  float64       // fire with probability Prob per matching op
	Delay time.Duration // injected latency (KindSlow)
	Xor   byte          // payload byte mask (KindCorrupt; 0 means 0xff)
}

// selectorless reports whether the rule has no firing condition (and so
// fires on every matching op).
func (r Rule) selectorless() bool { return r.Every == 0 && r.Nth == 0 && r.Prob == 0 }

// fault is one injection decision.
type fault struct {
	kind  Kind
	delay time.Duration
	xor   byte
}

// Injector decides, per operation, whether to inject a fault. It is safe
// for concurrent use and deterministic for a given (seed, rules, operation
// sequence) triple. A disabled injector passes every operation through
// without counting it, so tests can set up state fault-free and then arm
// the rules.
type Injector struct {
	seed    int64
	spec    string
	enabled atomic.Bool

	mu      sync.Mutex
	rng     *rand.Rand
	rules   []Rule
	counts  []int64 // matching-op count per rule
	opsSeen int64   // operations observed while armed
	killed  bool    // a KindKill rule fired; every op now fails
	parted  bool    // a KindPartition rule fired; conn ops blackhole

	m injectorMetrics
}

type injectorMetrics struct {
	ops         *metrics.Counter
	errors      *metrics.Counter
	drops       *metrics.Counter
	slow        *metrics.Counter
	partials    *metrics.Counter
	corruptions *metrics.Counter
	kills       *metrics.Counter
	partitions  *metrics.Counter
	delayNS     *metrics.Counter
}

func newInjectorMetrics(reg *metrics.Registry) injectorMetrics {
	return injectorMetrics{
		ops:         reg.Counter("faultfs.ops"),
		errors:      reg.Counter("faultfs.injected.errors"),
		drops:       reg.Counter("faultfs.injected.drops"),
		slow:        reg.Counter("faultfs.injected.slow"),
		partials:    reg.Counter("faultfs.injected.partials"),
		corruptions: reg.Counter("faultfs.injected.corruptions"),
		kills:       reg.Counter("faultfs.injected.kills"),
		partitions:  reg.Counter("faultfs.injected.partitions"),
		delayNS:     reg.Counter("faultfs.injected.delay_ns"),
	}
}

// New returns an armed injector over the rules, with all randomness (prob
// selectors) drawn from seed.
func New(seed int64, rules ...Rule) (*Injector, error) {
	for i, r := range rules {
		if r.Kind < KindErr || r.Kind > KindPartition {
			return nil, fmt.Errorf("faultfs: rule %d: unknown kind", i)
		}
		if r.Kind == KindSlow && r.Delay <= 0 {
			return nil, fmt.Errorf("faultfs: rule %d: slow requires delay", i)
		}
		if r.Kind == KindPartition && !strings.HasPrefix(r.Op, "conn.") {
			return nil, fmt.Errorf("faultfs: rule %d: partition targets connection ops (conn.read/conn.write)", i)
		}
		if r.Every < 0 || r.Nth < 0 || r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("faultfs: rule %d: invalid selector", i)
		}
	}
	in := &Injector{
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
		rules:  rules,
		counts: make([]int64, len(rules)),
		m:      newInjectorMetrics(metrics.Default),
	}
	in.enabled.Store(true)
	return in, nil
}

// MustNew is New for static rule sets known to be valid (tests, examples).
func MustNew(seed int64, rules ...Rule) *Injector {
	in, err := New(seed, rules...)
	if err != nil {
		panic(err)
	}
	return in
}

// Parse builds an injector from its spec string form (see the package
// comment for the grammar). The seed defaults to 1 when no seed clause is
// given, keeping unseeded specs deterministic.
func Parse(spec string) (*Injector, error) {
	seed := int64(1)
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultfs: bad seed %q", v)
			}
			seed = n
			continue
		}
		rule, err := parseRule(clause)
		if err != nil {
			return nil, err
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultfs: spec %q has no fault rules", spec)
	}
	in, err := New(seed, rules...)
	if err != nil {
		return nil, err
	}
	in.spec = spec
	return in, nil
}

// parseRule parses one "kind[:op][:k=v,...]" clause.
func parseRule(clause string) (Rule, error) {
	var rule Rule
	for i, tok := range strings.Split(clause, ":") {
		tok = strings.TrimSpace(tok)
		switch {
		case i == 0:
			switch tok {
			case "err":
				rule.Kind = KindErr
			case "drop":
				rule.Kind = KindDrop
			case "slow":
				rule.Kind = KindSlow
			case "partial":
				rule.Kind = KindPartial
			case "corrupt":
				rule.Kind = KindCorrupt
			case "kill":
				rule.Kind = KindKill
			case "partition":
				rule.Kind = KindPartition
			default:
				return Rule{}, fmt.Errorf("faultfs: unknown fault kind %q in %q", tok, clause)
			}
		case !strings.Contains(tok, "="):
			if rule.Op != "" {
				return Rule{}, fmt.Errorf("faultfs: two op names in %q", clause)
			}
			// "fs.read" is accepted as an alias of the file-system op
			// "read" (but "conn.read" stays distinct).
			rule.Op = strings.TrimPrefix(tok, "fs.")
		default:
			for _, kv := range strings.Split(tok, ",") {
				key, val, _ := strings.Cut(kv, "=")
				var err error
				switch key {
				case "every":
					rule.Every, err = strconv.Atoi(val)
				case "nth":
					rule.Nth, err = strconv.Atoi(val)
				case "prob":
					rule.Prob, err = strconv.ParseFloat(val, 64)
				case "delay":
					rule.Delay, err = time.ParseDuration(val)
				case "xor":
					var m uint64
					m, err = strconv.ParseUint(val, 0, 8)
					rule.Xor = byte(m)
				default:
					return Rule{}, fmt.Errorf("faultfs: unknown selector %q in %q", key, clause)
				}
				if err != nil {
					return Rule{}, fmt.Errorf("faultfs: bad %s value %q in %q", key, val, clause)
				}
			}
		}
	}
	return rule, nil
}

// SetMetrics points the injector's counters at reg (metrics.Default by
// default; nil disables collection).
func (in *Injector) SetMetrics(reg *metrics.Registry) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.m = newInjectorMetrics(reg)
}

// SetEnabled arms or disarms the injector. While disarmed, operations pass
// through uncounted, so nth/every selectors are relative to arming.
func (in *Injector) SetEnabled(on bool) { in.enabled.Store(on) }

// Seed returns the injector's seed, for logging reproduction lines.
func (in *Injector) Seed() int64 { return in.seed }

// String renders the injector for startup banners.
func (in *Injector) String() string {
	if in.spec != "" {
		return fmt.Sprintf("faultfs(seed=%d): %s", in.seed, in.spec)
	}
	return fmt.Sprintf("faultfs(seed=%d): %d rules", in.seed, len(in.rules))
}

// next records one operation and returns the fault to inject, if any. The
// first rule that fires wins, but every matching rule's count advances, so
// rule order does not perturb later selectors.
func (in *Injector) next(op string) (fault, bool) {
	if !in.enabled.Load() {
		return fault{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.m.ops.Inc()
	in.opsSeen++
	if in.killed {
		return fault{kind: KindKill}, true
	}
	if in.parted && strings.HasPrefix(op, "conn.") {
		return fault{kind: KindPartition}, true
	}
	var hit *Rule
	for i := range in.rules {
		r := &in.rules[i]
		if r.Op != "" && r.Op != op {
			continue
		}
		in.counts[i]++
		n := in.counts[i]
		fired := r.selectorless() ||
			(r.Every > 0 && n%int64(r.Every) == 0) ||
			(r.Nth > 0 && n == int64(r.Nth)) ||
			(r.Prob > 0 && in.rng.Float64() < r.Prob)
		if fired && hit == nil {
			hit = r
		}
	}
	if hit == nil {
		return fault{}, false
	}
	switch hit.Kind {
	case KindErr:
		in.m.errors.Inc()
	case KindDrop:
		in.m.drops.Inc()
	case KindSlow:
		in.m.slow.Inc()
		in.m.delayNS.Add(hit.Delay.Nanoseconds())
	case KindPartial:
		in.m.partials.Inc()
	case KindCorrupt:
		in.m.corruptions.Inc()
	case KindKill:
		in.m.kills.Inc()
		in.killed = true
	case KindPartition:
		in.m.partitions.Inc()
		in.parted = true
	}
	mask := hit.Xor
	if hit.Kind == KindCorrupt && mask == 0 {
		mask = 0xff
	}
	return fault{kind: hit.Kind, delay: hit.Delay, xor: mask}, true
}

// Killed reports whether a KindKill rule has fired: the simulated process
// is dead and every operation fails until Reset.
func (in *Injector) Killed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.killed
}

// Partitioned reports whether a KindPartition rule has fired: connection
// ops blackhole until Reset or SetPartitioned(false).
func (in *Injector) Partitioned() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.parted
}

// SetPartitioned sets or clears the partitioned state directly, so tests
// can partition and heal a node without routing through a rule. Healing
// does not resurrect connections that already blackholed traffic — their
// streams are desynchronized — but new connections pass cleanly.
func (in *Injector) SetPartitioned(on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.parted = on
}

// Reset clears the killed state, the op count, and all rule counters,
// restarting the injector's op sequence from zero (the rng is NOT reseeded;
// prob rules continue their stream). Crash tests use it between attempts.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.killed = false
	in.parted = false
	in.opsSeen = 0
	for i := range in.counts {
		in.counts[i] = 0
	}
}

// Ops returns the number of operations observed while armed since the last
// Reset — crash-matrix tests use it to size their kill-point sweep.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.opsSeen
}
