package faultfs

import (
	"net"
	"sync"
)

// NodeListener wraps a net.Listener so a whole node can be killed or
// partitioned as a unit — the listener-level counterpart of WrapConn.
// Node-level fault matrices use it to take a storage node off the network
// mid-call:
//
//   - Kill closes the listener AND every live accepted connection with no
//     drain, like a process receiving SIGKILL: in-flight requests are torn
//     mid-frame and new dials are refused.
//   - Partition (via an optional injector) keeps the node accepting but
//     blackholes all traffic, so clients hit their deadlines instead of a
//     connection-refused.
//
// Every accepted connection is tracked until it closes; when an injector
// is supplied, accepted connections are additionally wrapped with its
// faults (WrapConn).
type NodeListener struct {
	ln net.Listener
	in *Injector // optional; nil means no per-conn injection

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	dead  bool
}

// WrapNodeListener tracks ln's accepted connections for whole-node kill.
// in may be nil; when set, accepted connections inject its faults.
func WrapNodeListener(ln net.Listener, in *Injector) *NodeListener {
	return &NodeListener{ln: ln, in: in, conns: make(map[net.Conn]struct{})}
}

var _ net.Listener = (*NodeListener)(nil)

// Accept implements net.Listener, registering the connection for Kill.
func (l *NodeListener) Accept() (net.Conn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		conn.Close()
		return nil, net.ErrClosed
	}
	l.conns[conn] = struct{}{}
	l.mu.Unlock()
	var wrapped net.Conn = conn
	if l.in != nil {
		wrapped = WrapConn(conn, l.in)
	}
	return &trackedConn{Conn: wrapped, raw: conn, l: l}, nil
}

// Close implements net.Listener: it stops accepting but leaves live
// connections alone (a graceful stop; contrast Kill).
func (l *NodeListener) Close() error { return l.ln.Close() }

// Addr implements net.Listener.
func (l *NodeListener) Addr() net.Addr { return l.ln.Addr() }

// Kill hard-stops the node: the listener closes and every live accepted
// connection is severed immediately, with no drain. Safe to call more
// than once.
func (l *NodeListener) Kill() {
	l.mu.Lock()
	l.dead = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	clear(l.conns)
	l.mu.Unlock()
	l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// Killed reports whether Kill has run.
func (l *NodeListener) Killed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

// ConnCount returns the number of live accepted connections, for tests
// that want to kill mid-call only when a call can be in flight.
func (l *NodeListener) ConnCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.conns)
}

// trackedConn unregisters itself from the listener when closed, so Kill
// only severs connections that are actually live.
type trackedConn struct {
	net.Conn
	raw net.Conn // the unwrapped conn registered with the listener
	l   *NodeListener
}

func (c *trackedConn) Close() error {
	c.l.mu.Lock()
	delete(c.l.conns, c.raw)
	c.l.mu.Unlock()
	return c.Conn.Close()
}
