package blockfs

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func smallDev() device.Device {
	return device.Device{
		Name:     "test-dev",
		ReadBW:   100 * device.MB,
		WriteBW:  50 * device.MB,
		SeekSec:  0.001,
		Capacity: 64 * device.MB,
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New("t", smallDev(), nil)
	data := bytes.Repeat([]byte("blockfs!"), 40000) // 320 KB, spans blocks
	if err := vfs.WriteFile(fs, "/traj.xtc", data); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/traj.xtc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
	}
	info, err := fs.Stat("/traj.xtc")
	if err != nil || info.Size != int64(len(data)) {
		t.Errorf("Stat = %+v, %v", info, err)
	}
}

func TestTimeCharging(t *testing.T) {
	env := sim.NewEnv()
	fs := New("ssd", smallDev(), env)
	data := make([]byte, 10*device.MB)
	if err := vfs.WriteFile(fs, "/f", data); err != nil {
		t.Fatal(err)
	}
	// Write: 1 seek + 10MB / 50MBps = 0.201s
	wantW := 0.001 + 10.0/50
	if got := env.Profile.Get("io.write.ssd"); math.Abs(got-wantW) > 1e-9 {
		t.Errorf("write charge = %v, want %v", got, wantW)
	}
	if _, err := vfs.ReadFile(fs, "/f"); err != nil {
		t.Fatal(err)
	}
	// Read happens in one io.ReadFull call: 1 seek + 10MB / 100MBps.
	wantR := 0.001 + 10.0/100
	if got := env.Profile.Get("io.read.ssd"); math.Abs(got-wantR) > 1e-9 {
		t.Errorf("read charge = %v, want %v", got, wantR)
	}
	if math.Abs(env.Clock.Now()-(wantW+wantR)) > 1e-9 {
		t.Errorf("clock = %v", env.Clock.Now())
	}
	st := fs.StatsSnapshot()
	if st.BytesWritten != int64(len(data)) || st.BytesRead != int64(len(data)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoSpace(t *testing.T) {
	dev := smallDev()
	dev.Capacity = 3 * BlockSize
	fs := New("tiny", dev, nil)
	f, err := fs.Create("/big")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 2*BlockSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 2*BlockSize)); !errors.Is(err, ErrNoSpace) {
		t.Errorf("err = %v, want ErrNoSpace", err)
	}
}

// TestNoSpaceTypedAndLeakFree pins the overfill contract: the error is the
// typed vfs.ErrNoSpace (so upper layers can branch on it across the RPC
// boundary), the failed write releases every block it grabbed, and the
// file's prior contents stay intact.
func TestNoSpaceTypedAndLeakFree(t *testing.T) {
	dev := smallDev()
	dev.Capacity = 3 * BlockSize
	fs := New("tiny", dev, nil)
	f, err := fs.Create("/big")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	free := fs.FreeBytes()
	_, err = f.Write(make([]byte, 3*BlockSize))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("err = %v does not unwrap to vfs.ErrNoSpace", err)
	}
	if got := fs.FreeBytes(); got != free {
		t.Fatalf("failed write leaked blocks: free %d -> %d", free, got)
	}
	if f.Size() != BlockSize {
		t.Fatalf("file size %d after failed write, want %d", f.Size(), BlockSize)
	}
}

func TestSpaceReclaimedOnRemove(t *testing.T) {
	dev := smallDev()
	dev.Capacity = 4 * BlockSize
	fs := New("tiny", dev, nil)
	for i := 0; i < 5; i++ {
		if err := vfs.WriteFile(fs, "/f", make([]byte, 3*BlockSize)); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if err := fs.Remove("/f"); err != nil {
			t.Fatal(err)
		}
	}
	if free := fs.FreeBytes(); free != 4*BlockSize {
		t.Errorf("FreeBytes = %d, want %d", free, 4*BlockSize)
	}
}

func TestCreateTruncatesAndReclaims(t *testing.T) {
	dev := smallDev()
	dev.Capacity = 4 * BlockSize
	fs := New("tiny", dev, nil)
	for i := 0; i < 5; i++ {
		if err := vfs.WriteFile(fs, "/f", make([]byte, 3*BlockSize)); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	got, err := vfs.ReadFile(fs, "/f")
	if err != nil || len(got) != 3*BlockSize {
		t.Errorf("read %d bytes, %v", len(got), err)
	}
}

func TestAllocatorCoalescing(t *testing.T) {
	a := newAllocator(100)
	e1 := a.alloc(30)
	e2 := a.alloc(30)
	e3 := a.alloc(40)
	if a.freeBlocks() != 0 {
		t.Fatalf("free = %d", a.freeBlocks())
	}
	// Release middle, then neighbors; must coalesce back to one extent.
	a.release(e2)
	a.release(e1)
	a.release(e3)
	if len(a.free) != 1 || a.free[0] != (extent{0, 100}) {
		t.Errorf("free list = %+v", a.free)
	}
}

func TestAllocatorFirstFitFragmentation(t *testing.T) {
	a := newAllocator(10)
	e1 := a.alloc(4)
	_ = a.alloc(2)
	a.release(e1) // hole [0,4)
	got := a.alloc(6)
	// First fit grabs the hole even though it is short.
	if got != (extent{0, 4}) {
		t.Errorf("alloc = %+v, want the leading hole", got)
	}
}

func TestDirectoryOps(t *testing.T) {
	fs := New("t", smallDev(), nil)
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/a/b/c/x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/a/b")
	if err != nil || len(entries) != 1 || entries[0].Name != "c" || !entries[0].IsDir {
		t.Errorf("entries = %+v, %v", entries, err)
	}
	if err := fs.Remove("/a/b"); err == nil {
		t.Error("removing non-empty dir should fail")
	}
	if _, err := fs.Create("/missing/file"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("create without parent: %v", err)
	}
}

func TestReadAtAcrossExtents(t *testing.T) {
	fs := New("t", smallDev(), nil)
	data := make([]byte, 3*BlockSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := vfs.WriteFile(fs, "/f", data); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 100)
	off := int64(BlockSize - 50) // straddles a block boundary
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != data[off+int64(i)] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if _, err := f.ReadAt(buf, int64(len(data)+5)); err != io.EOF {
		t.Errorf("past-end ReadAt: %v", err)
	}
}

func TestQuickAgainstMemFS(t *testing.T) {
	// blockfs must behave identically to the in-memory reference FS for
	// random write/read workloads.
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bfs := New("q", smallDev(), nil)
		mfs := vfs.NewMemFS()
		names := []string{"/a", "/b", "/c"}
		for op := 0; op < int(nOps)%24+1; op++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(3) {
			case 0: // write
				data := make([]byte, rng.Intn(3*BlockSize))
				rng.Read(data)
				e1 := vfs.WriteFile(bfs, name, data)
				e2 := vfs.WriteFile(mfs, name, data)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			case 1: // read + compare
				b1, e1 := vfs.ReadFile(bfs, name)
				b2, e2 := vfs.ReadFile(mfs, name)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
				if e1 == nil && !bytes.Equal(b1, b2) {
					return false
				}
			case 2: // remove
				e1 := bfs.Remove(name)
				e2 := mfs.Remove(name)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
