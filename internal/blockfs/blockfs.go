// Package blockfs implements a local file system over a simulated block
// device — the stand-in for the ext4 and XFS file systems in the paper's
// evaluation. File data lives in fixed-size blocks handed out by a real
// extent allocator, and every read and write charges modeled device time
// (seek + bandwidth) to the experiment's virtual clock.
package blockfs

import (
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// BlockSize is the allocation unit.
const BlockSize = 64 * 1024

// ErrNoSpace is returned when the device is full. It wraps vfs.ErrNoSpace so
// callers that only see the vfs interface (plfs dispatch, the tier planner)
// can match the condition without importing blockfs.
var ErrNoSpace = fmt.Errorf("blockfs: %w", vfs.ErrNoSpace)

// extent is a run of consecutive blocks [Start, Start+Count).
type extent struct {
	Start, Count int64
}

// allocator hands out block extents first-fit from a sorted free list.
type allocator struct {
	free   []extent // sorted by Start, non-adjacent
	blocks int64    // total blocks on the device
}

func newAllocator(blocks int64) *allocator {
	return &allocator{free: []extent{{0, blocks}}, blocks: blocks}
}

// alloc returns up to want blocks as a single extent (first fit, possibly
// shorter than want). It returns a zero extent when the device is full.
func (a *allocator) alloc(want int64) extent {
	for i := range a.free {
		e := &a.free[i]
		if e.Count == 0 {
			continue
		}
		got := want
		if got > e.Count {
			got = e.Count
		}
		out := extent{e.Start, got}
		e.Start += got
		e.Count -= got
		if e.Count == 0 {
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
		return out
	}
	return extent{}
}

// release returns an extent to the free list, coalescing neighbors.
func (a *allocator) release(e extent) {
	if e.Count == 0 {
		return
	}
	i := sort.Search(len(a.free), func(k int) bool { return a.free[k].Start >= e.Start })
	a.free = append(a.free[:i], append([]extent{e}, a.free[i:]...)...)
	// Coalesce around i.
	merged := a.free[:0]
	for _, f := range a.free {
		if n := len(merged); n > 0 && merged[n-1].Start+merged[n-1].Count == f.Start {
			merged[n-1].Count += f.Count
		} else {
			merged = append(merged, f)
		}
	}
	a.free = merged
}

// freeBlocks returns the number of unallocated blocks.
func (a *allocator) freeBlocks() int64 {
	var n int64
	for _, e := range a.free {
		n += e.Count
	}
	return n
}

// Stats reports cumulative I/O activity on the file system.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	ReadOps      int64
	WriteOps     int64
}

// FS is a device-timed local file system.
type FS struct {
	mu     sync.Mutex
	label  string
	dev    device.Device
	env    *sim.Env
	alloc  *allocator
	blocks map[int64][]byte // lazily materialized block payloads
	nodes  map[string]*inode
	stats  Stats
}

type inode struct {
	isDir   bool
	size    int64
	extents []extent
}

var _ vfs.FS = (*FS)(nil)

// New returns a file system labelled label (used in profile bucket names)
// over the given device model, charging time to env. A nil env disables
// time accounting (useful in unit tests of pure FS behavior).
func New(label string, dev device.Device, env *sim.Env) *FS {
	blocks := dev.Capacity / BlockSize
	if blocks <= 0 {
		panic(fmt.Sprintf("blockfs: device %q capacity %d too small", dev.Name, dev.Capacity))
	}
	return &FS{
		label:  label,
		dev:    dev,
		env:    env,
		alloc:  newAllocator(blocks),
		blocks: map[int64][]byte{},
		nodes:  map[string]*inode{"/": {isDir: true}},
	}
}

// Label returns the file system's display label.
func (s *FS) Label() string { return s.label }

// Device returns the underlying device model.
func (s *FS) Device() device.Device { return s.dev }

// StatsSnapshot returns cumulative I/O counters.
func (s *FS) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// FreeBytes returns the remaining capacity.
func (s *FS) FreeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alloc.freeBlocks() * BlockSize
}

func (s *FS) chargeRead(n int64, ops int) {
	s.stats.BytesRead += n
	s.stats.ReadOps += int64(ops)
	if s.env != nil {
		s.env.Charge("io.read."+s.label, s.dev.ReadTime(n, ops))
	}
}

func (s *FS) chargeWrite(n int64, ops int) {
	s.stats.BytesWritten += n
	s.stats.WriteOps += int64(ops)
	if s.env != nil {
		s.env.Charge("io.write."+s.label, s.dev.WriteTime(n, ops))
	}
}

// Create implements vfs.FS.
func (s *FS) Create(name string) (vfs.File, error) {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := path.Dir(name)
	dn, ok := s.nodes[dir]
	if !ok {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, dir)
	}
	if !dn.isDir {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotDir, dir)
	}
	if n, ok := s.nodes[name]; ok {
		if n.isDir {
			return nil, fmt.Errorf("%w: %s", vfs.ErrIsDir, name)
		}
		s.truncateLocked(n)
	}
	n := &inode{}
	s.nodes[name] = n
	return &file{fs: s, name: name, node: n, writable: true, lastReadEnd: -1, lastWriteEnd: -1}, nil
}

func (s *FS) truncateLocked(n *inode) {
	for _, e := range n.extents {
		s.alloc.release(e)
		for b := e.Start; b < e.Start+e.Count; b++ {
			delete(s.blocks, b)
		}
	}
	n.extents = nil
	n.size = 0
}

// Open implements vfs.FS.
func (s *FS) Open(name string) (vfs.File, error) {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	if n.isDir {
		return nil, fmt.Errorf("%w: %s", vfs.ErrIsDir, name)
	}
	return &file{fs: s, name: name, node: n, lastReadEnd: -1, lastWriteEnd: -1}, nil
}

// Stat implements vfs.FS.
func (s *FS) Stat(name string) (vfs.FileInfo, error) {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[name]
	if !ok {
		return vfs.FileInfo{}, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	return vfs.FileInfo{Name: path.Base(name), Size: n.size, IsDir: n.isDir}, nil
}

// ReadDir implements vfs.FS.
func (s *FS) ReadDir(name string) ([]vfs.FileInfo, error) {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	if !n.isDir {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotDir, name)
	}
	prefix := name
	if prefix != "/" {
		prefix += "/"
	}
	var out []vfs.FileInfo
	for p, node := range s.nodes {
		if p == name || !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if strings.Contains(rest, "/") {
			continue
		}
		out = append(out, vfs.FileInfo{Name: rest, Size: node.size, IsDir: node.isDir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// MkdirAll implements vfs.FS.
func (s *FS) MkdirAll(name string) error {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	segs := strings.Split(strings.TrimPrefix(name, "/"), "/")
	cur := ""
	for _, seg := range segs {
		if seg == "" {
			continue
		}
		cur += "/" + seg
		if n, ok := s.nodes[cur]; ok {
			if !n.isDir {
				return fmt.Errorf("%w: %s", vfs.ErrNotDir, cur)
			}
			continue
		}
		s.nodes[cur] = &inode{isDir: true}
	}
	return nil
}

// Remove implements vfs.FS.
func (s *FS) Remove(name string) error {
	name = vfs.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	if n.isDir {
		prefix := name + "/"
		for p := range s.nodes {
			if strings.HasPrefix(p, prefix) {
				return fmt.Errorf("blockfs: directory %s not empty", name)
			}
		}
	} else {
		s.truncateLocked(n)
	}
	delete(s.nodes, name)
	return nil
}

// Rename implements vfs.FS. A rename only rewires the directory tree; the
// file's extents stay where they are, so no device time is charged beyond
// what a metadata update would cost (negligible at this model's fidelity).
func (s *FS) Rename(oldname, newname string) error {
	oldname = vfs.Clean(oldname)
	newname = vfs.Clean(newname)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, oldname)
	}
	if oldname == newname {
		return nil
	}
	dir := path.Dir(newname)
	dn, ok := s.nodes[dir]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, dir)
	}
	if !dn.isDir {
		return fmt.Errorf("%w: %s", vfs.ErrNotDir, dir)
	}
	if dst, ok := s.nodes[newname]; ok {
		if dst.isDir != n.isDir {
			if dst.isDir {
				return fmt.Errorf("%w: %s", vfs.ErrIsDir, newname)
			}
			return fmt.Errorf("%w: %s", vfs.ErrNotDir, newname)
		}
		if dst.isDir {
			prefix := newname + "/"
			for p := range s.nodes {
				if strings.HasPrefix(p, prefix) {
					return fmt.Errorf("blockfs: directory %s not empty", newname)
				}
			}
		} else {
			s.truncateLocked(dst)
		}
	}
	if n.isDir {
		if strings.HasPrefix(newname, oldname+"/") {
			return fmt.Errorf("blockfs: cannot move %s into itself", oldname)
		}
		prefix := oldname + "/"
		moved := make(map[string]*inode)
		for p, node := range s.nodes {
			if strings.HasPrefix(p, prefix) {
				moved[newname+"/"+p[len(prefix):]] = node
				delete(s.nodes, p)
			}
		}
		for p, node := range moved {
			s.nodes[p] = node
		}
	}
	delete(s.nodes, oldname)
	s.nodes[newname] = n
	return nil
}

// file is an open handle.
type file struct {
	fs       *FS
	name     string
	node     *inode
	off      int64
	writable bool
	closed   bool
	// lastReadEnd/lastWriteEnd track sequential access: a read or write
	// continuing exactly where the previous one ended does not pay another
	// positioning charge (the device head / NAND pipeline is already there).
	lastReadEnd  int64
	lastWriteEnd int64
}

// seqOps returns the op count to charge for an access at off: zero when it
// continues exactly where the previous access ended, one otherwise.
func seqOps(off, lastEnd int64) int {
	if off == lastEnd {
		return 0
	}
	return 1
}

func (f *file) Name() string { return f.name }

func (f *file) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.node.size
}

// blockAt maps a byte offset to (device block, offset within block), or
// ok=false when the offset is beyond the allocated extents.
func (f *file) blockAt(off int64) (blk int64, inBlk int64, ok bool) {
	idx := off / BlockSize
	for _, e := range f.node.extents {
		if idx < e.Count {
			return e.Start + idx, off % BlockSize, true
		}
		idx -= e.Count
	}
	return 0, 0, false
}

func (f *file) readAtLocked(p []byte, off int64) (int, error) {
	if off >= f.node.size {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && off < f.node.size {
		blk, in, ok := f.blockAt(off)
		if !ok {
			return n, fmt.Errorf("blockfs: %s: offset %d beyond extents", f.name, off)
		}
		limit := BlockSize - in
		if rem := f.node.size - off; rem < limit {
			limit = rem
		}
		if rem := int64(len(p) - n); rem < limit {
			limit = rem
		}
		payload := f.fs.blocks[blk]
		for i := int64(0); i < limit; i++ {
			if payload == nil {
				p[n+int(i)] = 0
			} else {
				p[n+int(i)] = payload[in+i]
			}
		}
		n += int(limit)
		off += limit
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *file) Read(p []byte) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	start := f.off
	n, err := f.readAtLocked(p, f.off)
	f.off += int64(n)
	if n > 0 {
		f.fs.chargeRead(int64(n), seqOps(start, f.lastReadEnd))
		f.lastReadEnd = start + int64(n)
	}
	return n, err
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("blockfs: negative offset %d", off)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	n, err := f.readAtLocked(p, off)
	if n > 0 {
		f.fs.chargeRead(int64(n), seqOps(off, f.lastReadEnd))
		f.lastReadEnd = off + int64(n)
	}
	return n, err
}

func (f *file) Write(p []byte) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	if !f.writable {
		return 0, fmt.Errorf("blockfs: %s opened read-only", f.name)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	end := f.off + int64(len(p))
	// Grow extents to cover [0, end).
	have := int64(0)
	for _, e := range f.node.extents {
		have += e.Count * BlockSize
	}
	grown := len(f.node.extents)
	for have < end {
		need := (end - have + BlockSize - 1) / BlockSize
		e := f.fs.alloc.alloc(need)
		if e.Count == 0 {
			// Release what this write grabbed so a failed write never
			// silently consumes capacity the file will not use.
			for _, ge := range f.node.extents[grown:] {
				f.fs.alloc.release(ge)
			}
			f.node.extents = f.node.extents[:grown]
			return 0, fmt.Errorf("%w (%s: need %d blocks)", ErrNoSpace, f.fs.label, need)
		}
		f.node.extents = append(f.node.extents, e)
		have += e.Count * BlockSize
	}
	// Copy payload block by block.
	n := 0
	off := f.off
	for n < len(p) {
		blk, in, ok := f.blockAt(off)
		if !ok {
			return n, fmt.Errorf("blockfs: %s: lost extent at offset %d", f.name, off)
		}
		payload := f.fs.blocks[blk]
		if payload == nil {
			payload = make([]byte, BlockSize)
			f.fs.blocks[blk] = payload
		}
		c := copy(payload[in:], p[n:])
		n += c
		off += int64(c)
	}
	start := f.off
	f.off = end
	if end > f.node.size {
		f.node.size = end
	}
	f.fs.chargeWrite(int64(len(p)), seqOps(start, f.lastWriteEnd))
	f.lastWriteEnd = end
	return len(p), nil
}

func (f *file) Close() error {
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	return nil
}
