package mdsim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/gpcr"
	"repro/internal/pdb"
	"repro/internal/xtc"
)

func buildSmall(t *testing.T) (*gpcr.System, []pdb.Category) {
	t.Helper()
	sys, err := gpcr.Scaled(100).Build()
	if err != nil {
		t.Fatal(err)
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	return sys, cats
}

func TestNewValidation(t *testing.T) {
	if _, err := New(make([]xtc.Vec3, 3), make([]pdb.Category, 2), 10, DefaultParams()); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := New(nil, nil, 0, DefaultParams()); err == nil {
		t.Error("zero box should fail")
	}
}

func TestDeterministic(t *testing.T) {
	sys, cats := buildSmall(t)
	s1, err := New(sys.Coords, cats, sys.Box, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(sys.Coords, cats, sys.Box, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		f1, f2 := s1.Step(), s2.Step()
		for i := range f1.Coords {
			if f1.Coords[i] != f2.Coords[i] {
				t.Fatalf("frame %d atom %d differs", k, i)
			}
		}
	}
}

func TestStepMetadata(t *testing.T) {
	sys, cats := buildSmall(t)
	p := DefaultParams()
	s, err := New(sys.Coords, cats, sys.Box, p)
	if err != nil {
		t.Fatal(err)
	}
	f1 := s.Step()
	f2 := s.Step()
	if f1.Step != 1 || f2.Step != 2 {
		t.Errorf("steps = %d, %d", f1.Step, f2.Step)
	}
	if f2.Time != 2*p.DT {
		t.Errorf("time = %g, want %g", f2.Time, 2*p.DT)
	}
	if f1.Box[0] != sys.Box {
		t.Errorf("box = %g", f1.Box[0])
	}
	// Frames own their coordinates.
	f1.Coords[0][0] = 1e9
	if f2.Coords[0][0] == 1e9 {
		t.Error("frames share coordinate storage")
	}
}

func TestFreeSpeciesStayInBox(t *testing.T) {
	sys, cats := buildSmall(t)
	s, err := New(sys.Coords, cats, sys.Box, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var last *xtc.Frame
	for k := 0; k < 50; k++ {
		last = s.Step()
	}
	for i, p := range last.Coords {
		if cats[i] != pdb.Water && cats[i] != pdb.Ion {
			continue // tethered molecules may extend past the box edge
		}
		for d := 0; d < 3; d++ {
			if p[d] < 0 || p[d] >= sys.Box {
				t.Fatalf("atom %d (%v) dim %d = %g escaped box [0,%g)", i, cats[i], d, p[d], sys.Box)
			}
		}
	}
}

func TestTetheredMoleculesNeverWrap(t *testing.T) {
	// A protein atom near the box edge must drift smoothly, never jump to
	// the far side (the artifact that inflates RMSD in analysis).
	sys, cats := buildSmall(t)
	s, err := New(sys.Coords, cats, sys.Box, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	prev := append([]xtc.Vec3(nil), sys.Coords...)
	for k := 0; k < 100; k++ {
		f := s.Step()
		for i := range f.Coords {
			if cats[i] == pdb.Water || cats[i] == pdb.Ion {
				continue
			}
			for d := 0; d < 3; d++ {
				jump := math.Abs(float64(f.Coords[i][d] - prev[i][d]))
				if jump > float64(sys.Box)/2 {
					t.Fatalf("frame %d atom %d (%v): wrapped jump of %g nm", k, i, cats[i], jump)
				}
			}
		}
		prev = f.Coords
	}
}

func TestProteinTetheredWaterDiffuses(t *testing.T) {
	sys, cats := buildSmall(t)
	s, err := New(sys.Coords, cats, sys.Box, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var last *xtc.Frame
	for k := 0; k < 200; k++ {
		last = s.Step()
	}
	drift := func(cat pdb.Category) float64 {
		var sum float64
		var n int
		for i := range last.Coords {
			if cats[i] != cat {
				continue
			}
			// Minimum-image displacement from the initial position.
			var d2 float64
			for d := 0; d < 3; d++ {
				dd := float64(last.Coords[i][d] - sys.Coords[i][d])
				box := float64(sys.Box)
				if dd > box/2 {
					dd -= box
				}
				if dd < -box/2 {
					dd += box
				}
				d2 += dd * dd
			}
			sum += math.Sqrt(d2)
			n++
		}
		if n == 0 {
			t.Fatalf("no atoms of category %v", cat)
		}
		return sum / float64(n)
	}
	protein, water := drift(pdb.Protein), drift(pdb.Water)
	t.Logf("mean drift after 200 frames: protein=%.3f nm, water=%.3f nm", protein, water)
	if water < protein*2 {
		t.Errorf("water drift (%.3f) should far exceed tethered protein drift (%.3f)", water, protein)
	}
	if protein > 0.5 {
		t.Errorf("protein drift %.3f nm too large for a tethered globule", protein)
	}
}

func TestWriteTrajectoryStreamsDecodableFrames(t *testing.T) {
	sys, cats := buildSmall(t)
	s, err := New(sys.Coords, cats, sys.Box, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := xtc.NewWriter(&buf)
	if err := s.WriteTrajectory(w, 8); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != 8 {
		t.Errorf("frames = %d", w.Frames())
	}
	frames, err := xtc.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 8 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	for i, f := range frames {
		if int(f.Step) != i+1 {
			t.Errorf("frame %d step = %d", i, f.Step)
		}
		if f.NAtoms() != len(sys.Coords) {
			t.Errorf("frame %d natoms = %d", i, f.NAtoms())
		}
	}
}

func TestGenerate(t *testing.T) {
	sys, cats := buildSmall(t)
	s, err := New(sys.Coords, cats, sys.Box, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	frames := s.Generate(3)
	if len(frames) != 3 || frames[2].Step != 3 {
		t.Errorf("Generate(3) = %d frames, last step %d", len(frames), frames[len(frames)-1].Step)
	}
}
