// Package mdsim generates molecular-dynamics-like trajectories for a fixed
// set of atoms. It is not a physical integrator; it produces motion with
// the statistical character the XTC compressor and the paper's workload
// care about: proteins and ligands jitter around tethered positions, lipids
// diffuse laterally within a bilayer, and water and ions diffuse freely
// with periodic wrapping.
package mdsim

import (
	"fmt"
	"math/rand"

	"repro/internal/pdb"
	"repro/internal/xtc"
)

// Params controls per-category motion amplitudes (nm per frame).
type Params struct {
	DT           float32 // simulated time per frame, ps
	ProteinSigma float64
	LigandSigma  float64
	LipidSigma   float64
	WaterSigma   float64
	IonSigma     float64
	Tether       float64 // restoring pull toward reference for tethered atoms
	Seed         int64
}

// DefaultParams returns motion amplitudes typical of a 10 ps frame spacing.
func DefaultParams() Params {
	return Params{
		DT:           10,
		ProteinSigma: 0.015,
		LigandSigma:  0.02,
		LipidSigma:   0.025,
		WaterSigma:   0.04,
		IonSigma:     0.05,
		Tether:       0.1,
		Seed:         7,
	}
}

func (p Params) sigmaFor(c pdb.Category) float64 {
	switch c {
	case pdb.Protein:
		return p.ProteinSigma
	case pdb.Ligand:
		return p.LigandSigma
	case pdb.Lipid:
		return p.LipidSigma
	case pdb.Water:
		return p.WaterSigma
	case pdb.Ion:
		return p.IonSigma
	default:
		return p.WaterSigma
	}
}

// Simulator advances a trajectory frame by frame.
type Simulator struct {
	params Params
	cats   []pdb.Category
	ref    []xtc.Vec3 // tether reference (initial coordinates)
	pos    []xtc.Vec3
	box    float32
	step   int32
	rng    *rand.Rand
}

// New returns a Simulator over the given initial coordinates. cats must be
// the per-atom categories in the same order. box is the cubic box edge, nm.
func New(coords []xtc.Vec3, cats []pdb.Category, box float32, params Params) (*Simulator, error) {
	if len(coords) != len(cats) {
		return nil, fmt.Errorf("mdsim: %d coords but %d categories", len(coords), len(cats))
	}
	if box <= 0 {
		return nil, fmt.Errorf("mdsim: non-positive box %g", box)
	}
	s := &Simulator{
		params: params,
		cats:   cats,
		ref:    append([]xtc.Vec3(nil), coords...),
		pos:    append([]xtc.Vec3(nil), coords...),
		box:    box,
		rng:    rand.New(rand.NewSource(params.Seed)),
	}
	return s, nil
}

// NAtoms returns the atom count.
func (s *Simulator) NAtoms() int { return len(s.pos) }

func (s *Simulator) wrap(v float32) float32 {
	for v < 0 {
		v += s.box
	}
	for v >= s.box {
		v -= s.box
	}
	return v
}

// Step advances one frame and returns it. The returned frame's coordinate
// slice is freshly allocated and owned by the caller.
//
// Only freely diffusing species (water, ions) wrap at the periodic
// boundary; tethered molecules are kept whole even if they extend past the
// box edge, the way trajectory tools present molecules to analysis.
func (s *Simulator) Step() *xtc.Frame {
	s.step++
	for i := range s.pos {
		cat := s.cats[i]
		sigma := s.params.sigmaFor(cat)
		tethered := cat == pdb.Protein || cat == pdb.Ligand
		for d := 0; d < 3; d++ {
			v := float64(s.pos[i][d]) + s.rng.NormFloat64()*sigma
			wrap := true
			if tethered {
				v += (float64(s.ref[i][d]) - v) * s.params.Tether
				wrap = false
			} else if cat == pdb.Lipid {
				if d == 2 {
					// Lipids stay in their leaflet: tether z only.
					v += (float64(s.ref[i][d]) - v) * s.params.Tether
				}
				wrap = false
			}
			if wrap {
				s.pos[i][d] = s.wrap(float32(v))
			} else {
				s.pos[i][d] = float32(v)
			}
		}
	}
	f := &xtc.Frame{
		Step:      s.step,
		Time:      float32(s.step) * s.params.DT,
		Coords:    append([]xtc.Vec3(nil), s.pos...),
		Precision: xtc.DefaultPrecision,
	}
	f.Box[0], f.Box[4], f.Box[8] = s.box, s.box, s.box
	return f
}

// Generate returns the next n frames.
func (s *Simulator) Generate(n int) []*xtc.Frame {
	frames := make([]*xtc.Frame, n)
	for i := range frames {
		frames[i] = s.Step()
	}
	return frames
}

// WriteTrajectory streams n frames into w without retaining them,
// suitable for producing large trajectory files.
func (s *Simulator) WriteTrajectory(w *xtc.Writer, n int) error {
	for i := 0; i < n; i++ {
		if err := w.WriteFrame(s.Step()); err != nil {
			return fmt.Errorf("mdsim: frame %d: %w", i, err)
		}
	}
	return nil
}
