package vmd

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/xtc"
)

// playbackFixture stages an ingested dataset and returns random-access
// sources for the traditional compressed path and the ADA protein path.
func playbackFixture(t *testing.T, frames int) (*fixture, *xtc.RandomAccessReader, *xtc.Index) {
	t.Helper()
	fx := newFixture(t, 300, frames, nil)
	idx, err := xtc.BuildIndex(bytes.NewReader(fx.traj), int64(len(fx.traj)))
	if err != nil {
		t.Fatal(err)
	}
	return fx, xtc.NewRandomAccessReader(bytes.NewReader(fx.traj), idx), idx
}

func TestPatterns(t *testing.T) {
	if got := Sequential(3); len(got) != 3 || got[2] != 2 {
		t.Errorf("Sequential = %v", got)
	}
	baf := BackAndForth(3, 2)
	want := []int{0, 1, 2, 2, 1, 0}
	if len(baf) != len(want) {
		t.Fatalf("BackAndForth = %v", baf)
	}
	for i := range want {
		if baf[i] != want[i] {
			t.Errorf("BackAndForth = %v, want %v", baf, want)
		}
	}
	ra := RandomAccess(10, 50, 1)
	if len(ra) != 50 {
		t.Fatalf("RandomAccess len = %d", len(ra))
	}
	for _, i := range ra {
		if i < 0 || i >= 10 {
			t.Fatalf("RandomAccess out of range: %d", i)
		}
	}
	// Deterministic per seed.
	rb := RandomAccess(10, 50, 1)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("RandomAccess not deterministic")
		}
	}
}

func TestCacheHitsAndEviction(t *testing.T) {
	_, src, _ := playbackFixture(t, 8)
	s := NewSession(nil, 0, ComputeCost{})
	// Budget for exactly 3 frames.
	f0, err := src.ReadFrameAt(0)
	if err != nil {
		t.Fatal(err)
	}
	budget := 3 * xtc.RawFrameSize(f0.NAtoms())
	cache := s.NewFrameCache(src, budget)

	// Touch 0,1,2 (3 misses), re-touch them (3 hits), then 3 evicts the LRU.
	for _, i := range []int{0, 1, 2} {
		if _, err := cache.Frame(i); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{0, 1, 2} {
		if _, err := cache.Frame(i); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Hits != 3 || st.Misses != 3 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := cache.Frame(3); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Evictions != 1 || cache.Len() != 3 {
		t.Errorf("after eviction: %+v len=%d", st, cache.Len())
	}
	// Frame 0 was the LRU (oldest untouched); it must miss now.
	if _, err := cache.Frame(0); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 5 {
		t.Errorf("misses = %d, want 5", got)
	}
	// Session memory is accounted and released.
	if s.Mem.Used() == 0 {
		t.Error("cache frames not accounted")
	}
	cache.Release()
	if s.Mem.Used() != 0 {
		t.Errorf("memory after Release = %d", s.Mem.Used())
	}
}

func TestCacheBudgetLargerThanWorkingSet(t *testing.T) {
	_, src, _ := playbackFixture(t, 6)
	s := NewSession(nil, 0, ComputeCost{})
	cache := s.NewFrameCache(src, 1<<30)
	pattern := BackAndForth(6, 4)
	st, err := s.Play(cache, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesShown != len(pattern) {
		t.Errorf("shown = %d", st.FramesShown)
	}
	// Only the first sweep misses.
	if st.Cache.Misses != 6 {
		t.Errorf("misses = %d, want 6", st.Cache.Misses)
	}
	if st.Cache.HitRate() < 0.7 {
		t.Errorf("hit rate = %.2f", st.Cache.HitRate())
	}
}

func TestCacheThrashingUnderTightBudget(t *testing.T) {
	_, src, _ := playbackFixture(t, 8)
	s := NewSession(nil, 0, ComputeCost{})
	f0, _ := src.ReadFrameAt(0)
	cache := s.NewFrameCache(src, 2*xtc.RawFrameSize(f0.NAtoms()))
	st, err := s.Play(cache, BackAndForth(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Back-and-forth over a working set 4x the cache: nearly every access
	// at the far ends misses (the paper's "low data hit rate").
	if st.Cache.HitRate() > 0.4 {
		t.Errorf("hit rate = %.2f, expected thrashing", st.Cache.HitRate())
	}
}

func TestADASubsetPlaybackFitsWhereFullFramesThrash(t *testing.T) {
	// The §2.1 motivation quantified: with the same memory budget, ADA's
	// protein-only frames (≈42% the size) fit entirely while full frames
	// thrash.
	fx := newFixture(t, 300, 10, nil)
	idx, err := xtc.BuildIndex(bytes.NewReader(fx.rawTraj), int64(len(fx.rawTraj)))
	if err != nil {
		t.Fatal(err)
	}
	fullSrc := xtc.NewRandomAccessReader(bytes.NewReader(fx.rawTraj), idx)

	sub, err := fx.ada.OpenSubsetAt("/traj.xtc", core.TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	full0, _ := fullSrc.ReadFrameAt(0)
	budget := 5 * xtc.RawFrameSize(full0.NAtoms()) // half the full working set

	s := NewSession(nil, 0, ComputeCost{})
	fullCache := s.NewFrameCache(fullSrc, budget)
	fullStats, err := s.Play(fullCache, BackAndForth(10, 6))
	if err != nil {
		t.Fatal(err)
	}
	fullCache.Release()

	subCache := s.NewFrameCache(sub, budget)
	subStats, err := s.Play(subCache, BackAndForth(10, 6))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("same %d-byte budget: full frames hit rate %.2f, ADA protein %.2f",
		budget, fullStats.Cache.HitRate(), subStats.Cache.HitRate())
	if subStats.Cache.HitRate() <= fullStats.Cache.HitRate() {
		t.Errorf("ADA subset (%.2f) should out-hit full frames (%.2f)",
			subStats.Cache.HitRate(), fullStats.Cache.HitRate())
	}
	if subStats.Cache.Misses != 10 {
		t.Errorf("ADA subset misses = %d, want one cold pass", subStats.Cache.Misses)
	}
}

func TestPlayChargesRenderAndStalls(t *testing.T) {
	fx := newFixture(t, 300, 6, sim.NewEnv())
	_ = fx
	env := sim.NewEnv()
	s := NewSession(env, 0, ComputeCost{})
	idx, err := xtc.BuildIndex(bytes.NewReader(fx.traj), int64(len(fx.traj)))
	if err != nil {
		t.Fatal(err)
	}
	ra := xtc.NewRandomAccessReader(bytes.NewReader(fx.traj), idx)
	// Compressed source: every miss charges decompression -> stalls.
	src := s.ChargeDecompression(ra, idx)
	cache := s.NewFrameCache(src, 1<<30)
	st, err := s.Play(cache, BackAndForth(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.StallSec <= 0 {
		t.Error("compressed playback should stall on misses")
	}
	if st.RenderSec <= 0 || env.Profile.Get("compute.cpu.render") <= 0 {
		t.Error("render not charged")
	}
	if env.Profile.Get("compute.cpu.decompress") <= 0 {
		t.Error("decompress not charged")
	}
	// Second run over a warm cache: no new stalls.
	st2, err := s.Play(cache, Sequential(6))
	if err != nil {
		t.Fatal(err)
	}
	if st2.StallSec != 0 || st2.Cache.Misses != st.Cache.Misses {
		t.Errorf("warm run stalled: %+v", st2)
	}
}
