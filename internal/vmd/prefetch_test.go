package vmd

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/xtc"
)

// walkUsedBytes recomputes the cache's held bytes the slow way, as the
// original usedBytes did.
func walkUsedBytes(c *FrameCache) int64 {
	var n int64
	for e := c.lru.Front(); e != nil; e = e.Next() {
		n += e.Value.(cacheEntry).bytes
	}
	return n
}

// TestFrameCacheUsedBytesCounter is the regression test for the running
// `used` counter: across misses, evictions, and a full release it must
// always equal the LRU walk.
func TestFrameCacheUsedBytesCounter(t *testing.T) {
	_, src, _ := playbackFixture(t, 8)
	s := NewSession(nil, 0, ComputeCost{})
	f0, err := src.ReadFrameAt(0)
	if err != nil {
		t.Fatal(err)
	}
	cache := s.NewFrameCache(src, 3*xtc.RawFrameSize(f0.NAtoms()))
	check := func(when string) {
		t.Helper()
		if got, want := cache.usedBytes(), walkUsedBytes(cache); got != want {
			t.Fatalf("%s: usedBytes = %d, walk = %d", when, got, want)
		}
	}
	check("empty")
	for _, i := range BackAndForth(8, 3) {
		if _, err := cache.Frame(i); err != nil {
			t.Fatal(err)
		}
		check("during playback")
	}
	if cache.Stats().Evictions == 0 {
		t.Fatal("fixture never evicted; counter path untested")
	}
	cache.Release()
	check("after release")
	if cache.usedBytes() != 0 {
		t.Errorf("released cache holds %d bytes", cache.usedBytes())
	}
}

// TestPrefetchSequentialAndBackAndForthReduceStalls is the decorator's
// headline property: predicted loads charge decompression concurrently, so
// the virtual stall time shrinks versus the undecorated compressed source.
func TestPrefetchSequentialAndBackAndForthReduceStalls(t *testing.T) {
	for _, tc := range []struct {
		name    string
		pattern func(frames int) []int
	}{
		{"sequential", func(n int) []int { return Sequential(n) }},
		{"back-and-forth", func(n int) []int { return BackAndForth(n, 3) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const frames = 8
			_, ra, idx := playbackFixture(t, frames)
			pattern := tc.pattern(frames)
			f0, err := ra.ReadFrameAt(0)
			if err != nil {
				t.Fatal(err)
			}
			tight := 3 * xtc.RawFrameSize(f0.NAtoms())

			run := func(prefetch bool) PlayStats {
				env := sim.NewEnv()
				s := NewSession(env, 0, ComputeCost{})
				var src FrameSource
				var pf *PrefetchSource
				if prefetch {
					pf = s.NewPrefetchSource(ra, idx, 2, 4)
					src = pf
				} else {
					src = s.ChargeDecompression(ra, idx)
				}
				cache := s.NewFrameCache(src, tight)
				st, err := s.Play(cache, pattern)
				if err != nil {
					t.Fatal(err)
				}
				if pf != nil {
					pf.Stop()
				}
				cache.Release()
				return st
			}

			plain := run(false)
			pre := run(true)
			if plain.StallSec <= 0 {
				t.Fatalf("undecorated playback did not stall (%.6f)", plain.StallSec)
			}
			if pre.StallSec >= plain.StallSec {
				t.Errorf("prefetch StallSec = %.6f, undecorated = %.6f; want reduction",
					pre.StallSec, plain.StallSec)
			}
			if pre.Cache.Misses != plain.Cache.Misses {
				t.Errorf("cache misses differ: prefetch %d vs plain %d (decorator must be transparent)",
					pre.Cache.Misses, plain.Cache.Misses)
			}
		})
	}
}

// TestPrefetchServesIdenticalFrames: the decorator must be a pure
// pass-through for frame content.
func TestPrefetchServesIdenticalFrames(t *testing.T) {
	const frames = 6
	_, ra, idx := playbackFixture(t, frames)
	s := NewSession(nil, 0, ComputeCost{})
	pf := s.NewPrefetchSource(ra, idx, 3, 4)
	defer pf.Stop()
	if pf.Frames() != frames {
		t.Fatalf("Frames() = %d, want %d", pf.Frames(), frames)
	}
	for _, i := range BackAndForth(frames, 2) {
		want, err := ra.ReadFrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pf.ReadFrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if got.NAtoms() != want.NAtoms() || got.Step != want.Step {
			t.Fatalf("frame %d header mismatch: got step %d/%d atoms, want %d/%d",
				i, got.Step, got.NAtoms(), want.Step, want.NAtoms())
		}
		for a := range want.Coords {
			if got.Coords[a] != want.Coords[a] {
				t.Fatalf("frame %d atom %d: %v != %v", i, a, got.Coords[a], want.Coords[a])
			}
		}
	}
	st := pf.Stats()
	if st.Hits == 0 {
		t.Error("sweep playback produced no prefetch hits")
	}
	if st.Issued == 0 {
		t.Error("no background decodes issued")
	}
}

// TestPrefetchDeterministicStats: hit/miss/issue counts depend only on the
// access sequence, not worker scheduling.
func TestPrefetchDeterministicStats(t *testing.T) {
	const frames = 8
	_, ra, idx := playbackFixture(t, frames)
	pattern := BackAndForth(frames, 4)
	run := func() PrefetchStats {
		s := NewSession(nil, 0, ComputeCost{})
		pf := s.NewPrefetchSource(ra, idx, 4, 3)
		defer pf.Stop()
		for _, i := range pattern {
			if _, err := pf.ReadFrameAt(i); err != nil {
				t.Fatal(err)
			}
		}
		return pf.Stats()
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); got != first {
			t.Fatalf("trial %d stats %+v differ from first %+v", trial, got, first)
		}
	}
	if first.Hits+first.Misses != int64(len(pattern)) {
		t.Errorf("hits+misses = %d, want %d accesses", first.Hits+first.Misses, len(pattern))
	}
}

// TestPrefetchRandomAccessStaysCorrect: a jumpy pattern gives prediction
// nothing to work with but must stay correct and deadlock-free.
func TestPrefetchRandomAccessStaysCorrect(t *testing.T) {
	const frames = 8
	_, ra, idx := playbackFixture(t, frames)
	s := NewSession(nil, 0, ComputeCost{})
	pf := s.NewPrefetchSource(ra, idx, 2, 3)
	defer pf.Stop()
	for _, i := range RandomAccess(frames, 64, 42) {
		f, err := pf.ReadFrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if f.NAtoms() == 0 {
			t.Fatal("empty frame")
		}
	}
	st := pf.Stats()
	if st.Hits+st.Misses != 64 {
		t.Errorf("hits+misses = %d, want 64", st.Hits+st.Misses)
	}
}

// gatedSource wraps a FrameSource, blocking the first read of one chosen
// frame until released, so a test can hold a background prefetch in flight at
// a known point.
type gatedSource struct {
	src     FrameSource
	frame   int
	started chan struct{} // closed when the gated read begins
	release chan struct{} // the gated read waits for this
	once    sync.Once
}

func (g *gatedSource) Frames() int                { return g.src.Frames() }
func (g *gatedSource) ConcurrentFrameReads() bool { return true }

func (g *gatedSource) ReadFrameAt(i int) (*xtc.Frame, error) {
	if i == g.frame {
		gated := false
		g.once.Do(func() { gated = true })
		if gated {
			close(g.started)
			<-g.release
		}
	}
	return g.src.ReadFrameAt(i)
}

// TestPrefetchStopRacesDemandRead is the regression test for Stop() racing a
// demand read parked on an in-flight prefetch: Stop cancels the decode by
// closing its channel without publishing a result, and the woken reader must
// fall back to a synchronous decode — counted and charged as a miss, since
// the prefetched result never arrived — rather than hang or report a hit.
// The interleaving is pinned white-box: the reader is committed to the wait
// branch before Stop runs, and the gated worker is only released after
// Stop's cancellation, so the worker's late result is always discarded.
// Meaningful under -race.
func TestPrefetchStopRacesDemandRead(t *testing.T) {
	_, ra, _ := playbackFixture(t, 6)
	s := NewSession(nil, 0, ComputeCost{})
	g := &gatedSource{src: ra, frame: 1, started: make(chan struct{}), release: make(chan struct{})}
	pf := s.NewPrefetchSource(g, nil, 1, 2)

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Frame 0 starts a forward sweep: prediction issues frames 1 and 2, and
	// the single worker picks up frame 1 and blocks inside the gated decode.
	if _, err := pf.ReadFrameAt(0); err != nil {
		t.Fatal(err)
	}
	<-g.started

	// Demand-read frame 1 from another goroutine: it is in flight, so the
	// reader parks on the prefetch's channel.
	type res struct {
		f   *xtc.Frame
		err error
	}
	got := make(chan res, 1)
	go func() {
		f, err := pf.ReadFrameAt(1)
		got <- res{f, err}
	}()
	// The reader's own predict issues frame 3 under pf.mu immediately before
	// it parks; once that entry exists the reader is committed to the wait
	// branch.
	waitFor("demand reader to park on the in-flight prefetch", func() bool {
		pf.mu.Lock()
		defer pf.mu.Unlock()
		_, ok := pf.inflight[3]
		return ok
	})

	// Stop cancels every in-flight prefetch (waking the reader) and then
	// waits for the worker — which is still gated, so release it only after
	// the cancellation has happened and its result must be discarded.
	stopped := make(chan struct{})
	go func() { pf.Stop(); close(stopped) }()
	waitFor("Stop to cancel in-flight prefetches", func() bool {
		pf.mu.Lock()
		defer pf.mu.Unlock()
		return pf.stopping
	})
	close(g.release)

	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop() hung")
	}
	var r res
	select {
	case r = <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("demand read woken by Stop never returned")
	}
	if r.err != nil {
		t.Fatal(r.err)
	}
	want, err := ra.ReadFrameAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.f.Step != want.Step || r.f.NAtoms() != want.NAtoms() {
		t.Errorf("frame 1 after cancelled prefetch: step %d/%d atoms, want %d/%d",
			r.f.Step, r.f.NAtoms(), want.Step, want.NAtoms())
	}
	// Both reads decoded on the demand path: frame 0 was never prefetched
	// and frame 1's prefetch was cancelled before delivering. The old code
	// pre-counted the parked reader as a hit.
	st := pf.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 0 hits / 2 misses", st)
	}
	if st.Issued != 3 {
		t.Errorf("Issued = %d, want 3 (frames 1, 2 from the sweep start; 3 from the demand read)", st.Issued)
	}
}

// TestPrefetchStopIdempotent: Stop twice, and reads after Stop still work
// (they just decode on demand).
func TestPrefetchStopIdempotent(t *testing.T) {
	_, ra, idx := playbackFixture(t, 4)
	s := NewSession(nil, 0, ComputeCost{})
	pf := s.NewPrefetchSource(ra, idx, 2, 2)
	if _, err := pf.ReadFrameAt(0); err != nil {
		t.Fatal(err)
	}
	pf.Stop()
	pf.Stop()
	f, err := pf.ReadFrameAt(3)
	if err != nil || f == nil {
		t.Fatalf("read after Stop: %v %v", f, err)
	}
}
