package vmd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pdb"
	"repro/internal/rangelist"
)

// Selection expressions are VMD's way of naming atom subsets
// ("protein and chain A", "water or ion", "not hetatm"). This is a small
// recursive-descent implementation of the boolean core of that language:
//
//	expr    := orExpr
//	orExpr  := andExpr { "or" andExpr }
//	andExpr := unary { "and" unary }
//	unary   := "not" unary | "(" expr ")" | primary
//	primary := "all" | "none" | "protein" | "water" | "lipid" | "ion"
//	         | "ligand" | "other" | "hetatm"
//	         | "chain" ID | "resname" NAME | "element" SYM
//	         | "index" N [ "to" N ]
//
// Keywords are case-insensitive.

// Select evaluates a selection expression against a structure, returning
// the matching atom indices as ranges.
func Select(s *pdb.Structure, expr string) (*rangelist.List, error) {
	p := &selParser{tokens: tokenize(expr)}
	pred, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("vmd: select %q: %w", expr, err)
	}
	if !p.done() {
		return nil, fmt.Errorf("vmd: select %q: unexpected %q", expr, p.peek())
	}
	out := rangelist.New()
	begin := -1
	for i := range s.Atoms {
		if pred(&s.Atoms[i], i) {
			if begin < 0 {
				begin = i
			}
			continue
		}
		if begin >= 0 {
			out.Append(begin, i)
			begin = -1
		}
	}
	if begin >= 0 {
		out.Append(begin, s.NAtoms())
	}
	return out, nil
}

// SetSelection replaces the session's render selection with the atoms
// matching the expression (evaluated against the loaded structure).
func (s *Session) SetSelection(expr string) error {
	if s.structure == nil {
		return fmt.Errorf("vmd: no structure loaded (mol new first)")
	}
	sel, err := Select(s.structure, expr)
	if err != nil {
		return err
	}
	s.selection = sel
	return nil
}

type atomPred func(a *pdb.Atom, index int) bool

func tokenize(expr string) []string {
	expr = strings.ReplaceAll(expr, "(", " ( ")
	expr = strings.ReplaceAll(expr, ")", " ) ")
	return strings.Fields(expr)
}

type selParser struct {
	tokens []string
	pos    int
}

func (p *selParser) done() bool { return p.pos >= len(p.tokens) }

func (p *selParser) peek() string {
	if p.done() {
		return ""
	}
	return p.tokens[p.pos]
}

func (p *selParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *selParser) accept(keyword string) bool {
	if strings.EqualFold(p.peek(), keyword) {
		p.pos++
		return true
	}
	return false
}

func (p *selParser) parseOr() (atomPred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(a *pdb.Atom, i int) bool { return l(a, i) || r(a, i) }
	}
	return left, nil
}

func (p *selParser) parseAnd() (atomPred, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(a *pdb.Atom, i int) bool { return l(a, i) && r(a, i) }
	}
	return left, nil
}

func (p *selParser) parseUnary() (atomPred, error) {
	if p.accept("not") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(a *pdb.Atom, i int) bool { return !inner(a, i) }, nil
	}
	if p.accept("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("missing closing parenthesis")
		}
		return inner, nil
	}
	return p.parsePrimary()
}

func (p *selParser) parsePrimary() (atomPred, error) {
	tok := p.next()
	if tok == "" {
		return nil, fmt.Errorf("unexpected end of expression")
	}
	switch strings.ToLower(tok) {
	case "all":
		return func(*pdb.Atom, int) bool { return true }, nil
	case "none":
		return func(*pdb.Atom, int) bool { return false }, nil
	case "protein", "water", "lipid", "ion", "ligand", "other":
		cat, err := pdb.ParseCategory(tok)
		if err != nil {
			return nil, err
		}
		return func(a *pdb.Atom, _ int) bool { return a.Category == cat }, nil
	case "hetatm":
		return func(a *pdb.Atom, _ int) bool { return a.HetAtm }, nil
	case "chain":
		arg := p.next()
		if len(arg) != 1 {
			return nil, fmt.Errorf("chain wants a single letter, got %q", arg)
		}
		id := arg[0]
		return func(a *pdb.Atom, _ int) bool { return a.ChainID == id }, nil
	case "resname":
		arg := strings.ToUpper(p.next())
		if arg == "" {
			return nil, fmt.Errorf("resname wants a residue name")
		}
		return func(a *pdb.Atom, _ int) bool {
			return strings.ToUpper(a.ResName) == arg
		}, nil
	case "element":
		arg := strings.ToUpper(p.next())
		if arg == "" {
			return nil, fmt.Errorf("element wants a symbol")
		}
		return func(a *pdb.Atom, _ int) bool {
			return strings.ToUpper(strings.TrimSpace(a.Element)) == arg
		}, nil
	case "index":
		loTok := p.next()
		lo, err := strconv.Atoi(loTok)
		if err != nil {
			return nil, fmt.Errorf("index wants a number, got %q", loTok)
		}
		hi := lo
		if p.accept("to") {
			hiTok := p.next()
			if hi, err = strconv.Atoi(hiTok); err != nil {
				return nil, fmt.Errorf("index range end: %q", hiTok)
			}
		}
		if hi < lo {
			return nil, fmt.Errorf("inverted index range %d to %d", lo, hi)
		}
		return func(_ *pdb.Atom, i int) bool { return i >= lo && i <= hi }, nil
	default:
		return nil, fmt.Errorf("unknown keyword %q", tok)
	}
}
