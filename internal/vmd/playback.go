package vmd

import (
	"container/list"
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/xtc"
)

// FrameSource provides random access to a trajectory's frames.
// xtc.RandomAccessReader and core.SubsetRandomReader both satisfy it.
type FrameSource interface {
	Frames() int
	ReadFrameAt(i int) (*xtc.Frame, error)
}

// CacheStats reports a FrameCache's behavior over a playback run.
type CacheStats struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	BytesLoaded int64
}

// HitRate returns the fraction of accesses served from memory.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// FrameCache keeps decoded frames in memory under a byte budget with LRU
// eviction — the "recently retrieved frames should be evacuated from the
// limited memory to make room for subsequent phases of frames" mechanism
// the paper's Section 2.1 describes. A cache too small for the working set
// thrashes under back-and-forth replay, which is exactly why ADA's smaller
// protein-only frames keep playback fluent.
type FrameCache struct {
	src    FrameSource
	mem    *Memory
	budget int64
	lru    *list.List            // front = most recent; values are cacheEntry
	lookup map[int]*list.Element // frame number -> element
	used   int64                 // bytes currently cached (maintained on insert/evict)
	stats  CacheStats
	cm     cacheMetrics
	// access, when set, observes cache hits — replayed frames served from
	// memory that never reach the storage read path. Misses reach the
	// storage-side core.AccessFunc through the underlying FrameSource, so a
	// heat tracker wiring both signals counts every access exactly once.
	access func(bytes int64)
}

// cacheMetrics mirror CacheStats into the runtime registry under
// vmd.cache.* so a long-lived viewer process is observable without polling
// Stats().
type cacheMetrics struct {
	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
	bytes     *metrics.Counter
	resident  *metrics.Gauge // cached frames right now
}

func newCacheMetrics(reg *metrics.Registry) cacheMetrics {
	return cacheMetrics{
		hits:      reg.Counter("vmd.cache.hits"),
		misses:    reg.Counter("vmd.cache.misses"),
		evictions: reg.Counter("vmd.cache.evictions"),
		bytes:     reg.Counter("vmd.cache.bytes_loaded"),
		resident:  reg.Gauge("vmd.cache.resident_frames"),
	}
}

type cacheEntry struct {
	frame *xtc.Frame
	num   int
	bytes int64
}

// memPlayback is the memory-accounting label for cached frames.
const memPlayback = "playback-cache"

// NewFrameCache returns a cache over src limited to budget bytes of decoded
// frames, accounted against the session's memory. A budget of 0 means
// "whatever memory remains".
func (s *Session) NewFrameCache(src FrameSource, budget int64) *FrameCache {
	return &FrameCache{
		src:    src,
		mem:    s.Mem,
		budget: budget,
		lru:    list.New(),
		lookup: map[int]*list.Element{},
		cm:     newCacheMetrics(s.metrics),
	}
}

// SetAccessFunc registers an observer for cache hits (nil disables). The
// tiering heat tracker uses it to keep replayed droppings hot even when the
// frame cache absorbs every read: hits are the only accesses the storage
// path cannot see. The caller's closure binds the dataset and dropping
// names — the cache itself does not know what it plays.
func (c *FrameCache) SetAccessFunc(fn func(bytes int64)) { c.access = fn }

// Stats returns the accumulated cache statistics.
func (c *FrameCache) Stats() CacheStats { return c.stats }

// Len returns the number of cached frames.
func (c *FrameCache) Len() int { return c.lru.Len() }

// usedBytes returns the bytes currently held. It is a running counter
// maintained on insert and evict, not a walk of the LRU list — the walk made
// every cache miss O(cached frames).
func (c *FrameCache) usedBytes() int64 { return c.used }

// Frame returns frame i, loading and caching it on a miss.
func (c *FrameCache) Frame(i int) (*xtc.Frame, error) {
	if e, ok := c.lookup[i]; ok {
		c.lru.MoveToFront(e)
		c.stats.Hits++
		c.cm.hits.Inc()
		ent := e.Value.(cacheEntry)
		if c.access != nil {
			c.access(ent.bytes)
		}
		return ent.frame, nil
	}
	c.stats.Misses++
	c.cm.misses.Inc()
	f, err := c.src.ReadFrameAt(i)
	if err != nil {
		return nil, fmt.Errorf("vmd: playback frame %d: %w", i, err)
	}
	size := xtc.RawFrameSize(f.NAtoms())
	if c.budget > 0 && size > c.budget {
		// Frame larger than the whole budget: serve it uncached.
		c.stats.BytesLoaded += size
		c.cm.bytes.Add(size)
		return f, nil
	}
	// Evict until the frame fits the budget and the session memory.
	for c.budget > 0 && c.usedBytes()+size > c.budget && c.lru.Len() > 0 {
		c.evictOldest()
	}
	for c.mem.Alloc(memPlayback, size) != nil {
		if c.lru.Len() == 0 {
			// Nothing left to evict: hand the frame out uncached rather
			// than failing playback.
			c.stats.BytesLoaded += size
			c.cm.bytes.Add(size)
			return f, nil
		}
		c.evictOldest()
	}
	e := c.lru.PushFront(cacheEntry{frame: f, num: i, bytes: size})
	c.lookup[i] = e
	c.used += size
	c.stats.BytesLoaded += size
	c.cm.bytes.Add(size)
	c.cm.resident.Set(int64(c.lru.Len()))
	return f, nil
}

func (c *FrameCache) evictOldest() {
	e := c.lru.Back()
	if e == nil {
		return
	}
	entry := e.Value.(cacheEntry)
	c.lru.Remove(e)
	delete(c.lookup, entry.num)
	c.used -= entry.bytes
	c.mem.Free(memPlayback, entry.bytes)
	c.stats.Evictions++
	c.cm.evictions.Inc()
	c.cm.resident.Set(int64(c.lru.Len()))
}

// Release drops every cached frame and returns the memory.
func (c *FrameCache) Release() {
	for c.lru.Len() > 0 {
		c.evictOldest()
	}
}

// ChargeDecompression wraps a random-access reader over a *compressed*
// stream so that every frame load also charges the session's compute-side
// decompression rate for that frame's encoded bytes — the traditional
// playback path, where each cache miss pays decompression again.
func (s *Session) ChargeDecompression(ra *xtc.RandomAccessReader, idx *xtc.Index) FrameSource {
	return &decompressChargedSource{s: s, ra: ra, idx: idx}
}

type decompressChargedSource struct {
	s   *Session
	ra  *xtc.RandomAccessReader
	idx *xtc.Index
}

func (d *decompressChargedSource) Frames() int { return d.ra.Frames() }

func (d *decompressChargedSource) ReadFrameAt(i int) (*xtc.Frame, error) {
	if d.s.cost.DecompressBps > 0 {
		d.s.charge("decompress",
			float64(d.idx.Size(i))/(d.s.cost.DecompressBps*d.s.cost.factor()))
	}
	return d.ra.ReadFrameAt(i)
}

// Playback access patterns (Section 2.1: biologists replay "back and
// forth"; random access is the worst case for the cache).

// Sequential plays 0..frames-1 once.
func Sequential(frames int) []int {
	out := make([]int, frames)
	for i := range out {
		out[i] = i
	}
	return out
}

// BackAndForth sweeps forward then backward, `sweeps` times.
func BackAndForth(frames, sweeps int) []int {
	var out []int
	for s := 0; s < sweeps; s++ {
		if s%2 == 0 {
			for i := 0; i < frames; i++ {
				out = append(out, i)
			}
		} else {
			for i := frames - 1; i >= 0; i-- {
				out = append(out, i)
			}
		}
	}
	return out
}

// RandomAccess plays n uniformly random frames.
func RandomAccess(frames, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(frames)
	}
	return out
}

// PlayStats summarizes one playback run.
type PlayStats struct {
	FramesShown int
	Cache       CacheStats
	// StallSec is the virtual time spent loading misses — the pauses a
	// viewer perceives as non-fluent animation.
	StallSec float64
	// RenderSec is the virtual time spent rebuilding graphics.
	RenderSec float64
}

// PlayThrough renders the frames named by pattern straight through a shared
// FrameSource — typically a serve fabric handle — instead of a session-owned
// FrameCache. Under multi-tenant serving the fabric owns residency,
// admission, and fair-share scheduling; the session is just a consumer, so
// all source time is attributed to stalls and the render charge stays
// per-frame as in Play.
func (s *Session) PlayThrough(src FrameSource, pattern []int) (PlayStats, error) {
	var st PlayStats
	for _, i := range pattern {
		var before float64
		if s.env != nil {
			before = s.env.Clock.Now()
		}
		f, err := src.ReadFrameAt(i)
		if err != nil {
			return st, fmt.Errorf("vmd: playback frame %d: %w", i, err)
		}
		if s.env != nil {
			st.StallSec += s.env.Clock.Now() - before
		}
		renderSec := float64(f.NAtoms()) * s.cost.RenderSecPerAtomFrame / s.cost.factor()
		s.charge("render", renderSec)
		st.RenderSec += renderSec
		st.FramesShown++
	}
	return st, nil
}

// Play renders the frames named by pattern through the cache, charging
// render time per displayed frame and attributing miss-loading time to
// stalls.
func (s *Session) Play(cache *FrameCache, pattern []int) (PlayStats, error) {
	var st PlayStats
	for _, i := range pattern {
		var before float64
		if s.env != nil {
			before = s.env.Clock.Now()
		}
		missesBefore := cache.stats.Misses
		f, err := cache.Frame(i)
		if err != nil {
			return st, err
		}
		if s.env != nil && cache.stats.Misses > missesBefore {
			st.StallSec += s.env.Clock.Now() - before
		}
		renderSec := float64(f.NAtoms()) * s.cost.RenderSecPerAtomFrame / s.cost.factor()
		s.charge("render", renderSec)
		st.RenderSec += renderSec
		st.FramesShown++
	}
	st.Cache = cache.Stats()
	return st, nil
}
