// Package vmd models the visualization front end of the evaluation: the
// molecule loader (`mol new`, `mol addfile ... tag p`), the data-processing
// pipeline (decompress, scan, render), a memory accountant with the
// fat-node experiment's OOM-kill behavior, and the compute-node CPU cost
// model the turnaround metric is built from.
package vmd

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrOutOfMemory is returned when an allocation exceeds the compute node's
// memory capacity — the condition the paper reports as the process being
// "killed by the system due to memory shortage".
var ErrOutOfMemory = errors.New("vmd: out of memory")

// Memory is a virtual-memory accountant for one compute node.
type Memory struct {
	mu       sync.Mutex
	capacity int64 // 0 = unlimited
	used     int64
	peak     int64
	byLabel  map[string]int64
}

// NewMemory returns an accountant with the given capacity in bytes
// (0 = unlimited).
func NewMemory(capacity int64) *Memory {
	return &Memory{capacity: capacity, byLabel: map[string]int64{}}
}

// Capacity returns the configured capacity (0 = unlimited).
func (m *Memory) Capacity() int64 { return m.capacity }

// Alloc reserves n bytes under the given label. It fails with
// ErrOutOfMemory when the reservation would exceed capacity.
func (m *Memory) Alloc(label string, n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("vmd: negative alloc %d (%s)", n, label))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.capacity > 0 && m.used+n > m.capacity {
		return fmt.Errorf("%w: %s needs %d bytes, %d of %d in use",
			ErrOutOfMemory, label, n, m.used, m.capacity)
	}
	m.used += n
	m.byLabel[label] += n
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Free releases n bytes from a label. Releasing more than allocated panics:
// it means the accounting is broken, not the workload.
func (m *Memory) Free(label string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 || m.byLabel[label] < n {
		panic(fmt.Sprintf("vmd: free %d from %s which holds %d", n, label, m.byLabel[label]))
	}
	m.byLabel[label] -= n
	m.used -= n
	if m.byLabel[label] == 0 {
		delete(m.byLabel, label)
	}
}

// FreeAll releases everything under a label and returns the amount.
func (m *Memory) FreeAll(label string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.byLabel[label]
	m.used -= n
	delete(m.byLabel, label)
	return n
}

// Used returns current usage.
func (m *Memory) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Peak returns the high-water mark (the metric of Figs 7c, 9c, 10c).
func (m *Memory) Peak() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Labels returns usage per label, sorted by label name.
func (m *Memory) Labels() []LabelUsage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LabelUsage, 0, len(m.byLabel))
	for l, n := range m.byLabel {
		out = append(out, LabelUsage{Label: l, Bytes: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// LabelUsage is one label's live allocation.
type LabelUsage struct {
	Label string
	Bytes int64
}
