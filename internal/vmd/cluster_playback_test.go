package vmd

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/metrics"
	"repro/internal/pdb"
	"repro/internal/placement"
	"repro/internal/plfs"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// vmdDownFS models a storage node with its transport gone.
type vmdDownFS struct{}

func (vmdDownFS) Create(string) (vfs.File, error)        { return nil, vfs.ErrBackendDown }
func (vmdDownFS) Open(string) (vfs.File, error)          { return nil, vfs.ErrBackendDown }
func (vmdDownFS) Stat(string) (vfs.FileInfo, error)      { return vfs.FileInfo{}, vfs.ErrBackendDown }
func (vmdDownFS) ReadDir(string) ([]vfs.FileInfo, error) { return nil, vfs.ErrBackendDown }
func (vmdDownFS) MkdirAll(string) error                  { return vfs.ErrBackendDown }
func (vmdDownFS) Remove(string) error                    { return vfs.ErrBackendDown }
func (vmdDownFS) Rename(string, string) error            { return vfs.ErrBackendDown }

// TestClusterPlaybackSurvivesNodeDeath runs the full viewer path — mol
// addfile over an ADA whose store is a 3-node R=2 placement cluster — and
// then replays it with each node down in turn. The session must load the
// same frames with the same coordinates every time.
func TestClusterPlaybackSurvivesNodeDeath(t *testing.T) {
	sys, err := gpcr.Scaled(120).Build()
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := pdb.Write(&pb, sys.Structure); err != nil {
		t.Fatal(err)
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	s, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := s.WriteTrajectory(xtc.NewWriter(&tb), 5); err != nil {
		t.Fatal(err)
	}

	nodes := map[string]vfs.FS{
		"n1": vfs.NewMemFS(), "n2": vfs.NewMemFS(), "n3": vfs.NewMemFS(),
	}
	tbl := &placement.Table{
		Version: 1, Replication: 2,
		Nodes: []placement.Node{{Name: "n1"}, {Name: "n2"}, {Name: "n3"}},
	}
	c, err := placement.NewCluster(tbl, nodes, placement.Config{
		HedgeDelay: -1, Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := plfs.New(plfs.Backend{Name: "clu", FS: c, Mount: "/clu"})
	if err != nil {
		t.Fatal(err)
	}
	a := core.New(store, nil, core.Options{Metrics: metrics.NewRegistry()})
	if _, err := a.Ingest("/traj.md", pb.Bytes(), bytes.NewReader(tb.Bytes())); err != nil {
		t.Fatal(err)
	}

	load := func() *Session {
		sess := NewSession(nil, 0, ComputeCost{})
		if err := sess.LoadADASubset(a, "/traj.md", core.TagProtein); err != nil {
			t.Fatalf("load: %v", err)
		}
		return sess
	}
	want := load()
	if want.Frames() != 5 {
		t.Fatalf("baseline loaded %d frames, want 5", want.Frames())
	}

	for _, victim := range []string{"n1", "n2", "n3"} {
		c.AddNode(victim, vmdDownFS{})
		got := load()
		if got.Frames() != want.Frames() {
			t.Fatalf("victim %s: %d frames, want %d", victim, got.Frames(), want.Frames())
		}
		for i := 0; i < want.Frames(); i++ {
			wf, gf := want.Frame(i), got.Frame(i)
			if len(wf.Coords) != len(gf.Coords) {
				t.Fatalf("victim %s: frame %d atom count diverged", victim, i)
			}
			for j := range wf.Coords {
				if wf.Coords[j] != gf.Coords[j] {
					t.Fatalf("victim %s: frame %d atom %d coords diverged", victim, i, j)
				}
			}
		}
		c.AddNode(victim, nodes[victim])
		if err := c.Probe(victim); err != nil {
			t.Fatal(err)
		}
	}
}
