package vmd

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// A serve fabric handle is a FrameSource: sessions plug into the shared
// fabric exactly where they used to own a reader.
var _ FrameSource = (*serve.Handle)(nil)

// TestPlayThroughServeFabric drives two tenants' sessions through one
// fabric: playback stays byte-correct, and the second tenant's replay of
// the same window is served from the shared cache without re-decoding.
func TestPlayThroughServeFabric(t *testing.T) {
	const frames = 8
	_, ra, _ := playbackFixture(t, frames)
	f0, err := ra.ReadFrameAt(0)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	fab := serve.New(serve.Config{Metrics: reg, Workers: 2})
	defer fab.Close()

	alice := NewSession(nil, 0, ComputeCost{})
	st, err := alice.PlayThrough(fab.Open("alice", "/ds", "p", f0.NAtoms(), ra), BackAndForth(frames, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesShown != 2*frames {
		t.Fatalf("FramesShown = %d, want %d", st.FramesShown, 2*frames)
	}

	bob := NewSession(nil, 0, ComputeCost{})
	if _, err := bob.PlayThrough(fab.Open("bob", "/ds", "p", f0.NAtoms(), ra), Sequential(frames)); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["serve.decodes"]; got != frames {
		t.Errorf("serve.decodes = %d for two tenants over %d frames, want %d (shared cache)",
			got, frames, frames)
	}
	if hits := snap.Counters["serve.cache.hits"]; hits < frames {
		t.Errorf("serve.cache.hits = %d, want >= %d (replay + second tenant)", hits, frames)
	}
	if snap.Histograms["serve.tenant.bob.read_ns"].Count != frames {
		t.Error("bob's reads missing from his latency histogram")
	}
}
