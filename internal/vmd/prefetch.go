package vmd

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/xtc"
)

// PrefetchStats reports a PrefetchSource's behavior.
type PrefetchStats struct {
	Hits   int64 // demand reads served by a prefetched (or in-flight) decode
	Misses int64 // demand reads that had to decode synchronously
	Issued int64 // background decodes scheduled
	Wasted int64 // prefetched frames evicted before any demand read
}

// prefetchMetrics mirror PrefetchStats into the runtime registry under
// vmd.prefetch.*.
type prefetchMetrics struct {
	hits   *metrics.Counter
	misses *metrics.Counter
	issued *metrics.Counter
	wasted *metrics.Counter
	ready  *metrics.Gauge // decoded-ahead frames currently buffered
}

func newPrefetchMetrics(reg *metrics.Registry) prefetchMetrics {
	return prefetchMetrics{
		hits:   reg.Counter("vmd.prefetch.hits"),
		misses: reg.Counter("vmd.prefetch.misses"),
		issued: reg.Counter("vmd.prefetch.issued"),
		wasted: reg.Counter("vmd.prefetch.wasted"),
		ready:  reg.Gauge("vmd.prefetch.ready_frames"),
	}
}

// concurrentSource marks FrameSources whose ReadFrameAt is safe to call from
// several goroutines at once (xtc.RandomAccessReader and readers built on
// it). Sources without the marker are serialized behind a mutex.
type concurrentSource interface {
	ConcurrentFrameReads() bool
}

// tailSource marks FrameSources over a still-growing dataset (stream.Source,
// core.LiveReader). A live source's ReadFrameAt(head) blocks until the
// producer publishes that frame, so prediction pins to head+1 instead of
// bouncing off the end: one parked worker becomes the head watcher and the
// next frame is decoded the moment it lands.
type tailSource interface {
	Live() bool
}

// prefetched is one background decode's outcome.
type prefetched struct {
	frame *xtc.Frame
	err   error
}

// PrefetchSource decorates a FrameSource with playback-pattern prediction:
// it watches the sequence of demand reads, predicts the next frames of a
// sequential or back-and-forth sweep (predictions bounce off the trajectory
// ends, which is exactly the §2.1 replay pattern), and decodes them ahead on
// background workers. A demand read of a predicted frame then finds it
// decoded — the cache miss above turns into an overlapped load.
//
// Virtual-time accounting is deterministic: a predicted frame's
// decompression is charged concurrently (it overlapped the rendering of
// earlier frames, so the clock does not advance — no stall), while an
// unpredicted frame charges the session's decompression rate on the demand
// path, exactly like ChargeDecompression. Whether a frame counts as
// predicted depends only on the access sequence, never on worker timing.
//
// ReadFrameAt is for one playback goroutine; the decorator is not a shared
// frontend.
type PrefetchSource struct {
	src     FrameSource
	s       *Session
	idx     *xtc.Index // nil = no decompression charging (already-raw subset)
	depth   int
	pm      prefetchMetrics
	srcMu   *sync.Mutex // non-nil when src must be serialized
	maxHeld int
	tail    bool // src is live: pin prediction to the growing head

	mu       sync.Mutex
	cond     *sync.Cond // signals workers that tasks or stopping changed
	ready    map[int]prefetched
	order    []int // issue order of undelivered prefetches (for eviction)
	inflight map[int]chan struct{}
	tasks    []int // pending background decodes (unbounded; issue never blocks)
	stats    PrefetchStats
	stopping bool

	last int // previous demand frame (-1 before the first)
	dir  int // playback direction guess (+1 / -1)

	busy []atomic.Int64 // per-worker wall-clock ns spent in background reads
	wg   sync.WaitGroup
}

// NewPrefetchSource wraps src with readahead on `workers` background decode
// goroutines (<=0 selects xtc.DefaultWorkers) predicting `depth` frames
// ahead (<=0 selects 2×workers). idx, when non-nil, gives per-frame encoded
// sizes so prefetched loads charge the session's decompression rate
// concurrently instead of on the demand path; pass the same index used with
// ChargeDecompression, or nil for subsets stored raw.
func (s *Session) NewPrefetchSource(src FrameSource, idx *xtc.Index, workers, depth int) *PrefetchSource {
	workers = xtc.DefaultWorkers(workers)
	if depth <= 0 {
		depth = 2 * workers
	}
	p := &PrefetchSource{
		src:      src,
		s:        s,
		idx:      idx,
		depth:    depth,
		pm:       newPrefetchMetrics(s.metrics),
		maxHeld:  2*depth + 2,
		ready:    map[int]prefetched{},
		inflight: map[int]chan struct{}{},
		last:     -1,
		dir:      1,
		busy:     make([]atomic.Int64, workers),
	}
	p.cond = sync.NewCond(&p.mu)
	if cs, ok := src.(concurrentSource); !ok || !cs.ConcurrentFrameReads() {
		p.srcMu = &sync.Mutex{}
	}
	if ts, ok := src.(tailSource); ok && ts.Live() {
		// Tail mode: a worker may park inside src.ReadFrameAt(head) waiting
		// for the producer. Close the live source BEFORE Stop, or Stop will
		// wait on a worker that only wakes when the head moves.
		p.tail = true
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// WorkerBusy returns each background worker's accumulated wall-clock time in
// source reads — the same per-worker utilization surface ParallelReader
// exposes, so flat prefetch scaling is diagnosable from bench artifacts.
func (p *PrefetchSource) WorkerBusy() []time.Duration {
	out := make([]time.Duration, len(p.busy))
	for i := range p.busy {
		out[i] = time.Duration(p.busy[i].Load())
	}
	return out
}

// Frames returns the underlying source's frame count.
func (p *PrefetchSource) Frames() int { return p.src.Frames() }

// Stats returns the accumulated prefetch statistics.
func (p *PrefetchSource) Stats() PrefetchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Stop terminates the background workers. Buffered frames stay readable;
// further prediction ceases. Idempotent. In tail mode a worker may be
// parked inside the live source waiting for the head to advance — close the
// live source first so that read returns, then Stop.
func (p *PrefetchSource) Stop() {
	p.mu.Lock()
	p.stopping = true
	p.cond.Broadcast()
	// Cancel undelivered prefetches so a later demand read never waits on a
	// worker that has exited.
	for i, ch := range p.inflight {
		delete(p.inflight, i)
		close(ch)
	}
	p.tasks = nil
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *PrefetchSource) worker(w int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.tasks) == 0 && !p.stopping {
			p.cond.Wait()
		}
		if p.stopping {
			p.mu.Unlock()
			return
		}
		i := p.tasks[0]
		p.tasks = p.tasks[1:]
		p.mu.Unlock()

		t0 := time.Now()
		f, err := p.readSrc(i)
		p.busy[w].Add(time.Since(t0).Nanoseconds())

		p.mu.Lock()
		if ch, ok := p.inflight[i]; ok {
			delete(p.inflight, i)
			p.ready[i] = prefetched{frame: f, err: err}
			p.pm.ready.Set(int64(len(p.ready)))
			close(ch)
		}
		p.mu.Unlock()
	}
}

func (p *PrefetchSource) readSrc(i int) (*xtc.Frame, error) {
	if p.srcMu != nil {
		p.srcMu.Lock()
		defer p.srcMu.Unlock()
	}
	return p.src.ReadFrameAt(i)
}

// chargeDecode attributes frame i's decompression to the session:
// concurrently (overlapped, no clock advance) when the frame was prefetched,
// serially when it was a demand load.
func (p *PrefetchSource) chargeDecode(i int, overlapped bool) {
	if p.idx == nil || p.s.cost.DecompressBps <= 0 {
		return
	}
	sec := float64(p.idx.Size(i)) / (p.s.cost.DecompressBps * p.s.cost.factor())
	if overlapped {
		if p.s.env != nil {
			p.s.env.ChargeConcurrent("compute.cpu.decompress", sec)
		}
		return
	}
	p.s.charge("decompress", sec)
}

// predict schedules background decodes for the frames a sequential or
// back-and-forth sweep would visit after i. Must be called with p.mu held.
func (p *PrefetchSource) predict(i int) {
	n := p.src.Frames()
	if n < 2 && !p.tail {
		return
	}
	pos, dir := i, p.dir
	for k := 0; k < p.depth; k++ {
		pos += dir
		if pos >= n {
			if p.tail {
				// Live head: don't bounce — pin one decode at the head
				// frame. The worker that picks it up blocks in the source
				// until the producer publishes it, becoming the watcher
				// that has head+1 decoded the moment it exists.
				p.issue(n)
				return
			}
			// Bounce off the ends: a sweep that hits frame n-1 turns
			// around, which is the paper's back-and-forth replay.
			pos, dir = n-2, -1
		} else if pos < 0 {
			pos, dir = 1, 1
		}
		p.issue(pos)
	}
}

// issue schedules one background decode if the frame is not already decoded
// or in flight. Must be called with p.mu held.
func (p *PrefetchSource) issue(i int) {
	if _, ok := p.ready[i]; ok {
		return
	}
	if _, ok := p.inflight[i]; ok {
		return
	}
	if p.stopping {
		return
	}
	p.evictFor(i)
	p.inflight[i] = make(chan struct{})
	p.order = append(p.order, i)
	p.stats.Issued++
	p.pm.issued.Inc()
	p.tasks = append(p.tasks, i)
	p.cond.Signal()
}

// evictFor caps the readahead buffer: the oldest undelivered prefetch is
// dropped (and counted wasted) once ready+inflight reach maxHeld. Eviction
// order depends only on issue order, keeping hit/miss behavior independent
// of worker timing. Must be called with p.mu held.
func (p *PrefetchSource) evictFor(i int) {
	for len(p.ready)+len(p.inflight) >= p.maxHeld && len(p.order) > 0 {
		victim := p.order[0]
		p.order = p.order[1:]
		if _, ok := p.ready[victim]; ok {
			delete(p.ready, victim)
			p.pm.ready.Set(int64(len(p.ready)))
			p.stats.Wasted++
			p.pm.wasted.Inc()
			continue
		}
		if ch, ok := p.inflight[victim]; ok {
			// Deleting the inflight entry tells the worker to discard its
			// result.
			delete(p.inflight, victim)
			close(ch)
			p.stats.Wasted++
			p.pm.wasted.Inc()
		}
	}
}

// take removes frame i from the issue-order queue. Must be called with p.mu
// held.
func (p *PrefetchSource) take(i int) {
	for k, v := range p.order {
		if v == i {
			p.order = append(p.order[:k], p.order[k+1:]...)
			return
		}
	}
}

// ReadFrameAt returns frame i, preferring the readahead buffer. Pattern
// state updates and the next predictions are issued on every call.
func (p *PrefetchSource) ReadFrameAt(i int) (*xtc.Frame, error) {
	p.mu.Lock()
	// Update the direction guess: a unit step sets it, a repeat keeps it,
	// a jump leaves prediction to the next unit step.
	step := false
	if p.last >= 0 {
		switch d := i - p.last; d {
		case 1, -1:
			p.dir = d
			step = true
		case 0:
			step = true
		}
	} else if i == 0 {
		// First access at the head of the trajectory: assume a forward
		// sweep is starting.
		p.dir, step = 1, true
	}
	p.last = i

	if f, ok := p.ready[i]; ok {
		delete(p.ready, i)
		p.pm.ready.Set(int64(len(p.ready)))
		p.take(i)
		p.stats.Hits++
		p.pm.hits.Inc()
		if step {
			p.predict(i)
		}
		p.mu.Unlock()
		p.chargeDecode(i, true)
		return f.frame, f.err
	}
	if ch, ok := p.inflight[i]; ok {
		// Already decoding in the background: wait for it. Hit/miss is
		// classified after the wake-up, not here — Stop() cancels in-flight
		// decodes by closing their channels without publishing a result, and
		// a reader woken that way has to decode on the demand path after
		// all. (Eviction cannot race this wait: ReadFrameAt has a single
		// caller and workers never evict, so a missing ready entry on wake
		// always means Stop cancelled the decode.)
		if step {
			p.predict(i)
		}
		p.mu.Unlock()
		<-ch
		p.mu.Lock()
		f, ok := p.ready[i]
		if ok {
			delete(p.ready, i)
			p.pm.ready.Set(int64(len(p.ready)))
			p.stats.Hits++
			p.pm.hits.Inc()
		} else {
			// Cancelled by Stop before a result was published: the frame is
			// decoded synchronously below, so it counts — and charges — as a
			// demand load, not an overlapped one.
			p.stats.Misses++
			p.pm.misses.Inc()
		}
		p.take(i)
		p.mu.Unlock()
		if ok {
			p.chargeDecode(i, true)
			return f.frame, f.err
		}
		p.chargeDecode(i, false)
		return p.readSrc(i)
	}
	p.stats.Misses++
	p.pm.misses.Inc()
	if step {
		p.predict(i)
	}
	p.mu.Unlock()
	p.chargeDecode(i, false)
	return p.readSrc(i)
}
