package vmd

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/dcd"
	"repro/internal/metrics"
	"repro/internal/pdb"
	"repro/internal/rangelist"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xdr"
	"repro/internal/xtc"
)

// ComputeCost models the compute node's CPU rates for the traditional
// (non-ADA) pipeline plus rendering. Rates are bytes or atom-frames per
// second of virtual time.
type ComputeCost struct {
	// PDBParseBps is the `mol new foo.pdb` structure analysis rate.
	PDBParseBps float64
	// DecompressBps is the rate at which a compute node decompresses
	// compressed trajectory bytes (the paper's dominant burden).
	DecompressBps float64
	// ScanBps is the rate for scanning raw frames for active data.
	ScanBps float64
	// RenderSecPerAtomFrame is the 3-D rebuild cost per rendered atom per
	// frame.
	RenderSecPerAtomFrame float64
	// CPUFactor scales all rates (1 = calibration platform).
	CPUFactor float64
}

// DefaultComputeCost returns the calibrated rates, fitted once so the
// paper's stated ratios emerge together: C-ext4 = ~13.4x D-ADA(protein)
// turnaround at 5,006 frames (Fig 7b), D-PVFS = ~9x D-ADA(protein) at
// 6,256 frames (Fig 9b), and decompression above half of the compute CPU
// (Fig 8). DecompressBps is measured over compressed bytes; it corresponds
// to a core roughly 2x faster than this repository's benchmark host, where
// the real codec sustains ~55 MB/s of compressed input
// (BenchmarkXTCDecode: ~156 MB/s of raw coordinates at 2.86x).
func DefaultComputeCost() ComputeCost {
	return ComputeCost{
		PDBParseBps:           100e6,
		DecompressBps:         125e6,
		ScanBps:               650e6,
		RenderSecPerAtomFrame: 4.5e-9,
		CPUFactor:             1,
	}
}

func (c ComputeCost) factor() float64 {
	if c.CPUFactor <= 0 {
		return 1
	}
	return c.CPUFactor
}

// Memory accounting labels.
const (
	memCompressed = "compressed"
	memFrames     = "frames"
)

// Session is one VMD process on a compute node.
type Session struct {
	env     *sim.Env
	Mem     *Memory
	cost    ComputeCost
	metrics *metrics.Registry

	structure *pdb.Structure
	selection *rangelist.List // the protein selection rendered by default
	frames    []*xtc.Frame
	subsetLen int // atoms per loaded frame
}

// NewSession returns a session charging time to env (nil disables time
// accounting) with the given memory capacity (0 = unlimited).
func NewSession(env *sim.Env, memCapacity int64, cost ComputeCost) *Session {
	if cost == (ComputeCost{}) {
		cost = DefaultComputeCost()
	}
	return &Session{env: env, Mem: NewMemory(memCapacity), cost: cost, metrics: metrics.Default}
}

// SetMetrics points the session's runtime counters (playback cache) at reg
// (metrics.Default by default; nil disables collection). Call before
// creating frame caches.
func (s *Session) SetMetrics(reg *metrics.Registry) { s.metrics = reg }

func (s *Session) charge(bucket string, sec float64) {
	if s.env != nil && sec > 0 {
		s.env.Charge("compute.cpu."+bucket, sec)
	}
}

// Structure returns the loaded structure, or nil before MolNew.
func (s *Session) Structure() *pdb.Structure { return s.structure }

// Frames returns the loaded frame count.
func (s *Session) Frames() int { return len(s.frames) }

// Frame returns loaded frame i.
func (s *Session) Frame(i int) *xtc.Frame { return s.frames[i] }

// SelectionCount returns the number of atoms in the render selection.
func (s *Session) SelectionCount() int {
	if s.selection == nil {
		return 0
	}
	return s.selection.Count()
}

// MolNew loads a structure file from fs: `mol new foo.pdb`. The protein
// atoms become the render selection.
func (s *Session) MolNew(fsys vfs.FS, path string) error {
	data, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return fmt.Errorf("vmd: mol new %s: %w", path, err)
	}
	return s.molNewBytes(path, data)
}

func (s *Session) molNewBytes(path string, data []byte) error {
	if s.cost.PDBParseBps > 0 {
		s.charge("pdbparse", float64(len(data))/(s.cost.PDBParseBps*s.cost.factor()))
	}
	structure, err := pdb.Parse(strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("vmd: mol new %s: %w", path, err)
	}
	s.structure = structure
	s.selection = core.BuildLabels(structure).CategoryRanges(pdb.Protein)
	return nil
}

// appendFrame accounts and retains one loaded frame.
func (s *Session) appendFrame(f *xtc.Frame) error {
	n := xtc.RawFrameSize(f.NAtoms())
	if err := s.Mem.Alloc(memFrames, n); err != nil {
		return err
	}
	s.frames = append(s.frames, f)
	s.subsetLen = f.NAtoms()
	return nil
}

// LoadCompressed is the "C-" scenario: `mol addfile bar.xtc` against a
// traditional file system holding the compressed trajectory. The whole
// compressed file is read into memory, decompressed frame by frame on the
// compute node, and scanned for active data. Consumed compressed bytes are
// released as decompression advances (the buffer is read once, front to
// back), so the peak footprint converges on the raw size — which is what
// determines the fat-node kill points in Fig 10.
func (s *Session) LoadCompressed(fsys vfs.FS, path string) error {
	data, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return fmt.Errorf("vmd: addfile %s: %w", path, err)
	}
	if err := s.Mem.Alloc(memCompressed, int64(len(data))); err != nil {
		return fmt.Errorf("vmd: addfile %s: %w", path, err)
	}
	r := xdr.NewReader(data)
	released := int64(0)
	for r.Remaining() > 0 {
		f, err := xtc.DecodeFrame(r)
		if err != nil {
			return fmt.Errorf("vmd: addfile %s: %w", path, err)
		}
		consumed := int64(r.Offset())
		if s.cost.DecompressBps > 0 {
			s.charge("decompress", float64(consumed-released)/(s.cost.DecompressBps*s.cost.factor()))
		}
		s.Mem.Free(memCompressed, consumed-released)
		released = consumed
		raw := xtc.RawFrameSize(f.NAtoms())
		if s.cost.ScanBps > 0 {
			s.charge("scan", float64(raw)/(s.cost.ScanBps*s.cost.factor()))
		}
		if err := s.appendFrame(f); err != nil {
			return fmt.Errorf("vmd: addfile %s: %w", path, err)
		}
	}
	return nil
}

// LoadRaw is the "D-" scenario: the trajectory is stored decompressed; the
// compute node reads it and scans for active data but skips decompression.
func (s *Session) LoadRaw(fsys vfs.FS, path string) error {
	f, err := fsys.Open(path)
	if err != nil {
		return fmt.Errorf("vmd: addfile %s: %w", path, err)
	}
	defer f.Close()
	r := xtc.NewReader(readerOf(f))
	for {
		fr, err := r.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("vmd: addfile %s: %w", path, err)
		}
		raw := xtc.RawFrameSize(fr.NAtoms())
		if s.cost.ScanBps > 0 {
			s.charge("scan", float64(raw)/(s.cost.ScanBps*s.cost.factor()))
		}
		if err := s.appendFrame(fr); err != nil {
			return fmt.Errorf("vmd: addfile %s: %w", path, err)
		}
	}
}

// LoadDCD loads a NAMD/CHARMM DCD trajectory. DCD stores raw floats, so
// like the D- scenario it pays scanning but no decompression.
func (s *Session) LoadDCD(fsys vfs.FS, path string) error {
	f, err := fsys.Open(path)
	if err != nil {
		return fmt.Errorf("vmd: addfile %s: %w", path, err)
	}
	defer f.Close()
	r, err := dcd.NewReader(readerOf(f))
	if err != nil {
		return fmt.Errorf("vmd: addfile %s: %w", path, err)
	}
	for {
		fr, err := r.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("vmd: addfile %s: %w", path, err)
		}
		raw := xtc.RawFrameSize(fr.NAtoms())
		if s.cost.ScanBps > 0 {
			s.charge("scan", float64(raw)/(s.cost.ScanBps*s.cost.factor()))
		}
		if err := s.appendFrame(fr); err != nil {
			return fmt.Errorf("vmd: addfile %s: %w", path, err)
		}
	}
}

// LoadADASubset is `mol addfile bar.xtc tag p`: ADA serves exactly the
// tagged subset, already decompressed and filtered, so the compute node
// neither decompresses nor scans.
func (s *Session) LoadADASubset(a *core.ADA, logical, tag string) error {
	sr, err := a.OpenSubset(logical, tag)
	if err != nil {
		return fmt.Errorf("vmd: addfile %s tag %s: %w", logical, tag, err)
	}
	defer sr.Close()
	for {
		fr, err := sr.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("vmd: addfile %s tag %s: %w", logical, tag, err)
		}
		if err := s.appendFrame(fr); err != nil {
			return fmt.Errorf("vmd: addfile %s tag %s: %w", logical, tag, err)
		}
	}
}

// LoadADAFull is the "ADA (all)" scenario: every subset is transferred and
// reassembled; the compute node skips decompression but still scans the raw
// frames for active data, which makes it behave like the D- scenario.
func (s *Session) LoadADAFull(a *core.ADA, logical string) error {
	fr, err := a.OpenFull(logical)
	if err != nil {
		return fmt.Errorf("vmd: addfile %s: %w", logical, err)
	}
	defer fr.Close()
	for {
		f, err := fr.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("vmd: addfile %s: %w", logical, err)
		}
		raw := xtc.RawFrameSize(f.NAtoms())
		if s.cost.ScanBps > 0 {
			s.charge("scan", float64(raw)/(s.cost.ScanBps*s.cost.factor()))
		}
		if err := s.appendFrame(f); err != nil {
			return fmt.Errorf("vmd: addfile %s: %w", logical, err)
		}
	}
}

// RenderStats summarizes one render pass.
type RenderStats struct {
	Frames        int
	AtomsPerFrame int
	Seconds       float64
}

// RenderLoaded rebuilds the 3-D animation from the loaded frames. When the
// loaded frames contain the full system the render selection (protein) is
// used; when they contain a pre-filtered subset every loaded atom renders.
func (s *Session) RenderLoaded() RenderStats {
	atoms := s.subsetLen
	if s.structure != nil && s.subsetLen == s.structure.NAtoms() && s.selection != nil && s.selection.Count() > 0 {
		atoms = s.selection.Count()
	}
	sec := float64(atoms) * float64(len(s.frames)) * s.cost.RenderSecPerAtomFrame / s.cost.factor()
	s.charge("render", sec)
	return RenderStats{Frames: len(s.frames), AtomsPerFrame: atoms, Seconds: sec}
}

// Replay re-renders the loaded animation n more times (the playback loop
// biologists run "back and forth"); ADA's benefit compounds with replays
// because the pre-processing is never repeated.
func (s *Session) Replay(n int) RenderStats {
	var last RenderStats
	for i := 0; i < n; i++ {
		last = s.RenderLoaded()
	}
	return last
}

// Unload releases all loaded frames.
func (s *Session) Unload() {
	s.frames = nil
	s.subsetLen = 0
	s.Mem.FreeAll(memFrames)
	s.Mem.FreeAll(memCompressed)
}

func readerOf(f vfs.File) io.Reader { return f }
