package vmd

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/xtc"
)

// TestCacheRegistryMetrics verifies the playback cache mirrors its stats
// into the session's metrics registry.
func TestCacheRegistryMetrics(t *testing.T) {
	_, src, _ := playbackFixture(t, 6)
	reg := metrics.NewRegistry()
	s := NewSession(nil, 0, ComputeCost{})
	s.SetMetrics(reg)

	// Budget for exactly 2 frames, then sweep back and forth to force
	// hits, misses, and evictions.
	f0, err := src.ReadFrameAt(0)
	if err != nil {
		t.Fatal(err)
	}
	budget := 2 * xtc.RawFrameSize(f0.NAtoms())
	cache := s.NewFrameCache(src, budget)
	for _, i := range BackAndForth(6, 2) {
		if _, err := cache.Frame(i); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	snap := reg.Snapshot()
	if snap.Counters["vmd.cache.hits"] != st.Hits {
		t.Errorf("hits: registry %d, stats %d", snap.Counters["vmd.cache.hits"], st.Hits)
	}
	if snap.Counters["vmd.cache.misses"] != st.Misses {
		t.Errorf("misses: registry %d, stats %d", snap.Counters["vmd.cache.misses"], st.Misses)
	}
	if snap.Counters["vmd.cache.evictions"] != st.Evictions {
		t.Errorf("evictions: registry %d, stats %d", snap.Counters["vmd.cache.evictions"], st.Evictions)
	}
	if snap.Counters["vmd.cache.bytes_loaded"] != st.BytesLoaded {
		t.Errorf("bytes: registry %d, stats %d", snap.Counters["vmd.cache.bytes_loaded"], st.BytesLoaded)
	}
	if st.Misses == 0 || st.Evictions == 0 || st.Hits == 0 {
		t.Errorf("fixture did not exercise the cache: %+v", st)
	}
	if got := snap.Gauges["vmd.cache.resident_frames"]; got != int64(cache.Len()) {
		t.Errorf("resident_frames = %d, want %d", got, cache.Len())
	}
	cache.Release()
	if got := reg.Gauge("vmd.cache.resident_frames").Value(); got != 0 {
		t.Errorf("resident_frames after Release = %d", got)
	}
}
