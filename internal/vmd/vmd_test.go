package vmd

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dcd"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// fixture bundles a tiny ingested dataset plus traditional-FS copies.
type fixture struct {
	sys       *gpcr.System
	pdbBytes  []byte
	traj      []byte // compressed
	rawTraj   []byte // decompressed
	frames    int
	fs        *vfs.MemFS // traditional FS holding both forms
	ada       *core.ADA
	adaEnvFSs []*vfs.MemFS
}

func newFixture(t testing.TB, scale, frames int, env *sim.Env) *fixture {
	t.Helper()
	sys, err := gpcr.Scaled(scale).Build()
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := pdb.Write(&pb, sys.Structure); err != nil {
		t.Fatal(err)
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	s, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var cb, rb bytes.Buffer
	cw := xtc.NewWriter(&cb)
	rw := xtc.NewRawWriter(&rb)
	for i := 0; i < frames; i++ {
		f := s.Step()
		if err := cw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
		if err := rw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	fsys := vfs.NewMemFS()
	if err := vfs.WriteFile(fsys, "/data/sys.pdb", pb.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fsys, "/data/traj.xtc", cb.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fsys, "/data/traj.raw.xtc", rb.Bytes()); err != nil {
		t.Fatal(err)
	}

	ssd, hdd := vfs.NewMemFS(), vfs.NewMemFS()
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := core.New(containers, env, core.Options{})
	if _, err := a.Ingest("/traj.xtc", pb.Bytes(), bytes.NewReader(cb.Bytes())); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		sys: sys, pdbBytes: pb.Bytes(), traj: cb.Bytes(), rawTraj: rb.Bytes(),
		frames: frames, fs: fsys, ada: a, adaEnvFSs: []*vfs.MemFS{ssd, hdd},
	}
}

func TestMemoryAccountant(t *testing.T) {
	m := NewMemory(100)
	if err := m.Alloc("a", 60); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc("b", 50); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("over-capacity alloc: %v", err)
	}
	if err := m.Alloc("b", 40); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 100 || m.Peak() != 100 {
		t.Errorf("used=%d peak=%d", m.Used(), m.Peak())
	}
	m.Free("a", 60)
	if m.Used() != 40 || m.Peak() != 100 {
		t.Errorf("after free: used=%d peak=%d", m.Used(), m.Peak())
	}
	labels := m.Labels()
	if len(labels) != 1 || labels[0].Label != "b" || labels[0].Bytes != 40 {
		t.Errorf("labels = %+v", labels)
	}
	if got := m.FreeAll("b"); got != 40 {
		t.Errorf("FreeAll = %d", got)
	}
	if m.Used() != 0 {
		t.Errorf("used = %d", m.Used())
	}
}

func TestMemoryUnlimited(t *testing.T) {
	m := NewMemory(0)
	if err := m.Alloc("x", 1<<50); err != nil {
		t.Errorf("unlimited alloc failed: %v", err)
	}
}

func TestMemoryMisuse(t *testing.T) {
	m := NewMemory(0)
	m.Alloc("a", 5)
	defer func() {
		if recover() == nil {
			t.Error("over-free should panic")
		}
	}()
	m.Free("a", 6)
}

func TestMolNew(t *testing.T) {
	fx := newFixture(t, 300, 1, nil)
	s := NewSession(nil, 0, ComputeCost{})
	if err := s.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
		t.Fatal(err)
	}
	if s.Structure().NAtoms() != fx.sys.Structure.NAtoms() {
		t.Errorf("structure atoms = %d", s.Structure().NAtoms())
	}
	counts := fx.sys.Structure.CategoryCounts()
	if s.SelectionCount() != counts[pdb.Protein] {
		t.Errorf("selection = %d, want %d protein atoms", s.SelectionCount(), counts[pdb.Protein])
	}
}

func TestAllLoadPathsAgreeOnProteinCoords(t *testing.T) {
	fx := newFixture(t, 300, 3, nil)
	counts := fx.sys.Structure.CategoryCounts()
	nprot := counts[pdb.Protein]

	load := func(name string, load func(s *Session) error) *Session {
		s := NewSession(nil, 0, ComputeCost{})
		if err := s.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := load(s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Frames() != fx.frames {
			t.Fatalf("%s: frames = %d", name, s.Frames())
		}
		return s
	}
	cSess := load("C", func(s *Session) error { return s.LoadCompressed(fx.fs, "/data/traj.xtc") })
	dSess := load("D", func(s *Session) error { return s.LoadRaw(fx.fs, "/data/traj.raw.xtc") })
	aAll := load("ADA-all", func(s *Session) error { return s.LoadADAFull(fx.ada, "/traj.xtc") })
	aProt := load("ADA-p", func(s *Session) error { return s.LoadADASubset(fx.ada, "/traj.xtc", core.TagProtein) })

	if aProt.Frame(0).NAtoms() != nprot {
		t.Fatalf("ADA-p frame atoms = %d, want %d", aProt.Frame(0).NAtoms(), nprot)
	}
	// Protein coordinates must agree across every path (within quantization).
	labels := core.BuildLabels(fx.sys.Structure)
	protIdx := labels.CategoryRanges(pdb.Protein).Indices()
	tol := 2*xtc.MaxError(xtc.DefaultPrecision) + 1e-6
	for k := 0; k < fx.frames; k++ {
		for j, atom := range protIdx {
			want := cSess.Frame(k).Coords[atom]
			for _, pair := range []struct {
				name string
				got  xtc.Vec3
			}{
				{"D", dSess.Frame(k).Coords[atom]},
				{"ADA-all", aAll.Frame(k).Coords[atom]},
				{"ADA-p", aProt.Frame(k).Coords[j]},
			} {
				for d := 0; d < 3; d++ {
					if math.Abs(float64(pair.got[d]-want[d])) > tol {
						t.Fatalf("frame %d atom %d %s: %v vs %v", k, atom, pair.name, pair.got, want)
					}
				}
			}
		}
	}
}

func TestMemoryShapesAcrossScenarios(t *testing.T) {
	// Fig 7c: memory(C) = compressed + raw; memory(D/ADA-all) = raw;
	// memory(ADA-p) = protein raw only.
	fx := newFixture(t, 300, 4, nil)
	peak := func(load func(s *Session) error) int64 {
		s := NewSession(nil, 0, ComputeCost{})
		if err := s.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
			t.Fatal(err)
		}
		if err := load(s); err != nil {
			t.Fatal(err)
		}
		return s.Mem.Peak()
	}
	c := peak(func(s *Session) error { return s.LoadCompressed(fx.fs, "/data/traj.xtc") })
	d := peak(func(s *Session) error { return s.LoadRaw(fx.fs, "/data/traj.raw.xtc") })
	all := peak(func(s *Session) error { return s.LoadADAFull(fx.ada, "/traj.xtc") })
	prot := peak(func(s *Session) error { return s.LoadADASubset(fx.ada, "/traj.xtc", core.TagProtein) })

	natoms := fx.sys.Structure.NAtoms()
	raw := int64(fx.frames) * xtc.RawFrameSize(natoms)
	// The C path frees compressed bytes as they are consumed, so its peak
	// sits between the raw size and raw + one compressed frame's worth.
	if c < raw || c > raw+int64(len(fx.traj)) {
		t.Errorf("C peak = %d, want within [%d, %d]", c, raw, raw+int64(len(fx.traj)))
	}
	if d != raw || all != raw {
		t.Errorf("D peak = %d, ADA-all peak = %d, want %d", d, all, raw)
	}
	counts := fx.sys.Structure.CategoryCounts()
	wantProt := int64(fx.frames) * xtc.RawFrameSize(counts[pdb.Protein])
	if prot != wantProt {
		t.Errorf("ADA-p peak = %d, want %d", prot, wantProt)
	}
	if ratio := float64(c) / float64(prot); ratio < 2 {
		t.Errorf("C/ADA-p memory ratio = %.2f, want > 2 (paper: 2.5x+)", ratio)
	}
}

func TestCPUChargesByScenario(t *testing.T) {
	// Enough frames that the trajectory dwarfs the structure file, as in
	// any real workload (Fig 8's profile is taken at 5,006 frames).
	fx := newFixture(t, 300, 120, nil)
	run := func(load func(s *Session) error) *sim.Profile {
		env := sim.NewEnv()
		s := NewSession(env, 0, ComputeCost{})
		if err := s.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
			t.Fatal(err)
		}
		if err := load(s); err != nil {
			t.Fatal(err)
		}
		s.RenderLoaded()
		return env.Profile
	}
	c := run(func(s *Session) error { return s.LoadCompressed(fx.fs, "/data/traj.xtc") })
	if c.Get("compute.cpu.decompress") <= 0 {
		t.Error("C path must decompress on the compute node")
	}
	// Fig 8: decompression dominates the compute CPU in the C path.
	cpu := c.TotalPrefix("compute.cpu.")
	if frac := c.Get("compute.cpu.decompress") / cpu; frac < 0.5 {
		t.Errorf("decompress fraction = %.2f, want > 0.5", frac)
	}
	p := run(func(s *Session) error { return s.LoadADASubset(fx.ada, "/traj.xtc", core.TagProtein) })
	if p.Get("compute.cpu.decompress") != 0 || p.Get("compute.cpu.scan") != 0 {
		t.Error("ADA subset path must not decompress or scan on the compute node")
	}
	if p.Get("compute.cpu.render") <= 0 {
		t.Error("render must be charged")
	}
}

func TestRenderSelection(t *testing.T) {
	fx := newFixture(t, 300, 2, nil)
	s := NewSession(nil, 0, ComputeCost{})
	if err := s.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRaw(fx.fs, "/data/traj.raw.xtc"); err != nil {
		t.Fatal(err)
	}
	st := s.RenderLoaded()
	counts := fx.sys.Structure.CategoryCounts()
	if st.AtomsPerFrame != counts[pdb.Protein] {
		t.Errorf("full-system render uses %d atoms, want protein %d", st.AtomsPerFrame, counts[pdb.Protein])
	}
	s.Unload()
	if err := s.LoadADASubset(fx.ada, "/traj.xtc", core.TagProtein); err != nil {
		t.Fatal(err)
	}
	st = s.RenderLoaded()
	if st.AtomsPerFrame != counts[pdb.Protein] {
		t.Errorf("subset render uses %d atoms", st.AtomsPerFrame)
	}
	if st.Frames != 2 {
		t.Errorf("frames = %d", st.Frames)
	}
}

func TestReplayChargesRepeatedly(t *testing.T) {
	fx := newFixture(t, 300, 2, nil)
	env := sim.NewEnv()
	s := NewSession(env, 0, ComputeCost{})
	if err := s.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadADASubset(fx.ada, "/traj.xtc", core.TagProtein); err != nil {
		t.Fatal(err)
	}
	s.RenderLoaded()
	one := env.Profile.Get("compute.cpu.render")
	s.Replay(3)
	if got := env.Profile.Get("compute.cpu.render"); math.Abs(got-4*one) > 1e-12 {
		t.Errorf("render after 3 replays = %v, want %v", got, 4*one)
	}
}

func TestOOMKill(t *testing.T) {
	fx := newFixture(t, 300, 4, nil)
	natoms := fx.sys.Structure.NAtoms()
	raw := int64(fx.frames) * xtc.RawFrameSize(natoms)
	// Capacity fits compressed file + half the raw frames: the C path must
	// die mid-decompression, exactly like XFS on the fat node.
	s := NewSession(nil, int64(len(fx.traj))+raw/2, ComputeCost{})
	if err := s.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
		t.Fatal(err)
	}
	err := s.LoadCompressed(fx.fs, "/data/traj.xtc")
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// The ADA protein path fits in the same capacity.
	s2 := NewSession(nil, int64(len(fx.traj))+raw/2, ComputeCost{})
	if err := s2.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadADASubset(fx.ada, "/traj.xtc", core.TagProtein); err != nil {
		t.Errorf("ADA subset load should fit: %v", err)
	}
}

func TestLoadDCD(t *testing.T) {
	fx := newFixture(t, 300, 3, nil)
	// Convert the raw trajectory to DCD on the same FS.
	frames, err := xtc.NewReader(bytes.NewReader(fx.rawTraj)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := dcd.NewWriter(&buf, dcd.Header{NFrames: len(frames), HasUnitCell: true, DeltaPS: 10})
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fx.fs, "/data/traj.dcd", buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	env := sim.NewEnv()
	s := NewSession(env, 0, ComputeCost{})
	if err := s.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadDCD(fx.fs, "/data/traj.dcd"); err != nil {
		t.Fatal(err)
	}
	if s.Frames() != 3 {
		t.Fatalf("frames = %d", s.Frames())
	}
	if env.Profile.Get("compute.cpu.decompress") != 0 {
		t.Error("DCD load charged decompression")
	}
	if env.Profile.Get("compute.cpu.scan") <= 0 {
		t.Error("DCD load did not charge scanning")
	}
	// Coordinates agree with the raw XTC load within conversion error.
	s2 := NewSession(nil, 0, ComputeCost{})
	if err := s2.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadRaw(fx.fs, "/data/traj.raw.xtc"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		for i := range s.Frame(k).Coords {
			for d := 0; d < 3; d++ {
				diff := math.Abs(float64(s.Frame(k).Coords[i][d] - s2.Frame(k).Coords[i][d]))
				if diff > 1e-4 {
					t.Fatalf("frame %d atom %d: diff %g", k, i, diff)
				}
			}
		}
	}
}

func TestUnloadReleasesMemory(t *testing.T) {
	fx := newFixture(t, 300, 2, nil)
	s := NewSession(nil, 0, ComputeCost{})
	if err := s.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadCompressed(fx.fs, "/data/traj.xtc"); err != nil {
		t.Fatal(err)
	}
	if s.Mem.Used() == 0 {
		t.Fatal("nothing allocated")
	}
	s.Unload()
	if s.Mem.Used() != 0 {
		t.Errorf("used after Unload = %d", s.Mem.Used())
	}
	if s.Frames() != 0 {
		t.Errorf("frames after Unload = %d", s.Frames())
	}
}
