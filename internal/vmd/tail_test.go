package vmd

import (
	"errors"
	"testing"
	"time"

	"repro/internal/xtc"
)

var errTailClosed = errors.New("tail stub closed")

// tailStub is a growing FrameSource: ReadFrameAt past the head blocks until
// the frame is published, the stream seals, or the stub closes — the same
// contract as stream.Source / core.LiveReader.
type tailStub struct {
	mu     chan struct{} // 1-token mutex so cond-free blocking stays simple
	frames chan *xtc.Frame

	headCh chan struct{} // closed and replaced on every state change
	state  struct {
		frames []*xtc.Frame
		live   bool
		closed bool
	}
}

func newTailStub() *tailStub {
	ts := &tailStub{mu: make(chan struct{}, 1), headCh: make(chan struct{})}
	ts.state.live = true
	return ts
}

func (ts *tailStub) lock()   { ts.mu <- struct{}{} }
func (ts *tailStub) unlock() { <-ts.mu }

func (ts *tailStub) Live() bool                 { return true }
func (ts *tailStub) ConcurrentFrameReads() bool { return true }

func (ts *tailStub) Frames() int {
	ts.lock()
	defer ts.unlock()
	return len(ts.state.frames)
}

func (ts *tailStub) ReadFrameAt(i int) (*xtc.Frame, error) {
	for {
		ts.lock()
		if ts.state.closed {
			ts.unlock()
			return nil, errTailClosed
		}
		if i < len(ts.state.frames) {
			f := ts.state.frames[i]
			ts.unlock()
			return f, nil
		}
		if !ts.state.live {
			ts.unlock()
			return nil, errTailClosed
		}
		ch := ts.headCh
		ts.unlock()
		<-ch
	}
}

func (ts *tailStub) wake() {
	close(ts.headCh)
	ts.headCh = make(chan struct{})
}

func (ts *tailStub) publish(f *xtc.Frame) {
	ts.lock()
	ts.state.frames = append(ts.state.frames, f)
	ts.wake()
	ts.unlock()
}

func (ts *tailStub) close() {
	ts.lock()
	ts.state.closed = true
	ts.wake()
	ts.unlock()
}

// TestPrefetchTailMode: over a live source, prediction pins to the head — a
// worker parks on the next unpublished frame, so a reader following the
// producer finds each new frame already decoded (a hit), instead of the
// bounce-at-the-end pattern meant for immutable trajectories.
func TestPrefetchTailMode(t *testing.T) {
	fx, src, _ := playbackFixture(t, 8)
	_ = fx
	want := make([]*xtc.Frame, 8)
	for i := range want {
		f, err := src.ReadFrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = f
	}

	ts := newTailStub()
	s := NewSession(nil, 0, ComputeCost{})
	p := s.NewPrefetchSource(ts, nil, 2, 4)
	if !p.tail {
		t.Fatal("prefetch source did not detect the live tail")
	}

	// Publish, then read: after the first couple of reads establish the
	// sweep, the parked watcher should have each next frame decoded before
	// the demand read arrives.
	for i := range want {
		ts.publish(want[i])
		f, err := p.ReadFrameAt(i)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f != want[i] {
			t.Fatalf("frame %d: wrong frame returned", i)
		}
		// Give the parked worker a beat to decode the just-published frame
		// before the next demand read (hit accounting is timing-dependent
		// only in our favor — correctness is not).
		time.Sleep(2 * time.Millisecond)
	}
	stats := p.Stats()
	if stats.Hits == 0 {
		t.Errorf("tail playback recorded no prefetch hits: %+v", stats)
	}

	// Shutdown discipline: close the live source first so the parked worker
	// wakes, then Stop. This must not hang.
	ts.close()
	done := make(chan struct{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung with a parked tail watcher")
	}
}

// TestPrefetchTailModeImmutableUnaffected: a sealed (non-live) source keeps
// the bounce prediction; the tail flag stays off.
func TestPrefetchTailModeImmutableUnaffected(t *testing.T) {
	_, src, _ := playbackFixture(t, 4)
	s := NewSession(nil, 0, ComputeCost{})
	p := s.NewPrefetchSource(src, nil, 1, 2)
	defer p.Stop()
	if p.tail {
		t.Fatal("immutable source marked as tail")
	}
	for _, i := range BackAndForth(4, 2) {
		if _, err := p.ReadFrameAt(i); err != nil {
			t.Fatal(err)
		}
	}
}
