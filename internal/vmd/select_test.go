package vmd

import (
	"testing"

	"repro/internal/pdb"
)

// selStructure builds a small structure with known layout:
// 0-3 protein chain A (ALA), 4-5 protein chain B (TRP),
// 6-8 water chain W (SOL), 9 ion (SOD, hetatm), 10 ligand (LIG, hetatm).
func selStructure() *pdb.Structure {
	s := &pdb.Structure{}
	add := func(res string, chain byte, elem string, het bool, n int) {
		for i := 0; i < n; i++ {
			a := pdb.Atom{ResName: res, ChainID: chain, Element: elem, HetAtm: het}
			a.Category = pdb.Classify(res, het)
			s.Atoms = append(s.Atoms, a)
		}
	}
	add("ALA", 'A', "C", false, 4)
	add("TRP", 'B', "C", false, 2)
	add("SOL", 'W', "O", false, 3)
	add("SOD", 'I', "NA", true, 1)
	add("LIG", 'L', "C", true, 1)
	return s
}

func TestSelectExpressions(t *testing.T) {
	s := selStructure()
	cases := []struct {
		expr string
		want string // rangelist string
	}{
		{"all", "0-11"},
		{"none", ""},
		{"protein", "0-6"},
		{"water", "6-9"},
		{"ion", "9-10"},
		{"ligand", "10-11"},
		{"hetatm", "9-11"},
		{"chain A", "0-4"},
		{"chain B", "4-6"},
		{"resname TRP", "4-6"},
		{"resname trp", "4-6"},
		{"element O", "6-9"},
		{"element NA", "9-10"},
		{"index 3", "3-4"},
		{"index 2 to 5", "2-6"},
		{"protein and chain B", "4-6"},
		{"protein or water", "0-9"},
		{"not protein", "6-11"},
		{"not (protein or water)", "9-11"},
		{"protein and not chain A", "4-6"},
		{"hetatm and element C", "10-11"},
		{"water or ion or ligand", "6-11"},
		{"PROTEIN AND CHAIN A", "0-4"}, // keywords case-insensitive
	}
	for _, c := range cases {
		got, err := Select(s, c.expr)
		if err != nil {
			t.Errorf("Select(%q): %v", c.expr, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("Select(%q) = %q, want %q", c.expr, got.String(), c.want)
		}
	}
}

func TestSelectPrecedence(t *testing.T) {
	s := selStructure()
	// "a or b and c" parses as "a or (b and c)".
	got, err := Select(s, "ion or protein and chain A")
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "0-4,9-10" {
		t.Errorf("precedence: %s", got)
	}
}

func TestSelectErrors(t *testing.T) {
	s := selStructure()
	for _, expr := range []string{
		"", "bogus", "protein and", "not", "(protein", "chain AB", "chain",
		"resname", "element", "index x", "index 5 to 2", "protein extra",
		"index 1 to x",
	} {
		if _, err := Select(s, expr); err == nil {
			t.Errorf("Select(%q) should fail", expr)
		}
	}
}

func TestSetSelection(t *testing.T) {
	fx := newFixture(t, 300, 2, nil)
	sess := NewSession(nil, 0, ComputeCost{})
	if err := sess.SetSelection("protein"); err == nil {
		t.Error("SetSelection before MolNew should fail")
	}
	if err := sess.MolNew(fx.fs, "/data/sys.pdb"); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetSelection("water"); err != nil {
		t.Fatal(err)
	}
	counts := fx.sys.Structure.CategoryCounts()
	if sess.SelectionCount() != counts[pdb.Water] {
		t.Errorf("selection = %d, want %d water atoms", sess.SelectionCount(), counts[pdb.Water])
	}
	// Render now uses the custom selection.
	if err := sess.LoadRaw(fx.fs, "/data/traj.raw.xtc"); err != nil {
		t.Fatal(err)
	}
	st := sess.RenderLoaded()
	if st.AtomsPerFrame != counts[pdb.Water] {
		t.Errorf("rendered %d atoms, want %d", st.AtomsPerFrame, counts[pdb.Water])
	}
	if err := sess.SetSelection("not a valid ("); err == nil {
		t.Error("invalid expression should fail")
	}
}
