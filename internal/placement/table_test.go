package placement

import (
	"fmt"
	"strings"
	"testing"
)

func threeNodes() []Node {
	return []Node{{Name: "n1", Addr: "a1"}, {Name: "n2", Addr: "a2"}, {Name: "n3", Addr: "a3"}}
}

func TestPlaceDeterministicAndDistinct(t *testing.T) {
	tbl := &Table{Version: 1, Replication: 2, Nodes: threeNodes()}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		dir := fmt.Sprintf("/containers/set-%d", i)
		reps := tbl.PlaceDir(dir)
		if len(reps) != 2 {
			t.Fatalf("PlaceDir(%s) = %v, want 2 replicas", dir, reps)
		}
		if reps[0] == reps[1] {
			t.Fatalf("PlaceDir(%s) repeated node %v", dir, reps)
		}
		again := tbl.PlaceDir(dir)
		if reps[0] != again[0] || reps[1] != again[1] {
			t.Fatalf("PlaceDir(%s) unstable: %v then %v", dir, reps, again)
		}
	}
}

func TestPlaceKeysOnParentDir(t *testing.T) {
	tbl := &Table{Version: 1, Replication: 2, Nodes: threeNodes()}
	a := tbl.Place("/c/traj.demo/subset.0-9")
	b := tbl.Place("/c/traj.demo/staging.subset.0-9")
	cIdx := tbl.Place("/c/traj.demo/.plfs_index")
	if fmt.Sprint(a) != fmt.Sprint(b) || fmt.Sprint(a) != fmt.Sprint(cIdx) {
		t.Fatalf("files of one container scattered: %v %v %v", a, b, cIdx)
	}
	if key := ContainerKey("/c/traj.demo/subset.0-9"); key != "/c/traj.demo" {
		t.Fatalf("ContainerKey = %q", key)
	}
}

func TestPinsOverrideRing(t *testing.T) {
	tbl := &Table{
		Version: 3, Replication: 2, Nodes: threeNodes(),
		Pins: map[string][]string{"/c/pinned": {"n3", "n1"}},
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	reps := tbl.Place("/c/pinned/file")
	if len(reps) != 2 || reps[0] != "n3" || reps[1] != "n1" {
		t.Fatalf("pinned placement = %v, want [n3 n1]", reps)
	}
}

func TestRingStabilityOnMembershipChange(t *testing.T) {
	// Adding a fourth node must move only a minority of primaries — the
	// consistent-hash property that keeps rebalances small.
	before := &Table{Version: 1, Replication: 2, Nodes: threeNodes()}
	after := &Table{Version: 2, Replication: 2,
		Nodes: append(threeNodes(), Node{Name: "n4", Addr: "a4"})}
	const keys = 400
	moved := 0
	for i := 0; i < keys; i++ {
		dir := fmt.Sprintf("/containers/key-%d", i)
		if before.PlaceDir(dir)[0] != after.PlaceDir(dir)[0] {
			moved++
		}
	}
	// Expect ~1/4 of primaries to move; allow generous slack.
	if moved > keys/2 {
		t.Fatalf("%d/%d primaries moved on one node join; ring is unstable", moved, keys)
	}
	if moved == 0 {
		t.Fatal("no primaries moved; the new node gets no load")
	}
}

func TestTableMarshalRoundTrip(t *testing.T) {
	tbl := &Table{
		Version: 7, Replication: 2, Nodes: threeNodes(),
		Pins: map[string][]string{"/c/pinned": {"n2", "n3"}},
	}
	data, err := tbl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || got.Replication != 2 || len(got.Nodes) != 3 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.NodeAddr("n2") != "a2" || got.NodeAddr("missing") != "" {
		t.Fatalf("NodeAddr broken: %q", got.NodeAddr("n2"))
	}
	if fmt.Sprint(got.Place("/c/pinned/x")) != fmt.Sprint(tbl.Place("/c/pinned/x")) {
		t.Fatal("round-tripped table places differently")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		tbl  *Table
		want string
	}{
		{"zero-replication", &Table{Replication: 0, Nodes: threeNodes()}, "replication"},
		{"too-few-nodes", &Table{Replication: 4, Nodes: threeNodes()}, "cannot hold"},
		{"dup-node", &Table{Replication: 1, Nodes: []Node{{Name: "a"}, {Name: "a"}}}, "duplicate"},
		{"unnamed-node", &Table{Replication: 1, Nodes: []Node{{}}}, "no name"},
		{"pin-unknown-node", &Table{Replication: 1, Nodes: threeNodes(),
			Pins: map[string][]string{"/c": {"ghost"}}}, "unknown node"},
		{"pin-too-short", &Table{Replication: 2, Nodes: threeNodes(),
			Pins: map[string][]string{"/c": {"n1"}}}, "need 2"},
		{"pin-repeat", &Table{Replication: 2, Nodes: threeNodes(),
			Pins: map[string][]string{"/c": {"n1", "n1"}}}, "repeats"},
		{"pin-unclean", &Table{Replication: 1, Nodes: threeNodes(),
			Pins: map[string][]string{"c/": {"n1"}}}, "cleaned"},
	}
	for _, tc := range cases {
		err := tc.tbl.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestPlanMoves(t *testing.T) {
	before := &Table{Version: 1, Replication: 2, Nodes: threeNodes()}
	after := &Table{Version: 2, Replication: 2,
		Nodes: append(threeNodes(), Node{Name: "n4", Addr: "a4"})}
	var dirs []string
	for i := 0; i < 64; i++ {
		dirs = append(dirs, fmt.Sprintf("/containers/key-%d", i))
	}
	moves := PlanMoves(before, after, dirs)
	if len(moves) == 0 {
		t.Fatal("no moves planned for a node join")
	}
	for _, mv := range moves {
		o, n := before.PlaceDir(mv.Dir), after.PlaceDir(mv.Dir)
		for _, add := range mv.Add {
			if !contains(n, add) || contains(o, add) {
				t.Fatalf("%s: bogus add %s (old %v new %v)", mv.Dir, add, o, n)
			}
		}
		for _, drop := range mv.Drop {
			if !contains(o, drop) || contains(n, drop) {
				t.Fatalf("%s: bogus drop %s (old %v new %v)", mv.Dir, drop, o, n)
			}
		}
		if len(mv.Src) == 0 {
			t.Fatalf("%s: move has no source", mv.Dir)
		}
		for _, src := range mv.Src {
			if !contains(o, src) {
				t.Fatalf("%s: source %s is not an old holder %v", mv.Dir, src, o)
			}
		}
	}
	// Unchanged layouts plan nothing.
	if again := PlanMoves(before, before, dirs); len(again) != 0 {
		t.Fatalf("PlanMoves(same, same) = %d moves", len(again))
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
