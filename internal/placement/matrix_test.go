// Node-kill fault matrix: a real multi-node ADA cluster — TCP rpc servers
// over per-node stores, placement.Cluster routing through rpc.Pool clients
// — with each node killed, restarted, and partitioned at swept points
// mid-read and mid-ingest. The matrix asserts the robustness headline:
// R=2 reads stay byte-identical through any single node death, failover
// completes within the retry deadline instead of hanging, and a node crash
// mid-ingest leaves the dataset either fully committed (byte-identical,
// exactly one copy per replica) or rolled back everywhere after restart +
// Recover — never half-written.
//
// Set ADA_CLUSTER_MATRIX_OUT to a file path to get the scenario summary
// as a TSV artifact (the CI race job uploads it).
package placement_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"os"
	"path"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/metrics"
	"repro/internal/pdb"
	"repro/internal/placement"
	"repro/internal/plfs"
	"repro/internal/rpc"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// matrixPolicy is the tight client retry policy the matrix runs under: it
// bounds how long a call to a dead or partitioned node can take before the
// cluster layer fails over, and therefore bounds the whole degraded read.
func matrixPolicy() rpc.RetryPolicy {
	return rpc.RetryPolicy{
		MaxAttempts:   3,
		BaseBackoff:   5 * time.Millisecond,
		MaxBackoff:    40 * time.Millisecond,
		BackoffBudget: 200 * time.Millisecond,
		CallTimeout:   500 * time.Millisecond,
	}
}

// failoverBound is the generous wall-clock ceiling for a degraded read.
// Per RPC the worst case is MaxAttempts*CallTimeout + BackoffBudget
// (~1.7s); a degraded stream retries a handful of calls before every
// replica handle has failed over. The slack absorbs -race and loaded CI.
const failoverBound = 20 * time.Second

const (
	matrixLogical = "/traj.md"
	matrixMount   = "/clu"
	matrixFrames  = 6
	matrixScale   = 80
)

// matrixNode is one storage node: a MemFS "disk" that survives kills, an
// rpc server on a fixed loopback address, and the fault hooks. restart
// builds a fresh server over the same disk on the same address — a process
// restart, losing the old server's handle table but not the data.
type matrixNode struct {
	name string
	addr string
	disk *vfs.MemFS
	srv  *rpc.Server
	ln   *faultfs.NodeListener
	inj  *faultfs.Injector
	pool *rpc.Pool
}

func (n *matrixNode) start(t *testing.T) {
	t.Helper()
	bind := n.addr
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	var raw net.Listener
	var err error
	for i := 0; i < 100; i++ { // a restarted node re-binds its old port
		raw, err = net.Listen("tcp", bind)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("node %s: listen %s: %v", n.name, bind, err)
	}
	n.addr = raw.Addr().String()
	n.inj, err = faultfs.New(1)
	if err != nil {
		t.Fatal(err)
	}
	n.ln = faultfs.WrapNodeListener(raw, n.inj)
	n.srv = rpc.NewServer(n.disk, nil)
	n.srv.SetMetrics(metrics.NewRegistry())
	go n.srv.Serve(n.ln)
}

func (n *matrixNode) stop() {
	if n.srv != nil {
		n.srv.Close()
	}
	if n.ln != nil {
		n.ln.Kill()
	}
}

// matrixHarness wires three nodes into a cluster (R=2), a plfs container
// store over it, and an ADA on top — the full stack a remote viewer uses.
type matrixHarness struct {
	nodes map[string]*matrixNode
	c     *placement.Cluster
	store *plfs.FS
	ada   *core.ADA
	reg   *metrics.Registry
}

func newMatrixHarness(t *testing.T) *matrixHarness {
	t.Helper()
	h := &matrixHarness{nodes: map[string]*matrixNode{}, reg: metrics.NewRegistry()}
	var tblNodes []placement.Node
	fss := map[string]vfs.FS{}
	for _, name := range []string{"n1", "n2", "n3"} {
		n := &matrixNode{name: name, disk: vfs.NewMemFS()}
		n.start(t)
		n.pool = rpc.NewPool(n.addr, 2, nil, matrixPolicy())
		h.nodes[name] = n
		tblNodes = append(tblNodes, placement.Node{Name: name, Addr: n.addr})
		fss[name] = n.pool
	}
	t.Cleanup(func() {
		for _, n := range h.nodes {
			n.pool.Close()
			n.stop()
		}
	})
	tbl := &placement.Table{Version: 1, Replication: 2, Nodes: tblNodes}
	c, err := placement.NewCluster(tbl, fss, placement.Config{HedgeDelay: -1, Metrics: h.reg})
	if err != nil {
		t.Fatal(err)
	}
	h.c = c
	store, err := plfs.New(plfs.Backend{Name: "clu", FS: c, Mount: matrixMount})
	if err != nil {
		t.Fatal(err)
	}
	store.SetMetrics(h.reg)
	h.store = store
	h.ada = core.New(store, nil, core.Options{Metrics: h.reg})
	return h
}

// restart brings a killed node back on its old address over its old disk
// and reprobes it so the cluster stops deprioritizing it.
func (h *matrixHarness) restart(t *testing.T, name string) {
	t.Helper()
	n := h.nodes[name]
	n.stop()
	n.start(t)
	if err := h.c.Probe(name); err != nil {
		t.Fatalf("probe of restarted %s: %v", name, err)
	}
}

// --- deterministic fixture and frame fingerprinting ---

var (
	fixtureOnce sync.Once
	fixturePDB  []byte
	fixtureTraj []byte
	fixtureSig  string
	sigTable    = crc32.MakeTable(crc32.Castagnoli)
)

// matrixFixture builds the dataset once (mdsim is deterministic) and
// computes the reference signature by ingesting into a plain in-memory
// store — ground truth no cluster fault can touch.
func matrixFixture(t *testing.T) (pdbBytes, traj []byte, sig string) {
	t.Helper()
	fixtureOnce.Do(func() {
		sys, err := gpcr.Scaled(matrixScale).Build()
		if err != nil {
			t.Fatal(err)
		}
		var pb bytes.Buffer
		if err := pdb.Write(&pb, sys.Structure); err != nil {
			t.Fatal(err)
		}
		cats := make([]pdb.Category, sys.Structure.NAtoms())
		for i := range cats {
			cats[i] = sys.Structure.Atoms[i].Category
		}
		s, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		var tb bytes.Buffer
		if err := s.WriteTrajectory(xtc.NewWriter(&tb), matrixFrames); err != nil {
			t.Fatal(err)
		}
		fixturePDB, fixtureTraj = pb.Bytes(), tb.Bytes()

		mem, err := plfs.New(plfs.Backend{Name: "mem", FS: vfs.NewMemFS(), Mount: matrixMount})
		if err != nil {
			t.Fatal(err)
		}
		ref := core.New(mem, nil, core.Options{Metrics: metrics.NewRegistry()})
		if _, err := ref.Ingest(matrixLogical, fixturePDB, bytes.NewReader(fixtureTraj)); err != nil {
			t.Fatal(err)
		}
		fixtureSig = datasetSig(t, ref, matrixLogical)
	})
	return fixturePDB, fixtureTraj, fixtureSig
}

func hashFrame(crc io.Writer, f *xtc.Frame) {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(f.Step))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(f.Coords)))
	crc.Write(b[:])
	for _, v := range f.Coords {
		binary.LittleEndian.PutUint32(b[:4], math.Float32bits(v[0]))
		binary.LittleEndian.PutUint32(b[4:], math.Float32bits(v[1]))
		crc.Write(b[:])
		binary.LittleEndian.PutUint32(b[:4], math.Float32bits(v[2]))
		crc.Write(b[:4])
	}
}

// datasetSig fingerprints every frame of both subsets: equal signatures
// mean byte-identical decoded trajectories.
func datasetSig(t *testing.T, a *core.ADA, logical string) string {
	t.Helper()
	sig, _, err := readSig(a, logical, -1, nil)
	if err != nil {
		t.Fatalf("datasetSig: %v", err)
	}
	return sig
}

// readSig streams both subsets, firing kill() just before frame killAt
// (counted across subsets; -1 never fires), and returns the signature
// plus the wall time spent after the kill fired.
func readSig(a *core.ADA, logical string, killAt int, kill func()) (string, time.Duration, error) {
	var parts []string
	frame := 0
	var killed time.Time
	for _, tag := range []string{core.TagProtein, core.TagMisc} {
		sr, err := a.OpenSubset(logical, tag)
		if err != nil {
			return "", 0, fmt.Errorf("open %s: %w", tag, err)
		}
		crc := crc32.New(sigTable)
		n := 0
		for {
			if frame == killAt && kill != nil {
				kill()
				killed = time.Now()
			}
			f, err := sr.ReadFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				sr.Close()
				return "", 0, fmt.Errorf("%s frame %d: %w", tag, n, err)
			}
			hashFrame(crc, f)
			frame++
			n++
		}
		sr.Close()
		parts = append(parts, fmt.Sprintf("%s:%d:%08x", tag, n, crc.Sum32()))
	}
	var degraded time.Duration
	if !killed.IsZero() {
		degraded = time.Since(killed)
	}
	return strings.Join(parts, " "), degraded, nil
}

// --- matrix summary artifact ---

var (
	matrixMu   sync.Mutex
	matrixRows []string
)

func recordMatrix(t *testing.T, scenario, victim, point, outcome string, elapsed time.Duration) {
	row := fmt.Sprintf("%s\t%s\t%s\t%s\t%d", scenario, victim, point, outcome, elapsed.Milliseconds())
	t.Logf("matrix: %s", row)
	matrixMu.Lock()
	matrixRows = append(matrixRows, row)
	matrixMu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if out := os.Getenv("ADA_CLUSTER_MATRIX_OUT"); out != "" && len(matrixRows) > 0 {
		matrixMu.Lock()
		body := "scenario\tvictim\tpoint\toutcome\telapsed_ms\n" + strings.Join(matrixRows, "\n") + "\n"
		matrixMu.Unlock()
		if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "matrix summary: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// --- scenarios ---

// TestMatrixKillNodeMidRead kills each node in turn at swept points during
// a streaming read. Every sweep must return frames byte-identical to the
// undegraded baseline, within the failover bound.
func TestMatrixKillNodeMidRead(t *testing.T) {
	pdbBytes, traj, want := matrixFixture(t)
	h := newMatrixHarness(t)
	if _, err := h.ada.Ingest(matrixLogical, pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	if got := datasetSig(t, h.ada, matrixLogical); got != want {
		t.Fatalf("healthy cluster read diverges from reference: %s vs %s", got, want)
	}
	reps := h.c.Table().Place(path.Join(matrixMount, matrixLogical, "subset.p"))

	killPoints := []int{0, matrixFrames, 2*matrixFrames - 1} // first, mid, last frame
	for _, victim := range []string{"n1", "n2", "n3"} {
		for _, at := range killPoints {
			n := h.nodes[victim]
			start := time.Now()
			sig, degraded, err := readSig(h.ada, matrixLogical, at, func() { n.ln.Kill() })
			if err != nil {
				t.Fatalf("kill %s at frame %d: read failed: %v", victim, at, err)
			}
			if sig != want {
				t.Fatalf("kill %s at frame %d: degraded read diverged: %s vs %s", victim, at, sig, want)
			}
			if degraded > failoverBound {
				t.Fatalf("kill %s at frame %d: degraded read took %v (> %v)", victim, at, degraded, failoverBound)
			}
			outcome := "identical"
			if holdsData := contains(reps, victim); !holdsData {
				outcome = "identical-bystander"
			}
			recordMatrix(t, "kill-mid-read", victim, fmt.Sprintf("frame-%d", at), outcome, time.Since(start))
			h.restart(t, victim)
		}
	}
}

// tripwireFS counts every store operation against one node — including
// writes on files it handed out — and fires once when the budget runs out.
// Registering it as the victim's cluster FS turns "kill after the Nth op"
// into a deterministic mid-ingest crash point.
type tripwireFS struct {
	vfs.FS
	mu   sync.Mutex
	left int
	fire func()
}

func (f *tripwireFS) tick() {
	f.mu.Lock()
	f.left--
	hit := f.left == 0
	f.mu.Unlock()
	if hit {
		f.fire()
	}
}

func (f *tripwireFS) Create(name string) (vfs.File, error) {
	f.tick()
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &tripwireFile{File: file, fs: f}, nil
}

func (f *tripwireFS) Open(name string) (vfs.File, error) {
	f.tick()
	file, err := f.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &tripwireFile{File: file, fs: f}, nil
}

func (f *tripwireFS) Stat(name string) (vfs.FileInfo, error) { f.tick(); return f.FS.Stat(name) }
func (f *tripwireFS) ReadDir(name string) ([]vfs.FileInfo, error) {
	f.tick()
	return f.FS.ReadDir(name)
}
func (f *tripwireFS) MkdirAll(name string) error   { f.tick(); return f.FS.MkdirAll(name) }
func (f *tripwireFS) Remove(name string) error     { f.tick(); return f.FS.Remove(name) }
func (f *tripwireFS) Rename(old, new string) error { f.tick(); return f.FS.Rename(old, new) }

type tripwireFile struct {
	vfs.File
	fs *tripwireFS
}

func (f *tripwireFile) Write(p []byte) (int, error) { f.fs.tick(); return f.File.Write(p) }

// TestMatrixKillNodeMidIngest crashes each node after the Nth store op of
// an ingest, restarts it, runs Recover, and asserts the all-or-nothing
// invariant: the dataset is either gone from every node, or committed with
// frames byte-identical to the reference and exactly one copy per replica.
func TestMatrixKillNodeMidIngest(t *testing.T) {
	pdbBytes, traj, want := matrixFixture(t)
	for _, victim := range []string{"n1", "n2", "n3"} {
		// A replica node sees ~105-125 ops for this fixture; the early
		// points land in journal/staging writes, the late ones straddle the
		// commit window (journal commit record, staged renames, manifest
		// publish), where recovery must replay instead of roll back.
		for _, killAfter := range []int{2, 8, 30, 96, 104, 112, 120} {
			t.Run(fmt.Sprintf("%s/op-%d", victim, killAfter), func(t *testing.T) {
				h := newMatrixHarness(t)
				n := h.nodes[victim]
				h.c.AddNode(victim, &tripwireFS{FS: n.pool, left: killAfter, fire: func() { n.ln.Kill() }})

				_, ingestErr := h.ada.Ingest(matrixLogical, pdbBytes, bytes.NewReader(traj))
				outcome := "committed"
				if ingestErr != nil {
					h.restart(t, victim)
					for name := range h.nodes {
						if err := h.c.Probe(name); err != nil {
							t.Fatalf("probe %s: %v", name, err)
						}
					}
					// The failed ingest fail-fast-marked the whole cluster
					// backend in plfs; revive it now that the node is back,
					// the same probe an operator runs after a restart.
					if err := h.store.Probe("clu"); err != nil {
						t.Fatalf("revive plfs backend: %v", err)
					}
					actions, err := h.ada.Recover()
					if err != nil {
						t.Fatalf("recover after killing %s: %v", victim, err)
					}
					outcome = "rolledback"
					if act, ok := actions[matrixLogical]; ok && act != core.RecoveryRolledBack {
						outcome = "recovered-" + string(act)
					}
				}

				names, err := h.ada.Datasets()
				if err != nil {
					t.Fatal(err)
				}
				if contains(names, matrixLogical) {
					if got := datasetSig(t, h.ada, matrixLogical); got != want {
						t.Fatalf("recovered dataset diverged: %s vs %s", got, want)
					}
				} else if ingestErr == nil {
					t.Fatal("ingest succeeded but dataset is missing")
				} else {
					outcome = "rolledback"
				}
				assertMatrixLayout(t, h)
				recordMatrix(t, "kill-mid-ingest", victim, fmt.Sprintf("op-%d", killAfter), outcome, 0)
			})
		}
	}
}

// assertMatrixLayout walks every node's disk and checks the durable
// invariants directly against the stored bytes: no staging or journal
// leftovers anywhere, and every file present on exactly its R placement
// replicas with identical content.
func assertMatrixLayout(t *testing.T, h *matrixHarness) {
	t.Helper()
	tbl := h.c.Table()
	files := map[string]map[string][]byte{} // path -> node -> content
	for name, n := range h.nodes {
		err := vfs.Walk(n.disk, "/", func(p string, info vfs.FileInfo) error {
			if info.IsDir {
				return nil
			}
			base := path.Base(p)
			if strings.HasPrefix(base, "staging.") || base == "ingest.journal" {
				t.Errorf("node %s: leftover %s survived recovery", name, p)
			}
			data, err := vfs.ReadFile(n.disk, p)
			if err != nil {
				return err
			}
			if files[p] == nil {
				files[p] = map[string][]byte{}
			}
			files[p][name] = data
			return nil
		})
		if err != nil {
			t.Fatalf("walk %s: %v", name, err)
		}
	}
	for p, holders := range files {
		reps := tbl.Place(p)
		if len(holders) != len(reps) {
			t.Errorf("%s: on %d nodes, want exactly %d (%v)", p, len(holders), len(reps), reps)
		}
		var ref []byte
		for _, rep := range reps {
			data, ok := holders[rep]
			if !ok {
				t.Errorf("%s: missing on replica %s", p, rep)
				continue
			}
			if ref == nil {
				ref = data
			} else if !bytes.Equal(ref, data) {
				t.Errorf("%s: replicas diverge", p)
			}
		}
		for node := range holders {
			if !contains(reps, node) {
				t.Errorf("%s: surplus copy on %s (replicas %v)", p, node, reps)
			}
		}
	}
}

// TestMatrixPartitionedNodeFailsOver partitions each node — its listener
// keeps accepting but every byte blackholes — and asserts reads fail over
// on the retry deadline instead of hanging, still byte-identical.
func TestMatrixPartitionedNodeFailsOver(t *testing.T) {
	pdbBytes, traj, want := matrixFixture(t)
	h := newMatrixHarness(t)
	if _, err := h.ada.Ingest(matrixLogical, pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	for _, victim := range []string{"n1", "n2", "n3"} {
		n := h.nodes[victim]
		n.inj.SetPartitioned(true)
		start := time.Now()
		sig, _, err := readSig(h.ada, matrixLogical, -1, nil)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("partition %s: read failed: %v", victim, err)
		}
		if sig != want {
			t.Fatalf("partition %s: read diverged: %s vs %s", victim, sig, want)
		}
		if elapsed > failoverBound {
			t.Fatalf("partition %s: read took %v, deadline failover is broken (> %v)", victim, elapsed, failoverBound)
		}
		recordMatrix(t, "partition-read", victim, "whole-stream", "identical", elapsed)
		n.inj.SetPartitioned(false)
		if err := h.c.Probe(victim); err != nil {
			t.Fatalf("probe after healing %s: %v", victim, err)
		}
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
