package placement

import (
	"fmt"
	"hash/crc32"
	"path"
	"sort"
	"strings"

	"repro/internal/vfs"
)

// rebalStaging prefixes in-flight rebalance copies. The container store's
// recovery sweep removes unindexed files, so a crash mid-copy leaves only
// garbage that the next Recover (or the next Rebalance run) cleans up.
const rebalStaging = ".rebal."

// castagnoli matches the CRC the container store records per frame, so a
// copy verified here is verified in the same algebra the read path uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Move is the work one container directory needs when the table changes
// from old to next: nodes that must gain a copy of every file, nodes that
// must lose theirs, and the surviving holders to copy from.
type Move struct {
	Dir  string
	Add  []string
	Drop []string
	Src  []string
}

// PlanMoves diffs two tables over the given container directories. Dirs
// whose replica set is unchanged produce no move.
func PlanMoves(old, next *Table, dirs []string) []Move {
	var moves []Move
	for _, dir := range dirs {
		o, n := old.PlaceDir(dir), next.PlaceDir(dir)
		add := subtract(n, o)
		drop := subtract(o, n)
		if len(add) == 0 && len(drop) == 0 {
			continue
		}
		src := subtract(o, drop)
		if len(src) == 0 {
			src = o // full move: every old holder is also a source
		}
		moves = append(moves, Move{Dir: dir, Add: add, Drop: drop, Src: src})
	}
	return moves
}

// subtract returns the members of a not in b, preserving a's order.
func subtract(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return out
}

// RebalanceReport summarizes one Rebalance run.
type RebalanceReport struct {
	TableVersion uint64
	Dirs         int
	FilesCopied  int
	BytesCopied  int64
	FilesDropped int
}

// DataDirs walks the cluster from root and returns every directory that
// directly holds at least one file — the unit Rebalance plans over.
func (c *Cluster) DataDirs(root string) ([]string, error) {
	set := map[string]bool{}
	err := vfs.Walk(c, root, func(p string, info vfs.FileInfo) error {
		if !info.IsDir {
			set[path.Dir(p)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Rebalance migrates the given container directories from the current
// table's layout to next, then installs next. The discipline per file
// mirrors the tier migrator's crash-safe executor:
//
//  1. copy to the new holder under a staging name, then read the staged
//     bytes back and verify their CRC against the source before the
//     atomic rename to the final name — a torn or bit-flipped copy never
//     becomes visible;
//  2. only after EVERY added copy of every directory is published does
//     the new table install (reads may route to the new holders only
//     once the bytes are provably there);
//  3. only after the table installs are the surplus copies on departing
//     holders dropped — so at every crash point each file has at least
//     its old replica set or its new one, never fewer.
//
// Rerunning after a failure is idempotent: published copies are detected
// by CRC and skipped, staged leftovers are swept and re-copied.
func (c *Cluster) Rebalance(next *Table, dirs []string) (*RebalanceReport, error) {
	if err := next.Validate(); err != nil {
		return nil, err
	}
	cur := c.Table()
	if next.Version <= cur.Version {
		return nil, fmt.Errorf("placement: rebalance needs a newer table (got v%d, have v%d)",
			next.Version, cur.Version)
	}
	for _, n := range next.Nodes {
		if c.Node(n.Name) == nil {
			return nil, fmt.Errorf("placement: no FS for node %q (AddNode first)", n.Name)
		}
	}
	moves := PlanMoves(cur, next, dirs)
	rep := &RebalanceReport{TableVersion: next.Version, Dirs: len(moves)}
	for _, mv := range moves {
		for _, dst := range mv.Add {
			if err := c.copyDir(mv, dst, rep); err != nil {
				return rep, err
			}
		}
	}
	if err := c.SetTable(next); err != nil {
		return rep, err
	}
	for _, mv := range moves {
		for _, node := range mv.Drop {
			n, err := dropDir(c.Node(node), mv.Dir)
			rep.FilesDropped += n
			if err != nil {
				return rep, fmt.Errorf("placement: drop %s on %s: %w", mv.Dir, node, err)
			}
		}
	}
	c.reg.Counter("placement.rebalance.dirs").Add(int64(rep.Dirs))
	c.reg.Counter("placement.rebalance.files").Add(int64(rep.FilesCopied))
	c.reg.Counter("placement.rebalance.bytes").Add(rep.BytesCopied)
	return rep, nil
}

// copyDir replicates every file of mv.Dir onto dst from the first
// reachable source holder.
func (c *Cluster) copyDir(mv Move, dst string, rep *RebalanceReport) error {
	var entries []vfs.FileInfo
	var src string
	var lastErr error
	for _, cand := range mv.Src {
		es, err := c.fs(cand).ReadDir(mv.Dir)
		if err == nil {
			entries, src = es, cand
			break
		}
		c.note(cand, err)
		lastErr = err
	}
	if src == "" {
		return fmt.Errorf("placement: no reachable source for %s: %w", mv.Dir, lastErr)
	}
	srcFS, dstFS := c.fs(src), c.fs(dst)
	if err := dstFS.MkdirAll(mv.Dir); err != nil {
		return err
	}
	// Sweep staged leftovers from an earlier interrupted run first, so a
	// half-written .rebal. file never shadows this run's copy.
	for _, e := range entries {
		if strings.HasPrefix(e.Name, rebalStaging) {
			srcFS.Remove(path.Join(mv.Dir, e.Name))
		}
	}
	if des, err := dstFS.ReadDir(mv.Dir); err == nil {
		for _, e := range des {
			if strings.HasPrefix(e.Name, rebalStaging) {
				dstFS.Remove(path.Join(mv.Dir, e.Name))
			}
		}
	}
	for _, e := range entries {
		if e.IsDir || strings.HasPrefix(e.Name, rebalStaging) {
			continue
		}
		final := path.Join(mv.Dir, e.Name)
		data, err := vfs.ReadFile(srcFS, final)
		if err != nil {
			return fmt.Errorf("placement: read source %s on %s: %w", final, src, err)
		}
		want := crc32.Checksum(data, castagnoli)
		// Idempotent rerun: a copy already published with the right bytes
		// is left alone.
		if have, err := vfs.ReadFile(dstFS, final); err == nil &&
			len(have) == len(data) && crc32.Checksum(have, castagnoli) == want {
			continue
		}
		staged := path.Join(mv.Dir, rebalStaging+e.Name)
		if err := vfs.WriteFile(dstFS, staged, data); err != nil {
			return fmt.Errorf("placement: stage %s on %s: %w", final, dst, err)
		}
		back, err := vfs.ReadFile(dstFS, staged)
		if err != nil {
			return fmt.Errorf("placement: read back %s on %s: %w", staged, dst, err)
		}
		if len(back) != len(data) || crc32.Checksum(back, castagnoli) != want {
			dstFS.Remove(staged)
			return fmt.Errorf("placement: staged copy of %s on %s fails CRC verify: %w",
				final, dst, vfs.ErrCorrupted)
		}
		if err := dstFS.Rename(staged, final); err != nil {
			return fmt.Errorf("placement: publish %s on %s: %w", final, dst, err)
		}
		rep.FilesCopied++
		rep.BytesCopied += int64(len(data))
	}
	return nil
}

// dropDir removes every file of dir (and then the directory itself, best
// effort) from one departing holder, returning how many files went.
func dropDir(fsys vfs.FS, dir string) (int, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if vfs.Exists(fsys, dir) {
			return 0, err
		}
		return 0, nil // nothing there: already dropped
	}
	dropped := 0
	for _, e := range entries {
		if e.IsDir {
			continue
		}
		if err := fsys.Remove(path.Join(dir, e.Name)); err != nil {
			return dropped, err
		}
		dropped++
	}
	fsys.Remove(dir) // best effort: fails if subdirectories remain
	return dropped, nil
}
