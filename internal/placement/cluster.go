package placement

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

// Config tunes a Cluster.
type Config struct {
	// HedgeDelay is how long a read waits on the primary replica before
	// racing a mirror. Zero derives the delay from the observed read
	// latency (3x the p99, clamped; DefaultHedgeDelay until enough
	// samples accumulate); a negative value disables hedging.
	HedgeDelay time.Duration
	// Metrics receives the placement.* counters (metrics.Default when
	// nil).
	Metrics *metrics.Registry
}

// DefaultHedgeDelay is the hedge delay used before the latency histogram
// has enough samples to derive one.
const DefaultHedgeDelay = 50 * time.Millisecond

// hedge delay clamp bounds for the p99-derived value.
const (
	minHedgeDelay = 2 * time.Millisecond
	maxHedgeDelay = 500 * time.Millisecond
)

// Cluster is a vfs.FS over a set of storage nodes, routed by a placement
// Table:
//
//   - Create opens the file on its full replica set and every Write lands
//     primary-then-mirror; any replica failure fails the write, so a
//     committed file either exists on all R replicas or the writer saw an
//     error (and the layers above roll the container back via their
//     journal).
//   - Open/ReadAt fail over across replicas on any error — a down node
//     (vfs.ErrBackendDown after RPC retries) or a corrupted copy
//     (vfs.ErrCorrupted from a verifying layer) silently degrades to the
//     next replica. Reads also hedge: if the preferred replica has not
//     answered within the hedge delay, a mirror is raced and the first
//     success wins, so one slow node cannot stall playback.
//   - MkdirAll/Remove broadcast to every node (directories exist
//     everywhere; Remove tolerates per-node absence).
//   - Rename requires source and destination to share a replica set
//     (same container directory — the only rename the container store
//     performs) and converges when replaying over a partially renamed
//     set.
//
// Nodes that return vfs.ErrBackendDown are marked down (counted once per
// transition under placement.node.<name>.down) and deprioritized — never
// skipped entirely, so a wrongly marked node still gets retried when it
// is the last copy. Any success through a node clears its mark; Probe
// checks one explicitly.
type Cluster struct {
	mu    sync.RWMutex
	table *Table
	nodes map[string]vfs.FS
	down  map[string]bool

	cfg Config
	reg *metrics.Registry
	m   clusterMetrics
}

type clusterMetrics struct {
	reads      *metrics.Counter
	readNS     *metrics.Histogram
	failovers  *metrics.Counter
	hedgeFired *metrics.Counter
	hedgeWins  *metrics.Counter
}

// NewCluster builds a cluster over the table and one FS per node. Every
// table node must have an FS.
func NewCluster(table *Table, nodes map[string]vfs.FS, cfg Config) (*Cluster, error) {
	if err := table.Validate(); err != nil {
		return nil, err
	}
	for _, n := range table.Nodes {
		if nodes[n.Name] == nil {
			return nil, fmt.Errorf("placement: no FS for node %q", n.Name)
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	all := make(map[string]vfs.FS, len(nodes))
	for name, fsys := range nodes {
		all[name] = fsys
	}
	return &Cluster{
		table: table,
		nodes: all,
		down:  map[string]bool{},
		cfg:   cfg,
		reg:   reg,
		m: clusterMetrics{
			reads:      reg.Counter("placement.reads"),
			readNS:     reg.Histogram("placement.read.ns"),
			failovers:  reg.Counter("placement.failover.reads"),
			hedgeFired: reg.Counter("placement.hedge.fired"),
			hedgeWins:  reg.Counter("placement.hedge.wins"),
		},
	}, nil
}

var _ vfs.FS = (*Cluster)(nil)

// Table returns the installed placement table.
func (c *Cluster) Table() *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.table
}

// SetTable installs a newer table. The version must not go backwards, and
// every node the table names must have an FS (AddNode first).
func (c *Cluster) SetTable(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Version < c.table.Version {
		return fmt.Errorf("placement: stale table version %d (cluster has %d)", t.Version, c.table.Version)
	}
	for _, n := range t.Nodes {
		if c.nodes[n.Name] == nil {
			return fmt.Errorf("placement: no FS for node %q", n.Name)
		}
	}
	c.table = t
	return nil
}

// AddNode registers (or replaces) the FS for a node, ahead of a SetTable
// that references it.
func (c *Cluster) AddNode(name string, fsys vfs.FS) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[name] = fsys
}

// Node returns the FS registered for a node (nil if unknown).
func (c *Cluster) Node(name string) vfs.FS {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[name]
}

// Health reports each registered node's advisory state (true = up).
func (c *Cluster) Health() map[string]bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := make(map[string]bool, len(c.nodes))
	for name := range c.nodes {
		h[name] = !c.down[name]
	}
	return h
}

// Probe checks one node with a root stat, clearing or setting its down
// mark by the outcome.
func (c *Cluster) Probe(name string) error {
	fsys := c.Node(name)
	if fsys == nil {
		return fmt.Errorf("placement: unknown node %q", name)
	}
	if _, err := fsys.Stat("/"); err != nil {
		c.note(name, err)
		return err
	}
	c.markUp(name)
	return nil
}

// note records an operation failure against a node: transport-level
// failures (vfs.ErrBackendDown, i.e. RPC retries exhausted) mark it down.
func (c *Cluster) note(name string, err error) {
	if !errors.Is(err, vfs.ErrBackendDown) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.down[name] {
		c.down[name] = true
		c.reg.Counter("placement.node." + name + ".down").Inc()
	}
}

// markUp clears a node's down mark after any success through it.
func (c *Cluster) markUp(name string) {
	c.mu.RLock()
	marked := c.down[name]
	c.mu.RUnlock()
	if !marked {
		return
	}
	c.mu.Lock()
	delete(c.down, name)
	c.mu.Unlock()
}

// place returns the replica set for name under the current table.
func (c *Cluster) place(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.table.Place(name)
}

// fs returns the FS for a node name; the node is always registered
// (tables are validated against the node map).
func (c *Cluster) fs(name string) vfs.FS {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[name]
}

// healthOrder returns replica indices with down-marked nodes
// deprioritized but never dropped.
func (c *Cluster) healthOrder(reps []string) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	order := make([]int, 0, len(reps))
	for i, name := range reps {
		if !c.down[name] {
			order = append(order, i)
		}
	}
	for i, name := range reps {
		if c.down[name] {
			order = append(order, i)
		}
	}
	return order
}

// allNodes returns every registered node name, sorted for determinism.
func (c *Cluster) allNodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Create implements vfs.FS: the file opens on its whole replica set, and
// every write lands primary-then-mirror (see replFile).
func (c *Cluster) Create(name string) (vfs.File, error) {
	reps := c.place(name)
	files := make([]vfs.File, 0, len(reps))
	for _, node := range reps {
		f, err := c.fs(node).Create(name)
		if err != nil {
			for i, g := range files {
				g.Close()
				c.fs(reps[i]).Remove(name) // best-effort undo of the partial set
			}
			c.note(node, err)
			return nil, fmt.Errorf("placement: create %s on %s: %w", name, node, err)
		}
		files = append(files, f)
	}
	return &replFile{name: vfs.Clean(name), reps: reps, files: files, c: c}, nil
}

// Open implements vfs.FS, returning a read handle that fails over (and
// hedges) across the replica set.
func (c *Cluster) Open(name string) (vfs.File, error) {
	reps := c.place(name)
	f := &clusterFile{c: c, name: vfs.Clean(name), reps: reps, files: make([]vfs.File, len(reps))}
	var firstErr error
	for _, i := range c.healthOrder(reps) {
		h, err := c.fs(reps[i]).Open(name)
		if err == nil {
			f.files[i] = h
			f.pref = i
			f.size = h.Size()
			c.markUp(reps[i])
			return f, nil
		}
		c.note(reps[i], err)
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("placement: open %s: %w", name, firstErr)
}

// watchCRCTable is CRC32C (Castagnoli), matching plfs and the rpc watch op
// so CRCs are comparable across local and remote replicas.
var watchCRCTable = crc32.MakeTable(crc32.Castagnoli)

func watchCRC(data []byte) uint32 { return crc32.Checksum(data, watchCRCTable) }

// nodeWatcher is implemented by node FSes that can long-poll a file
// server-side (rpc.Client, rpc.Pool); see plfs.WatchDropping.
type nodeWatcher interface {
	WatchFile(name string, lastCRC uint32, timeout time.Duration) ([]byte, uint32, bool, error)
}

// WatchFile long-polls name until its content differs from lastCRC or the
// timeout elapses, failing over across the replica set. Replicas that
// support server-side watching (RPC nodes) carry the poll on the node;
// in-process replicas are polled locally. A node failure mid-watch moves
// the poll to the next replica with the remaining timeout, so a tailing
// reader survives losing R-1 replicas — the same guarantee demand reads
// have.
func (c *Cluster) WatchFile(name string, lastCRC uint32, timeout time.Duration) ([]byte, uint32, bool, error) {
	const localPoll = 2 * time.Millisecond
	deadline := time.Now().Add(timeout)
	reps := c.place(name)
	var firstErr error
	for _, i := range c.healthOrder(reps) {
		node := reps[i]
		fsys := c.fs(node)
		remaining := time.Until(deadline)
		if remaining < 0 {
			remaining = 0
		}
		if nw, ok := fsys.(nodeWatcher); ok {
			data, crc, changed, err := nw.WatchFile(name, lastCRC, remaining)
			if err == nil {
				c.markUp(node)
				return data, crc, changed, nil
			}
			c.note(node, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// In-process replica: poll locally until change or deadline.
		for {
			data, err := vfs.ReadFile(fsys, name)
			if err != nil && !errors.Is(err, vfs.ErrNotExist) {
				c.note(node, err)
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			crc := uint32(0)
			if err == nil {
				crc = watchCRC(data)
			} else {
				data = nil
			}
			if crc != lastCRC {
				c.markUp(node)
				return data, crc, true, nil
			}
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return nil, lastCRC, false, nil
			}
			if remaining < localPoll {
				time.Sleep(remaining)
			} else {
				time.Sleep(localPoll)
			}
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("placement: watch %s: no replicas", name)
	}
	return nil, 0, false, fmt.Errorf("placement: watch %s: %w", name, firstErr)
}

// Stat implements vfs.FS, failing over across the replica set. Absence is
// reported only when every replica agrees (or is unreachable).
func (c *Cluster) Stat(name string) (vfs.FileInfo, error) {
	reps := c.place(name)
	var firstErr error
	for _, i := range c.healthOrder(reps) {
		info, err := c.fs(reps[i]).Stat(name)
		if err == nil {
			c.markUp(reps[i])
			return info, nil
		}
		c.note(reps[i], err)
		if firstErr == nil {
			firstErr = err
		}
	}
	return vfs.FileInfo{}, firstErr
}

// ReadDir implements vfs.FS as a union over every node, so listings stay
// complete while any replica of each file is reachable. Per-node absence
// and down nodes are tolerated; absence is reported only when no node has
// the directory. When replicas disagree on a file's size (a torn mirror
// mid-recovery) the largest copy is reported.
func (c *Cluster) ReadDir(name string) ([]vfs.FileInfo, error) {
	merged := map[string]vfs.FileInfo{}
	var firstErr error
	answered := false
	for _, node := range c.allNodes() {
		entries, err := c.fs(node).ReadDir(name)
		if err != nil {
			if !errors.Is(err, vfs.ErrNotExist) {
				c.note(node, err)
				if firstErr == nil {
					firstErr = err
				}
			}
			continue
		}
		answered = true
		for _, e := range entries {
			if prev, ok := merged[e.Name]; !ok || e.Size > prev.Size {
				merged[e.Name] = e
			}
		}
	}
	if !answered {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("placement: readdir %s: %w", name, vfs.ErrNotExist)
	}
	out := make([]vfs.FileInfo, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// MkdirAll implements vfs.FS, broadcasting to every node: directories are
// cheap and existing everywhere keeps Stat/Create/ReadDir simple.
func (c *Cluster) MkdirAll(name string) error {
	for _, node := range c.allNodes() {
		if err := c.fs(node).MkdirAll(name); err != nil {
			c.note(node, err)
			return fmt.Errorf("placement: mkdirall %s on %s: %w", name, node, err)
		}
	}
	return nil
}

// Remove implements vfs.FS, broadcasting to every node. Per-node absence
// is fine (files live only on their replicas; leftovers may sit anywhere
// after a membership change), but an unreachable node fails the call —
// a copy could survive there, and "removed" must mean removed.
func (c *Cluster) Remove(name string) error {
	removed := 0
	var firstErr error
	for _, node := range c.allNodes() {
		err := c.fs(node).Remove(name)
		if err == nil {
			removed++
			continue
		}
		if errors.Is(err, vfs.ErrNotExist) {
			continue
		}
		c.note(node, err)
		if firstErr == nil {
			firstErr = fmt.Errorf("placement: remove %s on %s: %w", name, node, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if removed == 0 {
		return fmt.Errorf("placement: remove %s: %w", name, vfs.ErrNotExist)
	}
	return nil
}

// Rename implements vfs.FS for same-replica-set renames (the container
// store only renames within a container directory). The rename applies on
// every replica; a replica where the source is already gone but the
// destination exists counts as applied, so replaying a commit that a
// crash left half-renamed converges instead of failing.
func (c *Cluster) Rename(oldname, newname string) error {
	reps := c.place(oldname)
	if !sameSet(reps, c.place(newname)) {
		return fmt.Errorf("placement: rename %s -> %s crosses replica sets", oldname, newname)
	}
	applied := 0
	var firstErr error
	for _, node := range reps {
		err := c.fs(node).Rename(oldname, newname)
		if err == nil {
			applied++
			continue
		}
		if errors.Is(err, vfs.ErrNotExist) &&
			!vfs.Exists(c.fs(node), oldname) && vfs.Exists(c.fs(node), newname) {
			applied++ // already renamed on this replica: idempotent replay
			continue
		}
		c.note(node, err)
		if firstErr == nil {
			firstErr = fmt.Errorf("placement: rename %s on %s: %w", oldname, node, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if applied == 0 {
		return fmt.Errorf("placement: rename %s: %w", oldname, vfs.ErrNotExist)
	}
	return nil
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[string]bool, len(a))
	for _, s := range a {
		in[s] = true
	}
	for _, s := range b {
		if !in[s] {
			return false
		}
	}
	return true
}

// hedgeDelay resolves the configured or p99-derived hedge delay
// (0 disables; see Config.HedgeDelay).
func (c *Cluster) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay < 0 {
		return 0
	}
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	if c.m.readNS.Count() < 64 {
		return DefaultHedgeDelay
	}
	d := 3 * time.Duration(c.m.readNS.Quantile(0.99))
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

// replFile mirrors writes across a replica set, primary first. Reads come
// from the primary (the caller just wrote the bytes; this is the
// read-back-verify path, not playback).
type replFile struct {
	name  string
	reps  []string
	files []vfs.File
	c     *Cluster
}

func (f *replFile) Name() string { return f.name }
func (f *replFile) Size() int64  { return f.files[0].Size() }

func (f *replFile) Write(p []byte) (int, error) {
	n, err := f.files[0].Write(p)
	if err != nil {
		f.c.note(f.reps[0], err)
		return n, fmt.Errorf("placement: write %s on %s: %w", f.name, f.reps[0], err)
	}
	for i := 1; i < len(f.files); i++ {
		if _, err := f.files[i].Write(p[:n]); err != nil {
			f.c.note(f.reps[i], err)
			return 0, fmt.Errorf("placement: mirror write %s on %s: %w", f.name, f.reps[i], err)
		}
	}
	return n, nil
}

func (f *replFile) Read(p []byte) (int, error)              { return f.files[0].Read(p) }
func (f *replFile) ReadAt(p []byte, off int64) (int, error) { return f.files[0].ReadAt(p, off) }

func (f *replFile) Close() error {
	var firstErr error
	for i, g := range f.files {
		if err := g.Close(); err != nil && firstErr == nil {
			f.c.note(f.reps[i], err)
			firstErr = fmt.Errorf("placement: close %s on %s: %w", f.name, f.reps[i], err)
		}
	}
	return firstErr
}

// clusterFile is a read handle spanning a replica set: per-replica
// handles open lazily, reads prefer the last replica that answered, any
// error fails over to the next replica, and slow reads hedge. Safe for
// concurrent use (prefetching readers issue overlapping ReadAts).
type clusterFile struct {
	c    *Cluster
	name string
	reps []string

	mu     sync.Mutex
	files  []vfs.File // indexed like reps; nil = not open
	pref   int        // preferred replica index
	size   int64
	off    int64 // sequential Read cursor
	closed bool
}

func (f *clusterFile) Name() string { return f.name }

func (f *clusterFile) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

func (f *clusterFile) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("placement: %s opened read-only (writes go through Create)", f.name)
}

// handle returns the open handle for replica i, opening it on demand.
func (f *clusterFile) handle(i int) (vfs.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, vfs.ErrClosed
	}
	if f.files[i] != nil {
		return f.files[i], nil
	}
	h, err := f.c.fs(f.reps[i]).Open(f.name)
	if err != nil {
		return nil, err
	}
	f.files[i] = h
	return h, nil
}

// dropHandle discards replica i's handle after a failure (its state is
// suspect; a later attempt reopens).
func (f *clusterFile) dropHandle(i int) {
	f.mu.Lock()
	h := f.files[i]
	f.files[i] = nil
	f.mu.Unlock()
	if h != nil {
		h.Close()
	}
}

func (f *clusterFile) setPreferred(i int) {
	f.mu.Lock()
	f.pref = i
	f.mu.Unlock()
}

// order returns replica indices to try: the preferred replica, then the
// rest healthy-first.
func (f *clusterFile) order() []int {
	f.mu.Lock()
	pref := f.pref
	f.mu.Unlock()
	rest := make([]string, 0, len(f.reps))
	idx := make(map[string]int, len(f.reps))
	for i, name := range f.reps {
		idx[name] = i
		if i != pref {
			rest = append(rest, name)
		}
	}
	order := []int{pref}
	for _, i := range f.c.healthOrder(rest) {
		order = append(order, idx[rest[i]])
	}
	return order
}

func (f *clusterFile) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.off += int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *clusterFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, vfs.ErrClosed
	}
	f.mu.Unlock()
	f.c.m.reads.Inc()
	start := time.Now()
	n, err := f.readFailover(p, off)
	if err == nil || err == io.EOF {
		f.c.m.readNS.Observe(time.Since(start).Nanoseconds())
	}
	return n, err
}

type readResult struct {
	idx int
	n   int
	err error
	buf []byte
}

// readFailover reads from the replica set: the preferred replica first,
// hedging a mirror after the hedge delay, and failing over on any error.
// Each attempt reads into a private buffer so a late loser cannot clobber
// the winner's bytes.
func (f *clusterFile) readFailover(p []byte, off int64) (int, error) {
	order := f.order()
	delay := f.c.hedgeDelay()
	if delay <= 0 || len(order) == 1 {
		// Plain sequential failover.
		var firstErr error
		for pos, i := range order {
			h, err := f.handle(i)
			if err == nil {
				var n int
				n, err = h.ReadAt(p, off)
				if err == nil || err == io.EOF {
					f.setPreferred(i)
					f.c.markUp(f.reps[i])
					return n, err
				}
			}
			f.c.note(f.reps[i], err)
			f.dropHandle(i)
			if firstErr == nil {
				firstErr = err
			}
			if pos < len(order)-1 {
				f.c.m.failovers.Inc()
			}
		}
		return 0, fmt.Errorf("placement: read %s: all replicas failed: %w", f.name, firstErr)
	}

	results := make(chan readResult, len(order))
	launch := func(i int) {
		go func() {
			h, err := f.handle(i)
			if err != nil {
				results <- readResult{idx: i, err: err}
				return
			}
			buf := make([]byte, len(p))
			n, err := h.ReadAt(buf, off)
			results <- readResult{idx: i, n: n, err: err, buf: buf}
		}()
	}
	launched := 1
	launch(order[0])
	timer := time.NewTimer(delay)
	defer timer.Stop()
	hedged := false
	var firstErr error
	for received := 0; received < launched; {
		select {
		case r := <-results:
			received++
			if r.err == nil || r.err == io.EOF {
				if hedged && r.idx != order[0] {
					f.c.m.hedgeWins.Inc()
				}
				f.setPreferred(r.idx)
				f.c.markUp(f.reps[r.idx])
				return copy(p, r.buf[:r.n]), r.err
			}
			f.c.note(f.reps[r.idx], r.err)
			f.dropHandle(r.idx)
			if firstErr == nil {
				firstErr = r.err
			}
			if launched < len(order) {
				f.c.m.failovers.Inc()
				launch(order[launched])
				launched++
			}
		case <-timer.C:
			if launched < len(order) {
				hedged = true
				f.c.m.hedgeFired.Inc()
				launch(order[launched])
				launched++
			}
		}
	}
	return 0, fmt.Errorf("placement: read %s: all replicas failed: %w", f.name, firstErr)
}

func (f *clusterFile) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return vfs.ErrClosed
	}
	f.closed = true
	open := make([]vfs.File, 0, len(f.files))
	for i, h := range f.files {
		if h != nil {
			open = append(open, h)
			f.files[i] = nil
		}
	}
	f.mu.Unlock()
	var firstErr error
	for _, h := range open {
		if err := h.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
