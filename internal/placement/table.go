// Package placement maps container paths to storage nodes. A versioned
// Table names the cluster's nodes and assigns every container directory
// an ordered replica set of R nodes — explicitly via pins, or by a
// consistent-hash ring for everything unpinned, so new containers spread
// without touching the table. Cluster is a vfs.FS over the node set that
// enforces the layout: writes commit primary-then-mirror across the
// replica set, reads fail over (and hedge) across replicas, and Rebalance
// migrates data when the table changes.
//
// The placement key of a path is its parent directory
// (ContainerKey), NOT the full path: every dropping and index file of a
// container colocates on the same replica set, so the container store's
// same-directory renames (staging -> committed) stay node-local and
// atomic. Directories themselves exist on every node — MkdirAll
// broadcasts — only file payloads are placed.
package placement

import (
	"encoding/json"
	"fmt"
	"path"
	"sync"

	"repro/internal/vfs"
)

// Node is one cluster member: a stable name (the placement identity) and
// a dial address (how clients reach it; empty for in-process tests).
type Node struct {
	Name string `json:"name"`
	Addr string `json:"addr,omitempty"`
}

// Table is the versioned cluster layout. It is immutable once validated;
// layout changes install a NEW table with a higher version, which is what
// lets every node reject stale installs (rpc opTablePut) and lets
// rebalancing distinguish "before" from "after".
type Table struct {
	Version     uint64 `json:"version"`
	Replication int    `json:"replication"`
	Nodes       []Node `json:"nodes"`
	// Pins map a container directory (cleaned path) to an explicit
	// ordered replica list, overriding the ring. The first entry is the
	// primary. Lists longer than Replication are truncated at placement
	// time, so a table can carry provenance without changing R.
	Pins map[string][]string `json:"pins,omitempty"`

	ringOnce sync.Once
	ring     *ring
}

// ContainerKey returns the placement key for a path: the parent directory
// of the cleaned path. All files in one directory share a key, and
// therefore a replica set.
func ContainerKey(name string) string { return path.Dir(vfs.Clean(name)) }

// Validate checks the table's internal consistency.
func (t *Table) Validate() error {
	if t.Replication < 1 {
		return fmt.Errorf("placement: replication %d < 1", t.Replication)
	}
	if len(t.Nodes) < t.Replication {
		return fmt.Errorf("placement: %d nodes cannot hold %d replicas", len(t.Nodes), t.Replication)
	}
	seen := make(map[string]bool, len(t.Nodes))
	for i, n := range t.Nodes {
		if n.Name == "" {
			return fmt.Errorf("placement: node %d has no name", i)
		}
		if seen[n.Name] {
			return fmt.Errorf("placement: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
	}
	for dir, pin := range t.Pins {
		if dir != vfs.Clean(dir) {
			return fmt.Errorf("placement: pin key %q is not a cleaned path", dir)
		}
		if len(pin) < t.Replication {
			return fmt.Errorf("placement: pin for %q lists %d nodes, need %d", dir, len(pin), t.Replication)
		}
		pinned := make(map[string]bool, len(pin))
		for _, name := range pin {
			if !seen[name] {
				return fmt.Errorf("placement: pin for %q references unknown node %q", dir, name)
			}
			if pinned[name] {
				return fmt.Errorf("placement: pin for %q repeats node %q", dir, name)
			}
			pinned[name] = true
		}
	}
	return nil
}

// PlaceDir returns the ordered replica set (primary first) for a
// container directory.
func (t *Table) PlaceDir(dir string) []string {
	dir = vfs.Clean(dir)
	if pin, ok := t.Pins[dir]; ok {
		return append([]string(nil), pin[:t.Replication]...)
	}
	t.ringOnce.Do(func() { t.ring = buildRing(t.Nodes) })
	return t.ring.place(dir, t.Replication)
}

// Place returns the ordered replica set for the container holding name
// (see ContainerKey).
func (t *Table) Place(name string) []string { return t.PlaceDir(ContainerKey(name)) }

// NodeAddr returns the dial address of the named node ("" if unknown).
func (t *Table) NodeAddr(name string) string {
	for _, n := range t.Nodes {
		if n.Name == name {
			return n.Addr
		}
	}
	return ""
}

// Marshal renders the table as JSON, the wire and on-disk form served by
// the node metadata endpoint.
func (t *Table) Marshal() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Unmarshal parses and validates a JSON table.
func Unmarshal(data []byte) (*Table, error) {
	t := &Table{}
	if err := json.Unmarshal(data, t); err != nil {
		return nil, fmt.Errorf("placement: parse table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
