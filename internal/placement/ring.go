package placement

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodesPerNode is how many ring points each node contributes. More
// points smooth the load split and shrink how much data moves when
// membership changes; 64 keeps the imbalance within a few percent for
// small clusters while the ring stays tiny.
const vnodesPerNode = 64

// ring is a consistent-hash ring over node names: a key lands on the
// first point clockwise from its hash, and its R replicas are the next
// R distinct nodes. Adding a node moves only ~1/N of the keys.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a 64-bit bit finalizer (murmur3's fmix64). FNV-1a alone maps
// similar keys — container names differing in a trailing digit — to
// nearby hashes, which all fall into the same ring gap and pile onto one
// node; the finalizer avalanches those low-byte differences across the
// whole word.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func buildRing(nodes []Node) *ring {
	r := &ring{points: make([]ringPoint, 0, len(nodes)*vnodesPerNode)}
	for _, n := range nodes {
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(n.Name + "#" + strconv.Itoa(v)),
				node: n.Name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// place returns the first count distinct nodes clockwise from key's hash,
// in ring order (the first is the primary).
func (r *ring) place(key string, count int) []string {
	if len(r.points) == 0 || count < 1 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, count)
	seen := make(map[string]bool, count)
	for i := 0; i < len(r.points) && len(out) < count; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}
