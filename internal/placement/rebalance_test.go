package placement

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/vfs"
)

// seedCluster writes n containers of two files each through the cluster
// and returns the payloads by path.
func seedCluster(t *testing.T, c *Cluster, n int) map[string][]byte {
	t.Helper()
	payloads := map[string][]byte{}
	for i := 0; i < n; i++ {
		for _, f := range []string{"subset.0-9", ".plfs_index"} {
			name := fmt.Sprintf("/containers/traj-%d/%s", i, f)
			payloads[name] = []byte(fmt.Sprintf("bytes of %s", name))
			if err := vfs.WriteFile(c, name, payloads[name]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return payloads
}

// assertLayout checks the exactly-one-copy-per-replica invariant: every
// file exists byte-identically on each node of its replica set and
// nowhere else.
func assertLayout(t *testing.T, c *Cluster, mems map[string]*vfs.MemFS, payloads map[string][]byte) {
	t.Helper()
	tbl := c.Table()
	for name, want := range payloads {
		reps := tbl.Place(name)
		for node, m := range mems {
			exists := vfs.Exists(m, name)
			if contains(reps, node) {
				if !exists {
					t.Fatalf("v%d: %s missing on replica %s", tbl.Version, name, node)
				}
				got, err := vfs.ReadFile(m, name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("v%d: %s on %s diverged: %v", tbl.Version, name, node, err)
				}
			} else if exists {
				t.Fatalf("v%d: surplus copy of %s on %s (replicas %v)", tbl.Version, name, node, reps)
			}
		}
		got, err := vfs.ReadFile(c, name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("v%d: cluster read of %s: %v", tbl.Version, name, err)
		}
	}
}

func TestRebalanceNodeJoin(t *testing.T) {
	c, mems := newTestCluster(t, Config{HedgeDelay: -1})
	payloads := seedCluster(t, c, 16)
	assertLayout(t, c, mems, payloads)

	mems["n4"] = vfs.NewMemFS()
	c.AddNode("n4", mems["n4"])
	next := &Table{Version: 2, Replication: 2,
		Nodes: append(threeNodes(), Node{Name: "n4", Addr: "a4"})}
	dirs, err := c.DataDirs("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 16 {
		t.Fatalf("DataDirs found %d dirs, want 16", len(dirs))
	}
	rep, err := c.Rebalance(next, dirs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Table().Version != 2 {
		t.Fatalf("table not installed: v%d", c.Table().Version)
	}
	if rep.FilesCopied == 0 || rep.BytesCopied == 0 {
		t.Fatalf("report counted nothing: %+v", rep)
	}
	assertLayout(t, c, mems, payloads)

	// No staging leftovers anywhere.
	for node, m := range mems {
		vfs.Walk(m, "/", func(p string, info vfs.FileInfo) error {
			if !info.IsDir && bytes.Contains([]byte(p), []byte(rebalStaging)) {
				t.Errorf("staging leftover %s on %s", p, node)
			}
			return nil
		})
	}

	// Rerunning against the same target is a planned no-op.
	again := &Table{Version: 3, Replication: 2, Nodes: next.Nodes}
	rep2, err := c.Rebalance(again, dirs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FilesCopied != 0 || rep2.Dirs != 0 {
		t.Fatalf("idempotent rerun copied: %+v", rep2)
	}
}

func TestRebalanceNodeDrain(t *testing.T) {
	c, mems := newTestCluster(t, Config{HedgeDelay: -1})
	mems["n4"] = vfs.NewMemFS()
	c.AddNode("n4", mems["n4"])
	four := &Table{Version: 2, Replication: 2,
		Nodes: append(threeNodes(), Node{Name: "n4", Addr: "a4"})}
	if err := c.SetTable(four); err != nil {
		t.Fatal(err)
	}
	payloads := seedCluster(t, c, 16)

	// Drain n4 back out of the cluster.
	next := &Table{Version: 3, Replication: 2, Nodes: threeNodes()}
	dirs, err := c.DataDirs("/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebalance(next, dirs); err != nil {
		t.Fatal(err)
	}
	assertLayout(t, c, mems, payloads)
	// The drained node holds no files at all.
	vfs.Walk(mems["n4"], "/", func(p string, info vfs.FileInfo) error {
		if !info.IsDir {
			t.Errorf("drained node still holds %s", p)
		}
		return nil
	})
}

func TestRebalanceCrashMidCopyIsRerunnable(t *testing.T) {
	c, mems := newTestCluster(t, Config{HedgeDelay: -1})
	payloads := seedCluster(t, c, 12)

	// n4's FS dies partway through the copy phase: fail every write after
	// the first few, then kill the run.
	mems["n4"] = vfs.NewMemFS()
	crash := &crashAfterFS{FS: mems["n4"], allow: 5}
	c.AddNode("n4", crash)
	next := &Table{Version: 2, Replication: 2,
		Nodes: append(threeNodes(), Node{Name: "n4", Addr: "a4"})}
	dirs, err := c.DataDirs("/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebalance(next, dirs); err == nil {
		t.Fatal("rebalance survived a crashing target")
	}
	// The old table still routes: nothing is lost, reads stay intact.
	if c.Table().Version != 1 {
		t.Fatalf("crashed rebalance installed table v%d", c.Table().Version)
	}
	for name, want := range payloads {
		got, err := vfs.ReadFile(c, name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("after crash, read %s: %v", name, err)
		}
	}

	// Heal the node and rerun the same rebalance: it converges.
	c.AddNode("n4", mems["n4"])
	if _, err := c.Rebalance(next, dirs); err != nil {
		t.Fatalf("rerun after crash: %v", err)
	}
	assertLayout(t, c, mems, payloads)
}

// crashAfterFS lets allow file creations through, then fails everything.
type crashAfterFS struct {
	vfs.FS
	allow int
}

func (f *crashAfterFS) Create(name string) (vfs.File, error) {
	if f.allow <= 0 {
		return nil, vfs.ErrBackendDown
	}
	f.allow--
	return f.FS.Create(name)
}

func TestRebalanceRejectsStaleTarget(t *testing.T) {
	c, _ := newTestCluster(t, Config{HedgeDelay: -1})
	same := &Table{Version: 1, Replication: 2, Nodes: threeNodes()}
	if _, err := c.Rebalance(same, nil); err == nil {
		t.Fatal("rebalance to the same version accepted")
	}
	ghost := &Table{Version: 2, Replication: 2,
		Nodes: append(threeNodes(), Node{Name: "ghost"})}
	if _, err := c.Rebalance(ghost, nil); err == nil {
		t.Fatal("rebalance to an unregistered node accepted")
	}
}
