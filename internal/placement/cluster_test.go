package placement

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

// downFS is a node whose process is gone: every operation fails with
// vfs.ErrBackendDown, like an RPC client with exhausted retries.
type downFS struct{}

func (downFS) Create(string) (vfs.File, error)        { return nil, vfs.ErrBackendDown }
func (downFS) Open(string) (vfs.File, error)          { return nil, vfs.ErrBackendDown }
func (downFS) Stat(string) (vfs.FileInfo, error)      { return vfs.FileInfo{}, vfs.ErrBackendDown }
func (downFS) ReadDir(string) ([]vfs.FileInfo, error) { return nil, vfs.ErrBackendDown }
func (downFS) MkdirAll(string) error                  { return vfs.ErrBackendDown }
func (downFS) Remove(string) error                    { return vfs.ErrBackendDown }
func (downFS) Rename(string, string) error            { return vfs.ErrBackendDown }

// slowFS delays reads, standing in for one overloaded node.
type slowFS struct {
	vfs.FS
	delay time.Duration
}

func (s slowFS) Open(name string) (vfs.File, error) {
	f, err := s.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return slowFile{File: f, delay: s.delay}, nil
}

type slowFile struct {
	vfs.File
	delay time.Duration
}

func (f slowFile) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(f.delay)
	return f.File.ReadAt(p, off)
}

// corruptFS serves reads that fail verification, standing in for a replica
// whose CRC check rejected the bytes.
type corruptFS struct{ vfs.FS }

func (c corruptFS) Open(name string) (vfs.File, error) {
	f, err := c.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return corruptFile{File: f}, nil
}

type corruptFile struct{ vfs.File }

func (f corruptFile) ReadAt(p []byte, off int64) (int, error) { return 0, vfs.ErrCorrupted }

// newTestCluster builds an R=2 cluster over three in-memory nodes.
func newTestCluster(t *testing.T, cfg Config) (*Cluster, map[string]*vfs.MemFS) {
	t.Helper()
	mems := map[string]*vfs.MemFS{
		"n1": vfs.NewMemFS(), "n2": vfs.NewMemFS(), "n3": vfs.NewMemFS(),
	}
	nodes := map[string]vfs.FS{}
	for name, m := range mems {
		nodes[name] = m
	}
	tbl := &Table{Version: 1, Replication: 2, Nodes: threeNodes()}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	c, err := NewCluster(tbl, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, mems
}

// holders returns which in-memory nodes hold name.
func holders(mems map[string]*vfs.MemFS, name string) []string {
	var out []string
	for _, n := range []string{"n1", "n2", "n3"} {
		if vfs.Exists(mems[n], name) {
			out = append(out, n)
		}
	}
	return out
}

func TestClusterWriteLandsOnExactlyRReplicas(t *testing.T) {
	c, mems := newTestCluster(t, Config{HedgeDelay: -1})
	want := []byte("replicated bytes")
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("/c/set-%d/dropping", i)
		if err := vfs.WriteFile(c, name, want); err != nil {
			t.Fatal(err)
		}
		hold := holders(mems, name)
		if len(hold) != 2 {
			t.Fatalf("%s lives on %v, want exactly 2 replicas", name, hold)
		}
		reps := c.Table().Place(name)
		for _, h := range hold {
			if !contains(reps, h) {
				t.Fatalf("%s on %s, outside its replica set %v", name, h, reps)
			}
		}
		// Byte-identity on every replica.
		for _, h := range hold {
			got, err := vfs.ReadFile(mems[h], name)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("replica %s of %s diverged: %q, %v", h, name, got, err)
			}
		}
		got, err := vfs.ReadFile(c, name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("cluster read of %s = %q, %v", name, got, err)
		}
	}
}

func TestClusterDegradedReadsWithNodeDown(t *testing.T) {
	reg := metrics.NewRegistry()
	c, _ := newTestCluster(t, Config{HedgeDelay: -1, Metrics: reg})
	payloads := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("/c/set-%d/dropping", i)
		payloads[name] = []byte(fmt.Sprintf("payload-%d", i))
		if err := vfs.WriteFile(c, name, payloads[name]); err != nil {
			t.Fatal(err)
		}
	}
	// Kill each node in turn: every file keeps reading byte-identically
	// through its surviving replica.
	for _, victim := range []string{"n1", "n2", "n3"} {
		alive := c.Node(victim)
		c.AddNode(victim, downFS{})
		for name, want := range payloads {
			got, err := vfs.ReadFile(c, name)
			if err != nil {
				t.Fatalf("victim %s: read %s: %v", victim, name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("victim %s: read %s = %q, want %q", victim, name, got, want)
			}
		}
		if h := c.Health(); h[victim] {
			t.Fatalf("victim %s not marked down after failovers", victim)
		}
		c.AddNode(victim, alive)
		if err := c.Probe(victim); err != nil {
			t.Fatalf("probe of revived %s: %v", victim, err)
		}
		if h := c.Health(); !h[victim] {
			t.Fatalf("revived %s still marked down", victim)
		}
	}
	if reg.Counter("placement.node.n1.down").Value() != 1 {
		t.Fatalf("down transitions for n1 = %d, want 1",
			reg.Counter("placement.node.n1.down").Value())
	}
}

func TestClusterFailoverOnCorruptedReplica(t *testing.T) {
	c, mems := newTestCluster(t, Config{HedgeDelay: -1})
	name := "/c/set-x/dropping"
	want := []byte("verified payload")
	if err := vfs.WriteFile(c, name, want); err != nil {
		t.Fatal(err)
	}
	primary := c.Table().Place(name)[0]
	c.AddNode(primary, corruptFS{FS: mems[primary]})
	got, err := vfs.ReadFile(c, name)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read with corrupted primary = %q, %v", got, err)
	}
	// A corrupted replica is an I/O-level failure, not a dead node: no
	// down mark.
	if h := c.Health(); !h[primary] {
		t.Fatalf("corruption marked %s down", primary)
	}
}

func TestClusterHedgedReadBeatsSlowNode(t *testing.T) {
	reg := metrics.NewRegistry()
	c, mems := newTestCluster(t, Config{HedgeDelay: 5 * time.Millisecond, Metrics: reg})
	name := "/c/set-h/dropping"
	want := []byte("hedged payload")
	if err := vfs.WriteFile(c, name, want); err != nil {
		t.Fatal(err)
	}
	primary := c.Table().Place(name)[0]
	c.AddNode(primary, slowFS{FS: mems[primary], delay: 300 * time.Millisecond})
	start := time.Now()
	got, err := vfs.ReadFile(c, name)
	elapsed := time.Since(start)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("hedged read = %q, %v", got, err)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("hedged read took %v; the slow primary stalled playback", elapsed)
	}
	if reg.Counter("placement.hedge.fired").Value() < 1 {
		t.Fatal("hedge never fired")
	}
	if reg.Counter("placement.hedge.wins").Value() < 1 {
		t.Fatal("hedge fired but the mirror never won")
	}
}

func TestClusterAutoHedgeDelayFromP99(t *testing.T) {
	reg := metrics.NewRegistry()
	c, _ := newTestCluster(t, Config{Metrics: reg})
	// Before any samples: the static default.
	if d := c.hedgeDelay(); d != DefaultHedgeDelay {
		t.Fatalf("cold hedge delay = %v, want %v", d, DefaultHedgeDelay)
	}
	// Feed the latency histogram fast reads; the derived delay collapses
	// toward 3x p99, clamped below the default.
	h := reg.Histogram("placement.read.ns")
	for i := 0; i < 200; i++ {
		h.Observe(int64(200 * time.Microsecond))
	}
	d := c.hedgeDelay()
	if d >= DefaultHedgeDelay || d < minHedgeDelay {
		t.Fatalf("derived hedge delay = %v, want clamped below default", d)
	}
}

func TestClusterReadDirUnionAndRename(t *testing.T) {
	c, mems := newTestCluster(t, Config{HedgeDelay: -1})
	dir := "/c/set-r"
	if err := vfs.WriteFile(c, dir+"/staging.a", []byte("aa")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, dir+"/b", []byte("bb")); err != nil {
		t.Fatal(err)
	}
	entries, err := c.ReadDir(dir)
	if err != nil || len(entries) != 2 {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	if entries[0].Name != "b" || entries[1].Name != "staging.a" {
		t.Fatalf("ReadDir order = %v", entries)
	}

	// Same-directory rename (the commit publish) applies on all replicas.
	if err := c.Rename(dir+"/staging.a", dir+"/a"); err != nil {
		t.Fatal(err)
	}
	if hold := holders(mems, dir+"/staging.a"); hold != nil {
		t.Fatalf("staging name survives on %v", hold)
	}
	if hold := holders(mems, dir+"/a"); len(hold) != 2 {
		t.Fatalf("renamed file on %v, want 2 replicas", hold)
	}

	// Replaying the rename over a half-applied set converges: undo it on
	// one replica, rename again.
	reps := c.Table().Place(dir + "/a")
	if err := mems[reps[1]].Rename(dir+"/a", dir+"/staging.a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(dir+"/staging.a", dir+"/a"); err != nil {
		t.Fatalf("replayed rename: %v", err)
	}
	if hold := holders(mems, dir+"/a"); len(hold) != 2 {
		t.Fatalf("after replay, file on %v", hold)
	}

	// Cross-replica-set renames are refused outright.
	var crossDir string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("/c/other-%d", i)
		if !sameSet(c.Table().PlaceDir(cand), c.Table().PlaceDir(dir)) {
			crossDir = cand
			break
		}
	}
	if err := c.Rename(dir+"/a", crossDir+"/a"); err == nil {
		t.Fatal("cross-shard rename accepted")
	}
}

func TestClusterRemoveSemantics(t *testing.T) {
	c, mems := newTestCluster(t, Config{HedgeDelay: -1})
	name := "/c/set-rm/dropping"
	if err := vfs.WriteFile(c, name, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(name); err != nil {
		t.Fatal(err)
	}
	if hold := holders(mems, name); hold != nil {
		t.Fatalf("removed file survives on %v", hold)
	}
	if err := c.Remove(name); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("second remove = %v, want NotExist", err)
	}
	// Removing while a node is unreachable fails — a copy could survive.
	if err := vfs.WriteFile(c, name, []byte("x")); err != nil {
		t.Fatal(err)
	}
	victim := c.Table().Place(name)[0]
	c.AddNode(victim, downFS{})
	if err := c.Remove(name); !errors.Is(err, vfs.ErrBackendDown) {
		t.Fatalf("remove with a holder down = %v, want ErrBackendDown", err)
	}
}

func TestClusterWriteFailsWithReplicaDown(t *testing.T) {
	c, mems := newTestCluster(t, Config{HedgeDelay: -1})
	name := "/c/set-w/dropping"
	victim := c.Table().Place(name)[1] // the mirror
	c.AddNode(victim, downFS{})
	err := vfs.WriteFile(c, name, []byte("strict"))
	if !errors.Is(err, vfs.ErrBackendDown) {
		t.Fatalf("write with mirror down = %v, want ErrBackendDown", err)
	}
	// Strict writes leave no partial copy behind.
	if hold := holders(mems, name); hold != nil {
		t.Fatalf("failed write left copies on %v", hold)
	}
}

func TestSetTableRejectsStaleAndUnknownNodes(t *testing.T) {
	c, _ := newTestCluster(t, Config{})
	stale := &Table{Version: 0, Replication: 2, Nodes: threeNodes()}
	if err := c.SetTable(stale); err == nil {
		t.Fatal("stale table accepted")
	}
	unknown := &Table{Version: 2, Replication: 2,
		Nodes: append(threeNodes(), Node{Name: "ghost"})}
	if err := c.SetTable(unknown); err == nil {
		t.Fatal("table naming an unregistered node accepted")
	}
	c.AddNode("n4", vfs.NewMemFS())
	ok := &Table{Version: 2, Replication: 2,
		Nodes: append(threeNodes(), Node{Name: "n4"})}
	if err := c.SetTable(ok); err != nil {
		t.Fatal(err)
	}
	if c.Table().Version != 2 {
		t.Fatalf("table version = %d", c.Table().Version)
	}
}
