package core

import (
	"fmt"
	"io"

	"repro/internal/dcd"
	"repro/internal/trr"
	"repro/internal/xtc"
)

// TrajectoryReader abstracts the trajectory format an ingest consumes. Each
// call returns the decoded frame and the encoded bytes it consumed;
// Compressed reports whether decoding pays decompression CPU (XTC does,
// DCD does not — its records are raw floats).
type TrajectoryReader interface {
	ReadFrame() (*xtc.Frame, int64, error)
	Compressed() bool
}

// xtcTrajectory adapts an XTC stream.
type xtcTrajectory struct {
	in *countingReader
	r  *xtc.Reader
}

// NewXTCTrajectory wraps a compressed (or raw) XTC stream for ingest.
func NewXTCTrajectory(r io.Reader) TrajectoryReader {
	in := &countingReader{r: r}
	return &xtcTrajectory{in: in, r: xtc.NewReader(in)}
}

func (t *xtcTrajectory) ReadFrame() (*xtc.Frame, int64, error) {
	before := t.in.n
	f, err := t.r.ReadFrame()
	return f, t.in.n - before, err
}

func (t *xtcTrajectory) Compressed() bool { return true }

// dcdTrajectory adapts a DCD stream.
type dcdTrajectory struct {
	r    *dcd.Reader
	last int64
}

// NewDCDTrajectory wraps a DCD stream for ingest.
func NewDCDTrajectory(r io.Reader) (TrajectoryReader, error) {
	d, err := dcd.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &dcdTrajectory{r: d, last: d.BytesConsumed()}, nil
}

func (t *dcdTrajectory) ReadFrame() (*xtc.Frame, int64, error) {
	f, err := t.r.ReadFrame()
	consumed := t.r.BytesConsumed() - t.last
	t.last = t.r.BytesConsumed()
	return f, consumed, err
}

func (t *dcdTrajectory) Compressed() bool { return false }

// trrTrajectory adapts a GROMACS TRR stream (full precision, uncompressed;
// velocities and forces are dropped — ADA serves the visualization path).
type trrTrajectory struct {
	r    *trr.Reader
	last int64
}

// NewTRRTrajectory wraps a TRR stream for ingest.
func NewTRRTrajectory(r io.Reader) TrajectoryReader {
	return &trrTrajectory{r: trr.NewReader(r)}
}

func (t *trrTrajectory) ReadFrame() (*xtc.Frame, int64, error) {
	f, err := t.r.ReadFrame()
	consumed := t.r.BytesConsumed() - t.last
	t.last = t.r.BytesConsumed()
	if err != nil {
		return nil, consumed, err
	}
	return f.ToXTC(), consumed, nil
}

func (t *trrTrajectory) Compressed() bool { return false }

// IngestTrajectory is Ingest for any supported trajectory format.
func (a *ADA) IngestTrajectory(logical string, pdbData []byte, tr TrajectoryReader) (*IngestReport, error) {
	var start float64
	if a.env != nil {
		start = a.env.Clock.Now()
	}
	st, err := a.prepareIngest(logical, pdbData)
	if err != nil {
		return nil, err
	}
	for {
		frame, consumed, err := tr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			st.abort()
			return nil, fmt.Errorf("core: ingest %s frame %d: %w", logical, st.report.Frames, err)
		}
		if tr.Compressed() {
			a.chargeCPU("decompress", a.opts.Cost.decompressTime(consumed))
		}
		a.chargeCPU("categorize", a.opts.Cost.categorizeTime(xtc.RawFrameSize(frame.NAtoms())))
		if err := st.writeFrame(frame, consumed); err != nil {
			st.abort()
			return nil, err
		}
	}
	st.closeAll()
	return st.finish(start)
}
