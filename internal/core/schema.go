package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/pdb"
	"repro/internal/rangelist"
)

// Schema is the dynamic categorizing-and-labeling interface the paper's
// conclusion proposes as future work: instead of the built-in
// protein/MISC split, a user describes the structure of their raw data in
// a configuration file — which residues, elements, or built-in categories
// map to which tag, and where each tag should be placed.
//
// Rules are evaluated first-match-wins; atoms matching no rule get
// DefaultTag.
type Schema struct {
	Name       string            `json:"name"`
	Rules      []Rule            `json:"rules"`
	DefaultTag string            `json:"default_tag"`
	Placement  map[string]string `json:"placement,omitempty"` // tag -> backend
}

// Rule matches atoms to a tag. Every non-empty condition must hold
// (conjunction); within a list condition any entry may match (disjunction).
type Rule struct {
	Tag        string   `json:"tag"`
	Residues   []string `json:"residues,omitempty"`   // exact residue names
	Prefixes   []string `json:"prefixes,omitempty"`   // residue name prefixes
	Elements   []string `json:"elements,omitempty"`   // element symbols
	Categories []string `json:"categories,omitempty"` // built-in category names
	HetAtm     *bool    `json:"hetatm,omitempty"`     // HETATM records only / never
}

// ParseSchema reads a schema configuration file.
func ParseSchema(data []byte) (*Schema, error) {
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("core: parse schema: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the schema for usable tags and categories.
func (s *Schema) Validate() error {
	if len(s.Rules) == 0 {
		return fmt.Errorf("core: schema %q has no rules", s.Name)
	}
	if s.DefaultTag == "" {
		return fmt.Errorf("core: schema %q has no default_tag", s.Name)
	}
	seen := map[string]bool{}
	for i, r := range s.Rules {
		if r.Tag == "" {
			return fmt.Errorf("core: schema %q rule %d has no tag", s.Name, i)
		}
		if strings.ContainsAny(r.Tag, "/\t\n ") {
			return fmt.Errorf("core: schema %q rule %d: invalid tag %q", s.Name, i, r.Tag)
		}
		if len(r.Residues)+len(r.Prefixes)+len(r.Elements)+len(r.Categories) == 0 && r.HetAtm == nil {
			return fmt.Errorf("core: schema %q rule %d (%s) matches nothing", s.Name, i, r.Tag)
		}
		for _, c := range r.Categories {
			if _, err := pdb.ParseCategory(c); err != nil {
				return fmt.Errorf("core: schema %q rule %d: %w", s.Name, i, err)
			}
		}
		seen[r.Tag] = true
	}
	for tag := range s.Placement {
		if !seen[tag] && tag != s.DefaultTag {
			return fmt.Errorf("core: schema %q places unknown tag %q", s.Name, tag)
		}
	}
	return nil
}

// Marshal serializes the schema.
func (s *Schema) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// TagFor returns the tag for one atom.
func (s *Schema) TagFor(a pdb.Atom) string {
	for _, r := range s.Rules {
		if r.matches(a) {
			return r.Tag
		}
	}
	return s.DefaultTag
}

func (r Rule) matches(a pdb.Atom) bool {
	if r.HetAtm != nil && a.HetAtm != *r.HetAtm {
		return false
	}
	res := strings.ToUpper(strings.TrimSpace(a.ResName))
	if len(r.Residues) > 0 && !containsFold(r.Residues, res) {
		return false
	}
	if len(r.Prefixes) > 0 {
		ok := false
		for _, p := range r.Prefixes {
			if strings.HasPrefix(res, strings.ToUpper(p)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(r.Elements) > 0 && !containsFold(r.Elements, strings.ToUpper(strings.TrimSpace(a.Element))) {
		return false
	}
	if len(r.Categories) > 0 {
		ok := false
		for _, c := range r.Categories {
			if cat, err := pdb.ParseCategory(c); err == nil && cat == a.Category {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func containsFold(list []string, upper string) bool {
	for _, v := range list {
		if strings.ToUpper(strings.TrimSpace(v)) == upper {
			return true
		}
	}
	return false
}

// TagRanges runs the schema's categorizer + labeler over a structure,
// returning tag -> atom index ranges (the schema-driven Algorithm 1).
func (s *Schema) TagRanges(structure *pdb.Structure) map[string]*rangelist.List {
	out := map[string]*rangelist.List{}
	get := func(tag string) *rangelist.List {
		l, ok := out[tag]
		if !ok {
			l = rangelist.New()
			out[tag] = l
		}
		return l
	}
	begin := 0
	prev := ""
	for i, a := range structure.Atoms {
		tag := s.TagFor(a)
		if i == 0 {
			prev = tag
			continue
		}
		if tag != prev {
			get(prev).Append(begin, i)
			begin = i
			prev = tag
		}
	}
	if n := structure.NAtoms(); n > 0 {
		get(prev).Append(begin, n)
	}
	return out
}
