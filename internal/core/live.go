package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/vfs"
	"repro/internal/xtc"
)

// Streaming (live) ingest.
//
// A live dataset is an ingest that has not finished yet: a running
// simulation keeps appending frame batches while readers tail the growing
// head. The on-disk state is the PR-4 ingest journal extended into an
// append log — the staged subset droppings and the journal are exactly
// those of an interrupted one-shot ingest, so `Seal` is nothing more than
// running the ordinary atomic commit, and a crash at any point recovers
// through the same classification machinery.
//
// What streaming adds is a published head. After every appended batch the
// writer journals a checkpoint and then republishes two kinds of read-side
// droppings, strictly in this order:
//
//	live.index.<tag> — the subset's frame index up to the checkpoint
//	live.json        — the head: version, frame count, per-subset sizes
//
// Each republish is an atomic same-backend rename, and readers gate on
// live.json, so a reader never observes frames the journal has not made
// durable: staged bytes >= journaled checkpoint >= published head at every
// instant, which is what makes every observed prefix crash-stable. A
// reader that loads live.json at version v and then live.index.<tag> may
// see a NEWER index — indexes are published before the head — but never an
// older one, and it reads only head.Frames entries of it.
//
// Seal commits the dataset through the one-shot path (rename staged
// droppings, manifest last, retire the journal) and then removes the
// live.* droppings; the result is byte-identical to a one-shot Ingest of
// the same frames. Recover classifies a killed live dataset as
// RecoveryLive: the staged subsets are truncated back to the last
// journaled checkpoint and the head republished, after which
// ResumeLiveIngest can continue appending.

// Live dropping names. liveHeadName is the reader gate; liveIndexPrefix
// names the per-tag published index prefixes.
const (
	liveHeadName    = "live.json"
	liveIndexPrefix = "live.index."
)

// LiveSubset is one tag's published state in a live head.
type LiveSubset struct {
	NAtoms  int    `json:"natoms"`
	Bytes   int64  `json:"bytes"`
	Backend string `json:"backend"`
	Ranges  string `json:"ranges"`
}

// LiveHead is the reader-visible head of a live dataset, published
// atomically after every appended batch. Version increases by one per
// publish; Sealed heads are synthesized from the final manifest.
type LiveHead struct {
	Logical     string                `json:"logical"`
	Version     int64                 `json:"version"`
	Frames      int                   `json:"frames"`
	NAtoms      int                   `json:"natoms"`
	Granularity string                `json:"granularity"`
	Sealed      bool                  `json:"sealed"`
	Subsets     map[string]LiveSubset `json:"subsets"`
}

// Tags returns the head's tags, sorted.
func (h *LiveHead) Tags() []string {
	tags := make([]string, 0, len(h.Subsets))
	for t := range h.Subsets {
		tags = append(tags, t)
	}
	for i := 1; i < len(tags); i++ {
		for j := i; j > 0 && tags[j] < tags[j-1]; j-- {
			tags[j], tags[j-1] = tags[j-1], tags[j]
		}
	}
	return tags
}

// sealedHead converts a committed manifest into the equivalent head, so
// watchers see a live dataset and its sealed successor through one API.
func sealedHead(m *Manifest) *LiveHead {
	h := &LiveHead{
		Logical:     m.Logical,
		Version:     -1, // sealed: version ordering no longer applies
		Frames:      m.Frames,
		NAtoms:      m.NAtoms,
		Granularity: m.Granularity,
		Sealed:      true,
		Subsets:     make(map[string]LiveSubset, len(m.Subsets)),
	}
	for tag, sub := range m.Subsets {
		h.Subsets[tag] = LiveSubset{
			NAtoms: sub.NAtoms, Bytes: sub.Bytes,
			Backend: sub.Backend, Ranges: sub.Ranges,
		}
	}
	return h
}

// LiveHead returns a dataset's current head: the published live.json while
// the dataset is growing, or a Sealed head synthesized from the manifest
// once it has committed. vfs.ErrNotExist means no such dataset (or one that
// was rolled back).
func (a *ADA) LiveHead(logical string) (*LiveHead, error) {
	data, err := a.readDropping(logical, liveHeadName)
	if err == nil {
		return unmarshalLiveHead(data)
	}
	m, merr := a.Manifest(logical)
	if merr != nil {
		return nil, err // the original live.json error (typically ErrNotExist)
	}
	return sealedHead(m), nil
}

func unmarshalLiveHead(data []byte) (*LiveHead, error) {
	h := &LiveHead{}
	if err := json.Unmarshal(data, h); err != nil {
		return nil, fmt.Errorf("core: live head: %w", err)
	}
	return h, nil
}

// LiveIngest is an open streaming ingest session: the producer side of a
// live dataset. It is safe for one appender goroutine; Head/Watch may be
// called concurrently from others.
type LiveIngest struct {
	a     *ADA
	st    *ingestState
	start float64

	mu      sync.Mutex
	version int64
	sealed  bool
	aborted bool
	headCh  chan struct{} // closed and replaced on every publish
}

// OpenLiveIngest starts a streaming ingest: the container, journal, and
// staged subset writers are created exactly as for a one-shot ingest, the
// journal's begin record is marked live (so Recover preserves instead of
// rolling back), and an empty head is published for watchers.
func (a *ADA) OpenLiveIngest(logical string, pdbData []byte) (*LiveIngest, error) {
	var start float64
	if a.env != nil {
		start = a.env.Clock.Now()
	}
	st, err := a.prepareIngestMode(logical, pdbData, true)
	if err != nil {
		return nil, err
	}
	li := &LiveIngest{a: a, st: st, start: start, headCh: make(chan struct{})}
	if err := li.publishHead(); err != nil {
		st.abort()
		return nil, fmt.Errorf("core: live ingest %s: %w", logical, err)
	}
	return li, nil
}

// ResumeLiveIngest reopens a live dataset after a crash or restart: the
// staged subsets are truncated back to the last journaled checkpoint
// (verifying the prefix CRC), the writers and journal are rebuilt over the
// surviving bytes, and the head is republished at the checkpoint. pdbData
// must be the structure the dataset was opened with. The caller resumes
// producing from frame Frames().
func (a *ADA) ResumeLiveIngest(logical string, pdbData []byte) (*LiveIngest, error) {
	var start float64
	if a.env != nil {
		start = a.env.Clock.Now()
	}
	st, _, _, err := a.resumeStagedState(logical, pdbData, true)
	if err != nil {
		return nil, err
	}
	li := &LiveIngest{a: a, st: st, start: start, headCh: make(chan struct{})}
	if err := li.publishHead(); err != nil {
		st.closeAll()
		return nil, fmt.Errorf("core: resume live %s: %w", logical, err)
	}
	return li, nil
}

// Frames returns the number of frames appended (and published) so far.
func (li *LiveIngest) Frames() int {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.st.report.Frames
}

// Head returns the currently published head.
func (li *LiveIngest) Head() LiveHead {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.headLocked()
}

// Watch returns a channel closed at the next head publish — the in-process
// notification path for tailing readers co-located with the producer.
func (li *LiveIngest) Watch() <-chan struct{} {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.headCh
}

func (li *LiveIngest) headLocked() LiveHead {
	st := li.st
	h := LiveHead{
		Logical:     st.logical,
		Version:     li.version,
		Frames:      st.report.Frames,
		NAtoms:      st.structure.NAtoms(),
		Granularity: st.granularityName,
		Sealed:      li.sealed,
		Subsets:     make(map[string]LiveSubset, len(st.writers)),
	}
	for _, sw := range st.writers {
		h.Subsets[sw.tag] = LiveSubset{
			NAtoms:  sw.natoms,
			Bytes:   sw.storedBytes(),
			Backend: sw.backend,
			Ranges:  st.tagRanges[sw.tag].String(),
		}
	}
	return h
}

// Append decodes one XTC-encoded batch of whole frames and appends them to
// every subset, then journals a checkpoint and publishes the new head. It
// returns the number of frames appended. A torn final frame fails the call
// after the batch's complete frames have been published; the producer
// re-sends the frame intact. The byte stream across all Appends must be
// exactly what a one-shot Ingest of the dataset would have consumed, which
// is what makes Seal's output indistinguishable from it.
func (li *LiveIngest) Append(batch []byte) (int, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.sealed || li.aborted {
		return 0, fmt.Errorf("core: live ingest %s is closed", li.st.logical)
	}
	st := li.st
	// Scan frame-by-frame rather than wrapping a buffered Reader: the
	// scanner yields each frame's exact encoded bytes, so the journaled
	// Compressed counter stays exact at every checkpoint — which is what
	// keeps a post-crash resume's manifest byte-identical to a one-shot
	// ingest (buffered read-ahead would smear bytes across checkpoints).
	sc := xtc.NewScanner(bytes.NewReader(batch))
	appended := 0
	var decodeErr error
	for {
		t0 := time.Now()
		blob, err := sc.Next()
		if err == io.EOF {
			break
		}
		var frame *xtc.Frame
		if err == nil {
			frame, err = xtc.DecodeFrameBytes(blob)
		}
		li.a.im.decodeNS.Observe(time.Since(t0).Nanoseconds())
		if err != nil {
			decodeErr = fmt.Errorf("core: live ingest %s frame %d: %w",
				st.logical, st.report.Frames, err)
			break
		}
		consumed := int64(len(blob))
		li.a.chargeCPU("decompress", li.a.opts.Cost.decompressTime(consumed))
		li.a.chargeCPU("categorize", li.a.opts.Cost.categorizeTime(xtc.RawFrameSize(frame.NAtoms())))
		t1 := time.Now()
		if err := st.writeFrame(frame, consumed); err != nil {
			return appended, err
		}
		li.a.im.writeNS.Observe(time.Since(t1).Nanoseconds())
		appended++
	}
	if appended > 0 {
		if err := li.publishLocked(); err != nil {
			return appended, fmt.Errorf("core: live ingest %s: %w", st.logical, err)
		}
	}
	return appended, decodeErr
}

// publishLocked checkpoints the journal at the current frame (unless the
// frame loop just did) and republishes the head. Callers hold li.mu.
func (li *LiveIngest) publishLocked() error {
	st := li.st
	if st.ckptFrames != st.report.Frames {
		if err := st.checkpoint(); err != nil {
			return err
		}
	}
	return li.publishHead()
}

// publishHead atomically republishes live.index.<tag> for every subset and
// then live.json. The order matters: readers load the head first, so an
// index must never lag the head it is read under.
func (li *LiveIngest) publishHead() error {
	a := li.a
	st := li.st
	for _, sw := range st.writers {
		if err := a.republishDropping(st.logical, liveIndexPrefix+sw.tag,
			sw.backend, sw.ib.Index().Marshal()); err != nil {
			return err
		}
	}
	li.version++
	head := li.headLocked()
	data, err := json.Marshal(&head)
	if err != nil {
		return err
	}
	if err := a.republishDropping(st.logical, liveHeadName,
		a.containers.Backends()[0], data); err != nil {
		return err
	}
	close(li.headCh)
	li.headCh = make(chan struct{})
	return nil
}

// republishDropping atomically replaces a dropping's content: write under a
// staging name, then rename over the final name (same-backend, atomic).
func (a *ADA) republishDropping(logical, name, backend string, data []byte) error {
	if err := a.writeDropping(logical, stagingPrefix+name, backend, data); err != nil {
		return err
	}
	return a.containers.RenameDropping(logical, stagingPrefix+name, name)
}

// Seal converts the live dataset into an ordinary immutable container: the
// one-shot commit path runs unchanged (stage indexes/structure/labels,
// journal the commit record, rename everything, manifest last, retire the
// journal) and the live.* droppings are removed. The committed container
// is byte-identical to a one-shot Ingest of the same frames.
func (li *LiveIngest) Seal() (*IngestReport, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.sealed || li.aborted {
		return nil, fmt.Errorf("core: live ingest %s is closed", li.st.logical)
	}
	st := li.st
	// Publish any appended-but-unjournaled tail before tearing down, so a
	// crash inside Seal still recovers to the full prefix.
	if st.ckptFrames != st.report.Frames {
		if err := st.checkpoint(); err != nil {
			return nil, fmt.Errorf("core: seal %s: %w", st.logical, err)
		}
	}
	st.closeAll()
	report, err := st.finish(li.start)
	if err != nil {
		return nil, err
	}
	if err := li.a.sweepLive(st.logical); err != nil {
		return nil, fmt.Errorf("core: seal %s: %w", st.logical, err)
	}
	li.sealed = true
	close(li.headCh) // wake watchers; LiveHead now reports the sealed manifest
	li.headCh = make(chan struct{})
	return report, nil
}

// Abort tears the live dataset down entirely: writers closed, journal
// closed, container removed. Readers see the dataset vanish.
func (li *LiveIngest) Abort() error {
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.sealed || li.aborted {
		return nil
	}
	li.aborted = true
	li.st.abort()
	close(li.headCh)
	li.headCh = make(chan struct{})
	return nil
}

// sweepLive removes a container's live.* droppings (post-seal, or a
// recovery sweep after a crash mid-seal).
func (a *ADA) sweepLive(logical string) error {
	idx, err := a.containers.Index(logical)
	if err != nil {
		return err
	}
	for _, d := range idx {
		if d.Name == liveHeadName || strings.HasPrefix(d.Name, liveIndexPrefix) {
			if err := a.containers.RemoveDropping(logical, d.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// recoverLive repairs a live dataset after a kill: the staged subsets are
// truncated back to the last journaled checkpoint (any unjournaled tail is
// discarded, any published head can only be at or behind the checkpoint),
// prefix CRCs are verified, the live indexes and head are republished at
// the checkpoint, and the journal is rewritten compactly. The dataset
// stays live; ResumeLiveIngest continues it and Seal finishes it.
func (a *ADA) recoverLive(logical string, recs []journalRecord) (RecoveryAction, error) {
	begin := recs[0]
	ck := journalRecord{Type: journalCkpt}
	for _, rec := range recs[1:] {
		if rec.Type == journalCkpt {
			ck = rec
		}
	}
	version := int64(0)
	if data, err := a.readDropping(logical, liveHeadName); err == nil {
		if h, err := unmarshalLiveHead(data); err == nil {
			version = h.Version
		}
	}
	head := &LiveHead{
		Logical:     logical,
		Version:     version + 1,
		Frames:      ck.Frames,
		NAtoms:      begin.NAtoms,
		Granularity: begin.Granularity,
		Subsets:     map[string]LiveSubset{},
	}
	for _, jt := range begin.Tags {
		mark := ck.Subsets[jt.Tag]
		prefix, err := a.readDropping(logical, stagingPrefix+subsetPrefix+jt.Tag)
		if err != nil {
			if mark.Bytes == 0 && errors.Is(err, vfs.ErrNotExist) {
				prefix = nil // the kill predates this dropping
			} else {
				return "", fmt.Errorf("recover live subset %s: %w", jt.Tag, err)
			}
		}
		if int64(len(prefix)) < mark.Bytes {
			// The journal promised bytes that never became durable — the
			// backend lies about write ordering. Nothing trustworthy.
			return "", fmt.Errorf("recover live subset %s: staged dropping is %d bytes, checkpoint says %d: %w",
				jt.Tag, len(prefix), mark.Bytes, vfs.ErrCorrupted)
		}
		prefix = prefix[:mark.Bytes]
		if mark.CRC != 0 && xtc.CRC32C(prefix) != mark.CRC {
			return "", fmt.Errorf("recover live subset %s: checkpointed prefix fails its checksum: %w",
				jt.Tag, vfs.ErrCorrupted)
		}
		// Rewrite the staged dropping to exactly the checkpointed prefix
		// (CreateDropping truncates) and rebuild + republish its index.
		if err := a.writeDropping(logical, stagingPrefix+subsetPrefix+jt.Tag, jt.Backend, prefix); err != nil {
			return "", err
		}
		var ib xtc.IndexBuilder
		if len(prefix) > 0 {
			idx, err := xtc.BuildIndexChecksummed(bytes.NewReader(prefix), int64(len(prefix)))
			if err != nil {
				return "", fmt.Errorf("recover live subset %s: %w", jt.Tag, err)
			}
			if idx.Frames() != ck.Frames {
				return "", fmt.Errorf("recover live subset %s: prefix holds %d frames, checkpoint says %d: %w",
					jt.Tag, idx.Frames(), ck.Frames, vfs.ErrCorrupted)
			}
			for i := 0; i < idx.Frames(); i++ {
				ib.AddWithCRC(idx.Size(i), idx.NAtoms(i), idx.CRC(i))
			}
		}
		if err := a.republishDropping(logical, liveIndexPrefix+jt.Tag, jt.Backend, ib.Index().Marshal()); err != nil {
			return "", err
		}
		head.Subsets[jt.Tag] = LiveSubset{
			NAtoms: jt.NAtoms, Bytes: mark.Bytes,
			Backend: jt.Backend, Ranges: jt.Ranges,
		}
	}
	data, err := json.Marshal(head)
	if err != nil {
		return "", err
	}
	if err := a.republishDropping(logical, liveHeadName, a.containers.Backends()[0], data); err != nil {
		return "", err
	}
	// Rewrite the journal compactly: begin plus the one surviving ckpt.
	j, err := a.openJournal(logical)
	if err != nil {
		return "", err
	}
	if err := j.append(&begin); err != nil {
		j.close()
		return "", err
	}
	if ck.Frames > 0 {
		if err := j.append(&ck); err != nil {
			j.close()
			return "", err
		}
	}
	if err := j.close(); err != nil {
		return "", err
	}
	return RecoveryLive, nil
}
