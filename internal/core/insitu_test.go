package core

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/sim"
)

func TestIngestWithStats(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 5)
	env := sim.NewEnv()
	a, _, _ := newADA(t, env, Options{})
	rep, err := a.IngestWithStats("/ds", pdbBytes, NewXTCTrajectory(bytes.NewReader(traj)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 5 {
		t.Fatalf("frames = %d", rep.Frames)
	}
	// The in-situ pass is charged to the storage node.
	if env.Profile.Get("storage.cpu.insitu") <= 0 {
		t.Error("in-situ analysis not charged")
	}

	for _, tag := range []string{TagProtein, TagMisc} {
		s, err := a.Stats("/ds", tag)
		if err != nil {
			t.Fatalf("stats %s: %v", tag, err)
		}
		if s.Frames != 5 || len(s.RGyr) != 5 || len(s.RMSD) != 5 || len(s.MSD) != 5 {
			t.Errorf("%s stats = %+v", tag, s)
		}
		if s.RMSD[0] != 0 || s.MSD[0] != 0 {
			t.Errorf("%s frame-0 deviations nonzero: %+v", tag, s)
		}
		if s.MeanRG <= 0 {
			t.Errorf("%s mean rgyr = %v", tag, s.MeanRG)
		}
	}

	// Stored stats agree with recomputing from the stored subset frames.
	sr, err := a.OpenSubset("/ds", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	var ts analysis.TrajectoryStats
	for {
		f, err := sr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := ts.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	stored, err := a.Stats("/ds", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(stored.RGyr[i]-ts.RGyr[i]) > 1e-9 {
			t.Fatalf("frame %d rgyr: stored %v vs recomputed %v", i, stored.RGyr[i], ts.RGyr[i])
		}
	}

	// Subsets remain readable exactly as with plain Ingest.
	var frames int
	sr2, err := a.OpenSubsetAt("/ds", TagMisc)
	if err != nil {
		t.Fatal(err)
	}
	defer sr2.Close()
	frames = sr2.Frames()
	if frames != 5 {
		t.Errorf("misc subset frames = %d", frames)
	}
}

func TestStatsMissing(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 300, 1)
	a, _, _ := newADA(t, nil, Options{})
	if _, err := a.Ingest("/plain", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Stats("/plain", TagProtein); err == nil {
		t.Error("plain ingest should have no stats dropping")
	}
}

func TestIngestWithStatsErrorPropagates(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 300, 2)
	a, _, _ := newADA(t, nil, Options{})
	if _, err := a.IngestWithStats("/x", pdbBytes,
		NewXTCTrajectory(bytes.NewReader(traj[:len(traj)-5]))); err == nil {
		t.Error("truncated stream should fail")
	}
}
