package core

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/vfs"
	"repro/internal/xtc"
)

// Tiering support: the read-path access hook the tier subsystem feeds its
// heat tracker from, and the migration executor its planner drives. The
// executor reuses the durability primitives of the ingest commit protocol —
// staged copies under "staging." names, whole-stream verification before
// publish, an atomic index re-point as the commit point — so a migration
// has the same crash story as an ingest: at every kill point the container
// index resolves each dropping to exactly one complete copy and recovery
// sweeps the rest.

// AccessFunc observes one read-path access to a dropping: the dataset's
// logical name, the dropping name (e.g. "subset.p"), and the bytes served.
// Implementations must be cheap and non-blocking — the hook runs inline on
// every frame fetch, concurrently from however many reader goroutines the
// application has.
type AccessFunc func(logical, dropping string, bytes int64)

// SetAccessFunc registers the read-path access observer (nil disables).
// Set it before serving reads: readers capture it at open and the field is
// read without synchronization.
func (a *ADA) SetAccessFunc(fn AccessFunc) { a.access = fn }

// noteAccess reports one access to the registered observer, if any.
func (a *ADA) noteAccess(logical, dropping string, n int64) {
	if a.access != nil {
		a.access(logical, dropping, n)
	}
}

// SubsetDropping returns the dropping name of a tagged subset's payload —
// the name AccessFunc reports and the key external trackers should use.
func SubsetDropping(tag string) string { return subsetPrefix + tag }

// IndexDropping returns the dropping name of a tagged subset's frame index,
// which MoveSubset relocates together with the payload.
func IndexDropping(tag string) string { return indexPrefix + tag }

// SubsetTag inverts SubsetDropping: it extracts the tag from a subset
// payload dropping name, reporting false for every other dropping (frame
// indexes, manifests, replicas, staged copies).
func SubsetTag(dropping string) (string, bool) {
	if !strings.HasPrefix(dropping, subsetPrefix) {
		return "", false
	}
	return strings.TrimPrefix(dropping, subsetPrefix), true
}

// MoveSubset relocates one tagged subset — payload dropping plus its frame
// index — onto the named backend, safely against concurrent readers and
// crashes. Already-placed droppings are skipped, so the call is idempotent
// and also repairs a half-moved subset (e.g. payload moved, index not).
// It returns the bytes copied.
//
// Per dropping the sequence is: read and verify the source (whole-stream
// CRC32C when the manifest has one), write a staged copy on the target,
// read the copy back and verify it, then publish with an atomic
// plfs.ReplaceDropping. A reader holding the old dropping keeps its handle
// and finishes byte-identically; a reader opening after the publish
// resolves the new copy, which was just verified identical. The manifest's
// placement fields are rewritten last — they are advisory (reads resolve
// through the plfs index), and recovery reconciles them if a crash lands
// before the rewrite.
func (a *ADA) MoveSubset(logical, tag, target string) (int64, error) {
	known := false
	for _, be := range a.containers.Backends() {
		if be == target {
			known = true
			break
		}
	}
	if !known {
		return 0, fmt.Errorf("core: move %s/%s: unknown backend %q", logical, tag, target)
	}
	m, err := a.Manifest(logical)
	if err != nil {
		return 0, err
	}
	info, ok := m.Subsets[tag]
	if !ok {
		return 0, fmt.Errorf("%w: %q in %s (have %v)", ErrUnknownTag, tag, logical, m.Tags())
	}

	var moved int64
	n, err := a.moveDropping(logical, subsetPrefix+tag, target, info.CRC32C)
	if err != nil {
		return moved, err
	}
	moved += n
	if _, err := a.containers.StatDropping(logical, indexPrefix+tag); err == nil {
		n, err := a.moveDropping(logical, indexPrefix+tag, target, m.Checksums[indexPrefix+tag])
		if err != nil {
			return moved, err
		}
		moved += n
	}
	if info.Backend != target || m.Placement[tag] != target {
		info.Backend = target
		m.Subsets[tag] = info
		if m.Placement != nil {
			m.Placement[tag] = target
		}
		if err := a.rewriteManifest(logical, m); err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// moveDropping copies one dropping to the target backend and atomically
// re-points the container index at the copy. Returns zero if the dropping
// already lives there.
func (a *ADA) moveDropping(logical, name, target string, wantCRC uint32) (int64, error) {
	cur, err := a.containers.StatDropping(logical, name)
	if err != nil {
		return 0, err
	}
	if cur.Backend == target {
		return 0, nil
	}
	data, err := a.readDropping(logical, name)
	if err != nil {
		return 0, err
	}
	if wantCRC != 0 && xtc.CRC32C(data) != wantCRC {
		return 0, fmt.Errorf("core: move %s/%s: source fails verification: %w", logical, name, vfs.ErrCorrupted)
	}
	staging := stagingPrefix + "mig." + name
	if err := a.writeDropping(logical, staging, target, data); err != nil {
		return 0, err
	}
	// Read the staged copy back before publishing: a torn or bit-flipped
	// copy must never become the copy the index points at.
	copyBack, err := a.readDropping(logical, staging)
	if err == nil && !bytes.Equal(copyBack, data) {
		err = fmt.Errorf("core: move %s/%s: staged copy diverges from source: %w", logical, name, vfs.ErrCorrupted)
	}
	if err != nil {
		a.containers.RemoveDropping(logical, staging)
		return 0, err
	}
	if err := a.containers.ReplaceDropping(logical, staging, name); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// rewriteManifest atomically republishes a dataset's manifest in place
// (staged sibling + rename on the manifest's own backend).
func (a *ADA) rewriteManifest(logical string, m *Manifest) error {
	data, err := m.marshal()
	if err != nil {
		return err
	}
	be := a.backendFor(TagProtein)
	if cur, err := a.containers.StatDropping(logical, droppingManifest); err == nil {
		be = cur.Backend
	}
	if err := a.writeDropping(logical, stagingPrefix+droppingManifest, be, data); err != nil {
		return err
	}
	return a.containers.RenameDropping(logical, stagingPrefix+droppingManifest, droppingManifest)
}

// reconcilePlacement folds the plfs index's authoritative placement back
// into the manifest — the repair for a migration that crashed after its
// atomic publish but before the advisory manifest rewrite. Returns whether
// the manifest changed; an agreeing manifest is left byte-untouched.
func (a *ADA) reconcilePlacement(logical string) (bool, error) {
	m, err := a.Manifest(logical)
	if err != nil {
		return false, err
	}
	idx, err := a.containers.Index(logical)
	if err != nil {
		return false, err
	}
	owner := make(map[string]string, len(idx))
	for _, d := range idx {
		owner[d.Name] = d.Backend
	}
	changed := false
	for tag, info := range m.Subsets {
		be, ok := owner[subsetPrefix+tag]
		if !ok || be == info.Backend {
			continue
		}
		info.Backend = be
		m.Subsets[tag] = info
		if m.Placement != nil {
			m.Placement[tag] = be
		}
		changed = true
	}
	if !changed {
		return false, nil
	}
	return true, a.rewriteManifest(logical, m)
}
