package core

import (
	"fmt"
	"io"

	"repro/internal/rangelist"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// SubsetReader streams the decompressed frames of one tagged subset — the
// I/O retriever's answer to `mol addfile bar.xtc tag p`. On datasets
// ingested with checksums every frame is verified against its CRC32C as it
// streams (failing over to the replica when one exists); legacy datasets
// stream unverified.
type SubsetReader struct {
	Tag    string
	Info   Subset
	Ranges *rangelist.List
	file   vfs.File
	r      *xtc.Reader
	vs     *verifiedSubset // non-nil: checksummed read path
	next   int
	// heat signal for the raw path (the verified path reports from
	// verifiedSubset, where the exact stored byte counts live).
	logical string
	access  AccessFunc
}

// OpenSubset resolves a tag through the indexer (manifest) and opens its
// dropping for streaming reads.
func (a *ADA) OpenSubset(logical, tag string) (*SubsetReader, error) {
	m, err := a.Manifest(logical)
	if err != nil {
		return nil, err
	}
	info, ok := m.Subsets[tag]
	if !ok {
		return nil, fmt.Errorf("%w: %q in %s (have %v)", ErrUnknownTag, tag, logical, m.Tags())
	}
	ranges, err := rangelist.Parse(info.Ranges)
	if err != nil {
		return nil, fmt.Errorf("core: subset %s ranges: %w", tag, err)
	}
	vs, err := a.openVerifiedSubset(logical, info)
	if err != nil {
		return nil, err
	}
	if vs != nil {
		return &SubsetReader{Tag: tag, Info: info, Ranges: ranges, vs: vs}, nil
	}
	f, err := a.openSubsetDropping(logical, info)
	if err != nil {
		return nil, err
	}
	return &SubsetReader{
		Tag:     tag,
		Info:    info,
		Ranges:  ranges,
		file:    f,
		r:       xtc.NewReader(readerOf(f)),
		logical: logical,
		access:  a.access,
	}, nil
}

// openSubsetDropping opens a subset's payload, falling over to its replica
// when the primary will not open.
func (a *ADA) openSubsetDropping(logical string, info Subset) (vfs.File, error) {
	f, err := a.containers.OpenDropping(logical, subsetPrefix+info.Tag)
	if err != nil && info.Replica != "" {
		if rf, rerr := a.containers.OpenDropping(logical, replicaPrefix+subsetPrefix+info.Tag); rerr == nil {
			a.fm.opens.Inc()
			return rf, nil
		}
	}
	return f, err
}

// ReadFrame returns the next subset frame, or io.EOF.
func (s *SubsetReader) ReadFrame() (*xtc.Frame, error) {
	if s.vs != nil {
		if s.next >= s.vs.frames() {
			return nil, io.EOF
		}
		f, err := s.vs.frame(s.next)
		if err != nil {
			return nil, err
		}
		s.next++
		return f, nil
	}
	f, err := s.r.ReadFrame()
	if err == nil && s.access != nil {
		// The raw stream does not expose per-frame stored sizes; the
		// uncompressed frame size is close enough for a heat signal.
		s.access(s.logical, subsetPrefix+s.Tag, xtc.RawFrameSize(f.NAtoms()))
	}
	return f, err
}

// Close releases the underlying dropping handle.
func (s *SubsetReader) Close() error {
	if s.vs != nil {
		return s.vs.close()
	}
	return s.file.Close()
}

// Size returns the subset's stored byte size.
func (s *SubsetReader) Size() int64 {
	if s.vs != nil {
		return s.vs.size()
	}
	return s.file.Size()
}

// SubsetRandomReader provides random access to one tagged subset's frames
// using the index persisted at ingest — what interactive playback
// ("replaying the frames back and forth") needs. Frames read through a
// checksummed index are verified (with replica failover) per fetch.
type SubsetRandomReader struct {
	Tag    string
	Info   Subset
	Ranges *rangelist.List
	file   vfs.File
	ra     *xtc.RandomAccessReader
	vs     *verifiedSubset // non-nil: checksummed read path
	// heat signal for the raw path (see SubsetReader).
	logical string
	access  AccessFunc
}

// OpenSubsetAt opens a tagged subset for random frame access.
func (a *ADA) OpenSubsetAt(logical, tag string) (*SubsetRandomReader, error) {
	m, err := a.Manifest(logical)
	if err != nil {
		return nil, err
	}
	info, ok := m.Subsets[tag]
	if !ok {
		return nil, fmt.Errorf("%w: %q in %s (have %v)", ErrUnknownTag, tag, logical, m.Tags())
	}
	ranges, err := rangelist.Parse(info.Ranges)
	if err != nil {
		return nil, fmt.Errorf("core: subset %s ranges: %w", tag, err)
	}
	vs, err := a.openVerifiedSubset(logical, info)
	if err != nil {
		return nil, err
	}
	if vs != nil {
		return &SubsetRandomReader{Tag: tag, Info: info, Ranges: ranges, vs: vs}, nil
	}
	idxBytes, err := a.readDropping(logical, indexPrefix+tag)
	if err != nil {
		return nil, fmt.Errorf("core: subset %s index: %w", tag, err)
	}
	idx, err := xtc.UnmarshalIndex(idxBytes)
	if err != nil {
		return nil, fmt.Errorf("core: subset %s: %w", tag, err)
	}
	f, err := a.openSubsetDropping(logical, info)
	if err != nil {
		return nil, err
	}
	return &SubsetRandomReader{
		Tag:     tag,
		Info:    info,
		Ranges:  ranges,
		file:    f,
		ra:      xtc.NewRandomAccessReader(f, idx),
		logical: logical,
		access:  a.access,
	}, nil
}

// Frames returns the subset's frame count.
func (s *SubsetRandomReader) Frames() int {
	if s.vs != nil {
		return s.vs.frames()
	}
	return s.ra.Frames()
}

// ReadFrameAt decodes subset frame i.
func (s *SubsetRandomReader) ReadFrameAt(i int) (*xtc.Frame, error) {
	if s.vs != nil {
		return s.vs.frame(i)
	}
	f, err := s.ra.ReadFrameAt(i)
	if err == nil && s.access != nil {
		s.access(s.logical, subsetPrefix+s.Tag, xtc.RawFrameSize(f.NAtoms()))
	}
	return f, err
}

// ConcurrentFrameReads reports that ReadFrameAt is safe for concurrent use
// on both the verified and raw paths, so playback prefetchers may decode
// ahead on background workers.
func (s *SubsetRandomReader) ConcurrentFrameReads() bool { return true }

// Close releases the dropping handle.
func (s *SubsetRandomReader) Close() error {
	if s.vs != nil {
		return s.vs.close()
	}
	return s.file.Close()
}

// FullReader reassembles complete frames (every atom, original order) from
// all of a dataset's subsets — the "ADA (all)" scenario of the evaluation.
type FullReader struct {
	NAtoms  int
	subsets []*SubsetReader
	indices [][]int
}

// OpenFull opens every subset of the dataset and merges them.
func (a *ADA) OpenFull(logical string) (*FullReader, error) {
	m, err := a.Manifest(logical)
	if err != nil {
		return nil, err
	}
	fr := &FullReader{NAtoms: m.NAtoms}
	for _, tag := range m.Tags() {
		sr, err := a.OpenSubset(logical, tag)
		if err != nil {
			fr.Close()
			return nil, err
		}
		fr.subsets = append(fr.subsets, sr)
		fr.indices = append(fr.indices, sr.Ranges.Indices())
	}
	if len(fr.subsets) == 0 {
		return nil, fmt.Errorf("core: dataset %s has no subsets", logical)
	}
	return fr, nil
}

// ReadFrame returns the next full frame, or io.EOF when every subset is
// exhausted. A dataset whose subsets have diverging frame counts is
// corrupt and yields an error.
func (f *FullReader) ReadFrame() (*xtc.Frame, error) {
	var out *xtc.Frame
	eofs := 0
	for i, sr := range f.subsets {
		sub, err := sr.ReadFrame()
		if err == io.EOF {
			eofs++
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("core: subset %s: %w", sr.Tag, err)
		}
		if out == nil {
			out = &xtc.Frame{
				Step:   sub.Step,
				Time:   sub.Time,
				Box:    sub.Box,
				Coords: make([]xtc.Vec3, f.NAtoms),
			}
		}
		idx := f.indices[i]
		if len(idx) != sub.NAtoms() {
			return nil, fmt.Errorf("core: subset %s frame has %d atoms, ranges cover %d",
				sr.Tag, sub.NAtoms(), len(idx))
		}
		for j, atom := range idx {
			out.Coords[atom] = sub.Coords[j]
		}
	}
	if out == nil {
		if eofs == len(f.subsets) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("core: no subset produced a frame")
	}
	if eofs != 0 {
		return nil, fmt.Errorf("core: %d of %d subsets ended early", eofs, len(f.subsets))
	}
	return out, nil
}

// Close closes every subset.
func (f *FullReader) Close() error {
	var first error
	for _, sr := range f.subsets {
		if err := sr.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Size returns the total stored bytes across subsets.
func (f *FullReader) Size() int64 {
	var n int64
	for _, sr := range f.subsets {
		n += sr.Size()
	}
	return n
}

// readerOf adapts a vfs.File to io.Reader (it already is one; the helper
// exists to make the conversion site explicit and greppable).
func readerOf(f vfs.File) io.Reader { return f }
