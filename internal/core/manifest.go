package core

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Manifest records what ADA knows about an ingested dataset; it is stored
// as a container dropping next to the label file so that any later ADA
// instance (or the indexer on a query) can resolve tag reads without
// re-analyzing anything.
type Manifest struct {
	Logical     string            `json:"logical"`
	Granularity string            `json:"granularity"`
	NAtoms      int               `json:"natoms"`
	Frames      int               `json:"frames"`
	Compressed  int64             `json:"compressed_bytes"` // ingested .xtc size
	Raw         int64             `json:"raw_bytes"`        // decompressed size
	Subsets     map[string]Subset `json:"subsets"`          // tag -> subset info
	Placement   map[string]string `json:"placement"`        // tag -> backend
	// Checksums maps every non-subset dropping (structure, labels, stats,
	// indexes, replicas) to its CRC32C, closing the integrity loop fsck
	// walks. Subset droppings carry theirs in Subset.CRC32C plus the
	// per-frame set in the v2 index. Empty on pre-checksum datasets.
	Checksums map[string]uint32 `json:"checksums,omitempty"`
}

// Subset describes one tagged data subset.
type Subset struct {
	Tag     string `json:"tag"`
	NAtoms  int    `json:"natoms"`
	Bytes   int64  `json:"bytes"`
	Backend string `json:"backend"`
	Ranges  string `json:"ranges"` // atom index ranges within the full system
	// CRC32C is the whole-stream checksum of the subset dropping (zero on
	// pre-checksum datasets or when checksumming is disabled).
	CRC32C uint32 `json:"crc32c,omitempty"`
	// Replica names the backend holding a byte-identical copy of this
	// subset (and its index) for failover; empty when not replicated.
	Replica string `json:"replica,omitempty"`
}

// Tags returns the manifest's tags sorted by name.
func (m *Manifest) Tags() []string {
	tags := make([]string, 0, len(m.Subsets))
	for t := range m.Subsets {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// marshal serializes the manifest.
func (m *Manifest) marshal() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// unmarshalManifest parses a stored manifest.
func unmarshalManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: parse manifest: %w", err)
	}
	if m.Subsets == nil {
		m.Subsets = map[string]Subset{}
	}
	return &m, nil
}
