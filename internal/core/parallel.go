package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/xtc"
)

// frameMsg carries one decoded frame through the ingest pipeline.
type frameMsg struct {
	frame      *xtc.Frame
	compressed int64
	seq        int
}

// defaultWriteBatchFrames is the fan-out batch size when
// Options.WriteBatchFrames is unset: large enough that channel
// synchronization stops showing up in profiles, small enough that at most a
// few megabytes of decoded frames are in flight per subset.
const defaultWriteBatchFrames = 16

// IngestParallel is Ingest with the storage node's cores pipelined: an
// xtc.ParallelReader decompresses frames on a bounded worker pool (frame
// boundaries found by a cheap scanner, blobs fanned out, results
// re-sequenced) while one goroutine per tagged subset splits and writes its
// dropping, fed in multi-frame batches (Options.WriteBatchFrames) so channel
// synchronization amortizes across frames. Output is byte-identical to Ingest
// — each subset still receives every frame in order — but the virtual wall
// time of the CPU stages is the
// slowest stage rather than their sum, and the decode stage itself is
// charged as a concurrent pool: its wall time is the busiest worker's share
// of the decompression, not the serial sum. Device I/O time is still charged
// as the writes happen (the backends are shared).
//
// queue is the per-stage channel depth (<=0 selects a small default); the
// decode pool size comes from Options.DecodeWorkers.
func (a *ADA) IngestParallel(logical string, pdbData []byte, traj io.Reader, queue int) (*IngestReport, error) {
	if queue <= 0 {
		queue = 4
	}
	var start float64
	if a.env != nil {
		start = a.env.Clock.Now()
	}
	span := a.reg.StartSpan("ingest.total")
	defer span.End()
	st, err := a.prepareIngest(logical, pdbData)
	if err != nil {
		return nil, err
	}

	// Per-stage virtual CPU accumulators (applied as one concurrent charge
	// at the end: the pipeline's wall time is its slowest stage). The decode
	// stage is itself a pool: per-frame decompression time is dealt
	// round-robin onto the virtual workers and only the busiest one
	// contributes wall time.
	workers := xtc.DefaultWorkers(a.opts.DecodeWorkers)
	decodeSec := make([]float64, workers)
	categorizeSec := make([]float64, len(st.writers))

	type result struct {
		stage string
		err   error
	}
	errs := make(chan result, len(st.writers)+1)
	// Each channel element is a batch of frames shared read-only by every
	// writer: one send per batch instead of one per frame amortizes the
	// channel synchronization across WriteBatchFrames frames.
	batchN := a.opts.WriteBatchFrames
	if batchN <= 0 {
		batchN = defaultWriteBatchFrames
	}
	chans := make([]chan []frameMsg, len(st.writers))
	for i := range chans {
		chans[i] = make(chan []frameMsg, queue)
	}
	// abort closes once on the first failure so producers stop feeding.
	abort := make(chan struct{})
	var abortOnce sync.Once
	fail := func(stage string, err error) {
		errs <- result{stage, err}
		abortOnce.Do(func() { close(abort) })
	}

	var wg sync.WaitGroup
	// One splitter/writer per subset: consumes frames in order.
	for i, sw := range st.writers {
		wg.Add(1)
		go func(i int, sw *subsetWriter) {
			defer wg.Done()
			for batch := range chans[i] {
				for _, msg := range batch {
					t0 := time.Now()
					if err := sw.writeFrame(msg.frame); err != nil {
						fail(sw.tag, fmt.Errorf("core: ingest %s frame %d: %w", logical, msg.seq, err))
						// Keep draining so the producer never blocks, even
						// when the failure lands mid-batch.
						for range chans[i] {
						}
						return
					}
					a.im.writeNS.Observe(time.Since(t0).Nanoseconds())
					categorizeSec[i] += a.opts.Cost.categorizeTime(xtc.RawFrameSize(sw.natoms))
				}
			}
		}(i, sw)
	}

	pr := xtc.NewParallelReader(traj, workers)
	pr.Observe = a.im.decodeNS.Observe
	pr.BatchBytes = a.opts.DecodeBatchBytes
	pr.SetMetrics(a.reg)
	defer pr.Close()

	// Feeder: pull re-sequenced frames off the decode pool and fan them out
	// to the subset writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			for _, ch := range chans {
				close(ch)
			}
		}()
		seq := 0
		batch := make([]frameMsg, 0, batchN)
		// flush fans the accumulated batch out to every subset writer; the
		// slice is shared read-only, so a fresh one starts the next batch.
		// Returns false when a writer failure aborted the pipeline.
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			for _, ch := range chans {
				// Occupancy counts the batch being sent: sampling len(ch)
				// after the send races with the consumer and reads 0 on an
				// idle writer even though the queue was momentarily nonempty.
				pre := len(ch)
				select {
				case ch <- batch:
					// The metric is denominated in queued *frames*, as it was
					// before batched fan-out: every batch already in the
					// channel is full (only the final flush can be partial,
					// and nothing is sent after it), plus the batch in flight
					// at its actual length.
					a.im.queueHWM.SetMax(int64(pre)*int64(batchN) + int64(len(batch)))
				case <-abort:
					return false
				}
			}
			batch = make([]frameMsg, 0, batchN)
			return true
		}
		for {
			frame, compressed, err := pr.ReadFrameSize()
			if err == io.EOF {
				flush()
				return
			}
			if err != nil {
				fail("decode", fmt.Errorf("core: ingest %s frame %d: %w", logical, seq, err))
				return
			}
			if frame.NAtoms() != st.structure.NAtoms() {
				fail("decode", fmt.Errorf("core: ingest %s frame %d has %d atoms, structure has %d",
					logical, seq, frame.NAtoms(), st.structure.NAtoms()))
				return
			}
			decodeSec[seq%workers] += a.opts.Cost.decompressTime(compressed)
			st.report.Compressed += compressed
			st.report.Raw += xtc.RawFrameSize(frame.NAtoms())
			batch = append(batch, frameMsg{frame: frame, compressed: compressed, seq: seq})
			seq++
			// Progress advances as frames are sequenced, not at batch
			// flushes: the report (and the progress gauge an operator polls
			// mid-run) would otherwise lag actual pipeline progress by up to
			// a full batch.
			st.report.Frames = seq
			a.im.progressFrames.Set(int64(seq))
			if len(batch) == batchN && !flush() {
				return
			}
		}
	}()

	wg.Wait()
	st.closeAll()
	close(errs)
	for r := range errs {
		if r.err != nil {
			st.abort()
			return nil, r.err
		}
	}

	// Worker pool telemetry: real busy time per decode worker, and the
	// round-robin virtual charge.
	busy := pr.WorkerBusy()
	par := &ParallelIngestReport{
		DecodeWorkers:     workers,
		WorkerDecodeSec:   decodeSec,
		WorkerBusyNS:      make([]int64, workers),
		WorkerUtilization: make([]float64, workers),
	}
	var busiest int64
	for i, d := range busy {
		par.WorkerBusyNS[i] = d.Nanoseconds()
		if d.Nanoseconds() > busiest {
			busiest = d.Nanoseconds()
		}
	}
	for i := range par.WorkerUtilization {
		if busiest > 0 {
			par.WorkerUtilization[i] = float64(par.WorkerBusyNS[i]) / float64(busiest)
		}
	}
	st.report.Parallel = par

	// Wall time = slowest CPU stage; every stage's work appears in the
	// profile. Decode workers charge into the shared decompress bucket, so
	// the profile total equals the serial path's.
	if a.env != nil {
		var worst float64
		for _, sec := range decodeSec {
			a.env.ChargeConcurrent("storage.cpu.decompress", sec)
			if sec > worst {
				worst = sec
			}
		}
		for i := range categorizeSec {
			a.env.ChargeConcurrent("storage.cpu.categorize", categorizeSec[i])
			if categorizeSec[i] > worst {
				worst = categorizeSec[i]
			}
		}
		a.env.Clock.Advance(worst)
	}
	return st.finish(start)
}
