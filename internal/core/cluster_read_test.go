package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/plfs"
	"repro/internal/vfs"
)

// clusterDownFS is a node whose transport is gone: every call fails with
// the typed down error, like an rpc pool with its retries exhausted.
type clusterDownFS struct{}

func (clusterDownFS) Create(string) (vfs.File, error)        { return nil, vfs.ErrBackendDown }
func (clusterDownFS) Open(string) (vfs.File, error)          { return nil, vfs.ErrBackendDown }
func (clusterDownFS) Stat(string) (vfs.FileInfo, error)      { return vfs.FileInfo{}, vfs.ErrBackendDown }
func (clusterDownFS) ReadDir(string) ([]vfs.FileInfo, error) { return nil, vfs.ErrBackendDown }
func (clusterDownFS) MkdirAll(string) error                  { return vfs.ErrBackendDown }
func (clusterDownFS) Remove(string) error                    { return vfs.ErrBackendDown }
func (clusterDownFS) Rename(string, string) error            { return vfs.ErrBackendDown }

// newClusterADA builds an ADA whose single plfs backend is a 3-node R=2
// placement cluster over in-memory node stores.
func newClusterADA(t testing.TB) (*ADA, *placement.Cluster, map[string]vfs.FS, *metrics.Registry) {
	t.Helper()
	nodes := map[string]vfs.FS{
		"n1": vfs.NewMemFS(), "n2": vfs.NewMemFS(), "n3": vfs.NewMemFS(),
	}
	tbl := &placement.Table{
		Version: 1, Replication: 2,
		Nodes: []placement.Node{{Name: "n1"}, {Name: "n2"}, {Name: "n3"}},
	}
	reg := metrics.NewRegistry()
	c, err := placement.NewCluster(tbl, nodes, placement.Config{HedgeDelay: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	store, err := plfs.New(plfs.Backend{Name: "clu", FS: c, Mount: "/clu"})
	if err != nil {
		t.Fatal(err)
	}
	store.SetMetrics(reg)
	return New(store, nil, Options{Metrics: reg}), c, nodes, reg
}

// subsetSig fingerprints the decoded frames of one subset.
func subsetSig(t testing.TB, a *ADA, logical, tag string) string {
	t.Helper()
	sr, err := a.OpenSubset(logical, tag)
	if err != nil {
		t.Fatalf("open subset %s: %v", tag, err)
	}
	defer sr.Close()
	crc := crc32.NewIEEE()
	n := 0
	for {
		f, err := sr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("subset %s frame %d: %v", tag, n, err)
		}
		for _, v := range f.Coords {
			var b [12]byte
			for i := 0; i < 3; i++ {
				u := math.Float32bits(v[i])
				b[4*i], b[4*i+1], b[4*i+2], b[4*i+3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
			}
			crc.Write(b[:])
		}
		n++
	}
	return fmt.Sprintf("%s:%d:%08x", tag, n, crc.Sum32())
}

// TestClusterBackedDegradedRead ingests through a placement cluster and
// then reads with each node down in turn: the ADA read path must return
// byte-identical frames for every single-node failure at R=2.
func TestClusterBackedDegradedRead(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 120, 5)
	a, c, nodes, reg := newClusterADA(t)
	if _, err := a.Ingest("/traj.md", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	wantP := subsetSig(t, a, "/traj.md", TagProtein)
	wantM := subsetSig(t, a, "/traj.md", TagMisc)

	for _, victim := range []string{"n1", "n2", "n3"} {
		c.AddNode(victim, clusterDownFS{})
		if got := subsetSig(t, a, "/traj.md", TagProtein); got != wantP {
			t.Fatalf("victim %s: protein read diverged: %s vs %s", victim, got, wantP)
		}
		if got := subsetSig(t, a, "/traj.md", TagMisc); got != wantM {
			t.Fatalf("victim %s: misc read diverged: %s vs %s", victim, got, wantM)
		}
		// Manifest and structure resolve through the degraded cluster too.
		if _, err := a.Manifest("/traj.md"); err != nil {
			t.Fatalf("victim %s: manifest: %v", victim, err)
		}
		if _, err := a.StructureBytes("/traj.md"); err != nil {
			t.Fatalf("victim %s: structure: %v", victim, err)
		}
		// Heal before the next round.
		c.AddNode(victim, nodes[victim])
		if err := c.Probe(victim); err != nil {
			t.Fatal(err)
		}
	}
	// The outage was noticed, not silently absorbed: the primary holder's
	// death forces a failover that marks it down. (The secondary holder
	// and the bystander may never be touched while the primary is healthy,
	// so only one transition is guaranteed.)
	snap := reg.Snapshot()
	var marked int64
	for _, n := range []string{"n1", "n2", "n3"} {
		marked += snap.Counters["placement.node."+n+".down"]
	}
	if marked < 1 {
		t.Error("no down transitions recorded across three single-node outages")
	}
}

// TestClusterBackedIngestStrictOnDownNode: writes never half-land — with a
// replica holder down, ingest fails with the typed down error and recovery
// rolls the partial container back out of every surviving node.
func TestClusterBackedIngestStrictOnDownNode(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 120, 4)
	a, c, nodes, _ := newClusterADA(t)

	// Take down a node that hosts this container's files.
	reps := (&placement.Table{Version: 1, Replication: 2,
		Nodes: []placement.Node{{Name: "n1"}, {Name: "n2"}, {Name: "n3"}},
	}).Place("/clu/traj.md/subset.p")
	victim := reps[0]
	c.AddNode(victim, clusterDownFS{})

	if _, err := a.Ingest("/traj.md", pdbBytes, bytes.NewReader(traj)); !errors.Is(err, vfs.ErrBackendDown) {
		t.Fatalf("ingest with replica down = %v, want ErrBackendDown", err)
	}

	// Node returns; recovery erases the partial ingest everywhere.
	c.AddNode(victim, nodes[victim])
	if err := c.Probe(victim); err != nil {
		t.Fatal(err)
	}
	if err := a.containers.Probe("clu"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for name, fsys := range nodes {
		err := vfs.Walk(fsys, "/", func(p string, info vfs.FileInfo) error {
			if !info.IsDir {
				t.Errorf("node %s still holds %s after rollback", name, p)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// A clean ingest now succeeds end to end.
	if _, err := a.Ingest("/traj.md", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	if got := subsetSig(t, a, "/traj.md", TagProtein); got == "" {
		t.Fatal("empty signature")
	}
}
