package core

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/dcd"
	"repro/internal/sim"
	"repro/internal/trr"
	"repro/internal/xtc"
)

// dcdDataset converts the XTC test dataset into a DCD stream.
func dcdDataset(t *testing.T, traj []byte) []byte {
	t.Helper()
	frames, err := xtc.NewReader(bytes.NewReader(traj)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := dcd.NewWriter(&buf, dcd.Header{NFrames: len(frames), HasUnitCell: true, DeltaPS: 10})
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngestTrajectoryDCD(t *testing.T) {
	pdbBytes, traj, sys := testDataset(t, 200, 3)
	dcdBytes := dcdDataset(t, traj)

	env := sim.NewEnv()
	a, _, _ := newADA(t, env, Options{})
	tr, err := NewDCDTrajectory(bytes.NewReader(dcdBytes))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IngestTrajectory("/ds.dcd", pdbBytes, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 3 || rep.NAtoms != sys.Structure.NAtoms() {
		t.Errorf("report = %+v", rep)
	}
	// DCD is uncompressed: no decompression charged.
	if env.Profile.Get("storage.cpu.decompress") != 0 {
		t.Error("DCD ingest charged decompression")
	}
	if env.Profile.Get("storage.cpu.categorize") <= 0 {
		t.Error("categorize not charged")
	}

	// Subsets are identical (within quantization) to the XTC ingest.
	b, _, _ := newADA(t, nil, Options{})
	if _, err := b.Ingest("/ds.xtc", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	srA, err := a.OpenSubset("/ds.dcd", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer srA.Close()
	srB, err := b.OpenSubset("/ds.xtc", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer srB.Close()
	tol := 2*xtc.MaxError(xtc.DefaultPrecision) + 1e-4
	for {
		fa, errA := srA.ReadFrame()
		fb, errB := srB.ReadFrame()
		if errA == io.EOF || errB == io.EOF {
			if errA != errB {
				t.Fatalf("frame counts differ: %v vs %v", errA, errB)
			}
			break
		}
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		for i := range fa.Coords {
			for d := 0; d < 3; d++ {
				if diff := math.Abs(float64(fa.Coords[i][d] - fb.Coords[i][d])); diff > tol {
					t.Fatalf("atom %d dim %d: diff %g", i, d, diff)
				}
			}
		}
	}
}

func TestIngestTrajectoryXTCAdapterMatchesIngest(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 2)
	a, _, _ := newADA(t, nil, Options{})
	repA, err := a.IngestTrajectory("/a", pdbBytes, NewXTCTrajectory(bytes.NewReader(traj)))
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := newADA(t, nil, Options{})
	repB, err := b.Ingest("/b", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	if repA.Compressed != repB.Compressed || repA.Raw != repB.Raw || repA.Frames != repB.Frames {
		t.Errorf("reports differ: %+v vs %+v", repA, repB)
	}
}

func TestIngestTrajectoryTRR(t *testing.T) {
	pdbBytes, traj, sys := testDataset(t, 200, 3)
	frames, err := xtc.NewReader(bytes.NewReader(traj)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trr.NewWriter(&buf)
	for _, f := range frames {
		if err := w.WriteFrame(trr.FromXTC(f)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	env := sim.NewEnv()
	a, _, _ := newADA(t, env, Options{})
	rep, err := a.IngestTrajectory("/ds.trr", pdbBytes, NewTRRTrajectory(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 3 || rep.NAtoms != sys.Structure.NAtoms() {
		t.Errorf("report = %+v", rep)
	}
	if env.Profile.Get("storage.cpu.decompress") != 0 {
		t.Error("TRR ingest charged decompression")
	}
	sr, err := a.OpenSubset("/ds.trr", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	f, err := sr.ReadFrame()
	if err != nil || f.NAtoms() != sr.Ranges.Count() {
		t.Errorf("subset frame: %v, %v", f, err)
	}
	// TRR is lossless: the subset coordinates match the decoded originals
	// exactly (they were stored raw, no re-quantization).
	idx := sr.Ranges.Indices()
	for j, atom := range idx {
		if f.Coords[j] != frames[0].Coords[atom] {
			t.Fatalf("atom %d differs", atom)
		}
	}
}

func TestNewDCDTrajectoryBadStream(t *testing.T) {
	if _, err := NewDCDTrajectory(bytes.NewReader([]byte("not a dcd"))); err == nil {
		t.Error("garbage stream should fail")
	}
}
