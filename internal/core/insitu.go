package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/xtc"
)

// In-situ statistics: following the related work the paper builds on
// (TagIt's storage-side metadata generation, deltaFS's in-situ indexing),
// ADA can compute per-frame analysis series for each subset while the
// frames stream through ingest, and store them as a container dropping.
// A later query ("how compact was the protein over this run?") is then a
// metadata read instead of a full trajectory pass.

// statsPrefix names the per-tag statistics droppings.
const statsPrefix = "stats."

// SubsetStats is the stored in-situ analysis of one subset.
type SubsetStats struct {
	Tag    string    `json:"tag"`
	Frames int       `json:"frames"`
	RGyr   []float64 `json:"rgyr"` // radius of gyration per frame, nm
	RMSD   []float64 `json:"rmsd"` // translation-aligned RMSD vs frame 0, nm
	MSD    []float64 `json:"msd"`  // mean squared displacement vs frame 0, nm^2
	MeanRG float64   `json:"mean_rgyr"`
}

// IngestWithStats runs Ingest and additionally computes per-frame analysis
// for every subset in-situ, charging the extra work to the storage node.
// The statistics are stored as stats.<tag> droppings beside the subsets.
func (a *ADA) IngestWithStats(logical string, pdbData []byte, tr TrajectoryReader) (*IngestReport, error) {
	var start float64
	if a.env != nil {
		start = a.env.Clock.Now()
	}
	st, err := a.prepareIngest(logical, pdbData)
	if err != nil {
		return nil, err
	}
	series := make([]*analysis.TrajectoryStats, len(st.writers))
	for i := range series {
		series[i] = &analysis.TrajectoryStats{}
	}
	for {
		frame, consumed, err := tr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			st.abort()
			return nil, fmt.Errorf("core: ingest %s frame %d: %w", logical, st.report.Frames, err)
		}
		if tr.Compressed() {
			a.chargeCPU("decompress", a.opts.Cost.decompressTime(consumed))
		}
		a.chargeCPU("categorize", a.opts.Cost.categorizeTime(xtc.RawFrameSize(frame.NAtoms())))
		// The in-situ analysis pass reads every raw byte once more.
		a.chargeCPU("insitu", a.opts.Cost.categorizeTime(xtc.RawFrameSize(frame.NAtoms())))
		if err := st.writeFrame(frame, consumed); err != nil {
			st.abort()
			return nil, err
		}
		for i, sw := range st.writers {
			// st.writeFrame just split this frame into sw.sub; the analysis
			// pass reuses that scratch instead of re-splitting (Add copies
			// what it retains).
			if err := series[i].Add(&sw.sub); err != nil {
				st.abort()
				return nil, fmt.Errorf("core: in-situ stats %s: %w", sw.tag, err)
			}
		}
	}
	st.closeAll()

	// The stats droppings ride the same atomic commit as the subsets: they
	// are staged by finish and published only when the manifest lands.
	for i, sw := range st.writers {
		stats := &SubsetStats{
			Tag:    sw.tag,
			Frames: series[i].Frames,
			RGyr:   series[i].RGyr,
			RMSD:   series[i].RMSD,
			MSD:    series[i].MSD,
			MeanRG: analysis.Mean(series[i].RGyr),
		}
		data, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return nil, err
		}
		st.addExtra(statsPrefix+sw.tag, sw.backend, data)
	}
	return st.finish(start)
}

// Stats loads a subset's in-situ statistics (an error when the dataset was
// ingested without them).
func (a *ADA) Stats(logical, tag string) (*SubsetStats, error) {
	data, err := a.readDropping(logical, statsPrefix+tag)
	if err != nil {
		return nil, fmt.Errorf("core: no in-situ stats for %s tag %s (ingested without IngestWithStats?): %w",
			logical, tag, err)
	}
	var s SubsetStats
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("core: parse stats for %s tag %s: %w", logical, tag, err)
	}
	return &s, nil
}
