package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pdb"
)

// mkStructure builds a structure whose atom categories follow the given
// sequence of (category, count) blocks.
func mkStructure(blocks ...interface{}) *pdb.Structure {
	s := &pdb.Structure{}
	for i := 0; i < len(blocks); i += 2 {
		cat := blocks[i].(pdb.Category)
		n := blocks[i+1].(int)
		for j := 0; j < n; j++ {
			s.Atoms = append(s.Atoms, pdb.Atom{Name: "X", ResName: "XXX", Category: cat})
		}
	}
	return s
}

func TestBuildLabelsBlocks(t *testing.T) {
	s := mkStructure(pdb.Protein, 10, pdb.Water, 5, pdb.Protein, 3, pdb.Ion, 2)
	ls := BuildLabels(s)
	if ls.NAtoms != 20 {
		t.Fatalf("NAtoms = %d", ls.NAtoms)
	}
	if got := ls.CategoryRanges(pdb.Protein).String(); got != "0-10,15-18" {
		t.Errorf("protein ranges = %s", got)
	}
	if got := ls.CategoryRanges(pdb.Water).String(); got != "10-15" {
		t.Errorf("water ranges = %s", got)
	}
	if got := ls.CategoryRanges(pdb.Ion).String(); got != "18-20" {
		t.Errorf("ion ranges = %s", got)
	}
	if got := ls.CategoryRanges(pdb.Lipid).Count(); got != 0 {
		t.Errorf("lipid count = %d", got)
	}
}

func TestBuildLabelsEmpty(t *testing.T) {
	ls := BuildLabels(&pdb.Structure{})
	if ls.NAtoms != 0 {
		t.Errorf("NAtoms = %d", ls.NAtoms)
	}
	for c := range ls.ByCategory {
		if ls.ByCategory[c].Count() != 0 {
			t.Errorf("category %d not empty", c)
		}
	}
}

func TestBuildLabelsSingleCategory(t *testing.T) {
	ls := BuildLabels(mkStructure(pdb.Water, 7))
	if got := ls.CategoryRanges(pdb.Water).String(); got != "0-7" {
		t.Errorf("water = %s", got)
	}
}

func TestTagRangesCoarse(t *testing.T) {
	s := mkStructure(pdb.Protein, 4, pdb.Water, 3, pdb.Protein, 2, pdb.Ligand, 1)
	tr := BuildLabels(s).TagRanges(Coarse)
	if len(tr) != 2 {
		t.Fatalf("tags = %v", tr)
	}
	if got := tr[TagProtein].String(); got != "0-4,7-9" {
		t.Errorf("p = %s", got)
	}
	// MISC = complement: water block + ligand.
	if got := tr[TagMisc].String(); got != "4-7,9-10" {
		t.Errorf("m = %s", got)
	}
}

func TestTagRangesCoarseNoProtein(t *testing.T) {
	tr := BuildLabels(mkStructure(pdb.Water, 5)).TagRanges(Coarse)
	if _, ok := tr[TagProtein]; ok {
		t.Error("no protein tag expected")
	}
	if got := tr[TagMisc].Count(); got != 5 {
		t.Errorf("m count = %d", got)
	}
}

func TestTagRangesFine(t *testing.T) {
	s := mkStructure(pdb.Protein, 2, pdb.Water, 2, pdb.Lipid, 2, pdb.Ion, 2, pdb.Ligand, 2)
	tr := BuildLabels(s).TagRanges(Fine)
	want := map[string]int{"protein": 2, "water": 2, "lipid": 2, "ion": 2, "ligand": 2}
	if len(tr) != len(want) {
		t.Fatalf("tags = %v", tr)
	}
	for tag, n := range want {
		if tr[tag] == nil || tr[tag].Count() != n {
			t.Errorf("tag %s = %v", tag, tr[tag])
		}
	}
}

func TestTagsSorted(t *testing.T) {
	s := mkStructure(pdb.Water, 1, pdb.Protein, 1, pdb.Ion, 1)
	got := BuildLabels(s).Tags(Fine)
	want := []string{"ion", "protein", "water"}
	if len(got) != len(want) {
		t.Fatalf("Tags = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Tags = %v, want %v", got, want)
		}
	}
}

func TestLabelsMarshalRoundTrip(t *testing.T) {
	s := mkStructure(pdb.Protein, 100, pdb.Water, 50, pdb.Protein, 25, pdb.Lipid, 10)
	ls := BuildLabels(s)
	data, err := ls.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalLabels(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NAtoms != ls.NAtoms {
		t.Errorf("NAtoms = %d", got.NAtoms)
	}
	for c := range ls.ByCategory {
		if !got.ByCategory[c].Equal(ls.ByCategory[c]) {
			t.Errorf("category %d: %s != %s", c, got.ByCategory[c], ls.ByCategory[c])
		}
	}
}

func TestUnmarshalLabelsErrors(t *testing.T) {
	bad := []string{
		"not json",
		`{"natoms": 5, "ranges": {"bogus": "0-5"}}`,
		`{"natoms": 5, "ranges": {"protein": "x-y"}}`,
		`{"natoms": 99, "ranges": {"protein": "0-5"}}`, // coverage mismatch
	}
	for _, s := range bad {
		if _, err := UnmarshalLabels([]byte(s)); err == nil {
			t.Errorf("UnmarshalLabels(%q) should fail", s)
		}
	}
}

// TestQuickLabelsPartition checks the fundamental labeler invariant: at
// either granularity, tags partition [0, natoms) exactly.
func TestQuickLabelsPartition(t *testing.T) {
	f := func(seed int64, nBlocks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &pdb.Structure{}
		for b := 0; b < int(nBlocks)%12+1; b++ {
			cat := pdb.Category(rng.Intn(pdb.NumCategories))
			for j := 0; j < rng.Intn(20)+1; j++ {
				s.Atoms = append(s.Atoms, pdb.Atom{Category: cat})
			}
		}
		ls := BuildLabels(s)
		for _, g := range []Granularity{Coarse, Fine} {
			covered := make([]int, s.NAtoms())
			for _, l := range ls.TagRanges(g) {
				l.Each(func(i int) bool {
					covered[i]++
					return true
				})
			}
			for _, c := range covered {
				if c != 1 {
					return false
				}
			}
		}
		// Fine ranges must agree with per-atom categories.
		for tag, l := range ls.TagRanges(Fine) {
			ok := true
			l.Each(func(i int) bool {
				if s.Atoms[i].Category.String() != tag {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGranularityString(t *testing.T) {
	if Coarse.String() != "coarse" || Fine.String() != "fine" {
		t.Errorf("strings = %s, %s", Coarse, Fine)
	}
}
