package core

import (
	"errors"
	"fmt"
	"io"
	"path"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/rangelist"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// Container dropping names.
const (
	droppingPDB      = "structure.pdb"
	droppingLabels   = "labels.json"
	droppingManifest = "manifest.json"
	subsetPrefix     = "subset."
	indexPrefix      = "index."
)

// ErrUnknownTag is returned for a tag the dataset was not ingested with.
var ErrUnknownTag = errors.New("core: unknown tag")

// Placement maps tags to backend names. Tags without an entry fall back to
// the default backend (the last configured one, by convention the cheaper
// bulk store).
type Placement map[string]string

// DefaultPlacement is the paper's policy: the active "p"/"protein" subsets
// on the first backend (SSD-backed), everything else on the last (HDD).
func DefaultPlacement(backends []string) Placement {
	if len(backends) == 0 {
		return Placement{}
	}
	fast, slow := backends[0], backends[len(backends)-1]
	return Placement{
		TagProtein: fast,
		"protein":  fast,
		"ligand":   fast,
		TagMisc:    slow,
		"water":    slow,
		"lipid":    slow,
		"ion":      slow,
		"other":    slow,
	}
}

// Options configures an ADA instance.
type Options struct {
	Granularity Granularity
	Placement   Placement // nil = DefaultPlacement over the container backends
	Cost        StorageCost
	// Schema, when set, replaces the built-in categorizer with the
	// user-described one (the paper's "dynamic data categorizing and
	// labeling interface"). Schema placement entries override Placement.
	Schema *Schema
	// Metrics selects the runtime metrics registry (nil = metrics.Default).
	Metrics *metrics.Registry
	// DecodeWorkers bounds IngestParallel's decode pool (<=0 selects
	// xtc.DefaultWorkers: min of NumCPU and GOMAXPROCS).
	DecodeWorkers int
}

// ADA is one middleware instance bound to a PLFS-style container store.
type ADA struct {
	containers *plfs.FS
	env        *sim.Env
	opts       Options
	defaultBE  string
	reg        *metrics.Registry
	im         ingestMetrics
}

// ingestMetrics are the real-time (wall-clock) handles for the ingest
// pipeline's stages; the sim.Env charges model virtual hardware, these
// measure the Go process itself.
type ingestMetrics struct {
	ingests         *metrics.Counter
	frames          *metrics.Counter
	bytesCompressed *metrics.Counter
	bytesRaw        *metrics.Counter
	bytesWritten    *metrics.Counter
	decodeNS        *metrics.Histogram // per-frame decompress+decode
	writeNS         *metrics.Histogram // per-frame categorize+split+write
	queueHWM        *metrics.Gauge     // IngestParallel channel high-water mark
}

func newIngestMetrics(reg *metrics.Registry) ingestMetrics {
	return ingestMetrics{
		ingests:         reg.Counter("ingest.runs"),
		frames:          reg.Counter("ingest.frames"),
		bytesCompressed: reg.Counter("ingest.bytes.compressed"),
		bytesRaw:        reg.Counter("ingest.bytes.raw"),
		bytesWritten:    reg.Counter("ingest.bytes.written"),
		decodeNS:        reg.Histogram("ingest.decode.ns"),
		writeNS:         reg.Histogram("ingest.write.ns"),
		queueHWM:        reg.Gauge("ingest.queue_depth_hwm"),
	}
}

// New returns an ADA instance. env may be nil to disable time accounting.
func New(containers *plfs.FS, env *sim.Env, opts Options) *ADA {
	backends := containers.Backends()
	if opts.Placement == nil {
		opts.Placement = DefaultPlacement(backends)
	}
	if opts.Cost == (StorageCost{}) {
		opts.Cost = DefaultStorageCost()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	return &ADA{
		containers: containers,
		env:        env,
		opts:       opts,
		defaultBE:  backends[len(backends)-1],
		reg:        reg,
		im:         newIngestMetrics(reg),
	}
}

// Metrics returns the registry this instance instruments against.
func (a *ADA) Metrics() *metrics.Registry { return a.reg }

// Granularity returns the configured categorizer granularity.
func (a *ADA) Granularity() Granularity { return a.opts.Granularity }

// WithSchema returns a copy of the instance using the given user-defined
// categorization schema for subsequent ingests.
func (a *ADA) WithSchema(s *Schema) *ADA {
	b := *a
	b.opts.Schema = s
	return &b
}

// IsTargetFile reports whether ADA traps the file: the prototype targets
// VMD's trajectory and structure files; everything else passes through
// untouched (Section 3.4).
func (a *ADA) IsTargetFile(name string) bool {
	switch strings.ToLower(path.Ext(name)) {
	case ".xtc", ".pdb":
		return true
	}
	return false
}

func (a *ADA) chargeCPU(bucket string, sec float64) {
	if a.env != nil && sec > 0 {
		a.env.Charge("storage.cpu."+bucket, sec)
	}
}

func (a *ADA) backendFor(tag string) string {
	if a.opts.Schema != nil {
		if be, ok := a.opts.Schema.Placement[tag]; ok {
			return be
		}
	}
	if be, ok := a.opts.Placement[tag]; ok {
		return be
	}
	return a.defaultBE
}

// IngestReport summarizes one ingest.
type IngestReport struct {
	Logical    string
	Frames     int
	NAtoms     int
	Compressed int64            // bytes of compressed input consumed
	Raw        int64            // bytes after decompression
	Subsets    map[string]int64 // tag -> stored subset bytes
	Elapsed    float64          // virtual seconds spent in ingest
	// Parallel describes the decode worker pool; nil for serial Ingest.
	Parallel *ParallelIngestReport
}

// ParallelIngestReport describes how IngestParallel's decode pool behaved.
type ParallelIngestReport struct {
	// DecodeWorkers is the size of the decode pool.
	DecodeWorkers int
	// WorkerDecodeSec is the virtual decompression time charged to each
	// pool worker (frames assigned round-robin); the stage's wall-time
	// contribution is the maximum entry, not the sum.
	WorkerDecodeSec []float64
	// WorkerBusyNS is each worker's real wall-clock decode time.
	WorkerBusyNS []int64
	// WorkerUtilization is each worker's real busy time relative to the
	// busiest worker (1.0 = as busy as the bottleneck worker).
	WorkerUtilization []float64
}

// Ingest runs the full ADA write path for one dataset: parse the structure
// file, build labels (Algorithm 1), decompress the trajectory frame by
// frame, split every frame into tagged subsets, and dispatch each subset to
// the backend its tag maps to. The structure file, label file, per-subset
// frame indexes, and manifest are stored in the same container.
func (a *ADA) Ingest(logical string, pdbData []byte, traj io.Reader) (*IngestReport, error) {
	var start float64
	if a.env != nil {
		start = a.env.Clock.Now()
	}
	span := a.reg.StartSpan("ingest.total")
	defer span.End()
	st, err := a.prepareIngest(logical, pdbData)
	if err != nil {
		return nil, err
	}

	// Decompress + categorize, one frame at a time (the storage node never
	// holds more than a frame, which is what keeps ADA light-weight).
	in := &countingReader{r: traj}
	reader := xtc.NewReader(in)
	for {
		before := in.n
		t0 := time.Now()
		frame, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		a.im.decodeNS.Observe(time.Since(t0).Nanoseconds())
		if err != nil {
			st.closeAll()
			return nil, fmt.Errorf("core: ingest %s frame %d: %w", logical, st.report.Frames, err)
		}
		frameCompressed := in.n - before
		a.chargeCPU("decompress", a.opts.Cost.decompressTime(frameCompressed))
		a.chargeCPU("categorize", a.opts.Cost.categorizeTime(xtc.RawFrameSize(frame.NAtoms())))
		t1 := time.Now()
		if err := st.writeFrame(frame, frameCompressed); err != nil {
			st.closeAll()
			return nil, err
		}
		a.im.writeNS.Observe(time.Since(t1).Nanoseconds())
	}
	st.closeAll()
	return st.finish(start)
}

// subsetWriter owns one tagged dropping during an ingest.
type subsetWriter struct {
	tag     string
	backend string
	file    vfs.File
	w       *xtc.Writer
	indices []int
	natoms  int
	ib      xtc.IndexBuilder
}

// writeFrame splits one full frame into this subset and appends it.
func (sw *subsetWriter) writeFrame(frame *xtc.Frame) error {
	sub, err := frame.Subset(sw.indices)
	if err != nil {
		return err
	}
	before := sw.w.BytesWritten()
	if err := sw.w.WriteFrame(sub); err != nil {
		return fmt.Errorf("core: subset %s: %w", sw.tag, err)
	}
	sw.ib.Add(sw.w.BytesWritten()-before, sub.NAtoms())
	return nil
}

// ingestState carries one ingest's shared context between the prepare,
// frame-loop, and finish phases (serial and parallel paths share it).
type ingestState struct {
	a               *ADA
	logical         string
	pdbData         []byte
	structure       *pdb.Structure
	labels          *LabelSet
	tagRanges       map[string]*rangelist.List
	granularityName string
	writers         []*subsetWriter
	report          *IngestReport
}

// prepareIngest runs the structure analysis and creates the container and
// subset droppings.
func (a *ADA) prepareIngest(logical string, pdbData []byte) (*ingestState, error) {
	// Data pre-processor, step 1: analyze the structure file.
	a.chargeCPU("pdbparse", a.opts.Cost.parseTime(int64(len(pdbData))))
	structure, err := pdb.Parse(strings.NewReader(string(pdbData)))
	if err != nil {
		return nil, fmt.Errorf("core: ingest %s: %w", logical, err)
	}
	if structure.NAtoms() == 0 {
		return nil, fmt.Errorf("core: ingest %s: structure file has no atoms", logical)
	}
	st := &ingestState{
		a:         a,
		logical:   logical,
		pdbData:   pdbData,
		structure: structure,
		labels:    BuildLabels(structure),
		report: &IngestReport{
			Logical: logical,
			NAtoms:  structure.NAtoms(),
			Subsets: map[string]int64{},
		},
	}
	st.granularityName = a.opts.Granularity.String()
	if a.opts.Schema != nil {
		st.tagRanges = a.opts.Schema.TagRanges(structure)
		st.granularityName = "schema:" + a.opts.Schema.Name
	} else {
		st.tagRanges = st.labels.TagRanges(a.opts.Granularity)
	}

	// I/O determinator: create the container and the subset droppings.
	if err := a.containers.CreateContainer(logical); err != nil {
		return nil, err
	}
	for _, tag := range sortedTags(st.tagRanges) {
		ranges := st.tagRanges[tag]
		be := a.backendFor(tag)
		f, err := a.containers.CreateDropping(logical, subsetPrefix+tag, be)
		if err != nil {
			st.closeAll()
			return nil, fmt.Errorf("core: ingest %s: %w", logical, err)
		}
		st.writers = append(st.writers, &subsetWriter{
			tag:     tag,
			backend: be,
			file:    f,
			w:       xtc.NewRawWriter(f),
			indices: ranges.Indices(),
			natoms:  ranges.Count(),
		})
	}
	return st, nil
}

func (st *ingestState) closeAll() {
	for _, sw := range st.writers {
		sw.file.Close()
	}
}

// writeFrame validates one decoded frame, accounts it, and appends it to
// every subset.
func (st *ingestState) writeFrame(frame *xtc.Frame, compressedBytes int64) error {
	if frame.NAtoms() != st.structure.NAtoms() {
		return fmt.Errorf("core: ingest %s frame %d has %d atoms, structure has %d",
			st.logical, st.report.Frames, frame.NAtoms(), st.structure.NAtoms())
	}
	st.report.Compressed += compressedBytes
	st.report.Raw += xtc.RawFrameSize(frame.NAtoms())
	for _, sw := range st.writers {
		if err := sw.writeFrame(frame); err != nil {
			return fmt.Errorf("core: ingest %s: %w", st.logical, err)
		}
	}
	st.report.Frames++
	return nil
}

// finish persists indexes, structure, labels, and manifest, and stamps the
// report.
func (st *ingestState) finish(start float64) (*IngestReport, error) {
	a := st.a
	// Persist each subset's frame index next to its dropping, enabling
	// random-access playback without a scan.
	for _, sw := range st.writers {
		if err := a.writeDropping(st.logical, indexPrefix+sw.tag, sw.backend,
			sw.ib.Index().Marshal()); err != nil {
			return nil, err
		}
	}

	// Persist structure, labels, manifest.
	if err := a.writeDropping(st.logical, droppingPDB, a.backendFor(TagProtein), st.pdbData); err != nil {
		return nil, err
	}
	labelBytes, err := st.labels.Marshal()
	if err != nil {
		return nil, err
	}
	if err := a.writeDropping(st.logical, droppingLabels, a.backendFor(TagProtein), labelBytes); err != nil {
		return nil, err
	}

	manifest := &Manifest{
		Logical:     st.logical,
		Granularity: st.granularityName,
		NAtoms:      st.structure.NAtoms(),
		Frames:      st.report.Frames,
		Compressed:  st.report.Compressed,
		Raw:         st.report.Raw,
		Subsets:     map[string]Subset{},
		Placement:   map[string]string{},
	}
	for _, sw := range st.writers {
		st.report.Subsets[sw.tag] = sw.w.BytesWritten()
		manifest.Subsets[sw.tag] = Subset{
			Tag:     sw.tag,
			NAtoms:  sw.natoms,
			Bytes:   sw.w.BytesWritten(),
			Backend: sw.backend,
			Ranges:  st.tagRanges[sw.tag].String(),
		}
		manifest.Placement[sw.tag] = sw.backend
	}
	manifestBytes, err := manifest.marshal()
	if err != nil {
		return nil, err
	}
	if err := a.writeDropping(st.logical, droppingManifest, a.backendFor(TagProtein), manifestBytes); err != nil {
		return nil, err
	}
	if a.env != nil {
		st.report.Elapsed = a.env.Clock.Now() - start
	}
	a.im.ingests.Inc()
	a.im.frames.Add(int64(st.report.Frames))
	a.im.bytesCompressed.Add(st.report.Compressed)
	a.im.bytesRaw.Add(st.report.Raw)
	for _, n := range st.report.Subsets {
		a.im.bytesWritten.Add(n)
	}
	return st.report, nil
}

func (a *ADA) writeDropping(logical, name, backend string, data []byte) error {
	f, err := a.containers.CreateDropping(logical, name, backend)
	if err != nil {
		return fmt.Errorf("core: write %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("core: write %s: %w", name, err)
	}
	return f.Close()
}

func sortedTags(m map[string]*rangelist.List) []string {
	tags := make([]string, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	// Small fixed set; insertion sort keeps this dependency-free.
	for i := 1; i < len(tags); i++ {
		for j := i; j > 0 && tags[j] < tags[j-1]; j-- {
			tags[j], tags[j-1] = tags[j-1], tags[j]
		}
	}
	return tags
}

// Datasets lists every ingested dataset's logical name.
func (a *ADA) Datasets() ([]string, error) {
	return a.containers.ListContainers()
}

// Remove deletes an ingested dataset: every subset dropping, index,
// structure, label file, and manifest.
func (a *ADA) Remove(logical string) error {
	return a.containers.RemoveContainer(logical)
}

// Manifest loads a dataset's manifest (the indexer's query path: tags are
// resolved to dataset paths through it).
func (a *ADA) Manifest(logical string) (*Manifest, error) {
	data, err := a.readDropping(logical, droppingManifest)
	if err != nil {
		return nil, err
	}
	return unmarshalManifest(data)
}

// Labels loads a dataset's label set.
func (a *ADA) Labels(logical string) (*LabelSet, error) {
	data, err := a.readDropping(logical, droppingLabels)
	if err != nil {
		return nil, err
	}
	return UnmarshalLabels(data)
}

// StructureBytes returns the stored .pdb file.
func (a *ADA) StructureBytes(logical string) ([]byte, error) {
	return a.readDropping(logical, droppingPDB)
}

func (a *ADA) readDropping(logical, name string) ([]byte, error) {
	f, err := a.containers.OpenDropping(logical, name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := io.ReadFull(f, buf); err != nil && err != io.EOF {
		return nil, fmt.Errorf("core: read %s/%s: %w", logical, name, err)
	}
	return buf, nil
}

// countingReader counts bytes consumed from the wrapped reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
