package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/rangelist"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// Container dropping names.
const (
	droppingPDB      = "structure.pdb"
	droppingLabels   = "labels.json"
	droppingManifest = "manifest.json"
	droppingJournal  = "ingest.journal"
	subsetPrefix     = "subset."
	indexPrefix      = "index."
	// stagingPrefix marks droppings an in-flight ingest has not yet
	// published; commit renames them to their final names, manifest last.
	stagingPrefix = "staging."
	// replicaPrefix marks the failover copies of off-default subsets.
	replicaPrefix = "replica."
)

// ErrUnknownTag is returned for a tag the dataset was not ingested with.
var ErrUnknownTag = errors.New("core: unknown tag")

// Placement maps tags to backend names. Tags without an entry fall back to
// the default backend (the last configured one, by convention the cheaper
// bulk store).
type Placement map[string]string

// DefaultPlacement is the paper's policy: the active "p"/"protein" subsets
// on the first backend (SSD-backed), everything else on the last (HDD).
func DefaultPlacement(backends []string) Placement {
	if len(backends) == 0 {
		return Placement{}
	}
	fast, slow := backends[0], backends[len(backends)-1]
	return Placement{
		TagProtein: fast,
		"protein":  fast,
		"ligand":   fast,
		TagMisc:    slow,
		"water":    slow,
		"lipid":    slow,
		"ion":      slow,
		"other":    slow,
	}
}

// Options configures an ADA instance.
type Options struct {
	Granularity Granularity
	Placement   Placement // nil = DefaultPlacement over the container backends
	Cost        StorageCost
	// Schema, when set, replaces the built-in categorizer with the
	// user-described one (the paper's "dynamic data categorizing and
	// labeling interface"). Schema placement entries override Placement.
	Schema *Schema
	// Metrics selects the runtime metrics registry (nil = metrics.Default).
	Metrics *metrics.Registry
	// DecodeWorkers bounds IngestParallel's decode pool (<=0 selects
	// xtc.DefaultWorkers: min of NumCPU and GOMAXPROCS).
	DecodeWorkers int
	// DecodeBatchBytes overrides the encoded bytes handed to one decode
	// worker per work item during IngestParallel (<=0 selects
	// xtc.DefaultBatchBytes). Smaller batches lower first-frame latency
	// for live-tailing readers; larger ones amortize per-item overhead.
	DecodeBatchBytes int
	// WriteBatchFrames is the number of decoded frames handed to every
	// subset writer per channel send during IngestParallel (<=0 selects
	// defaultWriteBatchFrames). Batching amortizes the channel
	// synchronization across frames — with eight tagged subsets, per-frame
	// fan-out costs eight send/wake cycles per frame; writers still see
	// every frame in order.
	WriteBatchFrames int
	// ReplicateActive mirrors every subset placed off the default (bulk)
	// backend — the active "p" subsets under the paper's placement — onto
	// it at ingest, so a corrupted or down primary fails over to a
	// byte-identical copy instead of erroring.
	ReplicateActive bool
	// DisableChecksums skips all CRC32C computation (no v2 indexes, no
	// manifest checksums). Exists so the checksum overhead can be
	// benchmarked; production ingests should leave it off.
	DisableChecksums bool
}

// ADA is one middleware instance bound to a PLFS-style container store.
type ADA struct {
	containers *plfs.FS
	env        *sim.Env
	opts       Options
	defaultBE  string
	reg        *metrics.Registry
	im         ingestMetrics
	vm         verifyMetrics
	fm         failoverMetrics
	// access, when set, observes every read-path dropping access (the tier
	// subsystem's heat signal). See SetAccessFunc.
	access AccessFunc
}

// ingestMetrics are the real-time (wall-clock) handles for the ingest
// pipeline's stages; the sim.Env charges model virtual hardware, these
// measure the Go process itself.
type ingestMetrics struct {
	ingests         *metrics.Counter
	frames          *metrics.Counter
	bytesCompressed *metrics.Counter
	bytesRaw        *metrics.Counter
	bytesWritten    *metrics.Counter
	decodeNS        *metrics.Histogram // per-frame decompress+decode
	writeNS         *metrics.Histogram // per-frame categorize+split+write
	queueHWM        *metrics.Gauge     // IngestParallel fan-out queue high-water mark, in queued frames (counting the batch in flight)
	progressFrames  *metrics.Gauge     // frames sequenced by the in-flight ingest (live progress)
}

func newIngestMetrics(reg *metrics.Registry) ingestMetrics {
	return ingestMetrics{
		ingests:         reg.Counter("ingest.runs"),
		frames:          reg.Counter("ingest.frames"),
		bytesCompressed: reg.Counter("ingest.bytes.compressed"),
		bytesRaw:        reg.Counter("ingest.bytes.raw"),
		bytesWritten:    reg.Counter("ingest.bytes.written"),
		decodeNS:        reg.Histogram("ingest.decode.ns"),
		writeNS:         reg.Histogram("ingest.write.ns"),
		queueHWM:        reg.Gauge("ingest.queue_depth_hwm"),
		progressFrames:  reg.Gauge("ingest.progress_frames"),
	}
}

// New returns an ADA instance. env may be nil to disable time accounting.
func New(containers *plfs.FS, env *sim.Env, opts Options) *ADA {
	backends := containers.Backends()
	if opts.Placement == nil {
		opts.Placement = DefaultPlacement(backends)
	}
	if opts.Cost == (StorageCost{}) {
		opts.Cost = DefaultStorageCost()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	return &ADA{
		containers: containers,
		env:        env,
		opts:       opts,
		defaultBE:  backends[len(backends)-1],
		reg:        reg,
		im:         newIngestMetrics(reg),
		vm:         newVerifyMetrics(reg),
		fm:         newFailoverMetrics(reg),
	}
}

// Metrics returns the registry this instance instruments against.
func (a *ADA) Metrics() *metrics.Registry { return a.reg }

// Granularity returns the configured categorizer granularity.
func (a *ADA) Granularity() Granularity { return a.opts.Granularity }

// WithSchema returns a copy of the instance using the given user-defined
// categorization schema for subsequent ingests.
func (a *ADA) WithSchema(s *Schema) *ADA {
	b := *a
	b.opts.Schema = s
	return &b
}

// IsTargetFile reports whether ADA traps the file: the prototype targets
// VMD's trajectory and structure files; everything else passes through
// untouched (Section 3.4).
func (a *ADA) IsTargetFile(name string) bool {
	switch strings.ToLower(path.Ext(name)) {
	case ".xtc", ".pdb":
		return true
	}
	return false
}

func (a *ADA) chargeCPU(bucket string, sec float64) {
	if a.env != nil && sec > 0 {
		a.env.Charge("storage.cpu."+bucket, sec)
	}
}

func (a *ADA) backendFor(tag string) string {
	if a.opts.Schema != nil {
		if be, ok := a.opts.Schema.Placement[tag]; ok {
			return be
		}
	}
	if be, ok := a.opts.Placement[tag]; ok {
		return be
	}
	return a.defaultBE
}

// IngestReport summarizes one ingest.
type IngestReport struct {
	Logical    string
	Frames     int
	NAtoms     int
	Compressed int64            // bytes of compressed input consumed
	Raw        int64            // bytes after decompression
	Subsets    map[string]int64 // tag -> stored subset bytes
	Elapsed    float64          // virtual seconds spent in ingest
	// Parallel describes the decode worker pool; nil for serial Ingest.
	Parallel *ParallelIngestReport
}

// ParallelIngestReport describes how IngestParallel's decode pool behaved.
type ParallelIngestReport struct {
	// DecodeWorkers is the size of the decode pool.
	DecodeWorkers int
	// WorkerDecodeSec is the virtual decompression time charged to each
	// pool worker (frames assigned round-robin); the stage's wall-time
	// contribution is the maximum entry, not the sum.
	WorkerDecodeSec []float64
	// WorkerBusyNS is each worker's real wall-clock decode time.
	WorkerBusyNS []int64
	// WorkerUtilization is each worker's real busy time relative to the
	// busiest worker (1.0 = as busy as the bottleneck worker).
	WorkerUtilization []float64
}

// Ingest runs the full ADA write path for one dataset: parse the structure
// file, build labels (Algorithm 1), decompress the trajectory frame by
// frame, split every frame into tagged subsets, and dispatch each subset to
// the backend its tag maps to. The structure file, label file, per-subset
// frame indexes, and manifest are stored in the same container.
func (a *ADA) Ingest(logical string, pdbData []byte, traj io.Reader) (*IngestReport, error) {
	var start float64
	if a.env != nil {
		start = a.env.Clock.Now()
	}
	span := a.reg.StartSpan("ingest.total")
	defer span.End()
	st, err := a.prepareIngest(logical, pdbData)
	if err != nil {
		return nil, err
	}

	// Decompress + categorize, one frame at a time (the storage node never
	// holds more than a frame, which is what keeps ADA light-weight).
	in := &countingReader{r: traj}
	reader := xtc.NewReader(in)
	for {
		before := in.n
		t0 := time.Now()
		frame, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		a.im.decodeNS.Observe(time.Since(t0).Nanoseconds())
		if err != nil {
			st.abort()
			return nil, fmt.Errorf("core: ingest %s frame %d: %w", logical, st.report.Frames, err)
		}
		frameCompressed := in.n - before
		a.chargeCPU("decompress", a.opts.Cost.decompressTime(frameCompressed))
		a.chargeCPU("categorize", a.opts.Cost.categorizeTime(xtc.RawFrameSize(frame.NAtoms())))
		t1 := time.Now()
		if err := st.writeFrame(frame, frameCompressed); err != nil {
			st.abort()
			return nil, err
		}
		a.im.writeNS.Observe(time.Since(t1).Nanoseconds())
	}
	st.closeAll()
	return st.finish(start)
}

// crcTee forwards writes to the staged dropping while maintaining the
// per-frame and whole-stream CRC32C. xtc.Writer issues exactly one Write
// per frame, so `last` after a WriteFrame is that frame's checksum.
type crcTee struct {
	f       vfs.File
	enabled bool
	last    uint32 // CRC32C of the most recent write (one encoded frame)
	total   uint32 // running CRC32C of the whole stream
}

func (t *crcTee) Write(p []byte) (int, error) {
	n, err := t.f.Write(p)
	if t.enabled && n > 0 {
		t.last = xtc.CRC32C(p[:n])
		t.total = xtc.CRC32CUpdate(t.total, p[:n])
	}
	return n, err
}

// subsetWriter owns one tagged dropping during an ingest.
type subsetWriter struct {
	tag     string
	backend string
	file    vfs.File
	tee     *crcTee
	w       *xtc.Writer
	indices []int
	natoms  int
	ib      xtc.IndexBuilder
	// base is the byte count already durable in the staged dropping when
	// this writer started — zero on a fresh ingest, the last journaled
	// checkpoint on a resumed one.
	base int64
	// sub is the split scratch frame: each writer is driven by a single
	// goroutine, so reusing it makes the per-frame split allocation-free.
	sub xtc.Frame
}

// writeFrame splits one full frame into this subset and appends it.
func (sw *subsetWriter) writeFrame(frame *xtc.Frame) error {
	if err := frame.SubsetInto(sw.indices, &sw.sub); err != nil {
		return err
	}
	before := sw.w.BytesWritten()
	if err := sw.w.WriteFrame(&sw.sub); err != nil {
		return fmt.Errorf("core: subset %s: %w", sw.tag, err)
	}
	if sw.tee.enabled {
		sw.ib.AddWithCRC(sw.w.BytesWritten()-before, sw.sub.NAtoms(), sw.tee.last)
	} else {
		sw.ib.Add(sw.w.BytesWritten()-before, sw.sub.NAtoms())
	}
	return nil
}

// storedBytes is the total size of the staged dropping.
func (sw *subsetWriter) storedBytes() int64 { return sw.base + sw.w.BytesWritten() }

// ingestState carries one ingest's shared context between the prepare,
// frame-loop, and finish phases (serial and parallel paths share it).
type ingestState struct {
	a               *ADA
	logical         string
	pdbData         []byte
	structure       *pdb.Structure
	labels          *LabelSet
	tagRanges       map[string]*rangelist.List
	granularityName string
	writers         []*subsetWriter
	report          *IngestReport
	journal         *journalWriter
	// staged lists the final dropping names (in publish order) whose
	// staged copies commit renames into place; the manifest is not among
	// them — its rename is the commit point and always happens last.
	staged []string
	// checksums collects CRC32C per staged non-subset dropping for the
	// manifest's integrity map.
	checksums map[string]uint32
	// extra holds droppings a variant ingest (in-situ stats) wants
	// published atomically with the dataset.
	extra []extraDropping
	// ckptFrames is the frame count at the last journaled checkpoint; live
	// ingest uses it to avoid writing a duplicate checkpoint per batch when
	// the frame loop's periodic one already landed on the batch boundary.
	ckptFrames int
}

// extraDropping is a variant-specific payload staged during finish.
type extraDropping struct {
	name    string
	backend string
	data    []byte
}

// addExtra schedules an additional dropping to be published with the
// dataset's atomic commit (used by the in-situ statistics path).
func (st *ingestState) addExtra(name, backend string, data []byte) {
	st.extra = append(st.extra, extraDropping{name: name, backend: backend, data: data})
}

// analyzeIngest runs the structure analysis half of prepareIngest, with no
// container side effects (ResumeIngest reuses it against an existing
// container).
func (a *ADA) analyzeIngest(logical string, pdbData []byte) (*ingestState, error) {
	// Data pre-processor, step 1: analyze the structure file.
	a.chargeCPU("pdbparse", a.opts.Cost.parseTime(int64(len(pdbData))))
	structure, err := pdb.Parse(bytes.NewReader(pdbData))
	if err != nil {
		return nil, fmt.Errorf("core: ingest %s: %w", logical, err)
	}
	if structure.NAtoms() == 0 {
		return nil, fmt.Errorf("core: ingest %s: structure file has no atoms", logical)
	}
	st := &ingestState{
		a:         a,
		logical:   logical,
		pdbData:   pdbData,
		structure: structure,
		labels:    BuildLabels(structure),
		checksums: map[string]uint32{},
		report: &IngestReport{
			Logical: logical,
			NAtoms:  structure.NAtoms(),
			Subsets: map[string]int64{},
		},
	}
	st.granularityName = a.opts.Granularity.String()
	if a.opts.Schema != nil {
		st.tagRanges = a.opts.Schema.TagRanges(structure)
		st.granularityName = "schema:" + a.opts.Schema.Name
	} else {
		st.tagRanges = st.labels.TagRanges(a.opts.Granularity)
	}
	return st, nil
}

// prepareIngest runs the structure analysis and creates the container, the
// ingest journal, and the staged subset droppings.
func (a *ADA) prepareIngest(logical string, pdbData []byte) (*ingestState, error) {
	return a.prepareIngestMode(logical, pdbData, false)
}

// prepareIngestMode is prepareIngest with the journal's begin record
// optionally marked live, which flips the recovery classification from
// roll-back to preserve-the-prefix (see live.go).
func (a *ADA) prepareIngestMode(logical string, pdbData []byte, live bool) (*ingestState, error) {
	st, err := a.analyzeIngest(logical, pdbData)
	if err != nil {
		return nil, err
	}
	structure := st.structure

	// I/O determinator: create the container, start the ingest journal,
	// then create the subset droppings under staging names. Nothing under
	// a final name exists until commit, so a crash anywhere in here leaves
	// only journaled staging state that Recover can classify.
	if err := a.containers.CreateContainer(logical); err != nil {
		return nil, err
	}
	j, err := a.openJournal(logical)
	if err != nil {
		return nil, fmt.Errorf("core: ingest %s: %w", logical, err)
	}
	st.journal = j
	begin := &journalRecord{
		Type:        journalBegin,
		Logical:     logical,
		Granularity: st.granularityName,
		NAtoms:      structure.NAtoms(),
		Live:        live,
	}
	for _, tag := range sortedTags(st.tagRanges) {
		begin.Tags = append(begin.Tags, journalTag{
			Tag:     tag,
			Backend: a.backendFor(tag),
			NAtoms:  st.tagRanges[tag].Count(),
			Ranges:  st.tagRanges[tag].String(),
		})
	}
	if err := j.append(begin); err != nil {
		st.abort()
		return nil, fmt.Errorf("core: ingest %s: %w", logical, err)
	}
	for _, tag := range sortedTags(st.tagRanges) {
		ranges := st.tagRanges[tag]
		be := a.backendFor(tag)
		f, err := a.containers.CreateDropping(logical, stagingPrefix+subsetPrefix+tag, be)
		if err != nil {
			st.abort()
			return nil, fmt.Errorf("core: ingest %s: %w", logical, err)
		}
		tee := &crcTee{f: f, enabled: !a.opts.DisableChecksums}
		st.writers = append(st.writers, &subsetWriter{
			tag:     tag,
			backend: be,
			file:    f,
			tee:     tee,
			w:       xtc.NewRawWriter(tee),
			indices: ranges.Indices(),
			natoms:  ranges.Count(),
		})
		st.staged = append(st.staged, subsetPrefix+tag)
	}
	return st, nil
}

func (st *ingestState) closeAll() {
	for _, sw := range st.writers {
		sw.file.Close()
	}
}

// abort tears an interrupted ingest down: close everything and roll the
// container back best-effort (a crashed process skips this — that is what
// the journal and Recover are for).
func (st *ingestState) abort() {
	st.closeAll()
	if st.journal != nil {
		st.journal.close()
	}
	st.a.containers.RemoveContainer(st.logical)
}

// writeFrame validates one decoded frame, accounts it, and appends it to
// every subset.
func (st *ingestState) writeFrame(frame *xtc.Frame, compressedBytes int64) error {
	if frame.NAtoms() != st.structure.NAtoms() {
		return fmt.Errorf("core: ingest %s frame %d has %d atoms, structure has %d",
			st.logical, st.report.Frames, frame.NAtoms(), st.structure.NAtoms())
	}
	st.report.Compressed += compressedBytes
	st.report.Raw += xtc.RawFrameSize(frame.NAtoms())
	for _, sw := range st.writers {
		if err := sw.writeFrame(frame); err != nil {
			return fmt.Errorf("core: ingest %s: %w", st.logical, err)
		}
	}
	st.report.Frames++
	st.a.im.progressFrames.Set(int64(st.report.Frames))
	if st.journal != nil && st.report.Frames%journalCkptEvery == 0 {
		if err := st.checkpoint(); err != nil {
			return fmt.Errorf("core: ingest %s: %w", st.logical, err)
		}
	}
	return nil
}

// checkpoint journals the current durable high-water mark: frame count and
// per-subset byte length plus running CRC32C. ResumeIngest truncates the
// staged droppings back to the latest checkpoint and continues from there.
// Only the serial ingest paths checkpoint (the parallel path's writers race
// ahead of each other, so no consistent cut exists mid-flight).
func (st *ingestState) checkpoint() error {
	rec := &journalRecord{
		Type:       journalCkpt,
		Frames:     st.report.Frames,
		Compressed: st.report.Compressed,
		Raw:        st.report.Raw,
		Subsets:    map[string]journalSubset{},
	}
	for _, sw := range st.writers {
		rec.Subsets[sw.tag] = journalSubset{Bytes: sw.storedBytes(), CRC: sw.tee.total}
	}
	if err := st.journal.append(rec); err != nil {
		return err
	}
	st.ckptFrames = st.report.Frames
	return nil
}

// writeStaged writes one non-subset dropping under its staging name,
// records it for the commit rename pass, and folds its CRC32C into the
// manifest's integrity map.
func (st *ingestState) writeStaged(name, backend string, data []byte) error {
	if err := st.a.writeDropping(st.logical, stagingPrefix+name, backend, data); err != nil {
		return err
	}
	st.staged = append(st.staged, name)
	if !st.a.opts.DisableChecksums {
		st.checksums[name] = xtc.CRC32C(data)
	}
	return nil
}

// finish stages the metadata droppings (indexes, structure, labels, any
// extras, and replica copies), then commits: journal commit record, rename
// every staged dropping to its final name, publish the manifest last (its
// rename is the atomic commit point), and retire the journal.
func (st *ingestState) finish(start float64) (*IngestReport, error) {
	a := st.a
	// Persist each subset's frame index next to its dropping, enabling
	// random-access playback without a scan.
	for _, sw := range st.writers {
		if err := st.writeStaged(indexPrefix+sw.tag, sw.backend,
			sw.ib.Index().Marshal()); err != nil {
			return nil, err
		}
	}

	// Persist structure, labels, and any variant extras.
	if err := st.writeStaged(droppingPDB, a.backendFor(TagProtein), st.pdbData); err != nil {
		return nil, err
	}
	labelBytes, err := st.labels.Marshal()
	if err != nil {
		return nil, err
	}
	if err := st.writeStaged(droppingLabels, a.backendFor(TagProtein), labelBytes); err != nil {
		return nil, err
	}
	for _, ex := range st.extra {
		if err := st.writeStaged(ex.name, ex.backend, ex.data); err != nil {
			return nil, err
		}
	}

	manifest := &Manifest{
		Logical:     st.logical,
		Granularity: st.granularityName,
		NAtoms:      st.structure.NAtoms(),
		Frames:      st.report.Frames,
		Compressed:  st.report.Compressed,
		Raw:         st.report.Raw,
		Subsets:     map[string]Subset{},
		Placement:   map[string]string{},
	}
	for _, sw := range st.writers {
		st.report.Subsets[sw.tag] = sw.storedBytes()
		sub := Subset{
			Tag:     sw.tag,
			NAtoms:  sw.natoms,
			Bytes:   sw.storedBytes(),
			Backend: sw.backend,
			Ranges:  st.tagRanges[sw.tag].String(),
		}
		if sw.tee.enabled {
			sub.CRC32C = sw.tee.total
		}
		// Replicate off-default subsets onto the bulk backend so reads
		// survive a corrupted or down primary.
		if a.opts.ReplicateActive && sw.backend != a.defaultBE {
			data, err := a.readDropping(st.logical, stagingPrefix+subsetPrefix+sw.tag)
			if err != nil {
				return nil, fmt.Errorf("core: replicate %s: %w", sw.tag, err)
			}
			if err := st.writeStaged(replicaPrefix+subsetPrefix+sw.tag, a.defaultBE, data); err != nil {
				return nil, err
			}
			if err := st.writeStaged(replicaPrefix+indexPrefix+sw.tag, a.defaultBE,
				sw.ib.Index().Marshal()); err != nil {
				return nil, err
			}
			sub.Replica = a.defaultBE
		}
		manifest.Subsets[sw.tag] = sub
		manifest.Placement[sw.tag] = sw.backend
	}
	if len(st.checksums) > 0 {
		manifest.Checksums = st.checksums
	}
	if err := st.commit(manifest); err != nil {
		return nil, err
	}
	if a.env != nil {
		st.report.Elapsed = a.env.Clock.Now() - start
	}
	a.im.ingests.Inc()
	a.im.frames.Add(int64(st.report.Frames))
	a.im.bytesCompressed.Add(st.report.Compressed)
	a.im.bytesRaw.Add(st.report.Raw)
	for _, n := range st.report.Subsets {
		a.im.bytesWritten.Add(n)
	}
	return st.report, nil
}

// commit publishes the dataset. The sequence is crash-ordered: the commit
// record makes the ingest replayable before any final name exists, the
// per-dropping renames are each atomic, and the manifest rename — the one
// readers gate on — happens strictly last. Whatever op a crash lands on,
// the container is either invisible to readers or fully consistent.
func (st *ingestState) commit(manifest *Manifest) error {
	a := st.a
	if st.journal != nil {
		rec := &journalRecord{Type: journalCommit, Staged: st.staged, Manifest: manifest}
		if err := st.journal.append(rec); err != nil {
			return fmt.Errorf("core: commit %s: %w", st.logical, err)
		}
		if err := st.journal.close(); err != nil {
			return fmt.Errorf("core: commit %s: %w", st.logical, err)
		}
	}
	for _, name := range st.staged {
		if err := a.containers.RenameDropping(st.logical, stagingPrefix+name, name); err != nil {
			return fmt.Errorf("core: commit %s: %w", st.logical, err)
		}
	}
	manifestBytes, err := manifest.marshal()
	if err != nil {
		return err
	}
	if err := a.writeDropping(st.logical, stagingPrefix+droppingManifest,
		a.backendFor(TagProtein), manifestBytes); err != nil {
		return err
	}
	if err := a.containers.RenameDropping(st.logical, stagingPrefix+droppingManifest, droppingManifest); err != nil {
		return fmt.Errorf("core: commit %s: %w", st.logical, err)
	}
	// The dataset is live; the journal is now only bookkeeping.
	if err := a.containers.RemoveDropping(st.logical, droppingJournal); err != nil {
		return fmt.Errorf("core: commit %s: %w", st.logical, err)
	}
	return nil
}

func (a *ADA) writeDropping(logical, name, backend string, data []byte) error {
	f, err := a.containers.CreateDropping(logical, name, backend)
	if err != nil {
		return fmt.Errorf("core: write %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("core: write %s: %w", name, err)
	}
	return f.Close()
}

func sortedTags(m map[string]*rangelist.List) []string {
	tags := make([]string, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	// Small fixed set; insertion sort keeps this dependency-free.
	for i := 1; i < len(tags); i++ {
		for j := i; j > 0 && tags[j] < tags[j-1]; j-- {
			tags[j], tags[j-1] = tags[j-1], tags[j]
		}
	}
	return tags
}

// Datasets lists every ingested dataset's logical name.
func (a *ADA) Datasets() ([]string, error) {
	return a.containers.ListContainers()
}

// Remove deletes an ingested dataset: every subset dropping, index,
// structure, label file, and manifest.
func (a *ADA) Remove(logical string) error {
	return a.containers.RemoveContainer(logical)
}

// Manifest loads a dataset's manifest (the indexer's query path: tags are
// resolved to dataset paths through it).
func (a *ADA) Manifest(logical string) (*Manifest, error) {
	data, err := a.readDropping(logical, droppingManifest)
	if err != nil {
		return nil, err
	}
	return unmarshalManifest(data)
}

// Labels loads a dataset's label set.
func (a *ADA) Labels(logical string) (*LabelSet, error) {
	data, err := a.readDropping(logical, droppingLabels)
	if err != nil {
		return nil, err
	}
	return UnmarshalLabels(data)
}

// StructureBytes returns the stored .pdb file.
func (a *ADA) StructureBytes(logical string) ([]byte, error) {
	return a.readDropping(logical, droppingPDB)
}

func (a *ADA) readDropping(logical, name string) ([]byte, error) {
	f, err := a.containers.OpenDropping(logical, name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := io.ReadFull(f, buf); err != nil && err != io.EOF {
		return nil, fmt.Errorf("core: read %s/%s: %w", logical, name, err)
	}
	return buf, nil
}

// countingReader counts bytes consumed from the wrapped reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
