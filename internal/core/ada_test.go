package core

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// testDataset builds a small synthetic dataset: pdb bytes + a compressed
// trajectory stream with the given frame count.
func testDataset(t testing.TB, scale, frames int) (pdbBytes []byte, traj []byte, sys *gpcr.System) {
	t.Helper()
	sys, err := gpcr.Scaled(scale).Build()
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := pdb.Write(&pb, sys.Structure); err != nil {
		t.Fatal(err)
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	s, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	w := xtc.NewWriter(&tb)
	if err := s.WriteTrajectory(w, frames); err != nil {
		t.Fatal(err)
	}
	return pb.Bytes(), tb.Bytes(), sys
}

func newADA(t testing.TB, env *sim.Env, opts Options) (*ADA, *vfs.MemFS, *vfs.MemFS) {
	t.Helper()
	ssd := vfs.NewMemFS()
	hdd := vfs.NewMemFS()
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return New(containers, env, opts), ssd, hdd
}

func TestIngestCoarse(t *testing.T) {
	pdbBytes, traj, sys := testDataset(t, 200, 4)
	a, ssd, hdd := newADA(t, nil, Options{})
	rep, err := a.Ingest("/bar.xtc", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 4 {
		t.Errorf("frames = %d", rep.Frames)
	}
	if rep.NAtoms != sys.Structure.NAtoms() {
		t.Errorf("natoms = %d", rep.NAtoms)
	}
	if rep.Compressed != int64(len(traj)) {
		t.Errorf("compressed = %d, want %d", rep.Compressed, len(traj))
	}
	if rep.Raw != 4*xtc.RawFrameSize(rep.NAtoms) {
		t.Errorf("raw = %d", rep.Raw)
	}
	if len(rep.Subsets) != 2 || rep.Subsets[TagProtein] == 0 || rep.Subsets[TagMisc] == 0 {
		t.Errorf("subsets = %v", rep.Subsets)
	}

	// Placement: protein dropping on the ssd mount, misc on hdd.
	if !vfs.Exists(ssd, "/mnt1/bar.xtc/subset.p") {
		t.Error("protein subset not on ssd backend")
	}
	if !vfs.Exists(hdd, "/mnt2/bar.xtc/subset.m") {
		t.Error("misc subset not on hdd backend")
	}
	// The label file, structure and manifest live with the active data.
	for _, name := range []string{"labels.json", "manifest.json", "structure.pdb"} {
		if !vfs.Exists(ssd, "/mnt1/bar.xtc/"+name) {
			t.Errorf("%s not on ssd backend", name)
		}
	}
}

func TestIngestManifest(t *testing.T) {
	pdbBytes, traj, sys := testDataset(t, 200, 3)
	a, _, _ := newADA(t, nil, Options{})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	m, err := a.Manifest("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if m.Frames != 3 || m.NAtoms != sys.Structure.NAtoms() || m.Granularity != "coarse" {
		t.Errorf("manifest = %+v", m)
	}
	counts := sys.Structure.CategoryCounts()
	if m.Subsets[TagProtein].NAtoms != counts[pdb.Protein] {
		t.Errorf("p natoms = %d, want %d", m.Subsets[TagProtein].NAtoms, counts[pdb.Protein])
	}
	if m.Subsets[TagMisc].NAtoms != m.NAtoms-counts[pdb.Protein] {
		t.Errorf("m natoms = %d", m.Subsets[TagMisc].NAtoms)
	}
	if m.Subsets[TagProtein].Backend != "ssd" || m.Subsets[TagMisc].Backend != "hdd" {
		t.Errorf("placement = %+v", m.Placement)
	}
}

func TestSubsetReadMatchesOriginal(t *testing.T) {
	pdbBytes, traj, sys := testDataset(t, 200, 5)
	a, _, _ := newADA(t, nil, Options{})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}

	// Decode the original trajectory for reference.
	orig, err := xtc.NewReader(bytes.NewReader(traj)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	sr, err := a.OpenSubset("/ds", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	idx := sr.Ranges.Indices()
	counts := sys.Structure.CategoryCounts()
	if len(idx) != counts[pdb.Protein] {
		t.Fatalf("subset covers %d atoms, want %d", len(idx), counts[pdb.Protein])
	}
	tol := xtc.MaxError(xtc.DefaultPrecision) + 1e-6
	for k := 0; ; k++ {
		sub, err := sr.ReadFrame()
		if err == io.EOF {
			if k != 5 {
				t.Fatalf("subset has %d frames, want 5", k)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if sub.Step != orig[k].Step {
			t.Errorf("frame %d step = %d, want %d", k, sub.Step, orig[k].Step)
		}
		for j, atom := range idx {
			for d := 0; d < 3; d++ {
				diff := math.Abs(float64(sub.Coords[j][d] - orig[k].Coords[atom][d]))
				if diff > tol {
					t.Fatalf("frame %d atom %d dim %d: diff %g", k, atom, d, diff)
				}
			}
		}
	}
}

func TestOpenFullReassembles(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	a, _, _ := newADA(t, nil, Options{Granularity: Fine})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	orig, err := xtc.NewReader(bytes.NewReader(traj)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := a.OpenFull("/ds")
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	tol := xtc.MaxError(xtc.DefaultPrecision) + 1e-6
	for k := 0; ; k++ {
		full, err := fr.ReadFrame()
		if err == io.EOF {
			if k != 3 {
				t.Fatalf("full reader has %d frames", k)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if full.NAtoms() != orig[k].NAtoms() {
			t.Fatalf("frame %d natoms = %d", k, full.NAtoms())
		}
		for i := range full.Coords {
			for d := 0; d < 3; d++ {
				diff := math.Abs(float64(full.Coords[i][d] - orig[k].Coords[i][d]))
				if diff > tol {
					t.Fatalf("frame %d atom %d: diff %g", k, i, diff)
				}
			}
		}
	}
}

func TestOpenSubsetUnknownTag(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 400, 1)
	a, _, _ := newADA(t, nil, Options{})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OpenSubset("/ds", "water"); !errors.Is(err, ErrUnknownTag) {
		t.Errorf("err = %v, want ErrUnknownTag", err)
	}
	if _, err := a.OpenSubset("/missing", TagProtein); err == nil {
		t.Error("missing dataset should fail")
	}
}

func TestFineGranularityPlacement(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 2)
	a, ssd, hdd := newADA(t, nil, Options{Granularity: Fine})
	rep, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	// protein + ligand active -> ssd; water/lipid/ion -> hdd.
	for tag := range rep.Subsets {
		switch tag {
		case "protein", "ligand":
			if !vfs.Exists(ssd, "/mnt1/ds/subset."+tag) {
				t.Errorf("%s should be on ssd", tag)
			}
		default:
			if !vfs.Exists(hdd, "/mnt2/ds/subset."+tag) {
				t.Errorf("%s should be on hdd", tag)
			}
		}
	}
}

func TestIngestChargesStorageCPU(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	env := sim.NewEnv()
	a, _, _ := newADA(t, env, Options{})
	rep, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	cost := DefaultStorageCost()
	wantDecomp := cost.decompressTime(rep.Compressed)
	if got := env.Profile.Get("storage.cpu.decompress"); math.Abs(got-wantDecomp) > 1e-9 {
		t.Errorf("decompress charge = %v, want %v", got, wantDecomp)
	}
	if env.Profile.Get("storage.cpu.categorize") <= 0 {
		t.Error("categorize not charged")
	}
	if env.Profile.Get("storage.cpu.pdbparse") <= 0 {
		t.Error("pdbparse not charged")
	}
	if rep.Elapsed <= 0 {
		t.Error("report elapsed not set")
	}
	// Pre-processing CPU moved to storage nodes: the compute-node buckets
	// must not exist.
	if env.Profile.TotalPrefix("compute.") != 0 {
		t.Error("ingest charged compute-node CPU")
	}
}

func TestIngestErrors(t *testing.T) {
	a, _, _ := newADA(t, nil, Options{})
	// Garbage pdb.
	if _, err := a.Ingest("/x", []byte("ATOM  garbage"), bytes.NewReader(nil)); err == nil {
		t.Error("garbage pdb should fail")
	}
	// Empty structure.
	if _, err := a.Ingest("/x", []byte("REMARK nothing\n"), bytes.NewReader(nil)); err == nil {
		t.Error("empty structure should fail")
	}
	// Atom count mismatch between pdb and trajectory.
	pdbBytes, _, _ := testDataset(t, 400, 1)
	_, traj2, _ := testDataset(t, 200, 1)
	if _, err := a.Ingest("/x", pdbBytes, bytes.NewReader(traj2)); err == nil {
		t.Error("atom count mismatch should fail")
	}
	// Truncated trajectory.
	pdbBytes3, traj3, _ := testDataset(t, 400, 2)
	if _, err := a.Ingest("/y", pdbBytes3, bytes.NewReader(traj3[:len(traj3)-10])); err == nil {
		t.Error("truncated trajectory should fail")
	}
}

func TestIsTargetFile(t *testing.T) {
	a, _, _ := newADA(t, nil, Options{})
	for name, want := range map[string]bool{
		"/data/bar.xtc": true,
		"/data/foo.PDB": true,
		"/data/out.log": false,
		"/data/x.txt":   false,
	} {
		if got := a.IsTargetFile(name); got != want {
			t.Errorf("IsTargetFile(%s) = %v", name, got)
		}
	}
}

func TestLabelsAndStructureRecoverable(t *testing.T) {
	pdbBytes, traj, sys := testDataset(t, 300, 1)
	a, _, _ := newADA(t, nil, Options{})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	ls, err := a.Labels("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if ls.NAtoms != sys.Structure.NAtoms() {
		t.Errorf("labels natoms = %d", ls.NAtoms)
	}
	got, err := a.StructureBytes("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pdbBytes) {
		t.Error("structure bytes differ")
	}
}

func TestSubsetBytesSmallerThanRaw(t *testing.T) {
	// The whole point: the protein subset ADA serves is much smaller than
	// the raw dataset (Table 2's ADA column vs Raw column).
	pdbBytes, traj, sys := testDataset(t, 100, 2)
	a, _, _ := newADA(t, nil, Options{})
	rep, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(rep.Subsets[TagProtein]) / float64(rep.Raw)
	want := sys.Config.ProteinFraction()
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("protein byte fraction = %.3f, composition fraction = %.3f", frac, want)
	}
}
