package core

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/metrics"
	"repro/internal/plfs"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// durableDroppings are the droppings a committed coarse-granularity dataset
// holds; crash and resume tests compare each byte-for-byte against a clean
// ingest.
var durableDroppings = []string{
	"subset.p", "subset.m", "index.p", "index.m",
	"structure.pdb", "labels.json", "manifest.json",
}

// crashIngest runs one ingest attempt with the injector's faults applied to
// both backends and returns the raw (fault-free) backends for post-crash
// inspection. The ingest error, if any, is deliberately discarded: a fired
// kill rule is the simulated crash, and even the rollback inside Ingest's
// error path fails through the dead file system, exactly like a real crash.
func crashIngest(t *testing.T, in *faultfs.Injector, pdbBytes, traj []byte) (*vfs.MemFS, *vfs.MemFS) {
	t.Helper()
	ssd, hdd := vfs.NewMemFS(), vfs.NewMemFS()
	store, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: faultfs.Wrap(ssd, in), Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: faultfs.Wrap(hdd, in), Mount: "/mnt2"},
	)
	if err != nil {
		return ssd, hdd // the kill landed inside store construction
	}
	a := New(store, nil, Options{Metrics: metrics.NewRegistry()})
	a.Ingest("/ds", pdbBytes, bytes.NewReader(traj))
	return ssd, hdd
}

// rebootADA rebuilds the storage stack over the raw backends, the way a
// process restart after a crash would.
func rebootADA(t *testing.T, ssd, hdd *vfs.MemFS) *ADA {
	t.Helper()
	store, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return New(store, nil, Options{Metrics: metrics.NewRegistry()})
}

// countOps measures how many backend operations one clean ingest performs,
// using a rule that can never fire so the injector only observes.
func countOps(t *testing.T, pdbBytes, traj []byte) int64 {
	t.Helper()
	probe := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindErr, Op: "no-such-op", Nth: 1})
	crashIngest(t, probe, pdbBytes, traj)
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("probe ingest saw only %d backend ops", total)
	}
	return total
}

func readSubsetFrames(t *testing.T, a *ADA, logical, tag string) []*xtc.Frame {
	t.Helper()
	sr, err := a.OpenSubset(logical, tag)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	var out []*xtc.Frame
	for {
		f, err := sr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}

// sameFrames reports exact (bitwise) equality — failover must serve the
// byte-identical replica, so even float equality is strict here.
func sameFrames(a, b []*xtc.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Step != b[i].Step || len(a[i].Coords) != len(b[i].Coords) {
			return false
		}
		for j := range a[i].Coords {
			if a[i].Coords[j] != b[i].Coords[j] {
				return false
			}
		}
	}
	return true
}

// TestCrashMatrix sweeps a kill-after-Nth-op fault across every backend
// operation of an ingest. After each simulated crash the stack is rebuilt
// over the surviving bytes and recovered; the invariant is that the
// container is then either absent or byte-identical to a clean ingest —
// never torn.
func TestCrashMatrix(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)

	golden, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := golden.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	goldenBytes := map[string][]byte{}
	for _, name := range durableDroppings {
		data, err := golden.readDropping("/ds", name)
		if err != nil {
			t.Fatal(err)
		}
		goldenBytes[name] = data
	}
	goldenFrames := readSubsetFrames(t, golden, "/ds", TagProtein)

	total := countOps(t, pdbBytes, traj)
	var committed, rolledBack int
	for n := int64(1); n <= total; n++ {
		in := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindKill, Nth: int(n)})
		ssd, hdd := crashIngest(t, in, pdbBytes, traj)
		a := rebootADA(t, ssd, hdd)
		if _, err := a.Recover(); err != nil {
			t.Fatalf("kill %d/%d: recover: %v", n, total, err)
		}

		if _, err := a.Manifest("/ds"); err != nil {
			// Not readable => recovery must have rolled the container back
			// entirely; nothing may linger on either backend.
			names, lerr := a.Datasets()
			if lerr != nil {
				t.Fatalf("kill %d/%d: list after rollback: %v", n, total, lerr)
			}
			if len(names) != 0 {
				t.Fatalf("kill %d/%d: manifest unreadable but containers remain: %v", n, total, names)
			}
			rolledBack++
			continue
		}
		committed++

		// Committed: every dropping byte-identical to the clean ingest, no
		// ingest leftovers, and the tagged reads fully served.
		for _, name := range durableDroppings {
			got, err := a.readDropping("/ds", name)
			if err != nil {
				t.Fatalf("kill %d/%d: read %s: %v", n, total, name, err)
			}
			if !bytes.Equal(got, goldenBytes[name]) {
				t.Fatalf("kill %d/%d: %s differs from clean ingest", n, total, name)
			}
		}
		idx, err := a.containers.Index("/ds")
		if err != nil {
			t.Fatalf("kill %d/%d: index: %v", n, total, err)
		}
		for _, d := range idx {
			if d.Name == droppingJournal || strings.HasPrefix(d.Name, stagingPrefix) {
				t.Fatalf("kill %d/%d: leftover %s survived recovery", n, total, d.Name)
			}
		}
		if got := readSubsetFrames(t, a, "/ds", TagProtein); !sameFrames(got, goldenFrames) {
			t.Fatalf("kill %d/%d: recovered protein subset reads differ", n, total)
		}
	}
	// The sweep must exercise both recovery outcomes: early kills roll
	// back, kills inside the commit window replay to completion.
	if rolledBack == 0 || committed == 0 {
		t.Fatalf("sweep over %d kill points: %d rollbacks, %d commits — both must occur",
			total, rolledBack, committed)
	}
	t.Logf("crash matrix: %d kill points, %d rolled back, %d committed", total, rolledBack, committed)
}

// TestRecoverActions checks each recovery classification directly.
func TestRecoverActions(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	a, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}

	// A committed dataset is untouched.
	acts, err := a.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if acts["/ds"] != RecoveryClean {
		t.Errorf("clean dataset recovered as %q", acts["/ds"])
	}

	// A leftover journal beside a committed manifest is swept.
	if err := a.writeDropping("/ds", droppingJournal, a.containers.Backends()[0], []byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	act, err := a.RecoverDataset("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if act != RecoverySwept {
		t.Errorf("leftover journal recovered as %q, want swept", act)
	}
	if _, err := a.containers.StatDropping("/ds", droppingJournal); err == nil {
		t.Error("journal survived the sweep")
	}

	// A journaled commit record is replayed: the staged dropping renamed,
	// the manifest republished, the journal retired.
	m, err := a.Manifest("/ds")
	if err != nil {
		t.Fatal(err)
	}
	j, err := a.openJournal("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(&journalRecord{Type: journalBegin, Logical: "/ds", NAtoms: m.NAtoms}); err != nil {
		t.Fatal(err)
	}
	rec := &journalRecord{Type: journalCommit, Staged: []string{subsetPrefix + TagMisc}, Manifest: m}
	if err := j.append(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	if err := a.containers.RenameDropping("/ds", subsetPrefix+TagMisc, stagingPrefix+subsetPrefix+TagMisc); err != nil {
		t.Fatal(err)
	}
	if err := a.containers.RemoveDropping("/ds", droppingManifest); err != nil {
		t.Fatal(err)
	}
	act, err = a.RecoverDataset("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if act != RecoveryCommitted {
		t.Errorf("interrupted commit recovered as %q, want committed", act)
	}
	if _, err := a.Manifest("/ds"); err != nil {
		t.Errorf("manifest not republished: %v", err)
	}
	if _, err := a.containers.StatDropping("/ds", subsetPrefix+TagMisc); err != nil {
		t.Errorf("staged dropping not renamed: %v", err)
	}
	if _, err := a.containers.StatDropping("/ds", droppingJournal); err == nil {
		t.Error("journal survived the replay")
	}
	if got := readSubsetFrames(t, a, "/ds", TagMisc); len(got) != 3 {
		t.Errorf("replayed subset serves %d frames, want 3", len(got))
	}

	// A begin-only journal (the ingest died before commit) rolls back.
	if err := a.containers.CreateContainer("/torn"); err != nil {
		t.Fatal(err)
	}
	j2, err := a.openJournal("/torn")
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.append(&journalRecord{Type: journalBegin, Logical: "/torn"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.close(); err != nil {
		t.Fatal(err)
	}
	acts, err = a.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if acts["/torn"] != RecoveryRolledBack || acts["/ds"] != RecoveryClean {
		t.Errorf("recover actions = %v", acts)
	}
	names, err := a.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "/ds" {
		t.Errorf("datasets after rollback = %v", names)
	}
}

// TestResumeIngestFromCheckpoint crashes an ingest after its first journal
// checkpoint, then resumes it against the same inputs and requires the
// result to be byte-identical to an uninterrupted ingest.
func TestResumeIngestFromCheckpoint(t *testing.T) {
	frames := journalCkptEvery + 8
	pdbBytes, traj, _ := testDataset(t, 200, frames)
	golden, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := golden.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}

	// Find the first kill point whose crash state is a journal ending in a
	// checkpoint: the frame loop past frame journalCkptEvery.
	total := countOps(t, pdbBytes, traj)
	var a *ADA
	var ckFrames int
	for n := int64(1); n <= total; n++ {
		in := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindKill, Nth: int(n)})
		ssd, hdd := crashIngest(t, in, pdbBytes, traj)
		cand := rebootADA(t, ssd, hdd)
		recs, err := cand.readJournal("/ds")
		if err != nil || len(recs) == 0 {
			continue
		}
		if last := recs[len(recs)-1]; last.Type == journalCkpt && last.Frames > 0 {
			a, ckFrames = cand, last.Frames
			break
		}
	}
	if a == nil {
		t.Fatal("no kill point left a checkpointed journal")
	}
	if ckFrames != journalCkptEvery {
		t.Fatalf("crash state checkpoint at frame %d, want %d", ckFrames, journalCkptEvery)
	}

	// A mismatched structure file is rejected before anything is touched.
	wrongPDB, _, _ := testDataset(t, 400, 1)
	if _, err := a.ResumeIngest("/ds", wrongPDB, bytes.NewReader(traj)); err == nil {
		t.Fatal("resume with a mismatched structure file should fail")
	}

	rep, err := a.ResumeIngest("/ds", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != frames {
		t.Errorf("resumed report frames = %d, want %d", rep.Frames, frames)
	}
	for _, name := range durableDroppings {
		want, err := golden.readDropping("/ds", name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.readDropping("/ds", name)
		if err != nil {
			t.Fatalf("resumed dataset: read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("resumed %s differs from the uninterrupted ingest", name)
		}
	}
	res, err := a.Fsck("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("resumed dataset fails fsck: %+v", res.Verdicts)
	}
}

// TestResumeIngestFromZero resumes an ingest that died before its first
// checkpoint: everything restarts from frame zero under the same journal
// identity and still commits byte-identically.
func TestResumeIngestFromZero(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 5) // < journalCkptEvery: no checkpoint ever lands
	golden, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := golden.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}

	// A committed dataset has no journal, so there is nothing to resume.
	if _, err := golden.ResumeIngest("/ds", pdbBytes, bytes.NewReader(traj)); err == nil {
		t.Fatal("resume of a committed dataset should fail")
	}

	total := countOps(t, pdbBytes, traj)
	var a *ADA
	for n := int64(1); n <= total; n++ {
		in := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindKill, Nth: int(n)})
		ssd, hdd := crashIngest(t, in, pdbBytes, traj)
		cand := rebootADA(t, ssd, hdd)
		recs, err := cand.readJournal("/ds")
		if err != nil || len(recs) == 0 {
			continue
		}
		if recs[len(recs)-1].Type == journalBegin {
			a = cand
			break
		}
	}
	if a == nil {
		t.Fatal("no kill point left a begin-only journal")
	}

	rep, err := a.ResumeIngest("/ds", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 5 {
		t.Errorf("resumed report frames = %d, want 5", rep.Frames)
	}
	for _, name := range durableDroppings {
		want, _ := golden.readDropping("/ds", name)
		got, err := a.readDropping("/ds", name)
		if err != nil {
			t.Fatalf("resumed dataset: read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("resumed %s differs from the uninterrupted ingest", name)
		}
	}
}

// TestReplicaFailover ingests with replication, corrupts the primary active
// subset, and requires reads to be served byte-identically from the replica
// with the failover counters incremented; with every copy corrupted the
// read must surface vfs.ErrCorrupted.
func TestReplicaFailover(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 5)
	reg := metrics.NewRegistry()
	a, ssd, hdd := newADA(t, nil, Options{ReplicateActive: true, Metrics: reg})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}

	m, err := a.Manifest("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if m.Subsets[TagProtein].Replica != "hdd" {
		t.Fatalf("protein subset replica = %q, want hdd", m.Subsets[TagProtein].Replica)
	}
	if m.Subsets[TagMisc].Replica != "" {
		t.Fatalf("misc subset already lives on the bulk backend; replica = %q", m.Subsets[TagMisc].Replica)
	}
	prim, err := vfs.ReadFile(ssd, "/mnt1/ds/subset.p")
	if err != nil {
		t.Fatal(err)
	}
	repl, err := vfs.ReadFile(hdd, "/mnt2/ds/replica.subset.p")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prim, repl) {
		t.Fatal("replica is not byte-identical to the primary")
	}

	golden := readSubsetFrames(t, a, "/ds", TagProtein)
	if len(golden) != 5 {
		t.Fatalf("clean read returns %d frames", len(golden))
	}
	if snap := reg.Snapshot(); snap.Counters["core.verify.frames"] < 5 {
		t.Errorf("verify.frames = %d after a clean verified read", snap.Counters["core.verify.frames"])
	}

	// Flip one byte in the middle of the primary: a silent bit rot.
	bad := append([]byte(nil), prim...)
	bad[len(bad)/2] ^= 0xff
	if err := vfs.WriteFile(ssd, "/mnt1/ds/subset.p", bad); err != nil {
		t.Fatal(err)
	}
	got := readSubsetFrames(t, a, "/ds", TagProtein)
	if !sameFrames(got, golden) {
		t.Fatal("failover read differs from the clean read")
	}
	snap := reg.Snapshot()
	if snap.Counters["core.verify.corrupted"] == 0 {
		t.Error("corruption not counted under core.verify.corrupted")
	}
	if snap.Counters["core.failover.opens"] == 0 || snap.Counters["core.failover.reads"] == 0 {
		t.Errorf("failover counters = opens %d, reads %d; want both > 0",
			snap.Counters["core.failover.opens"], snap.Counters["core.failover.reads"])
	}

	// Random access fails over the same way.
	rr, err := a.OpenSubsetAt("/ds", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rr.Frames(); i++ {
		f, err := rr.ReadFrameAt(i)
		if err != nil {
			t.Fatalf("random frame %d: %v", i, err)
		}
		if f.Step != golden[i].Step {
			t.Fatalf("random frame %d step = %d, want %d", i, f.Step, golden[i].Step)
		}
	}
	rr.Close()

	// Corrupt the replica identically: now no copy verifies and the read
	// must surface a typed corruption error.
	badRepl := append([]byte(nil), repl...)
	badRepl[len(badRepl)/2] ^= 0xff
	if err := vfs.WriteFile(hdd, "/mnt2/ds/replica.subset.p", badRepl); err != nil {
		t.Fatal(err)
	}
	sr, err := a.OpenSubset("/ds", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	var readErr error
	for {
		if _, readErr = sr.ReadFrame(); readErr != nil {
			break
		}
	}
	if readErr == io.EOF || !errors.Is(readErr, vfs.ErrCorrupted) {
		t.Fatalf("read with every copy corrupted = %v, want vfs.ErrCorrupted", readErr)
	}
	if reg.Snapshot().Counters["core.failover.failures"] == 0 {
		t.Error("exhausted failover not counted under core.failover.failures")
	}
}

// TestFailoverPrimaryMissing serves a subset whose primary payload (and
// index) are gone entirely — a downed or wiped fast tier.
func TestFailoverPrimaryMissing(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 4)
	reg := metrics.NewRegistry()
	a, ssd, _ := newADA(t, nil, Options{ReplicateActive: true, Metrics: reg})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	golden := readSubsetFrames(t, a, "/ds", TagProtein)

	if err := ssd.Remove("/mnt1/ds/subset.p"); err != nil {
		t.Fatal(err)
	}
	if err := ssd.Remove("/mnt1/ds/index.p"); err != nil {
		t.Fatal(err)
	}
	got := readSubsetFrames(t, a, "/ds", TagProtein)
	if !sameFrames(got, golden) {
		t.Fatal("reads with the primary gone differ from the clean read")
	}
	if reg.Snapshot().Counters["core.failover.opens"] == 0 {
		t.Error("replica opens not counted under core.failover.opens")
	}
}

// TestFsckVerdicts drives every verdict class through one dataset.
func TestFsckVerdicts(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	a, _, hdd := newADA(t, nil, Options{ReplicateActive: true, Metrics: metrics.NewRegistry()})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}

	res, err := a.Fsck("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Corrupt != 0 || res.Missing != 0 {
		t.Fatalf("clean dataset fsck = %+v", res)
	}

	// Corrupt the bulk subset payload.
	data, err := vfs.ReadFile(hdd, "/mnt2/ds/subset.m")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := vfs.WriteFile(hdd, "/mnt2/ds/subset.m", data); err != nil {
		t.Fatal(err)
	}
	// And remove a checksummed metadata dropping from under the manifest.
	if err := a.containers.RemoveDropping("/ds", droppingLabels); err != nil {
		t.Fatal(err)
	}
	res, err = a.Fsck("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Corrupt != 1 || res.Missing != 1 {
		t.Fatalf("damaged dataset fsck = corrupt %d, missing %d", res.Corrupt, res.Missing)
	}
	var sawFrameDetail bool
	for _, v := range res.Verdicts {
		if v.Name == subsetPrefix+TagMisc && v.Status == VerdictCorrupt &&
			bytes.Contains([]byte(v.Detail), []byte("frame")) {
			sawFrameDetail = true
		}
	}
	if !sawFrameDetail {
		t.Errorf("corrupt subset verdict does not localize the bad frame: %+v", res.Verdicts)
	}

	// A torn container (journal, staging droppings, no manifest) is all
	// uncommitted.
	if err := a.containers.CreateContainer("/torn"); err != nil {
		t.Fatal(err)
	}
	if err := a.writeDropping("/torn", droppingJournal, "ssd", []byte(`{"type":"begin"}`+"\n")); err != nil {
		t.Fatal(err)
	}
	if err := a.writeDropping("/torn", stagingPrefix+subsetPrefix+TagProtein, "ssd", []byte("half")); err != nil {
		t.Fatal(err)
	}
	res, err = a.Fsck("/torn")
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Error("torn container reported as committed")
	}
	for _, v := range res.Verdicts {
		if v.Status != VerdictUncommitted {
			t.Errorf("torn container verdict %s = %q, want uncommitted", v.Name, v.Status)
		}
	}
}

// TestScrubber sweeps all datasets, reporting and counting the damage.
func TestScrubber(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	reg := metrics.NewRegistry()
	a, ssd, _ := newADA(t, nil, Options{Metrics: reg})
	if _, err := a.Ingest("/clean", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ingest("/rotten", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(ssd, "/mnt1/rotten/subset.p")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x80
	if err := vfs.WriteFile(ssd, "/mnt1/rotten/subset.p", data); err != nil {
		t.Fatal(err)
	}

	rep, err := a.NewScrubber(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Datasets != 2 || rep.Bytes == 0 {
		t.Errorf("scrub report = %+v", rep)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0].Name != subsetPrefix+TagProtein {
		t.Errorf("scrub corrupt list = %+v", rep.Corrupt)
	}
	snap := reg.Snapshot()
	if snap.Counters["core.scrub.passes"] != 1 || snap.Counters["core.scrub.corrupted"] != 1 {
		t.Errorf("scrub counters: passes %d, corrupted %d",
			snap.Counters["core.scrub.passes"], snap.Counters["core.scrub.corrupted"])
	}

	// A heavily throttled background scrub must still stop promptly: Stop
	// cancels the mid-pass rate-limit sleep.
	s := a.NewScrubber(1) // 1 B/s: a full pass would nominally take hours
	s.Start(time.Hour)
	done := make(chan struct{})
	go func() {
		s.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not cancel a throttled scrub pass")
	}
}

// TestChecksumsRecorded pins down what an ingest with checksums persists.
func TestChecksumsRecorded(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	a, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	m, err := a.Manifest("/ds")
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range m.Tags() {
		if m.Subsets[tag].CRC32C == 0 {
			t.Errorf("subset %s has no stream checksum", tag)
		}
	}
	for _, name := range []string{"index.p", "index.m", "structure.pdb", "labels.json"} {
		want, ok := m.Checksums[name]
		if !ok {
			t.Errorf("manifest integrity map lacks %s", name)
			continue
		}
		data, err := a.readDropping("/ds", name)
		if err != nil {
			t.Fatal(err)
		}
		if got := xtc.CRC32C(data); got != want {
			t.Errorf("%s stored CRC %08x, manifest says %08x", name, got, want)
		}
	}
	idxBytes, err := a.readDropping("/ds", indexPrefix+TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := xtc.UnmarshalIndex(idxBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.HasChecksums() {
		t.Error("persisted index carries no per-frame checksums")
	}
}

// TestDisableChecksums covers the benchmark escape hatch: no checksums
// anywhere, reads fall back to the unverified path, fsck reports the
// subsets as unverified rather than corrupt.
func TestDisableChecksums(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	a, _, _ := newADA(t, nil, Options{DisableChecksums: true, Metrics: metrics.NewRegistry()})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	m, err := a.Manifest("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Checksums) != 0 {
		t.Errorf("checksums recorded despite DisableChecksums: %v", m.Checksums)
	}
	if m.Subsets[TagProtein].CRC32C != 0 {
		t.Error("subset stream checksum recorded despite DisableChecksums")
	}
	if got := readSubsetFrames(t, a, "/ds", TagProtein); len(got) != 3 {
		t.Errorf("unverified read returns %d frames, want 3", len(got))
	}
	res, err := a.Fsck("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("checksum-free dataset fails fsck: %+v", res.Verdicts)
	}
	var unverified int
	for _, v := range res.Verdicts {
		if v.Status == VerdictUnverified {
			unverified++
		}
	}
	if unverified == 0 {
		t.Error("fsck reports nothing unverified on a checksum-free dataset")
	}
}
