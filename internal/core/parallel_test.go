package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"
	"testing"

	"repro/internal/blockfs"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/plfs"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// assertParallelMatchesSerial ingests the same dataset serially and with
// IngestParallel at the given fan-out batch size and queue depth, and
// requires byte-identical stored output.
func assertParallelMatchesSerial(t *testing.T, frames, batch, queue int) {
	t.Helper()
	pdbBytes, traj, _ := testDataset(t, 100, frames)

	serial, serialSSD, serialHDD := newADA(t, nil, Options{Granularity: Fine})
	srep, err := serial.Ingest("/ds", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	par, parSSD, parHDD := newADA(t, nil, Options{Granularity: Fine, WriteBatchFrames: batch})
	prep, err := par.IngestParallel("/ds", pdbBytes, bytes.NewReader(traj), queue)
	if err != nil {
		t.Fatal(err)
	}

	if prep.Frames != srep.Frames || prep.Compressed != srep.Compressed ||
		prep.Raw != srep.Raw {
		t.Errorf("reports differ: serial %+v parallel %+v", srep, prep)
	}
	if len(prep.Subsets) != len(srep.Subsets) {
		t.Fatalf("subset sets differ: %v vs %v", prep.Subsets, srep.Subsets)
	}
	for tag, n := range srep.Subsets {
		if prep.Subsets[tag] != n {
			t.Errorf("subset %s: %d vs %d bytes", tag, prep.Subsets[tag], n)
		}
	}
	// Byte-identical droppings on both backends.
	for _, pair := range []struct{ a, b *vfs.MemFS }{{serialSSD, parSSD}, {serialHDD, parHDD}} {
		err := vfs.Walk(pair.a, "/", func(path string, info vfs.FileInfo) error {
			want, err := vfs.ReadFile(pair.a, path)
			if err != nil {
				return err
			}
			got, err := vfs.ReadFile(pair.b, path)
			if err != nil {
				t.Errorf("%s missing in parallel output: %v", path, err)
				return nil
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s differs between serial and parallel ingest", path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestIngestParallelMatchesSerial(t *testing.T) {
	assertParallelMatchesSerial(t, 6, 0, 2)
}

// TestIngestParallelBatchQueueSweep covers the fan-out batching edge cases:
// batch 1 (every frame its own send), batch sizes that do and do not divide
// the frame count (partial final batch), a batch larger than the whole
// trajectory, and both shallow and deep queues.
func TestIngestParallelBatchQueueSweep(t *testing.T) {
	for _, batch := range []int{1, 2, 3, 16} {
		for _, queue := range []int{1, 4} {
			t.Run(fmt.Sprintf("batch=%d/queue=%d", batch, queue), func(t *testing.T) {
				assertParallelMatchesSerial(t, 7, batch, queue)
			})
		}
	}
}

func TestIngestParallelPipelinedTimeIsMaxOfStages(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 100, 6)

	envS := sim.NewEnv()
	serial, _, _ := newADA(t, envS, Options{})
	if _, err := serial.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	envP := sim.NewEnv()
	par, _, _ := newADA(t, envP, Options{})
	if _, err := par.IngestParallel("/ds", pdbBytes, bytes.NewReader(traj), 2); err != nil {
		t.Fatal(err)
	}

	// Same total CPU work appears in both profiles (within float
	// reassociation: the parallel path sums per-worker partials) ...
	sd := envS.Profile.Get("storage.cpu.decompress")
	pd := envP.Profile.Get("storage.cpu.decompress")
	if diff := math.Abs(sd - pd); diff > 1e-9*math.Max(sd, 1) {
		t.Errorf("decompress charge: serial %v vs parallel %v", sd, pd)
	}
	// ... but the parallel clock advanced by less than the serial one:
	// the stages overlap.
	if envP.Clock.Now() >= envS.Clock.Now() {
		t.Errorf("parallel ingest clock %.6f not faster than serial %.6f",
			envP.Clock.Now(), envS.Clock.Now())
	}
}

func TestIngestParallelWorkerReport(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 100, 7)
	env := sim.NewEnv()
	a, _, _ := newADA(t, env, Options{DecodeWorkers: 3})
	rep, err := a.IngestParallel("/ds", pdbBytes, bytes.NewReader(traj), 2)
	if err != nil {
		t.Fatal(err)
	}
	par := rep.Parallel
	if par == nil {
		t.Fatal("IngestParallel report has no Parallel section")
	}
	if par.DecodeWorkers != 3 {
		t.Errorf("DecodeWorkers = %d, want 3", par.DecodeWorkers)
	}
	if len(par.WorkerDecodeSec) != 3 || len(par.WorkerBusyNS) != 3 || len(par.WorkerUtilization) != 3 {
		t.Fatalf("per-worker slices sized %d/%d/%d, want 3",
			len(par.WorkerDecodeSec), len(par.WorkerBusyNS), len(par.WorkerUtilization))
	}
	// The virtual decode charge is dealt round-robin: its sum must equal
	// the serial decompress total, and with 7 frames over 3 workers every
	// worker got at least two frames of work.
	var sum float64
	for w, sec := range par.WorkerDecodeSec {
		if sec <= 0 {
			t.Errorf("worker %d charged %v virtual seconds", w, sec)
		}
		sum += sec
	}
	if total := env.Profile.Get("storage.cpu.decompress"); math.Abs(sum-total) > 1e-12*math.Max(total, 1) {
		t.Errorf("per-worker virtual decode sums to %v, profile has %v", sum, total)
	}
	maxUtil := 0.0
	for w, u := range par.WorkerUtilization {
		if u < 0 || u > 1 {
			t.Errorf("worker %d utilization %v out of [0,1]", w, u)
		}
		if u > maxUtil {
			maxUtil = u
		}
	}
	if maxUtil != 1 {
		t.Errorf("busiest worker utilization = %v, want 1", maxUtil)
	}
	// Serial ingest reports no pool.
	b, _, _ := newADA(t, nil, Options{})
	srep, err := b.Ingest("/s", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	if srep.Parallel != nil {
		t.Errorf("serial ingest unexpectedly reported a decode pool: %+v", srep.Parallel)
	}
}

func TestIngestParallelErrors(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	a, _, _ := newADA(t, nil, Options{})
	// Truncated stream.
	if _, err := a.IngestParallel("/x", pdbBytes, bytes.NewReader(traj[:len(traj)-7]), 2); err == nil {
		t.Error("truncated trajectory should fail")
	}
	// Mismatched structure.
	otherPDB, _, _ := testDataset(t, 400, 1)
	b, _, _ := newADA(t, nil, Options{})
	if _, err := b.IngestParallel("/y", otherPDB, bytes.NewReader(traj), 2); err == nil {
		t.Error("atom mismatch should fail")
	}
	// Garbage structure file.
	c, _, _ := newADA(t, nil, Options{})
	if _, err := c.IngestParallel("/z", []byte("junk"), bytes.NewReader(traj), 2); err == nil {
		t.Error("bad pdb should fail")
	}
}

// TestIngestParallelWriterFailureMidBatch drives a writer into a device-full
// failure partway through a multi-frame batch, with enough frames still
// queued and in flight that a feeder not drained by the failing writer would
// deadlock. The pipeline must return the failure (not hang) and the error
// must name the frame the write failed on.
func TestIngestParallelWriterFailureMidBatch(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 50, 200)
	for _, cfg := range []struct{ batch, queue int }{{4, 1}, {1, 1}, {16, 2}} {
		t.Run(fmt.Sprintf("batch=%d/queue=%d", cfg.batch, cfg.queue), func(t *testing.T) {
			dev := device.Device{
				Name: "tiny", ReadBW: 100 * device.MB, WriteBW: 100 * device.MB,
				Capacity: 6 * blockfs.BlockSize,
			}
			containers, err := plfs.New(
				plfs.Backend{Name: "ssd", FS: blockfs.New("tiny-ssd", dev, nil), Mount: "/m1"},
				plfs.Backend{Name: "hdd", FS: vfs.NewMemFS(), Mount: "/m2"},
			)
			if err != nil {
				t.Fatal(err)
			}
			a := New(containers, nil, Options{WriteBatchFrames: cfg.batch})
			_, err = a.IngestParallel("/ds", pdbBytes, bytes.NewReader(traj), cfg.queue)
			if err == nil {
				t.Fatal("parallel ingest onto a full device should fail")
			}
			if !errors.Is(err, blockfs.ErrNoSpace) {
				t.Errorf("err = %v, want ErrNoSpace in the chain", err)
			}
			if !regexp.MustCompile(`frame \d+`).MatchString(err.Error()) {
				t.Errorf("err = %q, want the failing frame index in the message", err)
			}
		})
	}
}

// TestIngestParallelQueueHWMCountsFrames pins the unit of the fan-out
// queue high-water mark: queued *frames*, as the metric meant before
// batched fan-out, not channel occupancy in batches. With a batch of 8 the
// mark must be at least one full batch (8 frames) — occupancy-denominated
// reporting would cap it at queue+1 = 3 — and can never exceed a full
// channel plus the batch in flight.
func TestIngestParallelQueueHWMCountsFrames(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 100, 40)
	const batch, queue = 8, 2
	reg := metrics.NewRegistry()
	a, _, _ := newADA(t, nil, Options{Metrics: reg, WriteBatchFrames: batch})
	if _, err := a.IngestParallel("/ds", pdbBytes, bytes.NewReader(traj), queue); err != nil {
		t.Fatal(err)
	}
	hwm := reg.Snapshot().Gauges["ingest.queue_depth_hwm"]
	if hwm < batch {
		t.Errorf("queue_depth_hwm = %d, want ≥ %d (one full batch of frames)", hwm, batch)
	}
	if max := int64((queue + 1) * batch); hwm > max {
		t.Errorf("queue_depth_hwm = %d, want ≤ %d (full channel + in-flight batch)", hwm, max)
	}
}

// TestIngestParallelProgressNotBatchLagged covers the decode-error-mid-batch
// report: frames sequenced into a not-yet-flushed batch must already appear
// in the progress gauge and in the error's frame index. Before the fix both
// were only advanced at batch flushes, so an error landing mid-batch
// reported progress rounded down to the last batch boundary.
func TestIngestParallelProgressNotBatchLagged(t *testing.T) {
	const batch, frames = 16, 21
	pdbBytes, traj, _ := testDataset(t, 100, frames)
	reg := metrics.NewRegistry()
	a, _, _ := newADA(t, nil, Options{Metrics: reg, WriteBatchFrames: batch})
	// Truncating the stream corrupts the final frame: the decode error lands
	// at frame 20, five frames into the second (unflushed) batch.
	_, err := a.IngestParallel("/ds", pdbBytes, bytes.NewReader(traj[:len(traj)-7]), 2)
	if err == nil {
		t.Fatal("truncated trajectory should fail")
	}
	if want := fmt.Sprintf("frame %d", frames-1); !strings.Contains(err.Error(), want) {
		t.Errorf("err = %q, want the mid-batch failing frame (%s) named", err, want)
	}
	if got := reg.Snapshot().Gauges["ingest.progress_frames"]; got != frames-1 {
		t.Errorf("ingest.progress_frames = %d after error at frame %d, want %d (not the last batch boundary %d)",
			got, frames-1, frames-1, batch)
	}
	// A clean run leaves the gauge at the full frame count, matching the
	// report.
	b, _, _ := newADA(t, nil, Options{Metrics: reg, WriteBatchFrames: batch})
	rep, err := b.IngestParallel("/ds2", pdbBytes, bytes.NewReader(traj), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != frames || reg.Snapshot().Gauges["ingest.progress_frames"] != frames {
		t.Errorf("Frames = %d, progress gauge = %d, want %d",
			rep.Frames, reg.Snapshot().Gauges["ingest.progress_frames"], frames)
	}
}

// TestSubsetWriterFrameAllocs bounds the steady-state allocation cost of the
// per-subset write path: with the SubsetInto scratch and pooled encode
// buffers, splitting and appending one frame must not allocate per frame
// (modulo amortized growth of the output file).
func TestSubsetWriterFrameAllocs(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 2)
	a, _, _ := newADA(t, nil, Options{})
	st, err := a.prepareIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer st.abort()
	frame, err := xtc.NewReader(bytes.NewReader(traj)).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	sw := st.writers[0]
	for i := 0; i < 4; i++ {
		if err := sw.writeFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := sw.writeFrame(frame); err != nil {
			t.Fatal(err)
		}
	})
	// MemFS doubles its backing array as the dropping grows, so a fraction
	// of runs see one allocation; anything at or above one alloc per frame
	// means the scratch reuse regressed.
	if avg >= 1 {
		t.Errorf("subsetWriter.writeFrame steady state = %.2f allocs/frame, want < 1", avg)
	}
}

func TestIngestParallelSubsetReadable(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 100, 4)
	ssd := vfs.NewMemFS()
	hdd := vfs.NewMemFS()
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/m1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/m2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := New(containers, nil, Options{})
	if _, err := a.IngestParallel("/ds", pdbBytes, bytes.NewReader(traj), 3); err != nil {
		t.Fatal(err)
	}
	sr, err := a.OpenSubsetAt("/ds", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.Frames() != 4 {
		t.Errorf("frames = %d", sr.Frames())
	}
	f, err := sr.ReadFrameAt(3)
	if err != nil || f.NAtoms() != sr.Ranges.Count() {
		t.Errorf("frame = %v, %v", f, err)
	}
}
