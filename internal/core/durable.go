package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/vfs"
	"repro/internal/xtc"
)

// Crash-consistent ingest.
//
// An in-flight ingest never touches a final dropping name. Every payload is
// written under a "staging." name while an append-only journal dropping
// records what the ingest is doing:
//
//	begin  — identity of the ingest: tags, backends, atom ranges
//	ckpt   — durable high-water mark: frames, per-subset bytes + CRC32C
//	commit — the full manifest plus the list of staged droppings
//
// Commit then renames every staged dropping to its final name and publishes
// the manifest last; the manifest rename is the single atomic commit point
// readers gate on. A crash at any op therefore leaves the container in
// exactly one of three states: invisible to readers (no manifest), fully
// consistent (manifest present), or mid-commit with a replayable journal.
// Recover classifies each container and rolls it back, replays the commit,
// or sweeps leftovers; ResumeIngest instead continues an interrupted ingest
// from its last checkpoint.

// Journal record types.
const (
	journalBegin  = "begin"
	journalCkpt   = "ckpt"
	journalCommit = "commit"
)

// journalCkptEvery is the serial ingest checkpoint interval in frames.
const journalCkptEvery = 32

// journalRecord is one line of the ingest journal.
type journalRecord struct {
	Type string `json:"type"`
	// begin fields. Live marks a streaming ingest (OpenLiveIngest): the
	// dataset is expected to be mid-append indefinitely, so Recover
	// preserves the checkpointed prefix instead of rolling it back.
	Logical     string       `json:"logical,omitempty"`
	Granularity string       `json:"granularity,omitempty"`
	NAtoms      int          `json:"natoms,omitempty"`
	Tags        []journalTag `json:"tags,omitempty"`
	Live        bool         `json:"live,omitempty"`
	// ckpt fields.
	Frames     int                      `json:"frames,omitempty"`
	Compressed int64                    `json:"compressed,omitempty"`
	Raw        int64                    `json:"raw,omitempty"`
	Subsets    map[string]journalSubset `json:"subsets,omitempty"`
	// commit fields.
	Staged   []string  `json:"staged,omitempty"`
	Manifest *Manifest `json:"manifest,omitempty"`
}

// journalTag names one subset the ingest is producing.
type journalTag struct {
	Tag     string `json:"tag"`
	Backend string `json:"backend"`
	NAtoms  int    `json:"natoms"`
	Ranges  string `json:"ranges"`
}

// journalSubset is one subset's durable high-water mark at a checkpoint.
type journalSubset struct {
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc"`
}

// journalWriter appends records to the open journal dropping.
type journalWriter struct {
	f vfs.File
}

func (a *ADA) openJournal(logical string) (*journalWriter, error) {
	// The journal lives on the canonical (first) backend, beside the
	// container index.
	f, err := a.containers.CreateDropping(logical, droppingJournal, a.containers.Backends()[0])
	if err != nil {
		return nil, err
	}
	return &journalWriter{f: f}, nil
}

func (j *journalWriter) append(rec *journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("core: journal: %w", err)
	}
	return nil
}

func (j *journalWriter) close() error { return j.f.Close() }

// readJournal parses a container's journal. A torn final line (the crash
// landed mid-append) is silently dropped — everything before it is intact
// by construction.
func (a *ADA) readJournal(logical string) ([]journalRecord, error) {
	data, err := a.readDropping(logical, droppingJournal)
	if err != nil {
		return nil, err
	}
	var recs []journalRecord
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// RecoveryAction reports what Recover did to one container.
type RecoveryAction string

const (
	// RecoveryClean: the dataset was committed; nothing to do.
	RecoveryClean RecoveryAction = "clean"
	// RecoverySwept: committed, but a leftover journal or staging
	// dropping from the post-commit window was removed.
	RecoverySwept RecoveryAction = "swept"
	// RecoveryCommitted: the crash landed after the journal's commit
	// record; the interrupted commit was replayed to completion.
	RecoveryCommitted RecoveryAction = "committed"
	// RecoveryRolledBack: the ingest never reached commit; the container
	// was removed.
	RecoveryRolledBack RecoveryAction = "rolledback"
	// RecoveryLive: a streaming ingest was killed mid-append; the staged
	// subsets were truncated back to the last journaled checkpoint and the
	// live head republished. The dataset remains live — ResumeLiveIngest
	// continues it, Seal finishes it.
	RecoveryLive RecoveryAction = "live"
)

// Recover classifies every container and repairs each interrupted ingest:
// committed datasets are left alone (stray staging state swept), ingests
// that journaled a commit record are replayed to completion, and everything
// else is rolled back. Call it once at startup before serving reads.
func (a *ADA) Recover() (map[string]RecoveryAction, error) {
	names, err := a.containers.ListContainers()
	if err != nil {
		return nil, err
	}
	out := make(map[string]RecoveryAction, len(names))
	for _, logical := range names {
		act, err := a.RecoverDataset(logical)
		if err != nil {
			return out, fmt.Errorf("core: recover %s: %w", logical, err)
		}
		out[logical] = act
	}
	return out, nil
}

// RecoverDataset runs crash recovery for one container.
func (a *ADA) RecoverDataset(logical string) (RecoveryAction, error) {
	if data, err := a.readDropping(logical, droppingManifest); err == nil {
		if _, err := unmarshalManifest(data); err == nil {
			return a.sweepCommitted(logical)
		}
	}
	recs, err := a.readJournal(logical)
	if err != nil || len(recs) == 0 {
		// No manifest and no usable journal: the crash landed before the
		// begin record became durable. Nothing is recoverable.
		return a.rollback(logical)
	}
	last := recs[len(recs)-1]
	if last.Type == journalCommit && last.Manifest != nil {
		return a.replayCommit(logical, &last)
	}
	if recs[0].Type == journalBegin && recs[0].Live {
		return a.recoverLive(logical, recs)
	}
	return a.rollback(logical)
}

func (a *ADA) rollback(logical string) (RecoveryAction, error) {
	if err := a.containers.RemoveContainer(logical); err != nil {
		return "", err
	}
	return RecoveryRolledBack, nil
}

// sweepCommitted removes post-commit leftovers from a dataset whose
// manifest already landed: the journal and stray staging droppings (an
// ingest's post-commit window, or a migration's staged copy), then the
// orphan files and dangling index entries a torn cross-backend
// ReplaceDropping leaves, and finally folds any migration that published
// but never rewrote the manifest back into the manifest's placement
// fields.
func (a *ADA) sweepCommitted(logical string) (RecoveryAction, error) {
	idx, err := a.containers.Index(logical)
	if err != nil {
		return "", err
	}
	swept := false
	for _, d := range idx {
		if d.Name == droppingJournal || strings.HasPrefix(d.Name, stagingPrefix) ||
			d.Name == liveHeadName || strings.HasPrefix(d.Name, liveIndexPrefix) {
			if err := a.containers.RemoveDropping(logical, d.Name); err != nil {
				return "", err
			}
			swept = true
		}
	}
	orphans, err := a.containers.SweepOrphans(logical)
	if err != nil {
		return "", err
	}
	if len(orphans) > 0 {
		swept = true
	}
	reconciled, err := a.reconcilePlacement(logical)
	if err != nil {
		return "", err
	}
	if reconciled {
		swept = true
	}
	if swept {
		return RecoverySwept, nil
	}
	return RecoveryClean, nil
}

// replayCommit finishes an interrupted commit idempotently: every staged
// dropping that has not yet reached its final name is renamed, the manifest
// is republished from the journal's commit record, and the journal retired.
func (a *ADA) replayCommit(logical string, rec *journalRecord) (RecoveryAction, error) {
	for _, name := range rec.Staged {
		if _, err := a.containers.StatDropping(logical, name); err == nil {
			continue // this rename already happened before the crash
		}
		if _, err := a.containers.StatDropping(logical, stagingPrefix+name); err != nil {
			// Neither staged nor final exists: the commit record promised
			// a dropping that is gone. Nothing trustworthy to publish.
			return a.rollback(logical)
		}
		if err := a.containers.RenameDropping(logical, stagingPrefix+name, name); err != nil {
			return "", err
		}
	}
	manifestBytes, err := rec.Manifest.marshal()
	if err != nil {
		return "", err
	}
	if err := a.writeDropping(logical, stagingPrefix+droppingManifest,
		a.backendFor(TagProtein), manifestBytes); err != nil {
		return "", err
	}
	if err := a.containers.RenameDropping(logical, stagingPrefix+droppingManifest, droppingManifest); err != nil {
		return "", err
	}
	if err := a.containers.RemoveDropping(logical, droppingJournal); err != nil {
		return "", err
	}
	// A sealed live dataset's head droppings die with the commit.
	if err := a.sweepLive(logical); err != nil {
		return "", err
	}
	return RecoveryCommitted, nil
}

// ResumeIngest continues an interrupted ingest from its last journaled
// checkpoint instead of rolling it back: the staged subsets are truncated
// to the checkpoint (dropping any unjournaled tail), their index builders
// and running checksums are reconstructed from the surviving bytes, the
// already-persisted frames are skipped on the source stream, and the
// ingest then runs to a normal atomic commit. pdbData and traj must be the
// same inputs the interrupted ingest was given.
func (a *ADA) ResumeIngest(logical string, pdbData []byte, traj io.Reader) (*IngestReport, error) {
	var start float64
	if a.env != nil {
		start = a.env.Clock.Now()
	}
	st, _, ck, err := a.resumeStagedState(logical, pdbData, false)
	if err != nil {
		return nil, err
	}

	// Skip the frames the checkpoint already persisted, then ingest the
	// rest exactly like the serial path.
	in := &countingReader{r: traj}
	reader := xtc.NewReader(in)
	for i := 0; i < ck.Frames; i++ {
		if _, err := reader.ReadFrame(); err != nil {
			st.closeAll()
			return nil, fmt.Errorf("core: resume %s: source ended at frame %d, checkpoint has %d: %w",
				logical, i, ck.Frames, err)
		}
	}
	for {
		before := in.n
		frame, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			st.closeAll()
			return nil, fmt.Errorf("core: resume %s frame %d: %w", logical, st.report.Frames, err)
		}
		consumed := in.n - before
		a.chargeCPU("decompress", a.opts.Cost.decompressTime(consumed))
		a.chargeCPU("categorize", a.opts.Cost.categorizeTime(xtc.RawFrameSize(frame.NAtoms())))
		if err := st.writeFrame(frame, consumed); err != nil {
			st.closeAll()
			return nil, err
		}
	}
	st.closeAll()
	return st.finish(start)
}

// resumeStagedState rebuilds an interrupted ingest's in-memory state from
// its journal: the staged subsets truncated to the last checkpoint (prefix
// CRCs verified), the subset writers and index builders reconstructed over
// the surviving bytes, the report counters restored, and the journal
// rewritten compactly (begin plus one checkpoint). Shared by ResumeIngest
// (live=false) and ResumeLiveIngest (live=true); the begin record's Live
// flag must match, since the two sessions have different commit rules.
func (a *ADA) resumeStagedState(logical string, pdbData []byte, live bool) (*ingestState, journalRecord, journalRecord, error) {
	var zero journalRecord
	fail := func(err error) (*ingestState, journalRecord, journalRecord, error) {
		return nil, zero, zero, err
	}
	recs, err := a.readJournal(logical)
	if err != nil {
		return fail(fmt.Errorf("core: resume %s: no journal (nothing to resume): %w", logical, err))
	}
	if len(recs) == 0 || recs[0].Type != journalBegin {
		return fail(fmt.Errorf("core: resume %s: journal has no begin record; run Recover", logical))
	}
	begin := recs[0]
	if begin.Live != live {
		if live {
			return fail(fmt.Errorf("core: resume %s: not a live ingest; use ResumeIngest", logical))
		}
		return fail(fmt.Errorf("core: resume %s: live ingest; use ResumeLiveIngest", logical))
	}
	ck := journalRecord{Type: journalCkpt} // zero checkpoint: restart from frame 0
	for _, rec := range recs[1:] {
		switch rec.Type {
		case journalCkpt:
			ck = rec
		case journalCommit:
			return fail(fmt.Errorf("core: resume %s: ingest already committed; run Recover", logical))
		}
	}

	st, err := a.analyzeIngest(logical, pdbData)
	if err != nil {
		return fail(err)
	}
	if st.structure.NAtoms() != begin.NAtoms {
		return fail(fmt.Errorf("core: resume %s: structure has %d atoms, journal began with %d",
			logical, st.structure.NAtoms(), begin.NAtoms))
	}
	tags := sortedTags(st.tagRanges)
	if len(tags) != len(begin.Tags) {
		return fail(fmt.Errorf("core: resume %s: categorization yields %d tags, journal began with %d",
			logical, len(tags), len(begin.Tags)))
	}
	for i, tag := range tags {
		if begin.Tags[i].Tag != tag || begin.Tags[i].Ranges != st.tagRanges[tag].String() {
			return fail(fmt.Errorf("core: resume %s: tag %q does not match the journaled ingest", logical, tag))
		}
	}

	// Rebuild each subset writer over the checkpointed prefix of its
	// staged dropping.
	for _, tag := range tags {
		mark := ck.Subsets[tag] // zero value when no checkpoint was reached
		prefix, err := a.readDropping(logical, stagingPrefix+subsetPrefix+tag)
		if err != nil {
			if mark.Bytes == 0 && errors.Is(err, vfs.ErrNotExist) {
				prefix = nil // the crash predates this dropping; recreate it empty
			} else {
				st.closeAll()
				return fail(fmt.Errorf("core: resume %s subset %s: %w", logical, tag, err))
			}
		}
		if int64(len(prefix)) < mark.Bytes {
			st.closeAll()
			return fail(fmt.Errorf("core: resume %s subset %s: staged dropping is %d bytes, checkpoint says %d",
				logical, tag, len(prefix), mark.Bytes))
		}
		prefix = prefix[:mark.Bytes]
		var prefixCRC uint32
		if !a.opts.DisableChecksums {
			prefixCRC = xtc.CRC32C(prefix)
			if mark.CRC != 0 && prefixCRC != mark.CRC {
				st.closeAll()
				return fail(fmt.Errorf("core: resume %s subset %s: checkpointed prefix fails its checksum: %w",
					logical, tag, vfs.ErrCorrupted))
			}
		}
		var idx *xtc.Index
		if len(prefix) > 0 {
			idx, err = xtc.BuildIndexChecksummed(bytes.NewReader(prefix), int64(len(prefix)))
			if err != nil {
				st.closeAll()
				return fail(fmt.Errorf("core: resume %s subset %s: %w", logical, tag, err))
			}
			if idx.Frames() != ck.Frames {
				st.closeAll()
				return fail(fmt.Errorf("core: resume %s subset %s: prefix holds %d frames, checkpoint says %d",
					logical, tag, idx.Frames(), ck.Frames))
			}
		}
		be := a.backendFor(tag)
		f, err := a.containers.CreateDropping(logical, stagingPrefix+subsetPrefix+tag, be)
		if err != nil {
			st.closeAll()
			return fail(fmt.Errorf("core: resume %s: %w", logical, err))
		}
		if len(prefix) > 0 {
			if _, err := f.Write(prefix); err != nil {
				f.Close()
				st.closeAll()
				return fail(fmt.Errorf("core: resume %s subset %s: %w", logical, tag, err))
			}
		}
		tee := &crcTee{f: f, enabled: !a.opts.DisableChecksums, total: prefixCRC}
		sw := &subsetWriter{
			tag:     tag,
			backend: be,
			file:    f,
			tee:     tee,
			w:       xtc.NewRawWriter(tee),
			indices: st.tagRanges[tag].Indices(),
			natoms:  st.tagRanges[tag].Count(),
			base:    mark.Bytes,
		}
		if idx != nil {
			for i := 0; i < idx.Frames(); i++ {
				if tee.enabled {
					sw.ib.AddWithCRC(idx.Size(i), idx.NAtoms(i), idx.CRC(i))
				} else {
					sw.ib.Add(idx.Size(i), idx.NAtoms(i))
				}
			}
		}
		st.writers = append(st.writers, sw)
		st.staged = append(st.staged, subsetPrefix+tag)
	}
	st.report.Frames = ck.Frames
	st.report.Compressed = ck.Compressed
	st.report.Raw = ck.Raw

	// Rewrite the journal compactly: the original begin record plus one
	// checkpoint at the resume point.
	j, err := a.openJournal(logical)
	if err != nil {
		st.closeAll()
		return fail(fmt.Errorf("core: resume %s: %w", logical, err))
	}
	st.journal = j
	if err := j.append(&begin); err != nil {
		st.abort()
		return fail(fmt.Errorf("core: resume %s: %w", logical, err))
	}
	if ck.Frames > 0 {
		if err := st.checkpoint(); err != nil {
			st.abort()
			return fail(fmt.Errorf("core: resume %s: %w", logical, err))
		}
	}
	return st, begin, ck, nil
}
