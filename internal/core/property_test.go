package core

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// randomDataset builds a structure with random category block layout and a
// matching short trajectory with clustered coordinates.
func randomDataset(rng *rand.Rand) (*pdb.Structure, []*xtc.Frame, []byte, []byte, error) {
	s := &pdb.Structure{}
	resFor := map[pdb.Category]string{
		pdb.Protein: "ALA", pdb.Water: "SOL", pdb.Lipid: "POPC",
		pdb.Ion: "SOD", pdb.Ligand: "LIG",
	}
	for b := 0; b < rng.Intn(8)+2; b++ {
		cat := pdb.Category(rng.Intn(5))
		res := resFor[cat]
		het := cat == pdb.Ion || cat == pdb.Ligand
		for j := 0; j < rng.Intn(30)+3; j++ {
			s.Atoms = append(s.Atoms, pdb.Atom{
				Serial: len(s.Atoms) + 1, Name: "X", ResName: res,
				ChainID: 'A', ResSeq: b + 1, HetAtm: het,
				X: rng.Float64() * 40, Y: rng.Float64() * 40, Z: rng.Float64() * 40,
				Element: "C", Category: cat,
			})
		}
	}
	// Trajectory: small jitters around the structure coordinates.
	nframes := rng.Intn(4) + 1
	var frames []*xtc.Frame
	pos := make([]xtc.Vec3, s.NAtoms())
	for i, a := range s.Atoms {
		pos[i] = xtc.Vec3{float32(a.X / 10), float32(a.Y / 10), float32(a.Z / 10)}
	}
	var traj bytes.Buffer
	w := xtc.NewWriter(&traj)
	for k := 0; k < nframes; k++ {
		f := &xtc.Frame{Step: int32(k), Precision: 1000, Coords: make([]xtc.Vec3, len(pos))}
		for i := range pos {
			for d := 0; d < 3; d++ {
				pos[i][d] += float32(rng.NormFloat64() * 0.01)
			}
			f.Coords[i] = pos[i]
		}
		frames = append(frames, f.Clone())
		if err := w.WriteFrame(f); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	var pdbBuf bytes.Buffer
	if err := pdb.Write(&pdbBuf, s); err != nil {
		return nil, nil, nil, nil, err
	}
	return s, frames, pdbBuf.Bytes(), traj.Bytes(), nil
}

// TestQuickIngestRoundTrip is the end-to-end invariant: for random category
// layouts and granularities, ingest + OpenFull reconstructs every frame
// within quantization error, and the subset partition covers every atom
// exactly once.
func TestQuickIngestRoundTrip(t *testing.T) {
	f := func(seed int64, fine bool) bool {
		rng := rand.New(rand.NewSource(seed))
		structure, frames, pdbBytes, traj, err := randomDataset(rng)
		if err != nil {
			return false
		}
		containers, err := plfs.New(
			plfs.Backend{Name: "ssd", FS: vfs.NewMemFS(), Mount: "/m1"},
			plfs.Backend{Name: "hdd", FS: vfs.NewMemFS(), Mount: "/m2"},
		)
		if err != nil {
			return false
		}
		g := Coarse
		if fine {
			g = Fine
		}
		a := New(containers, nil, Options{Granularity: g})
		rep, err := a.Ingest("/q", pdbBytes, bytes.NewReader(traj))
		if err != nil || rep.Frames != len(frames) {
			return false
		}
		// Partition invariant.
		m, err := a.Manifest("/q")
		if err != nil {
			return false
		}
		total := 0
		for _, sub := range m.Subsets {
			total += sub.NAtoms
		}
		if total != structure.NAtoms() {
			return false
		}
		// Reconstruction invariant.
		fr, err := a.OpenFull("/q")
		if err != nil {
			return false
		}
		defer fr.Close()
		tol := 2*xtc.MaxError(1000) + 1e-5
		for k := 0; ; k++ {
			full, err := fr.ReadFrame()
			if err == io.EOF {
				return k == len(frames)
			}
			if err != nil || k >= len(frames) {
				return false
			}
			for i := range full.Coords {
				for d := 0; d < 3; d++ {
					if math.Abs(float64(full.Coords[i][d]-frames[k].Coords[i][d])) > tol {
						return false
					}
				}
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParallelReaderMatchesSerial: for random datasets and random worker
// counts, xtc.ParallelReader yields frame-for-frame exactly what the serial
// xtc.Reader yields.
func TestQuickParallelReaderMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, _, _, traj, err := randomDataset(rng)
		if err != nil {
			return false
		}
		want, err := xtc.NewReader(bytes.NewReader(traj)).ReadAll()
		if err != nil {
			return false
		}
		pr := xtc.NewParallelReader(bytes.NewReader(traj), rng.Intn(8)+1)
		defer pr.Close()
		got, err := pr.ReadAll()
		if err != nil || len(got) != len(want) {
			return false
		}
		for k := range want {
			g, w := got[k], want[k]
			if g.Step != w.Step || g.Time != w.Time || g.Box != w.Box ||
				g.Precision != w.Precision || len(g.Coords) != len(w.Coords) {
				return false
			}
			for i := range w.Coords {
				if g.Coords[i] != w.Coords[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
