package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/xtc"
)

// Fsck and scrubbing: the offline/background halves of the integrity story.
// Fsck walks one dataset and checks every dropping against the checksums
// recorded at ingest; the Scrubber repeats that over all datasets at a
// bounded byte rate so latent corruption (bit rot, torn repairs) is found
// before a reader trips over it.

// Dropping verdicts reported by Fsck.
const (
	VerdictOK          = "ok"          // checksum (or structural check) passed
	VerdictCorrupt     = "corrupt"     // stored bytes fail their checksum
	VerdictMissing     = "missing"     // manifest references it, store lacks it
	VerdictUnverified  = "unverified"  // no checksum recorded (legacy dataset)
	VerdictUncommitted = "uncommitted" // staging/journal leftovers of an interrupted ingest
)

// DroppingVerdict is Fsck's judgement of one dropping.
type DroppingVerdict struct {
	Name    string
	Backend string
	Status  string
	Detail  string
}

// FsckResult is the verdict list for one dataset.
type FsckResult struct {
	Logical   string
	Verdicts  []DroppingVerdict
	Corrupt   int
	Missing   int
	Committed bool // manifest present and parseable
}

// OK reports whether the dataset is fully committed with nothing corrupt
// or missing.
func (r *FsckResult) OK() bool {
	return r.Committed && r.Corrupt == 0 && r.Missing == 0
}

// Fsck verifies one dataset end to end: subset droppings against their
// whole-stream and per-frame CRC32Cs, replicas against the same checksums,
// and every metadata dropping against the manifest's integrity map.
func (a *ADA) Fsck(logical string) (*FsckResult, error) {
	res := &FsckResult{Logical: logical}
	idx, err := a.containers.Index(logical)
	if err != nil {
		return nil, err
	}
	backends := map[string]string{}
	for _, d := range idx {
		backends[d.Name] = d.Backend
	}
	add := func(name, status, detail string) {
		res.Verdicts = append(res.Verdicts, DroppingVerdict{
			Name: name, Backend: backends[name], Status: status, Detail: detail,
		})
		switch status {
		case VerdictCorrupt:
			res.Corrupt++
		case VerdictMissing:
			res.Missing++
		}
	}

	m, err := a.Manifest(logical)
	if err != nil {
		// No readable manifest: everything present is an uncommitted
		// leftover (or damage); Recover is the tool, not fsck.
		for _, d := range idx {
			add(d.Name, VerdictUncommitted, "no readable manifest")
		}
		return res, nil
	}
	res.Committed = true

	seen := map[string]bool{droppingManifest: true}
	for _, tag := range m.Tags() {
		sub := m.Subsets[tag]
		for _, name := range subsetDroppings(sub) {
			seen[name] = true
			a.fsckSubsetDropping(logical, name, sub, add)
		}
	}
	names := make([]string, 0, len(m.Checksums))
	for name := range m.Checksums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		a.fsckChecksummed(logical, name, m.Checksums[name], add)
	}
	// Anything else in the container: staging/journal leftovers are
	// uncommitted; unknown droppings are merely unverified.
	for _, d := range idx {
		if seen[d.Name] {
			continue
		}
		if d.Name == droppingJournal || strings.HasPrefix(d.Name, stagingPrefix) {
			add(d.Name, VerdictUncommitted, "leftover ingest state; run Recover")
		} else {
			add(d.Name, VerdictUnverified, "no checksum recorded")
		}
	}
	return res, nil
}

// subsetDroppings lists the payload droppings one subset owns (primary and
// replica).
func subsetDroppings(sub Subset) []string {
	names := []string{subsetPrefix + sub.Tag}
	if sub.Replica != "" {
		names = append(names, replicaPrefix+subsetPrefix+sub.Tag)
	}
	return names
}

// fsckSubsetDropping checks one subset payload copy: whole-stream CRC32C
// first, then each frame against the v2 index when one is available.
func (a *ADA) fsckSubsetDropping(logical, name string, sub Subset, add func(name, status, detail string)) {
	data, err := a.readDropping(logical, name)
	if err != nil {
		add(name, VerdictMissing, err.Error())
		return
	}
	if sub.CRC32C == 0 {
		add(name, VerdictUnverified, "ingested without checksums")
		return
	}
	if int64(len(data)) != sub.Bytes {
		add(name, VerdictCorrupt, fmt.Sprintf("%d bytes stored, manifest says %d", len(data), sub.Bytes))
		return
	}
	if got := xtc.CRC32C(data); got != sub.CRC32C {
		// Locate the damage with the per-frame checksums when possible.
		detail := fmt.Sprintf("stream CRC32C %08x, manifest says %08x", got, sub.CRC32C)
		idxName := indexPrefix + sub.Tag
		if strings.HasPrefix(name, replicaPrefix) {
			idxName = replicaPrefix + idxName
		}
		if idxBytes, err := a.readDropping(logical, idxName); err == nil {
			if idx, err := xtc.UnmarshalIndex(idxBytes); err == nil && idx.HasChecksums() {
				for i := 0; i < idx.Frames(); i++ {
					end := idx.Offset(i) + idx.Size(i)
					if end > int64(len(data)) {
						break
					}
					if xtc.CRC32C(data[idx.Offset(i):end]) != idx.CRC(i) {
						detail = fmt.Sprintf("frame %d fails its checksum (%s)", i, detail)
						break
					}
				}
			}
		}
		add(name, VerdictCorrupt, detail)
		return
	}
	add(name, VerdictOK, "")
}

// fsckChecksummed checks one metadata dropping against the manifest's
// integrity map.
func (a *ADA) fsckChecksummed(logical, name string, want uint32, add func(name, status, detail string)) {
	data, err := a.readDropping(logical, name)
	if err != nil {
		add(name, VerdictMissing, err.Error())
		return
	}
	if got := xtc.CRC32C(data); got != want {
		add(name, VerdictCorrupt, fmt.Sprintf("CRC32C %08x, manifest says %08x", got, want))
		return
	}
	add(name, VerdictOK, "")
}

// scrubMetrics counts background scrub activity under core.scrub.*.
type scrubMetrics struct {
	passes    *metrics.Counter // core.scrub.passes: full sweeps completed
	datasets  *metrics.Counter // core.scrub.datasets
	droppings *metrics.Counter // core.scrub.droppings
	bytes     *metrics.Counter // core.scrub.bytes
	corrupted *metrics.Counter // core.scrub.corrupted
	missing   *metrics.Counter // core.scrub.missing
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Datasets  int
	Droppings int
	Bytes     int64
	Corrupt   []DroppingVerdict // corrupt or missing droppings, per dataset order
	Elapsed   time.Duration
}

// Scrubber walks every dataset verifying checksums at a bounded byte rate,
// the proactive counterpart of the lazy read-path verification.
type Scrubber struct {
	a    *ADA
	rate int64 // payload bytes per second; <=0 = unthrottled
	sm   scrubMetrics

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewScrubber returns a scrubber over this instance's datasets. rate bounds
// how many payload bytes per second a pass may verify (<=0 for no bound),
// keeping background scrubbing from starving foreground reads.
func (a *ADA) NewScrubber(rate int64) *Scrubber {
	return &Scrubber{
		a:    a,
		rate: rate,
		sm: scrubMetrics{
			passes:    a.reg.Counter("core.scrub.passes"),
			datasets:  a.reg.Counter("core.scrub.datasets"),
			droppings: a.reg.Counter("core.scrub.droppings"),
			bytes:     a.reg.Counter("core.scrub.bytes"),
			corrupted: a.reg.Counter("core.scrub.corrupted"),
			missing:   a.reg.Counter("core.scrub.missing"),
		},
	}
}

// Run executes one full scrub pass synchronously.
func (s *Scrubber) Run() (*ScrubReport, error) { return s.run(s.stopCh()) }

// run is one pass gated on an explicit stop channel (nil = uncancellable).
// The channel is captured once per pass: Stop clears the Scrubber's fields
// before closing it, so re-reading them mid-pass would lose the signal.
func (s *Scrubber) run(stop chan struct{}) (*ScrubReport, error) {
	start := time.Now()
	names, err := s.a.Datasets()
	if err != nil {
		return nil, err
	}
	rep := &ScrubReport{}
	var budget int64 // bytes verified since the throttle last slept
	for _, logical := range names {
		res, err := s.a.Fsck(logical)
		if err != nil {
			return nil, fmt.Errorf("core: scrub %s: %w", logical, err)
		}
		rep.Datasets++
		s.sm.datasets.Inc()
		for _, v := range res.Verdicts {
			rep.Droppings++
			s.sm.droppings.Inc()
			switch v.Status {
			case VerdictCorrupt:
				s.sm.corrupted.Inc()
				rep.Corrupt = append(rep.Corrupt, v)
			case VerdictMissing:
				s.sm.missing.Inc()
				rep.Corrupt = append(rep.Corrupt, v)
			}
		}
		if m, err := s.a.Manifest(logical); err == nil {
			for _, sub := range m.Subsets {
				rep.Bytes += sub.Bytes
				s.sm.bytes.Add(sub.Bytes)
				budget += sub.Bytes
			}
		}
		budget = s.throttle(budget, stop)
		if cancelled(stop) {
			break
		}
	}
	rep.Elapsed = time.Since(start)
	s.sm.passes.Inc()
	return rep, nil
}

// throttle sleeps long enough to keep the pass at the configured byte
// rate, returning the remaining (un-slept) budget.
func (s *Scrubber) throttle(budget int64, stop chan struct{}) int64 {
	if s.rate <= 0 || budget <= 0 {
		return 0
	}
	d := time.Duration(float64(budget) / float64(s.rate) * float64(time.Second))
	if d < time.Millisecond {
		return budget // too small to sleep; carry it forward
	}
	select {
	case <-time.After(d):
	case <-stop: // a nil channel never fires, leaving the timer in charge
	}
	return 0
}

func (s *Scrubber) stopCh() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stop
}

func cancelled(stop chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Start launches repeated scrub passes in the background, sleeping interval
// between passes. Stop cancels the loop.
func (s *Scrubber) Start(interval time.Duration) {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		for {
			s.run(stop) // pass errors are reflected in the metrics only
			select {
			case <-stop:
				return
			case <-time.After(interval):
			}
		}
	}()
}

// Stop cancels a background scrub loop and waits for it to exit.
func (s *Scrubber) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
