package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/metrics"
	"repro/internal/plfs"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// TestMoveSubsetRoundTrip relocates a subset to the other backend and back;
// reads must stay byte-identical and both the plfs index and the manifest
// must track the placement.
func TestMoveSubsetRoundTrip(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	a, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	golden := readSubsetFrames(t, a, "/ds", TagProtein)
	payload, err := a.readDropping("/ds", subsetPrefix+TagProtein)
	if err != nil {
		t.Fatal(err)
	}

	n, err := a.MoveSubset("/ds", TagProtein, "hdd")
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("move copied %d bytes", n)
	}
	for _, name := range []string{subsetPrefix + TagProtein, indexPrefix + TagProtein} {
		d, err := a.containers.StatDropping("/ds", name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Backend != "hdd" {
			t.Fatalf("%s on %s after move, want hdd", name, d.Backend)
		}
	}
	m, err := a.Manifest("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if m.Subsets[TagProtein].Backend != "hdd" || m.Placement[TagProtein] != "hdd" {
		t.Fatalf("manifest placement not updated: backend=%s placement=%s",
			m.Subsets[TagProtein].Backend, m.Placement[TagProtein])
	}
	if got, err := a.readDropping("/ds", subsetPrefix+TagProtein); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("payload differs after move (err=%v)", err)
	}
	if got := readSubsetFrames(t, a, "/ds", TagProtein); !sameFrames(got, golden) {
		t.Fatal("frames differ after move")
	}

	// Idempotent: a second move to the same target copies nothing.
	if n, err := a.MoveSubset("/ds", TagProtein, "hdd"); err != nil || n != 0 {
		t.Fatalf("repeat move: n=%d err=%v, want 0, nil", n, err)
	}
	// And back.
	if _, err := a.MoveSubset("/ds", TagProtein, "ssd"); err != nil {
		t.Fatal(err)
	}
	if got := readSubsetFrames(t, a, "/ds", TagProtein); !sameFrames(got, golden) {
		t.Fatal("frames differ after moving back")
	}
	if _, err := a.MoveSubset("/ds", TagProtein, "tape"); err == nil {
		t.Fatal("move to unknown backend succeeded")
	}
}

// TestAccessHookObservesReads checks the read-path heat signal on both the
// verified (checksummed) and raw paths.
func TestAccessHookObservesReads(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"verified", Options{Metrics: metrics.NewRegistry()}},
		{"raw", Options{Metrics: metrics.NewRegistry(), DisableChecksums: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pdbBytes, traj, _ := testDataset(t, 200, 3)
			a, _, _ := newADA(t, nil, tc.opts)
			if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			got := map[string]int64{}
			a.SetAccessFunc(func(logical, dropping string, n int64) {
				mu.Lock()
				got[logical+" "+dropping] += n
				mu.Unlock()
			})
			readSubsetFrames(t, a, "/ds", TagProtein)
			rr, err := a.OpenSubsetAt("/ds", TagMisc)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rr.ReadFrameAt(1); err != nil {
				t.Fatal(err)
			}
			rr.Close()
			if got["/ds "+subsetPrefix+TagProtein] <= 0 {
				t.Fatalf("streaming read recorded no heat: %v", got)
			}
			if got["/ds "+subsetPrefix+TagMisc] <= 0 {
				t.Fatalf("random-access read recorded no heat: %v", got)
			}
		})
	}
}

// TestReadDuringMigrationByteIdentical races concurrent frame readers
// against a migration of the subset they are reading. Readers that opened
// before the move keep their handles (the store unlinks, never truncates);
// readers opening after resolve the verified copy. Every read must be
// byte-identical to the pre-migration golden run. Run under -race.
func TestReadDuringMigrationByteIdentical(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 300, 6)
	a, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	golden := readSubsetFrames(t, a, "/ds", TagProtein)

	rr, err := a.OpenSubsetAt("/ds", TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()

	const readers = 4
	results := make([][]*xtc.Frame, readers)
	errs := make([]error, readers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < rr.Frames(); i++ {
				f, err := rr.ReadFrameAt(i)
				if err != nil {
					errs[w] = fmt.Errorf("frame %d: %w", i, err)
					return
				}
				results[w] = append(results[w], f)
			}
		}(w)
	}
	close(start)
	if _, err := a.MoveSubset("/ds", TagProtein, "hdd"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for w := 0; w < readers; w++ {
		if errs[w] != nil {
			t.Fatalf("reader %d: %v", w, errs[w])
		}
		if !sameFrames(results[w], golden) {
			t.Fatalf("reader %d saw different frames during migration", w)
		}
	}
	// A reader opened after the publish sees the migrated copy, identically.
	if got := readSubsetFrames(t, a, "/ds", TagProtein); !sameFrames(got, golden) {
		t.Fatal("post-migration reads differ")
	}
	if d, _ := a.containers.StatDropping("/ds", subsetPrefix+TagProtein); d.Backend != "hdd" {
		t.Fatalf("subset on %s, want hdd", d.Backend)
	}
}

// ingestClean commits one dataset onto fresh raw backends.
func ingestClean(t *testing.T, pdbBytes, traj []byte) (*vfs.MemFS, *vfs.MemFS) {
	t.Helper()
	ssd, hdd := vfs.NewMemFS(), vfs.NewMemFS()
	store, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := New(store, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	return ssd, hdd
}

// adaOverFaulty rebuilds the stack with an injector between plfs and the
// backends, the way crashIngest does for ingests.
func adaOverFaulty(t *testing.T, in *faultfs.Injector, ssd, hdd *vfs.MemFS) *ADA {
	t.Helper()
	store, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: faultfs.Wrap(ssd, in), Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: faultfs.Wrap(hdd, in), Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return New(store, nil, Options{Metrics: metrics.NewRegistry()})
}

// countFilesNamed walks a backend tree counting files with the given name.
func countFilesNamed(t *testing.T, fsys vfs.FS, name string) int {
	t.Helper()
	n := 0
	vfs.Walk(fsys, "/", func(path string, info vfs.FileInfo) error {
		if info.Name == name {
			n++
		}
		return nil
	})
	return n
}

// TestCrashMidMigrationMatrix sweeps a kill-after-Nth-op crash across every
// backend operation of a subset migration, extending the ingest crash
// matrix to the tiering path. After each crash and recovery the container
// must resolve the subset to exactly one complete copy: reads are
// byte-identical to the pre-move golden, no staged or orphaned migration
// leftovers survive on either backend, and the manifest agrees with the
// index about placement.
func TestCrashMidMigrationMatrix(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)

	goldenSSD, goldenHDD := ingestClean(t, pdbBytes, traj)
	golden := rebootADA(t, goldenSSD, goldenHDD)
	goldenFrames := readSubsetFrames(t, golden, "/ds", TagProtein)
	goldenPayload, err := golden.readDropping("/ds", subsetPrefix+TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	goldenIndex, err := golden.readDropping("/ds", indexPrefix+TagProtein)
	if err != nil {
		t.Fatal(err)
	}

	// Count the backend ops one migration performs, with a rule that can
	// never fire so the injector only observes.
	probe := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindErr, Op: "no-such-op", Nth: 1})
	{
		ssd, hdd := ingestClean(t, pdbBytes, traj)
		a := adaOverFaulty(t, probe, ssd, hdd)
		if _, err := a.MoveSubset("/ds", TagProtein, "hdd"); err != nil {
			t.Fatalf("probe move: %v", err)
		}
	}
	total := probe.Ops()
	if total < 10 {
		t.Fatalf("probe move saw only %d backend ops", total)
	}

	var moved, stayed int
	for n := int64(1); n <= total; n++ {
		in := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindKill, Nth: int(n)})
		ssd, hdd := ingestClean(t, pdbBytes, traj)
		// The kill is the simulated crash; the move's error is the crash
		// itself and is deliberately ignored.
		adaOverFaulty(t, in, ssd, hdd).MoveSubset("/ds", TagProtein, "hdd")

		a := rebootADA(t, ssd, hdd)
		if _, err := a.Recover(); err != nil {
			t.Fatalf("kill %d/%d: recover: %v", n, total, err)
		}

		// Exactly one complete copy of payload and frame index, no staged
		// migration leftovers anywhere.
		for _, c := range []struct {
			name   string
			golden []byte
		}{
			{subsetPrefix + TagProtein, goldenPayload},
			{indexPrefix + TagProtein, goldenIndex},
		} {
			copies := countFilesNamed(t, ssd, c.name) + countFilesNamed(t, hdd, c.name)
			if copies != 1 {
				t.Fatalf("kill %d/%d: %d copies of %s survive recovery", n, total, copies, c.name)
			}
			got, err := a.readDropping("/ds", c.name)
			if err != nil {
				t.Fatalf("kill %d/%d: read %s: %v", n, total, c.name, err)
			}
			if !bytes.Equal(got, c.golden) {
				t.Fatalf("kill %d/%d: %s differs from golden", n, total, c.name)
			}
		}
		staged := stagingPrefix + "mig." + subsetPrefix + TagProtein
		if countFilesNamed(t, ssd, staged)+countFilesNamed(t, hdd, staged) != 0 {
			t.Fatalf("kill %d/%d: staged migration copy survives recovery", n, total)
		}

		// Index consistency: every entry resolves, and the manifest agrees
		// with the index about the subset's placement.
		d, err := a.containers.StatDropping("/ds", subsetPrefix+TagProtein)
		if err != nil {
			t.Fatalf("kill %d/%d: stat: %v", n, total, err)
		}
		m, err := a.Manifest("/ds")
		if err != nil {
			t.Fatalf("kill %d/%d: manifest: %v", n, total, err)
		}
		if m.Subsets[TagProtein].Backend != d.Backend {
			t.Fatalf("kill %d/%d: manifest says %s, index says %s",
				n, total, m.Subsets[TagProtein].Backend, d.Backend)
		}
		if d.Backend == "hdd" {
			moved++
		} else {
			stayed++
		}

		if got := readSubsetFrames(t, a, "/ds", TagProtein); !sameFrames(got, goldenFrames) {
			t.Fatalf("kill %d/%d: recovered reads differ", n, total)
		}
	}
	// The sweep must exercise both outcomes: early kills leave the subset
	// in place, kills after the index re-point land it on the target.
	if moved == 0 || stayed == 0 {
		t.Fatalf("sweep over %d kill points: %d stayed, %d moved — both must occur", total, stayed, moved)
	}
	t.Logf("migration crash matrix: %d kill points, %d stayed, %d moved", total, stayed, moved)
}
