// Package core implements ADA, the application-conscious data acquirer: a
// light-weight file-system middleware that pre-processes molecular-dynamics
// trajectory data on the storage side.
//
// The two halves match the paper's architecture (Fig 4 and Fig 5):
//
//   - The data pre-processor — decompressor, categorizer, and labeler
//     (Algorithm 1) — turns an ingested (.pdb, .xtc) pair into decompressed,
//     tagged data subsets.
//   - The I/O determinator — dispatcher, indexer, and retriever — places
//     each subset on the backend its tag maps to (protein on SSD-backed
//     storage, MISC on HDD-backed storage) through a PLFS-style container,
//     and serves tag-qualified reads.
package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/pdb"
	"repro/internal/rangelist"
)

// Coarse tags from the paper's prototype.
const (
	TagProtein = "p" // active data
	TagMisc    = "m" // inactive (MISC) data
)

// Granularity selects how the categorizer groups a raw dataset.
type Granularity int

const (
	// Coarse produces the paper's two groups: "p" (protein) and "m" (MISC).
	Coarse Granularity = iota
	// Fine produces one group per residue category: "protein", "water",
	// "lipid", "ion", "ligand", "other" (the paper's fine-grained viewing
	// extension in Section 4.1).
	Fine
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	if g == Fine {
		return "fine"
	}
	return "coarse"
}

// LabelSet is the labeler's output: for every category, the list of atom
// index ranges belonging to it. It is Algorithm 1's `labeler` map with
// half-open ranges over the structure file's atom order.
type LabelSet struct {
	NAtoms     int
	ByCategory [pdb.NumCategories]*rangelist.List
}

// BuildLabels runs the data categorizer + labeler over a parsed structure
// file (Algorithm 1: one sequential scan, emitting a range whenever the
// category changes).
func BuildLabels(s *pdb.Structure) *LabelSet {
	ls := &LabelSet{NAtoms: s.NAtoms()}
	for c := range ls.ByCategory {
		ls.ByCategory[c] = rangelist.New()
	}
	begin := 0
	var prev pdb.Category
	for i, a := range s.Atoms {
		if i == 0 {
			prev = a.Category
			continue
		}
		if a.Category != prev {
			ls.ByCategory[prev].Append(begin, i)
			begin = i
			prev = a.Category
		}
	}
	if s.NAtoms() > 0 {
		ls.ByCategory[prev].Append(begin, s.NAtoms())
	}
	return ls
}

// CategoryRanges returns the range list for one category.
func (ls *LabelSet) CategoryRanges(c pdb.Category) *rangelist.List {
	return ls.ByCategory[c]
}

// TagRanges groups the label set at the requested granularity, returning
// tag -> atom ranges. Tags with no atoms are omitted.
func (ls *LabelSet) TagRanges(g Granularity) map[string]*rangelist.List {
	out := map[string]*rangelist.List{}
	switch g {
	case Fine:
		for c := pdb.Protein; int(c) < pdb.NumCategories; c++ {
			if l := ls.ByCategory[c]; l.Count() > 0 {
				out[c.String()] = l
			}
		}
	default:
		p := ls.ByCategory[pdb.Protein]
		if p.Count() > 0 {
			out[TagProtein] = p
		}
		m := p.Complement(ls.NAtoms)
		if m.Count() > 0 {
			out[TagMisc] = m
		}
	}
	return out
}

// Tags returns the sorted tag names present at a granularity.
func (ls *LabelSet) Tags(g Granularity) []string {
	m := ls.TagRanges(g)
	tags := make([]string, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// labelFile is the serialized form (the paper's label_file).
type labelFile struct {
	NAtoms int               `json:"natoms"`
	Ranges map[string]string `json:"ranges"` // category name -> "a-b,c-d"
}

// Marshal serializes the label set for storage as a container dropping.
func (ls *LabelSet) Marshal() ([]byte, error) {
	lf := labelFile{NAtoms: ls.NAtoms, Ranges: map[string]string{}}
	for c := pdb.Protein; int(c) < pdb.NumCategories; c++ {
		if l := ls.ByCategory[c]; l.Count() > 0 {
			lf.Ranges[c.String()] = l.String()
		}
	}
	return json.MarshalIndent(lf, "", "  ")
}

// UnmarshalLabels reads a serialized label set back.
func UnmarshalLabels(data []byte) (*LabelSet, error) {
	var lf labelFile
	if err := json.Unmarshal(data, &lf); err != nil {
		return nil, fmt.Errorf("core: parse label file: %w", err)
	}
	ls := &LabelSet{NAtoms: lf.NAtoms}
	for c := range ls.ByCategory {
		ls.ByCategory[c] = rangelist.New()
	}
	for name, ranges := range lf.Ranges {
		cat, err := pdb.ParseCategory(name)
		if err != nil {
			return nil, fmt.Errorf("core: label file: %w", err)
		}
		l, err := rangelist.Parse(ranges)
		if err != nil {
			return nil, fmt.Errorf("core: label file category %s: %w", name, err)
		}
		ls.ByCategory[cat] = l
	}
	total := 0
	for _, l := range ls.ByCategory {
		total += l.Count()
	}
	if total != lf.NAtoms {
		return nil, fmt.Errorf("core: label file covers %d atoms, header says %d", total, lf.NAtoms)
	}
	return ls, nil
}
