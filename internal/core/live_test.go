package core

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/metrics"
	"repro/internal/plfs"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// splitFrames cuts an encoded trajectory at its frame boundaries.
func splitFrames(t testing.TB, traj []byte) [][]byte {
	t.Helper()
	idx, err := xtc.BuildIndex(bytes.NewReader(traj), int64(len(traj)))
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, idx.Frames())
	for i := 0; i < idx.Frames(); i++ {
		out[i] = traj[idx.Offset(i) : idx.Offset(i)+idx.Size(i)]
	}
	return out
}

// batchFrames regroups per-frame slices into batches of n frames.
func batchFrames(frames [][]byte, n int) [][]byte {
	var out [][]byte
	for len(frames) > 0 {
		k := n
		if k > len(frames) {
			k = len(frames)
		}
		var b []byte
		for _, f := range frames[:k] {
			b = append(b, f...)
		}
		out = append(out, b)
		frames = frames[k:]
	}
	return out
}

// TestLiveSealMatchesIngest drives a live session batch by batch and
// requires Seal's output to be byte-identical to a one-shot Ingest of the
// same stream — every dropping, the manifest included.
func TestLiveSealMatchesIngest(t *testing.T) {
	const frames = journalCkptEvery + 11 // exercise both ckpt paths
	pdbBytes, traj, _ := testDataset(t, 200, frames)

	golden, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := golden.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}

	a, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}

	h, err := a.LiveHead("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if h.Sealed || h.Frames != 0 || h.Version != 1 {
		t.Fatalf("initial head = %+v", h)
	}

	var lastVersion int64
	total := 0
	for _, batch := range batchFrames(splitFrames(t, traj), 7) {
		n, err := li.Append(batch)
		if err != nil {
			t.Fatal(err)
		}
		total += n
		h, err := a.LiveHead("/ds")
		if err != nil {
			t.Fatal(err)
		}
		if h.Frames != total {
			t.Fatalf("head frames = %d after %d appended", h.Frames, total)
		}
		if h.Version <= lastVersion {
			t.Fatalf("head version did not advance: %d -> %d", lastVersion, h.Version)
		}
		lastVersion = h.Version
		// The published live index must cover the head for every tag.
		for _, tag := range h.Tags() {
			idxBytes, err := a.readDropping("/ds", liveIndexPrefix+tag)
			if err != nil {
				t.Fatalf("live index %s: %v", tag, err)
			}
			idx, err := xtc.UnmarshalIndex(idxBytes)
			if err != nil {
				t.Fatal(err)
			}
			if idx.Frames() < h.Frames {
				t.Fatalf("live index %s has %d frames, head %d", tag, idx.Frames(), h.Frames)
			}
		}
	}
	if total != frames {
		t.Fatalf("appended %d frames, want %d", total, frames)
	}

	// Appending to or sealing a sealed session must fail.
	rep, err := li.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != frames {
		t.Fatalf("seal report frames = %d", rep.Frames)
	}
	if _, err := li.Append(nil); err == nil {
		t.Error("append after seal succeeded")
	}
	if _, err := li.Seal(); err == nil {
		t.Error("double seal succeeded")
	}

	// The sealed container is indistinguishable from the one-shot ingest.
	for _, name := range durableDroppings {
		want, err := golden.readDropping("/ds", name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.readDropping("/ds", name)
		if err != nil {
			t.Fatalf("sealed dataset: read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("sealed %s differs from one-shot ingest", name)
		}
	}
	gIdx, err := golden.containers.Index("/ds")
	if err != nil {
		t.Fatal(err)
	}
	sIdx, err := a.containers.Index("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if len(gIdx) != len(sIdx) {
		t.Fatalf("container holds %d droppings, one-shot %d: %v vs %v", len(sIdx), len(gIdx), sIdx, gIdx)
	}
	for i := range gIdx {
		if gIdx[i].Name != sIdx[i].Name || gIdx[i].Backend != sIdx[i].Backend {
			t.Errorf("dropping %d: %v vs %v", i, sIdx[i], gIdx[i])
		}
	}

	// The head now reports the sealed manifest.
	h, err = a.LiveHead("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Sealed || h.Frames != frames {
		t.Fatalf("post-seal head = %+v", h)
	}
}

// TestLiveAbort removes the whole container.
func TestLiveAbort(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 4)
	a, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := li.Append(traj); err != nil {
		t.Fatal(err)
	}
	if err := li.Abort(); err != nil {
		t.Fatal(err)
	}
	names, err := a.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("containers remain after abort: %v", names)
	}
	if _, err := a.LiveHead("/ds"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("head after abort = %v, want ErrNotExist", err)
	}
}

// TestLiveReaderTails drives a producer and a concurrent tailing reader:
// every frame the reader observes must be byte-identical to the same frame
// of the final sealed container, ReadFrameAt past the head must block until
// the frame is published, and the seal must surface as io.EOF.
func TestLiveReaderTails(t *testing.T) {
	const frames = 24
	pdbBytes, traj, _ := testDataset(t, 200, frames)
	a, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}

	lr, err := a.OpenLiveReader("/ds", TagProtein, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()
	if !lr.Live() {
		t.Fatal("fresh live dataset reports not live")
	}

	type got struct {
		i int
		f *xtc.Frame
	}
	results := make(chan got, frames)
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			f, err := lr.ReadFrameAt(i)
			if err == io.EOF {
				return
			}
			if err != nil {
				errc <- err
				return
			}
			results <- got{i, f}
		}
	}()

	batches := batchFrames(splitFrames(t, traj), 5)
	for _, b := range batches {
		if _, err := li.Append(b); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the tail catch up mid-stream
	}
	if _, err := li.Seal(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	close(results)

	want := readSubsetFrames(t, a, "/ds", TagProtein)
	if len(want) != frames {
		t.Fatalf("sealed subset has %d frames", len(want))
	}
	seen := 0
	for g := range results {
		seen++
		if !sameFrames([]*xtc.Frame{g.f}, []*xtc.Frame{want[g.i]}) {
			t.Fatalf("tailed frame %d differs from sealed frame", g.i)
		}
	}
	if seen != frames {
		t.Fatalf("tail observed %d frames, want %d", seen, frames)
	}
	if lr.Live() {
		t.Error("sealed dataset still reports live")
	}
	if n := lr.Frames(); n != frames {
		t.Errorf("sealed reader frames = %d", n)
	}
}

// TestLiveReaderWaitFrames covers the bounded wait API and Close unblocking
// a parked reader.
func TestLiveReaderWaitFrames(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 6)
	a, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := a.OpenLiveReader("/ds", TagProtein, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	// Timeout with no producer progress returns the current count.
	if n, err := lr.WaitFrames(1, 20*time.Millisecond); err != nil || n != 0 {
		t.Fatalf("WaitFrames on idle head = %d, %v", n, err)
	}

	perFrame := splitFrames(t, traj)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, f := range perFrame[:3] {
			li.Append(f)
		}
	}()
	if n, err := lr.WaitFrames(3, 5*time.Second); err != nil || n < 3 {
		t.Fatalf("WaitFrames(3) = %d, %v", n, err)
	}
	<-done

	// A reader parked past the head unblocks with ErrLiveClosed on Close.
	readErr := make(chan error, 1)
	go func() {
		_, err := lr.ReadFrameAt(5)
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := lr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-readErr; !errors.Is(err, ErrLiveClosed) {
		t.Fatalf("parked read after Close = %v, want ErrLiveClosed", err)
	}
	if _, err := li.Seal(); err != nil {
		t.Fatal(err)
	}
}

// crashLive runs one live session (open, append every batch, seal) with the
// injector's faults applied, discarding errors: a fired kill rule is the
// simulated crash.
func crashLive(t *testing.T, in *faultfs.Injector, pdbBytes []byte, batches [][]byte) (*vfs.MemFS, *vfs.MemFS) {
	t.Helper()
	ssd, hdd := vfs.NewMemFS(), vfs.NewMemFS()
	store, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: faultfs.Wrap(ssd, in), Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: faultfs.Wrap(hdd, in), Mount: "/mnt2"},
	)
	if err != nil {
		return ssd, hdd
	}
	a := New(store, nil, Options{Metrics: metrics.NewRegistry()})
	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		return ssd, hdd
	}
	for _, b := range batches {
		if _, err := li.Append(b); err != nil {
			return ssd, hdd
		}
	}
	li.Seal()
	return ssd, hdd
}

// TestLiveRecoverKillMatrix is the streaming analogue of the PR-4 crash
// matrix: a kill-after-Nth-op fault swept across every backend operation of
// a live session. After each kill the stack reboots and recovers; a live
// dataset's published prefix must be byte-identical to the golden prefix,
// and resuming plus sealing must reproduce the one-shot container exactly.
func TestLiveRecoverKillMatrix(t *testing.T) {
	const frames = journalCkptEvery + 11
	pdbBytes, traj, _ := testDataset(t, 200, frames)
	perFrame := splitFrames(t, traj)
	batches := batchFrames(perFrame, 7)

	golden, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})
	if _, err := golden.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	goldenBytes := map[string][]byte{}
	for _, name := range durableDroppings {
		data, err := golden.readDropping("/ds", name)
		if err != nil {
			t.Fatal(err)
		}
		goldenBytes[name] = data
	}
	goldenSubset := map[string][]byte{
		TagProtein: goldenBytes[subsetPrefix+TagProtein],
		TagMisc:    goldenBytes[subsetPrefix+TagMisc],
	}

	// Probe the op count with a rule that never fires.
	probe := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindErr, Op: "no-such-op", Nth: 1})
	crashLive(t, probe, pdbBytes, batches)
	total := probe.Ops()
	if total < 50 {
		t.Fatalf("probe live session saw only %d backend ops", total)
	}

	// Live sessions publish per batch, so the op count is large; stride the
	// sweep to keep the matrix fast while still crossing every phase.
	stride := total / 120
	if stride < 1 {
		stride = 1
	}
	var live, committed, rolledBack int
	for n := int64(1); n <= total; n += stride {
		in := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindKill, Nth: int(n)})
		ssd, hdd := crashLive(t, in, pdbBytes, batches)
		a := rebootADA(t, ssd, hdd)
		acts, err := a.Recover()
		if err != nil {
			t.Fatalf("kill %d/%d: recover: %v", n, total, err)
		}

		switch acts["/ds"] {
		case RecoveryLive:
			live++
			// The republished head must describe a prefix byte-identical
			// to the golden container's subsets.
			h, err := a.LiveHead("/ds")
			if err != nil {
				t.Fatalf("kill %d/%d: live head: %v", n, total, err)
			}
			if h.Sealed {
				t.Fatalf("kill %d/%d: recovered live head is sealed", n, total)
			}
			for tag, sub := range h.Subsets {
				staged, err := a.readDropping("/ds", stagingPrefix+subsetPrefix+tag)
				if err != nil {
					t.Fatalf("kill %d/%d: staged %s: %v", n, total, tag, err)
				}
				if int64(len(staged)) != sub.Bytes {
					t.Fatalf("kill %d/%d: staged %s is %d bytes, head says %d",
						n, total, tag, len(staged), sub.Bytes)
				}
				if !bytes.Equal(staged, goldenSubset[tag][:sub.Bytes]) {
					t.Fatalf("kill %d/%d: recovered %s prefix differs from golden", n, total, tag)
				}
			}
			// Resume from the recovered frame count and run to seal: the
			// result must be the one-shot container, byte for byte.
			li, err := a.ResumeLiveIngest("/ds", pdbBytes)
			if err != nil {
				t.Fatalf("kill %d/%d: resume live: %v", n, total, err)
			}
			if li.Frames() != h.Frames {
				t.Fatalf("kill %d/%d: resumed at frame %d, head says %d", n, total, li.Frames(), h.Frames)
			}
			for _, f := range perFrame[li.Frames():] {
				if _, err := li.Append(f); err != nil {
					t.Fatalf("kill %d/%d: resumed append: %v", n, total, err)
				}
			}
			if _, err := li.Seal(); err != nil {
				t.Fatalf("kill %d/%d: resumed seal: %v", n, total, err)
			}
			assertGolden(t, a, goldenBytes, n, total)

		case RecoveryCommitted, RecoveryClean, RecoverySwept:
			committed++
			assertGolden(t, a, goldenBytes, n, total)

		default:
			// Rolled back (or the container never formed): nothing lingers.
			names, lerr := a.Datasets()
			if lerr != nil {
				t.Fatalf("kill %d/%d: list after rollback: %v", n, total, lerr)
			}
			if len(names) != 0 {
				t.Fatalf("kill %d/%d: rollback left containers: %v (acts=%v)", n, total, names, acts)
			}
			rolledBack++
		}
	}
	if live == 0 || committed == 0 || rolledBack == 0 {
		t.Fatalf("sweep over %d ops: live %d, committed %d, rolledback %d — all three must occur",
			total, live, committed, rolledBack)
	}
	t.Logf("live kill matrix: %d ops (stride %d), %d live, %d committed, %d rolled back",
		total, stride, live, committed, rolledBack)
}

// assertGolden requires the committed container to match the one-shot
// ingest byte for byte with no live or staging leftovers.
func assertGolden(t *testing.T, a *ADA, goldenBytes map[string][]byte, n, total int64) {
	t.Helper()
	for name, want := range goldenBytes {
		got, err := a.readDropping("/ds", name)
		if err != nil {
			t.Fatalf("kill %d/%d: read %s: %v", n, total, name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("kill %d/%d: %s differs from one-shot ingest", n, total, name)
		}
	}
	idx, err := a.containers.Index("/ds")
	if err != nil {
		t.Fatalf("kill %d/%d: index: %v", n, total, err)
	}
	for _, d := range idx {
		if d.Name == droppingJournal || strings.HasPrefix(d.Name, stagingPrefix) ||
			d.Name == liveHeadName || strings.HasPrefix(d.Name, liveIndexPrefix) {
			t.Fatalf("kill %d/%d: leftover %s survived recovery", n, total, d.Name)
		}
	}
}

// TestResumeLiveRejectsOneShot pins the resume-mode cross-checks.
func TestResumeLiveRejectsOneShot(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 4)
	a, _, _ := newADA(t, nil, Options{Metrics: metrics.NewRegistry()})

	// A live journal is rejected by ResumeIngest...
	li, err := a.OpenLiveIngest("/live", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := li.Append(traj); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ResumeIngest("/live", pdbBytes, bytes.NewReader(traj)); err == nil ||
		!strings.Contains(err.Error(), "ResumeLiveIngest") {
		t.Fatalf("ResumeIngest on a live journal = %v", err)
	}
	if err := li.Abort(); err != nil {
		t.Fatal(err)
	}

	// ...and a one-shot journal by ResumeLiveIngest.
	if err := a.containers.CreateContainer("/oneshot"); err != nil {
		t.Fatal(err)
	}
	j, err := a.openJournal("/oneshot")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(&journalRecord{Type: journalBegin, Logical: "/oneshot"}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ResumeLiveIngest("/oneshot", pdbBytes); err == nil ||
		!strings.Contains(err.Error(), "ResumeIngest") {
		t.Fatalf("ResumeLiveIngest on a one-shot journal = %v", err)
	}
}
