package core

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/plfs"
	"repro/internal/vfs"
)

// newMeteredADA builds an ADA over instrumented MemFS backends with an
// isolated registry wired through every layer.
func newMeteredADA(t testing.TB, reg *metrics.Registry) *ADA {
	t.Helper()
	ssd := vfs.Instrument(vfs.NewMemFS(), reg, "fs.ssd")
	hdd := vfs.Instrument(vfs.NewMemFS(), reg, "fs.hdd")
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	containers.SetMetrics(reg)
	return New(containers, nil, Options{Metrics: reg})
}

func checkIngestMetrics(t *testing.T, reg *metrics.Registry, frames int, compressed int64, parallel bool) {
	t.Helper()
	s := reg.Snapshot()
	if got := s.Counters["ingest.runs"]; got != 1 {
		t.Errorf("ingest.runs = %d, want 1", got)
	}
	if got := s.Counters["ingest.frames"]; got != int64(frames) {
		t.Errorf("ingest.frames = %d, want %d", got, frames)
	}
	if got := s.Counters["ingest.bytes.compressed"]; got != compressed {
		t.Errorf("ingest.bytes.compressed = %d, want %d", got, compressed)
	}
	if s.Counters["ingest.bytes.raw"] == 0 || s.Counters["ingest.bytes.written"] == 0 {
		t.Errorf("byte counters empty: %+v", s.Counters)
	}
	if got := s.Histograms["ingest.decode.ns"].Count; got != int64(frames) {
		t.Errorf("decode observations = %d, want %d", got, frames)
	}
	// Serial: one write observation per frame. Parallel: one per frame per
	// subset writer (coarse = p and m).
	if got := s.Histograms["ingest.write.ns"].Count; got < int64(frames) {
		t.Errorf("write observations = %d, want ≥ %d", got, frames)
	}
	if got := s.Histograms["ingest.total.ns"].Count; got != 1 {
		t.Errorf("ingest.total spans = %d, want 1", got)
	}
	// The PLFS dispatch counters saw both backends (protein → ssd,
	// misc → hdd, per DefaultPlacement).
	if s.Counters["plfs.containers_created"] != 1 {
		t.Errorf("plfs.containers_created = %d", s.Counters["plfs.containers_created"])
	}
	if s.Counters["plfs.backend.ssd.droppings_created"] == 0 ||
		s.Counters["plfs.backend.hdd.droppings_created"] == 0 {
		t.Errorf("backend dispatch counters missing: %+v", s.Counters)
	}
	// The instrumented backends saw real bytes.
	if s.Counters["fs.ssd.bytes_written"] == 0 || s.Counters["fs.hdd.bytes_written"] == 0 {
		t.Errorf("fs byte counters empty: %+v", s.Counters)
	}
	if parallel {
		if s.Gauges["ingest.queue_depth_hwm"] < 1 {
			t.Errorf("queue_depth_hwm = %d, want ≥ 1", s.Gauges["ingest.queue_depth_hwm"])
		}
	}
}

func TestIngestMetricsSerial(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 5)
	reg := metrics.NewRegistry()
	a := newMeteredADA(t, reg)
	rep, err := a.Ingest("/m.xtc", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 5 {
		t.Fatalf("frames = %d", rep.Frames)
	}
	checkIngestMetrics(t, reg, 5, int64(len(traj)), false)
	if a.Metrics() != reg {
		t.Error("Metrics() did not return the configured registry")
	}
}

func TestIngestMetricsParallel(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 6)
	reg := metrics.NewRegistry()
	a := newMeteredADA(t, reg)
	rep, err := a.IngestParallel("/m.xtc", pdbBytes, bytes.NewReader(traj), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 6 {
		t.Fatalf("frames = %d", rep.Frames)
	}
	checkIngestMetrics(t, reg, 6, int64(len(traj)), true)
}

// TestIngestMetricsTransparent: the same ingest against a metered and an
// unmetered instance must produce byte-identical stored subsets.
func TestIngestMetricsTransparent(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 3)
	plain, _, _ := newADA(t, nil, Options{})
	metered := newMeteredADA(t, metrics.NewRegistry())
	repA, err := plain.Ingest("/t.xtc", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := metered.Ingest("/t.xtc", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	for tag, n := range repA.Subsets {
		if repB.Subsets[tag] != n {
			t.Errorf("subset %s: %d vs %d bytes", tag, n, repB.Subsets[tag])
		}
	}
	for _, a := range []*ADA{plain, metered} {
		sr, err := a.OpenSubset("/t.xtc", TagProtein)
		if err != nil {
			t.Fatal(err)
		}
		f, err := sr.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f.NAtoms() == 0 {
			t.Error("empty first frame")
		}
		sr.Close()
	}
}
