package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockfs"
	"repro/internal/device"
	"repro/internal/plfs"
	"repro/internal/vfs"
)

// tinyDeviceADA builds an ADA whose SSD backend is a device too small for
// the protein subset.
func tinyDeviceADA(t *testing.T, capacity int64) *ADA {
	t.Helper()
	dev := device.Device{
		Name: "tiny", ReadBW: 100 * device.MB, WriteBW: 100 * device.MB,
		Capacity: capacity,
	}
	ssd := blockfs.New("tiny-ssd", dev, nil)
	hdd := vfs.NewMemFS()
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/m1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/m2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return New(containers, nil, Options{})
}

func TestIngestFailsCleanlyOnFullDevice(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 50, 8) // protein subset ~ hundreds of KB
	a := tinyDeviceADA(t, 2*blockfs.BlockSize)
	_, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj))
	if err == nil {
		t.Fatal("ingest onto a full device should fail")
	}
	if !errors.Is(err, blockfs.ErrNoSpace) {
		t.Errorf("err = %v, want ErrNoSpace in the chain", err)
	}
}

func TestIngestParallelFailsCleanlyOnFullDevice(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 50, 8)
	a := tinyDeviceADA(t, 2*blockfs.BlockSize)
	_, err := a.IngestParallel("/ds", pdbBytes, bytes.NewReader(traj), 2)
	if err == nil {
		t.Fatal("parallel ingest onto a full device should fail")
	}
	if !errors.Is(err, blockfs.ErrNoSpace) {
		t.Errorf("err = %v, want ErrNoSpace in the chain", err)
	}
}

func TestSubsetSurvivesUnrelatedDatasetRemoval(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 200, 2)
	a, _, _ := newADA(t, nil, Options{})
	if _, err := a.Ingest("/keep", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ingest("/drop", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	if err := a.Remove("/drop"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OpenSubset("/drop", TagProtein); err == nil {
		t.Error("removed dataset should not open")
	}
	sr, err := a.OpenSubset("/keep", TagProtein)
	if err != nil {
		t.Fatalf("surviving dataset unreadable: %v", err)
	}
	defer sr.Close()
	if _, err := sr.ReadFrame(); err != nil {
		t.Errorf("surviving dataset frame: %v", err)
	}
}

func TestCorruptManifestReportsError(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 300, 1)
	a, ssd, _ := newADA(t, nil, Options{})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	// Scribble over the manifest dropping directly on the backend.
	if err := vfs.WriteFile(ssd, "/mnt1/ds/manifest.json", []byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OpenSubset("/ds", TagProtein); err == nil {
		t.Error("corrupt manifest should surface an error")
	}
	if _, err := a.Manifest("/ds"); err == nil {
		t.Error("corrupt manifest should fail to parse")
	}
}

func TestCorruptIndexReportsError(t *testing.T) {
	pdbBytes, traj, _ := testDataset(t, 300, 2)
	a, ssd, _ := newADA(t, nil, Options{})
	if _, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(ssd, "/mnt1/ds/index.p", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OpenSubsetAt("/ds", TagProtein); err == nil {
		t.Error("corrupt frame index should surface an error")
	}
	// The sequential path does not need the index and still works.
	sr, err := a.OpenSubset("/ds", TagProtein)
	if err != nil {
		t.Fatalf("sequential read should survive index corruption: %v", err)
	}
	sr.Close()
}
