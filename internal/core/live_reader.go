package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/vfs"
	"repro/internal/xtc"
)

// ErrLiveClosed is returned by LiveReader operations after Close.
var ErrLiveClosed = errors.New("core: live reader closed")

// liveWaitSlice bounds each blocking head-wait so Close and sealed-state
// transitions are noticed promptly even when no new head is published.
const liveWaitSlice = 50 * time.Millisecond

// liveHeadAndCRC loads the dataset's head together with the CRC32C of its
// published bytes — the token WaitLiveHead's change detection keys on. A
// sealed dataset (manifest present, live.json swept) reports CRC 0.
func (a *ADA) liveHeadAndCRC(logical string) (*LiveHead, uint32, error) {
	data, err := a.readDropping(logical, liveHeadName)
	if err == nil {
		h, herr := unmarshalLiveHead(data)
		if herr != nil {
			return nil, 0, herr
		}
		return h, xtc.CRC32C(data), nil
	}
	m, merr := a.Manifest(logical)
	if merr != nil {
		return nil, 0, err // the original live.json error (typically ErrNotExist)
	}
	return sealedHead(m), 0, nil
}

// WaitLiveHead blocks until the dataset's head differs from the one
// identified by lastCRC (pass 0 for "any head") or the timeout elapses.
// It returns (head, newCRC, changed). The head's disappearance counts as a
// change: a sealed dataset comes back as a Sealed head with CRC 0, an
// aborted one as an error. Backends that can long-poll server-side (the
// RPC client) carry the whole wait in one round trip.
func (a *ADA) WaitLiveHead(logical string, lastCRC uint32, timeout time.Duration) (*LiveHead, uint32, bool, error) {
	data, crc, changed, err := a.containers.WatchDropping(logical, liveHeadName, lastCRC, timeout)
	if err != nil {
		return nil, lastCRC, false, err
	}
	if !changed {
		return nil, lastCRC, false, nil
	}
	if data == nil {
		// live.json is gone: either Seal committed the dataset or Abort
		// removed it. The manifest decides which.
		m, merr := a.Manifest(logical)
		if merr != nil {
			return nil, 0, true, fmt.Errorf("core: live dataset %s vanished: %w", logical, merr)
		}
		return sealedHead(m), 0, true, nil
	}
	h, err := unmarshalLiveHead(data)
	if err != nil {
		return nil, lastCRC, false, err
	}
	return h, crc, true, nil
}

// LiveReader tails one tagged subset of a live dataset, implementing
// vmd.FrameSource over a growing frame range. Frames() reports the
// published head (refreshed at most every staleness interval), ReadFrameAt
// on a frame at or past the head blocks until the producer publishes it —
// which is what lets a playback prefetcher park a worker on head+1 as its
// notification mechanism — and once the dataset seals the reader switches
// to the committed container and returns io.EOF past the end. Safe for
// concurrent ReadFrameAt callers.
type LiveReader struct {
	a         *ADA
	logical   string
	tag       string
	staleness time.Duration

	mu       sync.Mutex
	wg       sync.WaitGroup // in-flight public calls; Close drains it
	head     LiveHead
	headCRC  uint32
	lastPoll time.Time
	file     vfs.File
	ra       *xtc.RandomAccessReader
	frames   int // reader-visible frames: the published head's count
	sealed   bool
	closing  bool
	closed   chan struct{}
	// retired holds superseded dropping handles until Close: a concurrent
	// ReadFrameAt may still be reading through a snapshot taken before a
	// head refresh swapped the handle out.
	retired []vfs.File
}

// DefaultLiveStaleness bounds how stale LiveReader.Frames may run behind
// the published head when the caller passes no explicit staleness.
const DefaultLiveStaleness = 50 * time.Millisecond

// OpenLiveReader opens a tailing reader over one tagged subset of a live
// (or already sealed) dataset. staleness bounds how far Frames() may lag
// the published head; <=0 selects DefaultLiveStaleness.
func (a *ADA) OpenLiveReader(logical, tag string, staleness time.Duration) (*LiveReader, error) {
	if staleness <= 0 {
		staleness = DefaultLiveStaleness
	}
	lr := &LiveReader{
		a:         a,
		logical:   logical,
		tag:       tag,
		staleness: staleness,
		closed:    make(chan struct{}),
	}
	h, crc, err := a.liveHeadAndCRC(logical)
	if err != nil {
		return nil, err
	}
	if _, ok := h.Subsets[tag]; !ok {
		return nil, fmt.Errorf("%w: %q in %s (have %v)", ErrUnknownTag, tag, logical, h.Tags())
	}
	lr.mu.Lock()
	err = lr.applyHeadLocked(h, crc)
	lr.lastPoll = time.Now()
	lr.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return lr, nil
}

// enter registers a public call; it fails once Close has begun.
func (lr *LiveReader) enter() error {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.closing {
		return ErrLiveClosed
	}
	lr.wg.Add(1)
	return nil
}

// applyHeadLocked installs a freshly loaded head: reload the subset's
// index, reopen the dropping handle (recovery may have replaced the file
// behind an old handle, so handles are never trusted across publishes),
// and swap the random-access reader. Sealed heads switch to the committed
// container's final droppings.
func (lr *LiveReader) applyHeadLocked(h *LiveHead, crc uint32) error {
	a := lr.a
	if h.Sealed {
		if lr.sealed {
			return nil
		}
		idxBytes, err := a.readDropping(lr.logical, indexPrefix+lr.tag)
		if err != nil {
			return fmt.Errorf("core: live %s subset %s index: %w", lr.logical, lr.tag, err)
		}
		idx, err := xtc.UnmarshalIndex(idxBytes)
		if err != nil {
			return fmt.Errorf("core: live %s subset %s: %w", lr.logical, lr.tag, err)
		}
		f, err := a.containers.OpenDropping(lr.logical, subsetPrefix+lr.tag)
		if err != nil {
			return err
		}
		lr.swapLocked(f, xtc.NewRandomAccessReader(f, idx))
		lr.frames = h.Frames
		lr.sealed = true
		lr.head = *h
		lr.headCRC = crc
		return nil
	}
	if crc == lr.headCRC && lr.ra != nil {
		return nil // unchanged head
	}
	if _, ok := h.Subsets[lr.tag]; !ok {
		return fmt.Errorf("%w: %q in %s", ErrUnknownTag, lr.tag, lr.logical)
	}
	idxBytes, err := a.readDropping(lr.logical, liveIndexPrefix+lr.tag)
	if errors.Is(err, vfs.ErrNotExist) {
		// Seal raced us between the head load and the index load: the
		// live droppings are swept. Reload the head; it must be sealed now.
		h2, crc2, err2 := a.liveHeadAndCRC(lr.logical)
		if err2 != nil {
			return err2
		}
		if h2.Sealed {
			return lr.applyHeadLocked(h2, crc2)
		}
		return err
	}
	if err != nil {
		return fmt.Errorf("core: live %s subset %s index: %w", lr.logical, lr.tag, err)
	}
	idx, err := xtc.UnmarshalIndex(idxBytes)
	if err != nil {
		return fmt.Errorf("core: live %s subset %s: %w", lr.logical, lr.tag, err)
	}
	f, err := a.containers.OpenDropping(lr.logical, stagingPrefix+subsetPrefix+lr.tag)
	if err != nil {
		return err
	}
	frames := h.Frames
	if idx.Frames() < frames {
		// Indexes are published strictly before the head, so this cannot
		// happen on a consistent store; treat it as corruption, not a lag.
		f.Close()
		return fmt.Errorf("core: live %s subset %s: index has %d frames, head %d: %w",
			lr.logical, lr.tag, idx.Frames(), frames, vfs.ErrCorrupted)
	}
	lr.swapLocked(f, xtc.NewRandomAccessReader(f, idx))
	lr.frames = frames
	lr.sealed = false
	lr.head = *h
	lr.headCRC = crc
	return nil
}

func (lr *LiveReader) swapLocked(f vfs.File, ra *xtc.RandomAccessReader) {
	if lr.file != nil {
		lr.retired = append(lr.retired, lr.file)
	}
	lr.file = f
	lr.ra = ra
}

// refreshLocked reloads the head unless the last load is within the
// staleness bound (force skips the bound).
func (lr *LiveReader) refreshLocked(force bool) error {
	if lr.sealed {
		return nil
	}
	if !force && time.Since(lr.lastPoll) < lr.staleness {
		return nil
	}
	h, crc, err := lr.a.liveHeadAndCRC(lr.logical)
	if err != nil {
		return err
	}
	lr.lastPoll = time.Now()
	return lr.applyHeadLocked(h, crc)
}

// Frames returns the published head's frame count, at most staleness old.
// Once sealed it is the final frame count.
func (lr *LiveReader) Frames() int {
	if err := lr.enter(); err != nil {
		return 0
	}
	defer lr.wg.Done()
	lr.mu.Lock()
	defer lr.mu.Unlock()
	_ = lr.refreshLocked(false) // best effort; a failed poll keeps the last head
	return lr.frames
}

// Head returns the most recently loaded head (refreshing within the
// staleness bound) — frames, per-subset bytes, sealed state.
func (lr *LiveReader) Head() (LiveHead, error) {
	if err := lr.enter(); err != nil {
		return LiveHead{}, err
	}
	defer lr.wg.Done()
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if err := lr.refreshLocked(false); err != nil {
		return LiveHead{}, err
	}
	return lr.head, nil
}

// Live reports whether the dataset is still growing. It is the tail-mode
// marker vmd's prefetcher keys on.
func (lr *LiveReader) Live() bool {
	if err := lr.enter(); err != nil {
		return false
	}
	defer lr.wg.Done()
	lr.mu.Lock()
	defer lr.mu.Unlock()
	_ = lr.refreshLocked(false)
	return !lr.sealed
}

// ConcurrentFrameReads reports that ReadFrameAt is safe for concurrent use,
// so playback prefetchers may decode ahead on background workers.
func (lr *LiveReader) ConcurrentFrameReads() bool { return true }

// ReadFrameAt decodes subset frame i. A frame at or past the live head
// blocks until the producer publishes it (or the dataset seals — then
// io.EOF past the final frame, like any FrameSource). Close unblocks
// waiters with ErrLiveClosed.
func (lr *LiveReader) ReadFrameAt(i int) (*xtc.Frame, error) {
	if err := lr.enter(); err != nil {
		return nil, err
	}
	defer lr.wg.Done()
	for {
		lr.mu.Lock()
		if lr.closing {
			lr.mu.Unlock()
			return nil, ErrLiveClosed
		}
		if i < lr.frames {
			ra := lr.ra
			lr.mu.Unlock()
			return ra.ReadFrameAt(i)
		}
		if lr.sealed {
			lr.mu.Unlock()
			return nil, io.EOF
		}
		crc := lr.headCRC
		lr.mu.Unlock()

		h, newCRC, changed, err := lr.a.WaitLiveHead(lr.logical, crc, liveWaitSlice)
		if err != nil {
			return nil, err
		}
		select {
		case <-lr.closed:
			return nil, ErrLiveClosed
		default:
		}
		if changed {
			lr.mu.Lock()
			err := lr.applyHeadLocked(h, newCRC)
			lr.lastPoll = time.Now()
			lr.mu.Unlock()
			if err != nil {
				return nil, err
			}
		}
	}
}

// WaitFrames blocks until the head reaches at least n frames, the dataset
// seals, or the timeout elapses; it returns the head's frame count at that
// point. The caller distinguishes timeout from progress by the count.
func (lr *LiveReader) WaitFrames(n int, timeout time.Duration) (int, error) {
	if err := lr.enter(); err != nil {
		return 0, err
	}
	defer lr.wg.Done()
	deadline := time.Now().Add(timeout)
	for {
		lr.mu.Lock()
		frames, sealed, crc := lr.frames, lr.sealed, lr.headCRC
		lr.mu.Unlock()
		if frames >= n || sealed {
			return frames, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return frames, nil
		}
		if remaining > liveWaitSlice {
			remaining = liveWaitSlice
		}
		h, newCRC, changed, err := lr.a.WaitLiveHead(lr.logical, crc, remaining)
		if err != nil {
			return frames, err
		}
		select {
		case <-lr.closed:
			return frames, ErrLiveClosed
		default:
		}
		if changed {
			lr.mu.Lock()
			err := lr.applyHeadLocked(h, newCRC)
			lr.lastPoll = time.Now()
			lr.mu.Unlock()
			if err != nil {
				return frames, err
			}
		}
	}
}

// Close unblocks waiters, drains in-flight reads, and releases every
// dropping handle the reader accumulated across head refreshes.
func (lr *LiveReader) Close() error {
	lr.mu.Lock()
	if lr.closing {
		lr.mu.Unlock()
		return nil
	}
	lr.closing = true
	close(lr.closed)
	lr.mu.Unlock()
	lr.wg.Wait()
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.file != nil {
		lr.file.Close()
		lr.file = nil
	}
	for _, f := range lr.retired {
		f.Close()
	}
	lr.retired = nil
	lr.ra = nil
	return nil
}
