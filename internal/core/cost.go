package core

// StorageCost models the storage node's CPU rates for the pre-processing
// work ADA off-loads from compute nodes. Rates are bytes per second of
// virtual time; set a rate to zero to charge nothing for that stage (useful
// in pure-functional tests).
//
// The defaults are calibrated against the measured throughput of this
// repository's own XTC codec on a ~2 GHz server core, which reproduces the
// paper's central observation that decompression, not I/O, dominates the
// data-processing turnaround (Sections 4.1-4.3).
type StorageCost struct {
	// PDBParseBps is the structure-file analysis rate (Algorithm 1 input).
	PDBParseBps float64
	// DecompressBps is the XTC decompression rate over compressed bytes.
	DecompressBps float64
	// CategorizeBps is the split-and-scatter rate over raw (decompressed)
	// bytes when dividing frames into tagged subsets.
	CategorizeBps float64
	// CPUFactor scales all rates (1 = the calibration platform). Slower
	// platform cores use a factor < 1.
	CPUFactor float64
}

// DefaultStorageCost returns the calibrated storage-node rates. The
// decompression rate matches this repository's real codec throughput; the
// categorize rate mirrors the compute-side scan rate (the same
// stream-and-split pass, run on the storage node instead).
func DefaultStorageCost() StorageCost {
	return StorageCost{
		PDBParseBps:   100e6,
		DecompressBps: 125e6,
		CategorizeBps: 650e6,
		CPUFactor:     1,
	}
}

func (c StorageCost) factor() float64 {
	if c.CPUFactor <= 0 {
		return 1
	}
	return c.CPUFactor
}

// parseTime returns the virtual seconds to analyze n bytes of .pdb data.
func (c StorageCost) parseTime(n int64) float64 {
	if c.PDBParseBps <= 0 {
		return 0
	}
	return float64(n) / (c.PDBParseBps * c.factor())
}

// decompressTime returns the virtual seconds to decompress n compressed bytes.
func (c StorageCost) decompressTime(n int64) float64 {
	if c.DecompressBps <= 0 {
		return 0
	}
	return float64(n) / (c.DecompressBps * c.factor())
}

// categorizeTime returns the virtual seconds to split n raw bytes by tag.
func (c StorageCost) categorizeTime(n int64) float64 {
	if c.CategorizeBps <= 0 {
		return 0
	}
	return float64(n) / (c.CategorizeBps * c.factor())
}
