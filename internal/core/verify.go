package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/metrics"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// Verified reads. Datasets ingested with checksums carry a per-frame CRC32C
// in their v2 index; the read path verifies each frame lazily as it is
// fetched. A frame that fails its checksum (or a primary that will not open
// at all) fails over to the subset's replica when one was ingested; the
// replica is byte-identical, so the caller sees the same frames it would
// have read from a healthy primary. Only when every copy is bad does the
// read surface vfs.ErrCorrupted.

// verifyMetrics counts checksum verification on the read path.
type verifyMetrics struct {
	frames    *metrics.Counter // core.verify.frames: frames that passed
	bytes     *metrics.Counter // core.verify.bytes: payload bytes checksummed
	corrupted *metrics.Counter // core.verify.corrupted: checksum mismatches
}

func newVerifyMetrics(reg *metrics.Registry) verifyMetrics {
	return verifyMetrics{
		frames:    reg.Counter("core.verify.frames"),
		bytes:     reg.Counter("core.verify.bytes"),
		corrupted: reg.Counter("core.verify.corrupted"),
	}
}

// failoverMetrics counts reads redirected to a replica.
type failoverMetrics struct {
	opens    *metrics.Counter // core.failover.opens: replica handles opened
	reads    *metrics.Counter // core.failover.reads: frames served by a replica
	failures *metrics.Counter // core.failover.failures: no copy could serve
}

func newFailoverMetrics(reg *metrics.Registry) failoverMetrics {
	return failoverMetrics{
		opens:    reg.Counter("core.failover.opens"),
		reads:    reg.Counter("core.failover.reads"),
		failures: reg.Counter("core.failover.failures"),
	}
}

// verifiedSubset serves one subset's frames with per-frame checksum
// verification and replica failover. Safe for concurrent ReadFrameAt use
// (vfs.File.ReadAt is concurrency-safe by contract; the replica handle is
// opened under a mutex).
type verifiedSubset struct {
	a       *ADA
	logical string
	tag     string
	info    Subset
	idx     *xtc.Index
	primary vfs.File // nil when the primary would not open (failover-opened)

	mu           sync.Mutex
	replica      vfs.File
	replicaErr   error
	replicaTried bool
}

// openVerifiedSubset builds the verified read path for one subset, or
// returns (nil, nil) when the dataset predates checksums (no v2 index), in
// which case the caller falls back to the unverified path.
func (a *ADA) openVerifiedSubset(logical string, info Subset) (*verifiedSubset, error) {
	tag := info.Tag
	v := &verifiedSubset{a: a, logical: logical, tag: tag, info: info}

	if idxBytes, err := a.readDropping(logical, indexPrefix+tag); err == nil {
		if idx, err := xtc.UnmarshalIndex(idxBytes); err == nil && idx.HasChecksums() {
			v.idx = idx
		}
	}
	if v.idx == nil && info.Replica != "" {
		// Primary index unreadable or corrupt: the replica carries a
		// byte-identical copy.
		if idxBytes, err := a.readDropping(logical, replicaPrefix+indexPrefix+tag); err == nil {
			if idx, err := xtc.UnmarshalIndex(idxBytes); err == nil && idx.HasChecksums() {
				v.idx = idx
				a.fm.opens.Inc()
			}
		}
	}
	if v.idx == nil {
		// No checksummed index survives anywhere: either a legacy dataset
		// or index damage without a replica. Reads degrade to the
		// unverified path (fsck still reports the damage).
		return nil, nil
	}

	f, err := a.containers.OpenDropping(logical, subsetPrefix+tag)
	if err != nil {
		if info.Replica == "" {
			return nil, err
		}
		// Primary gone or its backend down: serve everything from the
		// replica.
		v.primary = nil
	} else {
		v.primary = f
	}
	return v, nil
}

// openReplica lazily opens the replica dropping once.
func (v *verifiedSubset) openReplica() (vfs.File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.replicaTried {
		return v.replica, v.replicaErr
	}
	v.replicaTried = true
	if v.info.Replica == "" {
		v.replicaErr = fmt.Errorf("core: subset %s has no replica", v.tag)
		return nil, v.replicaErr
	}
	v.replica, v.replicaErr = v.a.containers.OpenDropping(v.logical, replicaPrefix+subsetPrefix+v.tag)
	if v.replicaErr == nil {
		v.a.fm.opens.Inc()
	}
	return v.replica, v.replicaErr
}

// frameBytes fetches frame i's encoded bytes, verified. The primary is
// tried first; on a checksum mismatch or read error the replica serves the
// same byte range.
func (v *verifiedSubset) frameBytes(i int) ([]byte, error) {
	if i < 0 || i >= v.idx.Frames() {
		return nil, fmt.Errorf("core: subset %s frame %d out of range [0,%d)", v.tag, i, v.idx.Frames())
	}
	size := v.idx.Size(i)
	off := v.idx.Offset(i)
	want := v.idx.CRC(i)
	buf := make([]byte, size)
	if v.primary != nil {
		n, err := v.primary.ReadAt(buf, off)
		if (err == nil || err == io.EOF) && int64(n) == size {
			v.a.vm.bytes.Add(size)
			if xtc.CRC32C(buf) == want {
				v.a.vm.frames.Inc()
				v.a.noteAccess(v.logical, subsetPrefix+v.tag, size)
				return buf, nil
			}
			v.a.vm.corrupted.Inc()
		}
	}
	rf, err := v.openReplica()
	if err != nil {
		v.a.fm.failures.Inc()
		return nil, fmt.Errorf("core: subset %s frame %d: %w", v.tag, i, vfs.ErrCorrupted)
	}
	n, err := rf.ReadAt(buf, off)
	if (err == nil || err == io.EOF) && int64(n) == size {
		v.a.vm.bytes.Add(size)
		if xtc.CRC32C(buf) == want {
			v.a.fm.reads.Inc()
			v.a.vm.frames.Inc()
			v.a.noteAccess(v.logical, subsetPrefix+v.tag, size)
			return buf, nil
		}
		v.a.vm.corrupted.Inc()
	}
	v.a.fm.failures.Inc()
	return nil, fmt.Errorf("core: subset %s frame %d: primary and replica both fail verification: %w",
		v.tag, i, vfs.ErrCorrupted)
}

// frame fetches and decodes frame i.
func (v *verifiedSubset) frame(i int) (*xtc.Frame, error) {
	buf, err := v.frameBytes(i)
	if err != nil {
		return nil, err
	}
	return xtc.DecodeFrameBytes(buf)
}

// frames returns the subset's frame count.
func (v *verifiedSubset) frames() int { return v.idx.Frames() }

// size returns the subset's stored byte length.
func (v *verifiedSubset) size() int64 { return v.idx.TotalBytes() }

func (v *verifiedSubset) close() error {
	var first error
	if v.primary != nil {
		first = v.primary.Close()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.replica != nil {
		if err := v.replica.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
