package core

import (
	"bytes"
	"testing"

	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/vfs"
)

const sampleSchema = `{
  "name": "binding-site-study",
  "rules": [
    {"tag": "site", "residues": ["TRP", "PHE"]},
    {"tag": "backbone", "categories": ["protein"]},
    {"tag": "solvent", "categories": ["water", "ion"]},
    {"tag": "hetero", "hetatm": true}
  ],
  "default_tag": "rest",
  "placement": {"site": "ssd", "backbone": "ssd", "solvent": "hdd"}
}`

func TestParseSchema(t *testing.T) {
	s, err := ParseSchema([]byte(sampleSchema))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "binding-site-study" || len(s.Rules) != 4 || s.DefaultTag != "rest" {
		t.Errorf("schema = %+v", s)
	}
	// Round trip.
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSchema(data); err != nil {
		t.Fatal(err)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`{"name": "x", "rules": [], "default_tag": "d"}`,
		`{"name": "x", "rules": [{"tag": "a", "residues": ["X"]}]}`,                           // no default
		`{"name": "x", "rules": [{"residues": ["X"]}], "default_tag": "d"}`,                   // no tag
		`{"name": "x", "rules": [{"tag": "a"}], "default_tag": "d"}`,                          // matches nothing
		`{"name": "x", "rules": [{"tag": "a/b", "residues": ["X"]}], "default_tag": "d"}`,     // bad tag
		`{"name": "x", "rules": [{"tag": "a", "categories": ["bogus"]}], "default_tag": "d"}`, // bad category
		`{"name": "x", "rules": [{"tag": "a", "residues": ["X"]}], "default_tag": "d",
		  "placement": {"zzz": "ssd"}}`, // unknown placement tag
	}
	for _, s := range bad {
		if _, err := ParseSchema([]byte(s)); err == nil {
			t.Errorf("ParseSchema(%q) should fail", s)
		}
	}
}

func TestTagFor(t *testing.T) {
	s, err := ParseSchema([]byte(sampleSchema))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		atom pdb.Atom
		want string
	}{
		{pdb.Atom{ResName: "TRP", Category: pdb.Protein}, "site"},
		{pdb.Atom{ResName: "trp", Category: pdb.Protein}, "site"}, // case-insensitive
		{pdb.Atom{ResName: "ALA", Category: pdb.Protein}, "backbone"},
		{pdb.Atom{ResName: "SOL", Category: pdb.Water}, "solvent"},
		{pdb.Atom{ResName: "SOD", Category: pdb.Ion, HetAtm: true}, "solvent"},
		{pdb.Atom{ResName: "LIG", Category: pdb.Ligand, HetAtm: true}, "hetero"},
		{pdb.Atom{ResName: "POPC", Category: pdb.Lipid}, "rest"},
	}
	for _, c := range cases {
		if got := s.TagFor(c.atom); got != c.want {
			t.Errorf("TagFor(%s) = %q, want %q", c.atom.ResName, got, c.want)
		}
	}
}

func TestRuleConjunction(t *testing.T) {
	het := true
	r := Rule{Tag: "x", Residues: []string{"LIG"}, HetAtm: &het, Elements: []string{"C"}}
	if !r.matches(pdb.Atom{ResName: "LIG", HetAtm: true, Element: "C"}) {
		t.Error("full match failed")
	}
	if r.matches(pdb.Atom{ResName: "LIG", HetAtm: false, Element: "C"}) {
		t.Error("hetatm condition ignored")
	}
	if r.matches(pdb.Atom{ResName: "LIG", HetAtm: true, Element: "N"}) {
		t.Error("element condition ignored")
	}
	pr := Rule{Tag: "y", Prefixes: []string{"PO"}}
	if !pr.matches(pdb.Atom{ResName: "POPC"}) || pr.matches(pdb.Atom{ResName: "SOL"}) {
		t.Error("prefix matching wrong")
	}
}

func TestSchemaTagRangesPartition(t *testing.T) {
	s, err := ParseSchema([]byte(sampleSchema))
	if err != nil {
		t.Fatal(err)
	}
	structure := mkStructure(pdb.Protein, 5, pdb.Water, 3, pdb.Protein, 2, pdb.Lipid, 4)
	// Give two protein atoms a "site" residue.
	structure.Atoms[1].ResName = "TRP"
	structure.Atoms[2].ResName = "TRP"
	tr := s.TagRanges(structure)
	covered := make([]int, structure.NAtoms())
	for _, l := range tr {
		l.Each(func(i int) bool { covered[i]++; return true })
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("atom %d covered %d times", i, c)
		}
	}
	if got := tr["site"].String(); got != "1-3" {
		t.Errorf("site ranges = %s", got)
	}
	if got := tr["rest"].String(); got != "10-14" {
		t.Errorf("rest ranges = %s", got)
	}
}

func TestIngestWithSchema(t *testing.T) {
	schema, err := ParseSchema([]byte(sampleSchema))
	if err != nil {
		t.Fatal(err)
	}
	pdbBytes, traj, _ := testDataset(t, 200, 2)
	ssd := vfs.NewMemFS()
	hdd := vfs.NewMemFS()
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/m1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/m2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := New(containers, nil, Options{Schema: schema})
	rep, err := a.Ingest("/ds", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic system contains TRP and PHE residues, so "site" exists.
	for _, tag := range []string{"site", "backbone", "solvent"} {
		if rep.Subsets[tag] == 0 {
			t.Errorf("subset %q missing or empty: %v", tag, rep.Subsets)
		}
	}
	m, err := a.Manifest("/ds")
	if err != nil {
		t.Fatal(err)
	}
	if m.Granularity != "schema:binding-site-study" {
		t.Errorf("granularity = %q", m.Granularity)
	}
	if m.Subsets["site"].Backend != "ssd" || m.Subsets["solvent"].Backend != "hdd" {
		t.Errorf("placement = %+v", m.Placement)
	}
	// "rest" (lipids) has no placement entry: defaults to the last backend.
	if m.Subsets["rest"].Backend != "hdd" {
		t.Errorf("rest backend = %q", m.Subsets["rest"].Backend)
	}
	// Subsets are readable by their schema tags.
	sr, err := a.OpenSubset("/ds", "site")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	f, err := sr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.NAtoms() != sr.Ranges.Count() || f.NAtoms() == 0 {
		t.Errorf("site frame atoms = %d", f.NAtoms())
	}
	// Total subset atoms must partition the system.
	total := 0
	for _, s := range m.Subsets {
		total += s.NAtoms
	}
	if total != m.NAtoms {
		t.Errorf("subsets cover %d of %d atoms", total, m.NAtoms)
	}
}
