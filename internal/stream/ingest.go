package stream

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// DefaultQueueBatches is the default bound of the ingestor's append queue.
const DefaultQueueBatches = 16

// Ingestor pumps frame batches from a producer into a core.LiveIngest
// through a bounded queue. A single drain goroutine preserves append order;
// when the queue is full, Enqueue blocks the producer — that stall is the
// backpressure signal, surfaced via stream.append.blocked_ns.
type Ingestor struct {
	li    *core.LiveIngest
	queue chan []byte

	mu     sync.Mutex
	err    error // first drain error; fails all later Enqueues
	closed bool

	done chan struct{}

	frames    *metrics.Counter
	bytes     *metrics.Counter
	appendNS  *metrics.Histogram
	blockedNS *metrics.Counter
	depth     *metrics.Gauge
	hwm       *metrics.Gauge
	publishes *metrics.Counter
}

// NewIngestor wraps an open live session. queueBatches bounds the append
// queue (0 means DefaultQueueBatches); reg may be nil.
func NewIngestor(li *core.LiveIngest, queueBatches int, reg *metrics.Registry) *Ingestor {
	if queueBatches <= 0 {
		queueBatches = DefaultQueueBatches
	}
	ing := &Ingestor{
		li:    li,
		queue: make(chan []byte, queueBatches),
		done:  make(chan struct{}),
	}
	if reg != nil {
		ing.frames = reg.Counter("stream.append.frames")
		ing.bytes = reg.Counter("stream.append.bytes")
		ing.appendNS = reg.Histogram("stream.append.ns")
		ing.blockedNS = reg.Counter("stream.append.blocked_ns")
		ing.depth = reg.Gauge("stream.queue.depth")
		ing.hwm = reg.Gauge("stream.queue.hwm")
		ing.publishes = reg.Counter("stream.publishes")
	}
	go ing.drain()
	return ing
}

// Enqueue hands one encoded frame batch to the drain loop, blocking while
// the queue is full. The batch is appended asynchronously; a failed append
// surfaces on the next Enqueue, Err, or Close. The ingestor takes ownership
// of the slice — the caller must not reuse it.
func (ing *Ingestor) Enqueue(batch []byte) error {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return fmt.Errorf("stream: ingestor closed")
	}
	if err := ing.err; err != nil {
		ing.mu.Unlock()
		return err
	}
	ing.mu.Unlock()

	select {
	case ing.queue <- batch:
	default:
		// Queue full: block, and account the stall as backpressure.
		start := time.Now()
		ing.queue <- batch
		if ing.blockedNS != nil {
			ing.blockedNS.Add(time.Since(start).Nanoseconds())
		}
	}
	if ing.depth != nil {
		d := int64(len(ing.queue))
		ing.depth.Set(d)
		ing.hwm.SetMax(d)
	}
	return nil
}

// drain is the single writer: it preserves producer order and publishes a
// head per batch via LiveIngest.Append.
func (ing *Ingestor) drain() {
	defer close(ing.done)
	for batch := range ing.queue {
		if ing.depth != nil {
			ing.depth.Set(int64(len(ing.queue)))
		}
		ing.mu.Lock()
		failed := ing.err != nil
		ing.mu.Unlock()
		if failed {
			continue // already broken: discard the backlog
		}
		start := time.Now()
		n, err := ing.li.Append(batch)
		if ing.appendNS != nil {
			ing.appendNS.Observe(time.Since(start).Nanoseconds())
		}
		if n > 0 {
			if ing.frames != nil {
				ing.frames.Add(int64(n))
			}
			if ing.publishes != nil {
				ing.publishes.Inc()
			}
			if ing.bytes != nil {
				ing.bytes.Add(int64(len(batch)))
			}
		}
		if err != nil {
			ing.mu.Lock()
			ing.err = fmt.Errorf("stream: append: %w", err)
			ing.mu.Unlock()
		}
	}
}

// Frames reports how many frames the underlying session has accepted.
func (ing *Ingestor) Frames() int { return ing.li.Frames() }

// Err returns the first append failure, if any.
func (ing *Ingestor) Err() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.err
}

// Close drains the queue, seals the dataset, and returns the sealed report.
// If any append failed, the session is aborted instead and the first error
// returned. The producer must stop calling Enqueue before Close — the queue
// is closed here, and a concurrent send would panic.
func (ing *Ingestor) Close() (*core.IngestReport, error) {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return nil, fmt.Errorf("stream: ingestor closed")
	}
	ing.closed = true
	ing.mu.Unlock()

	close(ing.queue)
	<-ing.done
	if ing.depth != nil {
		ing.depth.Set(0)
	}

	if err := ing.Err(); err != nil {
		ing.li.Abort()
		return nil, err
	}
	return ing.li.Seal()
}

// Abort discards the queue and removes the dataset.
func (ing *Ingestor) Abort() error {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return nil
	}
	ing.closed = true
	ing.mu.Unlock()
	close(ing.queue)
	<-ing.done
	return ing.li.Abort()
}
