// Package stream is the live-container subsystem: a producer appends frame
// batches to an open dataset through a bounded queue while readers tail the
// growing head with bounded staleness.
//
// The package is a thin orchestration layer over internal/core. The writer
// half (Ingestor) wraps core.LiveIngest with a bounded append queue so a
// bursty producer decouples from storage latency and backpressure becomes
// observable: when the queue is full, Enqueue blocks and the stall is
// recorded in stream.append.blocked_ns. The reader half (Source) wraps
// core.LiveReader into a vmd.FrameSource whose head advances as the
// producer publishes, with tail lag surfaced per read.
//
// All metrics live under the stream.* prefix:
//
//	stream.append.frames      frames accepted by the drain loop
//	stream.append.bytes       encoded bytes appended
//	stream.append.ns          per-batch Append latency histogram
//	stream.append.blocked_ns  producer time spent blocked on a full queue
//	stream.queue.depth        current queue depth (gauge)
//	stream.queue.hwm          high-water mark of the queue depth
//	stream.publishes          head publications observed by the ingestor
//	stream.tail.lag_frames    head-minus-position lag per tailing read
package stream

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/xtc"
)

// DefaultStaleness bounds how old a tailing reader's view of the head may
// be: a reader re-checks the published head at least this often while
// serving reads, so a frame is visible at most one staleness interval after
// publication (plus the read itself).
const DefaultStaleness = core.DefaultLiveStaleness

// Options configures a tailing Source.
type Options struct {
	// Staleness bounds how stale the reader's cached head may be.
	// Zero means DefaultStaleness.
	Staleness time.Duration
	// Metrics receives stream.* series. Nil disables instrumentation.
	Metrics *metrics.Registry
}

// Source tails one subset of a live dataset. It implements vmd.FrameSource
// and vmd's tail-mode marker (Live), so a PrefetchSource wrapping it pins
// prediction to head+1 and parks a worker as the head watcher.
type Source struct {
	lr  *core.LiveReader
	lag *metrics.Histogram
}

// Open starts tailing logical's subset tag.
func Open(a *core.ADA, logical, tag string, opts Options) (*Source, error) {
	lr, err := a.OpenLiveReader(logical, tag, opts.Staleness)
	if err != nil {
		return nil, err
	}
	s := &Source{lr: lr}
	if opts.Metrics != nil {
		s.lag = opts.Metrics.Histogram("stream.tail.lag_frames")
	}
	return s, nil
}

// Frames reports the current head position (frames visible so far).
func (s *Source) Frames() int { return s.lr.Frames() }

// Live reports whether the dataset is still growing. vmd.NewPrefetchSource
// checks this to enable tail mode.
func (s *Source) Live() bool { return s.lr.Live() }

// ConcurrentFrameReads marks the source safe for parallel readers.
func (s *Source) ConcurrentFrameReads() bool { return true }

// Head returns the current live head snapshot.
func (s *Source) Head() (core.LiveHead, error) { return s.lr.Head() }

// ReadFrameAt returns frame i, blocking while i is past the current head of
// a live dataset until the producer publishes it (or the source is closed).
// Past the end of a sealed dataset it returns io.EOF.
func (s *Source) ReadFrameAt(i int) (*xtc.Frame, error) {
	if s.lag != nil {
		if head := s.lr.Frames(); head > i {
			s.lag.Observe(int64(head - 1 - i))
		} else {
			s.lag.Observe(0)
		}
	}
	return s.lr.ReadFrameAt(i)
}

// WaitFrames blocks until at least n frames are visible, the timeout
// elapses, or the dataset seals; it returns the visible frame count.
func (s *Source) WaitFrames(n int, timeout time.Duration) (int, error) {
	return s.lr.WaitFrames(n, timeout)
}

// Close releases the source. A reader blocked in ReadFrameAt is unblocked
// with core.ErrLiveClosed.
func (s *Source) Close() error { return s.lr.Close() }
