package stream

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/metrics"
	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// testDataset builds a small synthetic dataset: pdb bytes plus a compressed
// trajectory with the given frame count.
func testDataset(t testing.TB, scale, frames int) (pdbBytes, traj []byte) {
	t.Helper()
	sys, err := gpcr.Scaled(scale).Build()
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := pdb.Write(&pb, sys.Structure); err != nil {
		t.Fatal(err)
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	s, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := s.WriteTrajectory(xtc.NewWriter(&tb), frames); err != nil {
		t.Fatal(err)
	}
	return pb.Bytes(), tb.Bytes()
}

// splitFrames cuts an encoded trajectory at frame boundaries.
func splitFrames(t testing.TB, traj []byte) [][]byte {
	t.Helper()
	idx, err := xtc.BuildIndex(bytes.NewReader(traj), int64(len(traj)))
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, idx.Frames())
	for i := 0; i < idx.Frames(); i++ {
		out[i] = traj[idx.Offset(i) : idx.Offset(i)+idx.Size(i)]
	}
	return out
}

func batchFrames(frames [][]byte, n int) [][]byte {
	var out [][]byte
	for len(frames) > 0 {
		k := n
		if k > len(frames) {
			k = len(frames)
		}
		var b []byte
		for _, f := range frames[:k] {
			b = append(b, f...)
		}
		out = append(out, b)
		frames = frames[k:]
	}
	return out
}

func newStore(t testing.TB, ssd, hdd vfs.FS) *plfs.FS {
	t.Helper()
	store, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// readSealed decodes every frame of the sealed subset straight from the
// container bytes — the ground truth tailing readers are compared against.
func readSealed(t *testing.T, a *core.ADA, logical, tag string) []*xtc.Frame {
	t.Helper()
	src, err := a.OpenSubsetAt(logical, tag)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	frames := make([]*xtc.Frame, src.Frames())
	for i := range frames {
		f, err := src.ReadFrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	return frames
}

func frameEqual(a, b *xtc.Frame) bool {
	if a.NAtoms() != b.NAtoms() {
		return false
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			return false
		}
	}
	return a.Box == b.Box && a.Step == b.Step && a.Time == b.Time
}

// tailAll tails the protein subset from frame 0 until EOF, recording every
// observed frame. Errors are reported on errc.
func tailAll(src *Source, out *[]*xtc.Frame, mu *sync.Mutex, errc chan<- error, wg *sync.WaitGroup) {
	defer wg.Done()
	for i := 0; ; i++ {
		f, err := src.ReadFrameAt(i)
		if err == io.EOF {
			return
		}
		if err != nil {
			errc <- err
			return
		}
		mu.Lock()
		*out = append(*out, f)
		mu.Unlock()
	}
}

// TestTailSeesEveryPrefix is the headline streaming test: a producer
// appends through the bounded ingestor queue while concurrent tailing
// readers follow the head; every frame any reader observes must be
// byte-identical to the same frame of the final sealed container. The kill
// subtest crashes the producer's file system mid-append, reboots, recovers,
// resumes, and seals — readers tail across the crash.
func TestTailSeesEveryPrefix(t *testing.T) {
	const frames = 48
	pdbBytes, traj := testDataset(t, 200, frames)
	batches := batchFrames(splitFrames(t, traj), 5)

	run := func(t *testing.T, kill bool) {
		ssd, hdd := vfs.NewMemFS(), vfs.NewMemFS()

		// Readers view the same storage through their own unfaulted stack,
		// like a remote node: the producer process dying must not take the
		// tail down with it.
		readerADA := core.New(newStore(t, ssd, hdd), nil, core.Options{Metrics: metrics.NewRegistry()})

		producerFS := [2]vfs.FS{ssd, hdd}
		if kill {
			// Probe the op count of a full clean session on scratch storage,
			// then kill the real one roughly 60% of the way through — far
			// enough in that frames have been published, well short of seal.
			probe := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindErr, Op: "no-such-op", Nth: 1})
			pa := core.New(newStore(t, faultfs.Wrap(vfs.NewMemFS(), probe), faultfs.Wrap(vfs.NewMemFS(), probe)),
				nil, core.Options{Metrics: metrics.NewRegistry()})
			pli, err := pa.OpenLiveIngest("/ds", pdbBytes)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				if _, err := pli.Append(b); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := pli.Seal(); err != nil {
				t.Fatal(err)
			}
			in := faultfs.MustNew(7, faultfs.Rule{Kind: faultfs.KindKill, Nth: int(probe.Ops() * 3 / 5)})
			producerFS[0] = faultfs.Wrap(ssd, in)
			producerFS[1] = faultfs.Wrap(hdd, in)
		}
		producerADA := core.New(newStore(t, producerFS[0], producerFS[1]), nil,
			core.Options{Metrics: metrics.NewRegistry()})

		li, err := producerADA.OpenLiveIngest("/ds", pdbBytes)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		ing := NewIngestor(li, 4, reg)

		// Two concurrent tails, started before any frame exists.
		var mu sync.Mutex
		var seen [2][]*xtc.Frame
		errc := make(chan error, 4)
		var wg sync.WaitGroup
		var tails [2]*Source
		for r := 0; r < 2; r++ {
			src, err := Open(readerADA, "/ds", core.TagProtein, Options{Staleness: time.Millisecond, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			tails[r] = src
			wg.Add(1)
			go tailAll(src, &seen[r], &mu, errc, &wg)
		}

		for _, b := range batches {
			if err := ing.Enqueue(b); err != nil {
				break // append failed downstream (the kill); handled below
			}
		}
		rep, err := ing.Close()
		if kill {
			if err == nil {
				t.Fatal("kill run: ingestor closed cleanly; kill never fired")
			}
			// The producer crashed. Reboot on the surviving storage, recover,
			// resume the live session, and run it to seal.
			reboot := core.New(newStore(t, ssd, hdd), nil, core.Options{Metrics: metrics.NewRegistry()})
			acts, err := reboot.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if acts["/ds"] != core.RecoveryLive {
				t.Fatalf("recovery action = %v, want live", acts["/ds"])
			}
			li2, err := reboot.ResumeLiveIngest("/ds", pdbBytes)
			if err != nil {
				t.Fatal(err)
			}
			perFrame := splitFrames(t, traj)
			for _, f := range perFrame[li2.Frames():] {
				if _, err := li2.Append(f); err != nil {
					t.Fatal(err)
				}
			}
			if rep, err = li2.Seal(); err != nil {
				t.Fatal(err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
		if rep.Frames != frames {
			t.Fatalf("sealed %d frames, want %d", rep.Frames, frames)
		}

		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatalf("tail: %v", err)
		}
		for r := range tails {
			if err := tails[r].Close(); err != nil {
				t.Fatal(err)
			}
		}

		want := readSealed(t, readerADA, "/ds", core.TagProtein)
		if len(want) != frames {
			t.Fatalf("sealed subset has %d frames", len(want))
		}
		for r := range seen {
			if len(seen[r]) != frames {
				t.Fatalf("reader %d observed %d frames, want %d", r, len(seen[r]), frames)
			}
			for i, f := range seen[r] {
				if !frameEqual(f, want[i]) {
					t.Fatalf("reader %d frame %d differs from sealed container", r, i)
				}
			}
		}
		if reg.Counter("stream.publishes").Value() == 0 {
			t.Error("no publishes recorded")
		}
		if reg.Histogram("stream.tail.lag_frames").Count() == 0 {
			t.Error("no tail lag observations recorded")
		}
	}

	t.Run("clean", func(t *testing.T) { run(t, false) })
	t.Run("kill", func(t *testing.T) { run(t, true) })
}

// TestIngestorBackpressure forces the bounded queue to fill: with every
// backend op slowed, the producer outruns the drain loop and Enqueue must
// block, surfacing the stall through stream.append.blocked_ns.
func TestIngestorBackpressure(t *testing.T) {
	const frames = 24
	pdbBytes, traj := testDataset(t, 200, frames)

	in := faultfs.MustNew(1, faultfs.Rule{Kind: faultfs.KindSlow, Delay: 2 * time.Millisecond})
	ssd, hdd := vfs.NewMemFS(), vfs.NewMemFS()
	a := core.New(newStore(t, faultfs.Wrap(ssd, in), faultfs.Wrap(hdd, in)), nil,
		core.Options{Metrics: metrics.NewRegistry()})

	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	ing := NewIngestor(li, 1, reg)
	for _, f := range splitFrames(t, traj) {
		if err := ing.Enqueue(f); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ing.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != frames {
		t.Fatalf("sealed %d frames", rep.Frames)
	}
	if v := reg.Counter("stream.append.blocked_ns").Value(); v == 0 {
		t.Error("queue never applied backpressure (blocked_ns = 0)")
	}
	if v := reg.Gauge("stream.queue.hwm").Value(); v < 1 {
		t.Errorf("queue high-water mark = %d", v)
	}
	if v := reg.Counter("stream.append.frames").Value(); v != frames {
		t.Errorf("append.frames = %d", v)
	}
	if v := reg.Counter("stream.append.bytes").Value(); v != int64(len(traj)) {
		t.Errorf("append.bytes = %d, want %d", v, len(traj))
	}
}

// TestStalenessBound checks the documented staleness contract: after a
// publish, a tailing reader's Frames() reflects the new head within the
// configured staleness bound (plus scheduling slack).
func TestStalenessBound(t *testing.T) {
	pdbBytes, traj := testDataset(t, 200, 8)
	ssd, hdd := vfs.NewMemFS(), vfs.NewMemFS()
	a := core.New(newStore(t, ssd, hdd), nil, core.Options{Metrics: metrics.NewRegistry()})
	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}
	const bound = 5 * time.Millisecond
	src, err := Open(a, "/ds", core.TagProtein, Options{Staleness: bound})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	perFrame := splitFrames(t, traj)
	for i, f := range perFrame {
		if _, err := li.Append(f); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(bound + 250*time.Millisecond)
		for src.Frames() < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("frame %d not visible %v after publish (staleness bound %v)", i, time.Since(deadline.Add(-bound-250*time.Millisecond)), bound)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := li.Seal(); err != nil {
		t.Fatal(err)
	}
	// After the seal the source flips to the immutable container.
	deadline := time.Now().Add(time.Second)
	for src.Live() {
		if time.Now().After(deadline) {
			t.Fatal("source still live after seal")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngestorFailure: an append error aborts the session on Close and the
// container is removed.
func TestIngestorFailure(t *testing.T) {
	pdbBytes, traj := testDataset(t, 200, 4)
	a := core.New(newStore(t, vfs.NewMemFS(), vfs.NewMemFS()), nil,
		core.Options{Metrics: metrics.NewRegistry()})
	li, err := a.OpenLiveIngest("/ds", pdbBytes)
	if err != nil {
		t.Fatal(err)
	}
	ing := NewIngestor(li, 2, nil)
	// A torn batch (half a frame) fails the decode inside Append.
	perFrame := splitFrames(t, traj)
	if err := ing.Enqueue(perFrame[0][:len(perFrame[0])/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Close(); err == nil {
		t.Fatal("close after torn append succeeded")
	}
	names, err := a.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("aborted session left containers: %v", names)
	}
	if _, err := a.LiveHead("/ds"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("head after abort = %v", err)
	}
}
