package xdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderScalars(t *testing.T) {
	w := NewWriter(64)
	w.Uint32(0xdeadbeef)
	w.Int32(-42)
	w.Uint64(1 << 40)
	w.Int64(-(1 << 40))
	w.Float32(3.5)
	w.Float64(-2.25)

	r := NewReader(w.Bytes())
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x, want 0xdeadbeef", got)
	}
	if got := r.Int32(); got != -42 {
		t.Errorf("Int32 = %d, want -42", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Errorf("Uint64 = %d, want %d", got, uint64(1)<<40)
	}
	if got := r.Int64(); got != -(1 << 40) {
		t.Errorf("Int64 = %d, want %d", got, -(int64(1) << 40))
	}
	if got := r.Float32(); got != 3.5 {
		t.Errorf("Float32 = %v, want 3.5", got)
	}
	if got := r.Float64(); got != -2.25 {
		t.Errorf("Float64 = %v, want -2.25", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestBigEndianLayout(t *testing.T) {
	w := NewWriter(4)
	w.Uint32(0x01020304)
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(w.Bytes(), want) {
		t.Errorf("layout = %v, want %v", w.Bytes(), want)
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		w := NewWriter(16)
		data := bytes.Repeat([]byte{0xab}, n)
		w.Opaque(data)
		if w.Len()%4 != 0 {
			t.Errorf("n=%d: opaque len %d not 4-aligned", n, w.Len())
		}
		r := NewReader(w.Bytes())
		got := r.Opaque(n)
		if !bytes.Equal(got, data) {
			t.Errorf("n=%d: roundtrip = %v, want %v", n, got, data)
		}
		if r.Err() != nil || r.Remaining() != 0 {
			t.Errorf("n=%d: err=%v remaining=%d", n, r.Err(), r.Remaining())
		}
	}
}

func TestVarOpaqueAndString(t *testing.T) {
	w := NewWriter(32)
	w.VarOpaque([]byte("hello"))
	w.String("xtc")
	r := NewReader(w.Bytes())
	if got := string(r.VarOpaque()); got != "hello" {
		t.Errorf("VarOpaque = %q", got)
	}
	if got := r.String(); got != "xtc" {
		t.Errorf("String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.Uint32()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", r.Err())
	}
	// Error is sticky.
	_ = r.Uint32()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("sticky err = %v", r.Err())
	}
}

func TestVarOpaqueBogusLength(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(1 << 30) // absurd length, no data
	r := NewReader(w.Bytes())
	if got := r.VarOpaque(); got != nil {
		t.Errorf("VarOpaque = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", r.Err())
	}
}

func TestFloatRoundTripQuick(t *testing.T) {
	f := func(a float32, b float64) bool {
		w := NewWriter(16)
		w.Float32(a)
		w.Float64(b)
		r := NewReader(w.Bytes())
		ga, gb := r.Float32(), r.Float64()
		eq32 := ga == a || (math.IsNaN(float64(a)) && math.IsNaN(float64(ga)))
		eq64 := gb == b || (math.IsNaN(b) && math.IsNaN(gb))
		return eq32 && eq64 && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntRoundTripQuick(t *testing.T) {
	f := func(a uint32, b int32, c uint64, d int64) bool {
		w := NewWriter(32)
		w.Uint32(a)
		w.Int32(b)
		w.Uint64(c)
		w.Int64(d)
		r := NewReader(w.Bytes())
		return r.Uint32() == a && r.Int32() == b &&
			r.Uint64() == c && r.Int64() == d && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(7)
	w.Reset()
	if w.Len() != 0 {
		t.Errorf("Len after Reset = %d", w.Len())
	}
	w.Uint32(9)
	r := NewReader(w.Bytes())
	if got := r.Uint32(); got != 9 {
		t.Errorf("after reset got %d, want 9", got)
	}
}
