package xdr

import (
	"encoding/binary"
	"fmt"
)

// BitWriter packs values of arbitrary bit width into a byte stream,
// most-significant bit first, matching the packing order used by the
// GROMACS trajectory compressor. It is the mirror of BitReader: bits
// accumulate right-aligned in a 64-bit register and drain to the buffer in
// bulk 8-byte stores, so the common small-width writes on the XTC encode
// hot path are a shift and an or instead of a per-byte loop.
type BitWriter struct {
	buf    []byte
	acc    uint64 // low n bits are valid, MSB-first stream order
	n      uint   // valid bits in acc (0..63 between calls)
	closed bool
}

// NewBitWriter returns a BitWriter with the given initial byte capacity.
func NewBitWriter(capacity int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, capacity)}
}

// Reset truncates the writer to empty, retaining the underlying storage so
// pooled writers do not reallocate per frame.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.acc, w.n = 0, 0
	w.closed = false
}

// WriteBits appends the low nbits bits of v, MSB first.
// nbits must be in [0, 32].
func (w *BitWriter) WriteBits(v uint32, nbits uint) {
	if nbits > 32 {
		panic(fmt.Sprintf("xdr: WriteBits width %d out of range", nbits))
	}
	w.WriteBits64(uint64(v)&mask64(nbits), nbits)
}

// WriteBits64 appends the low nbits bits of v, MSB first. nbits must be in
// [0, 64]. It is the inverse of BitReader.ReadBits64 and the entry point the
// XTC coordinate compressor packs whole triplets through.
func (w *BitWriter) WriteBits64(v uint64, nbits uint) {
	if nbits > 64 {
		panic(fmt.Sprintf("xdr: WriteBits64 width %d out of range", nbits))
	}
	v &= mask64(nbits)
	if w.n+nbits < 64 {
		w.acc = w.acc<<nbits | v
		w.n += nbits
		return
	}
	// Top the accumulator up to exactly 64 bits and drain it as one
	// big-endian 8-byte store; the remainder restarts the accumulator.
	take := 64 - w.n
	rest := nbits - take
	w.buf = binary.BigEndian.AppendUint64(w.buf, w.acc<<take|v>>rest)
	w.acc = v & mask64(rest)
	w.n = rest
}

// WriteBitsBig appends a value wider than 64 bits expressed as a slice of
// bytes in big-endian order, using exactly nbits bits.
func (w *BitWriter) WriteBitsBig(bytes []byte, nbits uint) {
	rem := nbits % 8
	idx := 0
	if rem != 0 {
		w.WriteBits(uint32(bytes[0]), rem)
		idx = 1
	}
	for ; idx < len(bytes); idx++ {
		w.WriteBits(uint32(bytes[idx]), 8)
	}
}

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// packed buffer. After Bytes the writer must not be written to again until
// Reset.
func (w *BitWriter) Bytes() []byte {
	if !w.closed {
		for w.n >= 8 {
			w.n -= 8
			w.buf = append(w.buf, byte(w.acc>>w.n))
		}
		if w.n > 0 {
			w.buf = append(w.buf, byte(w.acc<<(8-w.n)))
			w.n = 0
		}
		w.acc = 0
		w.closed = true
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.n) }

// BitReader unpacks values written by BitWriter. It keeps a 64-bit
// accumulator refilled a byte at a time from the buffer, so the common
// small-width reads on the XTC decode hot path are a shift and a mask
// instead of a per-byte loop.
type BitReader struct {
	buf []byte
	off int    // next byte of buf to load into acc
	acc uint64 // low n bits are valid, MSB-first stream order
	n   uint   // valid bits in acc
	err error
}

// NewBitReader returns a BitReader over p.
func NewBitReader(p []byte) *BitReader { return &BitReader{buf: p} }

// Err returns the first error encountered.
func (r *BitReader) Err() error { return r.err }

// fill tops up the accumulator from the buffer.
func (r *BitReader) fill() {
	if free := (64 - r.n) &^ 7; free >= 8 && r.off+8 <= len(r.buf) {
		// Bulk path: one 8-byte load supplies every whole byte of space.
		w := binary.BigEndian.Uint64(r.buf[r.off:])
		r.acc = r.acc<<free | w>>(64-free)
		r.off += int(free / 8)
		r.n += free
		return
	}
	for r.n <= 56 && r.off < len(r.buf) {
		r.acc = r.acc<<8 | uint64(r.buf[r.off])
		r.off++
		r.n += 8
	}
}

// mask64 returns a mask of the low nbits bits; nbits may be 64.
func mask64(nbits uint) uint64 {
	// Go defines shifts >= width as 0, so nbits == 64 yields ^uint64(0).
	return 1<<nbits - 1
}

// ReadBits reads nbits bits (MSB first) and returns them right-aligned.
// nbits must be in [0, 32]. On underflow it records an error and returns 0.
func (r *BitReader) ReadBits(nbits uint) uint32 {
	if nbits > 32 {
		panic(fmt.Sprintf("xdr: ReadBits width %d out of range", nbits))
	}
	if nbits <= r.n {
		r.n -= nbits
		return uint32(r.acc >> r.n & mask64(nbits))
	}
	return uint32(r.ReadBits64(nbits))
}

// ReadBits64 reads nbits bits (MSB first) right-aligned into a uint64.
// nbits must be in [0, 64]. On underflow it records an error and returns 0.
func (r *BitReader) ReadBits64(nbits uint) uint64 {
	if nbits > 64 {
		panic(fmt.Sprintf("xdr: ReadBits64 width %d out of range", nbits))
	}
	if nbits <= r.n {
		r.n -= nbits
		return r.acc >> r.n & mask64(nbits)
	}
	if r.err != nil {
		return 0
	}
	// Drain the accumulator, refill, and take the remainder. One refill
	// always suffices: after the drain the accumulator is empty, so fill
	// loads at least 57 bits when the buffer has them, and need < 64.
	v := r.acc & mask64(r.n)
	need := nbits - r.n
	r.acc, r.n = 0, 0
	r.fill()
	if need > r.n {
		r.err = fmt.Errorf("%w: bit read past end (%d bytes)", ErrShortBuffer, len(r.buf))
		return 0
	}
	r.n -= need
	return v<<need | r.acc>>r.n&mask64(need)
}

// ReadBitsBig reads nbits bits into dst in big-endian byte order.
// dst must have at least (nbits+7)/8 bytes.
func (r *BitReader) ReadBitsBig(dst []byte, nbits uint) {
	n := int((nbits + 7) / 8)
	rem := nbits % 8
	idx := 0
	if rem != 0 {
		dst[0] = byte(r.ReadBits(rem))
		idx = 1
	}
	for ; idx < n; idx++ {
		dst[idx] = byte(r.ReadBits(8))
	}
}
