package xdr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterSingleBits(t *testing.T) {
	w := NewBitWriter(4)
	// 1010 1100 -> 0xAC
	for _, b := range []uint32{1, 0, 1, 0, 1, 1, 0, 0} {
		w.WriteBits(b, 1)
	}
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0xAC {
		t.Errorf("bytes = %v, want [0xAC]", got)
	}
}

func TestBitWriterPartialFlush(t *testing.T) {
	w := NewBitWriter(4)
	w.WriteBits(0b101, 3)
	got := w.Bytes()
	// 101 padded to 1010_0000
	if len(got) != 1 || got[0] != 0xA0 {
		t.Errorf("bytes = %v, want [0xA0]", got)
	}
}

func TestBitRoundTripFixed(t *testing.T) {
	widths := []uint{1, 3, 5, 7, 8, 9, 13, 16, 21, 24, 31, 32}
	vals := []uint32{0, 1, 2, 0x55, 0xff, 0x1234, 0xdeadbeef, 1 << 31}
	w := NewBitWriter(64)
	for _, wd := range widths {
		for _, v := range vals {
			w.WriteBits(v, wd)
		}
	}
	r := NewBitReader(w.Bytes())
	for _, wd := range widths {
		for _, v := range vals {
			want := v
			if wd < 32 {
				want &= (1 << wd) - 1
			}
			if got := r.ReadBits(wd); got != want {
				t.Fatalf("width %d value %#x: got %#x, want %#x", wd, v, got, want)
			}
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBitRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%64 + 1
		widths := make([]uint, count)
		vals := make([]uint32, count)
		w := NewBitWriter(256)
		for i := range widths {
			widths[i] = uint(rng.Intn(32) + 1)
			vals[i] = rng.Uint32() & ((1 << widths[i]) - 1)
			if widths[i] == 32 {
				vals[i] = rng.Uint32()
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewBitReader(w.Bytes())
		for i := range widths {
			if r.ReadBits(widths[i]) != vals[i] {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsBigRoundTrip(t *testing.T) {
	// A 52-bit value spread over 7 bytes (big-endian, left-trimmed).
	src := []byte{0x0a, 0xbc, 0xde, 0xf1, 0x23, 0x45, 0x67}
	const nbits = 52
	w := NewBitWriter(16)
	w.WriteBits(0b11, 2) // misalign on purpose
	w.WriteBitsBig(src, nbits)
	r := NewBitReader(w.Bytes())
	if got := r.ReadBits(2); got != 0b11 {
		t.Fatalf("prefix = %b", got)
	}
	dst := make([]byte, len(src))
	r.ReadBitsBig(dst, nbits)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %#x, want %#x (dst=%x)", i, dst[i], src[i], dst)
		}
	}
}

func TestReadBits64RoundTrip(t *testing.T) {
	// Wide values written as two halves must read back as one ReadBits64.
	vals := []uint64{0, 1, 0xdeadbeefcafe, 1<<52 - 3, 1<<63 + 12345, ^uint64(0)}
	widths := []uint{33, 40, 52, 57, 63, 64}
	w := NewBitWriter(128)
	w.WriteBits(0b101, 3) // misalign on purpose
	for i, v := range vals {
		wd := widths[i]
		w.WriteBits(uint32(v>>32), wd-32)
		w.WriteBits(uint32(v), 32)
	}
	r := NewBitReader(w.Bytes())
	if got := r.ReadBits(3); got != 0b101 {
		t.Fatalf("prefix = %b", got)
	}
	for i, v := range vals {
		wd := widths[i]
		want := v
		if wd < 64 {
			want &= 1<<wd - 1
		}
		if got := r.ReadBits64(wd); got != want {
			t.Fatalf("width %d: got %#x, want %#x", wd, got, want)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestReadBits64MixedWidthsQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%64 + 1
		widths := make([]uint, count)
		vals := make([]uint64, count)
		w := NewBitWriter(1024)
		for i := range widths {
			widths[i] = uint(rng.Intn(64) + 1)
			vals[i] = rng.Uint64() & (1<<widths[i] - 1)
			if widths[i] > 32 {
				w.WriteBits(uint32(vals[i]>>32), widths[i]-32)
				w.WriteBits(uint32(vals[i]), 32)
			} else {
				w.WriteBits(uint32(vals[i]), widths[i])
			}
		}
		r := NewBitReader(w.Bytes())
		for i := range widths {
			// Alternate the two read paths over identical bit positions.
			if widths[i] <= 32 && i%2 == 0 {
				if uint64(r.ReadBits(widths[i])) != vals[i] {
					return false
				}
			} else if r.ReadBits64(widths[i]) != vals[i] {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBits64Underflow(t *testing.T) {
	r := NewBitReader([]byte{0xaa, 0xbb, 0xcc})
	if got := r.ReadBits64(24); got != 0xaabbcc {
		t.Fatalf("got %#x", got)
	}
	_ = r.ReadBits64(1)
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", r.Err())
	}
	// Sticky: further reads keep failing and return zero.
	if got := r.ReadBits64(8); got != 0 || !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("post-error read = %#x, err = %v", got, r.Err())
	}
}

func TestWriteBits64RoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 0xdeadbeefcafe, 1<<52 - 3, 1<<63 + 12345, ^uint64(0)}
	widths := []uint{33, 40, 52, 57, 63, 64}
	w := NewBitWriter(128)
	w.WriteBits64(0b101, 3) // misalign on purpose
	for i, v := range vals {
		w.WriteBits64(v, widths[i])
	}
	r := NewBitReader(w.Bytes())
	if got := r.ReadBits64(3); got != 0b101 {
		t.Fatalf("prefix = %b", got)
	}
	for i, v := range vals {
		want := v & mask64(widths[i])
		if got := r.ReadBits64(widths[i]); got != want {
			t.Fatalf("width %d: got %#x, want %#x", widths[i], got, want)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// TestWriteBits64MatchesSplitWrites pins the bulk writer to the legacy
// byte-at-a-time encoding: one WriteBits64 must produce the same stream as
// the same value written as two 32-bit halves.
func TestWriteBits64MatchesSplitWrites(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%64 + 1
		bulk := NewBitWriter(1024)
		split := NewBitWriter(1024)
		for i := 0; i < count; i++ {
			width := uint(rng.Intn(64) + 1)
			v := rng.Uint64() & mask64(width)
			bulk.WriteBits64(v, width)
			if width > 32 {
				split.WriteBits(uint32(v>>32), width-32)
				split.WriteBits(uint32(v), 32)
			} else {
				split.WriteBits(uint32(v), width)
			}
		}
		a, b := bulk.Bytes(), split.Bytes()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBits64WidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WriteBits64(65) did not panic")
		}
	}()
	NewBitWriter(8).WriteBits64(0, 65)
}

func TestBitWriterReset(t *testing.T) {
	w := NewBitWriter(8)
	w.WriteBits64(0xabcdef, 24)
	first := append([]byte(nil), w.Bytes()...)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after Reset = %d", w.BitLen())
	}
	w.WriteBits64(0xabcdef, 24)
	second := w.Bytes()
	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("byte %d differs after Reset: %#x vs %#x", i, first[i], second[i])
		}
	}
}

func TestBitReaderUnderflow(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	_ = r.ReadBits(8)
	_ = r.ReadBits(1)
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", r.Err())
	}
}

func TestBitLen(t *testing.T) {
	w := NewBitWriter(8)
	w.WriteBits(1, 5)
	if w.BitLen() != 5 {
		t.Errorf("BitLen = %d, want 5", w.BitLen())
	}
	w.WriteBits(0, 11)
	if w.BitLen() != 16 {
		t.Errorf("BitLen = %d, want 16", w.BitLen())
	}
}
