// Package xdr implements the subset of XDR (RFC 4506) external data
// representation used by GROMACS-style trajectory files, plus the bit-level
// reader and writer that the XTC coordinate compressor is built on.
//
// All multi-byte quantities are big-endian, and opaque data is padded to a
// four-byte boundary, exactly as xdrfile does. The Writer never fails until
// its underlying buffer does; errors are sticky on both Reader and Writer so
// callers may perform a sequence of operations and check the error once.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrShortBuffer is returned when a Reader runs out of input mid-value.
var ErrShortBuffer = errors.New("xdr: short buffer")

// Writer serializes XDR values into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer whose buffer has the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice is owned by the Writer and is
// invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the Writer to empty, retaining the underlying storage.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint32 appends v as a big-endian 32-bit unsigned integer.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Int32 appends v as a big-endian 32-bit two's-complement integer.
func (w *Writer) Int32(v int32) { w.Uint32(uint32(v)) }

// Uint64 appends v as a big-endian 64-bit unsigned integer ("hyper").
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Int64 appends v as a big-endian 64-bit two's-complement integer.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Float32 appends v in IEEE-754 single precision.
func (w *Writer) Float32(v float32) { w.Uint32(math.Float32bits(v)) }

// Float64 appends v in IEEE-754 double precision.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Opaque appends fixed-length opaque data padded with zero bytes to a
// four-byte boundary. The length itself is not written; use VarOpaque for
// length-prefixed data.
func (w *Writer) Opaque(p []byte) {
	w.buf = append(w.buf, p...)
	for pad := (4 - len(p)%4) % 4; pad > 0; pad-- {
		w.buf = append(w.buf, 0)
	}
}

// VarOpaque appends a length prefix followed by the padded opaque data.
func (w *Writer) VarOpaque(p []byte) {
	w.Uint32(uint32(len(p)))
	w.Opaque(p)
}

// String appends s as XDR variable-length data.
func (w *Writer) String(s string) { w.VarOpaque([]byte(s)) }

// Reader decodes XDR values from a byte slice.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Reset rewinds the Reader onto p, clearing any sticky error. It lets one
// Reader decode many buffers without reallocating (the codec hot path keeps
// a pool of them).
func (r *Reader) Reset(p []byte) {
	r.buf = p
	r.off = 0
	r.err = nil
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Offset returns the current decode position in bytes.
func (r *Reader) Offset() int { return r.off }

// Remaining returns the number of bytes not yet consumed.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d",
			ErrShortBuffer, n, r.off, len(r.buf))
		return false
	}
	return true
}

// Uint32 decodes a big-endian 32-bit unsigned integer.
func (r *Reader) Uint32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Int32 decodes a big-endian 32-bit signed integer.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Uint64 decodes a big-endian 64-bit unsigned integer.
func (r *Reader) Uint64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Int64 decodes a big-endian 64-bit signed integer.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Float32 decodes an IEEE-754 single-precision value.
func (r *Reader) Float32() float32 { return math.Float32frombits(r.Uint32()) }

// Float64 decodes an IEEE-754 double-precision value.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Opaque decodes n bytes of fixed-length opaque data, consuming the
// trailing pad. The returned slice aliases the Reader's buffer.
func (r *Reader) Opaque(n int) []byte {
	padded := n + (4-n%4)%4
	if !r.need(padded) {
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += padded
	return p
}

// VarOpaque decodes length-prefixed opaque data.
func (r *Reader) VarOpaque() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if int(n) > r.Remaining() {
		r.err = fmt.Errorf("%w: var opaque length %d exceeds remaining %d",
			ErrShortBuffer, n, r.Remaining())
		return nil
	}
	return r.Opaque(int(n))
}

// String decodes an XDR string.
func (r *Reader) String() string { return string(r.VarOpaque()) }

// ReadFull reads an exact count of raw (unpadded) bytes into dst from rd.
// It is a convenience for stream framing around XDR blocks.
func ReadFull(rd io.Reader, dst []byte) error {
	_, err := io.ReadFull(rd, dst)
	return err
}
