package sim

import (
	"math"
	"strings"
	"testing"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Errorf("Now = %v", c.Now())
	}
	c.Advance(1.5)
	c.Advance(0)
	c.Advance(2.5)
	if c.Now() != 4 {
		t.Errorf("Now = %v, want 4", c.Now())
	}
	c.AdvanceTo(3) // earlier: no-op
	if c.Now() != 4 {
		t.Errorf("AdvanceTo(earlier) moved clock to %v", c.Now())
	}
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Errorf("AdvanceTo = %v", c.Now())
	}
}

func TestClockRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative advance should panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockRejectsNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NaN advance should panic")
		}
	}()
	NewClock().Advance(math.NaN())
}

func TestDuration(t *testing.T) {
	if got := Duration(1.5).Seconds(); got != 1.5 {
		t.Errorf("Duration = %v", got)
	}
}

func TestProfile(t *testing.T) {
	p := NewProfile()
	p.Add("cpu.decompress", 3)
	p.Add("cpu.render", 1)
	p.Add("io.read", 1)
	p.Add("cpu.decompress", 1)
	if got := p.Get("cpu.decompress"); got != 4 {
		t.Errorf("Get = %v", got)
	}
	if got := p.Total(); got != 6 {
		t.Errorf("Total = %v", got)
	}
	if got := p.TotalPrefix("cpu."); got != 5 {
		t.Errorf("TotalPrefix = %v", got)
	}
	if got := p.Fraction("cpu.decompress"); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("Fraction = %v", got)
	}
	names := p.Buckets()
	if names[0] != "cpu.decompress" {
		t.Errorf("Buckets[0] = %v", names)
	}
	if !strings.Contains(p.String(), "cpu.decompress") {
		t.Errorf("String missing bucket: %s", p.String())
	}
	p.Reset()
	if p.Total() != 0 {
		t.Error("Reset did not clear")
	}
	if p.Fraction("cpu.render") != 0 {
		t.Error("Fraction of empty profile should be 0")
	}
}

func TestEnergyMeter(t *testing.T) {
	c := NewClock()
	m := NewEnergyMeter(c, 400) // one 400 W node
	m.Start()
	c.Advance(10)
	if got := m.Joules(); got != 4000 {
		t.Errorf("open-window Joules = %v", got)
	}
	m.Stop()
	c.Advance(100) // outside the window: not counted
	if got := m.Joules(); got != 4000 {
		t.Errorf("Joules = %v, want 4000", got)
	}
	m.Start()
	c.Advance(5)
	m.Stop()
	if got := m.Kilojoules(); got != 6 {
		t.Errorf("Kilojoules = %v, want 6", got)
	}
}

func TestEnergyMeterMisuse(t *testing.T) {
	c := NewClock()
	m := NewEnergyMeter(c, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Stop without Start should panic")
			}
		}()
		m.Stop()
	}()
	m.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start should panic")
		}
	}()
	m.Start()
}

func TestEnvCharge(t *testing.T) {
	e := NewEnv()
	e.Charge("io.read", 2)
	e.ChargeConcurrent("io.read", 3)
	if e.Clock.Now() != 2 {
		t.Errorf("clock = %v, want 2 (concurrent charge must not advance)", e.Clock.Now())
	}
	if e.Profile.Get("io.read") != 5 {
		t.Errorf("profile = %v, want 5", e.Profile.Get("io.read"))
	}
}
