// Package sim provides the deterministic virtual time base used by the
// experiment harness: a clock advanced by storage, network, and CPU cost
// models; a profile that attributes elapsed time to named buckets (the
// flame-graph view of Fig 8); and an energy meter that integrates node
// power over turnaround windows (Fig 10d).
//
// Charges are deterministic: the same inputs always produce the same
// reported times and energies regardless of the host machine. Clock and
// Profile are mutex-protected so parallel pipelines (core.IngestParallel)
// can charge device time concurrently; components that fan work out in
// parallel account wall time as the slowest stage via ChargeConcurrent
// plus one AdvanceTo/Advance of the maximum.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock is a virtual clock measured in seconds since the experiment epoch.
// It is safe for concurrent use (parallel ingest pipelines charge device
// time from several goroutines).
type Clock struct {
	mu  sync.Mutex
	now float64
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d seconds. Negative or NaN charges are
// rejected loudly: a cost model that produces them is broken.
func (c *Clock) Advance(d float64) {
	if !(d >= 0) {
		panic(fmt.Sprintf("sim: negative or NaN clock advance %v", d))
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to absolute time t, if t is later.
func (c *Clock) AdvanceTo(t float64) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// Duration converts virtual seconds to a time.Duration for display.
func Duration(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// Profile attributes virtual time to named buckets. Bucket names are
// hierarchical by convention ("cpu.decompress", "io.read", "net.xfer").
// It is safe for concurrent use.
type Profile struct {
	mu      sync.Mutex
	buckets map[string]float64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{buckets: map[string]float64{}} }

// Add charges d seconds to the named bucket.
func (p *Profile) Add(bucket string, d float64) {
	if !(d >= 0) {
		panic(fmt.Sprintf("sim: negative or NaN profile charge %v to %q", d, bucket))
	}
	p.mu.Lock()
	p.buckets[bucket] += d
	p.mu.Unlock()
}

// Get returns the time charged to a bucket.
func (p *Profile) Get(bucket string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buckets[bucket]
}

// Total returns the sum over all buckets.
func (p *Profile) Total() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t float64
	for _, v := range p.buckets {
		t += v
	}
	return t
}

// TotalPrefix sums every bucket sharing the given prefix.
func (p *Profile) TotalPrefix(prefix string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t float64
	for k, v := range p.buckets {
		if strings.HasPrefix(k, prefix) {
			t += v
		}
	}
	return t
}

// Fraction returns the bucket's share of the profile total, or 0 for an
// empty profile.
func (p *Profile) Fraction(bucket string) float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return p.Get(bucket) / t
}

// Reset clears all buckets.
func (p *Profile) Reset() {
	p.mu.Lock()
	p.buckets = map[string]float64{}
	p.mu.Unlock()
}

// Clone returns an independent copy of the profile.
func (p *Profile) Clone() *Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := NewProfile()
	for k, v := range p.buckets {
		q.buckets[k] = v
	}
	return q
}

// Buckets returns bucket names sorted by descending charge.
func (p *Profile) Buckets() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.buckets))
	for k := range p.buckets {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.buckets[names[i]] != p.buckets[names[j]] {
			return p.buckets[names[i]] > p.buckets[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// String renders the profile as a flame-graph-style table.
func (p *Profile) String() string {
	var b strings.Builder
	total := p.Total()
	for _, name := range p.Buckets() {
		v := p.Get(name)
		fmt.Fprintf(&b, "%-24s %12.3fs %6.1f%%\n", name, v, 100*v/total)
	}
	return b.String()
}

// Folded renders the profile in Brendan Gregg's folded-stacks format — one
// "frame;frame;... value" line per bucket, with dots in bucket names
// becoming stack separators — so the output of the Fig 8 experiment can be
// fed straight to flamegraph.pl. Values are microseconds (integral, as the
// tooling expects).
func (p *Profile) Folded(root string) string {
	var b strings.Builder
	for _, name := range p.Buckets() {
		stack := strings.ReplaceAll(name, ".", ";")
		if root != "" {
			stack = root + ";" + stack
		}
		fmt.Fprintf(&b, "%s %d\n", stack, int64(p.Get(name)*1e6))
	}
	return b.String()
}

// EnergyMeter integrates a constant platform power over clock windows, the
// way the paper's Modbus power monitor reports whole-server energy per VMD
// process.
type EnergyMeter struct {
	clock *Clock
	// PowerWatts is the total draw of every node participating in the
	// experiment (the paper: 400 W per node).
	PowerWatts float64
	start      float64
	joules     float64
	running    bool
}

// NewEnergyMeter returns a meter over the given clock.
func NewEnergyMeter(clock *Clock, powerWatts float64) *EnergyMeter {
	return &EnergyMeter{clock: clock, PowerWatts: powerWatts}
}

// Start opens a measurement window at the current virtual time.
func (m *EnergyMeter) Start() {
	if m.running {
		panic("sim: EnergyMeter.Start while already running")
	}
	m.start = m.clock.Now()
	m.running = true
}

// Stop closes the window and accumulates its energy.
func (m *EnergyMeter) Stop() {
	if !m.running {
		panic("sim: EnergyMeter.Stop without Start")
	}
	m.joules += m.PowerWatts * (m.clock.Now() - m.start)
	m.running = false
}

// Joules returns the energy accumulated over closed windows, plus the
// currently open window if any.
func (m *EnergyMeter) Joules() float64 {
	j := m.joules
	if m.running {
		j += m.PowerWatts * (m.clock.Now() - m.start)
	}
	return j
}

// Kilojoules returns Joules()/1000, the unit of Fig 10d.
func (m *EnergyMeter) Kilojoules() float64 { return m.Joules() / 1000 }

// Env bundles the clock and profile every simulated component charges into.
type Env struct {
	Clock   *Clock
	Profile *Profile
}

// NewEnv returns a fresh environment at time zero.
func NewEnv() *Env {
	return &Env{Clock: NewClock(), Profile: NewProfile()}
}

// Charge advances the clock by d seconds and attributes it to bucket.
func (e *Env) Charge(bucket string, d float64) {
	e.Clock.Advance(d)
	e.Profile.Add(bucket, d)
}

// ChargeConcurrent attributes time that overlaps other work: it adds to the
// profile without advancing the clock (used when k servers work in
// parallel and only the slowest advances wall time).
func (e *Env) ChargeConcurrent(bucket string, d float64) {
	e.Profile.Add(bucket, d)
}
