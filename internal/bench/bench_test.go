package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpcr"
)

func testConfig(t testing.TB) *Config {
	t.Helper()
	// A scaled system keeps the unit tests fast; the shape checks below do
	// not depend on the absolute atom count.
	dm, err := Measure(gpcr.Scaled(10), 6)
	if err != nil {
		t.Fatal(err)
	}
	return &Config{Model: dm, Scale: 20, MeasuredFrames: 60}
}

func TestMeasureModel(t *testing.T) {
	cfg := testConfig(t)
	dm := cfg.Model
	if dm.NAtoms <= 0 || dm.ProteinAtoms <= 0 || dm.ProteinAtoms >= dm.NAtoms {
		t.Fatalf("model atoms = %+v", dm)
	}
	if dm.CompressionRatio() < 2 || dm.CompressionRatio() > 5 {
		t.Errorf("compression ratio = %.2f, want XTC-like ~3x", dm.CompressionRatio())
	}
	if f := dm.ProteinFraction(); f < 0.3 || f > 0.6 {
		t.Errorf("protein fraction = %.2f", f)
	}
	if dm.CompressedProteinPerFrame >= dm.CompressedPerFrame {
		t.Error("protein compressed larger than full compressed")
	}
	c, r, p := dm.Sizes(100)
	if c <= 0 || p <= 0 || r <= c || p >= r {
		t.Errorf("sizes(100) = %d %d %d", c, r, p)
	}
}

func TestAnalyticShapesSSD(t *testing.T) {
	cfg := testConfig(t)
	p, err := cluster.NewSSDServer()
	if err != nil {
		t.Fatal(err)
	}
	frames := 5006
	c := RunAnalytic(p, cfg.Model, CBase, frames)
	d := RunAnalytic(p, cfg.Model, DBase, frames)
	all := RunAnalytic(p, cfg.Model, ADAAll, frames)
	prot := RunAnalytic(p, cfg.Model, ADAProtein, frames)

	// Fig 7a: C-ext4 retrieves least; ADA(all) ~ D-ext4; ADA(protein) ~40% of raw.
	if !(c.RetrievalSec < prot.RetrievalSec && prot.RetrievalSec < d.RetrievalSec) {
		t.Errorf("retrieval ordering: C=%.3f p=%.3f D=%.3f", c.RetrievalSec, prot.RetrievalSec, d.RetrievalSec)
	}
	if ratio := all.RetrievalSec / d.RetrievalSec; ratio < 0.9 || ratio > 1.2 {
		t.Errorf("ADA(all)/D retrieval = %.2f, want ~1", ratio)
	}
	// Fig 7b: the paper's headline: C-ext4 turnaround is many times
	// ADA(protein)'s, in the 10-15x band at 5,006 frames.
	speedup := c.Turnaround / prot.Turnaround
	t.Logf("turnaround speedup C vs ADA(protein) at %d frames: %.1fx", frames, speedup)
	if speedup < 8 || speedup > 20 {
		t.Errorf("speedup = %.1fx, want ~13.4x band", speedup)
	}
	// Fig 7c: memory ratio above 2x.
	if ratio := float64(c.MemoryPeak) / float64(prot.MemoryPeak); ratio < 2 {
		t.Errorf("memory ratio = %.2f", ratio)
	}
	// D and ADA(all) share turnaround shape.
	if ratio := all.Turnaround / d.Turnaround; ratio < 0.8 || ratio > 1.2 {
		t.Errorf("ADA(all)/D turnaround = %.2f", ratio)
	}
}

func TestAnalyticShapesCluster(t *testing.T) {
	cfg := testConfig(t)
	p, err := cluster.NewSmallCluster()
	if err != nil {
		t.Fatal(err)
	}
	d := RunAnalytic(p, cfg.Model, DBase, 6256)
	all := RunAnalytic(p, cfg.Model, ADAAll, 6256)
	prot := RunAnalytic(p, cfg.Model, ADAProtein, 6256)
	// Fig 9a: ADA(all) reads from the SSD instance: >2x faster than D-PVFS.
	if ratio := d.RetrievalSec / all.RetrievalSec; ratio < 2 {
		t.Errorf("D-PVFS/ADA(all) retrieval = %.2fx, want > 2x", ratio)
	}
	// Fig 9b: D-PVFS turnaround ~9x ADA(protein) at 6,256 frames.
	ratio := d.Turnaround / prot.Turnaround
	t.Logf("cluster turnaround D-PVFS vs ADA(protein): %.1fx", ratio)
	if ratio < 4 || ratio > 20 {
		t.Errorf("turnaround ratio = %.1fx, want the paper's ~9x band", ratio)
	}
}

func TestAnalyticShapesFatNode(t *testing.T) {
	cfg := testConfig(t)
	// Rescale the data model to the paper's full-size frames so the
	// absolute GB volumes land on the Table 6 kill points.
	dmFull, err := Measure(gpcr.Default(), 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg
	p, err := cluster.NewFatNode()
	if err != nil {
		t.Fatal(err)
	}
	// 1,564,000 frames: everything survives.
	for _, sc := range fatScenarios {
		if pt := RunAnalytic(p, dmFull, sc, 1564000); pt.Killed {
			t.Errorf("%s killed at 1,564,000 frames", sc)
		}
	}
	// 1,876,800 frames: C and ADA(all) die; ADA(protein) survives.
	if pt := RunAnalytic(p, dmFull, CBase, 1876800); !pt.Killed {
		t.Errorf("C-XFS survived 1,876,800 frames (raw %.0f GB)", dmFull.RawPerFrame*1876800/1e9)
	}
	if pt := RunAnalytic(p, dmFull, ADAAll, 1876800); !pt.Killed {
		t.Error("ADA(all) survived 1,876,800 frames")
	}
	if pt := RunAnalytic(p, dmFull, ADAProtein, 1876800); pt.Killed {
		t.Error("ADA(protein) killed at 1,876,800 frames")
	}
	// 5,004,800 frames: even the protein subset exceeds 1 TB.
	if pt := RunAnalytic(p, dmFull, ADAProtein, 5004800); !pt.Killed {
		t.Error("ADA(protein) survived 5,004,800 frames")
	}
	// Fig 10b: retrieval is a small share of turnaround at large sizes.
	pt := RunAnalytic(p, dmFull, CBase, 1564000)
	if frac := pt.RetrievalSec / pt.Turnaround; frac > 0.10 {
		t.Errorf("retrieval fraction = %.2f, want < 0.10", frac)
	}
	// Fig 10d: XFS energy more than 3x ADA's.
	x := RunAnalytic(p, dmFull, CBase, 1876800)
	a := RunAnalytic(p, dmFull, ADAAll, 1876800)
	pr := RunAnalytic(p, dmFull, ADAProtein, 1876800)
	t.Logf("energy at 1,876,800 frames: XFS=%.0f ADA(all)=%.0f ADA(p)=%.0f kJ",
		x.EnergyKJ, a.EnergyKJ, pr.EnergyKJ)
	// The paper's prose says ">3x"; its own Fig 10d bars at 1,876,800 frames
	// (12,500 vs 5,000 vs 2,200 kJ) are 2.5x vs ADA(all) and 5.7x vs
	// ADA(protein). Hold the bars' shape: >2x vs ADA(all), >3x vs protein.
	if x.EnergyKJ < 2*a.EnergyKJ || x.EnergyKJ < 3*pr.EnergyKJ {
		t.Errorf("XFS energy shape off: %.0f vs %.0f / %.0f", x.EnergyKJ, a.EnergyKJ, pr.EnergyKJ)
	}
}

// TestAnalyticMatchesMeasured pins the analytic engine to the live
// pipeline: at a scale where both can run, the virtual times must agree.
func TestAnalyticMatchesMeasured(t *testing.T) {
	dm, err := Measure(gpcr.Scaled(20), 6)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 300
	for _, sc := range Scenarios {
		p, err := cluster.NewSSDServer()
		if err != nil {
			t.Fatal(err)
		}
		ds, err := p.Stage("gpcr", gpcr.Scaled(20), frames)
		if err != nil {
			t.Fatal(err)
		}
		measured, err := RunMeasured(p, ds, sc)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		analytic := RunAnalytic(p, dm, sc, frames)
		relErr := math.Abs(analytic.Turnaround-measured.Turnaround) / measured.Turnaround
		t.Logf("%-12s measured=%.4fs analytic=%.4fs (%.1f%% off)",
			sc, measured.Turnaround, analytic.Turnaround, 100*relErr)
		if relErr > 0.15 {
			t.Errorf("%s: analytic diverges %.1f%% from measured", sc, 100*relErr)
		}
		memErr := math.Abs(float64(analytic.MemoryPeak-measured.MemoryPeak)) / float64(measured.MemoryPeak)
		if memErr > 0.10 {
			t.Errorf("%s: memory model diverges %.1f%%: analytic %d vs measured %d",
				sc, 100*memErr, analytic.MemoryPeak, measured.MemoryPeak)
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	cfg := testConfig(t)
	for _, e := range Experiments {
		tbl, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		out := tbl.Format()
		if !strings.Contains(out, e.ID) {
			t.Errorf("%s: Format missing ID:\n%s", e.ID, out)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig7b"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown ID should fail")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"A", "LongColumn"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("100000", "3")
	out := tbl.Format()
	for _, want := range []string{"demo", "LongColumn", "100000", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioLabels(t *testing.T) {
	if CBase.Label("ext4") != "C-ext4" || DBase.Label("PVFS") != "D-PVFS" {
		t.Error("baseline labels wrong")
	}
	if ADAProtein.Label("ext4") != string(ADAProtein) {
		t.Error("ADA labels must not take the baseline name")
	}
}
