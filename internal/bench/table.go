package bench

import (
	"fmt"
	"strings"
)

// Table is one reproduced table or figure, rendered as rows of text.
type Table struct {
	ID      string // "table1", "fig7b", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string // expectations from the paper, caveats, calibration
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Formatting helpers shared by the experiment runners.

// fmtMB renders bytes as megabytes.
func fmtMB(n int64) string { return fmt.Sprintf("%.0f", float64(n)/1e6) }

// fmtGB renders bytes as gigabytes with one decimal.
func fmtGB(n int64) string { return fmt.Sprintf("%.1f", float64(n)/1e9) }

// fmtSec renders seconds adaptively.
func fmtSec(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}

// fmtMin renders seconds as minutes.
func fmtMin(s float64) string { return fmt.Sprintf("%.1f", s/60) }

// killedCell marks an OOM-killed point the way Fig 10 does.
func killedCell(v string) string { return v + "*" }
