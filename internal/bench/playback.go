package bench

import (
	"bytes"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpcr"
	"repro/internal/vfs"
	"repro/internal/vmd"
	"repro/internal/xtc"
)

// runPlayback quantifies the Section 2.1 motivation with the live pipeline:
// under the same compute-node memory budget, back-and-forth replay of
// traditional full frames (decompressing on every miss) thrashes, while
// ADA's protein-only frames fit and replay from memory.
func runPlayback(cfg *Config) (*Table, error) {
	p, err := cluster.NewSSDServer()
	if err != nil {
		return nil, err
	}
	ds, err := p.Stage("gpcr", gpcr.Scaled(cfg.Scale), cfg.MeasuredFrames)
	if err != nil {
		return nil, err
	}

	// Traditional source: the compressed file, random-accessed with
	// per-miss decompression (what VMD does when frames were evicted).
	traj, err := vfs.ReadFile(p.Traditional, ds.CompressedPath)
	if err != nil {
		return nil, err
	}
	idx, err := xtc.BuildIndex(byteReaderAt(traj), int64(len(traj)))
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ext-playback",
		Title: "Extension: replay hit rate and stalls under a fixed memory budget",
		Columns: []string{"Budget (frames)", "C-ext4 hit%", "C-ext4 stall(s)",
			"ADA(p) hit%", "ADA(p) stall(s)"},
	}
	fullFrameBytes := xtc.RawFrameSize(ds.NAtoms)
	pattern := vmd.BackAndForth(ds.Frames, 6)
	for _, budgetFrames := range []int{ds.Frames / 4, ds.Frames / 2, ds.Frames} {
		budget := int64(budgetFrames) * fullFrameBytes

		s := vmd.NewSession(p.Env, 0, p.ComputeCost)
		ra := xtc.NewRandomAccessReader(byteReaderAt(traj), idx)
		fullCache := s.NewFrameCache(s.ChargeDecompression(ra, idx), budget)
		fullStats, err := s.Play(fullCache, pattern)
		if err != nil {
			return nil, err
		}
		fullCache.Release()

		sub, err := p.ADA.OpenSubsetAt(ds.Logical, core.TagProtein)
		if err != nil {
			return nil, err
		}
		subCache := s.NewFrameCache(sub, budget)
		subStats, err := s.Play(subCache, pattern)
		sub.Close()
		if err != nil {
			return nil, err
		}
		subCache.Release()

		t.AddRow(
			fmt.Sprintf("%d", budgetFrames),
			fmt.Sprintf("%.0f", 100*fullStats.Cache.HitRate()),
			fmtSec(fullStats.StallSec),
			fmt.Sprintf("%.0f", 100*subStats.Cache.HitRate()),
			fmtSec(subStats.StallSec),
		)
	}
	t.Notes = append(t.Notes,
		"paper §2.1: frequent swapping under random/back-and-forth access causes a low hit rate and non-fluent playback",
		fmt.Sprintf("pattern: %d-frame trajectory swept back and forth 6 times (live pipeline, scale 1/%d)",
			ds.Frames, cfg.Scale))
	return t, nil
}

// byteReaderAt adapts a byte slice to io.ReaderAt.
func byteReaderAt(b []byte) *bytes.Reader { return bytes.NewReader(b) }
