package bench

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vmd"
)

// MeasuredPoint is a Point produced by the live pipeline, with the CPU/IO
// profile of the run attached (the Fig 8 flame-graph view).
type MeasuredPoint struct {
	Point
	Profile *sim.Profile
}

// RunMeasured executes one scenario end-to-end through the real middleware
// on a staged dataset: real codec, real container reads, virtual clock.
// An OOM kill is reported in the Point, not as an error.
func RunMeasured(p *cluster.Platform, ds *cluster.Dataset, sc Scenario) (*MeasuredPoint, error) {
	// Isolate this run's accounting.
	p.Env.Profile.Reset()
	start := p.Env.Clock.Now()
	meter := p.NewMeter()
	meter.Start()

	s := p.NewSession()
	if err := s.MolNew(p.Traditional, ds.PDBPath); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", sc, err)
	}
	var loadErr error
	switch sc {
	case CBase:
		loadErr = s.LoadCompressed(p.Traditional, ds.CompressedPath)
	case DBase:
		loadErr = s.LoadRaw(p.Traditional, ds.RawPath)
	case ADAAll:
		loadErr = s.LoadADAFull(p.ADA, ds.Logical)
	case ADAProtein:
		loadErr = s.LoadADASubset(p.ADA, ds.Logical, core.TagProtein)
	default:
		return nil, fmt.Errorf("bench: unknown scenario %q", sc)
	}
	killed := false
	if loadErr != nil {
		if !errors.Is(loadErr, vmd.ErrOutOfMemory) {
			return nil, fmt.Errorf("bench: %s: %w", sc, loadErr)
		}
		killed = true
	}
	if !killed {
		s.RenderLoaded()
	}
	meter.Stop()

	prof := p.Env.Profile
	pt := Point{
		Scenario: sc,
		Frames:   s.Frames(),
		RetrievalSec: prof.TotalPrefix("io.read.") +
			prof.TotalPrefix("net.read.") + prof.TotalPrefix("meta."),
		PreprocSec: prof.Get("compute.cpu.decompress") + prof.Get("compute.cpu.scan"),
		RenderSec:  prof.Get("compute.cpu.render"),
		Turnaround: p.Env.Clock.Now() - start,
		MemoryPeak: s.Mem.Peak(),
		Killed:     killed,
		EnergyKJ:   meter.Kilojoules(),
	}
	switch sc {
	case CBase:
		info, err := p.Traditional.Stat(ds.CompressedPath)
		if err == nil {
			pt.LoadedBytes = info.Size
		}
	case DBase:
		info, err := p.Traditional.Stat(ds.RawPath)
		if err == nil {
			pt.LoadedBytes = info.Size
		}
	case ADAAll:
		if m, err := p.ADA.Manifest(ds.Logical); err == nil {
			for _, sub := range m.Subsets {
				pt.LoadedBytes += sub.Bytes
			}
		}
	case ADAProtein:
		if m, err := p.ADA.Manifest(ds.Logical); err == nil {
			pt.LoadedBytes = m.Subsets[core.TagProtein].Bytes
		}
	}
	return &MeasuredPoint{Point: pt, Profile: prof.Clone()}, nil
}
