package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/device"
)

// runAmortize quantifies Section 2.1's "constant burden" argument: the
// traditional workflow pays decompression and filtering on every study
// session, while ADA pays pre-processing once at ingest (on storage-node
// CPUs) and then serves cheap tagged reads. The table reports cumulative
// time on the SSD-server model after k sessions at 5,006 frames, and the
// break-even session count.
func runAmortize(cfg *Config) (*Table, error) {
	p, err := cluster.NewSSDServer()
	if err != nil {
		return nil, err
	}
	dm := cfg.Model
	const frames = 5006
	c, r, _ := dm.Sizes(frames)
	subsets := int64(dm.SubsetsRawPerFrame * float64(frames))

	// One-time ADA ingest on the storage node: decompress + categorize the
	// stream, then write every subset to the NVMe backends.
	storage := p.StorageCost
	factor := storage.CPUFactor
	if factor <= 0 {
		factor = 1
	}
	ingest := float64(c)/(storage.DecompressBps*factor) +
		float64(r)/(storage.CategorizeBps*factor) +
		device.NVMe256GB().WriteTime(subsets, 1)

	perTraditional := RunAnalytic(p, dm, CBase, frames).Turnaround
	perADA := RunAnalytic(p, dm, ADAProtein, frames).Turnaround

	t := &Table{
		ID:    "ext-amortize",
		Title: "Extension: cumulative time over repeated study sessions (5,006 frames, SSD server)",
		Columns: []string{"Sessions", "C-" + p.TraditionalName + " total (s)",
			"ADA ingest+loads (s)", "ADA saves"},
	}
	breakEven := -1
	for k := 1; k <= 10; k++ {
		trad := float64(k) * perTraditional
		adaTotal := ingest + float64(k)*perADA
		saves := "no"
		if adaTotal < trad {
			saves = "yes"
			if breakEven < 0 {
				breakEven = k
			}
		}
		t.AddRow(fmt.Sprintf("%d", k), fmtSec(trad), fmtSec(adaTotal), saves)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("one-time ADA ingest: %.2fs on storage-node CPUs; per-session: C %.2fs vs ADA %.2fs",
			ingest, perTraditional, perADA),
		fmt.Sprintf("break-even at %d session(s); the paper: pre-processing is 'a constant burden when biologists repeatedly study' (§2.1)", breakEven))
	return t, nil
}
