package bench

import (
	"fmt"

	"repro/internal/cluster"
)

// Scenario names one of the evaluation's four data paths.
type Scenario string

// The four scenarios of Figs 7, 9 and 10 (Table 3's notation).
const (
	CBase      Scenario = "C-base"     // compressed trajectory on the baseline FS
	DBase      Scenario = "D-base"     // raw trajectory on the baseline FS
	ADAAll     Scenario = "D-ADA(all)" // ADA transfers every subset
	ADAProtein Scenario = "D-ADA(p)"   // ADA transfers the protein subset
)

// Scenarios lists them in the paper's plotting order.
var Scenarios = []Scenario{CBase, DBase, ADAAll, ADAProtein}

// Label renders the scenario with the platform's baseline FS name, e.g.
// "C-ext4" or "D-PVFS".
func (s Scenario) Label(baselineFS string) string {
	switch s {
	case CBase:
		return "C-" + baselineFS
	case DBase:
		return "D-" + baselineFS
	default:
		return string(s)
	}
}

// Point is one scenario at one frame count.
type Point struct {
	Scenario     Scenario
	Frames       int
	LoadedBytes  int64   // what crosses storage -> memory
	RetrievalSec float64 // raw-data retrieval time (Figs 7a/9a/10a)
	PreprocSec   float64 // compute-side decompress + scan
	RenderSec    float64
	Turnaround   float64 // retrieval + pre-processing + rendering
	MemoryPeak   int64   // Figs 7c/9c/10c
	Killed       bool    // OOM-killed before completing (Fig 10)
	EnergyKJ     float64 // platform power x turnaround window (Fig 10d)
}

// RunAnalytic evaluates one scenario at one frame count using the
// platform's analytic read models and CPU cost models. The memory and kill
// rules mirror internal/vmd's live Session exactly.
func RunAnalytic(p *cluster.Platform, dm *DataModel, sc Scenario, frames int) Point {
	baseRead, adaRead := p.AnalyticModels()
	cost := p.ComputeCost
	factor := 1.0
	if cost.CPUFactor > 0 {
		factor = cost.CPUFactor
	}
	cap := p.MemCapacity

	c, r, rp := dm.Sizes(frames)
	subsets := int64(dm.SubsetsRawPerFrame * float64(frames))

	pt := Point{Scenario: sc, Frames: frames}
	// Every scenario retrieves the structure file first (mol new).
	pdbIO := baseRead(dm.PDBBytes)
	pdbCPU := float64(dm.PDBBytes) / (cost.PDBParseBps * factor)

	decompress := func(n int64) float64 { return float64(n) / (cost.DecompressBps * factor) }
	scan := func(n int64) float64 { return float64(n) / (cost.ScanBps * factor) }
	render := float64(dm.ProteinAtoms) * float64(frames) * cost.RenderSecPerAtomFrame / factor

	switch sc {
	case CBase:
		pt.LoadedBytes = c
		pt.RetrievalSec = pdbIO + baseRead(c)
		if cap > 0 && c > cap {
			// The compressed buffer itself does not fit: killed right
			// after the read, before any decompression.
			pt.Killed = true
			pt.MemoryPeak = cap
			pt.Turnaround = pt.RetrievalSec + pdbCPU
			break
		}
		full := decompress(c) + scan(r)
		if cap > 0 && r > cap {
			// Progressive decompression: memory(f) = (1-f)c + f*r crosses
			// capacity at f_kill.
			fKill := float64(cap-c) / float64(r-c)
			pt.Killed = true
			pt.MemoryPeak = cap
			pt.PreprocSec = fKill * full
			pt.Turnaround = pt.RetrievalSec + pdbCPU + pt.PreprocSec
			break
		}
		pt.PreprocSec = full
		pt.RenderSec = render
		pt.MemoryPeak = r + int64(dm.CompressedPerFrame)
		pt.Turnaround = pt.RetrievalSec + pdbCPU + pt.PreprocSec + pt.RenderSec

	case DBase, ADAAll:
		pt.LoadedBytes = r
		read := baseRead(r)
		if sc == ADAAll {
			pt.LoadedBytes = subsets
			read = adaRead(subsets)
		}
		pre := scan(r)
		if cap > 0 && r > cap {
			// Streaming load: I/O and scan truncate at the kill fraction.
			f := float64(cap) / float64(r)
			pt.Killed = true
			pt.MemoryPeak = cap
			pt.RetrievalSec = pdbIO + f*read
			pt.PreprocSec = f * pre
			pt.Turnaround = pt.RetrievalSec + pdbCPU + pt.PreprocSec
			break
		}
		pt.RetrievalSec = pdbIO + read
		pt.PreprocSec = pre
		pt.RenderSec = render
		pt.MemoryPeak = r
		pt.Turnaround = pt.RetrievalSec + pdbCPU + pt.PreprocSec + pt.RenderSec

	case ADAProtein:
		pt.LoadedBytes = rp
		read := adaRead(rp)
		if cap > 0 && rp > cap {
			f := float64(cap) / float64(rp)
			pt.Killed = true
			pt.MemoryPeak = cap
			pt.RetrievalSec = pdbIO + f*read
			pt.Turnaround = pt.RetrievalSec + pdbCPU
			break
		}
		pt.RetrievalSec = pdbIO + read
		pt.RenderSec = render
		pt.MemoryPeak = rp
		pt.Turnaround = pt.RetrievalSec + pdbCPU + pt.RenderSec

	default:
		panic(fmt.Sprintf("bench: unknown scenario %q", sc))
	}
	pt.EnergyKJ = p.PowerWatts * pt.Turnaround / 1000
	return pt
}
