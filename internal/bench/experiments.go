package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/gpcr"
)

// Frame-count series used in the paper.
var (
	// SSDFrames is the Section 4.1 / Table 2 series.
	SSDFrames = []int{626, 1251, 1877, 2503, 3129, 3754, 4380, 5006}
	// ClusterFrames extends the series to Fig 9's 6,256-frame maximum.
	ClusterFrames = []int{626, 1251, 1877, 2503, 3129, 3754, 4380, 5006, 5632, 6256}
	// FatFrames is the Table 6 series.
	FatFrames = []int{62560, 187680, 312800, 437920, 625600, 938400,
		1251200, 1564000, 1876800, 2502400, 3440800, 4379200, 5004800}
)

// Config parameterizes an experiment run.
type Config struct {
	Model *DataModel
	// Scale shrinks the system for live-pipeline experiments (Fig 8 and
	// validation); 10 keeps laptop runtimes in milliseconds.
	Scale int
	// MeasuredFrames is the trajectory length for live-pipeline runs.
	MeasuredFrames int
}

// DefaultConfig measures the data model from the full-size system (the
// real 43.5k-atom composition) over a short real sample.
func DefaultConfig() (*Config, error) {
	dm, err := Measure(gpcr.Default(), 8)
	if err != nil {
		return nil, err
	}
	return &Config{Model: dm, Scale: 10, MeasuredFrames: 120}, nil
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Config) (*Table, error)
}

// Experiments lists every table and figure of the evaluation, in paper
// order.
var Experiments = []Experiment{
	{"table1", "Data components of three .xtc files", runTable1},
	{"table2", "Data size comparisons, ext4 vs ADA (SSD server)", runTable2},
	{"fig7a", "SSD server: raw data retrieval time (s)", runFig7a},
	{"fig7b", "SSD server: data processing turnaround time (s)", runFig7b},
	{"fig7c", "SSD server: memory usage (MB)", runFig7c},
	{"fig8", "CPU burst profile: ext4 path vs ADA path", runFig8},
	{"table4", "Small-cluster system parameters", runTable4},
	{"fig9a", "Cluster: raw data retrieval time (s)", runFig9a},
	{"fig9b", "Cluster: data processing turnaround time (s)", runFig9b},
	{"fig9c", "Cluster: memory usage (MB)", runFig9c},
	{"table5", "Fat-node server parameters", runTable5},
	{"table6", "Data size comparisons, XFS vs ADA (fat node)", runTable6},
	{"fig10a", "Fat node: raw data retrieval time (min)", runFig10a},
	{"fig10b", "Fat node: data processing turnaround time (min)", runFig10b},
	{"fig10c", "Fat node: memory usage (GB)", runFig10c},
	{"fig10d", "Fat node: energy consumption (kJ)", runFig10d},
	{"ext-playback", "Extension: replay hit rate under a memory budget (§2.1 motivation)", runPlayback},
	{"ext-amortize", "Extension: amortization of ADA's one-time ingest over study sessions", runAmortize},
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

func runTable1(cfg *Config) (*Table, error) {
	dm := cfg.Model
	t := &Table{
		ID:      "table1",
		Title:   "Data components of three .xtc files",
		Columns: []string{"Frames", "Complete data (MB)", "Protein data (MB)", "Protein fraction (%)"},
	}
	for _, frames := range []int{626, 1251, 5006} {
		comp := int64(dm.CompressedPerFrame * float64(frames))
		prot := int64(dm.CompressedProteinPerFrame * float64(frames))
		t.AddRow(fmt.Sprintf("%d", frames), fmtMB(comp), fmtMB(prot),
			fmt.Sprintf("%.1f", 100*dm.ProteinCompressedFraction()))
	}
	t.Notes = append(t.Notes,
		"paper: 44% / 49% / 43.5% protein fraction of the compressed files",
		fmt.Sprintf("synthetic system: %d atoms, %.1f%% protein, %.2fx compression",
			dm.NAtoms, 100*dm.ProteinFraction(), dm.CompressionRatio()))
	return t, nil
}

func runTable2(cfg *Config) (*Table, error) {
	dm := cfg.Model
	t := &Table{
		ID:      "table2",
		Title:   "Loaded data size, ext4 (compressed) vs ADA (de-compressed protein)",
		Columns: []string{"Frames", "ext4 (MB)", "ADA (MB)", "Raw data (MB)"},
	}
	for _, frames := range SSDFrames {
		c, r, p := dm.Sizes(frames)
		t.AddRow(fmt.Sprintf("%d", frames), fmtMB(c), fmtMB(p), fmtMB(r))
	}
	t.Notes = append(t.Notes,
		"paper at 5,006 frames: ext4 800 MB, ADA 1,108 MB, raw 2,612 MB")
	return t, nil
}

// seriesTable runs the four scenarios over a frame series on a platform and
// formats one metric per cell.
func seriesTable(id, title string, mk func() (*cluster.Platform, error),
	dm *DataModel, frames []int, scenarios []Scenario,
	cell func(Point) string) (*Table, error) {
	p, err := mk()
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title, Columns: []string{"Frames"}}
	for _, sc := range scenarios {
		t.Columns = append(t.Columns, sc.Label(p.TraditionalName))
	}
	for _, n := range frames {
		row := []string{fmt.Sprintf("%d", n)}
		for _, sc := range scenarios {
			pt := RunAnalytic(p, dm, sc, n)
			v := cell(pt)
			if pt.Killed {
				v = killedCell(v)
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runFig7a(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig7a", "SSD server: raw data retrieval time (s)",
		cluster.NewSSDServer, cfg.Model, SSDFrames, Scenarios,
		func(pt Point) string { return fmtSec(pt.RetrievalSec) })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: C-ext4 best (smallest transfer); D-ADA(all) ~ D-ext4; D-ADA(protein) ~40% of raw")
	return t, nil
}

func runFig7b(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig7b", "SSD server: data processing turnaround time (s)",
		cluster.NewSSDServer, cfg.Model, SSDFrames, Scenarios,
		func(pt Point) string { return fmtSec(pt.Turnaround) })
	if err != nil {
		return nil, err
	}
	p, err := cluster.NewSSDServer()
	if err != nil {
		return nil, err
	}
	last := SSDFrames[len(SSDFrames)-1]
	c := RunAnalytic(p, cfg.Model, CBase, last)
	a := RunAnalytic(p, cfg.Model, ADAProtein, last)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: up to 13.4x (C-ext4 vs D-ADA(protein)); reproduced %.1fx at %d frames",
			c.Turnaround/a.Turnaround, last))
	return t, nil
}

func runFig7c(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig7c", "SSD server: memory usage (MB)",
		cluster.NewSSDServer, cfg.Model, SSDFrames, Scenarios,
		func(pt Point) string { return fmtMB(pt.MemoryPeak) })
	if err != nil {
		return nil, err
	}
	p, err := cluster.NewSSDServer()
	if err != nil {
		return nil, err
	}
	last := SSDFrames[len(SSDFrames)-1]
	c := RunAnalytic(p, cfg.Model, CBase, last)
	a := RunAnalytic(p, cfg.Model, ADAProtein, last)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: ext4 over 2.5x ADA at 5,006 frames; reproduced %.2fx",
			float64(c.MemoryPeak)/float64(a.MemoryPeak)))
	return t, nil
}

func runFig8(cfg *Config) (*Table, error) {
	p, err := cluster.NewSSDServer()
	if err != nil {
		return nil, err
	}
	ds, err := p.Stage("gpcr", gpcr.Scaled(cfg.Scale), cfg.MeasuredFrames)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8",
		Title:   "CPU burst profile (live pipeline, measured)",
		Columns: []string{"Bucket", "C-ext4 (s)", "C-ext4 (%)", "D-ADA(p) (s)", "D-ADA(p) (%)"},
	}
	cpt, err := RunMeasured(p, ds, CBase)
	if err != nil {
		return nil, err
	}
	apt, err := RunMeasured(p, ds, ADAProtein)
	if err != nil {
		return nil, err
	}
	buckets := map[string]bool{}
	for _, b := range cpt.Profile.Buckets() {
		buckets[b] = true
	}
	for _, b := range apt.Profile.Buckets() {
		buckets[b] = true
	}
	names := make([]string, 0, len(buckets))
	for b := range buckets {
		names = append(names, b)
	}
	sort.Strings(names)
	cTotal, aTotal := cpt.Profile.Total(), apt.Profile.Total()
	for _, b := range names {
		cv, av := cpt.Profile.Get(b), apt.Profile.Get(b)
		t.AddRow(b, fmtSec(cv), fmt.Sprintf("%.1f", 100*cv/cTotal),
			fmtSec(av), fmt.Sprintf("%.1f", 100*av/aTotal))
	}
	decompFrac := cpt.Profile.Get("compute.cpu.decompress") /
		cpt.Profile.TotalPrefix("compute.cpu.")
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: decompression > 50%% of compute CPU in the ext4 path; reproduced %.0f%%",
			100*decompFrac),
		fmt.Sprintf("measured live at scale 1/%d, %d frames", cfg.Scale, cfg.MeasuredFrames),
		"folded stacks (pipe to flamegraph.pl):",
	)
	for _, line := range strings.Split(strings.TrimSpace(cpt.Profile.Folded("C-ext4")), "\n") {
		t.Notes = append(t.Notes, "  "+line)
	}
	return t, nil
}

func platformParams(id, title string, mk func() (*cluster.Platform, error)) (*Table, error) {
	p, err := mk()
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title, Columns: []string{"Parameter", "Value"}}
	for _, kv := range p.Params {
		t.AddRow(kv[0], kv[1])
	}
	return t, nil
}

func runTable4(*Config) (*Table, error) {
	return platformParams("table4", "Small-cluster system parameters", cluster.NewSmallCluster)
}

func runTable5(*Config) (*Table, error) {
	return platformParams("table5", "Fat-node server parameters", cluster.NewFatNode)
}

func runFig9a(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig9a", "Cluster: raw data retrieval time (s)",
		cluster.NewSmallCluster, cfg.Model, ClusterFrames, Scenarios,
		func(pt Point) string { return fmtSec(pt.RetrievalSec) })
	if err != nil {
		return nil, err
	}
	p, err := cluster.NewSmallCluster()
	if err != nil {
		return nil, err
	}
	last := ClusterFrames[len(ClusterFrames)-1]
	d := RunAnalytic(p, cfg.Model, DBase, last)
	all := RunAnalytic(p, cfg.Model, ADAAll, last)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: D-ADA(all) more than 2x better than D-PVFS; reproduced %.1fx",
			d.RetrievalSec/all.RetrievalSec))
	return t, nil
}

func runFig9b(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig9b", "Cluster: data processing turnaround time (s)",
		cluster.NewSmallCluster, cfg.Model, ClusterFrames, Scenarios,
		func(pt Point) string { return fmtSec(pt.Turnaround) })
	if err != nil {
		return nil, err
	}
	p, err := cluster.NewSmallCluster()
	if err != nil {
		return nil, err
	}
	d := RunAnalytic(p, cfg.Model, DBase, 6256)
	a := RunAnalytic(p, cfg.Model, ADAProtein, 6256)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: D-PVFS = 9x D-ADA(protein) at 6,256 frames; reproduced %.1fx",
			d.Turnaround/a.Turnaround))
	return t, nil
}

func runFig9c(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig9c", "Cluster: memory usage (MB)",
		cluster.NewSmallCluster, cfg.Model, ClusterFrames, Scenarios,
		func(pt Point) string { return fmtMB(pt.MemoryPeak) })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: same trend as Fig 7c (identical data reaches memory)")
	return t, nil
}

func runTable6(cfg *Config) (*Table, error) {
	dm := cfg.Model
	t := &Table{
		ID:      "table6",
		Title:   "Loaded data size, XFS (compressed) vs ADA (de-compressed protein)",
		Columns: []string{"Frames", "XFS (GB)", "ADA (GB)", "Raw data (GB)"},
	}
	for _, frames := range FatFrames {
		c, r, p := dm.Sizes(frames)
		t.AddRow(fmt.Sprintf("%d", frames), fmtGB(c), fmtGB(p), fmtGB(r))
	}
	t.Notes = append(t.Notes,
		"paper at 5,004,800 frames: XFS 800 GB, ADA 1,108.8 GB, raw 2,612.8 GB")
	return t, nil
}

// fatScenarios drops the D-baseline: Fig 10 plots XFS (compressed), ADA(all)
// and ADA(protein).
var fatScenarios = []Scenario{CBase, ADAAll, ADAProtein}

func runFig10a(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig10a", "Fat node: raw data retrieval time (min)",
		cluster.NewFatNode, cfg.Model, FatFrames, fatScenarios,
		func(pt Point) string { return fmtMin(pt.RetrievalSec) })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "* = killed by OOM before completing (paper: XFS and ADA(all) die at 1,876,800 frames)")
	return t, nil
}

func runFig10b(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig10b", "Fat node: data processing turnaround time (min)",
		cluster.NewFatNode, cfg.Model, FatFrames, fatScenarios,
		func(pt Point) string { return fmtMin(pt.Turnaround) })
	if err != nil {
		return nil, err
	}
	p, err := cluster.NewFatNode()
	if err != nil {
		return nil, err
	}
	pt := RunAnalytic(p, cfg.Model, CBase, 1564000)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: ~400 min for XFS at 1,564,000 frames with retrieval <10%% of turnaround; reproduced %.0f min, retrieval %.1f%%",
			pt.Turnaround/60, 100*pt.RetrievalSec/pt.Turnaround))
	return t, nil
}

func runFig10c(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig10c", "Fat node: memory usage (GB)",
		cluster.NewFatNode, cfg.Model, FatFrames, fatScenarios,
		func(pt Point) string { return fmtGB(pt.MemoryPeak) })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: only ADA(protein) survives past 1,876,800 frames; it dies at 5,004,800 (>2x frames within 1 TB)")
	return t, nil
}

func runFig10d(cfg *Config) (*Table, error) {
	t, err := seriesTable("fig10d", "Fat node: energy consumption (kJ)",
		cluster.NewFatNode, cfg.Model, FatFrames, fatScenarios,
		func(pt Point) string { return fmt.Sprintf("%.0f", pt.EnergyKJ) })
	if err != nil {
		return nil, err
	}
	p, err := cluster.NewFatNode()
	if err != nil {
		return nil, err
	}
	x := RunAnalytic(p, cfg.Model, CBase, 1876800)
	a := RunAnalytic(p, cfg.Model, ADAAll, 1876800)
	pr := RunAnalytic(p, cfg.Model, ADAProtein, 1876800)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper at 1,876,800 frames: XFS >12,500 kJ, ADA <5,000 kJ, ADA(protein) ~2,200 kJ; reproduced %.0f / %.0f / %.0f",
			x.EnergyKJ, a.EnergyKJ, pr.EnergyKJ))
	return t, nil
}
