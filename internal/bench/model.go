// Package bench reproduces every table and figure of the paper's
// evaluation. Small configurations run through the live pipeline (real
// codec, real middleware, virtual clock); the paper-scale series — up to
// ~2.6 TB of raw trajectory — are extrapolated with an analytic engine
// whose inputs are byte volumes measured from the real codec on a real
// sample and the same platform cost models the live pipeline charges.
// TestAnalyticMatchesMeasured pins the two paths together.
package bench

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/pdb"
	"repro/internal/xtc"
)

// DataModel carries the per-frame byte volumes of a workload, measured by
// running the real compressor over a real sample trajectory.
type DataModel struct {
	NAtoms       int
	ProteinAtoms int
	MiscAtoms    int
	PDBBytes     int64

	// Per-frame sizes in bytes, averaged over the sample.
	CompressedPerFrame        float64 // full system, compressed
	CompressedProteinPerFrame float64 // protein subset, compressed (Table 1)
	RawPerFrame               float64 // full system, raw encoding
	ProteinRawPerFrame        float64 // protein subset, raw encoding
	SubsetsRawPerFrame        float64 // sum of per-tag raw encodings (coarse)
}

// Measure builds the system, simulates sampleFrames frames, and measures
// every representation's size with the real codec.
func Measure(cfg gpcr.Config, sampleFrames int) (*DataModel, error) {
	if sampleFrames <= 0 {
		return nil, fmt.Errorf("bench: need at least one sample frame")
	}
	sys, err := cfg.Build()
	if err != nil {
		return nil, fmt.Errorf("bench: measure: %w", err)
	}
	var pdbBuf bytes.Buffer
	if err := pdb.Write(&pdbBuf, sys.Structure); err != nil {
		return nil, err
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	simr, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		return nil, err
	}
	labels := core.BuildLabels(sys.Structure)
	protIdx := labels.CategoryRanges(pdb.Protein).Indices()

	var full, prot bytes.Buffer
	fw := xtc.NewWriter(&full)
	pw := xtc.NewWriter(&prot)
	for i := 0; i < sampleFrames; i++ {
		f := simr.Step()
		if err := fw.WriteFrame(f); err != nil {
			return nil, err
		}
		sub, err := f.Subset(protIdx)
		if err != nil {
			return nil, err
		}
		if err := pw.WriteFrame(sub); err != nil {
			return nil, err
		}
	}

	nAtoms := sys.Structure.NAtoms()
	nProt := len(protIdx)
	dm := &DataModel{
		NAtoms:       nAtoms,
		ProteinAtoms: nProt,
		MiscAtoms:    nAtoms - nProt,
		PDBBytes:     int64(pdbBuf.Len()),

		CompressedPerFrame:        float64(full.Len()) / float64(sampleFrames),
		CompressedProteinPerFrame: float64(prot.Len()) / float64(sampleFrames),
		RawPerFrame:               float64(xtc.RawFrameSize(nAtoms)),
		ProteinRawPerFrame:        float64(xtc.RawFrameSize(nProt)),
		SubsetsRawPerFrame: float64(xtc.RawFrameSize(nProt)) +
			float64(xtc.RawFrameSize(nAtoms-nProt)),
	}
	return dm, nil
}

// CompressionRatio returns raw/compressed for the full system.
func (dm *DataModel) CompressionRatio() float64 {
	return dm.RawPerFrame / dm.CompressedPerFrame
}

// ProteinFraction returns the protein share of the raw bytes.
func (dm *DataModel) ProteinFraction() float64 {
	return dm.ProteinRawPerFrame / dm.RawPerFrame
}

// ProteinCompressedFraction returns the protein share of the compressed
// bytes (Table 1's "protein data fraction").
func (dm *DataModel) ProteinCompressedFraction() float64 {
	return dm.CompressedProteinPerFrame / dm.CompressedPerFrame
}

// Sizes returns total byte volumes at a frame count: compressed, raw, and
// decompressed-protein (the three columns of Tables 2 and 6).
func (dm *DataModel) Sizes(frames int) (compressed, raw, protein int64) {
	return int64(dm.CompressedPerFrame * float64(frames)),
		int64(dm.RawPerFrame * float64(frames)),
		int64(dm.ProteinRawPerFrame * float64(frames))
}
