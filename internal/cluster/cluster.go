// Package cluster assembles the paper's three evaluation platforms — the
// NVMe SSD server (Section 4.1), the nine-node hybrid OrangeFS cluster
// (Section 4.2, Table 4), and the 1 TB fat-node server (Section 4.3,
// Table 5) — from the device, network, file-system, and middleware
// substrates, with cost models calibrated so the virtual-time results
// reproduce the paper's shapes.
package cluster

import (
	"fmt"

	"repro/internal/blockfs"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/netsim"
	"repro/internal/plfs"
	"repro/internal/pvfs"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmd"
)

// Platform is one assembled evaluation environment.
type Platform struct {
	Name            string
	TraditionalName string // the baseline file system's display name
	Env             *sim.Env
	PowerWatts      float64 // total draw of the nodes in a turnaround window
	MemCapacity     int64   // compute-node memory
	ComputeCost     vmd.ComputeCost
	StorageCost     core.StorageCost
	Traditional     vfs.FS // baseline FS holding compressed and raw copies
	ADA             *core.ADA
	Containers      *plfs.FS    // the container store ADA dispatches to
	Params          [][2]string // platform spec sheet (Tables 4 and 5)
}

// CheckStorage probes every container backend and returns the health map:
// a nil entry per healthy backend, the transport error per down one. It is
// how a driver distinguishes "the run can continue degraded" from "the
// storage tier is gone" without waiting out another retry schedule.
func (p *Platform) CheckStorage() map[string]error {
	if p.Containers == nil {
		return nil
	}
	for _, name := range p.Containers.Backends() {
		p.Containers.Probe(name)
	}
	return p.Containers.BackendHealth()
}

// GB is a convenience re-export for memory sizing.
const GB = device.GB

// NewSSDServer builds the Section 4.1 platform: ext4 on an NVMe SSD,
// 16 GB DRAM, one Xeon E5-2603 v4. ADA dispatches subsets across the
// server's two NVMe drives.
func NewSSDServer() (*Platform, error) {
	env := sim.NewEnv()
	nvme := device.NVMe256GB()

	ext4 := blockfs.New("ext4", nvme, env)
	ada0 := blockfs.New("ada-nvme0", nvme, env)
	ada1 := blockfs.New("ada-nvme1", nvme, env)
	containers, err := plfs.New(
		plfs.Backend{Name: "nvme0", FS: ada0, Mount: "/mnt1"},
		plfs.Backend{Name: "nvme1", FS: ada1, Mount: "/mnt2"},
	)
	if err != nil {
		return nil, err
	}
	storage := core.DefaultStorageCost()
	compute := vmd.DefaultComputeCost()
	return &Platform{
		Name:            "ssd-server",
		TraditionalName: "ext4",
		Env:             env,
		PowerWatts:      400,
		MemCapacity:     16 * GB,
		ComputeCost:     compute,
		StorageCost:     storage,
		Traditional:     ext4,
		ADA:             core.New(containers, env, core.Options{Cost: storage}),
		Containers:      containers,
		Params: [][2]string{
			{"CPU", "Intel Xeon E5-2603 v4 @1.70GHz"},
			{"Memory", "16 GB DRAM"},
			{"Storage", "2x 256GB NVMe SSD"},
			{"Operating system", "CentOS 6.10"},
			{"File system", "ext4"},
		},
	}, nil
}

// NewSmallCluster builds the Section 4.2 platform: nine nodes — three
// compute, three HDD storage nodes (two WD 1 TB drives each) and three SSD
// storage nodes (two Plextor 256 GB drives each) — with two independent
// PVFS instances. Following Fig 9a ("ADA only uses the underlying SSD
// storage nodes to transfer data"), ADA places its decompressed subsets on
// the SSD file system; the HDD file system keeps the original compressed
// dataset as the archival copy.
func NewSmallCluster() (*Platform, error) {
	env := sim.NewEnv()
	ib := netsim.InfiniBand()

	hddServer := func(name string) pvfs.Server {
		// Two drives per node striped internally: 2x bandwidth.
		return pvfs.Server{Name: name, Dev: device.RAID(device.WDBlue1TB(), 2, 0, "RAID0"), Link: ib}
	}
	ssdServer := func(name string) pvfs.Server {
		return pvfs.Server{Name: name, Dev: device.RAID(device.Plextor256GB(), 2, 0, "RAID0"), Link: ib}
	}

	hybrid, err := pvfs.New(pvfs.Config{
		Label: "pvfs",
		Servers: []pvfs.Server{
			hddServer("hdd1"), hddServer("hdd2"), hddServer("hdd3"),
			ssdServer("ssd1"), ssdServer("ssd2"), ssdServer("ssd3"),
		},
		ClientLink: ib,
	}, env)
	if err != nil {
		return nil, err
	}
	ssdFS, err := pvfs.New(pvfs.Config{
		Label:      "pvfs-ssd",
		Servers:    []pvfs.Server{ssdServer("ssd1"), ssdServer("ssd2"), ssdServer("ssd3")},
		ClientLink: ib,
	}, env)
	if err != nil {
		return nil, err
	}
	hddFS, err := pvfs.New(pvfs.Config{
		Label:      "pvfs-hdd",
		Servers:    []pvfs.Server{hddServer("hdd1"), hddServer("hdd2"), hddServer("hdd3")},
		ClientLink: ib,
	}, env)
	if err != nil {
		return nil, err
	}
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssdFS, Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: hddFS, Mount: "/mnt2"},
	)
	if err != nil {
		return nil, err
	}
	// Every decompressed subset goes to the SSD instance (see doc comment).
	placement := core.Placement{}
	for _, tag := range []string{core.TagProtein, core.TagMisc, "protein", "water", "lipid", "ion", "ligand", "other"} {
		placement[tag] = "ssd"
	}
	storage := core.DefaultStorageCost()
	compute := vmd.DefaultComputeCost()
	return &Platform{
		Name:            "small-cluster",
		TraditionalName: "PVFS",
		Env:             env,
		PowerWatts:      400 * 9, // Table 4: average power per node 400 W
		MemCapacity:     16 * GB,
		ComputeCost:     compute,
		StorageCost:     storage,
		Traditional:     hybrid,
		ADA:             core.New(containers, env, core.Options{Cost: storage, Placement: placement}),
		Containers:      containers,
		Params: [][2]string{
			{"CPU", "Intel Xeon E5-2603 v4 @1.70GHz"},
			{"Operating system", "CentOS 6.10 w/ 2.6.32-754 kernel"},
			{"File system", "PVFS (OrangeFS 2.8.5)"},
			{"Node quantity", "9"},
			{"Node arrangement", "compute node x3, HDD node x3, SSD node x3"},
			{"HDD", "Western Digital 1TB SATA, 126 MB/s max, x6"},
			{"SSD", "Plextor 256GB PCIe, 3000/1000 MB/s peak, x6"},
			{"Average power per node", "400 W"},
		},
	}, nil
}

// FatNodeUsableMemory is the usable compute memory on the fat node: 1,007 GB
// installed minus OS and file-cache overhead. Its value makes the Fig 10
// kill points exact: 979.8 GB of raw frames (1,876,800 frames) exceeds it
// while 816.5 GB (1,564,000 frames) fits.
const FatNodeUsableMemory = 950 * GB

// NewFatNode builds the Section 4.3 platform: XFS on a ten-disk RAID-50
// array, 1 TB memory, four E7-4820 v3 sockets. The per-core clock budget of
// the E7 pipeline is lower than the calibration platform's, captured as a
// CPU factor < 1 (calibrated against the paper's ~400-minute turnaround at
// 1,564,000 frames).
func NewFatNode() (*Platform, error) {
	env := sim.NewEnv()
	raid := device.RAID50x10()

	xfs := blockfs.New("xfs", raid, env)
	adaFS := blockfs.New("ada-raid", raid, env)
	containers, err := plfs.New(
		plfs.Backend{Name: "raid", FS: adaFS, Mount: "/mnt1"},
	)
	if err != nil {
		return nil, err
	}
	const cpuFactor = 0.45
	storage := core.DefaultStorageCost()
	storage.CPUFactor = cpuFactor
	compute := vmd.DefaultComputeCost()
	compute.CPUFactor = cpuFactor
	return &Platform{
		Name:            "fat-node",
		TraditionalName: "XFS",
		Env:             env,
		PowerWatts:      850, // 4 sockets + 1 TB DDR4 + 10 spindles under load
		MemCapacity:     FatNodeUsableMemory,
		ComputeCost:     compute,
		StorageCost:     storage,
		Traditional:     xfs,
		ADA:             core.New(containers, env, core.Options{Cost: storage}),
		Containers:      containers,
		Params: [][2]string{
			{"CPU", "Intel Xeon E7-4820 v3 @1.90GHz, 40 cores (4 sockets)"},
			{"Main memory", "DDR4 1,007 GB"},
			{"Operating system", "CentOS 7.3 w/ 3.10 kernel"},
			{"File system", "XFS"},
			{"Disk array", "WD HDD 1TB x10, RAID 50"},
		},
	}, nil
}

// NewSession returns a VMD session on this platform's compute node.
func (p *Platform) NewSession() *vmd.Session {
	return vmd.NewSession(p.Env, p.MemCapacity, p.ComputeCost)
}

// NewMeter returns an energy meter over this platform's clock at its power.
func (p *Platform) NewMeter() *sim.EnergyMeter {
	return sim.NewEnergyMeter(p.Env.Clock, p.PowerWatts)
}

// String summarizes the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("%s (baseline %s, %.0f W, %.0f GB compute memory)",
		p.Name, p.TraditionalName, p.PowerWatts, float64(p.MemCapacity)/GB)
}
