package cluster

import (
	"repro/internal/device"
	"repro/internal/netsim"
)

// ReadModel is the closed-form sequential-read time for n bytes from one of
// a platform's storage paths. The experiment harness uses these to
// extrapolate the evaluation to the paper's frame counts (up to ~2.6 TB of
// raw data), which cannot be materialized; the functions are built from the
// same device and link constants the live pipeline charges, and
// TestAnalyticMatchesMeasured in internal/bench pins them to the live
// pipeline's virtual times.
type ReadModel func(n int64) float64

// localRead models a whole-file sequential read from a local device.
func localRead(dev device.Device) ReadModel {
	return func(n int64) float64 { return dev.ReadTime(n, 1) }
}

// stripedRead models a parallel striped read: each of the k servers serves
// n/k bytes from its device over its link; the client NIC drains the total.
func stripedRead(devs []device.Device, link netsim.Link, client netsim.Link) ReadModel {
	return func(n int64) float64 {
		k := int64(len(devs))
		share := (n + k - 1) / k
		var worst float64
		for _, d := range devs {
			t := d.ReadTime(share, 1) + link.TransferTime(share)
			if t > worst {
				worst = t
			}
		}
		if drain := client.TransferTime(n); drain > worst {
			return drain
		}
		return worst
	}
}

// AnalyticModels returns the platform's baseline and ADA read models.
func (p *Platform) AnalyticModels() (baseline, ada ReadModel) {
	ib := netsim.InfiniBand()
	hdd2 := device.RAID(device.WDBlue1TB(), 2, 0, "RAID0")
	ssd2 := device.RAID(device.Plextor256GB(), 2, 0, "RAID0")
	switch p.Name {
	case "ssd-server":
		nvme := device.NVMe256GB()
		return localRead(nvme), localRead(nvme)
	case "small-cluster":
		baseline = stripedRead(
			[]device.Device{hdd2, hdd2, hdd2, ssd2, ssd2, ssd2}, ib, ib)
		ada = stripedRead([]device.Device{ssd2, ssd2, ssd2}, ib, ib)
		return baseline, ada
	case "fat-node":
		raid := device.RAID50x10()
		return localRead(raid), localRead(raid)
	default:
		// Unknown platform: fall back to the NVMe model.
		nvme := device.NVMe256GB()
		return localRead(nvme), localRead(nvme)
	}
}
