package cluster

import (
	"bytes"
	"fmt"
	"io"
	"path"

	"repro/internal/core"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/pdb"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// Dataset is a staged workload: the structure file and trajectory stored in
// every representation the evaluation's scenarios read from.
type Dataset struct {
	Logical        string // ADA container name
	PDBPath        string // .pdb on the traditional FS
	CompressedPath string // compressed .xtc on the traditional FS ("C-")
	RawPath        string // decompressed .xtc on the traditional FS ("D-")
	PDB            []byte
	Frames         int
	NAtoms         int
	ProteinAtoms   int
	Compressed     int64
	Raw            int64
	Ingest         *core.IngestReport
}

// Stage generates a deterministic trajectory for the given system
// configuration and stores it three ways: compressed and raw on the
// platform's traditional file system, and ingested through ADA (which
// decompresses, labels, splits, and dispatches the subsets).
func (p *Platform) Stage(name string, cfg gpcr.Config, frames int) (*Dataset, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("cluster: stage %s: need at least one frame", name)
	}
	sys, err := cfg.Build()
	if err != nil {
		return nil, fmt.Errorf("cluster: stage %s: %w", name, err)
	}
	var pdbBuf bytes.Buffer
	if err := pdb.Write(&pdbBuf, sys.Structure); err != nil {
		return nil, fmt.Errorf("cluster: stage %s: %w", name, err)
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	simr, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		return nil, fmt.Errorf("cluster: stage %s: %w", name, err)
	}

	ds := &Dataset{
		Logical:        "/" + name,
		PDBPath:        path.Join("/data", name+".pdb"),
		CompressedPath: path.Join("/data", name+".xtc"),
		RawPath:        path.Join("/data", name+".raw.xtc"),
		PDB:            pdbBuf.Bytes(),
		Frames:         frames,
		NAtoms:         sys.Structure.NAtoms(),
		ProteinAtoms:   sys.Config.ProteinAtoms(),
	}

	if err := p.Traditional.MkdirAll("/data"); err != nil {
		return nil, err
	}
	if err := vfs.WriteFile(p.Traditional, ds.PDBPath, ds.PDB); err != nil {
		return nil, err
	}
	cf, err := p.Traditional.Create(ds.CompressedPath)
	if err != nil {
		return nil, err
	}
	rf, err := p.Traditional.Create(ds.RawPath)
	if err != nil {
		cf.Close()
		return nil, err
	}
	// The compressed stream is also buffered for the ADA ingest pass.
	var compressedBuf bytes.Buffer
	cw := xtc.NewWriter(io.MultiWriter(cf, &compressedBuf))
	rw := xtc.NewRawWriter(rf)
	for i := 0; i < frames; i++ {
		f := simr.Step()
		if err := cw.WriteFrame(f); err != nil {
			cf.Close()
			rf.Close()
			return nil, fmt.Errorf("cluster: stage %s frame %d: %w", name, i, err)
		}
		if err := rw.WriteFrame(f); err != nil {
			cf.Close()
			rf.Close()
			return nil, fmt.Errorf("cluster: stage %s frame %d: %w", name, i, err)
		}
	}
	if err := cf.Close(); err != nil {
		return nil, err
	}
	if err := rf.Close(); err != nil {
		return nil, err
	}
	ds.Compressed = cw.BytesWritten()
	ds.Raw = rw.BytesWritten()

	rep, err := p.ADA.Ingest(ds.Logical, ds.PDB, bytes.NewReader(compressedBuf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("cluster: stage %s: %w", name, err)
	}
	ds.Ingest = rep

	// Staging is setup, not measurement: rewind the accounting so the
	// scenario runs start from a clean profile.
	p.Env.Profile.Reset()
	return ds, nil
}
