package cluster

import (
	"testing"

	"repro/internal/device"
)

func TestAnalyticModelsSSDServer(t *testing.T) {
	p, err := NewSSDServer()
	if err != nil {
		t.Fatal(err)
	}
	base, adaM := p.AnalyticModels()
	// Local NVMe: both paths identical, linear in bytes after the seek.
	n := int64(300 * device.MB)
	if base(n) != adaM(n) {
		t.Errorf("ssd server paths differ: %v vs %v", base(n), adaM(n))
	}
	want := device.NVMe256GB().ReadTime(n, 1)
	if got := base(n); got != want {
		t.Errorf("base(300MB) = %v, want %v", got, want)
	}
}

func TestAnalyticModelsCluster(t *testing.T) {
	p, err := NewSmallCluster()
	if err != nil {
		t.Fatal(err)
	}
	base, adaM := p.AnalyticModels()
	n := int64(600 * device.MB)
	// The hybrid baseline is paced by its HDD members; the ADA path reads
	// from the SSD instance and must be at least 2x faster (Fig 9a).
	if ratio := base(n) / adaM(n); ratio < 2 {
		t.Errorf("cluster ADA path only %.2fx faster", ratio)
	}
	// Striping helps: the hybrid read beats a single two-disk HDD node.
	single := device.RAID(device.WDBlue1TB(), 2, 0, "RAID0").ReadTime(n, 1)
	if base(n) >= single {
		t.Errorf("striped hybrid read (%v) not faster than one node (%v)", base(n), single)
	}
}

func TestAnalyticModelsFatNode(t *testing.T) {
	p, err := NewFatNode()
	if err != nil {
		t.Fatal(err)
	}
	base, adaM := p.AnalyticModels()
	n := int64(10 * device.GB)
	want := device.RAID50x10().ReadTime(n, 1)
	if base(n) != want || adaM(n) != want {
		t.Errorf("fat node models = %v / %v, want %v", base(n), adaM(n), want)
	}
}

func TestAnalyticModelsMonotone(t *testing.T) {
	for _, mk := range []func() (*Platform, error){NewSSDServer, NewSmallCluster, NewFatNode} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		base, adaM := p.AnalyticModels()
		for _, model := range []ReadModel{base, adaM} {
			prev := -1.0
			for _, n := range []int64{0, 1 << 20, 64 << 20, 1 << 30, 64 << 30} {
				got := model(n)
				if got < prev {
					t.Errorf("%s: read time decreased at %d bytes", p.Name, n)
				}
				prev = got
			}
		}
	}
}
