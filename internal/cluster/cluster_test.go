package cluster

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gpcr"
	"repro/internal/vfs"
	"repro/internal/vmd"
)

func TestPlatformsConstruct(t *testing.T) {
	for _, mk := range []func() (*Platform, error){NewSSDServer, NewSmallCluster, NewFatNode} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if p.Env == nil || p.ADA == nil || p.Traditional == nil || p.Containers == nil {
			t.Errorf("%s: incomplete platform", p.Name)
		}
		for name, err := range p.CheckStorage() {
			if err != nil {
				t.Errorf("%s: backend %s unhealthy at construction: %v", p.Name, name, err)
			}
		}
		if len(p.Params) == 0 {
			t.Errorf("%s: missing spec sheet", p.Name)
		}
		if p.String() == "" {
			t.Errorf("%s: empty String()", p.Name)
		}
	}
}

func TestStageProducesAllRepresentations(t *testing.T) {
	p, err := NewSSDServer()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Stage("gpcr", gpcr.Scaled(200), 5)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Frames != 5 || ds.Compressed <= 0 || ds.Raw <= ds.Compressed {
		t.Errorf("dataset = %+v", ds)
	}
	for _, path := range []string{ds.PDBPath, ds.CompressedPath, ds.RawPath} {
		info, err := p.Traditional.Stat(path)
		if err != nil || info.Size == 0 {
			t.Errorf("%s: %v, %+v", path, err, info)
		}
	}
	if ds.Ingest == nil || ds.Ingest.Frames != 5 {
		t.Errorf("ingest = %+v", ds.Ingest)
	}
	// Staging must leave a clean profile for the measured phase.
	if p.Env.Profile.Total() != 0 {
		t.Errorf("profile not reset after staging: %v", p.Env.Profile.Buckets())
	}
	// The compressed file on the traditional FS matches the ingest size.
	info, _ := p.Traditional.Stat(ds.CompressedPath)
	if info.Size != ds.Ingest.Compressed {
		t.Errorf("compressed sizes differ: %d vs %d", info.Size, ds.Ingest.Compressed)
	}
}

func TestFourScenariosRunOnEveryPlatform(t *testing.T) {
	for _, mk := range []func() (*Platform, error){NewSSDServer, NewSmallCluster, NewFatNode} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		ds, err := p.Stage("gpcr", gpcr.Scaled(200), 3)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		scenarios := []struct {
			name string
			load func(s *vmd.Session) error
		}{
			{"C-" + p.TraditionalName, func(s *vmd.Session) error { return s.LoadCompressed(p.Traditional, ds.CompressedPath) }},
			{"D-" + p.TraditionalName, func(s *vmd.Session) error { return s.LoadRaw(p.Traditional, ds.RawPath) }},
			{"D-ADA(all)", func(s *vmd.Session) error { return s.LoadADAFull(p.ADA, ds.Logical) }},
			{"D-ADA(protein)", func(s *vmd.Session) error { return s.LoadADASubset(p.ADA, ds.Logical, core.TagProtein) }},
		}
		for _, sc := range scenarios {
			s := p.NewSession()
			if err := s.MolNew(p.Traditional, ds.PDBPath); err != nil {
				t.Fatalf("%s/%s: %v", p.Name, sc.name, err)
			}
			if err := sc.load(s); err != nil {
				t.Fatalf("%s/%s: %v", p.Name, sc.name, err)
			}
			if s.Frames() != ds.Frames {
				t.Errorf("%s/%s: frames = %d", p.Name, sc.name, s.Frames())
			}
			st := s.RenderLoaded()
			if st.AtomsPerFrame != ds.ProteinAtoms {
				t.Errorf("%s/%s: rendered %d atoms, want %d", p.Name, sc.name, st.AtomsPerFrame, ds.ProteinAtoms)
			}
		}
	}
}

func TestClusterPlacesSubsetsOnSSDInstance(t *testing.T) {
	p, err := NewSmallCluster()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Stage("gpcr", gpcr.Scaled(300), 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.ADA.Manifest(ds.Logical)
	if err != nil {
		t.Fatal(err)
	}
	for tag, sub := range m.Subsets {
		if sub.Backend != "ssd" {
			t.Errorf("tag %s placed on %s, want ssd (Fig 9a deployment)", tag, sub.Backend)
		}
	}
}

func TestSSDServerSplitsAcrossNVMeDrives(t *testing.T) {
	p, err := NewSSDServer()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Stage("gpcr", gpcr.Scaled(300), 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.ADA.Manifest(ds.Logical)
	if err != nil {
		t.Fatal(err)
	}
	if m.Subsets[core.TagProtein].Backend != "nvme0" || m.Subsets[core.TagMisc].Backend != "nvme1" {
		t.Errorf("placement = %+v", m.Placement)
	}
}

func TestTurnaroundOrdering(t *testing.T) {
	// The paper's headline shape on every platform: turnaround(ADA protein)
	// < turnaround(D baseline) < turnaround(C baseline), because the C path
	// pays compute-side decompression.
	for _, mk := range []func() (*Platform, error){NewSSDServer, NewSmallCluster, NewFatNode} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		// Large enough that transfer time dominates fixed positioning
		// charges on the RAID-backed fat node.
		ds, err := p.Stage("gpcr", gpcr.Scaled(10), 800)
		if err != nil {
			t.Fatal(err)
		}
		turnaround := func(load func(s *vmd.Session) error) float64 {
			s := p.NewSession()
			if err := s.MolNew(p.Traditional, ds.PDBPath); err != nil {
				t.Fatal(err)
			}
			start := p.Env.Clock.Now()
			if err := load(s); err != nil {
				t.Fatal(err)
			}
			s.RenderLoaded()
			return p.Env.Clock.Now() - start
		}
		c := turnaround(func(s *vmd.Session) error { return s.LoadCompressed(p.Traditional, ds.CompressedPath) })
		d := turnaround(func(s *vmd.Session) error { return s.LoadRaw(p.Traditional, ds.RawPath) })
		prot := turnaround(func(s *vmd.Session) error { return s.LoadADASubset(p.ADA, ds.Logical, core.TagProtein) })
		t.Logf("%s: C=%.4fs D=%.4fs ADA(protein)=%.4fs", p.Name, c, d, prot)
		if !(prot < d && d < c) {
			t.Errorf("%s: ordering violated: C=%.4f D=%.4f ADA-p=%.4f", p.Name, c, d, prot)
		}
	}
}

func TestFatNodeOOMBehaviour(t *testing.T) {
	// Shrink the fat node's memory so the kill points appear at test scale:
	// raw > capacity -> C and ADA(all) die, ADA(protein) survives.
	p, err := NewFatNode()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Stage("gpcr", gpcr.Scaled(100), 6)
	if err != nil {
		t.Fatal(err)
	}
	p.MemCapacity = ds.Raw*3/4 + 1024

	run := func(load func(s *vmd.Session) error) error {
		s := p.NewSession()
		if err := s.MolNew(p.Traditional, ds.PDBPath); err != nil {
			t.Fatal(err)
		}
		return load(s)
	}
	errC := run(func(s *vmd.Session) error { return s.LoadCompressed(p.Traditional, ds.CompressedPath) })
	errAll := run(func(s *vmd.Session) error { return s.LoadADAFull(p.ADA, ds.Logical) })
	errProt := run(func(s *vmd.Session) error { return s.LoadADASubset(p.ADA, ds.Logical, core.TagProtein) })
	if !errors.Is(errC, vmd.ErrOutOfMemory) {
		t.Errorf("C path: %v, want OOM", errC)
	}
	if !errors.Is(errAll, vmd.ErrOutOfMemory) {
		t.Errorf("ADA(all): %v, want OOM", errAll)
	}
	if errProt != nil {
		t.Errorf("ADA(protein) should survive: %v", errProt)
	}
}

func TestArchivalCompressedCopyOnCluster(t *testing.T) {
	// The cluster keeps its baseline copies on the hybrid PVFS; ensure both
	// C and D forms are readable there after staging.
	p, err := NewSmallCluster()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Stage("gpcr", gpcr.Scaled(300), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{ds.CompressedPath, ds.RawPath} {
		data, err := vfs.ReadFile(p.Traditional, path)
		if err != nil || len(data) == 0 {
			t.Errorf("%s: %v (%d bytes)", path, err, len(data))
		}
	}
}
