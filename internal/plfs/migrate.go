package plfs

import (
	"fmt"
	"path"
	"strings"

	"repro/internal/vfs"
)

// Cross-backend replacement and the orphan sweep that cleans up after its
// crash points. Together they give the tier migrator a publish primitive
// with the same guarantee the ingest commit protocol has: at every crash
// point, the container index resolves each dropping to exactly one complete
// copy, and anything else on disk is garbage a recovery sweep may delete.

// ReplaceDropping atomically replaces the live dropping dst with the
// already-written dropping src — the publish step of a migration, where src
// is a verified staging copy on the target backend. src and dst may live on
// different backends. The ordering makes every crash point recoverable:
//
//  1. rename src -> dst on src's backend (atomic within that mount);
//  2. rewrite the index to point dst at src's backend — the commit point:
//     readers resolve the new copy from here on;
//  3. remove the now-unreferenced old copy on dst's former backend.
//
// A crash before 2 leaves the index pointing at the untouched old copy
// (the renamed file is an unreferenced orphan); a crash before 3 leaves
// the index pointing at the new copy (the stale file is an orphan with a
// mismatched backend). SweepOrphans disposes of both. Readers holding an
// open handle on the old copy keep reading its bytes, which the migrator
// has verified identical to the new copy's.
func (p *FS) ReplaceDropping(logical, src, dst string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if strings.ContainsAny(dst, "/\t\n") || dst == "" || dst == indexFileName {
		return fmt.Errorf("plfs: invalid dropping name %q", dst)
	}
	idx, err := p.readIndexLocked(logical)
	if err != nil {
		return err
	}
	srcOwner, dstOwner := "", ""
	for _, d := range idx {
		switch d.Name {
		case src:
			srcOwner = d.Backend
		case dst:
			dstOwner = d.Backend
		}
	}
	if srcOwner == "" {
		return fmt.Errorf("%w: dropping %q in container %q", vfs.ErrNotExist, src, logical)
	}
	b := p.byName[srcOwner]
	if b == nil {
		return fmt.Errorf("plfs: index references unknown backend %q", srcOwner)
	}
	if err := p.checkLocked(b); err != nil {
		return err
	}
	dir := containerPath(b, logical)
	p.ensureUsageLocked(b)
	var prev int64
	if dstOwner == srcOwner {
		prev = statSize(b, logical, dst)
	}
	if err := b.FS.Rename(path.Join(dir, src), path.Join(dir, dst)); err != nil {
		p.noteLocked(b, err)
		return fmt.Errorf("plfs: replace dropping %q: %w", dst, err)
	}
	if prev != 0 {
		p.addUsageLocked(srcOwner, -prev) // the rename overwrote a same-backend dst
	}
	out := make([]Dropping, 0, len(idx))
	for _, d := range idx {
		if d.Name == src || d.Name == dst {
			continue
		}
		out = append(out, d)
	}
	out = append(out, Dropping{Name: dst, Backend: srcOwner})
	if err := p.writeIndexLocked(logical, out); err != nil {
		return err
	}
	// Past the commit point: the old copy is unreferenced. Removing it is
	// cleanup, not correctness — failure here just leaves an orphan for
	// SweepOrphans.
	if dstOwner != "" && dstOwner != srcOwner {
		if ob := p.byName[dstOwner]; ob != nil {
			p.ensureUsageLocked(ob)
			sz := statSize(ob, logical, dst)
			if err := ob.FS.Remove(path.Join(containerPath(ob, logical), dst)); err == nil && sz != 0 {
				p.addUsageLocked(dstOwner, -sz)
			}
		}
	}
	return nil
}

// SweepOrphans reconciles a container's directories against its index and
// removes the debris a crash can leave behind: files no index entry
// references (a torn ReplaceDropping's renamed-but-uncommitted copy, a
// stale copy whose removal never ran, a leftover ".tmp" from an index
// replace) and index entries whose file is gone. It returns the removed
// files as "backend:name" strings. Safe to call on a healthy container —
// it then removes nothing and rewrites nothing.
func (p *FS) SweepOrphans(logical string) ([]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, err := p.readIndexLocked(logical)
	if err != nil {
		return nil, err
	}
	ref := make(map[string]bool, len(idx))
	for _, d := range idx {
		ref[d.Backend+"\x00"+d.Name] = true
	}
	var removed []string
	for i := range p.backends {
		b := &p.backends[i]
		if err := p.checkLocked(b); err != nil {
			return removed, err
		}
		dir := containerPath(b, logical)
		if !vfs.Exists(b.FS, dir) {
			continue
		}
		p.ensureUsageLocked(b)
		entries, err := b.FS.ReadDir(dir)
		if err != nil {
			p.noteLocked(b, err)
			return removed, fmt.Errorf("plfs: sweep container on %s: %w", b.Name, err)
		}
		for _, e := range entries {
			if e.IsDir {
				continue
			}
			if i == 0 && e.Name == indexFileName {
				continue
			}
			if ref[b.Name+"\x00"+e.Name] {
				continue
			}
			if err := b.FS.Remove(path.Join(dir, e.Name)); err != nil {
				p.noteLocked(b, err)
				return removed, fmt.Errorf("plfs: sweep orphan %q: %w", e.Name, err)
			}
			if countedFile(e.Name) {
				p.addUsageLocked(b.Name, -e.Size)
			}
			removed = append(removed, b.Name+":"+e.Name)
		}
	}
	// Drop dangling entries — the rename half of a torn replace ran but the
	// index write did not, so the old name still resolves and the entry for
	// the staged name points at nothing.
	out := make([]Dropping, 0, len(idx))
	changed := false
	for _, d := range idx {
		b := p.byName[d.Backend]
		if b == nil || !vfs.Exists(b.FS, path.Join(containerPath(b, logical), d.Name)) {
			changed = true
			continue
		}
		out = append(out, d)
	}
	if changed {
		if err := p.writeIndexLocked(logical, out); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
